#!/usr/bin/env bash
# Tier-1 verification + thread-sanitizer pass over the parallel subsystem.
#
#   scripts/check.sh           # tier-1 build + full ctest, then TSAN build
#   SKIP_TSAN=1 scripts/check.sh   # tier-1 only
#
# The TSAN stage rebuilds with -DSANITIZE=thread into build-tsan/ and runs
# the thread-pool and parallel-determinism suites (the tests that exercise
# concurrent kernel execution).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: configure + build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j
(cd build && ctest --output-on-failure -j "$(nproc)")

if [[ "${SKIP_TSAN:-0}" == "1" ]]; then
  echo "== TSAN stage skipped (SKIP_TSAN=1) =="
  exit 0
fi

echo "== TSAN: thread_pool, lru_cache, serving, determinism, nn_ops_grad =="
cmake -B build-tsan -S . -DSANITIZE=thread >/dev/null
cmake --build build-tsan -j --target thread_pool_test \
  --target lru_cache_test --target serving_test \
  --target parallel_determinism_test --target nn_ops_grad_test
# Force a multi-threaded pool so races are actually exercised even on
# single-core CI machines; TSAN halts on the first detected race.
export PREQR_NUM_THREADS=8
export TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}"
./build-tsan/tests/thread_pool_test
./build-tsan/tests/lru_cache_test
./build-tsan/tests/serving_test
./build-tsan/tests/parallel_determinism_test
./build-tsan/tests/nn_ops_grad_test --gtest_filter='ParallelOpsGradTest.*'

echo "== all checks passed =="
