#!/usr/bin/env bash
# Tier-1 verification + thread-sanitizer pass over the parallel subsystem.
#
#   scripts/check.sh           # tier-1 build + full ctest, then TSAN,
#                              # pool-debug and fuzz builds
#   SKIP_TSAN=1 scripts/check.sh        # skip the TSAN stage
#   SKIP_POOL_DEBUG=1 scripts/check.sh  # skip the pool-poison stage
#   SKIP_FUZZ=1 scripts/check.sh        # skip the sanitized fuzz stage
#   SKIP_SERVE=1 scripts/check.sh       # skip the serving front-end stage
#   SKIP_SIMD=1 scripts/check.sh        # skip the SIMD/quantization stage
#   SKIP_PLAN=1 scripts/check.sh        # skip the planner/executor stage
#
# The TSAN stage rebuilds with -DSANITIZE=thread into build-tsan/ and runs
# the thread-pool and parallel-determinism suites (the tests that exercise
# concurrent kernel execution). The pool-debug stage rebuilds with
# -DPREQR_POOL_DEBUG=ON (recycled buffers poisoned with NaN on release) and
# runs the tensor/ops/serving suites to prove nothing reads a recycled
# buffer before its zero-fill.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: configure + build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j
(cd build && ctest --output-on-failure -j "$(nproc)")

if [[ "${SKIP_TSAN:-0}" == "1" ]]; then
  echo "== TSAN stage skipped (SKIP_TSAN=1) =="
else
  echo "== TSAN: thread_pool, lru_cache, serving, determinism, batch_invariance, nn_ops_grad, grad_mode, buffer_pool, checkpoint =="
  cmake -B build-tsan -S . -DSANITIZE=thread >/dev/null
  cmake --build build-tsan -j --target thread_pool_test \
    --target lru_cache_test --target serving_test \
    --target parallel_determinism_test --target batch_invariance_test \
    --target nn_ops_grad_test \
    --target grad_mode_test --target buffer_pool_test \
    --target checkpoint_test --target checkpoint_resume_test
  # Force a multi-threaded pool so races are actually exercised even on
  # single-core CI machines; TSAN halts on the first detected race.
  export PREQR_NUM_THREADS=8
  export TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}"
  ./build-tsan/tests/thread_pool_test
  ./build-tsan/tests/lru_cache_test
  ./build-tsan/tests/serving_test
  ./build-tsan/tests/parallel_determinism_test
  ./build-tsan/tests/batch_invariance_test
  ./build-tsan/tests/nn_ops_grad_test \
    --gtest_filter='ParallelOpsGradTest.*:BatchedOpsGradTest.*'
  # Death tests fork, which TSAN dislikes; the abort paths are covered in
  # the tier-1 run above.
  ./build-tsan/tests/grad_mode_test --gtest_filter='-*DeathTest*'
  ./build-tsan/tests/buffer_pool_test
  # Checkpointing: format hardening, the bitwise interrupted-training
  # drill, and hot reload under the serving mutexes.
  ./build-tsan/tests/checkpoint_test
  ./build-tsan/tests/checkpoint_resume_test
fi

if [[ "${SKIP_FUZZ:-0}" == "1" ]]; then
  echo "== FUZZ stage skipped (SKIP_FUZZ=1) =="
else
  echo "== FUZZ: grammar/mutation fuzz suites under ASan and TSan =="
  # Deterministic seeds (the suites' built-in defaults) keep this stage
  # bounded and reproducible; scripts/fuzz.sh is the open-ended long run.
  cmake -B build-asan -S . -DSANITIZE=address >/dev/null
  cmake --build build-asan -j --target fuzz_stress_test \
    --target fuzz_regression_test
  ASAN_OPTIONS="halt_on_error=1 ${ASAN_OPTIONS:-}" \
    ./build-asan/tests/fuzz_regression_test
  ASAN_OPTIONS="halt_on_error=1 ${ASAN_OPTIONS:-}" \
    ./build-asan/tests/fuzz_stress_test
  # The concurrent drills again under TSan: encodes racing
  # ReloadModel/InvalidateCache, and three tenants racing per-tenant
  # reloads plus a mid-drill deregistration, with the fuzz stream as input.
  cmake -B build-tsan -S . -DSANITIZE=thread >/dev/null
  cmake --build build-tsan -j --target fuzz_stress_test
  PREQR_NUM_THREADS=8 TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}" \
    ./build-tsan/tests/fuzz_stress_test
fi

if [[ "${SKIP_SERVE:-0}" == "1" ]]; then
  echo "== SERVE stage skipped (SKIP_SERVE=1) =="
else
  echo "== SERVE: request API + tenancy + loopback server + mini load sweep under TSan =="
  # The serving API drills (deadlines, shedding, drain), the multi-tenant
  # suite (registry lifecycle, isolation, per-tenant reload/deregister) and
  # the live-socket wire tests under TSan, then a short multi-tenant
  # closed-loop sweep against a real loopback server — ending with a schema
  # check of the emitted JSON, per-tenant rows included.
  cmake -B build-tsan -S . -DSANITIZE=thread >/dev/null
  cmake --build build-tsan -j --target serving_api_test \
    --target tenant_test --target server_test --target bench_serving_load
  PREQR_NUM_THREADS=8 TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}" \
    ./build-tsan/tests/serving_api_test
  PREQR_NUM_THREADS=8 TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}" \
    ./build-tsan/tests/tenant_test
  PREQR_NUM_THREADS=8 TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}" \
    ./build-tsan/tests/server_test
  LOAD_SECONDS=1 LOAD_CLIENTS=4 TENANTS=2 \
    BENCH_SERVING_JSON=build-tsan/BENCH_serving.json \
    TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}" \
    ./build-tsan/bench/bench_serving_load
  python3 - <<'EOF'
import json
with open("build-tsan/BENCH_serving.json") as f:
    doc = json.load(f)
points = doc["points"]
assert doc.get("kernel_impl") in ("scalar", "avx2"), \
    f"bad kernel_impl: {doc.get('kernel_impl')!r}"
assert len(points) >= 3, f"expected >=3 load points, got {len(points)}"
assert doc["tenants"] == 2, f"expected tenants=2, got {doc.get('tenants')}"
for p in points:
    for key in ("clients", "seconds", "requests", "ok", "shed",
                "deadline_exceeded", "errors", "qps", "p50_us", "p95_us",
                "p99_us", "shed_rate", "cache_hit_rate", "per_tenant"):
        assert key in p, f"missing {key} in load point {p}"
    assert p["requests"] == p["ok"] + p["shed"] + p["deadline_exceeded"] + \
        p["errors"], f"request accounting off in {p}"
    assert p["p50_us"] <= p["p95_us"] <= p["p99_us"], f"percentiles off: {p}"
    rows = p["per_tenant"]
    assert [r["tenant"] for r in rows] == ["t0", "t1"], f"tenant rows: {rows}"
    for key in ("ok", "hits", "shed", "deadline_exceeded", "errors", "qps"):
        assert all(key in r for r in rows), f"missing {key} in {rows}"
    # The tenant slices partition the aggregate exactly.
    assert sum(r["ok"] for r in rows) == p["ok"], f"ok split off in {p}"
    assert sum(r["shed"] for r in rows) == p["shed"], f"shed split off in {p}"
print("BENCH_serving.json schema ok:", len(points),
      "load points with per-tenant rows")
EOF
fi

if [[ "${SKIP_SIMD:-0}" == "1" ]]; then
  echo "== SIMD stage skipped (SKIP_SIMD=1) =="
else
  echo "== SIMD: kernel dispatch parity under both impls + UBSan on the quant path =="
  # The kernel-parity suite under each forced impl: PREQR_KERNEL_IMPL must
  # actually steer dispatch, and the per-impl determinism contract must
  # hold whichever table is active. The encode suites re-run under the
  # scalar table to prove the fallback serves identical Status behavior.
  PREQR_KERNEL_IMPL=scalar ./build/tests/kernel_dispatch_test
  PREQR_KERNEL_IMPL=avx2 ./build/tests/kernel_dispatch_test
  PREQR_KERNEL_IMPL=scalar ./build/tests/nn_ops_grad_test
  # UBSan over the int8 quantization path and the dispatch plumbing:
  # rounding, packing, and the saturating deadline math must be UB-free.
  cmake -B build-ubsan -S . -DSANITIZE=undefined >/dev/null
  cmake --build build-ubsan -j --target kernel_dispatch_test \
    --target serving_test --target fuzz_stress_test
  UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1 ${UBSAN_OPTIONS:-}" \
    ./build-ubsan/tests/kernel_dispatch_test
  UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1 ${UBSAN_OPTIONS:-}" \
    ./build-ubsan/tests/serving_test \
    --gtest_filter='HistogramTest.*:DeadlineTest.*'
  UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1 ${UBSAN_OPTIONS:-}" \
    PREQR_FUZZ_QUERIES=300 ./build-ubsan/tests/fuzz_stress_test \
    --gtest_filter='FuzzKernelPathTest.*'
fi

if [[ "${SKIP_PLAN:-0}" == "1" ]]; then
  echo "== PLAN stage skipped (SKIP_PLAN=1) =="
else
  echo "== PLAN: planner + executor-golden + db suites under ASan, bench_planner smoke =="
  # The plan-node refactor's safety net under ASan: the golden bitwise
  # regression against the pre-refactor executor, the DP-vs-exhaustive
  # planner suite (join-graph validation statuses included), and the db
  # suite the executor split must not disturb.
  cmake -B build-asan -S . -DSANITIZE=address >/dev/null
  cmake --build build-asan -j --target planner_test \
    --target executor_golden_test --target db_test
  ASAN_OPTIONS="halt_on_error=1 ${ASAN_OPTIONS:-}" \
    ./build-asan/tests/executor_golden_test
  ASAN_OPTIONS="halt_on_error=1 ${ASAN_OPTIONS:-}" \
    ./build-asan/tests/planner_test
  ASAN_OPTIONS="halt_on_error=1 ${ASAN_OPTIONS:-}" \
    ./build-asan/tests/db_test
  # Close-the-loop smoke: every estimator plans, every plan executes, and
  # the emitted JSON must show true pinned at ratio 1.0 with PG strictly
  # worse somewhere on the correlated workload.
  PREQR_BENCH_FAST=1 PREQR_BENCH_PLANNER_JSON=build/BENCH_planner.json \
    ./build/bench/bench_planner
  python3 - <<'EOF'
import json
with open("build/BENCH_planner.json") as f:
    doc = json.load(f)
rows = doc["estimators"]
assert doc["queries"] >= 5, f"too few planned queries: {doc['queries']}"
assert [r["name"] for r in rows] == ["true", "pg", "preqr"], \
    f"estimator rows: {[r['name'] for r in rows]}"
for r in rows:
    for key in ("mean_ratio", "max_ratio", "picked_optimal",
                "executed_units"):
        assert key in r, f"missing {key} in {r}"
    assert r["mean_ratio"] >= 1.0 - 1e-9, f"ratio below optimal: {r}"
true_row = rows[0]
assert true_row["mean_ratio"] <= 1.0 + 1e-6, \
    f"true estimator not executed-optimal: {true_row}"
assert true_row["picked_optimal"] == doc["queries"], \
    f"true estimator missed an optimum: {true_row}"
assert doc["pg_worse_than_true"] >= 1, \
    "PG never picked a worse plan than true on the correlated workload"
print("BENCH_planner.json schema ok:", doc["queries"], "queries,",
      f"pg worse on {doc['pg_worse_than_true']}")
EOF
fi

if [[ "${SKIP_POOL_DEBUG:-0}" != "1" ]]; then
  echo "== POOL_DEBUG: NaN-poisoned buffer recycling =="
  cmake -B build-pooldebug -S . -DPREQR_POOL_DEBUG=ON >/dev/null
  cmake --build build-pooldebug -j --target nn_tensor_test \
    --target nn_ops_grad_test --target grad_mode_test \
    --target buffer_pool_test --target serving_test \
    --target batch_invariance_test
  ./build-pooldebug/tests/nn_tensor_test
  ./build-pooldebug/tests/nn_ops_grad_test
  ./build-pooldebug/tests/grad_mode_test
  ./build-pooldebug/tests/buffer_pool_test
  ./build-pooldebug/tests/serving_test
  ./build-pooldebug/tests/batch_invariance_test
fi

echo "== all checks passed =="
