#!/usr/bin/env bash
# Closed-loop load sweep against the serving front-end (release build).
#
#   scripts/load.sh                      # default sweep, BENCH_serving.json
#   LOAD_SECONDS=5 scripts/load.sh       # longer dwell per load point
#   LOAD_CLIENTS=64 scripts/load.sh      # push further past saturation
#   LOAD_RING=32 LOAD_CACHE=16 scripts/load.sh
#   TENANTS=3 scripts/load.sh            # multi-tenant sweep, per-tenant rows
#
# Knobs (all forwarded to bench_serving_load):
#   LOAD_SECONDS   wall time per load point            (default 2)
#   LOAD_CLIENTS   peak closed-loop concurrency        (default 32)
#   LOAD_RING      request-ring capacity               (default 16)
#   LOAD_CACHE     embedding-cache capacity            (default 8)
#   LOAD_TIMEOUT_US  per-request deadline, <0 = none   (default 500000)
#   LOAD_CORPUS    distinct queries in the mix         (default 48)
#   TENANTS        hosted databases, threads assigned round-robin (default 1)
#                  each load point gains a per_tenant breakdown in the JSON
#   BENCH_SERVING_JSON  output path       (default BENCH_serving.json in cwd)
#
# The interesting read: q/s flattens at the saturation point, and past it
# shed% rises while the p99 of *admitted* requests stays bounded — overload
# is refused with kResourceExhausted, not absorbed into an unbounded queue.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S . >/dev/null
cmake --build build -j --target bench_serving_load
./build/bench/bench_serving_load
