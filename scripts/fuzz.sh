#!/usr/bin/env bash
# Long-run fuzzing mode: the same grammar/mutation fuzz suites that
# scripts/check.sh runs in bounded form, scaled up and swept over many
# seeds under both sanitizers. Every case is a pure function of
# (seed, index), so any failure line prints the exact seed + query to
# replay — rerun with PREQR_FUZZ_SEEDS=<seed> to reproduce, minimize with
# SqlFuzzer::Minimize, and check the result into tests/fuzz_corpus/.
#
#   scripts/fuzz.sh                         # default: 100k queries, 16 seeds
#   FUZZ_QUERIES=1000000 scripts/fuzz.sh    # bigger front-door sweep
#   FUZZ_SEEDS="7,8,9" scripts/fuzz.sh      # explicit seed list
#   SKIP_ASAN=1 / SKIP_TSAN=1               # drop a sanitizer leg
set -euo pipefail
cd "$(dirname "$0")/.."

FUZZ_QUERIES="${FUZZ_QUERIES:-100000}"
if [[ -z "${FUZZ_SEEDS:-}" ]]; then
  FUZZ_SEEDS="$(seq -s, 1001 1016)"
fi
echo "== fuzz long run: ${FUZZ_QUERIES} front-door queries, seeds ${FUZZ_SEEDS} =="

run_suites() {
  local build_dir="$1"
  PREQR_FUZZ_QUERIES="${FUZZ_QUERIES}" \
  PREQR_FUZZ_SEEDS="${FUZZ_SEEDS}" \
  PREQR_PROPERTY_SEEDS="${FUZZ_SEEDS}" \
    "${build_dir}/tests/fuzz_regression_test"
  PREQR_FUZZ_QUERIES="${FUZZ_QUERIES}" \
  PREQR_FUZZ_SEEDS="${FUZZ_SEEDS}" \
    "${build_dir}/tests/fuzz_stress_test"
  # The property sweeps ride along: same seed list, same replay story.
  PREQR_PROPERTY_SEEDS="${FUZZ_SEEDS}" \
    "${build_dir}/tests/property_test" --gtest_filter='Seeds/*'
}

if [[ "${SKIP_ASAN:-0}" != "1" ]]; then
  echo "== ASan leg =="
  cmake -B build-asan -S . -DSANITIZE=address >/dev/null
  cmake --build build-asan -j --target fuzz_stress_test \
    --target fuzz_regression_test --target property_test
  export ASAN_OPTIONS="halt_on_error=1 ${ASAN_OPTIONS:-}"
  run_suites build-asan
fi

if [[ "${SKIP_TSAN:-0}" != "1" ]]; then
  echo "== TSan leg =="
  cmake -B build-tsan -S . -DSANITIZE=thread >/dev/null
  cmake --build build-tsan -j --target fuzz_stress_test \
    --target fuzz_regression_test --target property_test
  export PREQR_NUM_THREADS=8
  export TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}"
  run_suites build-tsan
fi

echo "== fuzz long run passed =="
