// Property-based sweeps (parameterized over seeds): invariants that must
// hold for *every* generated workload, not just hand-picked cases. The
// seed set is overridable without a rebuild via PREQR_PROPERTY_SEEDS
// (comma-separated), so a failing seed found by a long fuzz run replays
// directly: PREQR_PROPERTY_SEEDS=12345 ./property_test
#include <functional>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "automaton/fa.h"
#include "automaton/template_extractor.h"
#include "db/executor.h"
#include "eval/metrics.h"
#include "nn/module.h"
#include "sql/parser.h"
#include "sql/printer.h"
#include "workload/imdb.h"
#include "workload/query_gen.h"
#include "workload/rewrites.h"
#include "workload/sql_fuzz.h"

namespace preqr {
namespace {

class SeededProperty : public testing::TestWithParam<uint64_t> {
 protected:
  static const db::Database& Db() {
    static const db::Database* db =
        new db::Database(workload::MakeImdbDatabase(77, 0.02));
    return *db;
  }
};

// Failure context for property assertions: the seed to replay with, and —
// when a failure predicate is supplied — a ddmin-minimized reproducer.
// gtest only evaluates the streamed message on failure, so minimization
// costs nothing on the green path.
std::string FailingCase(uint64_t seed, const std::string& sql) {
  return "seed=" + std::to_string(seed) + " sql=\"" + sql + "\"";
}
std::string FailingCase(uint64_t seed, const std::string& sql,
                        const std::function<bool(const std::string&)>& fails) {
  return "seed=" + std::to_string(seed) + " minimized=\"" +
         workload::SqlFuzzer::Minimize(sql, fails) + "\" sql=\"" + sql + "\"";
}

// Property: every generated query's SQL text round-trips through the
// parser and printer to a fixed point.
TEST_P(SeededProperty, GeneratedSqlRoundTrips) {
  workload::ImdbQueryGenerator gen(Db(), GetParam());
  auto not_parseable = [](const std::string& s) { return !sql::Parse(s).ok(); };
  auto not_fixed_point = [](const std::string& s) {
    auto p = sql::Parse(s);
    return p.ok() && sql::ToSql(p.value()) != s;
  };
  for (const auto& q : gen.Synthetic(15, 2)) {
    auto parsed = sql::Parse(q.sql);
    ASSERT_TRUE(parsed.ok()) << FailingCase(GetParam(), q.sql, not_parseable);
    const std::string printed = sql::ToSql(parsed.value());
    EXPECT_EQ(printed, q.sql) << FailingCase(GetParam(), q.sql, not_fixed_point);
    auto reparsed = sql::Parse(printed);
    ASSERT_TRUE(reparsed.ok())
        << FailingCase(GetParam(), printed, not_parseable);
    EXPECT_EQ(sql::ToSql(reparsed.value()), printed)
        << FailingCase(GetParam(), printed, not_fixed_point);
  }
}

// Property: the tree-count executor agrees with a brute-force nested-loop
// join on two-table queries.
TEST_P(SeededProperty, ExecutorMatchesBruteForce) {
  workload::ImdbQueryGenerator gen(Db(), GetParam() + 100);
  db::Executor exec(Db());
  int checked = 0;
  for (const auto& q : gen.Synthetic(12, 1)) {
    if (q.stmt.tables.size() != 2) continue;
    // Identify the join columns.
    const sql::Predicate* join = nullptr;
    for (const auto& p : q.stmt.predicates) {
      if (p.IsJoin()) join = &p;
    }
    ASSERT_NE(join, nullptr) << FailingCase(GetParam(), q.sql);
    const db::Table* ta = Db().FindTable(q.stmt.tables[0].table);
    const db::Table* tb = Db().FindTable(q.stmt.tables[1].table);
    // Per-table filter bitmaps via single-table executor calls.
    auto filter_rows = [&](size_t idx) {
      sql::SelectStatement single;
      single.items = q.stmt.items;
      single.tables = {q.stmt.tables[idx]};
      for (const auto& p : q.stmt.predicates) {
        if (p.IsJoin()) continue;
        const std::string t = q.stmt.ResolveTable(p.lhs.qualifier);
        if (t == q.stmt.tables[idx].table) single.predicates.push_back(p);
      }
      return exec.Execute(single, true).value().root_row_ids;
    };
    const auto rows_a = filter_rows(0);
    const auto rows_b = filter_rows(1);
    // Resolve join columns to (table, column index).
    const std::string lt = q.stmt.ResolveTable(join->lhs.qualifier);
    const int col_a = lt == ta->name()
                          ? ta->def().ColumnIndex(join->lhs.column)
                          : ta->def().ColumnIndex(join->rhs_column.column);
    const int col_b = lt == ta->name()
                          ? tb->def().ColumnIndex(join->rhs_column.column)
                          : tb->def().ColumnIndex(join->lhs.column);
    std::map<int64_t, double> counts;
    for (int r : rows_b) {
      counts[tb->column(col_b).ints[static_cast<size_t>(r)]] += 1;
    }
    double brute = 0;
    for (int r : rows_a) {
      auto it = counts.find(ta->column(col_a).ints[static_cast<size_t>(r)]);
      if (it != counts.end()) brute += it->second;
    }
    EXPECT_DOUBLE_EQ(q.true_card, brute) << FailingCase(GetParam(), q.sql);
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

// Property: logically equivalent rewrites preserve the root result set for
// arbitrary generated single-join queries.
TEST_P(SeededProperty, RewritesPreserveResultSets) {
  workload::ImdbQueryGenerator gen(Db(), GetParam() + 200);
  db::Executor exec(Db());
  Rng rng(GetParam());
  for (const auto& q : gen.Synthetic(6, 1)) {
    sql::SelectStatement base = q.stmt;
    const auto base_rows = exec.Execute(base, true).value().root_row_ids;
    for (int which = 0; which < 5; ++which) {
      const std::string rewritten =
          workload::EquivalentRewrite(base, which, rng);
      auto parsed = sql::Parse(rewritten);
      ASSERT_TRUE(parsed.ok())
          << FailingCase(GetParam(), rewritten, [](const std::string& s) {
               return !sql::Parse(s).ok();
             });
      auto res = exec.Execute(parsed.value(), true);
      ASSERT_TRUE(res.ok()) << FailingCase(GetParam(), rewritten);
      EXPECT_EQ(res.value().root_row_ids, base_rows)
          << FailingCase(GetParam(), rewritten);
    }
  }
}

// Property: the merged automaton accepts every query whose template was
// part of its construction corpus, and emits one state per token.
TEST_P(SeededProperty, AutomatonAcceptsOwnCorpus) {
  workload::ImdbQueryGenerator gen(Db(), GetParam() + 300);
  std::vector<std::string> corpus;
  for (const auto& q : gen.Synthetic(25, 2)) corpus.push_back(q.sql);
  automaton::AutomatonBuilder builder;
  // Build from each query's own collapsed symbols (no clustering): then
  // acceptance must be exact.
  for (const auto& sql : corpus) {
    builder.AddTemplate(
        automaton::Collapse(automaton::StructuralSymbols(sql)));
  }
  automaton::Automaton fa = builder.Build();
  for (const auto& sql : corpus) {
    const auto symbols = automaton::StructuralSymbols(sql);
    auto match = fa.Match(symbols);
    EXPECT_TRUE(match.accepted) << FailingCase(GetParam(), sql);
    EXPECT_EQ(match.states.size(), symbols.size());
    for (int s : match.states) {
      EXPECT_GE(s, 0);
      EXPECT_LT(s, fa.num_states());
    }
  }
}

// Property: q-error is symmetric, >= 1, and multiplicative under scaling.
TEST_P(SeededProperty, QErrorInvariants) {
  Rng rng(GetParam() + 400);
  for (int i = 0; i < 200; ++i) {
    const double a = 1.0 + rng.NextDouble() * 1e6;
    const double b = 1.0 + rng.NextDouble() * 1e6;
    const double q = eval::QError(a, b);
    EXPECT_GE(q, 1.0);
    EXPECT_DOUBLE_EQ(q, eval::QError(b, a));
    EXPECT_NEAR(eval::QError(a, a * 3.0), 3.0, 1e-9);
  }
}

// Property: per-query cost accounting is positive, grows with join count
// on average, and is deterministic.
TEST_P(SeededProperty, CostAccountingSane) {
  workload::ImdbQueryGenerator gen(Db(), GetParam() + 500);
  db::Executor exec(Db());
  double sum_zero = 0, sum_two = 0;
  int n_zero = 0, n_two = 0;
  for (const auto& q : gen.Synthetic(20, 2)) {
    EXPECT_GT(q.true_cost, 0) << FailingCase(GetParam(), q.sql);
    auto again = exec.Execute(q.stmt);
    ASSERT_TRUE(again.ok());
    EXPECT_DOUBLE_EQ(again.value().cost, q.true_cost);
    if (q.num_joins == 0) {
      sum_zero += q.true_cost;
      ++n_zero;
    } else if (q.num_joins == 2) {
      sum_two += q.true_cost;
      ++n_two;
    }
  }
  if (n_zero > 0 && n_two > 0) {
    EXPECT_GT(sum_two / n_two, sum_zero / n_zero);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         testing::ValuesIn(workload::SeedsFromEnv(
                             "PREQR_PROPERTY_SEEDS",
                             {1u, 2u, 3u, 5u, 8u, 13u})));

// --- Numerical gradient sweep over module compositions -------------------

struct GradCase {
  const char* name;
  int dim;
  int seq;
};

class ModuleGradSweep : public testing::TestWithParam<GradCase> {};

TEST_P(ModuleGradSweep, TransformerLayerGradientsMatchNumeric) {
  const GradCase& c = GetParam();
  Rng rng(11);
  nn::TransformerEncoderLayer layer(c.dim, 2, 2 * c.dim, rng);
  nn::Tensor x = nn::Tensor::Randn({c.seq, c.dim}, rng, 0.5f, true);
  nn::Tensor w = nn::Tensor::Randn({c.seq, c.dim}, rng, 0.5f);
  auto loss_fn = [&] { return nn::Sum(nn::Mul(layer.Forward(x), w)); };
  nn::Tensor loss = loss_fn();
  x.ZeroGrad();
  layer.ZeroGrad();
  loss.Backward();
  const std::vector<float> analytic = x.grad_vec();
  // Spot-check a few coordinates with central differences.
  Rng pick(7);
  for (int k = 0; k < 6; ++k) {
    const nn::Index i =
        static_cast<nn::Index>(pick.NextUint64(static_cast<uint64_t>(x.size())));
    const float eps = 2e-3f;
    const float orig = x.at(i);
    x.at(i) = orig + eps;
    const float up = loss_fn().item();
    x.at(i) = orig - eps;
    const float down = loss_fn().item();
    x.at(i) = orig;
    const float numeric = (up - down) / (2 * eps);
    EXPECT_NEAR(analytic[static_cast<size_t>(i)], numeric,
                2e-2f * std::max(1.0f, std::abs(numeric)))
        << c.name << " index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, ModuleGradSweep,
                         testing::Values(GradCase{"tiny", 8, 3},
                                         GradCase{"wide", 16, 2},
                                         GradCase{"long", 8, 9}));

}  // namespace
}  // namespace preqr
