// Bitwise determinism of the parallel compute path: the full PreQR encoder,
// the batched encoder entry point, and one pre-training step must produce
// identical bits at 1, 2, and 8 threads. All kernel reductions are ordered
// (see src/common/thread_pool.h), so this holds exactly, not approximately.
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "automaton/template_extractor.h"
#include "common/thread_pool.h"
#include "core/pretrain.h"
#include "db/stats.h"
#include "nn/buffer_pool.h"
#include "schema/schema_graph.h"
#include "serving/encoder_service.h"
#include "tasks/preqr_encoder.h"
#include "workload/imdb.h"
#include "workload/query_gen.h"

namespace preqr::core {
namespace {

const int kThreadCounts[] = {1, 2, 8};

struct Env {
  db::Database imdb = workload::MakeImdbDatabase(5, 0.02);
  std::vector<db::TableStats> stats;
  std::unique_ptr<text::SqlTokenizer> tokenizer;
  automaton::Automaton fa;
  schema::SchemaGraph graph;
  std::vector<std::string> corpus;

  Env() {
    db::StatsCollector collector;
    stats = collector.AnalyzeAll(imdb);
    tokenizer = std::make_unique<text::SqlTokenizer>(imdb.catalog(), stats, 8);
    workload::ImdbQueryGenerator gen(imdb, 2);
    for (const auto& q : gen.Synthetic(24, 2)) corpus.push_back(q.sql);
    automaton::TemplateExtractor extractor(0.2);
    fa = extractor.BuildAutomaton(corpus);
    graph = schema::SchemaGraph::Build(imdb.catalog());
  }
  PreqrModel MakeModel() {
    PreqrConfig config;
    config.d_model = 32;
    config.ffn_hidden = 64;
    return PreqrModel(config, tokenizer.get(), &fa, &graph, 11);
  }
};

Env& E() {
  static Env* env = new Env();
  return *env;
}

// Bitwise tensor comparison (EXPECT_EQ on floats would accept -0.0 == 0.0
// and reject NaN == NaN; memcmp is the actual claim).
void ExpectBitwiseEqual(const std::vector<float>& a,
                        const std::vector<float>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  if (a.empty()) return;
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0)
      << what << ": bitwise mismatch";
}

TEST(ParallelDeterminismTest, EncoderForwardBitwiseIdenticalAcrossThreads) {
  std::vector<std::vector<std::vector<float>>> per_threads;
  for (int threads : kThreadCounts) {
    ThreadPool::SetGlobalThreads(threads);
    PreqrModel model = E().MakeModel();
    std::vector<std::vector<float>> outputs;
    for (const auto& sql : E().corpus) {
      auto enc = model.Encode(sql);
      ASSERT_TRUE(enc.ok());
      outputs.push_back(enc.value().tokens.vec());
    }
    per_threads.push_back(std::move(outputs));
  }
  for (size_t t = 1; t < per_threads.size(); ++t) {
    for (size_t q = 0; q < per_threads[0].size(); ++q) {
      ExpectBitwiseEqual(per_threads[0][q], per_threads[t][q],
                         "encoder tokens");
    }
  }
  ThreadPool::SetGlobalThreads(0);
}

TEST(ParallelDeterminismTest, BatchedEncoderMatchesPerQueryEncode) {
  ThreadPool::SetGlobalThreads(8);
  PreqrModel model = E().MakeModel();
  tasks::PreqrEncoder single(&model);
  tasks::PreqrEncoder batched(&model);
  std::vector<std::string> sqls(E().corpus.begin(), E().corpus.begin() + 8);
  sqls.push_back("not a query !!");  // malformed entry exercises the fallback
  auto batch = batched.EncodeVectorBatch(sqls, /*train=*/false);
  ASSERT_EQ(batch.size(), sqls.size());
  for (size_t i = 0; i < sqls.size(); ++i) {
    nn::Tensor one = single.EncodeVector(sqls[i], /*train=*/false);
    ExpectBitwiseEqual(one.vec(), batch[i].vec(), "batched readout");
  }
  ThreadPool::SetGlobalThreads(0);
}

TEST(ParallelDeterminismTest, BatchedEncoderBitwiseIdenticalAcrossThreads) {
  std::vector<std::vector<std::vector<float>>> per_threads;
  std::vector<std::string> sqls(E().corpus.begin(), E().corpus.begin() + 8);
  for (int threads : kThreadCounts) {
    ThreadPool::SetGlobalThreads(threads);
    PreqrModel model = E().MakeModel();
    tasks::PreqrEncoder encoder(&model);
    auto batch = encoder.EncodeVectorBatch(sqls, /*train=*/false);
    std::vector<std::vector<float>> outputs;
    for (auto& t : batch) outputs.push_back(t.vec());
    per_threads.push_back(std::move(outputs));
  }
  for (size_t t = 1; t < per_threads.size(); ++t) {
    for (size_t q = 0; q < sqls.size(); ++q) {
      ExpectBitwiseEqual(per_threads[0][q], per_threads[t][q],
                         "batched encoder output");
    }
  }
  ThreadPool::SetGlobalThreads(0);
}

// The serving layer's contract: whether a result comes from a cold encode,
// a coalesced micro-batch, or the embedding cache, it is bitwise-identical
// to EncodeVector(sql, false) on the wrapped encoder — at every thread
// count.
TEST(ParallelDeterminismTest, ServedEmbeddingsBitwiseIdenticalAcrossThreads) {
  std::vector<std::string> sqls(E().corpus.begin(), E().corpus.begin() + 8);
  std::vector<std::vector<std::vector<float>>> per_threads;
  for (int threads : kThreadCounts) {
    ThreadPool::SetGlobalThreads(threads);
    PreqrModel model = E().MakeModel();
    tasks::PreqrEncoder reference(&model);
    tasks::PreqrEncoder wrapped(&model);
    serving::EncoderService service(&wrapped);
    std::vector<std::vector<float>> outputs;
    // Cold pass (misses, dispatched as micro-batches), then warm pass
    // (cache hits): both must reproduce the direct encode bit-for-bit.
    for (int pass = 0; pass < 2; ++pass) {
      for (const auto& sql : sqls) {
        auto served = service.Encode(sql);
        ASSERT_TRUE(served.ok()) << served.status().ToString();
        nn::Tensor direct = reference.EncodeVector(sql, /*train=*/false);
        ExpectBitwiseEqual(direct.vec(), served.value().vec(),
                           pass == 0 ? "cold serve" : "cache hit");
        if (pass == 0) outputs.push_back(served.value().vec());
      }
    }
    // EncodeBatch takes the deduped-batch path; same bits required.
    auto batch = service.EncodeBatch(sqls);
    for (size_t q = 0; q < sqls.size(); ++q) {
      ASSERT_TRUE(batch[q].ok());
      ExpectBitwiseEqual(outputs[q], batch[q].value().vec(), "served batch");
    }
    per_threads.push_back(std::move(outputs));
  }
  for (size_t t = 1; t < per_threads.size(); ++t) {
    for (size_t q = 0; q < sqls.size(); ++q) {
      ExpectBitwiseEqual(per_threads[0][q], per_threads[t][q],
                         "served embedding across thread counts");
    }
  }
  ThreadPool::SetGlobalThreads(0);
}

// Grad mode and pooled storage are pure bookkeeping: the inference
// embeddings must be bit-for-bit identical whether the tape is on or off,
// and whether tensor storage is recycled through the BufferPool or
// heap-allocated fresh every time.
TEST(ParallelDeterminismTest, GradModeAndPoolDoNotChangeBits) {
  ThreadPool::SetGlobalThreads(8);
  std::vector<std::string> sqls(E().corpus.begin(), E().corpus.begin() + 8);

  auto encode_all = [&] {
    PreqrModel model = E().MakeModel();
    tasks::PreqrEncoder encoder(&model);
    std::vector<std::vector<float>> outputs;
    for (auto& t : encoder.EncodeVectorBatch(sqls, /*train=*/false)) {
      outputs.push_back(t.vec());
    }
    return outputs;
  };

  // Baseline: tape off inside the encoder (the production inference path),
  // pool recycling on.
  const auto baseline = encode_all();

  // Tape forced ON around the whole encode. The encoder installs per-chunk
  // NoGradGuards internally, so this exercises the nesting/restore path on
  // the caller thread while the math stays identical.
  {
    nn::GradMode::set_enabled(true);
    const auto taped = encode_all();
    for (size_t q = 0; q < sqls.size(); ++q) {
      ExpectBitwiseEqual(baseline[q], taped[q], "grad-on vs grad-off");
    }
  }

  // Pool bypassed: every no-grad tensor heap-allocates instead of reusing
  // recycled (zeroed) buffers. Same bits required.
  {
    nn::BufferPool::set_enabled(false);
    const auto unpooled = encode_all();
    nn::BufferPool::set_enabled(true);
    for (size_t q = 0; q < sqls.size(); ++q) {
      ExpectBitwiseEqual(baseline[q], unpooled[q], "pool on vs bypassed");
    }
  }
  ThreadPool::SetGlobalThreads(0);
}

// One full pre-training step (masking, parallel per-example forwards,
// ordered gradient reduction, Adam update): losses, gradients, and the
// updated parameters must be bitwise-identical across thread counts.
TEST(ParallelDeterminismTest, PretrainStepBitwiseIdenticalAcrossThreads) {
  struct Run {
    std::vector<double> losses;
    std::vector<std::vector<float>> params;
    std::vector<std::vector<float>> grads;
  };
  std::vector<Run> runs;
  for (int threads : kThreadCounts) {
    ThreadPool::SetGlobalThreads(threads);
    PreqrModel model = E().MakeModel();
    Pretrainer::Options opt;
    opt.epochs = 1;
    opt.batch_size = 8;
    Pretrainer trainer(model, opt);
    auto history = trainer.Train(E().corpus);
    Run run;
    for (const auto& h : history) run.losses.push_back(h.mlm_loss);
    for (const auto& p : model.Parameters()) {
      run.params.push_back(p.vec());
      run.grads.push_back(p.grad_vec());
    }
    runs.push_back(std::move(run));
  }
  for (size_t t = 1; t < runs.size(); ++t) {
    ASSERT_EQ(runs[0].losses.size(), runs[t].losses.size());
    for (size_t e = 0; e < runs[0].losses.size(); ++e) {
      EXPECT_EQ(runs[0].losses[e], runs[t].losses[e])
          << "epoch loss diverged at threads=" << kThreadCounts[t];
    }
    ASSERT_EQ(runs[0].params.size(), runs[t].params.size());
    for (size_t p = 0; p < runs[0].params.size(); ++p) {
      ExpectBitwiseEqual(runs[0].params[p], runs[t].params[p], "parameter");
      ExpectBitwiseEqual(runs[0].grads[p], runs[t].grads[p], "gradient");
    }
  }
  ThreadPool::SetGlobalThreads(0);
}

// Evaluate() runs forwards in parallel; its aggregate statistics must also
// be scheduling-independent.
TEST(ParallelDeterminismTest, EvaluateBitwiseIdenticalAcrossThreads) {
  std::vector<Pretrainer::EpochStats> stats;
  for (int threads : kThreadCounts) {
    ThreadPool::SetGlobalThreads(threads);
    PreqrModel model = E().MakeModel();
    Pretrainer::Options opt;
    Pretrainer trainer(model, opt);
    stats.push_back(trainer.Evaluate(E().corpus));
  }
  for (size_t t = 1; t < stats.size(); ++t) {
    EXPECT_EQ(stats[0].mlm_loss, stats[t].mlm_loss);
    EXPECT_EQ(stats[0].masked_accuracy, stats[t].masked_accuracy);
  }
  ThreadPool::SetGlobalThreads(0);
}

}  // namespace
}  // namespace preqr::core
