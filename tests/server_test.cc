// EncodeServer + EncodeClient over a live loopback socket: remote encodes
// bitwise-identical to in-process ones, canonical status codes preserved
// across the wire (parse errors, expired deadlines), encode-batch slot
// independence, the metrics and reload endpoints, hostile frames, the
// connection cap, and concurrent clients hammering one server.
#include "serving/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "automaton/template_extractor.h"
#include "core/pretrain.h"
#include "db/stats.h"
#include "nn/serialize.h"
#include "schema/schema_graph.h"
#include "serving/client.h"
#include "serving/wire.h"
#include "tasks/preqr_encoder.h"
#include "workload/imdb.h"
#include "workload/query_gen.h"

namespace preqr::serving {
namespace {

struct Env {
  db::Database imdb = workload::MakeImdbDatabase(7, 0.02);
  std::vector<db::TableStats> stats;
  std::unique_ptr<text::SqlTokenizer> tokenizer;
  automaton::Automaton fa;
  schema::SchemaGraph graph;
  std::vector<std::string> corpus;

  Env() {
    db::StatsCollector collector;
    stats = collector.AnalyzeAll(imdb);
    tokenizer = std::make_unique<text::SqlTokenizer>(imdb.catalog(), stats, 8);
    workload::ImdbQueryGenerator gen(imdb, 3);
    std::unordered_set<std::string> seen;
    for (const auto& q : gen.Synthetic(16, 2)) {
      if (seen.insert(q.sql).second) corpus.push_back(q.sql);
    }
    automaton::TemplateExtractor extractor(0.2);
    fa = extractor.BuildAutomaton(corpus);
    graph = schema::SchemaGraph::Build(imdb.catalog());
  }
  core::PreqrModel MakeModel() {
    core::PreqrConfig config;
    config.d_model = 32;
    config.ffn_hidden = 64;
    return core::PreqrModel(config, tokenizer.get(), &fa, &graph, 17);
  }
};

Env& E() {
  static Env* env = new Env();
  return *env;
}

void ExpectBitwiseEqual(const std::vector<float>& a,
                        const std::vector<float>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  if (a.empty()) return;
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0)
      << what << ": bitwise mismatch";
}

// One model + service + running server + connected client per fixture use.
struct Loopback {
  core::PreqrModel model;
  tasks::PreqrEncoder encoder;
  EncoderService service;
  EncodeServer server;
  EncodeClient client;

  explicit Loopback(ServerOptions server_options = {},
                    EncoderServiceOptions service_options = {})
      : model(E().MakeModel()),
        encoder(&model),
        service(&encoder, service_options),
        server(&service, server_options) {
    auto started = server.Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
    auto connected = client.Connect(server.port());
    EXPECT_TRUE(connected.ok()) << connected.ToString();
  }
};

TEST(EncodeServerTest, WireEncodeMatchesDirectEncoderBitwise) {
  Loopback lb;
  tasks::PreqrEncoder reference(&lb.model);
  for (const auto& sql : E().corpus) {
    auto remote = lb.client.Encode(sql);
    ASSERT_TRUE(remote.ok()) << remote.status().ToString();
    EXPECT_FALSE(remote.value().cache_hit);
    nn::Tensor direct = reference.EncodeVector(sql, /*train=*/false);
    ExpectBitwiseEqual(direct.vec(), remote.value().embedding, "wire serve");
  }
  // Second pass: every query is a cache hit, still the same bits, and the
  // per-request observability says so.
  for (const auto& sql : E().corpus) {
    auto remote = lb.client.Encode(sql);
    ASSERT_TRUE(remote.ok());
    EXPECT_TRUE(remote.value().cache_hit);
    nn::Tensor direct = reference.EncodeVector(sql, /*train=*/false);
    ExpectBitwiseEqual(direct.vec(), remote.value().embedding, "wire hit");
  }
  EXPECT_EQ(lb.service.metrics().net_requests.value(),
            2 * E().corpus.size());
}

TEST(EncodeServerTest, CanonicalCodesSurviveTheWire) {
  Loopback lb;
  // Malformed SQL: the lexer/parser rejection code crosses intact.
  auto bad = lb.client.Encode("SELECT FROM WHERE ;;;");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kParseError);
  EXPECT_FALSE(bad.status().message().empty());
  // A zero timeout is expired by the time admission runs: the deadline
  // code crosses intact too, distinguishable from shed load.
  WireRequestOptions expired;
  expired.timeout_us = 0;
  auto late = lb.client.Encode(E().corpus[0], expired);
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(lb.service.metrics().deadline_rejected.value(), 1u);
  // The connection survived both errors.
  auto ok = lb.client.Encode(E().corpus[0]);
  EXPECT_TRUE(ok.ok());
}

// Hostile-timeout drill: timeouts near INT64_MAX used to overflow the
// steady_clock addition in DeadlineAfter into a deadline in the past, so a
// request that asked for "effectively forever" died instantly with
// kDeadlineExceeded. Saturation must map them to no-deadline instead.
TEST(EncodeServerTest, HostileTimeoutsSaturateInsteadOfExpiring) {
  Loopback lb;
  const int64_t hostile[] = {
      std::numeric_limits<int64_t>::max(),
      std::numeric_limits<int64_t>::max() - 1,
      std::numeric_limits<int64_t>::max() / 1000,  // still ~292k years
      int64_t{1} << 60,
  };
  for (const int64_t timeout_us : hostile) {
    WireRequestOptions opts;
    opts.timeout_us = timeout_us;
    auto r = lb.client.Encode(E().corpus[0], opts);
    ASSERT_TRUE(r.ok()) << "timeout_us=" << timeout_us << ": "
                        << r.status().ToString();
  }
  EXPECT_EQ(lb.service.metrics().deadline_rejected.value(), 0u);
  EXPECT_EQ(lb.service.metrics().deadline_dropped.value(), 0u);
  // An ordinary generous timeout still works and a zero timeout still
  // expires — saturation didn't blunt real deadlines.
  WireRequestOptions generous;
  generous.timeout_us = 5'000'000;
  EXPECT_TRUE(lb.client.Encode(E().corpus[1], generous).ok());
  WireRequestOptions expired;
  expired.timeout_us = 0;
  auto late = lb.client.Encode(E().corpus[1], expired);
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(EncodeServerTest, WireBatchSlotsFailIndependently) {
  Loopback lb;
  std::vector<std::string> sqls = {E().corpus[0], "not a query !!",
                                   E().corpus[1], E().corpus[0]};
  auto results = lb.client.EncodeBatch(sqls);
  ASSERT_EQ(results.size(), 4u);
  ASSERT_TRUE(results[0].ok()) << results[0].status().ToString();
  ASSERT_FALSE(results[1].ok());
  EXPECT_EQ(results[1].status().code(), StatusCode::kParseError);
  ASSERT_TRUE(results[2].ok());
  ASSERT_TRUE(results[3].ok());
  ExpectBitwiseEqual(results[0].value().embedding,
                     results[3].value().embedding, "duplicate slots");
  tasks::PreqrEncoder reference(&lb.model);
  nn::Tensor direct = reference.EncodeVector(sqls[0], /*train=*/false);
  ExpectBitwiseEqual(direct.vec(), results[0].value().embedding,
                     "wire batch slot");
}

TEST(EncodeServerTest, MetricsEndpointServesTextDump) {
  Loopback lb;
  ASSERT_TRUE(lb.client.Encode(E().corpus[0]).ok());
  auto metrics = lb.client.Metrics();
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  const std::string& text = metrics.value();
  for (const char* key :
       {"serving_requests_total", "serving_cache_misses_total",
        "serving_queue_depth", "serving_shed_total",
        "serving_drained_requests_total", "serving_net_requests_total",
        "serving_net_connections_total"}) {
    EXPECT_NE(text.find(key), std::string::npos) << key;
  }
}

TEST(EncodeServerTest, ReloadEndpointSwapsWeightsAndClearsCache) {
  Loopback lb;
  lb.service.AttachModel(&lb.model);
  const std::string path = testing::TempDir() + "/server_test_reload.prc1";
  ASSERT_TRUE(nn::SaveModule(lb.model, path).ok());
  ASSERT_TRUE(lb.client.Encode(E().corpus[0]).ok());
  EXPECT_GE(lb.service.cached_embeddings(), 1u);
  ASSERT_TRUE(lb.client.ReloadModel(path).ok());
  EXPECT_EQ(lb.service.cached_embeddings(), 0u);
  EXPECT_EQ(lb.service.metrics().reloads.value(), 1u);
  // Same weights were reloaded: the post-reload encode is bitwise stable.
  auto again = lb.client.Encode(E().corpus[0]);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again.value().cache_hit);
  // A failing reload reports the same canonical code remotely as locally,
  // and serving continues on the old weights.
  auto remote = lb.client.ReloadModel("/nonexistent/ckpt.prc1");
  auto local = lb.service.ReloadModel("/nonexistent/ckpt.prc1");
  ASSERT_FALSE(remote.ok());
  ASSERT_FALSE(local.ok());
  EXPECT_EQ(remote.code(), local.code());
  EXPECT_TRUE(lb.client.Encode(E().corpus[1]).ok());
}

// Raw-socket probe for frames EncodeClient refuses to produce.
class RawConn {
 public:
  explicit RawConn(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
  }
  ~RawConn() {
    if (fd_ >= 0) ::close(fd_);
  }
  void Send(const std::string& bytes) {
    ASSERT_EQ(::send(fd_, bytes.data(), bytes.size(), 0),
              static_cast<ssize_t>(bytes.size()));
  }
  // Reads one framed reply; returns the leading status byte or -1 on EOF.
  int ReadReplyCode() {
    std::string header(4, '\0');
    if (!ReadFull(header.data(), 4)) return -1;
    wire::Reader hr(header.data(), 4);
    uint32_t len = 0;
    hr.GetU32(&len);
    if (len == 0 || len > wire::kMaxFrameBytes) return -1;
    std::string body(len, '\0');
    if (!ReadFull(body.data(), len)) return -1;
    return static_cast<unsigned char>(body[0]);
  }
  bool PeerClosed() {
    char c;
    return ::recv(fd_, &c, 1, 0) == 0;
  }

 private:
  bool ReadFull(char* buf, size_t n) {
    size_t got = 0;
    while (got < n) {
      const ssize_t r = ::recv(fd_, buf + got, n - got, 0);
      if (r <= 0) return false;
      got += static_cast<size_t>(r);
    }
    return true;
  }
  int fd_ = -1;
};

TEST(EncodeServerTest, HostileFramesGetInvalidArgumentNotACrash) {
  Loopback lb;
  {
    // Unknown opcode: answered with kInvalidArgument, connection stays up.
    RawConn raw(lb.server.port());
    std::string payload;
    wire::PutU8(&payload, wire::kProtocolVersion);
    wire::PutU8(&payload, 99);
    std::string frame;
    wire::PutU32(&frame, static_cast<uint32_t>(payload.size()));
    frame.append(payload);
    raw.Send(frame);
    EXPECT_EQ(raw.ReadReplyCode(),
              static_cast<int>(StatusCode::kInvalidArgument));
  }
  {
    // Truncated body: a kEncode frame that ends mid-header.
    RawConn raw(lb.server.port());
    std::string payload;
    wire::PutU8(&payload, wire::kProtocolVersion);
    wire::PutU8(&payload, wire::kEncode);
    wire::PutU32(&payload, 1000);  // claims a 1000-byte tenant id, has none
    std::string frame;
    wire::PutU32(&frame, static_cast<uint32_t>(payload.size()));
    frame.append(payload);
    raw.Send(frame);
    EXPECT_EQ(raw.ReadReplyCode(),
              static_cast<int>(StatusCode::kInvalidArgument));
  }
  {
    // Hostile batch count: huge count in a tiny frame must be rejected
    // before any allocation happens.
    RawConn raw(lb.server.port());
    std::string payload;
    wire::PutU8(&payload, wire::kProtocolVersion);
    wire::PutU8(&payload, wire::kEncodeBatch);
    wire::PutString(&payload, "");          // tenant id (default)
    wire::PutString(&payload, "");          // client id
    wire::PutU32(&payload, 0);              // priority
    wire::PutI64(&payload, -1);             // no deadline
    wire::PutU32(&payload, 0xFFFFFFFFu);    // 4 billion slots, zero bytes
    std::string frame;
    wire::PutU32(&frame, static_cast<uint32_t>(payload.size()));
    frame.append(payload);
    raw.Send(frame);
    EXPECT_EQ(raw.ReadReplyCode(),
              static_cast<int>(StatusCode::kInvalidArgument));
  }
  {
    // Oversized frame length: answered, then the server hangs up.
    RawConn raw(lb.server.port());
    std::string frame;
    wire::PutU32(&frame, wire::kMaxFrameBytes + 1);
    raw.Send(frame);
    EXPECT_EQ(raw.ReadReplyCode(),
              static_cast<int>(StatusCode::kInvalidArgument));
    EXPECT_TRUE(raw.PeerClosed());
  }
  EXPECT_GE(lb.service.metrics().net_bad_frames.value(), 4u);
  // The server is still perfectly healthy for well-formed clients.
  EXPECT_TRUE(lb.client.Encode(E().corpus[0]).ok());
}

TEST(EncodeServerTest, ProtocolVersionMismatchRejectedBeforeOpcode) {
  Loopback lb;
  // A v1 peer (no version byte) would lead with its opcode byte; any value
  // other than kProtocolVersion must be rejected up front, before field
  // layouts can silently diverge.
  for (uint8_t stale : {uint8_t{1}, uint8_t{0},
                        static_cast<uint8_t>(wire::kProtocolVersion + 1)}) {
    RawConn raw(lb.server.port());
    std::string payload;
    wire::PutU8(&payload, stale);
    wire::PutU8(&payload, wire::kEncode);
    std::string frame;
    wire::PutU32(&frame, static_cast<uint32_t>(payload.size()));
    frame.append(payload);
    raw.Send(frame);
    EXPECT_EQ(raw.ReadReplyCode(),
              static_cast<int>(StatusCode::kInvalidArgument))
        << "version byte " << static_cast<int>(stale);
  }
  EXPECT_GE(lb.service.metrics().net_bad_frames.value(), 3u);
  // A current-version client on the same server is untouched.
  EXPECT_TRUE(lb.client.Encode(E().corpus[0]).ok());
}

TEST(EncodeServerTest, UnknownTenantIsNotFoundAcrossTheWire) {
  Loopback lb;
  WireRequestOptions options;
  options.tenant_id = "no-such-db";
  auto result = lb.client.Encode(E().corpus[0], options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  // Rejected before the cache probe: the miss counter never moved.
  EXPECT_EQ(lb.service.metrics().cache_misses.value(), 0u);
  EXPECT_EQ(lb.service.metrics().tenant_not_found.value(), 1u);
  // Batch slots carry the same code independently.
  auto slots = lb.client.EncodeBatch({E().corpus[0], E().corpus[1]}, options);
  ASSERT_EQ(slots.size(), 2u);
  for (const auto& slot : slots) {
    ASSERT_FALSE(slot.ok());
    EXPECT_EQ(slot.status().code(), StatusCode::kNotFound);
  }
  // The connection survives, and the default tenant still serves.
  EXPECT_TRUE(lb.client.Encode(E().corpus[0]).ok());
}

TEST(EncodeServerTest, PerTenantReloadOverTheWire) {
  Loopback lb;
  core::PreqrModel model_b = E().MakeModel();
  tasks::PreqrEncoder encoder_b(&model_b);
  ASSERT_TRUE(lb.service.RegisterTenant("b", &encoder_b, &model_b).ok());
  const std::string path = testing::TempDir() + "/server_test_tenant_b.prc1";
  ASSERT_TRUE(nn::SaveModule(model_b, path).ok());
  WireRequestOptions options_b;
  options_b.tenant_id = "b";
  ASSERT_TRUE(lb.client.Encode(E().corpus[0], options_b).ok());
  ASSERT_TRUE(lb.client.Encode(E().corpus[0]).ok());  // default tenant
  EXPECT_EQ(lb.service.cached_embeddings("b"), 1u);
  // Reloading tenant b clears exactly b's partition; the default tenant's
  // cache (and its next hit) are untouched.
  ASSERT_TRUE(lb.client.ReloadModel("b", path).ok());
  EXPECT_EQ(lb.service.cached_embeddings("b"), 0u);
  EXPECT_EQ(lb.service.cached_embeddings(kDefaultTenantId), 1u);
  auto hit = lb.client.Encode(E().corpus[0]);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit.value().cache_hit);
  // Unknown tenant reloads come back kNotFound over the wire.
  EXPECT_EQ(lb.client.ReloadModel("ghost", path).code(),
            StatusCode::kNotFound);
}

TEST(EncodeServerTest, ConnectionCapRejectsExtraClients) {
  ServerOptions options;
  options.max_connections = 1;
  Loopback lb(options);
  ASSERT_TRUE(lb.client.Encode(E().corpus[0]).ok());  // holds the one slot
  EncodeClient second;
  ASSERT_TRUE(second.Connect(lb.server.port()).ok());  // backlog accepts...
  auto result = second.Encode(E().corpus[1]);          // ...server hangs up
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  EXPECT_GE(lb.service.metrics().net_connections_rejected.value(), 1u);
  // The admitted client is unaffected.
  EXPECT_TRUE(lb.client.Encode(E().corpus[1]).ok());
  // Dropping the admitted client frees the slot for the next arrival.
  lb.client.Close();
  EncodeClient third;
  ASSERT_TRUE(third.Connect(lb.server.port()).ok());
  StatusOr<WireEncodeResult> retried = third.Encode(E().corpus[0]);
  for (int i = 0; i < 50 && !retried.ok(); ++i) {
    // The reap of the closed connection races our reconnect; retry briefly.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    third.Close();
    ASSERT_TRUE(third.Connect(lb.server.port()).ok());
    retried = third.Encode(E().corpus[0]);
  }
  EXPECT_TRUE(retried.ok()) << retried.status().ToString();
}

TEST(EncodeServerTest, ConcurrentClientsAllGetCorrectBits) {
  Loopback lb;
  tasks::PreqrEncoder reference(&lb.model);
  std::vector<std::vector<float>> expected;
  for (const auto& sql : E().corpus) {
    expected.push_back(reference.EncodeVector(sql, /*train=*/false).vec());
  }
  constexpr int kThreads = 4;
  constexpr int kRounds = 3;
  std::vector<std::thread> workers;
  std::vector<std::string> failures(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      EncodeClient client;
      auto connected = client.Connect(lb.server.port());
      if (!connected.ok()) {
        failures[t] = connected.ToString();
        return;
      }
      for (int round = 0; round < kRounds; ++round) {
        for (size_t i = 0; i < E().corpus.size(); ++i) {
          auto r = client.Encode(E().corpus[(i + t) % E().corpus.size()]);
          if (!r.ok()) {
            failures[t] = r.status().ToString();
            return;
          }
          const auto& want = expected[(i + t) % expected.size()];
          if (r.value().embedding != want) {
            failures[t] = "bitwise mismatch on thread " + std::to_string(t);
            return;
          }
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  for (const auto& f : failures) EXPECT_TRUE(f.empty()) << f;
  EXPECT_EQ(lb.service.metrics().errors.value(), 0u);
  EXPECT_EQ(lb.service.metrics().ShedTotal(), 0u);
}

TEST(EncodeServerTest, StopUnblocksClientsAndRestarts) {
  ServerOptions options;
  Loopback lb(options);
  ASSERT_TRUE(lb.client.Encode(E().corpus[0]).ok());
  lb.server.Stop();
  EXPECT_FALSE(lb.server.running());
  auto dead = lb.client.Encode(E().corpus[1]);
  ASSERT_FALSE(dead.ok());
  EXPECT_EQ(dead.status().code(), StatusCode::kUnavailable);
  // Same server object restarts on a fresh ephemeral port.
  ASSERT_TRUE(lb.server.Start().ok());
  EncodeClient again;
  ASSERT_TRUE(again.Connect(lb.server.port()).ok());
  EXPECT_TRUE(again.Encode(E().corpus[1]).ok());
}

}  // namespace
}  // namespace preqr::serving
