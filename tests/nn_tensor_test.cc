#include <gtest/gtest.h>

#include "nn/ops.h"
#include "nn/tensor.h"

namespace preqr::nn {
namespace {

TEST(TensorTest, ZerosShapeAndData) {
  Tensor t = Tensor::Zeros({2, 3});
  EXPECT_EQ(t.ndim(), 2);
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t.dim(1), 3);
  EXPECT_EQ(t.size(), 6);
  for (Index i = 0; i < t.size(); ++i) EXPECT_EQ(t.at(i), 0.0f);
}

TEST(TensorTest, FromDataChecksSize) {
  Tensor t = Tensor::FromData({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(t.at(3), 4.0f);
}

TEST(TensorTest, ScalarItem) {
  EXPECT_FLOAT_EQ(Tensor::Scalar(2.5f).item(), 2.5f);
}

TEST(TensorTest, RandnDeterministicAcrossSeeds) {
  Rng r1(5), r2(5);
  Tensor a = Tensor::Randn({4}, r1, 1.0f);
  Tensor b = Tensor::Randn({4}, r2, 1.0f);
  for (Index i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(a.at(i), b.at(i));
}

TEST(TensorTest, UniformBounds) {
  Rng rng(9);
  Tensor t = Tensor::Uniform({100}, rng, 0.5f);
  for (Index i = 0; i < t.size(); ++i) {
    EXPECT_LE(std::abs(t.at(i)), 0.5f);
  }
}

TEST(TensorTest, BackwardThroughChain) {
  // y = mean((2x)^2) elementwise ; dy/dx = 8x / n
  Tensor x = Tensor::FromData({3}, {1, 2, 3}, /*requires_grad=*/true);
  Tensor two_x = Scale(x, 2.0f);
  Tensor sq = Mul(two_x, two_x);
  Tensor y = Mean(sq);
  y.Backward();
  for (Index i = 0; i < 3; ++i) {
    EXPECT_NEAR(x.grad_vec()[static_cast<size_t>(i)], 8.0f * x.at(i) / 3.0f,
                1e-5f);
  }
}

TEST(TensorTest, BackwardSharedSubexpressionAccumulates) {
  // y = sum(x + x): dy/dx = 2.
  Tensor x = Tensor::FromData({2}, {1, 1}, true);
  Tensor y = Sum(Add(x, x));
  y.Backward();
  EXPECT_FLOAT_EQ(x.grad_vec()[0], 2.0f);
  EXPECT_FLOAT_EQ(x.grad_vec()[1], 2.0f);
}

TEST(TensorTest, ZeroGradClears) {
  Tensor x = Tensor::FromData({2}, {1, 2}, true);
  Sum(x).Backward();
  EXPECT_FLOAT_EQ(x.grad_vec()[0], 1.0f);
  x.ZeroGrad();
  EXPECT_FLOAT_EQ(x.grad_vec()[0], 0.0f);
}

TEST(TensorTest, NoGradLeafGetsNoGradient) {
  Tensor x = Tensor::FromData({2}, {1, 2}, true);
  Tensor c = Tensor::FromData({2}, {3, 4});  // constant
  Sum(Mul(x, c)).Backward();
  EXPECT_TRUE(c.grad_vec().empty() ||
              (c.grad_vec()[0] == 0.0f && c.grad_vec()[1] == 0.0f));
  EXPECT_FLOAT_EQ(x.grad_vec()[0], 3.0f);
}

TEST(TensorTest, DeepGraphBackwardIsIterative) {
  // A long chain would overflow the stack with recursive backward.
  Tensor x = Tensor::Scalar(1.0f, true);
  Tensor y = x;
  for (int i = 0; i < 20000; ++i) y = AddScalar(y, 0.0f);
  Sum(y).Backward();
  EXPECT_FLOAT_EQ(x.grad_vec()[0], 1.0f);
}

// A default-constructed Tensor is a null handle: defined() says so, and
// every accessor aborts with a diagnostic instead of dereferencing null.
TEST(TensorDeathTest, DefaultConstructedAccessorsDie) {
  Tensor t;
  EXPECT_FALSE(t.defined());
  EXPECT_DEATH(t.shape(), "PREQR_CHECK failed");
  EXPECT_DEATH(t.ndim(), "PREQR_CHECK failed");
  EXPECT_DEATH(t.size(), "PREQR_CHECK failed");
  EXPECT_DEATH(t.data(), "PREQR_CHECK failed");
  EXPECT_DEATH(t.vec(), "PREQR_CHECK failed");
  EXPECT_DEATH(t.at(0), "PREQR_CHECK failed");
  EXPECT_DEATH(t.requires_grad(), "PREQR_CHECK failed");
  EXPECT_DEATH(t.set_requires_grad(true), "PREQR_CHECK failed");
  EXPECT_DEATH(t.grad_data(), "PREQR_CHECK failed");
  EXPECT_DEATH(t.grad_vec(), "PREQR_CHECK failed");
  EXPECT_DEATH(t.ZeroGrad(), "PREQR_CHECK failed");
  EXPECT_DEATH(t.Backward(), "PREQR_CHECK failed");
}

}  // namespace
}  // namespace preqr::nn
