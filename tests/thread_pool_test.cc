// Tests for the fixed-size ThreadPool and its ParallelFor helper: lifecycle,
// full index coverage, exception propagation, nested submission, and a
// stress run with many tiny tasks.
#include <atomic>
#include <cstdlib>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"

namespace preqr {
namespace {

TEST(ThreadPoolTest, ConstructAndTeardownVariousSizes) {
  for (int n : {1, 2, 4, 8}) {
    ThreadPool pool(n);
    EXPECT_EQ(pool.num_threads(), n);
  }
  // <=0 falls back to the default size (at least one thread).
  ThreadPool def(0);
  EXPECT_GE(def.num_threads(), 1);
}

TEST(ThreadPoolTest, DefaultNumThreadsHonoursEnv) {
  setenv("PREQR_NUM_THREADS", "3", 1);
  EXPECT_EQ(ThreadPool::DefaultNumThreads(), 3);
  setenv("PREQR_NUM_THREADS", "0", 1);  // invalid -> hardware default
  EXPECT_GE(ThreadPool::DefaultNumThreads(), 1);
  unsetenv("PREQR_NUM_THREADS");
  EXPECT_GE(ThreadPool::DefaultNumThreads(), 1);
}

TEST(ThreadPoolTest, SubmitRunsTask) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  auto f = pool.Submit([&] { ran.fetch_add(1); });
  f.wait();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPoolTest, SubmitPropagatesException) {
  ThreadPool pool(2);
  auto f = pool.Submit([] { throw std::runtime_error("task boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    for (int64_t n : {0, 1, 7, 64, 1000}) {
      for (int64_t grain : {1, 3, 64, 1000}) {
        std::vector<std::atomic<int>> hits(static_cast<size_t>(n));
        for (auto& h : hits) h.store(0);
        // Note: the serial fast path may pass the whole range as one chunk,
        // so chunk sizes are not asserted — only exact index coverage.
        pool.ParallelFor(0, n, grain, [&](int64_t b, int64_t e) {
          ASSERT_LE(b, e);
          for (int64_t i = b; i < e; ++i) {
            hits[static_cast<size_t>(i)].fetch_add(1);
          }
        });
        for (int64_t i = 0; i < n; ++i) {
          EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1)
              << "threads=" << threads << " n=" << n << " grain=" << grain
              << " index=" << i;
        }
      }
    }
  }
}

TEST(ThreadPoolTest, ParallelForNonZeroBegin) {
  ThreadPool pool(4);
  std::atomic<int64_t> sum{0};
  pool.ParallelFor(10, 110, 7, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) sum.fetch_add(i);
  });
  EXPECT_EQ(sum.load(), (10 + 109) * 100 / 2);
}

TEST(ThreadPoolTest, ParallelForPropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(0, 100, 1,
                       [](int64_t b, int64_t) {
                         if (b == 42) throw std::runtime_error("chunk boom");
                       }),
      std::runtime_error);
  // The pool remains usable after an exception.
  std::atomic<int> count{0};
  pool.ParallelFor(0, 16, 1,
                   [&](int64_t b, int64_t e) {
                     count.fetch_add(static_cast<int>(e - b));
                   });
  EXPECT_EQ(count.load(), 16);
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64 * 32);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(0, 64, 1, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) {
      // Nested call: must complete inline without deadlocking the pool.
      pool.ParallelFor(0, 32, 4, [&](int64_t jb, int64_t je) {
        for (int64_t j = jb; j < je; ++j) {
          hits[static_cast<size_t>(i * 32 + j)].fetch_add(1);
        }
      });
    }
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, NestedSubmitDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  auto outer = pool.Submit([&] {
    // Submitting from inside a worker must be safe; the inner task may run
    // on any thread once the outer task returns.
    pool.Submit([&] { ran.fetch_add(1); });
    ran.fetch_add(1);
  });
  outer.wait();
  // Inner task drains by the destructor at the latest.
  // (Wait for it explicitly to avoid relying on teardown ordering.)
  while (ran.load() < 2) std::this_thread::yield();
  EXPECT_EQ(ran.load(), 2);
}

TEST(ThreadPoolTest, StressManyTinyTasks) {
  ThreadPool pool(8);
  constexpr int kTasks = 10000;
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  futures.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    futures.push_back(pool.Submit([&] { count.fetch_add(1); }));
  }
  for (auto& f : futures) f.wait();
  EXPECT_EQ(count.load(), kTasks);
}

TEST(ThreadPoolTest, StressParallelForManyTinyChunks) {
  ThreadPool pool(8);
  std::atomic<int64_t> sum{0};
  for (int round = 0; round < 20; ++round) {
    pool.ParallelFor(0, 500, 1, [&](int64_t b, int64_t e) {
      for (int64_t i = b; i < e; ++i) sum.fetch_add(1);
    });
  }
  EXPECT_EQ(sum.load(), 20 * 500);
}

TEST(ThreadPoolTest, GlobalPoolRebuild) {
  ThreadPool::SetGlobalThreads(2);
  EXPECT_EQ(ThreadPool::Global().num_threads(), 2);
  std::atomic<int> count{0};
  ParallelFor(0, 100, 10, [&](int64_t b, int64_t e) {
    count.fetch_add(static_cast<int>(e - b));
  });
  EXPECT_EQ(count.load(), 100);
  ThreadPool::SetGlobalThreads(0);  // restore default
}

}  // namespace
}  // namespace preqr
