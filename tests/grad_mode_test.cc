#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "nn/ops.h"
#include "nn/tensor.h"

namespace preqr::nn {
namespace {

TEST(GradModeTest, DefaultEnabled) { EXPECT_TRUE(GradMode::enabled()); }

TEST(GradModeTest, NestedGuardsRestore) {
  EXPECT_TRUE(GradMode::enabled());
  {
    NoGradGuard outer;
    EXPECT_FALSE(GradMode::enabled());
    {
      NoGradGuard inner;
      EXPECT_FALSE(GradMode::enabled());
    }
    EXPECT_FALSE(GradMode::enabled());
  }
  EXPECT_TRUE(GradMode::enabled());
}

// Under NoGradGuard no op may record itself on the tape, even when every
// input requires grad: empty parents, null grad_fn, requires_grad=false.
TEST(GradModeTest, NoGradGuardSkipsTapeAcrossOps) {
  Rng rng(7);
  Tensor x = Tensor::Randn({4, 4}, rng, 1.0f, /*requires_grad=*/true);
  Tensor w = Tensor::Randn({4, 4}, rng, 1.0f, /*requires_grad=*/true);
  Tensor gamma = Tensor::Full({4}, 1.0f, /*requires_grad=*/true);
  Tensor beta = Tensor::Zeros({4}, /*requires_grad=*/true);
  Rng dropout_rng(3);

  NoGradGuard guard;
  std::vector<Tensor> outs;
  outs.push_back(Add(x, x));
  outs.push_back(Sub(x, x));
  outs.push_back(Mul(x, x));
  outs.push_back(Scale(x, 2.0f));
  outs.push_back(AddBias(x, beta));
  outs.push_back(Relu(x));
  outs.push_back(Gelu(x));
  outs.push_back(Tanh(x));
  outs.push_back(Sigmoid(x));
  outs.push_back(MatMul(x, w));
  outs.push_back(Transpose(x));
  outs.push_back(SoftmaxLastDim(x));
  outs.push_back(LayerNormOp(x, gamma, beta));
  outs.push_back(Sum(x));
  outs.push_back(Mean(x));
  outs.push_back(MeanRows(x));
  outs.push_back(MaxRows(x));
  outs.push_back(MeanRowsSubset(x, {0, 2}));
  outs.push_back(Reshape(x, {2, 8}));
  outs.push_back(ConcatLastDim({x, x}));
  outs.push_back(ConcatRows({x, x}));
  outs.push_back(SliceLastDim(x, 1, 2));
  outs.push_back(SliceRows(x, 1, 2));
  outs.push_back(Gather(w, {0, 2, 1}));
  outs.push_back(SparseAggregate(x, {{0, 1}, {1, 2}}, {1.0f, 0.5f}));
  outs.push_back(CrossEntropy(x, {0, 1, 2, 3}));
  outs.push_back(MseLoss(Reshape(x, {16}), std::vector<float>(16, 0.5f)));
  outs.push_back(Dropout(x, 0.5f, dropout_rng, /*train=*/true));
  for (const auto& t : outs) {
    EXPECT_FALSE(t.requires_grad());
    EXPECT_TRUE(t.impl()->parents.empty());
    EXPECT_FALSE(static_cast<bool>(t.impl()->grad_fn));
  }
}

TEST(GradModeTest, DetachDropsTapeAndIsolatesStorage) {
  Tensor x = Tensor::FromData({2, 2}, {1, 2, 3, 4}, /*requires_grad=*/true);
  Tensor y = Scale(x, 2.0f);
  EXPECT_TRUE(y.requires_grad());
  EXPECT_FALSE(y.impl()->parents.empty());

  Tensor d = y.Detach();
  EXPECT_FALSE(d.requires_grad());
  EXPECT_TRUE(d.impl()->parents.empty());
  EXPECT_FALSE(static_cast<bool>(d.impl()->grad_fn));
  EXPECT_EQ(d.vec(), y.vec());
  // Detach copies: mutating the copy must not touch the source.
  d.vec()[0] = 42.0f;
  EXPECT_FLOAT_EQ(y.vec()[0], 2.0f);
}

// The same computation must produce bit-for-bit equal values with the tape
// on and off — grad mode only changes bookkeeping, never numerics.
TEST(GradModeTest, ValuesBitwiseIdenticalGradOnVsOff) {
  Rng rng(11);
  Tensor x = Tensor::Randn({6, 8}, rng, 1.0f, /*requires_grad=*/true);
  Tensor w = Tensor::Randn({8, 8}, rng, 0.5f, /*requires_grad=*/true);
  Tensor gamma = Tensor::Full({8}, 1.0f, /*requires_grad=*/true);
  Tensor beta = Tensor::Zeros({8}, /*requires_grad=*/true);
  auto run = [&] {
    Tensor h = MatMul(x, w);
    h = Gelu(h);
    h = LayerNormOp(h, gamma, beta);
    return SoftmaxLastDim(h);
  };
  Tensor taped = run();
  Tensor plain;
  {
    NoGradGuard guard;
    plain = run();
  }
  EXPECT_TRUE(taped.requires_grad());
  EXPECT_FALSE(plain.requires_grad());
  ASSERT_EQ(taped.vec().size(), plain.vec().size());
  EXPECT_EQ(std::memcmp(taped.data(), plain.data(),
                        taped.vec().size() * sizeof(float)),
            0);
}

TEST(GradModeTest, GuardDoesNotLeakToOtherThreads) {
  NoGradGuard guard;
  EXPECT_FALSE(GradMode::enabled());
  bool other_thread_enabled = false;
  std::thread t([&] { other_thread_enabled = GradMode::enabled(); });
  t.join();
  EXPECT_TRUE(other_thread_enabled);
}

TEST(GradModeTest, ThreadLocalIndependenceUnderParallelFor) {
  ThreadPool::SetGlobalThreads(4);
  Tensor x = Tensor::FromData({2}, {1, 2}, /*requires_grad=*/true);
  constexpr int64_t kN = 64;
  std::vector<char> taped(static_cast<size_t>(kN), 1);
  ParallelFor(0, kN, 1, [&](int64_t b0, int64_t b1) {
    // Installed per chunk: covers pool workers and the caller thread alike.
    NoGradGuard guard;
    for (int64_t i = b0; i < b1; ++i) {
      Tensor y = Add(x, x);
      taped[static_cast<size_t>(i)] = y.requires_grad() ? 1 : 0;
    }
  });
  for (char t : taped) EXPECT_EQ(t, 0);
  // The guards died with their chunks; this thread's tape is back on.
  EXPECT_TRUE(GradMode::enabled());
  Tensor z = Add(x, x);
  EXPECT_TRUE(z.requires_grad());
  ThreadPool::SetGlobalThreads(0);  // restore default
}

// Calling Backward on a tensor produced inside a no-grad region is a
// programming error and must fail loudly, not silently no-op.
TEST(GradModeDeathTest, BackwardAfterNoGradDies) {
  Tensor x = Tensor::FromData({2}, {1, 2}, /*requires_grad=*/true);
  Tensor loss;
  {
    NoGradGuard guard;
    loss = Sum(x);
  }
  EXPECT_DEATH(loss.Backward(), "no autograd tape");
}

}  // namespace
}  // namespace preqr::nn
