// Grammar-driven SQL fuzzing + concurrent stress harness (ISSUE 6): the
// deterministic fuzz stream, the 10k-query front-door drill over
// lexer/parser/automaton/tokenizer, batch-poisoning checks, fallback metric
// accounting, and encodes racing ReloadModel/InvalidateCache. Re-run under
// ASan and TSan by scripts/check.sh's FUZZ stage; scripts/fuzz.sh scales
// the same suites up via PREQR_FUZZ_QUERIES / PREQR_FUZZ_SEEDS.
#include "workload/sql_fuzz.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>
#include <thread>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "automaton/template_extractor.h"
#include "nn/kernels_dispatch.h"
#include "db/stats.h"
#include "nn/serialize.h"
#include "schema/schema_graph.h"
#include "serving/encoder_service.h"
#include "sql/lexer.h"
#include "sql/parser.h"
#include "tasks/preqr_encoder.h"
#include "text/tokenizer.h"
#include "workload/imdb.h"
#include "workload/query_gen.h"

namespace preqr::workload {
namespace {

std::vector<uint64_t> FuzzSeeds() {
  return SeedsFromEnv("PREQR_FUZZ_SEEDS", {101, 102, 103});
}

uint64_t FuzzQueryBudget(uint64_t default_count) {
  const auto v = SeedsFromEnv("PREQR_FUZZ_QUERIES", {default_count});
  return v.front() == 0 ? default_count : v.front();
}

struct Env {
  db::Database imdb = MakeImdbDatabase(7, 0.02);
  std::vector<db::TableStats> stats;
  std::unique_ptr<text::SqlTokenizer> tokenizer;
  automaton::Automaton fa;
  schema::SchemaGraph graph;
  std::vector<std::string> corpus;

  Env() {
    db::StatsCollector collector;
    stats = collector.AnalyzeAll(imdb);
    tokenizer = std::make_unique<text::SqlTokenizer>(imdb.catalog(), stats, 8);
    ImdbQueryGenerator gen(imdb, 3);
    std::unordered_set<std::string> seen;
    for (const auto& q : gen.Synthetic(16, 2)) {
      if (seen.insert(q.sql).second) corpus.push_back(q.sql);
    }
    automaton::TemplateExtractor extractor(0.2);
    fa = extractor.BuildAutomaton(corpus);
    graph = schema::SchemaGraph::Build(imdb.catalog());
  }
  core::PreqrModel MakeModel() {
    core::PreqrConfig config;
    config.d_model = 16;
    config.num_heads = 2;
    config.ffn_hidden = 32;
    config.state_dim = 8;
    config.pos_dim = 8;
    return core::PreqrModel(config, tokenizer.get(), &fa, &graph, 17);
  }
  // Fuzz shapes for the encode-path tests: smaller extremes than the
  // front-door drill so transformer forwards stay cheap.
  SqlFuzzOptions EncodeOptions() const {
    SqlFuzzOptions options;
    options.max_in_list = 12;
    options.max_join_chain = 6;
    options.max_subquery_depth = 2;
    options.max_union_chain = 1;
    return options;
  }
};

Env& E() {
  static Env* env = new Env();
  return *env;
}

// --- The deterministic stream --------------------------------------------

TEST(SqlFuzzerTest, StreamIsBitwiseDeterministicPerSeed) {
  for (uint64_t seed : FuzzSeeds()) {
    SqlFuzzer a(E().imdb.catalog(), seed);
    SqlFuzzer b(E().imdb.catalog(), seed);
    for (int i = 0; i < 500; ++i) {
      const FuzzCase ca = a.Next();
      const FuzzCase cb = b.Next();
      ASSERT_EQ(ca.sql, cb.sql) << "seed=" << seed << " index=" << i;
      ASSERT_EQ(ca.from_grammar, cb.from_grammar)
          << "seed=" << seed << " index=" << i;
    }
  }
}

TEST(SqlFuzzerTest, CaseAtIsRandomAccessIntoTheSameStream) {
  SqlFuzzer stream(E().imdb.catalog(), 99);
  std::vector<FuzzCase> sequential;
  for (int i = 0; i < 64; ++i) sequential.push_back(stream.Next());
  SqlFuzzer random(E().imdb.catalog(), 99);
  // Access out of order: every case is a pure function of (seed, index).
  for (int i = 63; i >= 0; --i) {
    const FuzzCase c = random.CaseAt(static_cast<uint64_t>(i));
    EXPECT_EQ(c.sql, sequential[static_cast<size_t>(i)].sql) << c.Describe();
  }
}

TEST(SqlFuzzerTest, DifferentSeedsDiverge) {
  SqlFuzzer a(E().imdb.catalog(), 1);
  SqlFuzzer b(E().imdb.catalog(), 2);
  int differing = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.Next().sql != b.Next().sql) ++differing;
  }
  EXPECT_GT(differing, 40);
}

// Every grammar-generated (non-mutated) case must parse: the generator
// follows the parser's grammar exactly, including mixed-case keywords,
// pathological whitespace, deep join chains, and huge IN lists.
TEST(SqlFuzzerTest, GrammarCasesAlwaysParse) {
  for (uint64_t seed : FuzzSeeds()) {
    SqlFuzzer fuzzer(E().imdb.catalog(), seed);
    int grammar_cases = 0;
    for (int i = 0; i < 300; ++i) {
      const FuzzCase c = fuzzer.Next();
      if (!c.from_grammar) continue;
      ++grammar_cases;
      auto parsed = sql::Parse(c.sql);
      ASSERT_TRUE(parsed.ok())
          << parsed.status().ToString() << "\n  " << c.Describe();
    }
    EXPECT_GT(grammar_cases, 100) << "seed=" << seed;
  }
}

// The generator reaches the extremes it promises (deep joins, huge IN
// lists, mutated garbage) — otherwise the whole harness fuzzes a toy
// distribution and the stress results mean nothing.
TEST(SqlFuzzerTest, StreamCoversTheExtremes) {
  SqlFuzzer fuzzer(E().imdb.catalog(), 7);
  size_t max_tables = 0, max_in = 0;
  int mutated = 0, grammar = 0, parse_failures = 0;
  for (int i = 0; i < 2000; ++i) {
    const FuzzCase c = fuzzer.Next();
    c.from_grammar ? ++grammar : ++mutated;
    auto parsed = sql::Parse(c.sql);
    if (!parsed.ok()) {
      ++parse_failures;
      continue;
    }
    max_tables = std::max(max_tables, parsed.value().tables.size());
    for (const auto& p : parsed.value().predicates) {
      max_in = std::max(max_in, p.values.size());
    }
  }
  EXPECT_GE(max_tables, 8u);
  EXPECT_GE(max_in, 40u);
  EXPECT_GT(mutated, 500);
  EXPECT_GT(grammar, 500);
  // Mutations must actually break queries some of the time.
  EXPECT_GT(parse_failures, 200);
}

// --- Front-door drill: tokenizer, parser, automaton ----------------------

// The 10k-query mixed valid/mutated run (PREQR_FUZZ_QUERIES scales it up
// for scripts/fuzz.sh long runs): lexer, parser, structural symbols,
// template normalization, automaton match, and the schema-aware tokenizer
// must never crash; every failure surfaces as a Status; grammar cases
// tokenize end to end.
TEST(FuzzFrontDoorTest, TenThousandQueriesNeverCrashThePipeline) {
  const uint64_t budget = FuzzQueryBudget(10000);
  const auto seeds = FuzzSeeds();
  const uint64_t per_seed = budget / seeds.size() + 1;
  uint64_t ran = 0, lex_errors = 0, parse_errors = 0;
  for (uint64_t seed : seeds) {
    SqlFuzzer fuzzer(E().imdb.catalog(), seed);
    for (uint64_t i = 0; i < per_seed; ++i) {
      const FuzzCase c = fuzzer.Next();
      ++ran;
      auto lexed = sql::Lex(c.sql);
      auto parsed = sql::Parse(c.sql);
      auto tokenized = E().tokenizer->Tokenize(c.sql);
      if (!lexed.ok()) {
        ++lex_errors;
        // A lex failure must carry a message and imply parse/tokenize
        // failure — never a crash, never a silent success downstream.
        ASSERT_FALSE(lexed.status().message().empty()) << c.Describe();
        ASSERT_FALSE(parsed.ok()) << c.Describe();
        ASSERT_FALSE(tokenized.ok()) << c.Describe();
      } else {
        // Lex-ok inputs feed the automaton channel unconditionally (the
        // serving path symbolizes before parsing).
        const auto symbols = automaton::StructuralSymbols(lexed.value());
        ASSERT_EQ(symbols.size(), lexed.value().size()) << c.Describe();
        const auto match = E().fa.Match(symbols);
        ASSERT_EQ(match.states.size(), symbols.size()) << c.Describe();
        const auto norm = automaton::NormalizeForTemplate(c.sql);
        const double self = automaton::TemplateDistance(norm, norm);
        ASSERT_GE(self, 0.0) << c.Describe();
        ASSERT_LE(self, 1.0) << c.Describe();
      }
      if (!parsed.ok()) {
        ++parse_errors;
        ASSERT_FALSE(parsed.status().message().empty()) << c.Describe();
        ASSERT_FALSE(tokenized.ok()) << c.Describe();
      } else {
        ASSERT_TRUE(tokenized.ok())
            << tokenized.status().ToString() << "\n  " << c.Describe();
        // Aligned channels: one symbol/quantile per token, [CLS] first.
        const auto& t = tokenized.value();
        ASSERT_EQ(t.tokens.size(), t.ids.size()) << c.Describe();
        ASSERT_EQ(t.tokens.size(), t.symbols.size()) << c.Describe();
        ASSERT_EQ(t.tokens.size(), t.quantiles.size()) << c.Describe();
        ASSERT_EQ(t.tokens.front(), "[CLS]") << c.Describe();
      }
      if (c.from_grammar) {
        ASSERT_TRUE(parsed.ok())
            << parsed.status().ToString() << "\n  " << c.Describe();
      }
    }
  }
  EXPECT_GE(ran, budget);
  // The mix actually mixes: both healthy and broken inputs ran.
  EXPECT_GT(parse_errors, ran / 10);
  EXPECT_LT(parse_errors, ran);
  EXPECT_GT(lex_errors, 0u);
  std::printf("[fuzz] front door: %llu queries, %llu lex errors, %llu parse "
              "errors\n",
              static_cast<unsigned long long>(ran),
              static_cast<unsigned long long>(lex_errors),
              static_cast<unsigned long long>(parse_errors));
}

// Regression shapes for the parser hardening that fuzzing motivated: deep
// nesting is a Status (not a stack overflow), out-of-int64 literals are a
// Status (not undefined behavior), and both keep the message actionable.
TEST(FuzzFrontDoorTest, HostileShapesReturnStatusNotCrash) {
  // 400 nested IN-subqueries: far past the parser's depth limit.
  std::string deep = "SELECT a FROM t WHERE x IN (";
  for (int i = 0; i < 399; ++i) deep += "SELECT a FROM t WHERE x IN (";
  deep += "SELECT a FROM t";
  for (int i = 0; i < 400; ++i) deep += ")";
  auto nested = sql::Parse(deep);
  ASSERT_FALSE(nested.ok());
  EXPECT_NE(nested.status().message().find("depth"), std::string::npos);

  // 400-branch UNION chain recurses just like subqueries.
  std::string unions = "SELECT a FROM t";
  for (int i = 0; i < 400; ++i) unions += " UNION SELECT a FROM t";
  auto chained = sql::Parse(unions);
  ASSERT_FALSE(chained.ok());
  EXPECT_NE(chained.status().message().find("depth"), std::string::npos);

  // Out-of-range integer literals in every literal position.
  for (const char* sql :
       {"SELECT a FROM t WHERE x = 99999999999999999999",
        "SELECT a FROM t WHERE x IN (1, 99999999999999999999)",
        "SELECT a FROM t WHERE x BETWEEN 1 AND 99999999999999999999",
        "SELECT a FROM t LIMIT 99999999999999999999"}) {
    auto parsed = sql::Parse(sql);
    ASSERT_FALSE(parsed.ok()) << sql;
    EXPECT_NE(parsed.status().message().find("int64"), std::string::npos)
        << sql;
  }
  // Depth *under* the limit still parses — the cap only rejects hostile
  // nesting, not deep-but-legal workloads.
  std::string legal = "SELECT a FROM t";
  for (int i = 0; i < 30; ++i) legal += " UNION SELECT a FROM t";
  EXPECT_TRUE(sql::Parse(legal).ok());
}

// --- Minimizer ------------------------------------------------------------

TEST(FuzzMinimizeTest, MinimizerShrinksWhilePreservingTheFailure) {
  const std::string original =
      "SELECT title.id, COUNT( * ) FROM title , movie_info WHERE "
      "title.production_year = 99999999999999999999 AND title.id = "
      "movie_info.movie_id ORDER BY title.id DESC LIMIT 5";
  auto fails_int64 = [](const std::string& candidate) {
    auto parsed = sql::Parse(candidate);
    return !parsed.ok() &&
           parsed.status().message().find("int64") != std::string::npos;
  };
  ASSERT_TRUE(fails_int64(original));
  const std::string minimized = SqlFuzzer::Minimize(original, fails_int64);
  EXPECT_TRUE(fails_int64(minimized));
  EXPECT_LT(minimized.size(), original.size() / 2)
      << "minimized to: " << minimized;
  // A predicate nothing satisfies leaves the input untouched.
  EXPECT_EQ(SqlFuzzer::Minimize("SELECT 1", [](const std::string&) {
              return false;
            }),
            "SELECT 1");
}

// --- Encode path: batches, fallbacks, metrics -----------------------------

void ExpectBitwiseEqual(const std::vector<float>& a,
                        const std::vector<float>& b, const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  if (a.empty()) return;
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0)
      << what << ": bitwise mismatch";
}

// Malformed batch members must never poison neighbors: every valid slot of
// a hostile mixed batch is bitwise-identical to encoding it alone.
TEST(FuzzEncodeTest, MixedBatchesNeverPoisonNeighbors) {
  auto model = E().MakeModel();
  tasks::PreqrEncoder reference(&model);
  tasks::PreqrEncoder wrapped(&model);
  serving::EncoderService service(&wrapped);

  SqlFuzzer fuzzer(E().imdb.catalog(), 11, E().EncodeOptions());
  std::vector<FuzzCase> cases;
  for (int i = 0; i < 48; ++i) cases.push_back(fuzzer.Next());
  std::vector<std::string> sqls;
  for (const auto& c : cases) sqls.push_back(c.sql);

  auto batched = service.EncodeBatch(sqls);
  ASSERT_EQ(batched.size(), sqls.size());
  int ok_slots = 0, error_slots = 0;
  for (size_t i = 0; i < sqls.size(); ++i) {
    auto solo = reference.TryEncodeVector(sqls[i], /*train=*/false);
    ASSERT_EQ(batched[i].ok(), solo.ok()) << cases[i].Describe();
    if (solo.ok()) {
      ++ok_slots;
      ExpectBitwiseEqual(solo.value().vec(), batched[i].value().vec(),
                         cases[i].Describe());
    } else {
      ++error_slots;
      EXPECT_FALSE(batched[i].status().message().empty())
          << cases[i].Describe();
    }
  }
  // The stream mixed healthy and broken slots in one batch.
  EXPECT_GT(ok_slots, 0);
  EXPECT_GT(error_slots, 0);
  EXPECT_EQ(service.metrics().errors.value(),
            static_cast<uint64_t>(error_slots));
}

// encode_fallback_total accounts for every query the legacy zero-vector
// path sheds, and the padded-batch occupancy stats keep moving.
TEST(FuzzEncodeTest, FallbackMetricsAccountForEveryShedQuery) {
  auto model = E().MakeModel();
  tasks::PreqrEncoder encoder(&model);

  SqlFuzzer fuzzer(E().imdb.catalog(), 13, E().EncodeOptions());
  std::vector<std::string> sqls;
  int malformed = 0;
  for (int i = 0; i < 40; ++i) {
    const FuzzCase c = fuzzer.Next();
    sqls.push_back(c.sql);
    if (!sql::Parse(c.sql).ok()) ++malformed;
  }
  ASSERT_GT(malformed, 0);

  const auto before = serving::GlobalEncodePathStats();
  auto vectors = encoder.EncodeVectorBatch(sqls, /*train=*/false);
  const auto after = serving::GlobalEncodePathStats();
  ASSERT_EQ(vectors.size(), sqls.size());
  // Exactly the unparseable queries fell back; each still produced a
  // correctly-shaped vector so downstream task loops keep working.
  EXPECT_EQ(after.fallback_total - before.fallback_total,
            static_cast<uint64_t>(malformed));
  for (const auto& v : vectors) {
    EXPECT_EQ(static_cast<int>(v.size()), encoder.dim());
  }
  EXPECT_GT(after.padded_batches, before.padded_batches);
  EXPECT_GE(after.valid_tokens, before.valid_tokens);
  EXPECT_GE(after.Occupancy(), 0.0);
  EXPECT_LE(after.Occupancy(), 1.0);
}

// --- Kernel-path drill: scalar vs AVX2 vs int8 -----------------------------

// Replays the checked-in fuzz corpus plus a deterministic fuzz stream
// through every kernel path the encoder can take: the scalar table, the
// AVX2 table (when the host supports it), and the int8 quantized GEMM.
// Invariants: per-slot Status parity across paths (the accept/reject
// decision must not depend on the kernel impl), same-impl reruns are
// bitwise identical (the determinism contract), and int8 embeddings stay
// within an L2 drift bound of the float path.
TEST(FuzzKernelPathTest, CorpusAndFuzzStreamAgreeAcrossKernelPaths) {
  const char* entry_impl = nn::kernels::ActiveImplName();

  // Inputs: every corpus file + a capped fuzz stream (PREQR_FUZZ_QUERIES
  // scales it; scripts/fuzz.sh long runs push it to the full 2k+).
  std::vector<std::string> sqls;
  {
    const std::filesystem::path dir(PREQR_FUZZ_CORPUS_DIR);
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      if (entry.path().extension() != ".sql") continue;
      std::ifstream in(entry.path());
      std::string sql((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
      while (!sql.empty() && (sql.back() == '\n' || sql.back() == '\r')) {
        sql.pop_back();
      }
      if (!sql.empty()) sqls.push_back(std::move(sql));
    }
    ASSERT_GT(sqls.size(), 5u) << "corpus missing under "
                               << PREQR_FUZZ_CORPUS_DIR;
    SqlFuzzer fuzzer(E().imdb.catalog(), 77, E().EncodeOptions());
    const uint64_t budget = FuzzQueryBudget(2000);
    for (uint64_t i = 0; i < budget; ++i) sqls.push_back(fuzzer.Next().sql);
  }

  auto model = E().MakeModel();
  // Encodes the whole input set in padded batches under the *current*
  // kernel impl with a fresh encoder (fresh cache) and returns per-slot
  // results.
  auto encode_all = [&](bool use_int8) {
    tasks::PreqrEncoder::Options options;
    options.use_int8 = use_int8;
    tasks::PreqrEncoder encoder(&model, options);
    std::vector<StatusOr<nn::Tensor>> results;
    results.reserve(sqls.size());
    constexpr size_t kBatch = 32;
    for (size_t at = 0; at < sqls.size(); at += kBatch) {
      const size_t n = std::min(kBatch, sqls.size() - at);
      std::vector<std::string> chunk(sqls.begin() + at,
                                     sqls.begin() + at + n);
      auto part = encoder.TryEncodeVectorBatch(chunk, /*train=*/false);
      for (auto& r : part) results.push_back(std::move(r));
    }
    return results;
  };

  ASSERT_TRUE(nn::kernels::SetActiveImpl("scalar"));
  const auto scalar_a = encode_all(/*use_int8=*/false);
  const auto scalar_b = encode_all(/*use_int8=*/false);
  const auto int8_run = encode_all(/*use_int8=*/true);
  ASSERT_EQ(scalar_a.size(), sqls.size());

  int ok_slots = 0, error_slots = 0;
  double worst_drift = 0.0;
  for (size_t i = 0; i < sqls.size(); ++i) {
    // Same impl, fresh cache: bitwise identical, slot by slot.
    ASSERT_EQ(scalar_a[i].ok(), scalar_b[i].ok()) << sqls[i];
    if (scalar_a[i].ok()) {
      ++ok_slots;
      ExpectBitwiseEqual(scalar_a[i].value().vec(), scalar_b[i].value().vec(),
                         "scalar rerun: " + sqls[i]);
    } else {
      ++error_slots;
      EXPECT_EQ(scalar_a[i].status().code(), scalar_b[i].status().code())
          << sqls[i];
    }
    // Int8 path: identical accept/reject decision, bounded value drift.
    ASSERT_EQ(int8_run[i].ok(), scalar_a[i].ok())
        << "int8 Status parity: " << sqls[i];
    if (scalar_a[i].ok()) {
      const auto& f = scalar_a[i].value().vec();
      const auto& q = int8_run[i].value().vec();
      ASSERT_EQ(f.size(), q.size());
      double num = 0.0, den = 0.0;
      for (size_t j = 0; j < f.size(); ++j) {
        const double d = double(q[j]) - double(f[j]);
        num += d * d;
        den += double(f[j]) * double(f[j]);
      }
      const double drift = std::sqrt(num / std::max(den, 1e-12));
      worst_drift = std::max(worst_drift, drift);
    } else {
      EXPECT_EQ(int8_run[i].status().code(), scalar_a[i].status().code())
          << sqls[i];
    }
  }
  // The drill actually mixed healthy and broken inputs.
  EXPECT_GT(ok_slots, 0);
  EXPECT_GT(error_slots, 0);
  EXPECT_LT(worst_drift, 0.25) << "int8 embedding drifted too far from float";

  if (nn::kernels::Avx2Supported()) {
    ASSERT_TRUE(nn::kernels::SetActiveImpl("avx2"));
    const auto avx_a = encode_all(/*use_int8=*/false);
    const auto avx_b = encode_all(/*use_int8=*/false);
    for (size_t i = 0; i < sqls.size(); ++i) {
      // The accept/reject decision is impl-independent...
      ASSERT_EQ(avx_a[i].ok(), scalar_a[i].ok())
          << "avx2 Status parity: " << sqls[i];
      if (!avx_a[i].ok()) {
        EXPECT_EQ(avx_a[i].status().code(), scalar_a[i].status().code())
            << sqls[i];
        continue;
      }
      // ...avx2 is bitwise self-consistent across reruns...
      ExpectBitwiseEqual(avx_a[i].value().vec(), avx_b[i].value().vec(),
                         "avx2 rerun: " + sqls[i]);
      // ...and tracks scalar within float low-bit tolerance (FMA
      // contraction + the polynomial exp differ legitimately).
      const auto& s = scalar_a[i].value().vec();
      const auto& v = avx_a[i].value().vec();
      ASSERT_EQ(s.size(), v.size());
      for (size_t j = 0; j < s.size(); ++j) {
        EXPECT_NEAR(v[j], s[j], 1e-3 * std::max(1.0f, std::abs(s[j])))
            << "slot " << i << " dim " << j << ": " << sqls[i];
      }
    }
  }
  std::printf("[fuzz] kernel paths: %zu queries (%d ok, %d rejected), worst "
              "int8 drift %.4f, avx2 %s\n",
              sqls.size(), ok_slots, error_slots, worst_drift,
              nn::kernels::Avx2Supported() ? "exercised" : "unavailable");
  ASSERT_TRUE(nn::kernels::SetActiveImpl(entry_impl));
}

// --- The concurrent stress drill ------------------------------------------

// Mixed valid/mutated streams fired at EncoderService from 4 threads while
// a fifth hot-reloads the model (including failing reloads) and a sixth
// invalidates the cache. Invariants: no crash, every failure is a Status,
// valid grammar queries always encode, request accounting stays exact, and
// the service still serves correct bits afterwards. scripts/check.sh runs
// this under both ASan and TSan.
TEST(FuzzStressTest, EncodesRacingReloadAndInvalidateStayStatusClean) {
  auto model = E().MakeModel();
  tasks::PreqrEncoder encoder(&model);
  serving::EncoderService service(&encoder);
  service.AttachModel(&model);

  // A reload source: the same architecture with different weights.
  const std::string path = testing::TempDir() + "/fuzz_reload.prm1";
  {
    auto donor = E().MakeModel();
    ASSERT_TRUE(nn::SaveModule(donor, path).ok());
  }

  constexpr int kEncodeThreads = 4;
  constexpr int kCasesPerThread = 80;
  std::atomic<uint64_t> issued{0};
  std::atomic<uint64_t> ok_results{0};
  std::atomic<uint64_t> error_results{0};
  std::atomic<int> invariant_violations{0};
  std::atomic<bool> stop{false};

  std::vector<std::thread> threads;
  for (int t = 0; t < kEncodeThreads; ++t) {
    threads.emplace_back([&, t] {
      // Overlapping seeds across threads: duplicates force cache hits and
      // coalesced batches alongside fresh encodes.
      SqlFuzzer fuzzer(E().imdb.catalog(), 200 + static_cast<uint64_t>(t / 2),
                       E().EncodeOptions());
      for (int i = 0; i < kCasesPerThread; ++i) {
        const FuzzCase c = fuzzer.Next();
        if (i % 3 == 0) {
          // Small client-side batches exercise EncodeBatch under the races.
          std::vector<std::string> batch = {c.sql, fuzzer.Next().sql};
          auto results = service.EncodeBatch(batch);
          issued += batch.size();
          for (const auto& r : results) {
            r.ok() ? ++ok_results : ++error_results;
            if (!r.ok()) {
              if (r.status().message().empty()) ++invariant_violations;
              // The drill configures no deadlines and never fills the
              // ring, so the only legal failures are input rejections —
              // a shed/deadline/unavailable code here is a mis-coding.
              if (r.status().code() != StatusCode::kParseError &&
                  r.status().code() != StatusCode::kInvalidArgument) {
                ++invariant_violations;
              }
            }
          }
          continue;
        }
        auto result = service.Encode(c.sql);
        ++issued;
        result.ok() ? ++ok_results : ++error_results;
        if (result.ok()) {
          if (static_cast<int>(result.value().size()) != service.dim()) {
            ++invariant_violations;
          }
        } else {
          if (result.status().message().empty()) ++invariant_violations;
          if (c.from_grammar) ++invariant_violations;  // valid must encode
          if (result.status().code() != StatusCode::kParseError &&
              result.status().code() != StatusCode::kInvalidArgument) {
            ++invariant_violations;  // exact canonical code or bust
          }
        }
      }
    });
  }
  std::thread reloader([&] {
    int reloads = 0;
    while (!stop.load() && reloads < 64) {
      Status s = service.ReloadModel(path);
      if (!s.ok()) ++invariant_violations;  // the file is always loadable
      // A failing reload must leave serving untouched.
      Status bad = service.ReloadModel("/nonexistent/fuzz.prc1");
      if (bad.ok()) ++invariant_violations;
      ++reloads;
      std::this_thread::yield();
    }
  });
  std::thread invalidator([&] {
    while (!stop.load()) {
      service.InvalidateCache();
      std::this_thread::yield();
    }
  });
  for (auto& th : threads) th.join();
  stop.store(true);
  reloader.join();
  invalidator.join();

  EXPECT_EQ(invariant_violations.load(), 0);
  // Every third iteration issues a 2-query batch instead of one encode, so
  // the issued total exceeds the iteration count; what must hold exactly is
  // the issued-vs-metrics accounting below.
  EXPECT_GE(issued.load(),
            static_cast<uint64_t>(kEncodeThreads) * kCasesPerThread);
  const auto& m = service.metrics();
  EXPECT_EQ(m.requests.value(), issued.load());
  EXPECT_EQ(m.errors.value(), error_results.load());
  EXPECT_EQ(m.cache_hits.value() + m.cache_misses.value(), m.requests.value());
  EXPECT_GT(ok_results.load(), 0u);
  EXPECT_GT(error_results.load(), 0u);
  EXPECT_GT(m.reloads.value(), 0u);
  EXPECT_GT(m.reload_failures.value(), 0u);
  EXPECT_GT(m.invalidations.value(), 0u);

  // The service survived: a clean encode still matches a fresh encoder
  // over whatever weights the last reload installed.
  service.InvalidateCache();
  const std::string& probe = E().corpus.front();
  auto after = service.Encode(probe);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  tasks::PreqrEncoder fresh(&model);
  ExpectBitwiseEqual(fresh.EncodeVector(probe, /*train=*/false).vec(),
                     after.value().vec(), "post-stress encode");
  std::remove(path.c_str());
}

// --- The multi-tenant stress drill ----------------------------------------

// Fuzz streams race across three tenants of one service while a reloader
// hot-swaps each tenant's weights independently and a churner
// deregisters/re-registers the third tenant mid-drill. Invariants: no
// crash, every failure carries a canonical Status, steady tenants never
// see a kNotFound, request accounting stays exact
// (requests == hits + misses + tenant_not_found), every response names
// its tenant, and each tenant still serves solo-encoder bits afterwards.
// scripts/check.sh runs this under both ASan and TSan.
TEST(FuzzStressTest, MultiTenantEncodesRacingReloadAndDeregisterStayIsolated) {
  core::PreqrConfig config;
  config.d_model = 16;
  config.num_heads = 2;
  config.ffn_hidden = 32;
  config.state_dim = 8;
  config.pos_dim = 8;
  auto make_model = [&](uint64_t seed) {
    return core::PreqrModel(config, E().tokenizer.get(), &E().fa, &E().graph,
                            seed);
  };
  // Distinct seeds give distinct weights: a cross-tenant cache or weight
  // leak shows up as a bitwise mismatch in the post-drill probes.
  auto model_a = make_model(31);
  auto model_b = make_model(32);
  auto model_c = make_model(33);
  tasks::PreqrEncoder enc_a(&model_a);
  tasks::PreqrEncoder enc_b(&model_b);
  tasks::PreqrEncoder enc_c(&model_c);

  serving::EncoderServiceOptions options;
  options.ring_capacity = 1024;
  options.per_client_quota = 1024;
  serving::EncoderService service(options);
  ASSERT_TRUE(service.RegisterTenant("a", &enc_a, &model_a).ok());
  ASSERT_TRUE(service.RegisterTenant("b", &enc_b, &model_b).ok());
  ASSERT_TRUE(service.RegisterTenant("c", &enc_c, &model_c).ok());
  const int expected_dim = enc_a.dim();

  // Per-tenant reload donors: same architecture, fresh weights.
  const std::string path_a = testing::TempDir() + "/fuzz_tenant_a.prm1";
  const std::string path_b = testing::TempDir() + "/fuzz_tenant_b.prm1";
  {
    auto donor_a = make_model(41);
    auto donor_b = make_model(42);
    ASSERT_TRUE(nn::SaveModule(donor_a, path_a).ok());
    ASSERT_TRUE(nn::SaveModule(donor_b, path_b).ok());
  }

  constexpr int kCasesPerTenant = 70;
  std::atomic<uint64_t> issued{0};
  std::atomic<uint64_t> ok_results{0};
  std::atomic<uint64_t> error_results{0};      // kParseError / kInvalidArgument
  std::atomic<uint64_t> not_found_results{0};  // churn-tenant kNotFound only
  std::atomic<int> invariant_violations{0};
  std::atomic<bool> stop{false};

  auto account = [&](const StatusOr<serving::EncodeResponse>& r,
                     const std::string& tenant, bool churn,
                     bool from_grammar) {
    if (r.ok()) {
      ++ok_results;
      if (r.value().tenant_id != tenant) ++invariant_violations;
      if (static_cast<int>(r.value().embedding.size()) != expected_dim) {
        ++invariant_violations;
      }
      return;
    }
    if (r.status().message().empty()) ++invariant_violations;
    if (r.status().code() == StatusCode::kNotFound) {
      // Only the churn tenant may be mid-deregistration; a kNotFound for a
      // steady tenant is an isolation breach.
      ++not_found_results;
      if (!churn) ++invariant_violations;
      return;
    }
    ++error_results;
    // Grammar-valid SQL must encode whenever the tenant exists; malformed
    // SQL must fail with an input-rejection code, never a shed/deadline
    // mis-code (the drill configures no deadlines and never fills the
    // ring).
    if (from_grammar) ++invariant_violations;
    if (r.status().code() != StatusCode::kParseError &&
        r.status().code() != StatusCode::kInvalidArgument) {
      ++invariant_violations;
    }
  };

  std::vector<std::thread> threads;
  const std::vector<std::string> tenants = {"a", "b", "c"};
  for (size_t t = 0; t < tenants.size(); ++t) {
    threads.emplace_back([&, t] {
      const std::string tenant = tenants[t];
      const bool churn = tenant == "c";
      // Overlapping seeds across tenants: the same SQL lands in several
      // partitions, so any cross-tenant cache sharing gets exercised hard.
      SqlFuzzer fuzzer(E().imdb.catalog(), 300 + static_cast<uint64_t>(t / 2),
                       E().EncodeOptions());
      for (int i = 0; i < kCasesPerTenant; ++i) {
        const FuzzCase c = fuzzer.Next();
        serving::EncodeRequest request;
        request.tenant_id = tenant;
        request.sql = c.sql;
        if (i % 3 == 0) {
          // The synchronous batch path groups per tenant internally.
          const FuzzCase c2 = fuzzer.Next();
          serving::EncodeRequest second;
          second.tenant_id = tenant;
          second.sql = c2.sql;
          auto results = service.EncodeBatch(
              std::vector<serving::EncodeRequest>{request, second});
          issued += results.size();
          account(results[0], tenant, churn, c.from_grammar);
          account(results[1], tenant, churn, c2.from_grammar);
          continue;
        }
        auto result = service.Encode(request);
        ++issued;
        account(result, tenant, churn, c.from_grammar);
      }
    });
  }
  std::thread reloader([&] {
    int reloads = 0;
    while (!stop.load() && reloads < 48) {
      // Steady tenants reload independently; each drain must park only its
      // own tenant's admissions.
      Status sa = service.ReloadModel("a", path_a);
      if (!sa.ok()) ++invariant_violations;
      Status sb = service.ReloadModel("b", path_b);
      if (!sb.ok()) ++invariant_violations;
      // The churn tenant may be deregistered at this instant: ok and
      // kNotFound are the only legal outcomes.
      Status sc = service.ReloadModel("c", path_a);
      if (!sc.ok() && sc.code() != StatusCode::kNotFound) {
        ++invariant_violations;
      }
      // Failing reloads and ghost tenants must not disturb serving.
      if (service.ReloadModel("a", "/nonexistent/fuzz.prc1").ok()) {
        ++invariant_violations;
      }
      if (service.ReloadModel("ghost", path_a).code() !=
          StatusCode::kNotFound) {
        ++invariant_violations;
      }
      ++reloads;
      std::this_thread::yield();
    }
  });
  std::thread churner([&] {
    while (!stop.load()) {
      Status out = service.DeregisterTenant("c");
      if (!out.ok()) ++invariant_violations;
      std::this_thread::yield();
      Status in = service.RegisterTenant("c", &enc_c, &model_c);
      if (!in.ok()) ++invariant_violations;
      std::this_thread::yield();
    }
  });
  for (auto& th : threads) th.join();
  stop.store(true);
  reloader.join();
  churner.join();
  ASSERT_TRUE(service.HasTenant("c"));  // the churner always re-registers

  EXPECT_EQ(invariant_violations.load(), 0);
  const auto& m = service.metrics();
  EXPECT_EQ(m.requests.value(), issued.load());
  // Exact admission accounting: every request resolved as a hit, a miss,
  // or a pre-probe unknown-tenant rejection. (Closing-window rejections
  // count as misses, so tenant_not_found alone undercounts kNotFound.)
  EXPECT_EQ(m.requests.value(), m.cache_hits.value() +
                                    m.cache_misses.value() +
                                    m.tenant_not_found.value());
  EXPECT_LE(m.tenant_not_found.value(), not_found_results.load());
  EXPECT_EQ(issued.load(),
            ok_results.load() + error_results.load() + not_found_results.load());
  EXPECT_EQ(m.errors.value(), error_results.load());
  EXPECT_GT(ok_results.load(), 0u);
  EXPECT_GT(error_results.load(), 0u);
  EXPECT_GT(m.reloads.value(), 0u);
  EXPECT_GT(m.reload_failures.value(), 0u);
  EXPECT_GE(m.tenant_registrations.value(), 4u);  // 3 initial + churn cycles
  EXPECT_GT(m.tenant_deregistrations.value(), 0u);

  // Every tenant still serves bits identical to a fresh solo encoder over
  // whatever weights its last reload installed.
  service.InvalidateCache();
  const std::string& probe = E().corpus.front();
  core::PreqrModel* models[] = {&model_a, &model_b, &model_c};
  for (size_t t = 0; t < tenants.size(); ++t) {
    serving::EncodeRequest request;
    request.tenant_id = tenants[t];
    request.sql = probe;
    auto after = service.Encode(request);
    ASSERT_TRUE(after.ok()) << tenants[t] << ": " << after.status().ToString();
    tasks::PreqrEncoder fresh(models[t]);
    ExpectBitwiseEqual(fresh.EncodeVector(probe, /*train=*/false).vec(),
                       after.value().embedding.vec(),
                       "post-stress tenant " + tenants[t]);
  }
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

}  // namespace
}  // namespace preqr::workload
