#include <gtest/gtest.h>

#include "db/executor.h"
#include "eval/metrics.h"
#include "neurocard/neurocard.h"
#include "pg/pg_estimator.h"
#include "sql/parser.h"
#include "workload/imdb.h"
#include "workload/query_gen.h"

namespace preqr {
namespace {

const db::Database& TestDb() {
  static const db::Database* db =
      new db::Database(workload::MakeImdbDatabase(3, 0.05));
  return *db;
}

TEST(PgEstimatorTest, SingleTableScanIsExactish) {
  pg::PgEstimator est(TestDb());
  auto stmt = sql::Parse("SELECT COUNT(*) FROM title").value();
  const double n =
      static_cast<double>(TestDb().FindTable("title")->num_rows());
  EXPECT_NEAR(est.EstimateCardinality(stmt), n, n * 0.01);
}

TEST(PgEstimatorTest, RangePredicateReasonable) {
  pg::PgEstimator est(TestDb());
  db::Executor exec(TestDb());
  auto stmt = sql::Parse(
                  "SELECT COUNT(*) FROM title WHERE production_year > 2000")
                  .value();
  const double truth = exec.Execute(stmt).value().cardinality;
  const double guess = est.EstimateCardinality(stmt);
  EXPECT_LT(eval::QError(truth, guess), 2.0);
}

TEST(PgEstimatorTest, FkJoinEstimateReasonable) {
  pg::PgEstimator est(TestDb());
  db::Executor exec(TestDb());
  auto stmt = sql::Parse(
                  "SELECT COUNT(*) FROM title t, movie_companies mc WHERE "
                  "t.id = mc.movie_id")
                  .value();
  const double truth = exec.Execute(stmt).value().cardinality;
  // Pure FK join without filters: PG's 1/max(nd) formula is near-exact.
  EXPECT_LT(eval::QError(truth, est.EstimateCardinality(stmt)), 3.0);
}

TEST(PgEstimatorTest, CorrelatedPredicatesUnderestimated) {
  // Pick a real row; PG multiplies the marginal selectivities while the
  // values co-occur, so the estimate falls below the truth on average.
  const db::Table* title = TestDb().FindTable("title");
  double underestimates = 0, total = 0;
  pg::PgEstimator est(TestDb());
  db::Executor exec(TestDb());
  for (size_t row = 0; row < title->num_rows(); row += 29) {
    const int64_t year = title->column(3).ints[row];
    const int64_t kind = title->column(2).ints[row];
    auto stmt = sql::Parse("SELECT COUNT(*) FROM title WHERE production_year "
                           "= " + std::to_string(year) +
                           " AND kind_id = " + std::to_string(kind))
                    .value();
    const double truth = exec.Execute(stmt).value().cardinality;
    if (truth < 1) continue;
    total += 1;
    if (est.EstimateCardinality(stmt) < truth) underestimates += 1;
  }
  ASSERT_GT(total, 10);
  EXPECT_GT(underestimates / total, 0.5);
}

TEST(PgEstimatorTest, CostGrowsWithJoins) {
  pg::PgEstimator est(TestDb());
  const double single =
      est.EstimateCost(sql::Parse("SELECT COUNT(*) FROM title").value());
  const double join = est.EstimateCost(
      sql::Parse("SELECT COUNT(*) FROM title t, movie_companies mc WHERE "
                 "t.id = mc.movie_id")
          .value());
  EXPECT_GT(join, single);
}

TEST(NeuroCardTest, SingleTableEstimate) {
  neurocard::NeuroCard nc(TestDb(), "title", 400);
  db::Executor exec(TestDb());
  auto stmt = sql::Parse(
                  "SELECT COUNT(*) FROM title WHERE production_year > 1990")
                  .value();
  const double truth = exec.Execute(stmt).value().cardinality;
  auto est = nc.EstimateCardinality(stmt);
  ASSERT_TRUE(est.ok());
  EXPECT_LT(eval::QError(truth, est.value()), 2.0);
}

TEST(NeuroCardTest, StarJoinEstimateCapturesCorrelation) {
  neurocard::NeuroCard nc(TestDb(), "title", 500);
  db::Executor exec(TestDb());
  auto stmt = sql::Parse(
                  "SELECT COUNT(*) FROM title t, movie_companies mc WHERE "
                  "t.id = mc.movie_id AND t.production_year > 2000")
                  .value();
  const double truth = exec.Execute(stmt).value().cardinality;
  auto est = nc.EstimateCardinality(stmt);
  ASSERT_TRUE(est.ok());
  // The correlated sample sees the year-fanout correlation directly.
  EXPECT_LT(eval::QError(truth, est.value()), 3.0);
}

TEST(NeuroCardTest, TwoLevelSnowflake) {
  neurocard::NeuroCard nc(TestDb(), "title", 500);
  db::Executor exec(TestDb());
  auto stmt = sql::Parse(
                  "SELECT COUNT(*) FROM title t, movie_companies mc, "
                  "company_type ct WHERE t.id = mc.movie_id AND "
                  "ct.id = mc.company_type_id AND ct.kind = 'distributors'")
                  .value();
  const double truth = exec.Execute(stmt).value().cardinality;
  auto est = nc.EstimateCardinality(stmt);
  ASSERT_TRUE(est.ok());
  EXPECT_LT(eval::QError(truth, est.value()), 4.0);
}

TEST(NeuroCardTest, RejectsSubqueries) {
  neurocard::NeuroCard nc(TestDb(), "title", 100);
  auto stmt = sql::Parse(
                  "SELECT COUNT(*) FROM title WHERE id IN "
                  "(SELECT movie_id FROM movie_companies WHERE company_id = 1)")
                  .value();
  EXPECT_FALSE(nc.EstimateCardinality(stmt).ok());
}

TEST(NeuroCardTest, WorkloadSweepIsFinite) {
  neurocard::NeuroCard nc(TestDb(), "title", 300);
  workload::ImdbQueryGenerator gen(TestDb(), 5);
  for (const auto& q : gen.Synthetic(25, 2)) {
    auto est = nc.EstimateCardinality(q.stmt);
    ASSERT_TRUE(est.ok()) << q.sql;
    EXPECT_GE(est.value(), 1.0);
    EXPECT_LT(est.value(), 1e12);
  }
}

}  // namespace
}  // namespace preqr
