// The redesigned request/response serving API: deadlines (rejected on
// arrival, dropped while queued), bounded-ring load shedding, per-client
// admission fairness, priority reservation, async Submit, graceful drain
// during ReloadModel, and shutdown semantics — all with canonical status
// codes so callers can tell bad input from shed load. Uses a gateable
// stub encoder so every race in here is sequenced deterministically.
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/encoder.h"
#include "nn/module.h"
#include "nn/serialize.h"
#include "serving/encoder_service.h"
#include "serving/request_ring.h"

namespace preqr::serving {
namespace {

using std::chrono::microseconds;
using std::chrono::milliseconds;

// Deterministic 4-float embedding per query; queries starting with "BAD"
// fail with kParseError like a real malformed-SQL rejection. The gate
// lets tests hold the dispatcher inside an encode while they arrange the
// ring into the exact state under test.
class StubEncoder : public baselines::QueryEncoder {
 public:
  nn::Tensor EncodeVector(const std::string& sql, bool /*train*/) override {
    float h = 0.0f;
    for (char c : sql) h = h * 31.0f + static_cast<float>(c);
    return nn::Tensor::FromData({1, 4}, {h, h + 1, h + 2, h + 3});
  }

  StatusOr<nn::Tensor> TryEncodeVector(const std::string& sql,
                                       bool train) override {
    if (sql.rfind("BAD", 0) == 0) {
      return Status::ParseError("stub rejects: " + sql);
    }
    return EncodeVector(sql, train);
  }

  std::vector<StatusOr<nn::Tensor>> TryEncodeVectorBatch(
      const std::vector<std::string>& sqls, bool train) override {
    {
      std::unique_lock<std::mutex> lock(mu_);
      ++calls_started_;
      for (const auto& sql : sqls) seen_.push_back(sql);
      cv_.notify_all();
      cv_.wait(lock, [&] { return gate_open_; });
    }
    std::vector<StatusOr<nn::Tensor>> out;
    out.reserve(sqls.size());
    for (const auto& sql : sqls) out.push_back(TryEncodeVector(sql, train));
    return out;
  }

  std::vector<nn::Tensor> TrainableParameters() override { return {}; }
  int dim() const override { return 4; }
  std::string name() const override { return "stub"; }

  void CloseGate() {
    std::lock_guard<std::mutex> lock(mu_);
    gate_open_ = false;
  }
  void OpenGate() {
    std::lock_guard<std::mutex> lock(mu_);
    gate_open_ = true;
    cv_.notify_all();
  }
  // Blocks until the dispatcher has entered its n-th encoder call — the
  // handshake that makes "request X is mid-encode" a fact, not a sleep.
  void WaitForCallsStarted(int n) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return calls_started_ >= n; });
  }
  std::vector<std::string> seen() {
    std::lock_guard<std::mutex> lock(mu_);
    return seen_;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool gate_open_ = true;
  int calls_started_ = 0;
  std::vector<std::string> seen_;
};

EncodeRequest Req(std::string sql) {
  EncodeRequest r;
  r.sql = std::move(sql);
  return r;
}

TEST(RequestRingTest, FifoOrderBoundedCapacityAndPeek) {
  RequestRing<int> ring(3);  // rounds up to 4
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_TRUE(ring.empty());
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.TryPush(i));
  EXPECT_TRUE(ring.full());
  EXPECT_FALSE(ring.TryPush(99));
  EXPECT_EQ(ring.Peek(0), 0);
  EXPECT_EQ(ring.Peek(3), 3);
  int v = -1;
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(ring.TryPop(&v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(ring.TryPop(&v));
  // Wrap-around: indices keep running past the array size.
  for (int round = 0; round < 5; ++round) {
    EXPECT_TRUE(ring.TryPush(round * 10));
    EXPECT_TRUE(ring.TryPop(&v));
    EXPECT_EQ(v, round * 10);
  }
}

TEST(ServingApiTest, ExpiredDeadlineRejectedBeforeAdmission) {
  StubEncoder stub;
  EncoderService service(&stub);
  EncodeRequest request = Req("SELECT 1");
  request.deadline = DeadlineClock::now() - milliseconds(1);
  auto result = service.Encode(request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(service.metrics().deadline_rejected.value(), 1u);
  // Never reached the encoder, never counted as a cache probe.
  EXPECT_TRUE(stub.seen().empty());
  EXPECT_EQ(service.metrics().cache_misses.value(), 0u);
  EXPECT_EQ(service.metrics().requests.value(), 1u);
}

TEST(ServingApiTest, DeadlineExpiringInQueueDropsBeforeEncoding) {
  StubEncoder stub;
  EncoderService service(&stub);
  stub.CloseGate();
  // q1 occupies the encoder...
  auto f1 = service.Submit(Req("q1"));
  stub.WaitForCallsStarted(1);
  // ...so q2 queues behind it with a deadline that will lapse first.
  EncodeRequest q2 = Req("q2");
  q2.deadline = DeadlineAfter(milliseconds(30));
  auto f2 = service.Submit(std::move(q2));
  std::this_thread::sleep_for(milliseconds(60));
  stub.OpenGate();
  auto r1 = f1.get();
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_FALSE(r1.value().cache_hit);
  EXPECT_GE(r1.value().encode_us, 0.0);
  auto r2 = f2.get();
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(service.metrics().deadline_dropped.value(), 1u);
  // The dispatcher dropped q2 *before* encoding: the stub never saw it.
  for (const auto& sql : stub.seen()) EXPECT_NE(sql, "q2");
  EXPECT_EQ(service.queue_depth(), 0u);
}

TEST(ServingApiTest, FullRingShedsWithResourceExhausted) {
  StubEncoder stub;
  EncoderServiceOptions options;
  options.ring_capacity = 2;
  options.per_client_quota = 100;   // isolate the ring-full policy
  options.priority_reserve = 1;     // watermark = 1: only priority > 0
                                    // may take the last slot
  EncoderService service(&stub, options);
  stub.CloseGate();
  auto f1 = service.Submit(Req("a"));
  stub.WaitForCallsStarted(1);  // ring empty again, encoder busy with "a"
  EncodeRequest hi1 = Req("b");
  hi1.priority = 1;
  EncodeRequest hi2 = Req("c");
  hi2.priority = 1;
  auto f2 = service.Submit(std::move(hi1));
  auto f3 = service.Submit(std::move(hi2));
  EXPECT_EQ(service.queue_depth(), 2u);
  // Ring full: even priority sheds now, with the canonical code.
  EncodeRequest hi3 = Req("d");
  hi3.priority = 1;
  auto shed = service.Encode(hi3);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(service.metrics().shed_queue_full.value(), 1u);
  stub.OpenGate();
  EXPECT_TRUE(f1.get().ok());
  EXPECT_TRUE(f2.get().ok());
  EXPECT_TRUE(f3.get().ok());
  // Shed request never reached the encoder.
  for (const auto& sql : stub.seen()) EXPECT_NE(sql, "d");
}

TEST(ServingApiTest, HighWaterReservesRingTailForPriority) {
  StubEncoder stub;
  EncoderServiceOptions options;
  options.ring_capacity = 4;
  options.priority_reserve = 2;  // watermark = 2
  options.per_client_quota = 100;
  EncoderService service(&stub, options);
  stub.CloseGate();
  auto f1 = service.Submit(Req("a"));
  stub.WaitForCallsStarted(1);
  auto f2 = service.Submit(Req("b"));
  auto f3 = service.Submit(Req("c"));
  EXPECT_EQ(service.queue_depth(), 2u);  // at the watermark
  // Normal-priority arrival sheds; priority > 0 takes a reserved slot.
  auto shed = service.Encode(Req("d"));
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(service.metrics().shed_low_priority.value(), 1u);
  EncodeRequest urgent = Req("e");
  urgent.priority = 2;
  auto f4 = service.Submit(std::move(urgent));
  EXPECT_EQ(service.queue_depth(), 3u);
  stub.OpenGate();
  EXPECT_TRUE(f1.get().ok());
  EXPECT_TRUE(f2.get().ok());
  EXPECT_TRUE(f3.get().ok());
  EXPECT_TRUE(f4.get().ok());
}

TEST(ServingApiTest, PerClientQuotaShedsNoisyClientAdmitsOthers) {
  StubEncoder stub;
  EncoderServiceOptions options;
  options.ring_capacity = 16;
  options.per_client_quota = 2;
  EncoderService service(&stub, options);
  stub.CloseGate();
  auto warm = service.Submit(Req("w"));
  stub.WaitForCallsStarted(1);
  auto mk = [](const char* sql, const char* client) {
    EncodeRequest r;
    r.sql = sql;
    r.client_id = client;
    return r;
  };
  auto n1 = service.Submit(mk("n1", "noisy"));
  auto n2 = service.Submit(mk("n2", "noisy"));
  // Noisy is at quota: its third queued request is shed...
  auto n3 = service.Encode(mk("n3", "noisy"));
  ASSERT_FALSE(n3.ok());
  EXPECT_EQ(n3.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(service.metrics().shed_client_quota.value(), 1u);
  // ...while a polite client is still admitted into the same ring.
  auto p1 = service.Submit(mk("p1", "polite"));
  EXPECT_EQ(service.queue_depth(), 3u);
  stub.OpenGate();
  EXPECT_TRUE(warm.get().ok());
  EXPECT_TRUE(n1.get().ok());
  EXPECT_TRUE(n2.get().ok());
  EXPECT_TRUE(p1.get().ok());
  // Quota frees as requests dispatch: noisy can queue again afterwards.
  auto n4 = service.Encode(mk("n4", "noisy"));
  EXPECT_TRUE(n4.ok());
}

TEST(ServingApiTest, ResponseMetadataDistinguishesHitFromMiss) {
  StubEncoder stub;
  EncoderService service(&stub);
  auto cold = service.Encode(Req("SELECT 7"));
  ASSERT_TRUE(cold.ok());
  EXPECT_FALSE(cold.value().cache_hit);
  EXPECT_GE(cold.value().encode_us, 0.0);
  EXPECT_GE(cold.value().queue_us, 0.0);
  auto warm = service.Encode(Req("SELECT 7"));
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm.value().cache_hit);
  EXPECT_EQ(warm.value().queue_us, 0.0);
  EXPECT_EQ(warm.value().encode_us, 0.0);
  // Same bits either way.
  EXPECT_EQ(cold.value().embedding.vec(), warm.value().embedding.vec());
  // Malformed SQL keeps its parse code — distinguishable from shed load.
  auto bad = service.Encode(Req("BAD query"));
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kParseError);
}

TEST(ServingApiTest, BatchSlotsFailIndependentlyWithCanonicalCodes) {
  StubEncoder stub;
  EncoderService service(&stub);
  std::vector<EncodeRequest> requests;
  requests.push_back(Req("ok-1"));
  EncodeRequest expired = Req("ok-2");
  expired.deadline = DeadlineClock::now() - milliseconds(1);
  requests.push_back(std::move(expired));
  requests.push_back(Req("BAD slot"));
  requests.push_back(Req("ok-1"));  // duplicate collapses onto one miss
  auto results = service.EncodeBatch(requests);
  ASSERT_EQ(results.size(), 4u);
  EXPECT_TRUE(results[0].ok());
  ASSERT_FALSE(results[1].ok());
  EXPECT_EQ(results[1].status().code(), StatusCode::kDeadlineExceeded);
  ASSERT_FALSE(results[2].ok());
  EXPECT_EQ(results[2].status().code(), StatusCode::kParseError);
  ASSERT_TRUE(results[3].ok());
  EXPECT_EQ(results[0].value().embedding.vec(),
            results[3].value().embedding.vec());
  EXPECT_EQ(service.metrics().deadline_rejected.value(), 1u);
}

TEST(ServingApiTest, SubmitDeliversAsynchronously) {
  StubEncoder stub;
  EncoderService service(&stub);
  stub.CloseGate();
  auto f1 = service.Submit(Req("x"));
  auto f2 = service.Submit(Req("y"));
  EXPECT_EQ(f1.wait_for(milliseconds(20)), std::future_status::timeout);
  stub.OpenGate();
  auto r1 = f1.get();
  auto r2 = f2.get();
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  // A cache hit resolves the future immediately, encoder untouched.
  stub.CloseGate();
  auto f3 = service.Submit(Req("x"));
  EXPECT_EQ(f3.wait_for(milliseconds(0)), std::future_status::ready);
  EXPECT_TRUE(f3.get().value().cache_hit);
  stub.OpenGate();
}

// A minimal module so ReloadModel has real weights to swap under the
// stub-encoder drain drills.
struct TinyModule : nn::Module {
  nn::Tensor w;
  TinyModule() {
    w = RegisterParameter("w", nn::Tensor::FromData({1, 4}, {1, 2, 3, 4}));
  }
};

TEST(ServingApiTest, ReloadDrainsQueueParksArrivalsDropsNothing) {
  StubEncoder stub;
  EncoderServiceOptions options;
  options.per_client_quota = 100;
  EncoderService service(&stub, options);
  TinyModule model;
  service.AttachModel(&model);
  const std::string path = testing::TempDir() + "/serving_api_reload.prm1";
  ASSERT_TRUE(nn::SaveModule(model, path).ok());

  stub.CloseGate();
  auto f1 = service.Submit(Req("r1"));
  stub.WaitForCallsStarted(1);
  auto f2 = service.Submit(Req("r2"));
  auto f3 = service.Submit(Req("r3"));
  ASSERT_EQ(service.queue_depth(), 2u);

  // The reload must wait out r2/r3 (already admitted) before swapping.
  std::thread reloader([&] { ASSERT_TRUE(service.ReloadModel(path).ok()); });
  while (service.metrics().drained_requests.value() < 2u) {
    std::this_thread::sleep_for(microseconds(200));
  }
  // An arrival during the drain parks — it is never shed or dropped.
  std::thread late([&] {
    auto r4 = service.Encode(Req("r4"));
    ASSERT_TRUE(r4.ok()) << r4.status().ToString();
  });
  while (service.metrics().drain_waiters.value() < 1u) {
    std::this_thread::sleep_for(microseconds(200));
  }
  stub.OpenGate();
  reloader.join();
  late.join();
  ASSERT_TRUE(f1.get().ok());
  ASSERT_TRUE(f2.get().ok());
  ASSERT_TRUE(f3.get().ok());
  const auto& m = service.metrics();
  EXPECT_EQ(m.reloads.value(), 1u);
  EXPECT_EQ(m.drained_requests.value(), 2u);
  EXPECT_EQ(m.drain_waiters.value(), 1u);
  // r4 ran after the swap: the reload cleared the cache r1-r3 populated,
  // and its own embedding landed afterwards.
  EXPECT_GE(m.invalidated_embeddings.value(), 3u);
  // Nothing was ever mis-coded: no sheds, no deadline errors, no
  // unavailable during the whole drill.
  EXPECT_EQ(m.ShedTotal(), 0u);
  EXPECT_EQ(m.deadline_rejected.value(), 0u);
  EXPECT_EQ(m.deadline_dropped.value(), 0u);
  EXPECT_EQ(m.rejected_on_shutdown.value(), 0u);
}

TEST(ServingApiTest, ParkedArrivalHonorsDeadlineDuringDrain) {
  StubEncoder stub;
  EncoderService service(&stub);
  TinyModule model;
  service.AttachModel(&model);
  const std::string path = testing::TempDir() + "/serving_api_reload2.prm1";
  ASSERT_TRUE(nn::SaveModule(model, path).ok());

  stub.CloseGate();
  // d1 occupies the encoder, d2 sits in the ring so the drain has
  // something to count — drained_requests >= 1 signals the drain began.
  auto f1 = service.Submit(Req("d1"));
  stub.WaitForCallsStarted(1);
  auto f2 = service.Submit(Req("d2"));
  std::thread reloader([&] { ASSERT_TRUE(service.ReloadModel(path).ok()); });
  while (service.metrics().drained_requests.value() < 1u) {
    std::this_thread::sleep_for(microseconds(200));
  }
  // An arrival that parks during the drain must time out with the
  // canonical deadline code, not hang and not be mis-coded as shed load.
  EncodeRequest doomed = Req("d3");
  doomed.deadline = DeadlineAfter(milliseconds(20));
  auto r = service.Encode(doomed);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(service.metrics().drain_waiters.value(), 1u);
  stub.OpenGate();
  reloader.join();
  EXPECT_TRUE(f1.get().ok());
  EXPECT_TRUE(f2.get().ok());
  EXPECT_EQ(service.metrics().ShedTotal(), 0u);
}

TEST(ServingApiTest, PerTenantReloadParksOnlyThatTenant) {
  StubEncoder stub_a, stub_b;
  EncoderServiceOptions options;
  options.per_client_quota = 100;
  EncoderService service(&stub_a, options);  // "a" work rides the default
  TinyModule model_a;
  service.AttachModel(&model_a);
  ASSERT_TRUE(service.RegisterTenant("b", &stub_b).ok());
  const std::string path = testing::TempDir() + "/serving_api_tenant.prm1";
  ASSERT_TRUE(nn::SaveModule(model_a, path).ok());

  stub_a.CloseGate();
  auto a1 = service.Submit(Req("a1"));
  stub_a.WaitForCallsStarted(1);
  auto a2 = service.Submit(Req("a2"));  // queued, so the drain counts it
  std::thread reloader(
      [&] { ASSERT_TRUE(service.ReloadModel(kDefaultTenantId, path).ok()); });
  while (service.metrics().drained_requests.value() < 1u) {
    std::this_thread::sleep_for(microseconds(200));
  }
  // The default tenant is draining (its encoder still gated shut) — but
  // tenant b keeps encoding throughout via the synchronous batch path,
  // which runs under b's own encode mutex and never touches a's.
  for (int i = 0; i < 3; ++i) {
    EncodeRequest rb;
    rb.sql = "b" + std::to_string(i);
    rb.tenant_id = "b";
    auto slots = service.EncodeBatch(std::vector<EncodeRequest>{rb});
    ASSERT_EQ(slots.size(), 1u);
    ASSERT_TRUE(slots[0].ok()) << slots[0].status().ToString();
    EXPECT_EQ(slots[0].value().tenant_id, "b");
  }
  // An arrival for the draining tenant parks instead.
  std::thread late([&] {
    auto r = service.Encode(Req("a3"));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  });
  while (service.metrics().drain_waiters.value() < 1u) {
    std::this_thread::sleep_for(microseconds(200));
  }
  stub_a.OpenGate();
  reloader.join();
  late.join();
  ASSERT_TRUE(a1.get().ok());
  ASSERT_TRUE(a2.get().ok());
  // Only the default tenant's partition was cleared by the reload; b kept
  // its three embeddings.
  EXPECT_EQ(service.cached_embeddings("b"), 3u);
  EXPECT_EQ(service.metrics().reloads.value(), 1u);
  EXPECT_EQ(service.metrics().ShedTotal(), 0u);
  EXPECT_EQ(service.metrics().errors.value(), 0u);
}

TEST(ServingApiTest, DeregisterRefusesNewWorkAndDeliversEverythingAdmitted) {
  StubEncoder stub_default, stub_t;
  EncoderServiceOptions options;
  options.ring_capacity = 1024;  // the probe loop must never shed
  options.per_client_quota = 1024;
  EncoderService service(&stub_default, options);
  ASSERT_TRUE(service.RegisterTenant("t", &stub_t).ok());
  stub_t.CloseGate();
  EncodeRequest first;
  first.sql = "t-0";
  first.tenant_id = "t";
  auto f0 = service.Submit(std::move(first));
  stub_t.WaitForCallsStarted(1);  // t-0 is mid-encode behind the gate
  std::thread closer([&] { ASSERT_TRUE(service.DeregisterTenant("t").ok()); });
  // Race admissions against the deregistration: every one either gets in
  // (and must be delivered ok) or is refused kNotFound — never dropped,
  // never mis-coded, never kResourceExhausted.
  std::vector<std::future<StatusOr<EncodeResponse>>> admitted;
  admitted.push_back(std::move(f0));
  bool saw_not_found = false;
  for (int i = 1; i < 200 && !saw_not_found; ++i) {
    EncodeRequest r;
    r.sql = "t-" + std::to_string(i);
    r.tenant_id = "t";
    auto f = service.Submit(std::move(r));
    if (f.wait_for(milliseconds(0)) == std::future_status::ready) {
      auto resolved = f.get();
      ASSERT_FALSE(resolved.ok());
      ASSERT_EQ(resolved.status().code(), StatusCode::kNotFound);
      saw_not_found = true;
    } else {
      admitted.push_back(std::move(f));
    }
    std::this_thread::sleep_for(microseconds(100));
  }
  EXPECT_TRUE(saw_not_found);
  // The default tenant keeps serving mid-deregistration (sync batch path:
  // the dispatcher is busy behind tenant t's gate, the default tenant's
  // encoder is not).
  auto untouched =
      service.EncodeBatch(std::vector<EncodeRequest>{Req("untouched")});
  ASSERT_EQ(untouched.size(), 1u);
  EXPECT_TRUE(untouched[0].ok()) << untouched[0].status().ToString();
  stub_t.OpenGate();
  closer.join();
  for (auto& f : admitted) {
    auto r = f.get();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r.value().tenant_id, "t");
  }
  EXPECT_FALSE(service.HasTenant("t"));
  EXPECT_EQ(service.cached_embeddings("t"), 0u);
  // Lifecycle guard rails: the default tenant is not deregisterable, and
  // unknown ids are kNotFound.
  EXPECT_EQ(service.DeregisterTenant(kDefaultTenantId).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(service.DeregisterTenant("ghost").code(), StatusCode::kNotFound);
}

TEST(ServingApiTest, DestructionFailsQueuedRequestsWithUnavailable) {
  StubEncoder stub;
  std::future<StatusOr<EncodeResponse>> f1, f2;
  {
    EncoderService service(&stub);
    stub.CloseGate();
    f1 = service.Submit(Req("alive"));
    stub.WaitForCallsStarted(1);
    f2 = service.Submit(Req("doomed"));
    std::thread opener([&] {
      std::this_thread::sleep_for(milliseconds(30));
      stub.OpenGate();
    });
    opener.detach();
    // Destructor: joins the dispatcher, which finishes "alive" and fails
    // the still-queued "doomed".
  }
  auto r1 = f1.get();
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  auto r2 = f2.get();
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().code(), StatusCode::kUnavailable);
}

}  // namespace
}  // namespace preqr::serving
