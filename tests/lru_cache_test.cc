// Sharded LRU cache: eviction order, shard independence, statistics, and
// concurrent get/put hammering (the latter is re-run under SANITIZE=thread
// by scripts/check.sh).
#include "common/lru_cache.h"

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace preqr {
namespace {

TEST(ShardedLruCacheTest, GetReturnsWhatPutStored) {
  ShardedLruCache<std::string, int> cache(/*capacity=*/8, /*num_shards=*/2);
  EXPECT_FALSE(cache.Get("a").has_value());
  cache.Put("a", 1);
  cache.Put("b", 2);
  ASSERT_TRUE(cache.Get("a").has_value());
  EXPECT_EQ(*cache.Get("a"), 1);
  EXPECT_EQ(*cache.Get("b"), 2);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ShardedLruCacheTest, EvictsLeastRecentlyUsed) {
  // One shard so the whole capacity shares one recency order.
  ShardedLruCache<int, int> cache(/*capacity=*/3, /*num_shards=*/1);
  cache.Put(1, 10);
  cache.Put(2, 20);
  cache.Put(3, 30);
  // Touch 1: recency order is now 1, 3, 2 — inserting 4 must evict 2.
  ASSERT_TRUE(cache.Get(1).has_value());
  cache.Put(4, 40);
  EXPECT_FALSE(cache.Contains(2));
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_TRUE(cache.Contains(3));
  EXPECT_TRUE(cache.Contains(4));
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ShardedLruCacheTest, OverwriteRefreshesRecencyWithoutGrowth) {
  ShardedLruCache<int, int> cache(/*capacity=*/2, /*num_shards=*/1);
  cache.Put(1, 10);
  cache.Put(2, 20);
  cache.Put(1, 11);  // overwrite: 1 becomes most recent, size stays 2
  EXPECT_EQ(cache.size(), 2u);
  cache.Put(3, 30);  // evicts 2, not 1
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_FALSE(cache.Contains(2));
  EXPECT_EQ(*cache.Get(1), 11);
}

TEST(ShardedLruCacheTest, ShardsEvictIndependently) {
  // 4 shards x 2 entries. Overfilling one shard evicts only within it;
  // entries on other shards survive regardless of global insertion order.
  ShardedLruCache<int, int> cache(/*capacity=*/8, /*num_shards=*/4);
  ASSERT_EQ(cache.shard_capacity(), 2u);
  const int target = cache.ShardIndex(0);
  std::vector<int> same_shard, other_shard;
  for (int k = 0; same_shard.size() < 3 || other_shard.size() < 2; ++k) {
    if (cache.ShardIndex(k) == target) {
      same_shard.push_back(k);
    } else {
      other_shard.push_back(k);
    }
  }
  cache.Put(other_shard[0], 0);
  cache.Put(other_shard[1], 1);
  for (int k : same_shard) cache.Put(k, k);  // third insert overfills
  EXPECT_FALSE(cache.Contains(same_shard[0]));  // evicted within its shard
  EXPECT_TRUE(cache.Contains(same_shard[1]));
  EXPECT_TRUE(cache.Contains(same_shard[2]));
  EXPECT_TRUE(cache.Contains(other_shard[0]));  // untouched shards keep all
  EXPECT_TRUE(cache.Contains(other_shard[1]));
}

TEST(ShardedLruCacheTest, CapacitySmallerThanShardCountClamps) {
  ShardedLruCache<int, int> cache(/*capacity=*/2, /*num_shards=*/8);
  EXPECT_EQ(cache.num_shards(), 2);
  EXPECT_GE(cache.shard_capacity(), 1u);
  for (int k = 0; k < 16; ++k) cache.Put(k, k);
  EXPECT_LE(cache.size(), cache.capacity());
}

TEST(ShardedLruCacheTest, ClearDropsEntriesKeepsStats) {
  ShardedLruCache<int, int> cache(/*capacity=*/4, /*num_shards=*/2);
  cache.Put(1, 1);
  (void)cache.Get(1);
  (void)cache.Get(99);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Contains(1));
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(ShardedLruCacheTest, StatsCountHitsAndMisses) {
  ShardedLruCache<std::string, int> cache(/*capacity=*/4);
  cache.Put("x", 1);
  (void)cache.Get("x");
  (void)cache.Get("x");
  (void)cache.Get("missing");
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.evictions, 0u);
}

TEST(ShardedLruCacheTest, ConcurrentGetPutHammering) {
  // 8 threads hammer a small key space with value = key * 7. Any Get that
  // returns a value must return the one value ever written for that key,
  // and the size bound must hold afterwards. TSAN (scripts/check.sh)
  // checks the locking.
  ShardedLruCache<int, int> cache(/*capacity=*/32, /*num_shards=*/4);
  constexpr int kThreads = 8;
  constexpr int kOps = 4000;
  constexpr int kKeys = 64;
  std::vector<std::thread> threads;
  std::atomic<int> bad{0};
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOps; ++i) {
        const int key = (i * 13 + t * 31) % kKeys;
        if ((i + t) % 3 == 0) {
          cache.Put(key, key * 7);
        } else if (auto v = cache.Get(key)) {
          if (*v != key * 7) bad.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(bad.load(), 0);
  EXPECT_LE(cache.size(), cache.capacity());
  const auto stats = cache.stats();
  EXPECT_GT(stats.hits + stats.misses, 0u);
}

}  // namespace
}  // namespace preqr
