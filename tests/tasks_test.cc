#include <gtest/gtest.h>

#include "baselines/onehot.h"
#include "baselines/tree2seq.h"
#include "db/stats.h"
#include "eval/metrics.h"
#include "sql/parser.h"
#include "tasks/clustering.h"
#include "tasks/correction.h"
#include "tasks/estimator.h"
#include "tasks/sql2text.h"
#include "workload/imdb.h"
#include "workload/query_gen.h"
#include "workload/sql2text.h"

namespace preqr::tasks {
namespace {

// Static featurizer whose Try path rejects SQL that does not parse — a
// stand-in for the parse-path encoders (PreQR, tree2seq) that lets the
// TryPredict contract be tested without training one.
class ParseGateEncoder : public baselines::QueryEncoder {
 public:
  nn::Tensor EncodeVector(const std::string& sql, bool) override {
    auto stmt = sql::Parse(sql);
    if (!stmt.ok()) return nn::Tensor::Zeros({1, 4});  // fallback features
    std::vector<float> v = {1.0f,
                            static_cast<float>(stmt.value().tables.size()),
                            static_cast<float>(stmt.value().predicates.size()),
                            1.0f};
    return nn::Tensor::FromData({1, 4}, std::move(v));
  }
  StatusOr<nn::Tensor> TryEncodeVector(const std::string& sql,
                                       bool train) override {
    auto stmt = sql::Parse(sql);
    if (!stmt.ok()) return stmt.status();
    return EncodeVector(sql, train);
  }
  std::vector<nn::Tensor> TrainableParameters() override { return {}; }
  int dim() const override { return 4; }
  std::string name() const override { return "ParseGate"; }
};

const db::Database& TestDb() {
  static const db::Database* db =
      new db::Database(workload::MakeImdbDatabase(3, 0.03));
  return *db;
}

TEST(EstimatorTest, LearnsCardinalityOnOneHot) {
  workload::ImdbQueryGenerator gen(TestDb(), 5);
  auto train = gen.Synthetic(120, 2);
  auto test = gen.Synthetic(30, 2);
  baselines::OneHotEncoder encoder(TestDb(), nullptr);
  EstimatorModel::Options opt;
  opt.epochs = 20;
  EstimatorModel model(&encoder, opt);
  std::vector<std::string> sqls;
  std::vector<double> cards;
  for (const auto& q : train) {
    sqls.push_back(q.sql);
    cards.push_back(q.true_card);
  }
  model.Fit(sqls, cards);
  std::vector<std::string> test_sqls;
  std::vector<double> test_cards;
  for (const auto& q : test) {
    test_sqls.push_back(q.sql);
    test_cards.push_back(q.true_card);
  }
  const auto stats =
      eval::ComputeQErrors(test_cards, model.PredictAll(test_sqls));
  // A learned model must do far better than constant-guessing.
  EXPECT_LT(stats.median, 8.0);
}

TEST(EstimatorTest, ValidationCurveHasOneEntryPerEpoch) {
  workload::ImdbQueryGenerator gen(TestDb(), 6);
  auto train = gen.Synthetic(40, 1);
  baselines::OneHotEncoder encoder(TestDb(), nullptr);
  EstimatorModel::Options opt;
  opt.epochs = 4;
  EstimatorModel model(&encoder, opt);
  std::vector<std::string> sqls;
  std::vector<double> cards;
  for (const auto& q : train) {
    sqls.push_back(q.sql);
    cards.push_back(q.true_card);
  }
  auto curve = model.FitWithValidation(sqls, cards, sqls, cards);
  EXPECT_EQ(curve.size(), 4u);
  for (double v : curve) EXPECT_GE(v, 1.0);
}

TEST(EstimatorTest, PredictionsClampedToTrainingRange) {
  baselines::OneHotEncoder encoder(TestDb(), nullptr);
  EstimatorModel::Options opt;
  opt.epochs = 1;
  EstimatorModel model(&encoder, opt);
  model.Fit({"SELECT COUNT(*) FROM title"}, {100.0});
  // Whatever the model outputs, the clamp bounds it near the target range.
  const double pred = model.Predict("SELECT COUNT(*) FROM title");
  EXPECT_LE(pred, std::exp(std::log1p(100.0) + 2.1));
}

TEST(EstimatorTest, TryPredictPropagatesEncodeErrors) {
  ParseGateEncoder encoder;
  EstimatorModel::Options opt;
  opt.epochs = 1;
  EstimatorModel model(&encoder, opt);
  model.Fit({"SELECT COUNT(*) FROM title"}, {50.0});

  const std::string bad = "not sql at all ((";
  auto r = model.TryPredict(bad);
  ASSERT_FALSE(r.ok());
  // The Try path surfaces the error instead of falling back.
  EXPECT_EQ(model.predict_fallback_total(), 0u);

  // Predict answers anyway through the encoder's fallback features and
  // counts the event, mirroring serving's encode_fallback_total.
  const double pred = model.Predict(bad);
  EXPECT_GE(pred, 0.0);
  EXPECT_EQ(model.predict_fallback_total(), 1u);

  // The fallback must not poison the feature cache: after a fallback
  // Predict, the same SQL still fails the Try path.
  auto again = model.TryPredict(bad);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(model.predict_fallback_total(), 1u);
}

TEST(EstimatorTest, TryPredictMatchesPredictOnValidSql) {
  ParseGateEncoder encoder;
  EstimatorModel::Options opt;
  opt.epochs = 2;
  EstimatorModel model(&encoder, opt);
  model.Fit({"SELECT COUNT(*) FROM title",
             "SELECT COUNT(*) FROM title WHERE production_year > 2000"},
            {100.0, 40.0});
  const std::string sql =
      "SELECT COUNT(*) FROM title WHERE production_year > 2005";
  auto r = model.TryPredict(sql);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value(), model.Predict(sql));
  EXPECT_EQ(model.predict_fallback_total(), 0u);
}

TEST(CorrectionTest, ImprovesBiasedBaseEstimates) {
  workload::ImdbQueryGenerator gen(TestDb(), 7);
  auto train = gen.Synthetic(80, 1);
  baselines::OneHotEncoder encoder(TestDb(), nullptr);
  EstimatorModel::Options opt;
  opt.epochs = 25;
  CorrectionModel correction(&encoder, opt);
  // Base estimator is biased 10x low.
  std::vector<std::string> sqls;
  std::vector<double> base, truth;
  for (const auto& q : train) {
    sqls.push_back(q.sql);
    truth.push_back(q.true_card);
    base.push_back(std::max(1.0, q.true_card / 10.0));
  }
  correction.Fit(sqls, base, truth);
  double before = 0, after = 0;
  for (size_t i = 0; i < sqls.size(); ++i) {
    before += eval::QError(truth[i], base[i]);
    after += eval::QError(truth[i], correction.Correct(sqls[i], base[i]));
  }
  EXPECT_LT(after, before);
}

TEST(ClusteringTest, MatricesSymmetricZeroDiagonal) {
  const std::vector<std::string> queries = {
      "SELECT a FROM t WHERE b = 1",
      "SELECT a FROM t WHERE b = 2",
      "SELECT COUNT(*) FROM s WHERE c > 3",
  };
  auto stmts = ParseAll(queries);
  for (auto metric : {AstMetric::kAouiche, AstMetric::kAligon,
                      AstMetric::kMakiyama}) {
    auto d = AstDistanceMatrix(stmts, metric);
    for (size_t i = 0; i < d.size(); ++i) {
      EXPECT_DOUBLE_EQ(d[i][i], 0.0);
      for (size_t j = 0; j < d.size(); ++j) {
        EXPECT_DOUBLE_EQ(d[i][j], d[j][i]);
      }
    }
    // Same-template queries are closer than the unrelated one.
    EXPECT_LT(d[0][1], d[0][2]);
  }
}

TEST(ClusteringTest, ToSimilarityInverts) {
  std::vector<std::vector<double>> d = {{0, 0.25}, {0.25, 0}};
  auto s = ToSimilarity(d);
  EXPECT_DOUBLE_EQ(s[0][1], 0.75);
  EXPECT_DOUBLE_EQ(s[0][0], 1.0);
}

TEST(TextVocabTest, BuildsFromPairs) {
  TextVocab vocab;
  vocab.Build({{"q", {"what", "is", "the", "year"}}});
  EXPECT_GT(vocab.size(), 6);
  EXPECT_NE(vocab.Id("year"), TextVocab::kUnk);
  EXPECT_EQ(vocab.Id("zebra"), TextVocab::kUnk);
}

TEST(Sql2TextTest, OverfitsTinyDataset) {
  auto pairs = workload::MakeWikiSqlDataset(12, 3);
  baselines::Tree2SeqEncoder encoder(24, 1);
  Sql2TextModel::Options opt;
  opt.epochs = 25;
  opt.dim = 24;
  Sql2TextModel model(&encoder, opt);
  model.Fit(pairs);
  // On its own training pairs the model should reach a non-trivial BLEU.
  EXPECT_GT(model.EvalBleu(pairs), 0.25);
}

TEST(Sql2TextTest, GenerateProducesWords) {
  auto pairs = workload::MakeWikiSqlDataset(10, 4);
  baselines::Tree2SeqEncoder encoder(16, 2);
  Sql2TextModel::Options opt;
  opt.epochs = 2;
  opt.dim = 16;
  Sql2TextModel model(&encoder, opt);
  model.Fit(pairs);
  auto words = model.Generate(pairs[0].sql);
  EXPECT_LE(words.size(), 24u);
}

}  // namespace
}  // namespace preqr::tasks
