#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"

namespace preqr {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "bad token");
  EXPECT_NE(s.ToString().find("PARSE_ERROR"), std::string::npos);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 7);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, SeedChangesStream) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) any_diff |= a.NextUint64() != b.NextUint64();
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, IntRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const int x = rng.NextInt(5, 10);
    EXPECT_GE(x, 5);
    EXPECT_LT(x, 10);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextGaussian();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, ZipfSkewed) {
  Rng rng(13);
  int ones = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    const uint64_t v = rng.NextZipf(100, 1.5);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 100u);
    if (v == 1) ++ones;
  }
  // Rank 1 should dominate under Zipf(1.5).
  EXPECT_GT(ones, n / 4);
}

TEST(StringUtilTest, ToLower) { EXPECT_EQ(ToLower("SeLeCt"), "select"); }

TEST(StringUtilTest, SplitAndJoin) {
  auto parts = SplitAny("a,b;;c", ",;");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(Join(parts, "-"), "a-b-c");
}

TEST(StringUtilTest, EditDistance) {
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3);
  EXPECT_EQ(EditDistance("", "abc"), 3);
  EXPECT_EQ(EditDistance("same", "same"), 0);
}

TEST(StringUtilTest, StringSimilarityBounds) {
  EXPECT_DOUBLE_EQ(StringSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(StringSimilarity("", ""), 1.0);
  EXPECT_GE(StringSimilarity("abc", "xyz"), 0.0);
}

TEST(StringUtilTest, Jaccard) {
  EXPECT_DOUBLE_EQ(Jaccard({"a", "b"}, {"b", "c"}), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(Jaccard({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(Jaccard({"a"}, {"a", "a"}), 1.0);
}

TEST(StringUtilTest, PrefixSuffix) {
  EXPECT_TRUE(StartsWith("select *", "select"));
  EXPECT_FALSE(StartsWith("sel", "select"));
  EXPECT_TRUE(EndsWith("a.cc", ".cc"));
  EXPECT_FALSE(EndsWith("a.cc", ".h"));
}

}  // namespace
}  // namespace preqr
