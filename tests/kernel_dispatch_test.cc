// Runtime kernel-dispatch tests: impl selection, scalar-vs-AVX2 parity,
// the per-impl determinism contract (same impl => bitwise-stable across
// batch compositions), and the int8 quantized GEMM path.
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/kernels.h"
#include "nn/kernels_dispatch.h"
#include "nn/module.h"
#include "nn/ops.h"
#include "nn/quant.h"
#include "nn/tensor.h"

namespace preqr::nn {
namespace {

using kernels::Avx2Supported;
using kernels::Avx2Table;
using kernels::KernelTable;
using kernels::ScalarTable;

// Restores whatever impl was active on entry, so these tests cannot leak a
// forced impl into other tests in the binary.
class ImplRestorer {
 public:
  ImplRestorer() : name_(kernels::ActiveImplName()) {}
  ~ImplRestorer() { kernels::SetActiveImpl(name_); }

 private:
  const char* name_;
};

std::vector<float> RandVec(size_t n, uint64_t seed, float scale = 1.0f) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = scale * (rng.NextFloat() * 2.0f - 1.0f);
  return v;
}

// Max |a-b| / max(1, |b|) over two equal-length buffers.
float MaxRelDiff(const std::vector<float>& a, const std::vector<float>& b) {
  EXPECT_EQ(a.size(), b.size());
  float worst = 0.0f;
  for (size_t i = 0; i < a.size(); ++i) {
    const float d =
        std::abs(a[i] - b[i]) / std::max(1.0f, std::abs(b[i]));
    worst = std::max(worst, d);
  }
  return worst;
}

bool BitwiseEqual(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

// Declared first so no earlier test has re-pointed the table: when the
// launcher sets PREQR_KERNEL_IMPL (scripts/check.sh's SIMD stage does),
// startup selection must honor it.
TEST(KernelDispatchTest, EnvSelectionHonored) {
  const char* want = std::getenv("PREQR_KERNEL_IMPL");
  if (want == nullptr) GTEST_SKIP() << "PREQR_KERNEL_IMPL not set";
  std::string expected(want);
  if (expected != "scalar" && !(expected == "avx2" && Avx2Supported())) {
    expected = Avx2Supported() ? "avx2" : "scalar";  // fallback note case
  }
  EXPECT_EQ(std::string(kernels::ActiveImplName()), expected);
}

TEST(KernelDispatchTest, ScalarTableAlwaysPresent) {
  ASSERT_STREQ(ScalarTable().name, "scalar");
  ASSERT_NE(ScalarTable().MatMulForward, nullptr);
  ASSERT_NE(ScalarTable().Int8GemmForward, nullptr);
}

TEST(KernelDispatchTest, SetActiveImplRoundTrips) {
  ImplRestorer restore;
  ASSERT_TRUE(kernels::SetActiveImpl("scalar"));
  EXPECT_STREQ(kernels::ActiveImplName(), "scalar");
  if (Avx2Supported()) {
    ASSERT_TRUE(kernels::SetActiveImpl("avx2"));
    EXPECT_STREQ(kernels::ActiveImplName(), "avx2");
  } else {
    EXPECT_FALSE(kernels::SetActiveImpl("avx2"));
    EXPECT_STREQ(kernels::ActiveImplName(), "scalar");
  }
}

TEST(KernelDispatchTest, UnknownImplRejectedAndTableUnchanged) {
  ImplRestorer restore;
  ASSERT_TRUE(kernels::SetActiveImpl("scalar"));
  EXPECT_FALSE(kernels::SetActiveImpl("neon"));
  EXPECT_FALSE(kernels::SetActiveImpl(""));
  EXPECT_STREQ(kernels::ActiveImplName(), "scalar");
}

TEST(KernelDispatchTest, Avx2TablePresenceMatchesSupport) {
  if (Avx2Supported()) {
    ASSERT_NE(Avx2Table(), nullptr);
    EXPECT_STREQ(Avx2Table()->name, "avx2");
  }
}

// --- scalar vs avx2 parity (tolerance; impls legitimately differ in low
// bits through FMA contraction and the polynomial exp) --------------------

class ParityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!Avx2Supported()) GTEST_SKIP() << "no AVX2+FMA on this host";
  }
};

TEST_F(ParityTest, MatMul) {
  const int m = 7, k = 37, n = 53;  // odd sizes exercise every tail path
  const auto a = RandVec(size_t(m) * k, 1);
  const auto b = RandVec(size_t(k) * n, 2);
  std::vector<float> s(size_t(m) * n, 0.0f), v(size_t(m) * n, 0.0f);
  ScalarTable().MatMulForward(a.data(), b.data(), s.data(), m, k, n);
  Avx2Table()->MatMulForward(a.data(), b.data(), v.data(), m, k, n);
  EXPECT_LT(MaxRelDiff(v, s), 1e-4f);
}

TEST_F(ParityTest, AddBiasIsBitwiseExact) {
  // One add per lane in both impls: identical rounding, identical bits.
  const size_t rows = 5;
  const int d = 19;
  const auto x = RandVec(rows * d, 3);
  const auto bias = RandVec(d, 4);
  std::vector<float> s(rows * d), v(rows * d);
  ScalarTable().AddBiasForward(x.data(), bias.data(), s.data(), rows, d);
  Avx2Table()->AddBiasForward(x.data(), bias.data(), v.data(), rows, d);
  EXPECT_TRUE(BitwiseEqual(v, s));
}

TEST_F(ParityTest, ReluIsBitwiseExact) {
  const auto x = RandVec(101, 5, 3.0f);
  std::vector<float> s(x.size()), v(x.size());
  ScalarTable().ReluForward(x.data(), s.data(), x.size());
  Avx2Table()->ReluForward(x.data(), v.data(), x.size());
  EXPECT_TRUE(BitwiseEqual(v, s));
}

TEST_F(ParityTest, Transcendentals) {
  // Spread over the interesting range plus saturation territory.
  std::vector<float> x;
  for (float t = -12.0f; t <= 12.0f; t += 0.37f) x.push_back(t);
  x.push_back(-88.0f);
  x.push_back(88.0f);
  x.push_back(0.0f);
  std::vector<float> s(x.size()), v(x.size());
  ScalarTable().GeluForward(x.data(), s.data(), x.size());
  Avx2Table()->GeluForward(x.data(), v.data(), x.size());
  for (size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(v[i], s[i], 2e-5f * std::max(1.0f, std::abs(s[i])))
        << "Gelu at x=" << x[i];
  ScalarTable().TanhForward(x.data(), s.data(), x.size());
  Avx2Table()->TanhForward(x.data(), v.data(), x.size());
  for (size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(v[i], s[i], 2e-5f) << "Tanh at x=" << x[i];
  ScalarTable().SigmoidForward(x.data(), s.data(), x.size());
  Avx2Table()->SigmoidForward(x.data(), v.data(), x.size());
  for (size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(v[i], s[i], 2e-5f) << "Sigmoid at x=" << x[i];
}

TEST_F(ParityTest, TanhSaturatesToExactlyOne) {
  const float xs[] = {20.0f, 50.0f, 88.0f, 1e6f, -20.0f, -1e6f};
  float out[6];
  Avx2Table()->TanhForward(xs, out, 6);
  for (int i = 0; i < 6; ++i)
    EXPECT_EQ(out[i], xs[i] > 0 ? 1.0f : -1.0f) << "at x=" << xs[i];
}

TEST_F(ParityTest, Softmax) {
  const size_t rows = 6;
  const int d = 29;
  const auto x = RandVec(rows * d, 6, 8.0f);
  std::vector<float> s(rows * d), v(rows * d);
  ScalarTable().SoftmaxForward(x.data(), s.data(), rows, d);
  Avx2Table()->SoftmaxForward(x.data(), v.data(), rows, d);
  EXPECT_LT(MaxRelDiff(v, s), 1e-4f);
  for (size_t r = 0; r < rows; ++r) {  // rows still normalize
    float sum = 0.0f;
    for (int j = 0; j < d; ++j) sum += v[r * d + j];
    EXPECT_NEAR(sum, 1.0f, 1e-4f);
  }
}

TEST_F(ParityTest, LayerNorm) {
  const int n = 5, d = 43;
  const auto x = RandVec(size_t(n) * d, 7, 2.0f);
  const auto gamma = RandVec(d, 8);
  const auto beta = RandVec(d, 9);
  std::vector<float> s(size_t(n) * d), v(size_t(n) * d);
  std::vector<float> sxh(size_t(n) * d), vxh(size_t(n) * d);
  std::vector<float> sistd(n), vistd(n);
  ScalarTable().LayerNormForward(x.data(), gamma.data(), beta.data(), 1e-5f,
                                 s.data(), sxh.data(), sistd.data(), n, d);
  Avx2Table()->LayerNormForward(x.data(), gamma.data(), beta.data(), 1e-5f,
                                v.data(), vxh.data(), vistd.data(), n, d);
  EXPECT_LT(MaxRelDiff(v, s), 1e-4f);
  EXPECT_LT(MaxRelDiff(vxh, sxh), 1e-4f);
  EXPECT_LT(MaxRelDiff(vistd, sistd), 1e-4f);
}

// --- avx2 self-consistency: the determinism contract ----------------------

// BatchedMatMulNT valid rows must be bitwise equal to the solo
// Transpose+MatMul path *under the same impl*.
TEST_F(ParityTest, BatchedNTMatchesSoloBitwise) {
  ImplRestorer restore;
  const int bsz = 3, t = 11, k = 16;
  std::vector<int> lengths = {11, 4, 7};
  const auto a = RandVec(size_t(bsz) * t * k, 10);
  const auto bt = RandVec(size_t(bsz) * t * k, 11);
  for (const KernelTable* tab : {&ScalarTable(), Avx2Table()}) {
    std::vector<float> batched(size_t(bsz) * t * t, 0.0f);
    tab->BatchedMatMulNTForward(a.data(), bt.data(), batched.data(), bsz, t,
                                k, lengths.data());
    for (int b = 0; b < bsz; ++b) {
      const int len = lengths[b];
      // Solo path: out = a_b[0:len] * transpose(bt_b[0:len]).
      std::vector<float> ktr(size_t(k) * len);
      kernels::TransposeForward(bt.data() + size_t(b) * t * k, ktr.data(),
                                len, k);
      std::vector<float> solo(size_t(len) * len, 0.0f);
      tab->MatMulForward(a.data() + size_t(b) * t * k, ktr.data(),
                         solo.data(), len, k, len);
      for (int i = 0; i < len; ++i) {
        EXPECT_EQ(0, std::memcmp(
                         batched.data() + (size_t(b) * t + i) * t,
                         solo.data() + size_t(i) * len,
                         size_t(len) * sizeof(float)))
            << tab->name << " example " << b << " row " << i;
      }
    }
  }
}

// Under one impl, a row's bits must not depend on what else is in the
// batch: encode the same example alone and inside a mixed batch.
TEST_F(ParityTest, BatchCompositionInvariance) {
  const int t = 9, k = 24;
  const auto probe = RandVec(size_t(t) * k, 12);
  for (const KernelTable* tab : {&ScalarTable(), Avx2Table()}) {
    // Alone.
    std::vector<int> len1 = {6};
    std::vector<float> out1(size_t(t) * t, 0.0f);
    tab->BatchedMatMulNTForward(probe.data(), probe.data(), out1.data(), 1,
                                t, k, len1.data());
    // Same example as slot 1 of a 3-example batch with junk neighbors.
    const int bsz = 3;
    std::vector<float> a(size_t(bsz) * t * k);
    auto junk0 = RandVec(size_t(t) * k, 13, 5.0f);
    auto junk2 = RandVec(size_t(t) * k, 14, 5.0f);
    std::memcpy(a.data(), junk0.data(), junk0.size() * sizeof(float));
    std::memcpy(a.data() + size_t(t) * k, probe.data(),
                probe.size() * sizeof(float));
    std::memcpy(a.data() + 2 * size_t(t) * k, junk2.data(),
                junk2.size() * sizeof(float));
    std::vector<int> len3 = {9, 6, 3};
    std::vector<float> out3(size_t(bsz) * t * t, 0.0f);
    tab->BatchedMatMulNTForward(a.data(), a.data(), out3.data(), bsz, t, k,
                                len3.data());
    for (int i = 0; i < 6; ++i)
      EXPECT_EQ(0, std::memcmp(out1.data() + size_t(i) * t,
                               out3.data() + (size_t(1) * t + i) * t,
                               6 * sizeof(float)))
          << tab->name << " row " << i;
  }
}

// Pad rows stay exactly zero even when the pad region carries garbage
// (NaN/inf), because the batched kernels never read or write past lengths.
TEST_F(ParityTest, PadRowsStayZeroWithPoisonedPadding) {
  const int bsz = 2, t = 8, k = 16, dv = 12;
  std::vector<int> lengths = {5, 3};
  auto a = RandVec(size_t(bsz) * t * k, 15);
  auto w = RandVec(size_t(bsz) * t * t, 16);
  auto v = RandVec(size_t(bsz) * t * dv, 17);
  // Poison every pad row.
  const float inf = std::numeric_limits<float>::infinity();
  for (int b = 0; b < bsz; ++b)
    for (int i = lengths[b]; i < t; ++i) {
      for (int c = 0; c < k; ++c) a[(size_t(b) * t + i) * k + c] = NAN;
      for (int c = 0; c < t; ++c) w[(size_t(b) * t + i) * t + c] = inf;
      for (int c = 0; c < dv; ++c) v[(size_t(b) * t + i) * dv + c] = NAN;
    }
  for (const KernelTable* tab : {&ScalarTable(), Avx2Table()}) {
    std::vector<float> nt(size_t(bsz) * t * t, 0.0f);
    tab->BatchedMatMulNTForward(a.data(), a.data(), nt.data(), bsz, t, k,
                                lengths.data());
    std::vector<float> sm(size_t(bsz) * t * t, 0.0f);
    tab->MaskedSoftmaxForward(nt.data(), sm.data(), bsz, t, lengths.data());
    std::vector<float> nn(size_t(bsz) * t * dv, 0.0f);
    tab->BatchedMatMulNNForward(sm.data(), v.data(), nn.data(), bsz, t, dv,
                                lengths.data());
    for (int b = 0; b < bsz; ++b)
      for (int i = 0; i < t; ++i) {
        const bool pad = i >= lengths[b];
        for (int c = 0; c < dv; ++c) {
          const float val = nn[(size_t(b) * t + i) * dv + c];
          if (pad) {
            EXPECT_EQ(val, 0.0f) << tab->name << " pad leak at b=" << b
                                 << " i=" << i << " c=" << c;
          } else {
            EXPECT_TRUE(std::isfinite(val))
                << tab->name << " poisoned valid row b=" << b << " i=" << i;
          }
        }
      }
  }
}

TEST_F(ParityTest, MaskedKernelsMatchScalarWithinTolerance) {
  const int bsz = 2, t = 10, d = 21;
  std::vector<int> lengths = {10, 6};
  const auto x = RandVec(size_t(bsz) * t * t, 18, 4.0f);
  const auto xs = RandVec(size_t(bsz) * t * d, 19);
  const auto gamma = RandVec(d, 20);
  const auto beta = RandVec(d, 21);
  std::vector<float> ssm(size_t(bsz) * t * t, 0.0f),
      vsm(size_t(bsz) * t * t, 0.0f);
  ScalarTable().MaskedSoftmaxForward(x.data(), ssm.data(), bsz, t,
                                     lengths.data());
  Avx2Table()->MaskedSoftmaxForward(x.data(), vsm.data(), bsz, t,
                                    lengths.data());
  EXPECT_LT(MaxRelDiff(vsm, ssm), 1e-4f);
  std::vector<float> sln(size_t(bsz) * t * d, 0.0f),
      vln(size_t(bsz) * t * d, 0.0f);
  ScalarTable().MaskedLayerNormForward(xs.data(), gamma.data(), beta.data(),
                                       1e-5f, sln.data(), nullptr, nullptr,
                                       bsz, t, d, lengths.data());
  Avx2Table()->MaskedLayerNormForward(xs.data(), gamma.data(), beta.data(),
                                      1e-5f, vln.data(), nullptr, nullptr,
                                      bsz, t, d, lengths.data());
  EXPECT_LT(MaxRelDiff(vln, sln), 1e-4f);
}

// --- int8 path -------------------------------------------------------------

TEST(Int8QuantTest, GuardNestsAndRestores) {
  EXPECT_FALSE(quant::Int8Enabled());
  {
    quant::Int8Guard outer(true);
    EXPECT_TRUE(quant::Int8Enabled());
    {
      quant::Int8Guard inner(false);
      EXPECT_FALSE(quant::Int8Enabled());
    }
    EXPECT_TRUE(quant::Int8Enabled());
  }
  EXPECT_FALSE(quant::Int8Enabled());
}

TEST(Int8QuantTest, QuantizeWeightRoundTripsWithinOneStep) {
  Rng rng(31);
  Tensor w = Tensor::Randn({24, 16}, rng, 0.5f, false);
  auto qw = quant::QuantizeWeight(w);
  ASSERT_EQ(qw->k, 24);
  ASSERT_EQ(qw->n, 16);
  ASSERT_GT(qw->scale, 0.0f);
  // Dequantized entries differ from the float weight by at most half a step.
  for (int kk = 0; kk < qw->k; ++kk)
    for (int j = 0; j < qw->n; ++j) {
      const float deq = float(qw->wt[size_t(j) * qw->k + kk]) * qw->scale;
      EXPECT_NEAR(deq, w.at(kk * qw->n + j), 0.5f * qw->scale + 1e-7f);
    }
}

TEST(Int8QuantTest, AllZeroWeightGetsZeroScale) {
  Tensor w = Tensor::Zeros({8, 8});
  auto qw = quant::QuantizeWeight(w);
  EXPECT_EQ(qw->scale, 0.0f);
  std::vector<float> a = RandVec(3 * 8, 32);
  std::vector<float> out(3 * 8, 0.0f);
  quant::Int8MatMulForward(a.data(), *qw, out.data(), 3);
  for (float v : out) EXPECT_EQ(v, 0.0f);
}

TEST(Int8QuantTest, Int8GemmBitwiseIdenticalAcrossImpls) {
  if (!Avx2Supported()) GTEST_SKIP() << "no AVX2+FMA on this host";
  const int m = 6, k = 41, n = 23;  // odd k exercises the madd tail
  Rng rng(33);
  std::vector<int8_t> aq(size_t(m) * k), wt(size_t(n) * k);
  for (auto& x : aq) x = int8_t(rng.NextInt(-127, 128));
  for (auto& x : wt) x = int8_t(rng.NextInt(-127, 128));
  auto a_scale = RandVec(m, 34, 0.01f);
  a_scale[2] = 0.0f;  // a skipped (all-zero activation) row
  for (auto& s : a_scale) s = std::abs(s);
  std::vector<float> s(size_t(m) * n, 0.0f), v(size_t(m) * n, 0.0f);
  ScalarTable().Int8GemmForward(aq.data(), a_scale.data(), wt.data(), 0.004f,
                                s.data(), m, k, n);
  Avx2Table()->Int8GemmForward(aq.data(), a_scale.data(), wt.data(), 0.004f,
                               v.data(), m, k, n);
  EXPECT_TRUE(BitwiseEqual(v, s));
  for (int j = 0; j < n; ++j) EXPECT_EQ(s[size_t(2) * n + j], 0.0f);
}

TEST(Int8QuantTest, Int8MatMulTracksFloatWithinQuantError) {
  const int m = 8, k = 64, n = 32;
  Rng rng(35);
  Tensor w = Tensor::Randn({k, n}, rng, 0.3f, false);
  auto qw = quant::QuantizeWeight(w);
  auto a = RandVec(size_t(m) * k, 36, 1.5f);
  std::vector<float> fref(size_t(m) * n, 0.0f), qout(size_t(m) * n, 0.0f);
  ScalarTable().MatMulForward(a.data(), w.data(), fref.data(), m, k, n);
  quant::Int8MatMulForward(a.data(), *qw, qout.data(), m);
  // Relative L2 drift bound — int8 symmetric quant at these shapes lands
  // well under 2%.
  double num = 0.0, den = 0.0;
  for (size_t i = 0; i < fref.size(); ++i) {
    const double d = double(qout[i]) - double(fref[i]);
    num += d * d;
    den += double(fref[i]) * double(fref[i]);
  }
  ASSERT_GT(den, 0.0);
  EXPECT_LT(std::sqrt(num / den), 0.02);
}

TEST(Int8QuantTest, ZeroActivationRowsStayExactlyZero) {
  const int m = 4, k = 32, n = 16;
  Rng rng(37);
  Tensor w = Tensor::Randn({k, n}, rng, 0.4f, false);
  auto qw = quant::QuantizeWeight(w);
  auto a = RandVec(size_t(m) * k, 38);
  std::fill(a.begin() + 1 * k, a.begin() + 2 * k, 0.0f);  // pad row
  std::vector<float> out(size_t(m) * n, 0.0f);
  quant::Int8MatMulForward(a.data(), *qw, out.data(), m);
  for (int j = 0; j < n; ++j) EXPECT_EQ(out[size_t(1) * n + j], 0.0f);
  for (int j = 0; j < n; ++j) EXPECT_NE(out[size_t(0) * n + j], 0.0f);
}

TEST(Int8QuantTest, CalibrateModuleAttachesAndClearsShadows) {
  Rng rng(39);
  Linear lin(24, 12, rng);
  const int attached = quant::CalibrateModule(lin);
  EXPECT_GE(attached, 1);
  bool found = false;
  for (const auto& [name, p] : lin.NamedParameters())
    if (p.ndim() == 2) {
      EXPECT_NE(p.impl()->quant, nullptr) << name;
      found = true;
    }
  EXPECT_TRUE(found);
  quant::ClearCalibration(lin);
  for (const auto& [name, p] : lin.NamedParameters())
    EXPECT_EQ(p.impl()->quant, nullptr) << name;
}

// End to end through the op layer: MatMul under Int8Guard + no-grad takes
// the quantized path; with the tape on it must NOT (gradients never see
// int8 state).
TEST(Int8QuantTest, OpsMatMulUsesInt8OnlyWhenEligible) {
  Rng rng(40);
  const int m = 5, k = 48, n = 24;
  Tensor a = Tensor::Randn({m, k}, rng, 1.0f, false);
  Tensor w = Tensor::Randn({k, n}, rng, 0.3f, false);
  std::vector<float> fref;
  {
    NoGradGuard ng;
    fref = MatMul(a, w).vec();
  }
  w.impl()->quant = quant::QuantizeWeight(w);
  std::vector<float> qvec;
  {
    NoGradGuard ng;
    quant::Int8Guard q(true);
    qvec = MatMul(a, w).vec();
  }
  // Quantized result differs from float (proves the path switched) but
  // stays close.
  EXPECT_FALSE(BitwiseEqual(qvec, fref));
  EXPECT_LT(MaxRelDiff(qvec, fref), 0.05f);
  // Direct Int8MatMulForward must agree bitwise with the op-layer path.
  std::vector<float> direct(size_t(m) * n, 0.0f);
  quant::Int8MatMulForward(a.data(), *w.impl()->quant, direct.data(), m);
  EXPECT_TRUE(BitwiseEqual(qvec, direct));
  // Tape on: the float path runs even with the guard installed.
  Tensor wg = Tensor::Randn({k, n}, rng, 0.3f, true);
  wg.impl()->quant = quant::QuantizeWeight(wg);
  quant::Int8Guard q(true);
  Tensor out = MatMul(a, wg);
  std::vector<float> fref2(size_t(m) * n, 0.0f);
  ScalarTable().MatMulForward(a.data(), wg.data(), fref2.data(), m, k, n);
  if (Avx2Supported() &&
      std::string(kernels::ActiveImplName()) == "avx2") {
    std::fill(fref2.begin(), fref2.end(), 0.0f);
    Avx2Table()->MatMulForward(a.data(), wg.data(), fref2.data(), m, k, n);
  }
  EXPECT_TRUE(BitwiseEqual(out.vec(), fref2));
}

}  // namespace
}  // namespace preqr::nn
