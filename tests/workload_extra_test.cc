#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "db/executor.h"
#include "sql/parser.h"
#include "workload/ch.h"
#include "workload/clustering_workloads.h"
#include "workload/rewrites.h"
#include "workload/sql2text.h"

namespace preqr::workload {
namespace {

const db::Database& ChDb() {
  static const db::Database* db = new db::Database(MakeChDatabase(42, 0.1));
  return *db;
}

TEST(ChTest, SchemaAndData) {
  EXPECT_EQ(ChDb().catalog().tables().size(), 6u);
  EXPECT_GT(ChDb().FindTable("orders")->num_rows(), 100u);
  EXPECT_GE(ChDb().catalog().foreign_keys().size(), 6u);
}

TEST(RewritesTest, AllRewritesPreserveResults) {
  db::Executor exec(ChDb());
  Rng rng(5);
  const char* base_sql =
      "SELECT o.id FROM orders o WHERE o.order_year BETWEEN 2016 AND 2018 "
      "AND o.status IN ('delivered','pending')";
  auto base = sql::Parse(base_sql).value();
  auto base_rows = exec.Execute(base, true).value().root_row_ids;
  ASSERT_GT(base_rows.size(), 0u);
  for (int which = 0; which < 5; ++which) {
    const std::string rewritten = EquivalentRewrite(base, which, rng);
    auto parsed = sql::Parse(rewritten);
    ASSERT_TRUE(parsed.ok()) << rewritten;
    auto rows = exec.Execute(parsed.value(), true);
    ASSERT_TRUE(rows.ok()) << rewritten;
    EXPECT_EQ(rows.value().root_row_ids, base_rows) << rewritten;
  }
}

TEST(ChSimilarityTest, WorkloadStructure) {
  auto wl = MakeChSimilarityWorkload(ChDb(), 7, 6);
  EXPECT_EQ(wl.queries.size(), 6u * 6u);  // 3 equivalent + 2 template + 1 irr
  EXPECT_EQ(wl.queries.size(), wl.family.size());
  EXPECT_EQ(wl.queries.size(), wl.category.size());
  EXPECT_EQ(wl.true_similarity.size(), wl.queries.size());
}

TEST(ChSimilarityTest, EquivalentPairsHaveSimilarityOne) {
  auto wl = MakeChSimilarityWorkload(ChDb(), 7, 6);
  int checked = 0;
  for (size_t i = 0; i < wl.queries.size(); ++i) {
    for (size_t j = i + 1; j < wl.queries.size(); ++j) {
      if (wl.family[i] == wl.family[j] && wl.category[i] == 0 &&
          wl.category[j] == 0) {
        EXPECT_NEAR(wl.true_similarity[i][j], 1.0, 1e-9)
            << wl.queries[i] << " vs " << wl.queries[j];
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, 5);
}

TEST(ChSimilarityTest, TemplateMatesLessSimilarThanEquivalents) {
  auto wl = MakeChSimilarityWorkload(ChDb(), 7, 8);
  double eq_sum = 0, tmpl_sum = 0;
  int eq_n = 0, tmpl_n = 0;
  for (size_t i = 0; i < wl.queries.size(); ++i) {
    for (size_t j = i + 1; j < wl.queries.size(); ++j) {
      if (wl.family[i] != wl.family[j]) continue;
      if (wl.category[i] == 0 && wl.category[j] == 0) {
        eq_sum += wl.true_similarity[i][j];
        ++eq_n;
      } else if (wl.category[i] <= 1 && wl.category[j] <= 1) {
        tmpl_sum += wl.true_similarity[i][j];
        ++tmpl_n;
      }
    }
  }
  ASSERT_GT(eq_n, 0);
  ASSERT_GT(tmpl_n, 0);
  EXPECT_GT(eq_sum / eq_n, tmpl_sum / tmpl_n);
}

TEST(ClusteringWorkloadTest, AllThreeWellFormed) {
  for (const auto& wl : {MakeIitBombayWorkload(), MakeUbExamWorkload(),
                         MakePocketDataWorkload()}) {
    EXPECT_FALSE(wl.name.empty());
    EXPECT_EQ(wl.queries.size(), wl.labels.size());
    EXPECT_GT(wl.catalog.tables().size(), 2u);
    std::set<int> labels(wl.labels.begin(), wl.labels.end());
    EXPECT_GT(labels.size(), 4u);
    // Every query parses.
    for (const auto& q : wl.queries) {
      EXPECT_TRUE(sql::Parse(q).ok()) << wl.name << ": " << q;
    }
    // Every cluster has multiple members.
    for (int label : labels) {
      EXPECT_GT(std::count(wl.labels.begin(), wl.labels.end(), label), 2);
    }
  }
}

TEST(Sql2TextDataTest, WikiSqlPairsWellFormed) {
  auto pairs = MakeWikiSqlDataset(50, 3);
  ASSERT_EQ(pairs.size(), 50u);
  for (const auto& p : pairs) {
    EXPECT_TRUE(sql::Parse(p.sql).ok()) << p.sql;
    EXPECT_GE(p.text.size(), 4u);
  }
}

TEST(Sql2TextDataTest, StackOverflowPairsWellFormed) {
  auto pairs = MakeStackOverflowDataset(50, 3);
  ASSERT_EQ(pairs.size(), 50u);
  for (const auto& p : pairs) {
    EXPECT_TRUE(sql::Parse(p.sql).ok()) << p.sql;
    EXPECT_GE(p.text.size(), 4u);
  }
}

TEST(Sql2TextDataTest, Deterministic) {
  auto a = MakeWikiSqlDataset(20, 9);
  auto b = MakeWikiSqlDataset(20, 9);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].sql, b[i].sql);
    EXPECT_EQ(a[i].text, b[i].text);
  }
}

}  // namespace
}  // namespace preqr::workload
