// Transactional checkpointing end to end: the interrupted-training drill
// (checkpoint at step N in one trainer, resume in a fresh trainer over a
// fresh model, final weights + Adam moments bitwise-identical to a run
// that never stopped) and hot model reload through EncoderService.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "automaton/template_extractor.h"
#include "core/pretrain.h"
#include "db/stats.h"
#include "nn/checkpoint.h"
#include "nn/serialize.h"
#include "schema/schema_graph.h"
#include "serving/encoder_service.h"
#include "tasks/preqr_encoder.h"
#include "workload/imdb.h"
#include "workload/query_gen.h"

namespace preqr::core {
namespace {

struct Env {
  db::Database imdb = workload::MakeImdbDatabase(5, 0.02);
  std::vector<db::TableStats> stats;
  std::unique_ptr<text::SqlTokenizer> tokenizer;
  automaton::Automaton fa;
  schema::SchemaGraph graph;
  std::vector<std::string> corpus;

  Env() {
    db::StatsCollector collector;
    stats = collector.AnalyzeAll(imdb);
    tokenizer = std::make_unique<text::SqlTokenizer>(imdb.catalog(), stats, 8);
    workload::ImdbQueryGenerator gen(imdb, 2);
    for (const auto& q : gen.Synthetic(24, 2)) corpus.push_back(q.sql);
    automaton::TemplateExtractor extractor(0.2);
    fa = extractor.BuildAutomaton(corpus);
    graph = schema::SchemaGraph::Build(imdb.catalog());
  }
  PreqrModel MakeModel() {
    PreqrConfig config;
    config.d_model = 32;
    config.ffn_hidden = 64;
    return PreqrModel(config, tokenizer.get(), &fa, &graph, 7);
  }
};

Env& E() {
  static Env* env = new Env();
  return *env;
}

std::vector<std::vector<float>> Snapshot(const nn::Module& m) {
  std::vector<std::vector<float>> out;
  for (const auto& [name, t] : m.NamedParameters()) out.push_back(t.vec());
  return out;
}

bool SameBits(const std::vector<std::vector<float>>& a,
              const std::vector<std::vector<float>>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].size() != b[i].size()) return false;
    if (std::memcmp(a[i].data(), b[i].data(),
                    a[i].size() * sizeof(float)) != 0) {
      return false;
    }
  }
  return true;
}

bool SameOptimizerBits(const nn::OptimizerState& a,
                       const nn::OptimizerState& b) {
  if (a.type != b.type || a.step != b.step ||
      a.slots.size() != b.slots.size()) {
    return false;
  }
  for (size_t i = 0; i < a.slots.size(); ++i) {
    if (a.slots[i].size() != b.slots[i].size()) return false;
    if (std::memcmp(a.slots[i].data(), b.slots[i].data(),
                    a.slots[i].size() * sizeof(float)) != 0) {
      return false;
    }
  }
  return true;
}

Pretrainer::Options BaseOptions() {
  Pretrainer::Options opt;
  opt.epochs = 2;
  opt.batch_size = 8;
  opt.seed = 99;
  return opt;
}

TEST(CheckpointResumeTest, BitwiseResumeMatchesUninterruptedRun) {
  const std::string path = testing::TempDir() + "/resume_drill.ckpt";

  // Run A: the reference — 2 epochs, never interrupted.
  PreqrModel model_a = E().MakeModel();
  Pretrainer trainer_a(model_a, BaseOptions());
  auto history_a = trainer_a.Train(E().corpus);
  const int64_t total_steps = trainer_a.step();
  ASSERT_GE(total_steps, 4) << "corpus too small for a mid-epoch drill";
  const auto weights_a = Snapshot(model_a);
  const auto optim_a = trainer_a.optimizer()->StateDict();

  // N lands mid-epoch so the drill also covers the shuffled-order cursor.
  const int64_t n = total_steps / 2 - 1 > 0 ? total_steps / 2 - 1
                                            : total_steps / 2;

  // Run B: same options, but killed at step N with a checkpoint on disk.
  PreqrModel model_b = E().MakeModel();
  Pretrainer::Options interrupted = BaseOptions();
  interrupted.checkpoint_every = n;
  interrupted.checkpoint_path = path;
  interrupted.max_steps = n;
  Pretrainer trainer_b(model_b, interrupted);
  trainer_b.Train(E().corpus);
  ASSERT_EQ(trainer_b.step(), n);
  ASSERT_TRUE(trainer_b.last_checkpoint_status().ok());

  // Mid-run weights must differ from the finished run (the drill is
  // vacuous otherwise).
  ASSERT_FALSE(SameBits(weights_a, Snapshot(model_b)));

  // Run C: a fresh process in miniature — new model object, new trainer,
  // nothing shared with run B except the checkpoint file.
  PreqrModel model_c = E().MakeModel();
  Pretrainer trainer_c(model_c, BaseOptions());
  ASSERT_TRUE(trainer_c.ResumeFrom(path).ok());
  EXPECT_EQ(trainer_c.step(), n);
  auto history_c = trainer_c.Train(E().corpus);

  EXPECT_EQ(trainer_c.step(), total_steps);
  EXPECT_TRUE(SameBits(weights_a, Snapshot(model_c)))
      << "resumed weights diverged from the uninterrupted run";
  EXPECT_TRUE(
      SameOptimizerBits(optim_a, trainer_c.optimizer()->StateDict()))
      << "resumed Adam moments diverged from the uninterrupted run";

  // The per-epoch history is reconstructed exactly as well, including the
  // epoch that was in flight when the checkpoint was cut.
  ASSERT_EQ(history_a.size(), history_c.size());
  for (size_t e = 0; e < history_a.size(); ++e) {
    EXPECT_EQ(history_a[e].mlm_loss, history_c[e].mlm_loss);
    EXPECT_EQ(history_a[e].masked_accuracy, history_c[e].masked_accuracy);
  }
  std::remove(path.c_str());
}

TEST(CheckpointResumeTest, ResumeRejectsCorruptFileWithoutTouchingState) {
  const std::string path = testing::TempDir() + "/resume_corrupt.ckpt";
  PreqrModel model = E().MakeModel();
  Pretrainer::Options opt = BaseOptions();
  opt.epochs = 1;
  opt.max_steps = 1;
  Pretrainer trainer(model, opt);
  trainer.Train(E().corpus);
  ASSERT_TRUE(trainer.SaveCheckpoint(path).ok());

  // Corrupt one payload byte: the CRC must reject it and the model must
  // stay bitwise as-is.
  std::string bytes;
  ASSERT_TRUE(nn::ReadFileToString(path, &bytes).ok());
  bytes[bytes.size() - 3] = static_cast<char>(bytes[bytes.size() - 3] ^ 0x40);
  ASSERT_TRUE(nn::AtomicWriteFile(path, bytes).ok());

  const auto before = Snapshot(model);
  const int64_t step_before = trainer.step();
  EXPECT_FALSE(trainer.ResumeFrom(path).ok());
  EXPECT_TRUE(SameBits(before, Snapshot(model)));
  EXPECT_EQ(trainer.step(), step_before);

  EXPECT_FALSE(trainer.ResumeFrom("/nonexistent/ckpt.prc1").ok());
  std::remove(path.c_str());
}

TEST(CheckpointResumeTest, PeriodicCheckpointsAreCompleteFiles) {
  const std::string path = testing::TempDir() + "/resume_periodic.ckpt";
  PreqrModel model = E().MakeModel();
  Pretrainer::Options opt = BaseOptions();
  opt.epochs = 1;
  opt.checkpoint_every = 2;
  opt.checkpoint_path = path;
  Pretrainer trainer(model, opt);
  trainer.Train(E().corpus);
  ASSERT_TRUE(trainer.last_checkpoint_status().ok());

  nn::CheckpointReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  EXPECT_TRUE(reader.Has(nn::kSectionModel));
  EXPECT_TRUE(reader.Has(nn::kSectionOptimizer));
  EXPECT_TRUE(reader.Has(nn::kSectionRng));
  EXPECT_TRUE(reader.Has(nn::kSectionStep));
  EXPECT_TRUE(reader.Has(nn::kSectionTrainer));

  // The periodic file reflects the step it was cut at (not the final
  // weights); re-saving at the end and loading it back as a weights-only
  // consumer must reproduce the final model bitwise.
  PreqrModel other = E().MakeModel();
  EXPECT_TRUE(nn::LoadModule(other, path).ok());
  ASSERT_TRUE(trainer.SaveCheckpoint(path).ok());
  EXPECT_TRUE(nn::LoadModule(other, path).ok());
  EXPECT_TRUE(SameBits(Snapshot(model), Snapshot(other)));
  std::remove(path.c_str());
}

TEST(CheckpointResumeTest, ServingHotReloadSwapsWeightsAndDropsCache) {
  const std::string path = testing::TempDir() + "/serving_reload.ckpt";

  // The updated model: a short pre-training pass, checkpointed to disk.
  PreqrModel updated = E().MakeModel();
  Pretrainer::Options opt = BaseOptions();
  opt.epochs = 1;
  Pretrainer trainer(updated, opt);
  trainer.Train(E().corpus);
  ASSERT_TRUE(trainer.SaveCheckpoint(path).ok());

  // The serving stack still runs the stale (un-trained) weights.
  PreqrModel served = E().MakeModel();
  tasks::PreqrEncoder encoder(&served);
  serving::EncoderService service(&encoder);
  service.AttachModel(&served);

  const std::string& probe = E().corpus.front();
  auto before = service.Encode(probe);
  ASSERT_TRUE(before.ok());
  ASSERT_GT(service.cached_embeddings(), 0u);

  // Hot reload from the checkpoint: the old embedding must be evicted and
  // every new encode must match a fresh encoder over the updated model.
  ASSERT_TRUE(service.ReloadModel(path).ok());
  EXPECT_EQ(service.cached_embeddings(), 0u);
  EXPECT_EQ(service.metrics().reloads.value(), 1u);

  auto after = service.Encode(probe);
  ASSERT_TRUE(after.ok());
  tasks::PreqrEncoder fresh(&updated);
  nn::Tensor expect = fresh.EncodeVector(probe, /*train=*/false);
  ASSERT_EQ(after.value().size(), expect.size());
  EXPECT_EQ(std::memcmp(after.value().data(), expect.data(),
                        static_cast<size_t>(expect.size()) * sizeof(float)),
            0)
      << "served embedding after reload differs from the updated model";
  EXPECT_NE(std::memcmp(after.value().data(), before.value().data(),
                        static_cast<size_t>(expect.size()) * sizeof(float)),
            0)
      << "reload served the stale embedding";

  // A failed reload keeps both the weights and the cache: the same bits
  // keep being served and the failure is visible in the metrics.
  const auto weights = Snapshot(served);
  EXPECT_FALSE(service.ReloadModel("/nonexistent/ckpt.prc1").ok());
  EXPECT_TRUE(SameBits(weights, Snapshot(served)));
  EXPECT_EQ(service.metrics().reload_failures.value(), 1u);
  auto again = service.Encode(probe);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(std::memcmp(again.value().data(), after.value().data(),
                        static_cast<size_t>(expect.size()) * sizeof(float)),
            0);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace preqr::core
