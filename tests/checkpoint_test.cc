// PRC1 checkpoint format + hardened PRM1 module serialization.
//
//  * CRC32 known-answer and corruption detection.
//  * Writer/Reader section round trip; atomic temp+rename publication.
//  * A corrupted-file corpus (bad magic, bad version, CRC flip, oversize
//    name, rank/dim overflow, duplicate parameters, trailing garbage, and
//    truncation at every byte offset) must fail with a Status — never
//    crash, never allocate absurdly, and never mutate the target module.
//  * A save that dies mid-write must not shadow the last good file.
#include "nn/checkpoint.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include <sys/stat.h>

#include "nn/module.h"
#include "nn/serialize.h"

namespace preqr::nn {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::string ReadAll(const std::string& path) {
  std::string bytes;
  EXPECT_TRUE(ReadFileToString(path, &bytes).ok());
  return bytes;
}

// Bitwise snapshot of every parameter of a module.
std::vector<std::vector<float>> Snapshot(const Module& m) {
  std::vector<std::vector<float>> out;
  for (const auto& [name, t] : m.NamedParameters()) out.push_back(t.vec());
  return out;
}

bool SameBits(const std::vector<std::vector<float>>& a, const Module& m) {
  auto b = Snapshot(m);
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].size() != b[i].size()) return false;
    if (std::memcmp(a[i].data(), b[i].data(),
                    a[i].size() * sizeof(float)) != 0) {
      return false;
    }
  }
  return true;
}

void AppendU32(std::string* out, uint32_t v) {
  char buf[sizeof(v)];
  std::memcpy(buf, &v, sizeof(v));
  out->append(buf, sizeof(v));
}

TEST(Crc32Test, KnownAnswer) {
  // The canonical IEEE CRC-32 check value.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
}

TEST(Crc32Test, Chains) {
  const std::string all = "hello, checkpoint";
  const uint32_t whole = Crc32(all.data(), all.size());
  const uint32_t part = Crc32(all.data() + 5, all.size() - 5,
                              Crc32(all.data(), 5));
  EXPECT_EQ(whole, part);
}

TEST(CheckpointRoundTrip, SectionsSurvive) {
  CheckpointWriter writer;
  writer.AddSection("alpha", std::string("\x00\x01\x02", 3));
  writer.AddSection("beta", "");
  writer.AddSection("gamma", std::string(1000, 'g'));
  const std::string path = TempPath("prc1_roundtrip.ckpt");
  ASSERT_TRUE(writer.WriteAtomic(path).ok());

  CheckpointReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  EXPECT_EQ(reader.version(), kCheckpointVersion);
  ASSERT_TRUE(reader.Has("alpha"));
  ASSERT_TRUE(reader.Has("beta"));
  ASSERT_TRUE(reader.Has("gamma"));
  EXPECT_FALSE(reader.Has("delta"));
  EXPECT_EQ(*reader.Section("alpha"), std::string("\x00\x01\x02", 3));
  EXPECT_EQ(reader.Section("beta")->size(), 0u);
  EXPECT_EQ(*reader.Section("gamma"), std::string(1000, 'g'));
  EXPECT_EQ(reader.Section("delta"), nullptr);
  std::remove(path.c_str());
}

TEST(CheckpointRoundTrip, DuplicateSectionRejectedAtWrite) {
  CheckpointWriter writer;
  writer.AddSection("twice", "a");
  writer.AddSection("twice", "b");
  EXPECT_FALSE(writer.Serialize().ok());
}

TEST(CheckpointCorruption, TruncationAtEveryByte) {
  CheckpointWriter writer;
  writer.AddSection("model", std::string(64, 'm'));
  writer.AddSection("optim", std::string(32, 'o'));
  auto bytes = writer.Serialize();
  ASSERT_TRUE(bytes.ok());
  const std::string& full = bytes.value();
  for (size_t cut = 0; cut < full.size(); ++cut) {
    CheckpointReader reader;
    EXPECT_FALSE(reader.Parse(full.substr(0, cut)).ok())
        << "truncation at byte " << cut << " was accepted";
  }
  CheckpointReader reader;
  EXPECT_TRUE(reader.Parse(full).ok());
}

TEST(CheckpointCorruption, EveryFlippedByteInHeaderOrBodyIsCaught) {
  CheckpointWriter writer;
  writer.AddSection("model", std::string(48, 'x'));
  auto bytes = writer.Serialize();
  ASSERT_TRUE(bytes.ok());
  // Flipping any payload byte must trip the CRC; flipping header bytes
  // must trip magic/version/count/size/CRC validation.
  for (size_t i = 0; i < bytes.value().size(); ++i) {
    std::string corrupt = bytes.value();
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x5A);
    CheckpointReader reader;
    EXPECT_FALSE(reader.Parse(std::move(corrupt)).ok())
        << "flipped byte " << i << " was accepted";
  }
}

TEST(CheckpointCorruption, TrailingGarbageRejected) {
  CheckpointWriter writer;
  writer.AddSection("model", "payload");
  auto bytes = writer.Serialize();
  ASSERT_TRUE(bytes.ok());
  CheckpointReader reader;
  EXPECT_FALSE(reader.Parse(bytes.value() + "junk").ok());
}

TEST(CheckpointCorruption, ImplausibleHeaderFieldsRejected) {
  // magic ok, version ok, but section count / payload size are absurd —
  // the reader must reject them from the bounds alone (no huge allocs).
  std::string bytes;
  AppendU32(&bytes, kCheckpointMagic);
  AppendU32(&bytes, kCheckpointVersion);
  AppendU32(&bytes, 0xFFFFFFFFu);             // sections
  bytes.append(8, '\0');                      // payload size = 0
  AppendU32(&bytes, 0);                       // crc of empty
  CheckpointReader reader;
  EXPECT_FALSE(reader.Parse(std::move(bytes)).ok());

  std::string bytes2;
  AppendU32(&bytes2, kCheckpointMagic);
  AppendU32(&bytes2, kCheckpointVersion);
  AppendU32(&bytes2, 1);
  const uint64_t huge = ~0ull;                // payload size = 2^64-1
  bytes2.append(reinterpret_cast<const char*>(&huge), sizeof(huge));
  AppendU32(&bytes2, 0);
  CheckpointReader reader2;
  EXPECT_FALSE(reader2.Parse(std::move(bytes2)).ok());
}

TEST(AtomicWrite, ReplacesAndSurvivesStaleTemp) {
  const std::string path = TempPath("atomic_target.bin");
  ASSERT_TRUE(AtomicWriteFile(path, "first").ok());
  EXPECT_EQ(ReadAll(path), "first");
  // A crash mid-save leaves junk at path+".tmp"; the destination must be
  // untouched, and the next save must replace both cleanly.
  {
    std::FILE* f = std::fopen((path + ".tmp").c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("torn-half-written-checkpoint", f);
    std::fclose(f);
  }
  EXPECT_EQ(ReadAll(path), "first");
  ASSERT_TRUE(AtomicWriteFile(path, "second").ok());
  EXPECT_EQ(ReadAll(path), "second");
  std::remove(path.c_str());
}

TEST(AtomicWrite, FailedWriteKeepsExistingFile) {
  const std::string path = TempPath("atomic_keep.bin");
  ASSERT_TRUE(AtomicWriteFile(path, "good").ok());
  // Make the temp path unopenable by occupying it with a directory: the
  // write must fail with a Status and the good file must still be there.
  ASSERT_EQ(mkdir((path + ".tmp").c_str(), 0700), 0);
  EXPECT_FALSE(AtomicWriteFile(path, "evil").ok());
  EXPECT_EQ(ReadAll(path), "good");
  rmdir((path + ".tmp").c_str());
  std::remove(path.c_str());
}

TEST(AtomicWrite, UnwritableDirectoryFails) {
  EXPECT_FALSE(
      AtomicWriteFile("/nonexistent-dir-zzz/file.bin", "bytes").ok());
}

// --- Hardened PRM1 loading -------------------------------------------------

struct Prm1File {
  std::string bytes;
  Prm1File() { AppendU32(&bytes, 0x50524d31); }
  void U32(uint32_t v) { AppendU32(&bytes, v); }
  void Name(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    bytes += s;
  }
  void Floats(size_t n, float v) {
    std::vector<float> data(n, v);
    bytes.append(reinterpret_cast<const char*>(data.data()),
                 n * sizeof(float));
  }
  void WriteTo(const std::string& path) {
    ASSERT_TRUE(AtomicWriteFile(path, bytes).ok());
  }
};

TEST(LoadModuleHardening, DuplicateParameterRejected) {
  Rng rng(3);
  Linear lin(2, 3, rng);  // parameters: weight [2,3], bias [3]
  const auto before = Snapshot(lin);
  // Two entries, both named "weight": the count check alone would pass and
  // "bias" would silently keep its init values.
  Prm1File f;
  f.U32(2);
  for (int rep = 0; rep < 2; ++rep) {
    f.Name("weight");
    f.U32(2);  // ndim
    f.U32(2);
    f.U32(3);
    f.Floats(6, 1.5f);
  }
  const std::string path = TempPath("prm1_dup.bin");
  f.WriteTo(path);
  Status s = LoadModule(lin, path);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("duplicate"), std::string::npos);
  EXPECT_TRUE(SameBits(before, lin));
  std::remove(path.c_str());
}

TEST(LoadModuleHardening, OversizeNameRejected) {
  Rng rng(4);
  Linear lin(2, 2, rng);
  const auto before = Snapshot(lin);
  Prm1File f;
  f.U32(2);
  // name_len claims ~4 GB; a trusting loader would try to allocate it.
  f.U32(0xFFFFFFF0u);
  const std::string path = TempPath("prm1_bigname.bin");
  f.WriteTo(path);
  EXPECT_FALSE(LoadModule(lin, path).ok());
  EXPECT_TRUE(SameBits(before, lin));
  std::remove(path.c_str());
}

TEST(LoadModuleHardening, DimOverflowRejected) {
  Rng rng(5);
  Linear lin(2, 2, rng);
  const auto before = Snapshot(lin);
  // 4 dims of 2^31 each: n *= dim wraps a 64-bit product to reading zero
  // floats in the unchecked loader. Must fail cleanly instead.
  Prm1File f;
  f.U32(2);
  f.Name("weight");
  f.U32(4);
  for (int d = 0; d < 4; ++d) f.U32(0x80000000u);
  const std::string path = TempPath("prm1_overflow.bin");
  f.WriteTo(path);
  EXPECT_FALSE(LoadModule(lin, path).ok());
  EXPECT_TRUE(SameBits(before, lin));
  std::remove(path.c_str());
}

TEST(LoadModuleHardening, ImplausibleRankRejected) {
  Rng rng(6);
  Linear lin(2, 2, rng);
  Prm1File f;
  f.U32(2);
  f.Name("weight");
  f.U32(1u << 20);  // ndim
  const std::string path = TempPath("prm1_rank.bin");
  f.WriteTo(path);
  EXPECT_FALSE(LoadModule(lin, path).ok());
  std::remove(path.c_str());
}

TEST(LoadModuleHardening, TrailingGarbageRejected) {
  Rng rng(7);
  Linear lin(2, 2, rng);
  const std::string path = TempPath("prm1_trailing.bin");
  ASSERT_TRUE(SaveModule(lin, path).ok());
  std::string bytes = ReadAll(path);
  ASSERT_TRUE(AtomicWriteFile(path, bytes + "extra").ok());
  Status s = LoadModule(lin, path);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("trailing"), std::string::npos);
  std::remove(path.c_str());
}

TEST(LoadModuleHardening, TruncationAtEveryByteLeavesModuleUntouched) {
  Rng rng(8);
  Linear good(3, 2, rng);
  const std::string path = TempPath("prm1_trunc.bin");
  ASSERT_TRUE(SaveModule(good, path).ok());
  const std::string full = ReadAll(path);

  Linear target(3, 2, rng);  // different init than `good`
  const auto before = Snapshot(target);
  for (size_t cut = 0; cut < full.size(); ++cut) {
    ASSERT_TRUE(AtomicWriteFile(path, full.substr(0, cut)).ok());
    EXPECT_FALSE(LoadModule(target, path).ok())
        << "truncation at byte " << cut << " was accepted";
    // The transactional contract: after ANY failed load the module is
    // bitwise-identical to its pre-call state.
    ASSERT_TRUE(SameBits(before, target)) << "mutated at cut " << cut;
  }
  ASSERT_TRUE(AtomicWriteFile(path, full).ok());
  EXPECT_TRUE(LoadModule(target, path).ok());
  EXPECT_FALSE(SameBits(before, target));  // now it really loaded
  EXPECT_TRUE(SameBits(Snapshot(good), target));
  std::remove(path.c_str());
}

TEST(LoadModuleHardening, ShapeMismatchLeavesEarlierParamsUntouched) {
  Rng rng(9);
  Linear dst(4, 4, rng);
  const auto before = Snapshot(dst);
  // Entry 0 ("weight", [4,4]) is perfectly valid; entry 1 ("bias") claims
  // shape [5] instead of [4]. The unfixed loader had already written the
  // weight tensor by the time the bias check failed.
  Prm1File f;
  f.U32(2);
  f.Name("weight");
  f.U32(2);
  f.U32(4);
  f.U32(4);
  f.Floats(16, 2.25f);
  f.Name("bias");
  f.U32(1);
  f.U32(5);
  f.Floats(5, -1.0f);
  const std::string path = TempPath("prm1_shape.bin");
  f.WriteTo(path);
  Status s = LoadModule(dst, path);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("shape mismatch"), std::string::npos);
  EXPECT_TRUE(SameBits(before, dst));
  std::remove(path.c_str());
}

TEST(LoadModuleHardening, BadMagicRejected) {
  Rng rng(10);
  Linear lin(2, 2, rng);
  const std::string path = TempPath("prm1_magic.bin");
  ASSERT_TRUE(AtomicWriteFile(path, "XXXXGARBAGE").ok());
  EXPECT_FALSE(LoadModule(lin, path).ok());
  std::remove(path.c_str());
}

TEST(SaveModule, AtomicOverExistingFile) {
  Rng rng(11);
  Linear a(3, 3, rng);
  Linear b(3, 3, rng);
  const std::string path = TempPath("prm1_atomic.bin");
  ASSERT_TRUE(SaveModule(a, path).ok());
  // A "crashed" previous save left a torn temp file; the good file must
  // still load and the next save must succeed.
  ASSERT_TRUE(AtomicWriteFile(path + ".tmp.keep", "x").ok());
  {
    std::FILE* f = std::fopen((path + ".tmp").c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("half", f);
    std::fclose(f);
  }
  Linear check(3, 3, rng);
  EXPECT_TRUE(LoadModule(check, path).ok());
  EXPECT_TRUE(SameBits(Snapshot(a), check));
  ASSERT_TRUE(SaveModule(b, path).ok());
  EXPECT_TRUE(LoadModule(check, path).ok());
  EXPECT_TRUE(SameBits(Snapshot(b), check));
  std::remove((path + ".tmp.keep").c_str());
  std::remove(path.c_str());
}

TEST(LoadModule, AcceptsFullCheckpointModelSection) {
  Rng rng(12);
  Linear src(4, 2, rng);
  CheckpointWriter writer;
  writer.AddSection(kSectionModel, EncodeModuleParams(src));
  writer.AddSection(kSectionStep, EncodeU64(123));
  const std::string path = TempPath("prc1_model.ckpt");
  ASSERT_TRUE(writer.WriteAtomic(path).ok());
  Linear dst(4, 2, rng);
  ASSERT_TRUE(LoadModule(dst, path).ok());
  EXPECT_TRUE(SameBits(Snapshot(src), dst));
  std::remove(path.c_str());
}

TEST(OptimizerStateCodec, RoundTrip) {
  OptimizerState state;
  state.type = "adam";
  state.step = 41;
  state.slots = {{1.0f, 2.0f}, {}, {3.5f}};
  OptimizerState back;
  ASSERT_TRUE(DecodeOptimizerState(EncodeOptimizerState(state), &back).ok());
  EXPECT_EQ(back.type, "adam");
  EXPECT_EQ(back.step, 41);
  ASSERT_EQ(back.slots.size(), 3u);
  EXPECT_EQ(back.slots[0], (std::vector<float>{1.0f, 2.0f}));
  EXPECT_TRUE(back.slots[1].empty());
  EXPECT_EQ(back.slots[2], (std::vector<float>{3.5f}));

  // Truncations fail cleanly.
  const std::string bytes = EncodeOptimizerState(state);
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    OptimizerState tmp;
    EXPECT_FALSE(DecodeOptimizerState(bytes.substr(0, cut), &tmp).ok());
  }
}

TEST(RngStateCodec, RoundTripResumesSequence) {
  Rng rng(77);
  for (int i = 0; i < 5; ++i) rng.NextUint64();
  Rng::State mid = rng.state();
  std::vector<uint64_t> expect;
  for (int i = 0; i < 8; ++i) expect.push_back(rng.NextUint64());

  Rng::State decoded;
  ASSERT_TRUE(DecodeRngState(EncodeRngState(mid), &decoded).ok());
  Rng resumed(1);  // different seed; state restore must override it
  resumed.set_state(decoded);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(resumed.NextUint64(), expect[i]);

  Rng::State bad;
  EXPECT_FALSE(DecodeRngState("short", &bad).ok());
}

}  // namespace
}  // namespace preqr::nn
