#include <gtest/gtest.h>

#include "automaton/fa.h"
#include "automaton/symbol.h"
#include "automaton/template_extractor.h"

namespace preqr::automaton {
namespace {

// Queries q1..q5 from Figure 2 of the paper.
const char* kQ1 = "SELECT name FROM user WHERE rank IN ('adm','sup')";
const char* kQ2 = "SELECT SUM(balance) FROM accounts";
const char* kQ3 =
    "SELECT name FROM user WHERE rank = 'adm' "
    "UNION SELECT name FROM user WHERE rank = 'sup'";
const char* kQ4 =
    "SELECT SUM(balance) FROM accounts WHERE user_id IN "
    "(SELECT user_id FROM user WHERE rank = 'adm')";
const char* kQ5 =
    "SELECT SUM(accounts.balance) FROM accounts, user "
    "WHERE accounts.user_id = user.id AND user.rank = 'adm'";

TEST(SymbolTest, ProjectsIdentifiersByRegion) {
  auto symbols = StructuralSymbols(
      "SELECT t.id FROM title t WHERE t.production_year > 2010");
  // SELECT [t . id] FROM [title t] WHERE [t . production_year] > [2010] END
  std::vector<Symbol> expected = {
      Symbol::kSelect,     Symbol::kSelectItem, Symbol::kSelectItem,
      Symbol::kSelectItem, Symbol::kFrom,       Symbol::kTable,
      Symbol::kTable,      Symbol::kWhere,      Symbol::kColumn,
      Symbol::kColumn,     Symbol::kColumn,     Symbol::kOpGt,
      Symbol::kValueNum,   Symbol::kEnd};
  EXPECT_EQ(symbols, expected);
}

TEST(SymbolTest, AggregateRegionIsOneSymbol) {
  auto symbols = StructuralSymbols("SELECT COUNT(*) FROM title");
  // COUNT ( * ) all map to kAgg.
  std::vector<Symbol> expected = {Symbol::kSelect, Symbol::kAgg, Symbol::kAgg,
                                  Symbol::kAgg,    Symbol::kAgg, Symbol::kFrom,
                                  Symbol::kTable,  Symbol::kEnd};
  EXPECT_EQ(symbols, expected);
}

TEST(SymbolTest, FromListCollapsesToOneState) {
  auto symbols =
      StructuralSymbols("SELECT COUNT(*) FROM title t, movie_companies mc");
  auto collapsed = Collapse(symbols);
  // SELECT AGG FROM TAB END
  std::vector<Symbol> expected = {Symbol::kSelect, Symbol::kAgg, Symbol::kFrom,
                                  Symbol::kTable, Symbol::kEnd};
  EXPECT_EQ(collapsed, expected);
}

TEST(SymbolTest, OperatorsAreDistinct) {
  auto a = Collapse(StructuralSymbols("SELECT a FROM t WHERE b > 1"));
  auto b = Collapse(StructuralSymbols("SELECT a FROM t WHERE b = 1"));
  EXPECT_NE(a, b);
}

TEST(SymbolTest, SameStructureDifferentNamesEqual) {
  auto a = StructuralSymbols("SELECT a FROM t WHERE b > 1");
  auto b = StructuralSymbols("SELECT zz FROM other WHERE yy > 99");
  EXPECT_EQ(a, b);
}

TEST(SymbolTest, LexFailureGivesEmpty) {
  EXPECT_TRUE(StructuralSymbols("SELECT @@@").empty());
}

TEST(SymbolTest, SymbolsToStringReadable) {
  auto s = Collapse(StructuralSymbols("SELECT a FROM t WHERE b = 2"));
  EXPECT_EQ(SymbolsToString(s), "SELECT ITEM FROM TAB WHERE COL = NUM END");
}

TEST(FaTest, MatchAcceptsOwnTemplate) {
  AutomatonBuilder builder;
  const auto symbols = StructuralSymbols(kQ1);
  builder.AddTemplate(Collapse(symbols));
  Automaton fa = builder.Build();
  auto match = fa.Match(symbols);
  EXPECT_TRUE(match.accepted);
  EXPECT_EQ(match.states.size(), symbols.size());
}

TEST(FaTest, ListTokensShareState) {
  AutomatonBuilder builder;
  const auto symbols = StructuralSymbols(
      "SELECT COUNT(*) FROM title t, movie_companies mc WHERE t.id = 3");
  builder.AddTemplate(Collapse(symbols));
  Automaton fa = builder.Build();
  auto match = fa.Match(symbols);
  ASSERT_TRUE(match.accepted);
  // Tokens 6..10 are the FROM list (title t , movie_companies mc): same state.
  const int from_list_state = match.states[6];
  for (int i = 7; i <= 10; ++i) EXPECT_EQ(match.states[i], from_list_state);
}

TEST(FaTest, UnionReusesStates) {
  // The paper's Table 2: q3 = q UNION q walks the same states twice.
  AutomatonBuilder builder;
  builder.AddTemplate(Collapse(StructuralSymbols(kQ3)));
  Automaton fa = builder.Build();
  const auto symbols = StructuralSymbols(kQ3);
  auto match = fa.Match(symbols);
  ASSERT_TRUE(match.accepted);
  // The SELECT token after UNION maps to the same state as the first SELECT.
  size_t union_pos = 0;
  for (size_t i = 0; i < symbols.size(); ++i) {
    if (symbols[i] == Symbol::kUnion) union_pos = i;
  }
  ASSERT_GT(union_pos, 0u);
  EXPECT_EQ(match.states[union_pos + 1], match.states[0]);
}

TEST(FaTest, MaximalPrefixMergeSharesStates) {
  AutomatonBuilder builder;
  auto t1 = Collapse(StructuralSymbols("SELECT a FROM t WHERE b = 1"));
  auto t2 = Collapse(StructuralSymbols("SELECT a FROM t WHERE b > 1"));
  builder.AddTemplate(t1);
  const int before = builder.Build().num_states();
  builder.AddTemplate(t2);
  const int after = builder.Build().num_states();
  // Only the operator + value + end differ -> few new states.
  EXPECT_LE(after - before, 3);
  // Matching still works for both.
  Automaton fa = builder.Build();
  EXPECT_TRUE(fa.Match(StructuralSymbols("SELECT a FROM t WHERE b = 1"))
                  .accepted);
  EXPECT_TRUE(fa.Match(StructuralSymbols("SELECT zz FROM q WHERE k > 7"))
                  .accepted);
}

TEST(FaTest, UnknownStructureDegradesGracefully) {
  AutomatonBuilder builder;
  builder.AddTemplate(Collapse(StructuralSymbols("SELECT a FROM t")));
  Automaton fa = builder.Build();
  auto match = fa.Match(StructuralSymbols("SELECT a FROM t WHERE b = 1"));
  EXPECT_FALSE(match.accepted);
  // Still emits one state per token.
  EXPECT_EQ(match.states.size(),
            StructuralSymbols("SELECT a FROM t WHERE b = 1").size());
}

TEST(FaTest, Q1AndQ3ShareStatePrefix) {
  // Structural kinship of logically-equal q1/q3 (Figure 2).
  AutomatonBuilder builder;
  builder.AddTemplate(Collapse(StructuralSymbols(kQ1)));
  builder.AddTemplate(Collapse(StructuralSymbols(kQ3)));
  Automaton fa = builder.Build();
  auto m1 = fa.Match(StructuralSymbols(kQ1));
  auto m3 = fa.Match(StructuralSymbols(kQ3));
  ASSERT_TRUE(m1.accepted);
  ASSERT_TRUE(m3.accepted);
  // Both share the SELECT..WHERE prefix states.
  for (int i = 0; i < 5; ++i) EXPECT_EQ(m1.states[i], m3.states[i]);
}

TEST(TemplateDistanceTest, IdenticalStructureIsZero) {
  auto a = NormalizeForTemplate("SELECT a FROM t WHERE b = 1");
  auto b = NormalizeForTemplate("SELECT x FROM y WHERE z = 99");
  EXPECT_NEAR(TemplateDistance(a, b), 0.0, 1e-9);
}

TEST(TemplateDistanceTest, DifferentStructureIsPositive) {
  auto a = NormalizeForTemplate(kQ1);
  auto b = NormalizeForTemplate(kQ2);
  EXPECT_GT(TemplateDistance(a, b), 0.1);
}

TEST(TemplateExtractorTest, GroupsByStructure) {
  TemplateExtractor extractor(0.2);
  std::vector<std::string> queries = {
      "SELECT a FROM t WHERE b = 1",
      "SELECT x FROM y WHERE z = 5",
      "SELECT COUNT(*) FROM t1, t2 WHERE t1.a = t2.b AND t1.c > 3",
      "SELECT COUNT(*) FROM p, q WHERE p.k = q.k AND p.v > 9",
  };
  auto ext = extractor.Extract(queries);
  EXPECT_EQ(ext.templates.size(), 2u);
  EXPECT_EQ(ext.assignment[0], ext.assignment[1]);
  EXPECT_EQ(ext.assignment[2], ext.assignment[3]);
  EXPECT_NE(ext.assignment[0], ext.assignment[2]);
}

TEST(TemplateExtractorTest, PaperFigure2Queries) {
  TemplateExtractor extractor(0.2);
  auto ext = extractor.Extract({kQ1, kQ2, kQ3, kQ4, kQ5});
  // All five structures are distinct templates at a tight threshold...
  EXPECT_GE(ext.templates.size(), 3u);
  // ...and the automaton accepts each of them.
  Automaton fa = extractor.BuildAutomaton({kQ1, kQ2, kQ3, kQ4, kQ5});
  for (const char* q : {kQ1, kQ2, kQ3, kQ4, kQ5}) {
    EXPECT_TRUE(fa.Match(StructuralSymbols(q)).accepted) << q;
  }
}

TEST(TemplateExtractorTest, EmptyWorkload) {
  TemplateExtractor extractor;
  auto ext = extractor.Extract({});
  EXPECT_TRUE(ext.templates.empty());
  EXPECT_TRUE(ext.assignment.empty());
}

TEST(TemplateExtractorTest, AssignmentCoversAllQueries) {
  TemplateExtractor extractor(0.15);
  std::vector<std::string> queries;
  for (int i = 0; i < 50; ++i) {
    queries.push_back("SELECT a FROM t WHERE b = " + std::to_string(i));
  }
  auto ext = extractor.Extract(queries);
  EXPECT_EQ(ext.templates.size(), 1u);
  for (int a : ext.assignment) EXPECT_EQ(a, 0);
}

}  // namespace
}  // namespace preqr::automaton
