#include <gtest/gtest.h>

#include "schema/schema_graph.h"
#include "workload/imdb.h"

namespace preqr::schema {
namespace {

sql::Catalog SmallCatalog() {
  sql::Catalog cat;
  sql::TableDef title;
  title.name = "title";
  title.columns = {{"id", sql::ColumnType::kInt, true},
                   {"production_year", sql::ColumnType::kInt, false}};
  cat.AddTable(title);
  sql::TableDef mc;
  mc.name = "movie_companies";
  mc.columns = {{"id", sql::ColumnType::kInt, true},
                {"movie_id", sql::ColumnType::kInt, false},
                {"note", sql::ColumnType::kString, false}};
  cat.AddTable(mc);
  EXPECT_TRUE(
      cat.AddForeignKey({"movie_companies", "movie_id", "title", "id"}).ok());
  return cat;
}

TEST(SchemaGraphTest, NodeCountsAndNames) {
  SchemaGraph g = SchemaGraph::Build(SmallCatalog());
  // 2 tables + 5 columns.
  EXPECT_EQ(g.num_nodes(), 7);
  EXPECT_GE(g.TableNode("title"), 0);
  EXPECT_GE(g.ColumnNode("movie_companies", "movie_id"), 0);
  EXPECT_EQ(g.TableNode("nope"), -1);
  EXPECT_EQ(g.ColumnNode("title", "nope"), -1);
}

TEST(SchemaGraphTest, ColumnNodeTokensStartWithType) {
  SchemaGraph g = SchemaGraph::Build(SmallCatalog());
  const auto& node =
      g.nodes()[static_cast<size_t>(g.ColumnNode("title", "production_year"))];
  ASSERT_GE(node.name_tokens.size(), 3u);
  EXPECT_EQ(node.name_tokens[0], "int");
  EXPECT_EQ(node.name_tokens[1], "production");
  EXPECT_EQ(node.name_tokens[2], "year");
  const auto& str_node = g.nodes()[static_cast<size_t>(
      g.ColumnNode("movie_companies", "note"))];
  EXPECT_EQ(str_node.name_tokens[0], "varchar");
}

int CountEdges(const SchemaGraph& g, EdgeType type) {
  int n = 0;
  for (const auto& e : g.edges()) n += e.type == type ? 1 : 0;
  return n;
}

TEST(SchemaGraphTest, EdgeTaxonomy) {
  SchemaGraph g = SchemaGraph::Build(SmallCatalog());
  // Same-table: title C(2,2)=1 pair *2 dirs + mc C(3,2)=3 pairs *2 = 8.
  EXPECT_EQ(CountEdges(g, EdgeType::kSameTable), 8);
  // Each table: PK-left/right for its PK, Belongs for the rest.
  EXPECT_EQ(CountEdges(g, EdgeType::kPrimaryKeyLeft), 2);
  EXPECT_EQ(CountEdges(g, EdgeType::kPrimaryKeyRight), 2);
  EXPECT_EQ(CountEdges(g, EdgeType::kBelongsToLeft), 3);
  EXPECT_EQ(CountEdges(g, EdgeType::kBelongsToRight), 3);
  // FK column edges both directions.
  EXPECT_EQ(CountEdges(g, EdgeType::kForeignKeyColumnLeft), 1);
  EXPECT_EQ(CountEdges(g, EdgeType::kForeignKeyColumnRight), 1);
  // Table-level FK (one direction only here).
  EXPECT_EQ(CountEdges(g, EdgeType::kForeignKeyTableLeft), 1);
  EXPECT_EQ(CountEdges(g, EdgeType::kForeignKeyTableRight), 1);
  EXPECT_EQ(CountEdges(g, EdgeType::kForeignKeyTableBoth), 0);
}

TEST(SchemaGraphTest, FkEdgeEndpoints) {
  SchemaGraph g = SchemaGraph::Build(SmallCatalog());
  for (const auto& e : g.edges()) {
    if (e.type == EdgeType::kForeignKeyColumnLeft) {
      EXPECT_EQ(g.nodes()[static_cast<size_t>(e.src)].name,
                "movie_companies.movie_id");
      EXPECT_EQ(g.nodes()[static_cast<size_t>(e.dst)].name, "title.id");
    }
  }
}

TEST(SchemaGraphTest, RelationalEdgesNormalized) {
  SchemaGraph g = SchemaGraph::Build(SmallCatalog());
  std::vector<std::vector<nn::Edge>> rel_edges;
  std::vector<std::vector<float>> rel_norms;
  g.RelationalEdges(&rel_edges, &rel_norms);
  ASSERT_EQ(rel_edges.size(), static_cast<size_t>(kNumEdgeTypes));
  // For each relation, incoming norms per dst sum to 1.
  for (int r = 0; r < kNumEdgeTypes; ++r) {
    std::vector<float> in_sum(static_cast<size_t>(g.num_nodes()), 0.0f);
    for (size_t e = 0; e < rel_edges[static_cast<size_t>(r)].size(); ++e) {
      in_sum[static_cast<size_t>(
          rel_edges[static_cast<size_t>(r)][e].dst)] +=
          rel_norms[static_cast<size_t>(r)][e];
    }
    for (float s : in_sum) {
      if (s > 0) EXPECT_NEAR(s, 1.0f, 1e-5f);
    }
  }
}

TEST(SchemaGraphTest, IncrementalAddTable) {
  sql::Catalog cat = SmallCatalog();
  SchemaGraph g = SchemaGraph::Build(cat);
  const int before_nodes = g.num_nodes();
  sql::TableDef extra;
  extra.name = "extra";
  extra.columns = {{"id", sql::ColumnType::kInt, true},
                   {"movie_id", sql::ColumnType::kInt, false}};
  cat.AddTable(extra);
  ASSERT_TRUE(cat.AddForeignKey({"extra", "movie_id", "title", "id"}).ok());
  g.AddTable(cat, "extra");
  EXPECT_EQ(g.num_nodes(), before_nodes + 3);
  EXPECT_GE(g.TableNode("extra"), 0);
  // New FK edges exist.
  bool found = false;
  for (const auto& e : g.edges()) {
    if (e.type == EdgeType::kForeignKeyColumnLeft &&
        g.nodes()[static_cast<size_t>(e.src)].name == "extra.movie_id") {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(SchemaGraphTest, ImdbGraphIsConsistent) {
  db::Database db = workload::MakeImdbDatabase(7, 0.02);
  SchemaGraph g = SchemaGraph::Build(db.catalog());
  EXPECT_EQ(db.catalog().tables().size(), 22u);
  int columns = 0;
  for (const auto& t : db.catalog().tables()) {
    columns += static_cast<int>(t.columns.size());
  }
  EXPECT_EQ(g.num_nodes(), 22 + columns);
  // Every edge endpoint is a valid node.
  for (const auto& e : g.edges()) {
    EXPECT_GE(e.src, 0);
    EXPECT_LT(e.src, g.num_nodes());
    EXPECT_GE(e.dst, 0);
    EXPECT_LT(e.dst, g.num_nodes());
  }
  // title has both incoming and outgoing table-level FK edges
  // (movie_companies -> title, title -> kind_type).
  const int title_node = g.TableNode("title");
  bool has_in = false, has_out = false;
  for (const auto& e : g.edges()) {
    if (e.type == EdgeType::kForeignKeyTableLeft) {
      if (e.dst == title_node) has_in = true;
      if (e.src == title_node) has_out = true;
    }
  }
  EXPECT_TRUE(has_in);
  EXPECT_TRUE(has_out);
}

}  // namespace
}  // namespace preqr::schema
