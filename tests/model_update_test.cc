// Integration tests for the Section 3.6 model-update cases.
#include <gtest/gtest.h>

#include "automaton/template_extractor.h"
#include "core/pretrain.h"
#include "db/stats.h"
#include "nn/optim.h"
#include "schema/schema_graph.h"
#include "workload/imdb.h"
#include "workload/query_gen.h"

namespace preqr::core {
namespace {

struct Env {
  db::Database imdb = workload::MakeImdbDatabase(3, 0.02);
  std::vector<db::TableStats> stats;
  std::unique_ptr<text::SqlTokenizer> tokenizer;
  automaton::Automaton fa;
  schema::SchemaGraph graph;
  std::vector<std::string> corpus;

  Env() {
    db::StatsCollector collector;
    stats = collector.AnalyzeAll(imdb);
    tokenizer = std::make_unique<text::SqlTokenizer>(imdb.catalog(), stats, 8);
    workload::ImdbQueryGenerator gen(imdb, 1);
    for (const auto& q : gen.Synthetic(30, 2)) corpus.push_back(q.sql);
    automaton::TemplateExtractor extractor(0.2);
    fa = extractor.BuildAutomaton(corpus);
    graph = schema::SchemaGraph::Build(imdb.catalog());
  }
};

PreqrConfig SmallConfig() {
  PreqrConfig config;
  config.d_model = 32;
  config.ffn_hidden = 64;
  return config;
}

// Case 1: incremental last-layer training reduces MLM loss without
// touching the rest of the model.
TEST(ModelUpdateTest, Case1LastLayerIncrementalTraining) {
  Env env;
  PreqrModel model(SmallConfig(), env.tokenizer.get(), &env.fa, &env.graph,
                   7);
  // Snapshot a frozen parameter (token embedding).
  const std::vector<float> before_embed =
      model.InputParameters()[0].vec();

  nn::Adam adam(model.LastLayerParameters(), 1e-3f);
  nn::Tensor schema = model.EncodeSchemaNodes(false);
  auto loss_of = [&](const std::string& sql) {
    auto tokenized = env.tokenizer->Tokenize(sql);
    nn::Tensor prefix = model.EncodePrefix(tokenized.value(), schema);
    auto enc = model.LastLayer(prefix, schema);
    nn::Tensor logits = model.MlmLogits(enc.tokens);
    std::vector<int> targets(tokenized.value().ids.begin(),
                             tokenized.value().ids.begin() + logits.dim(0));
    return nn::CrossEntropy(logits, targets, -1);
  };
  const double initial = loss_of(env.corpus[0]).item();
  for (int step = 0; step < 30; ++step) {
    adam.ZeroGrad();
    nn::Tensor loss = loss_of(env.corpus[0]);
    loss.Backward();
    adam.Step();
  }
  EXPECT_LT(loss_of(env.corpus[0]).item(), initial);
  // Frozen parts untouched.
  EXPECT_EQ(model.InputParameters()[0].vec(), before_embed);
}

// Case 2: extending the schema graph with a new table keeps the graph
// consistent and a model over the extended schema trains end-to-end.
TEST(ModelUpdateTest, Case2SchemaExtension) {
  Env env;
  sql::Catalog catalog = env.imdb.catalog();
  sql::TableDef extra;
  extra.name = "awards";
  extra.columns = {{"id", sql::ColumnType::kInt, true},
                   {"movie_id", sql::ColumnType::kInt, false},
                   {"category", sql::ColumnType::kString, false}};
  catalog.AddTable(extra);
  ASSERT_TRUE(catalog.AddForeignKey({"awards", "movie_id", "title", "id"})
                  .ok());
  schema::SchemaGraph graph = env.graph;
  const int nodes_before = graph.num_nodes();
  graph.AddTable(catalog, "awards");
  EXPECT_EQ(graph.num_nodes(), nodes_before + 4);

  text::SqlTokenizer tokenizer(catalog, env.stats, 8);
  PreqrModel model(SmallConfig(), &tokenizer, &env.fa, &graph, 7);
  nn::Tensor schema = model.EncodeSchemaNodes(true);
  EXPECT_EQ(schema.dim(0), graph.num_nodes());
  // One MLM step through the schema branch works on the extended graph.
  Pretrainer::Options opt;
  opt.epochs = 1;
  Pretrainer trainer(model, opt);
  auto history = trainer.Train(
      {env.corpus[0], env.corpus[1], env.corpus[2], env.corpus[3]});
  EXPECT_EQ(history.size(), 1u);
}

// Case 3: when query patterns change, rebuilding the FA and retraining
// only the Input Embedding parameters adapts the model to new templates.
TEST(ModelUpdateTest, Case3NewQueryPatterns) {
  Env env;
  PreqrModel model(SmallConfig(), env.tokenizer.get(), &env.fa, &env.graph,
                   7);
  nn::Adam adam(model.InputParameters(), 1e-3f);
  nn::Tensor schema = model.EncodeSchemaNodes(false);
  const std::string new_pattern =
      "SELECT COUNT(*) FROM title t, movie_keyword mk WHERE "
      "t.id = mk.movie_id AND mk.keyword_id IN (1,2,3)";
  auto loss_of = [&] {
    auto tokenized = env.tokenizer->Tokenize(new_pattern);
    auto enc = model.Forward(tokenized.value(), schema);
    nn::Tensor logits = model.MlmLogits(enc.tokens);
    std::vector<int> targets(tokenized.value().ids.begin(),
                             tokenized.value().ids.begin() + logits.dim(0));
    return nn::CrossEntropy(logits, targets, -1);
  };
  model.set_train(false);
  const double initial = loss_of().item();
  for (int step = 0; step < 25; ++step) {
    adam.ZeroGrad();
    nn::Tensor loss = loss_of();
    loss.Backward();
    adam.Step();
  }
  EXPECT_LT(loss_of().item(), initial);
}

}  // namespace
}  // namespace preqr::core
