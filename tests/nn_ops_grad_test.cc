// Numerical gradient checks for every differentiable op.
#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "nn/ops.h"
#include "nn/tensor.h"

namespace preqr::nn {
namespace {

// Checks d(scalar fn)/d(input) against central finite differences.
void CheckGrad(Tensor& input, const std::function<Tensor()>& fn,
               float eps = 1e-3f, float tol = 2e-2f) {
  Tensor loss = fn();
  ASSERT_EQ(loss.size(), 1);
  input.ZeroGrad();
  loss.Backward();
  const std::vector<float> analytic = input.grad_vec();
  ASSERT_EQ(analytic.size(), static_cast<size_t>(input.size()));
  for (Index i = 0; i < input.size(); ++i) {
    const float orig = input.at(i);
    input.at(i) = orig + eps;
    const float up = fn().item();
    input.at(i) = orig - eps;
    const float down = fn().item();
    input.at(i) = orig;
    const float numeric = (up - down) / (2.0f * eps);
    EXPECT_NEAR(analytic[static_cast<size_t>(i)], numeric,
                tol * std::max(1.0f, std::abs(numeric)))
        << "at flat index " << i;
  }
}

Tensor MakeInput(Shape shape, uint64_t seed = 3) {
  Rng rng(seed);
  Tensor t = Tensor::Randn(std::move(shape), rng, 0.7f, true);
  return t;
}

TEST(OpsGradTest, Add) {
  Tensor a = MakeInput({2, 3});
  Tensor b = MakeInput({2, 3}, 4);
  CheckGrad(a, [&] { return Sum(Add(a, b)); });
  CheckGrad(b, [&] { return Sum(Add(a, b)); });
}

TEST(OpsGradTest, Sub) {
  Tensor a = MakeInput({2, 3});
  Tensor b = MakeInput({2, 3}, 4);
  CheckGrad(b, [&] { return Sum(Mul(Sub(a, b), Sub(a, b))); });
}

TEST(OpsGradTest, Mul) {
  Tensor a = MakeInput({6});
  Tensor b = MakeInput({6}, 5);
  CheckGrad(a, [&] { return Sum(Mul(a, b)); });
  CheckGrad(b, [&] { return Sum(Mul(a, b)); });
}

TEST(OpsGradTest, ScaleAndAddScalar) {
  Tensor a = MakeInput({4});
  CheckGrad(a, [&] { return Sum(Scale(AddScalar(a, 1.5f), -2.0f)); });
}

TEST(OpsGradTest, AddBias) {
  Tensor x = MakeInput({3, 4});
  Tensor b = MakeInput({4}, 6);
  CheckGrad(x, [&] { return Sum(Mul(AddBias(x, b), AddBias(x, b))); });
  CheckGrad(b, [&] { return Sum(Mul(AddBias(x, b), AddBias(x, b))); });
}

TEST(OpsGradTest, Relu) {
  Tensor x = MakeInput({8});
  CheckGrad(x, [&] { return Sum(Relu(x)); });
}

TEST(OpsGradTest, Gelu) {
  Tensor x = MakeInput({8});
  CheckGrad(x, [&] { return Sum(Gelu(x)); });
}

// Regression: once tanh(u) saturates to exactly ±1 (|x| ≳ 10), the sech²
// factor is exactly 0 while the cubic term overflows to inf; the old
// backward evaluated 0·inf and poisoned the gradient with NaN. Finite
// differences are useless at these magnitudes, so assert the analytic
// limits directly: dGelu/dx → 1 for large +x, → 0 for large −x, finite
// everywhere.
TEST(OpsGradTest, GeluExtremeInputsKeepFiniteGrad) {
  const std::vector<float> xs = {20.0f,  -20.0f, 1e4f,  -1e4f,
                                 1e19f,  -1e19f, 3e38f, -3e38f};
  Tensor x = Tensor::Zeros({static_cast<Index>(xs.size())}, true);
  for (size_t i = 0; i < xs.size(); ++i) x.at(static_cast<Index>(i)) = xs[i];
  Tensor loss = Sum(Gelu(x));
  x.ZeroGrad();
  loss.Backward();
  const std::vector<float>& g = x.grad_vec();
  ASSERT_EQ(g.size(), xs.size());
  for (size_t i = 0; i < xs.size(); ++i) {
    ASSERT_TRUE(std::isfinite(g[i])) << "NaN/inf grad at x=" << xs[i];
    if (xs[i] > 0.0f) {
      EXPECT_NEAR(g[i], 1.0f, 1e-4f) << "at x=" << xs[i];
    } else {
      EXPECT_NEAR(g[i], 0.0f, 1e-4f) << "at x=" << xs[i];
    }
  }
}

TEST(OpsGradTest, TanhOp) {
  Tensor x = MakeInput({8});
  CheckGrad(x, [&] { return Sum(Tanh(x)); });
}

TEST(OpsGradTest, SigmoidOp) {
  Tensor x = MakeInput({8});
  CheckGrad(x, [&] { return Sum(Sigmoid(x)); });
}

TEST(OpsGradTest, MatMulBothSides) {
  Tensor a = MakeInput({3, 4});
  Tensor b = MakeInput({4, 2}, 7);
  CheckGrad(a, [&] { return Sum(Mul(MatMul(a, b), MatMul(a, b))); });
  CheckGrad(b, [&] { return Sum(Mul(MatMul(a, b), MatMul(a, b))); });
}

TEST(OpsGradTest, TransposeOp) {
  Tensor a = MakeInput({3, 2});
  CheckGrad(a, [&] { return Sum(Mul(Transpose(a), Transpose(a))); });
}

TEST(OpsGradTest, Softmax) {
  Tensor x = MakeInput({2, 5});
  Tensor w = MakeInput({2, 5}, 9);  // weights make the loss non-trivial
  CheckGrad(x, [&] { return Sum(Mul(SoftmaxLastDim(x), w)); });
}

TEST(OpsGradTest, LayerNormAllInputs) {
  Tensor x = MakeInput({3, 6});
  Tensor gamma = Tensor::Full({6}, 1.2f, true);
  Tensor beta = Tensor::Full({6}, -0.1f, true);
  Tensor w = MakeInput({3, 6}, 9);
  auto fn = [&] { return Sum(Mul(LayerNormOp(x, gamma, beta), w)); };
  CheckGrad(x, fn);
  CheckGrad(gamma, fn);
  CheckGrad(beta, fn);
}

TEST(OpsGradTest, MeanRowsOp) {
  Tensor x = MakeInput({4, 3});
  Tensor w = MakeInput({3}, 10);
  CheckGrad(x, [&] { return Sum(Mul(MeanRows(x), w)); });
}

TEST(OpsGradTest, ReshapeOp) {
  Tensor x = MakeInput({2, 6});
  CheckGrad(x, [&] {
    Tensor r = Reshape(x, {3, 4});
    return Sum(Mul(r, r));
  });
}

TEST(OpsGradTest, ConcatLastDimOp) {
  Tensor a = MakeInput({2, 3});
  Tensor b = MakeInput({2, 2}, 8);
  auto fn = [&] {
    Tensor c = ConcatLastDim({a, b});
    return Sum(Mul(c, c));
  };
  CheckGrad(a, fn);
  CheckGrad(b, fn);
}

TEST(OpsGradTest, ConcatRowsOp) {
  Tensor a = MakeInput({2, 3});
  Tensor b = MakeInput({1, 3}, 8);
  auto fn = [&] {
    Tensor c = ConcatRows({a, b});
    return Sum(Mul(c, c));
  };
  CheckGrad(a, fn);
  CheckGrad(b, fn);
}

TEST(OpsGradTest, SliceLastDimOp) {
  Tensor x = MakeInput({3, 5});
  CheckGrad(x, [&] {
    Tensor s = SliceLastDim(x, 1, 3);
    return Sum(Mul(s, s));
  });
}

TEST(OpsGradTest, SliceRowsOp) {
  Tensor x = MakeInput({5, 3});
  CheckGrad(x, [&] {
    Tensor s = SliceRows(x, 2, 2);
    return Sum(Mul(s, s));
  });
}

TEST(OpsGradTest, GatherOp) {
  Tensor w = MakeInput({4, 3});
  const std::vector<int> ids = {1, 3, 1};  // repeated id accumulates
  CheckGrad(w, [&] {
    Tensor g = Gather(w, ids);
    return Sum(Mul(g, g));
  });
}

TEST(OpsGradTest, SparseAggregateOp) {
  Tensor h = MakeInput({4, 3});
  const std::vector<Edge> edges = {{0, 1}, {2, 1}, {3, 0}};
  const std::vector<float> norm = {0.5f, 0.5f, 1.0f};
  CheckGrad(h, [&] {
    Tensor a = SparseAggregate(h, edges, norm);
    return Sum(Mul(a, a));
  });
}

TEST(OpsGradTest, CrossEntropyOp) {
  Tensor logits = MakeInput({4, 5});
  const std::vector<int> targets = {0, 3, -1, 2};  // one ignored
  CheckGrad(logits, [&] { return CrossEntropy(logits, targets, -1); });
}

TEST(OpsGradTest, CrossEntropyAllIgnoredIsZero) {
  Tensor logits = MakeInput({2, 3});
  Tensor loss = CrossEntropy(logits, {-1, -1}, -1);
  EXPECT_FLOAT_EQ(loss.item(), 0.0f);
  loss.Backward();  // must not crash
}

TEST(OpsGradTest, MseLossOp) {
  Tensor pred = MakeInput({5});
  const std::vector<float> target = {0.1f, -0.3f, 0.7f, 0.0f, 1.0f};
  CheckGrad(pred, [&] { return MseLoss(pred, target); });
}

TEST(OpsGradTest, DropoutScalesAndMasks) {
  Tensor x = Tensor::Full({1000}, 1.0f, true);
  Rng rng(21);
  Tensor y = Dropout(x, 0.5f, rng, /*train=*/true);
  float mean = 0.0f;
  int zeros = 0;
  for (Index i = 0; i < y.size(); ++i) {
    mean += y.at(i);
    if (y.at(i) == 0.0f) ++zeros;
  }
  mean /= static_cast<float>(y.size());
  EXPECT_NEAR(mean, 1.0f, 0.15f);  // inverted-dropout keeps expectation
  EXPECT_GT(zeros, 350);
  EXPECT_LT(zeros, 650);
  // Eval mode: identity.
  Tensor z = Dropout(x, 0.5f, rng, /*train=*/false);
  EXPECT_EQ(z.impl().get(), x.impl().get());
}

// --- Parallel-kernel gradient checks ------------------------------------
// Shapes sized so ParallelFor splits the work into several chunks (work per
// row above the pool grain) with row/column counts that do not divide the
// thread count, exercising ragged chunk boundaries. The pool is forced to
// 8 threads so chunks really run concurrently even on small machines.

struct ParallelPoolGuard {
  ParallelPoolGuard() { ThreadPool::SetGlobalThreads(8); }
  ~ParallelPoolGuard() { ThreadPool::SetGlobalThreads(0); }
};

TEST(ParallelOpsGradTest, MatMulGrainBoundaries) {
  ParallelPoolGuard guard;
  // Forward/dA chunk over m=23 rows, dB over k=24 rows; neither divides 8.
  // Losses over thousands of elements reach magnitudes where float32
  // rounding dominates small finite-difference steps, so these big-shape
  // checks use a larger eps (the losses are polynomial per element, so the
  // central difference stays exact up to rounding).
  Tensor a = MakeInput({23, 24});
  Tensor b = MakeInput({24, 12}, 17);
  CheckGrad(a, [&] { return Sum(Mul(MatMul(a, b), MatMul(a, b))); },
            /*eps=*/2e-2f, /*tol=*/5e-2f);
  CheckGrad(b, [&] { return Sum(Mul(MatMul(a, b), MatMul(a, b))); },
            /*eps=*/2e-2f, /*tol=*/5e-2f);
}

TEST(ParallelOpsGradTest, SoftmaxGrainBoundaries) {
  ParallelPoolGuard guard;
  // 67 rows of width 64: grain 4096/64 = 64 rows -> 2 ragged chunks.
  Tensor x = MakeInput({67, 64});
  Tensor w = MakeInput({67, 64}, 18);
  CheckGrad(x, [&] { return Sum(Mul(SoftmaxLastDim(x), w)); },
            /*eps=*/1e-2f, /*tol=*/5e-2f);
}

TEST(ParallelOpsGradTest, LayerNormGrainBoundaries) {
  ParallelPoolGuard guard;
  // dx chunks over 67 rows; dgamma/dbeta chunk over 64 columns.
  Tensor x = MakeInput({67, 64});
  Tensor gamma = Tensor::Full({64}, 1.1f, true);
  Tensor beta = Tensor::Full({64}, -0.2f, true);
  Tensor w = MakeInput({67, 64}, 19);
  auto fn = [&] { return Sum(Mul(LayerNormOp(x, gamma, beta), w)); };
  CheckGrad(gamma, fn, /*eps=*/2e-2f, /*tol=*/5e-2f);
  CheckGrad(beta, fn, /*eps=*/2e-2f, /*tol=*/5e-2f);
}

TEST(ParallelOpsGradTest, LayerNormDxGrainBoundaries) {
  ParallelPoolGuard guard;
  // Smaller input for the O(elements^2) finite-difference sweep over x.
  Tensor x = MakeInput({33, 64});
  Tensor gamma = Tensor::Full({64}, 0.9f, true);
  Tensor beta = Tensor::Full({64}, 0.1f, true);
  Tensor w = MakeInput({33, 64}, 20);
  CheckGrad(x, [&] { return Sum(Mul(LayerNormOp(x, gamma, beta), w)); });
}

TEST(ParallelOpsGradTest, EmbeddingScatterGrainBoundaries) {
  ParallelPoolGuard guard;
  // 130 distinct destination rows (> grain 4096/32 = 128 groups) with
  // repeats, so the grouped scatter splits across threads and must still
  // accumulate each destination in position order. Repeated ids make the
  // accumulation order observable.
  Tensor weight = MakeInput({130, 32});
  std::vector<int> ids;
  for (int rep = 0; rep < 3; ++rep) {
    for (int i = 0; i < 130; ++i) ids.push_back((i * 7 + rep) % 130);
  }
  CheckGrad(weight, [&] {
    Tensor g = Gather(weight, ids);
    return Sum(Mul(g, g));
  }, /*eps=*/5e-2f, /*tol=*/5e-2f);
}

TEST(ParallelOpsGradTest, CrossEntropyGrainBoundaries) {
  ParallelPoolGuard guard;
  // 125 rows, 33 classes: rows chunk at grain 4096/33 = 124 -> ragged tail.
  Tensor logits = MakeInput({125, 33});
  std::vector<int> targets;
  for (int i = 0; i < 125; ++i) {
    targets.push_back(i % 7 == 0 ? -1 : i % 33);  // some ignored rows
  }
  CheckGrad(logits, [&] { return CrossEntropy(logits, targets, -1); });
}

TEST(ParallelOpsGradTest, ParallelMatchesSerialBitwise) {
  // The same computation at 1 and 8 threads must agree bit-for-bit.
  auto run = [] {
    Tensor a = MakeInput({37, 29});
    Tensor b = MakeInput({29, 23}, 21);
    Tensor gamma = Tensor::Full({23}, 1.05f, true);
    Tensor beta = Tensor::Full({23}, 0.05f, true);
    Tensor y = LayerNormOp(SoftmaxLastDim(MatMul(a, b)), gamma, beta);
    Tensor loss = Sum(Mul(y, y));
    loss.Backward();
    std::vector<float> bits = y.vec();
    const auto& ga = a.impl()->grad;
    const auto& gb = b.impl()->grad;
    bits.insert(bits.end(), ga.begin(), ga.end());
    bits.insert(bits.end(), gb.begin(), gb.end());
    bits.push_back(loss.item());
    return bits;
  };
  ThreadPool::SetGlobalThreads(1);
  const std::vector<float> serial = run();
  ThreadPool::SetGlobalThreads(8);
  const std::vector<float> parallel = run();
  ThreadPool::SetGlobalThreads(0);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "bit divergence at " << i;
  }
}

// --- Batched / masked kernel gradient checks -----------------------------
// Every padded-batch op gets a finite-difference sweep over ragged lengths,
// including a zero-length (all-padded) example. Pad inputs must come out
// with analytic gradient exactly zero — the FD sweep confirms it, since
// nudging a pad entry cannot move the loss. Run on the 8-thread pool so the
// per-example partitioning really interleaves across workers.

TEST(BatchedOpsGradTest, BatchedMatMulNTBothSides) {
  ParallelPoolGuard guard;
  const std::vector<int> lengths = {4, 2, 0};  // full, ragged, all-padded
  Tensor a = MakeInput({3, 4, 3});
  Tensor b = MakeInput({3, 4, 3}, 31);
  Tensor w = MakeInput({3, 4, 4}, 32);
  auto fn = [&] { return Sum(Mul(BatchedMatMulNT(a, b, lengths), w)); };
  CheckGrad(a, fn);
  CheckGrad(b, fn);
}

TEST(BatchedOpsGradTest, BatchedMatMulNNBothSides) {
  ParallelPoolGuard guard;
  const std::vector<int> lengths = {4, 3, 0};
  Tensor w = MakeInput({3, 4, 4});
  Tensor v = MakeInput({3, 4, 5}, 33);
  Tensor u = MakeInput({3, 4, 5}, 34);
  auto fn = [&] { return Sum(Mul(BatchedMatMulNN(w, v, lengths), u)); };
  CheckGrad(w, fn);
  CheckGrad(v, fn);
}

TEST(BatchedOpsGradTest, MaskedSoftmax) {
  ParallelPoolGuard guard;
  const std::vector<int> lengths = {4, 2, 0};
  Tensor x = MakeInput({3, 4, 4});
  Tensor w = MakeInput({3, 4, 4}, 35);
  CheckGrad(x, [&] { return Sum(Mul(MaskedSoftmaxLastDim(x, lengths), w)); });
}

TEST(BatchedOpsGradTest, MaskedLayerNormAllInputs) {
  ParallelPoolGuard guard;
  const std::vector<int> lengths = {4, 3, 0};
  Tensor x = MakeInput({3, 4, 6});
  Tensor gamma = Tensor::Full({6}, 1.2f, true);
  Tensor beta = Tensor::Full({6}, -0.1f, true);
  Tensor w = MakeInput({3, 4, 6}, 36);
  auto fn = [&] {
    return Sum(Mul(MaskedLayerNorm(x, gamma, beta, lengths), w));
  };
  CheckGrad(x, fn);
  CheckGrad(gamma, fn);
  CheckGrad(beta, fn);
}

TEST(BatchedOpsGradTest, MaskedCrossEntropyOp) {
  ParallelPoolGuard guard;
  const std::vector<int> lengths = {4, 2, 0};
  Tensor logits = MakeInput({3, 4, 5});
  // Example 0: two masked rows + one ignored; example 1: one masked row in
  // its valid region (pad targets beyond len are deliberately set to check
  // they are skipped); example 2 is all padding.
  const std::vector<int> targets = {0, -1, 3, 2,   1, -1, 4, 0,   2, 2, 2, 2};
  CheckGrad(logits,
            [&] { return MaskedCrossEntropy(logits, targets, lengths, -1); });
}

TEST(BatchedOpsGradTest, MaskedCrossEntropyMatchesPerExampleChain) {
  // The scalar must equal the retired per-example CrossEntropy + Add/Scale
  // chain bit for bit (the trainer's loss history depends on it).
  const std::vector<int> lengths = {3, 2};
  Tensor logits = MakeInput({2, 3, 4});
  const std::vector<int> targets = {1, -1, 2,   3, 0, -1};
  Tensor batched = MaskedCrossEntropy(logits, targets, lengths, -1);
  Tensor chain;
  for (int b = 0; b < 2; ++b) {
    Tensor one = SliceExample(logits, b, lengths[static_cast<size_t>(b)]);
    std::vector<int> tgt(targets.begin() + b * 3,
                         targets.begin() + b * 3 + lengths[
                             static_cast<size_t>(b)]);
    Tensor l = CrossEntropy(one, tgt, -1);
    chain = chain.defined() ? Add(chain, l) : l;
  }
  chain = Scale(chain, 0.5f);
  EXPECT_EQ(batched.item(), chain.item());
}

TEST(BatchedOpsGradTest, MaskedCrossEntropyExampleLossAndAllPadded) {
  const std::vector<int> lengths = {3, 0};
  Tensor logits = MakeInput({2, 3, 4});
  const std::vector<int> targets = {1, 2, -1,  0, 0, 0};
  std::vector<float> example_loss;
  Tensor loss =
      MaskedCrossEntropy(logits, targets, lengths, -1, &example_loss);
  ASSERT_EQ(example_loss.size(), 2u);
  EXPECT_EQ(example_loss[1], 0.0f);  // all-padded example contributes zero
  EXPECT_FLOAT_EQ(loss.item(), example_loss[0] * 0.5f);
  loss.Backward();  // must not crash on the empty example
}

TEST(BatchedOpsGradTest, MaskedDropoutGrad) {
  ParallelPoolGuard guard;
  const std::vector<int> lengths = {4, 2, 0};
  const std::vector<uint64_t> seeds = {7, 8, 9};
  Tensor x = MakeInput({3, 4, 5});
  // Fixed seeds make the mask a constant of the sweep: the op is piecewise
  // linear in x, so finite differences are exact up to rounding.
  CheckGrad(x, [&] {
    Tensor y = MaskedDropout(x, 0.4f, seeds, lengths, /*train=*/true);
    return Sum(Mul(y, y));
  });
  // Eval mode: identity, same impl.
  Tensor z = MaskedDropout(x, 0.4f, seeds, lengths, /*train=*/false);
  EXPECT_EQ(z.impl().get(), x.impl().get());
}

TEST(BatchedOpsGradTest, MaskedDropoutMatchesSingleStream) {
  // Example b's masked rows must use exactly the draw sequence the
  // single-example Dropout consumes from Rng(seeds[b]).
  const std::vector<int> lengths = {3, 2};
  const std::vector<uint64_t> seeds = {41, 42};
  Tensor x = MakeInput({2, 3, 4});
  Tensor y = MaskedDropout(x, 0.5f, seeds, lengths, /*train=*/true);
  for (int b = 0; b < 2; ++b) {
    Tensor xb = SliceExample(x, b, lengths[static_cast<size_t>(b)]);
    Rng rng(seeds[static_cast<size_t>(b)]);
    Tensor yb = Dropout(xb, 0.5f, rng, /*train=*/true);
    Tensor got = SliceExample(y, b, lengths[static_cast<size_t>(b)]);
    for (Index i = 0; i < yb.size(); ++i) EXPECT_EQ(yb.at(i), got.at(i));
  }
}

TEST(BatchedOpsGradTest, SliceExampleOp) {
  Tensor x = MakeInput({2, 4, 3});
  CheckGrad(x, [&] {
    Tensor s = SliceExample(x, 1, 2);
    return Sum(Mul(s, s));
  });
}

TEST(BatchedOpsGradTest, PadExamplesOp) {
  Tensor a = MakeInput({2, 3});
  Tensor b = MakeInput({4, 3}, 37);
  Tensor w = MakeInput({2, 4, 3}, 38);
  auto fn = [&] { return Sum(Mul(PadExamples({a, b}), w)); };
  CheckGrad(a, fn);
  CheckGrad(b, fn);
}

TEST(BatchedOpsGradTest, MaskedOpsMatchSingleExampleBitwise) {
  // Kernel-level padding invariance: each valid row of the masked ops must
  // be bitwise the single-example op on that example's slice.
  ParallelPoolGuard guard;
  const std::vector<int> lengths = {4, 2};
  Tensor x = MakeInput({2, 4, 6});
  Tensor gamma = Tensor::Full({6}, 1.1f, false);
  Tensor beta = Tensor::Full({6}, 0.2f, false);
  Tensor ln = MaskedLayerNorm(x, gamma, beta, lengths);
  for (int b = 0; b < 2; ++b) {
    const int len = lengths[static_cast<size_t>(b)];
    Tensor xb = SliceExample(x, b, len);
    Tensor single = LayerNormOp(xb, gamma, beta);
    Tensor got = SliceExample(ln, b, len);
    for (Index i = 0; i < single.size(); ++i) {
      EXPECT_EQ(single.at(i), got.at(i)) << "layernorm row bits, b=" << b;
    }
  }
  Tensor scores = MakeInput({2, 4, 4}, 39);
  Tensor sm = MaskedSoftmaxLastDim(scores, lengths);
  for (int b = 0; b < 2; ++b) {
    const int len = lengths[static_cast<size_t>(b)];
    // Single path: softmax over the [len, len] valid block.
    Tensor block = SliceLastDim(SliceExample(scores, b, len), 0, len);
    Tensor single = SoftmaxLastDim(block);
    Tensor got = SliceLastDim(SliceExample(sm, b, len), 0, len);
    for (Index i = 0; i < single.size(); ++i) {
      EXPECT_EQ(single.at(i), got.at(i)) << "softmax row bits, b=" << b;
    }
  }
}

TEST(OpsGradTest, SoftmaxRowsSumToOne) {
  Tensor x = MakeInput({3, 7});
  Tensor y = SoftmaxLastDim(x);
  for (int r = 0; r < 3; ++r) {
    float s = 0.0f;
    for (int c = 0; c < 7; ++c) s += y.at(r * 7 + c);
    EXPECT_NEAR(s, 1.0f, 1e-5f);
  }
}

}  // namespace
}  // namespace preqr::nn
