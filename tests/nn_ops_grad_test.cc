// Numerical gradient checks for every differentiable op.
#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "nn/ops.h"
#include "nn/tensor.h"

namespace preqr::nn {
namespace {

// Checks d(scalar fn)/d(input) against central finite differences.
void CheckGrad(Tensor& input, const std::function<Tensor()>& fn,
               float eps = 1e-3f, float tol = 2e-2f) {
  Tensor loss = fn();
  ASSERT_EQ(loss.size(), 1);
  input.ZeroGrad();
  loss.Backward();
  const std::vector<float> analytic = input.grad_vec();
  ASSERT_EQ(analytic.size(), static_cast<size_t>(input.size()));
  for (Index i = 0; i < input.size(); ++i) {
    const float orig = input.at(i);
    input.at(i) = orig + eps;
    const float up = fn().item();
    input.at(i) = orig - eps;
    const float down = fn().item();
    input.at(i) = orig;
    const float numeric = (up - down) / (2.0f * eps);
    EXPECT_NEAR(analytic[static_cast<size_t>(i)], numeric,
                tol * std::max(1.0f, std::abs(numeric)))
        << "at flat index " << i;
  }
}

Tensor MakeInput(Shape shape, uint64_t seed = 3) {
  Rng rng(seed);
  Tensor t = Tensor::Randn(std::move(shape), rng, 0.7f, true);
  return t;
}

TEST(OpsGradTest, Add) {
  Tensor a = MakeInput({2, 3});
  Tensor b = MakeInput({2, 3}, 4);
  CheckGrad(a, [&] { return Sum(Add(a, b)); });
  CheckGrad(b, [&] { return Sum(Add(a, b)); });
}

TEST(OpsGradTest, Sub) {
  Tensor a = MakeInput({2, 3});
  Tensor b = MakeInput({2, 3}, 4);
  CheckGrad(b, [&] { return Sum(Mul(Sub(a, b), Sub(a, b))); });
}

TEST(OpsGradTest, Mul) {
  Tensor a = MakeInput({6});
  Tensor b = MakeInput({6}, 5);
  CheckGrad(a, [&] { return Sum(Mul(a, b)); });
  CheckGrad(b, [&] { return Sum(Mul(a, b)); });
}

TEST(OpsGradTest, ScaleAndAddScalar) {
  Tensor a = MakeInput({4});
  CheckGrad(a, [&] { return Sum(Scale(AddScalar(a, 1.5f), -2.0f)); });
}

TEST(OpsGradTest, AddBias) {
  Tensor x = MakeInput({3, 4});
  Tensor b = MakeInput({4}, 6);
  CheckGrad(x, [&] { return Sum(Mul(AddBias(x, b), AddBias(x, b))); });
  CheckGrad(b, [&] { return Sum(Mul(AddBias(x, b), AddBias(x, b))); });
}

TEST(OpsGradTest, Relu) {
  Tensor x = MakeInput({8});
  CheckGrad(x, [&] { return Sum(Relu(x)); });
}

TEST(OpsGradTest, Gelu) {
  Tensor x = MakeInput({8});
  CheckGrad(x, [&] { return Sum(Gelu(x)); });
}

TEST(OpsGradTest, TanhOp) {
  Tensor x = MakeInput({8});
  CheckGrad(x, [&] { return Sum(Tanh(x)); });
}

TEST(OpsGradTest, SigmoidOp) {
  Tensor x = MakeInput({8});
  CheckGrad(x, [&] { return Sum(Sigmoid(x)); });
}

TEST(OpsGradTest, MatMulBothSides) {
  Tensor a = MakeInput({3, 4});
  Tensor b = MakeInput({4, 2}, 7);
  CheckGrad(a, [&] { return Sum(Mul(MatMul(a, b), MatMul(a, b))); });
  CheckGrad(b, [&] { return Sum(Mul(MatMul(a, b), MatMul(a, b))); });
}

TEST(OpsGradTest, TransposeOp) {
  Tensor a = MakeInput({3, 2});
  CheckGrad(a, [&] { return Sum(Mul(Transpose(a), Transpose(a))); });
}

TEST(OpsGradTest, Softmax) {
  Tensor x = MakeInput({2, 5});
  Tensor w = MakeInput({2, 5}, 9);  // weights make the loss non-trivial
  CheckGrad(x, [&] { return Sum(Mul(SoftmaxLastDim(x), w)); });
}

TEST(OpsGradTest, LayerNormAllInputs) {
  Tensor x = MakeInput({3, 6});
  Tensor gamma = Tensor::Full({6}, 1.2f, true);
  Tensor beta = Tensor::Full({6}, -0.1f, true);
  Tensor w = MakeInput({3, 6}, 9);
  auto fn = [&] { return Sum(Mul(LayerNormOp(x, gamma, beta), w)); };
  CheckGrad(x, fn);
  CheckGrad(gamma, fn);
  CheckGrad(beta, fn);
}

TEST(OpsGradTest, MeanRowsOp) {
  Tensor x = MakeInput({4, 3});
  Tensor w = MakeInput({3}, 10);
  CheckGrad(x, [&] { return Sum(Mul(MeanRows(x), w)); });
}

TEST(OpsGradTest, ReshapeOp) {
  Tensor x = MakeInput({2, 6});
  CheckGrad(x, [&] {
    Tensor r = Reshape(x, {3, 4});
    return Sum(Mul(r, r));
  });
}

TEST(OpsGradTest, ConcatLastDimOp) {
  Tensor a = MakeInput({2, 3});
  Tensor b = MakeInput({2, 2}, 8);
  auto fn = [&] {
    Tensor c = ConcatLastDim({a, b});
    return Sum(Mul(c, c));
  };
  CheckGrad(a, fn);
  CheckGrad(b, fn);
}

TEST(OpsGradTest, ConcatRowsOp) {
  Tensor a = MakeInput({2, 3});
  Tensor b = MakeInput({1, 3}, 8);
  auto fn = [&] {
    Tensor c = ConcatRows({a, b});
    return Sum(Mul(c, c));
  };
  CheckGrad(a, fn);
  CheckGrad(b, fn);
}

TEST(OpsGradTest, SliceLastDimOp) {
  Tensor x = MakeInput({3, 5});
  CheckGrad(x, [&] {
    Tensor s = SliceLastDim(x, 1, 3);
    return Sum(Mul(s, s));
  });
}

TEST(OpsGradTest, SliceRowsOp) {
  Tensor x = MakeInput({5, 3});
  CheckGrad(x, [&] {
    Tensor s = SliceRows(x, 2, 2);
    return Sum(Mul(s, s));
  });
}

TEST(OpsGradTest, GatherOp) {
  Tensor w = MakeInput({4, 3});
  const std::vector<int> ids = {1, 3, 1};  // repeated id accumulates
  CheckGrad(w, [&] {
    Tensor g = Gather(w, ids);
    return Sum(Mul(g, g));
  });
}

TEST(OpsGradTest, SparseAggregateOp) {
  Tensor h = MakeInput({4, 3});
  const std::vector<Edge> edges = {{0, 1}, {2, 1}, {3, 0}};
  const std::vector<float> norm = {0.5f, 0.5f, 1.0f};
  CheckGrad(h, [&] {
    Tensor a = SparseAggregate(h, edges, norm);
    return Sum(Mul(a, a));
  });
}

TEST(OpsGradTest, CrossEntropyOp) {
  Tensor logits = MakeInput({4, 5});
  const std::vector<int> targets = {0, 3, -1, 2};  // one ignored
  CheckGrad(logits, [&] { return CrossEntropy(logits, targets, -1); });
}

TEST(OpsGradTest, CrossEntropyAllIgnoredIsZero) {
  Tensor logits = MakeInput({2, 3});
  Tensor loss = CrossEntropy(logits, {-1, -1}, -1);
  EXPECT_FLOAT_EQ(loss.item(), 0.0f);
  loss.Backward();  // must not crash
}

TEST(OpsGradTest, MseLossOp) {
  Tensor pred = MakeInput({5});
  const std::vector<float> target = {0.1f, -0.3f, 0.7f, 0.0f, 1.0f};
  CheckGrad(pred, [&] { return MseLoss(pred, target); });
}

TEST(OpsGradTest, DropoutScalesAndMasks) {
  Tensor x = Tensor::Full({1000}, 1.0f, true);
  Rng rng(21);
  Tensor y = Dropout(x, 0.5f, rng, /*train=*/true);
  float mean = 0.0f;
  int zeros = 0;
  for (Index i = 0; i < y.size(); ++i) {
    mean += y.at(i);
    if (y.at(i) == 0.0f) ++zeros;
  }
  mean /= static_cast<float>(y.size());
  EXPECT_NEAR(mean, 1.0f, 0.15f);  // inverted-dropout keeps expectation
  EXPECT_GT(zeros, 350);
  EXPECT_LT(zeros, 650);
  // Eval mode: identity.
  Tensor z = Dropout(x, 0.5f, rng, /*train=*/false);
  EXPECT_EQ(z.impl().get(), x.impl().get());
}

TEST(OpsGradTest, SoftmaxRowsSumToOne) {
  Tensor x = MakeInput({3, 7});
  Tensor y = SoftmaxLastDim(x);
  for (int r = 0; r < 3; ++r) {
    float s = 0.0f;
    for (int c = 0; c < 7; ++c) s += y.at(r * 7 + c);
    EXPECT_NEAR(s, 1.0f, 1e-5f);
  }
}

}  // namespace
}  // namespace preqr::nn
