// EncoderService: cache hits bitwise-identical to direct encodes, Status
// (not a crash) on malformed SQL end-to-end, stale-cache invalidation
// after model updates, micro-batch coalescing under concurrency, and the
// metrics text dump. The concurrency tests are re-run under
// SANITIZE=thread by scripts/check.sh.
#include "serving/encoder_service.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <thread>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "automaton/template_extractor.h"
#include "serving/metrics.h"
#include "core/pretrain.h"
#include "db/stats.h"
#include "schema/schema_graph.h"
#include "tasks/preqr_encoder.h"
#include "workload/imdb.h"
#include "workload/query_gen.h"

namespace preqr::serving {
namespace {

struct Env {
  db::Database imdb = workload::MakeImdbDatabase(7, 0.02);
  std::vector<db::TableStats> stats;
  std::unique_ptr<text::SqlTokenizer> tokenizer;
  automaton::Automaton fa;
  schema::SchemaGraph graph;
  std::vector<std::string> corpus;

  Env() {
    db::StatsCollector collector;
    stats = collector.AnalyzeAll(imdb);
    tokenizer = std::make_unique<text::SqlTokenizer>(imdb.catalog(), stats, 8);
    workload::ImdbQueryGenerator gen(imdb, 3);
    std::unordered_set<std::string> seen;
    for (const auto& q : gen.Synthetic(16, 2)) {
      if (seen.insert(q.sql).second) corpus.push_back(q.sql);
    }
    automaton::TemplateExtractor extractor(0.2);
    fa = extractor.BuildAutomaton(corpus);
    graph = schema::SchemaGraph::Build(imdb.catalog());
  }
  core::PreqrModel MakeModel() {
    core::PreqrConfig config;
    config.d_model = 32;
    config.ffn_hidden = 64;
    return core::PreqrModel(config, tokenizer.get(), &fa, &graph, 17);
  }
};

Env& E() {
  static Env* env = new Env();
  return *env;
}

void ExpectBitwiseEqual(const std::vector<float>& a,
                        const std::vector<float>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  if (a.empty()) return;
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0)
      << what << ": bitwise mismatch";
}

TEST(EncoderServiceTest, EncodeMatchesUnderlyingEncoderBitwise) {
  auto model = E().MakeModel();
  tasks::PreqrEncoder reference(&model);
  tasks::PreqrEncoder wrapped(&model);
  EncoderService service(&wrapped);
  for (const auto& sql : E().corpus) {
    auto served = service.Encode(sql);
    ASSERT_TRUE(served.ok()) << served.status().ToString();
    nn::Tensor direct = reference.EncodeVector(sql, /*train=*/false);
    ExpectBitwiseEqual(direct.vec(), served.value().vec(), "cold serve");
  }
  // Second pass: every request is a cache hit and still identical.
  const uint64_t misses = service.metrics().cache_misses.value();
  for (const auto& sql : E().corpus) {
    auto served = service.Encode(sql);
    ASSERT_TRUE(served.ok());
    nn::Tensor direct = reference.EncodeVector(sql, /*train=*/false);
    ExpectBitwiseEqual(direct.vec(), served.value().vec(), "cache hit");
  }
  EXPECT_EQ(service.metrics().cache_misses.value(), misses);
  EXPECT_EQ(service.metrics().cache_hits.value(), E().corpus.size());
  EXPECT_GT(service.metrics().CacheHitRate(), 0.0);
}

// Regression: garbage SQL must propagate a Status end-to-end (tokenizer →
// PreqrEncoder::ComputeQuery → EncoderService) — no CHECK crash, no zero
// vector masquerading as an embedding.
TEST(EncoderServiceTest, MalformedSqlReturnsStatusEndToEnd) {
  auto model = E().MakeModel();
  tasks::PreqrEncoder encoder(&model);
  EncoderService service(&encoder);
  const std::vector<std::string> garbage = {
      "not a query !!",
      "SELECT FROM WHERE ;;;",
      ")(*&^%$#@",
      "DROP TABLE title",
      "",
  };
  for (const auto& sql : garbage) {
    auto direct = encoder.TryEncodeVector(sql, /*train=*/false);
    EXPECT_FALSE(direct.ok()) << sql;
    auto served = service.Encode(sql);
    ASSERT_FALSE(served.ok()) << sql;
    EXPECT_FALSE(served.status().message().empty());
    // The exact canonical code crosses the serving layer untouched: input
    // rejections stay kParseError/kInvalidArgument, never mistakable for
    // shed load (kResourceExhausted) or an expired deadline.
    EXPECT_EQ(served.status().code(), direct.status().code()) << sql;
    EXPECT_TRUE(served.status().code() == StatusCode::kParseError ||
                served.status().code() == StatusCode::kInvalidArgument)
        << sql << ": " << served.status().ToString();
  }
  EXPECT_EQ(service.metrics().errors.value(), garbage.size());
  // Mixed batch: bad slots fail, good slots still encode.
  std::vector<std::string> mixed = {E().corpus[0], garbage[0], E().corpus[1]};
  auto results = service.EncodeBatch(mixed);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_FALSE(results[1].ok());
  EXPECT_TRUE(results[2].ok());
}

TEST(EncoderServiceTest, EncodeBatchCollapsesDuplicatesAndHitsCache) {
  auto model = E().MakeModel();
  tasks::PreqrEncoder reference(&model);
  tasks::PreqrEncoder wrapped(&model);
  EncoderService service(&wrapped);
  std::vector<std::string> sqls = {E().corpus[0], E().corpus[1],
                                   E().corpus[0], E().corpus[2],
                                   E().corpus[1]};
  auto results = service.EncodeBatch(sqls);
  ASSERT_EQ(results.size(), sqls.size());
  for (size_t i = 0; i < sqls.size(); ++i) {
    ASSERT_TRUE(results[i].ok());
    nn::Tensor direct = reference.EncodeVector(sqls[i], /*train=*/false);
    ExpectBitwiseEqual(direct.vec(), results[i].value().vec(), "batch slot");
  }
  // Only the 3 distinct queries reached the encoder, as one micro-batch.
  EXPECT_EQ(service.metrics().batched_queries.value(), 3u);
  EXPECT_EQ(service.metrics().batches.value(), 1u);
  // The probe precedes the encode, so every first-pass slot was a miss.
  EXPECT_EQ(service.metrics().cache_misses.value(), sqls.size());
  // Re-encoding the same workload is all hits, no further batches.
  (void)service.EncodeBatch(sqls);
  EXPECT_EQ(service.metrics().batches.value(), 1u);
  EXPECT_EQ(service.metrics().cache_hits.value(), sqls.size());
}

// Degenerate EncodeBatch inputs (found worth pinning by the fuzz harness):
// the empty batch is a clean no-op that leaves every counter untouched.
TEST(EncoderServiceTest, EncodeBatchEmptyInputIsANoOp) {
  auto model = E().MakeModel();
  tasks::PreqrEncoder encoder(&model);
  EncoderService service(&encoder);
  auto results = service.EncodeBatch(std::vector<std::string>{});
  EXPECT_TRUE(results.empty());
  EXPECT_EQ(service.metrics().requests.value(), 0u);
  EXPECT_EQ(service.metrics().batches.value(), 0u);
  EXPECT_EQ(service.metrics().cache_hits.value(), 0u);
  EXPECT_EQ(service.metrics().cache_misses.value(), 0u);
  EXPECT_EQ(service.metrics().errors.value(), 0u);
}

// An all-malformed batch (with duplicates) fails slot by slot: every slot
// carries its own parse Status, duplicates collapse onto one encoder miss,
// errors are counted per *slot*, nothing lands in the cache, and the
// Status-propagating path records no legacy zero-vector fallbacks.
TEST(EncoderServiceTest, EncodeBatchAllMalformedFailsPerSlot) {
  auto model = E().MakeModel();
  tasks::PreqrEncoder encoder(&model);
  EncoderService service(&encoder);
  const std::string bad_a = "SELECT FROM WHERE ;;;";
  const std::string bad_b = ")(*&^%$#@";
  const std::vector<std::string> sqls = {bad_a, bad_b, bad_a, bad_a};
  const uint64_t fallbacks_before = GlobalEncodePathStats().fallback_total;
  auto results = service.EncodeBatch(sqls);
  ASSERT_EQ(results.size(), sqls.size());
  for (size_t i = 0; i < results.size(); ++i) {
    ASSERT_FALSE(results[i].ok()) << "slot " << i;
    EXPECT_FALSE(results[i].status().message().empty()) << "slot " << i;
  }
  // Identical inputs carry identical statuses (the collapsed miss fans its
  // Status back out to every duplicate slot).
  EXPECT_EQ(results[0].status().ToString(), results[2].status().ToString());
  EXPECT_EQ(results[0].status().ToString(), results[3].status().ToString());
  EXPECT_EQ(service.metrics().errors.value(), sqls.size());
  EXPECT_EQ(service.metrics().requests.value(), sqls.size());
  // 2 distinct queries reached the encoder; none produced a cache entry.
  EXPECT_EQ(service.metrics().batched_queries.value(), 2u);
  EXPECT_EQ(service.cached_embeddings(), 0u);
  EXPECT_EQ(GlobalEncodePathStats().fallback_total, fallbacks_before);
  // A retry re-encodes (errors are never cached) and fails the same way.
  auto again = service.EncodeBatch({bad_a});
  ASSERT_EQ(again.size(), 1u);
  EXPECT_FALSE(again[0].ok());
  EXPECT_EQ(service.metrics().cache_hits.value(), 0u);
}

// A batch wider than the encoder's internal chunk size (kMaxEncodeBatch =
// 32 queries per padded forward) still returns per-slot results bitwise
// identical to solo encodes — chunking is invisible to callers.
TEST(EncoderServiceTest, EncodeBatchLargerThanChunkMatchesSoloBitwise) {
  auto model = E().MakeModel();
  tasks::PreqrEncoder reference(&model);
  tasks::PreqrEncoder wrapped(&model);
  EncoderService service(&wrapped);
  std::vector<std::string> sqls;
  for (int i = 0; i < 40; ++i) {
    sqls.push_back("SELECT id FROM title WHERE id < " + std::to_string(i) +
                   " ORDER BY id LIMIT " + std::to_string(1 + i));
  }
  auto results = service.EncodeBatch(sqls);
  ASSERT_EQ(results.size(), sqls.size());
  for (size_t i = 0; i < sqls.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << results[i].status().ToString();
    nn::Tensor direct = reference.EncodeVector(sqls[i], /*train=*/false);
    ExpectBitwiseEqual(direct.vec(), results[i].value().vec(), "wide batch");
  }
  EXPECT_EQ(service.metrics().requests.value(), sqls.size());
  EXPECT_EQ(service.metrics().batched_queries.value(), sqls.size());
  EXPECT_EQ(service.metrics().errors.value(), 0u);
}

// The satellite bugfix: a cache populated before further pre-training is
// stale — InvalidateCache must actually drop it.
TEST(EncoderServiceTest, StaleCacheDroppedOnInvalidate) {
  auto model = E().MakeModel();
  tasks::PreqrEncoder encoder(&model);
  EncoderService service(&encoder);
  const std::string& probe = E().corpus[0];
  auto before = service.Encode(probe);
  ASSERT_TRUE(before.ok());

  // Further pre-training changes every layer the cached prefix depends on.
  core::Pretrainer::Options opt;
  opt.epochs = 1;
  opt.batch_size = 8;
  core::Pretrainer(model, opt).Train(E().corpus);

  // Without invalidation the service still serves the stale bits — that is
  // exactly the bug the invalidation hook exists for.
  auto stale = service.Encode(probe);
  ASSERT_TRUE(stale.ok());
  ExpectBitwiseEqual(before.value().vec(), stale.value().vec(),
                     "stale cache persists until invalidated");

  service.InvalidateCache();
  EXPECT_EQ(service.cached_embeddings(), 0u);
  auto fresh = service.Encode(probe);
  ASSERT_TRUE(fresh.ok());
  // The re-encode matches a from-scratch encoder over the updated model...
  tasks::PreqrEncoder rebuilt(&model);
  nn::Tensor expected = rebuilt.EncodeVector(probe, /*train=*/false);
  ExpectBitwiseEqual(expected.vec(), fresh.value().vec(),
                     "post-invalidate re-encode");
  // ...and differs from the stale value (training actually moved it).
  ASSERT_EQ(before.value().vec().size(), fresh.value().vec().size());
  EXPECT_NE(std::memcmp(before.value().vec().data(),
                        fresh.value().vec().data(),
                        fresh.value().vec().size() * sizeof(float)),
            0);
  EXPECT_EQ(service.metrics().invalidations.value(), 1u);
}

TEST(EncoderServiceTest, LruEvictionBoundsServedEmbeddings) {
  auto model = E().MakeModel();
  tasks::PreqrEncoder encoder(&model);
  EncoderServiceOptions options;
  options.cache_capacity = 2;
  options.cache_shards = 1;
  EncoderService service(&encoder, options);
  ASSERT_GE(E().corpus.size(), 3u);
  for (int i = 0; i < 3; ++i) (void)service.Encode(E().corpus[i]);
  EXPECT_LE(service.cached_embeddings(), 2u);
  // corpus[0] was evicted: encoding it again is a miss, not a hit.
  const uint64_t misses = service.metrics().cache_misses.value();
  (void)service.Encode(E().corpus[0]);
  EXPECT_EQ(service.metrics().cache_misses.value(), misses + 1);
}

TEST(EncoderServiceTest, ConcurrentEncodesCoalesceAndStayIdentical) {
  auto model = E().MakeModel();
  tasks::PreqrEncoder reference(&model);
  tasks::PreqrEncoder wrapped(&model);
  EncoderServiceOptions options;
  options.batch_window = std::chrono::microseconds(200);
  EncoderService service(&wrapped, options);

  // Serial reference bits per query.
  std::vector<std::vector<float>> expected;
  for (const auto& sql : E().corpus) {
    expected.push_back(reference.EncodeVector(sql, /*train=*/false).vec());
  }
  // 8 threads, each encoding the whole corpus in a different order; the
  // queries repeat across threads so hits, misses, and coalesced batches
  // all occur.
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const size_t n = E().corpus.size();
      for (size_t k = 0; k < n; ++k) {
        const size_t q = (k * 5 + static_cast<size_t>(t)) % n;
        auto result = service.Encode(E().corpus[q]);
        if (!result.ok()) {
          failures.fetch_add(1);
          continue;
        }
        const auto& got = result.value().vec();
        if (got.size() != expected[q].size() ||
            std::memcmp(got.data(), expected[q].data(),
                        got.size() * sizeof(float)) != 0) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  const auto& m = service.metrics();
  EXPECT_EQ(m.requests.value(),
            static_cast<uint64_t>(kThreads) * E().corpus.size());
  EXPECT_EQ(m.cache_hits.value() + m.cache_misses.value(),
            m.requests.value());
  // Every miss went through a dispatched micro-batch.
  EXPECT_EQ(m.batched_queries.value(), m.cache_misses.value());
  EXPECT_GE(m.batches.value(), 1u);
}

TEST(EncoderServiceTest, MetricsDumpExposesCountersAndLatencies) {
  auto model = E().MakeModel();
  tasks::PreqrEncoder encoder(&model);
  EncoderService service(&encoder);
  (void)service.Encode(E().corpus[0]);
  (void)service.Encode(E().corpus[0]);
  (void)service.Encode("not a query !!");
  const std::string dump = service.metrics().DumpText();
  for (const char* key :
       {"serving_requests_total 3", "serving_cache_hits_total 1",
        "serving_cache_misses_total 2", "serving_errors_total 1",
        "serving_cache_hit_rate", "serving_batches_total",
        "serving_batch_size_mean", "serving_encode_latency_us_p50",
        "serving_hit_latency_us_p99", "nn_buffer_pool_allocs_total",
        "nn_buffer_pool_reuses_total", "nn_buffer_pool_live_bytes"}) {
    EXPECT_NE(dump.find(key), std::string::npos) << "missing: " << key
                                                 << "\n" << dump;
  }
  EXPECT_EQ(service.name(), "serving(PreQR)");
  EXPECT_EQ(service.dim(), encoder.dim());
}

// The PreqrEncoder's own prefix cache is LRU-bounded now; hammer it past
// capacity and verify the bound plus hit/miss accounting.
TEST(EncoderServiceTest, TwoServicesNeverInterleaveEncodePathCounters) {
  // Regression pin for the process-global EncodePathRegistry: each service
  // installs its own sink around encoder calls, so two live services (or
  // tenants) keep disjoint padded-batch counters, and direct encoder use
  // outside any service still lands in the global registry.
  auto model_a = E().MakeModel();
  auto model_b = E().MakeModel();
  tasks::PreqrEncoder encoder_a(&model_a);
  tasks::PreqrEncoder encoder_b(&model_b);
  EncoderService service_a(&encoder_a);
  EncoderService service_b(&encoder_b);
  const auto global_before = GlobalEncodePathStats();
  // Three distinct misses through A, one through B: every padded batch a
  // service triggers is attributed to that service alone.
  ASSERT_TRUE(service_a
                  .EncodeBatch(std::vector<std::string>{
                      E().corpus[0], E().corpus[1], E().corpus[2]})[0]
                  .ok());
  ASSERT_TRUE(service_b.Encode(E().corpus[0]).ok());
  const auto stats_a = service_a.metrics().encode_path.Stats();
  const auto stats_b = service_b.metrics().encode_path.Stats();
  EXPECT_GE(stats_a.padded_batches, 1u);
  EXPECT_GE(stats_b.padded_batches, 1u);
  // A's batch carried three queries, B's one — with a shared registry the
  // slot counts would blur together.
  EXPECT_GT(stats_a.padded_slots, stats_b.padded_slots);
  // Neither service leaked into the process-global registry...
  EXPECT_EQ(GlobalEncodePathStats().padded_batches,
            global_before.padded_batches);
  // ...and a direct encoder call (no service in sight) still lands there,
  // not in either service's sink.
  tasks::PreqrEncoder solo(&model_a);
  ASSERT_TRUE(solo.TryEncodeVectorBatch(
                      std::vector<std::string>{E().corpus[2], E().corpus[3]},
                      /*train=*/false)[0]
                  .ok());
  EXPECT_GE(GlobalEncodePathStats().padded_batches,
            global_before.padded_batches + 1);
  EXPECT_EQ(service_a.metrics().encode_path.Stats().padded_batches,
            stats_a.padded_batches);
  // The per-service dump renders the per-service numbers.
  const std::string dump_a = service_a.metrics().DumpText();
  EXPECT_NE(dump_a.find("encode_padded_batches_total"), std::string::npos)
      << dump_a;
}

TEST(PreqrEncoderCacheTest, PrefixCacheBoundedAndCounted) {
  auto model = E().MakeModel();
  tasks::PreqrEncoder::Options options;
  options.cache_capacity = 4;
  options.cache_shards = 2;
  tasks::PreqrEncoder encoder(&model, options);
  for (const auto& sql : E().corpus) {
    (void)encoder.EncodeVector(sql, /*train=*/false);
  }
  EXPECT_LE(encoder.cached_queries(), size_t{4});
  const auto stats = encoder.cache_stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_GE(stats.misses, E().corpus.size());
}

// --- Histogram percentile edge cases (regression for the rank/bucket
// walk: empty histograms, empty leading buckets, boundary ranks, and the
// unbounded last bucket) ----------------------------------------------------

TEST(HistogramTest, EmptyHistogramReportsZero) {
  Histogram h(1.0, 2.0, 6);
  EXPECT_EQ(h.Percentile(0.0), 0.0);
  EXPECT_EQ(h.Percentile(0.5), 0.0);
  EXPECT_EQ(h.Percentile(0.99), 0.0);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(HistogramTest, SingleBucketInterpolatesWithinBounds) {
  // Buckets: [0,1), [1,2), [2,4), [4,8), [8,+inf). All samples in [0,1).
  Histogram h(1.0, 2.0, 5);
  for (int i = 0; i < 10; ++i) h.Observe(0.5);
  const double p50 = h.Percentile(0.5);
  EXPECT_GE(p50, 0.0);
  EXPECT_LE(p50, 1.0);
  // The boundary rank p100 returns exactly the bucket's upper edge.
  EXPECT_EQ(h.Percentile(1.0), 1.0);
}

TEST(HistogramTest, EmptyLeadingBucketsAreSkipped) {
  // All samples land in [4,8): every percentile must answer from that
  // bucket, never from the empty leading buckets. (The old walk returned
  // bucket 0's edge for small p because `seen + 0 >= 0` matched.)
  Histogram h(1.0, 2.0, 5);
  for (int i = 0; i < 8; ++i) h.Observe(5.0);
  EXPECT_EQ(h.Percentile(0.0), 4.0);  // frac 0 -> the bucket's lower edge
  const double p50 = h.Percentile(0.5);
  EXPECT_GE(p50, 4.0);
  EXPECT_LE(p50, 8.0);
  EXPECT_EQ(h.Percentile(1.0), 8.0);
}

TEST(HistogramTest, RankOnBucketBoundaryReturnsExactBound) {
  // 4 samples in [0,1), 4 in [1,2): p50's target rank (4) sits exactly on
  // the first bucket's cumulative boundary -> frac 1 -> exactly 1.0.
  Histogram h(1.0, 2.0, 5);
  for (int i = 0; i < 4; ++i) h.Observe(0.5);
  for (int i = 0; i < 4; ++i) h.Observe(1.5);
  EXPECT_EQ(h.Percentile(0.5), 1.0);
}

TEST(HistogramTest, UnboundedBucketReportsLastFiniteBound) {
  // Samples beyond every finite bound: the unbounded bucket has no width
  // to interpolate in, so percentiles report the largest value the
  // samples are known to exceed — never +inf, never an invented bound.
  Histogram h(1.0, 2.0, 5);  // finite bounds end at 8
  for (int i = 0; i < 5; ++i) h.Observe(1e9);
  EXPECT_EQ(h.Percentile(0.5), 8.0);
  EXPECT_EQ(h.Percentile(0.99), 8.0);
  EXPECT_TRUE(std::isfinite(h.Percentile(1.0)));
}

TEST(HistogramTest, PercentileClampsOutOfRangeP) {
  Histogram h(1.0, 2.0, 5);
  for (int i = 0; i < 4; ++i) h.Observe(0.25);
  EXPECT_EQ(h.Percentile(-3.0), h.Percentile(0.0));
  EXPECT_EQ(h.Percentile(7.0), h.Percentile(1.0));
}

// --- DeadlineAfter saturation (regression: timeout_us near INT64_MAX
// overflowed the steady_clock addition into a deadline in the past, so
// "effectively no timeout" requests died with kDeadlineExceeded) ------------

TEST(DeadlineTest, HugeTimeoutSaturatesToNoDeadline) {
  using std::chrono::microseconds;
  EXPECT_EQ(DeadlineAfter(microseconds(std::numeric_limits<int64_t>::max())),
            kNoDeadline);
  EXPECT_EQ(DeadlineAfter(std::chrono::hours(24 * 365 * 1000)), kNoDeadline);
}

TEST(DeadlineTest, OrdinaryTimeoutStaysFinite) {
  const auto d = DeadlineAfter(std::chrono::milliseconds(50));
  EXPECT_NE(d, kNoDeadline);
  EXPECT_GT(d, DeadlineClock::now() - std::chrono::seconds(1));
  EXPECT_LT(d, DeadlineClock::now() + std::chrono::seconds(10));
}

TEST(DeadlineTest, ZeroTimeoutIsAlreadyExpired) {
  const auto d = DeadlineAfter(std::chrono::microseconds(0));
  EXPECT_NE(d, kNoDeadline);
  EXPECT_LE(d, DeadlineClock::now());
}

}  // namespace
}  // namespace preqr::serving
