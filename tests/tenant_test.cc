// TenantContext/TenantRegistry + multi-tenant EncoderService: registry
// lifecycle, kNotFound-before-the-cache-probe routing, cross-tenant cache
// isolation (identical SQL never shares an entry), bitwise equivalence of
// every tenant's responses to its solo single-tenant encoder under
// interleaved and threaded traffic, slot independence across tenants in
// one batch, per-tenant reload/deregister drains under concurrent load,
// and the per-tenant metrics lines in DumpText.
#include "serving/tenant_registry.h"

#include <atomic>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "nn/serialize.h"
#include "workload/imdb.h"
#include "workload/query_gen.h"

namespace preqr::serving {
namespace {

// One synthetic database per tenant: different seeds give different value
// distributions (and thus different stats, range tokens, and weights), so
// cross-tenant leakage cannot hide behind identical artifacts.
TenantContext::Options MakeTenantOptions(uint64_t seed) {
  db::Database imdb = workload::MakeImdbDatabase(seed, 0.02);
  TenantContext::Options options;
  options.catalog = imdb.catalog();
  options.stats = db::StatsCollector().AnalyzeAll(imdb);
  workload::ImdbQueryGenerator gen(imdb, 3);
  std::unordered_set<std::string> seen;
  for (const auto& q : gen.Synthetic(16, 2)) {
    if (seen.insert(q.sql).second) options.corpus.push_back(q.sql);
  }
  options.config.d_model = 32;
  options.config.ffn_hidden = 64;
  options.seed = 17 + seed;
  return options;
}

std::shared_ptr<TenantContext> MakeTenant(uint64_t seed) {
  auto context = TenantContext::Create(MakeTenantOptions(seed));
  EXPECT_TRUE(context.ok()) << context.status().ToString();
  return std::shared_ptr<TenantContext>(std::move(context.value()));
}

// All tenants share one corpus-compatible schema (same IMDB shape), so any
// tenant can encode any tenant's corpus — which is exactly what makes the
// identical-SQL isolation tests meaningful.
struct MultiTenantEnv {
  std::vector<std::string> ids = {"t0", "t1", "t2"};
  std::vector<std::shared_ptr<TenantContext>> contexts;
  std::vector<std::string> corpus;  // valid against every tenant's schema
  MultiTenantEnv() {
    for (size_t i = 0; i < ids.size(); ++i) {
      contexts.push_back(MakeTenant(7 + i));
    }
    corpus = MakeTenantOptions(7).corpus;
  }
};

MultiTenantEnv& E() {
  static MultiTenantEnv* env = new MultiTenantEnv();
  return *env;
}

void ExpectBitwiseEqual(const nn::Tensor& a, const nn::Tensor& b,
                        const std::string& what) {
  ASSERT_EQ(a.vec().size(), b.vec().size()) << what;
  EXPECT_EQ(std::memcmp(a.vec().data(), b.vec().data(),
                        a.vec().size() * sizeof(float)),
            0)
      << what << ": bitwise mismatch";
}

EncodeRequest Req(const std::string& sql, const std::string& tenant_id = "") {
  EncodeRequest request;
  request.sql = sql;
  request.tenant_id = tenant_id;
  return request;
}

TEST(TenantContextTest, CreateValidatesAndDescribes) {
  auto context = TenantContext::Create(MakeTenantOptions(7));
  ASSERT_TRUE(context.ok());
  const std::string description = context.value()->Describe();
  EXPECT_NE(description.find("tables"), std::string::npos) << description;
  EXPECT_NE(description.find("graph nodes"), std::string::npos);
  EXPECT_GT(context.value()->graph().num_edges(), 0);
  EXPECT_GT(context.value()->vocab().size(), 0);
  // Misaligned stats are a status, not a crash: runtime registration must
  // survive bad input.
  TenantContext::Options bad = MakeTenantOptions(7);
  bad.stats.pop_back();
  auto rejected = TenantContext::Create(std::move(bad));
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
}

TEST(TenantRegistryTest, LifecycleAndDuplicateRejection) {
  EncoderService service{EncoderServiceOptions{}};
  TenantRegistry registry(&service);
  EXPECT_EQ(registry.size(), 0u);
  ASSERT_TRUE(registry.Register("a", E().contexts[0]).ok());
  ASSERT_TRUE(registry.Register("b", E().contexts[1]).ok());
  EXPECT_EQ(registry.size(), 2u);
  EXPECT_NE(registry.Lookup("a"), nullptr);
  EXPECT_EQ(registry.Lookup("ghost"), nullptr);
  EXPECT_TRUE(service.HasTenant("a"));
  EXPECT_TRUE(service.HasTenant("b"));
  // Duplicate ids and null contexts are kInvalidArgument.
  EXPECT_EQ(registry.Register("a", E().contexts[2]).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.Register("c", nullptr).code(),
            StatusCode::kInvalidArgument);
  // Deregister drains the service side first, then drops the context.
  ASSERT_TRUE(registry.Deregister("a").ok());
  EXPECT_FALSE(service.HasTenant("a"));
  EXPECT_EQ(registry.Lookup("a"), nullptr);
  EXPECT_EQ(registry.Deregister("a").code(), StatusCode::kNotFound);
  EXPECT_EQ(service.metrics().tenant_registrations.value(), 2u);
  EXPECT_EQ(service.metrics().tenant_deregistrations.value(), 1u);
}

TEST(TenantServiceTest, UnknownTenantRejectedBeforeCacheProbe) {
  EncoderService service{EncoderServiceOptions{}};
  TenantRegistry registry(&service);
  ASSERT_TRUE(registry.Register("a", E().contexts[0]).ok());
  const std::string& sql = E().corpus[0];
  EncodeRequest request;
  request.sql = sql;
  request.tenant_id = "ghost";
  auto response = service.Encode(request);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kNotFound);
  // Pre-probe rejection: neither hit nor miss counters moved, and no
  // metrics block appeared for the garbage id.
  EXPECT_EQ(service.metrics().tenant_not_found.value(), 1u);
  EXPECT_EQ(service.metrics().cache_hits.value(), 0u);
  EXPECT_EQ(service.metrics().cache_misses.value(), 0u);
  EXPECT_EQ(service.metrics().DumpText().find("tenant=\"ghost\""),
            std::string::npos);
  // A service with no tenants at all rejects even the default tenant.
  EncoderService empty{EncoderServiceOptions{}};
  auto none = empty.Encode(Req(sql));
  ASSERT_FALSE(none.ok());
  EXPECT_EQ(none.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(empty.dim(), 0);
  EXPECT_EQ(empty.name(), "serving(multi-tenant)");
}

TEST(TenantServiceTest, IdenticalSqlNeverSharesCacheAcrossTenants) {
  EncoderService service{EncoderServiceOptions{}};
  TenantRegistry registry(&service);
  ASSERT_TRUE(registry.Register("a", E().contexts[0]).ok());
  ASSERT_TRUE(registry.Register("b", E().contexts[1]).ok());
  const std::string& sql = E().corpus[0];
  auto under_a = service.Encode(Req(sql, "a"));
  auto under_b = service.Encode(Req(sql, "b"));
  ASSERT_TRUE(under_a.ok()) << under_a.status().ToString();
  ASSERT_TRUE(under_b.ok()) << under_b.status().ToString();
  EXPECT_EQ(under_a.value().tenant_id, "a");
  EXPECT_EQ(under_b.value().tenant_id, "b");
  // Different weights -> different bits. If the cache key ignored the
  // tenant, the second call would have returned tenant a's embedding (as a
  // hit); instead both were misses and each partition holds one entry.
  EXPECT_FALSE(under_b.value().cache_hit);
  EXPECT_NE(under_a.value().embedding.vec(), under_b.value().embedding.vec());
  EXPECT_EQ(service.cached_embeddings("a"), 1u);
  EXPECT_EQ(service.cached_embeddings("b"), 1u);
  EXPECT_EQ(service.cached_embeddings(), 2u);
  // Re-asking under each tenant hits that tenant's own partition.
  auto again_a = service.Encode(Req(sql, "a"));
  ASSERT_TRUE(again_a.ok());
  EXPECT_TRUE(again_a.value().cache_hit);
  ExpectBitwiseEqual(again_a.value().embedding, under_a.value().embedding,
                     "tenant a hit");
  // Solo reference encoders pin the bits per tenant.
  nn::Tensor solo_a =
      E().contexts[0]->encoder()->EncodeVector(sql, /*train=*/false);
  nn::Tensor solo_b =
      E().contexts[1]->encoder()->EncodeVector(sql, /*train=*/false);
  ExpectBitwiseEqual(under_a.value().embedding, solo_a, "tenant a vs solo");
  ExpectBitwiseEqual(under_b.value().embedding, solo_b, "tenant b vs solo");
}

TEST(TenantServiceTest, MalformedQueryCannotPoisonAnotherTenantsSlot) {
  EncoderService service{EncoderServiceOptions{}};
  TenantRegistry registry(&service);
  ASSERT_TRUE(registry.Register("a", E().contexts[0]).ok());
  ASSERT_TRUE(registry.Register("b", E().contexts[1]).ok());
  const std::string& good = E().corpus[0];
  std::vector<EncodeRequest> mixed(4);
  mixed[0] = Req(good, "a");
  mixed[1] = Req("SELECT FROM WHERE ;;;", "a");
  mixed[2] = Req(good, "b");
  mixed[3] = Req(good, "ghost");
  auto slots = service.EncodeBatch(mixed);
  ASSERT_EQ(slots.size(), 4u);
  ASSERT_TRUE(slots[0].ok()) << slots[0].status().ToString();
  ASSERT_FALSE(slots[1].ok());
  EXPECT_EQ(slots[1].status().code(), StatusCode::kParseError);
  ASSERT_TRUE(slots[2].ok()) << slots[2].status().ToString();
  ASSERT_FALSE(slots[3].ok());
  EXPECT_EQ(slots[3].status().code(), StatusCode::kNotFound);
  // Tenant a's malformed slot changed nothing about tenant b's bits.
  nn::Tensor solo_b =
      E().contexts[1]->encoder()->EncodeVector(good, /*train=*/false);
  ExpectBitwiseEqual(slots[2].value().embedding, solo_b,
                     "tenant b slot next to tenant a garbage");
  EXPECT_EQ(slots[0].value().tenant_id, "a");
  EXPECT_EQ(slots[2].value().tenant_id, "b");
}

// The acceptance drill: three tenants, interleaved then threaded traffic,
// every response bitwise-identical to the corresponding solo encoder.
TEST(TenantServiceTest, ThreeTenantInterleavedTrafficMatchesSoloBitwise) {
  EncoderService service{EncoderServiceOptions{}};
  TenantRegistry registry(&service);
  for (size_t i = 0; i < E().ids.size(); ++i) {
    ASSERT_TRUE(registry.Register(E().ids[i], E().contexts[i]).ok());
  }
  const std::vector<std::string>& corpus = E().corpus;
  ASSERT_GE(corpus.size(), 4u);
  // Solo references: one standalone encoder per tenant, same weights.
  std::vector<std::vector<nn::Tensor>> want(E().ids.size());
  for (size_t t = 0; t < E().ids.size(); ++t) {
    for (const auto& sql : corpus) {
      want[t].push_back(
          E().contexts[t]->encoder()->EncodeVector(sql, /*train=*/false));
    }
  }
  // Interleave hard: tenant changes on every consecutive request.
  for (int round = 0; round < 2; ++round) {
    for (size_t i = 0; i < corpus.size(); ++i) {
      for (size_t t = 0; t < E().ids.size(); ++t) {
        auto r = service.Encode(
            Req(corpus[i], E().ids[t]));
        ASSERT_TRUE(r.ok()) << r.status().ToString();
        EXPECT_EQ(r.value().cache_hit, round > 0);
        ExpectBitwiseEqual(r.value().embedding, want[t][i],
                           "interleaved " + E().ids[t]);
      }
    }
  }
  // Threaded: one worker per tenant hammering its own corpus while the
  // others do the same — per-tenant encode mutexes serialize each encoder,
  // the service interleaves the rest.
  std::vector<std::thread> workers;
  std::vector<std::string> failures(E().ids.size());
  for (size_t t = 0; t < E().ids.size(); ++t) {
    workers.emplace_back([&, t] {
      for (int round = 0; round < 3; ++round) {
        for (size_t i = 0; i < corpus.size(); ++i) {
          auto r = service.Encode(
              Req(corpus[(i + t) % corpus.size()], E().ids[t]));
          if (!r.ok()) {
            failures[t] = r.status().ToString();
            return;
          }
          const auto& w = want[t][(i + t) % corpus.size()];
          if (r.value().embedding.vec() != w.vec()) {
            failures[t] = "bitwise mismatch under " + E().ids[t];
            return;
          }
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  for (const auto& f : failures) EXPECT_TRUE(f.empty()) << f;
  EXPECT_EQ(service.metrics().errors.value(), 0u);
  // Per-tenant accounting: every tenant saw its own traffic.
  const std::string dump = service.metrics().DumpText();
  for (const auto& id : E().ids) {
    EXPECT_NE(dump.find("serving_tenant_requests_total{tenant=\"" + id +
                        "\"}"),
              std::string::npos)
        << dump;
  }
}

TEST(TenantServiceTest, PerTenantReloadDrainsOnlyThatTenant) {
  EncoderService service{EncoderServiceOptions{}};
  TenantRegistry registry(&service);
  ASSERT_TRUE(registry.Register("a", E().contexts[0]).ok());
  ASSERT_TRUE(registry.Register("b", E().contexts[1]).ok());
  const std::string& sql = E().corpus[0];
  ASSERT_TRUE(service.Encode(Req(sql, "a")).ok());
  ASSERT_TRUE(service.Encode(Req(sql, "b")).ok());
  const std::string path = testing::TempDir() + "/tenant_reload_a.prc1";
  ASSERT_TRUE(nn::SaveModule(*E().contexts[0]->model(), path).ok());
  ASSERT_TRUE(service.ReloadModel("a", path).ok());
  // Only tenant a's partition was cleared; b still hits.
  EXPECT_EQ(service.cached_embeddings("a"), 0u);
  EXPECT_EQ(service.cached_embeddings("b"), 1u);
  auto hit_b = service.Encode(Req(sql, "b"));
  ASSERT_TRUE(hit_b.ok());
  EXPECT_TRUE(hit_b.value().cache_hit);
  // Same weights reloaded: tenant a's bits are unchanged after the swap.
  auto again_a = service.Encode(Req(sql, "a"));
  ASSERT_TRUE(again_a.ok());
  EXPECT_FALSE(again_a.value().cache_hit);
  nn::Tensor solo_a =
      E().contexts[0]->encoder()->EncodeVector(sql, /*train=*/false);
  ExpectBitwiseEqual(again_a.value().embedding, solo_a, "post-reload a");
  // Reload on a tenant registered without a model is a clean error.
  EXPECT_EQ(service.ReloadModel("ghost", path).code(), StatusCode::kNotFound);
}

TEST(TenantServiceTest, DeregisterDrainsAndDropsExactlyThatPartition) {
  EncoderService service{EncoderServiceOptions{}};
  TenantRegistry registry(&service);
  ASSERT_TRUE(registry.Register("a", E().contexts[0]).ok());
  ASSERT_TRUE(registry.Register("b", E().contexts[1]).ok());
  const std::string& sql = E().corpus[1];
  ASSERT_TRUE(service.Encode(Req(sql, "a")).ok());
  ASSERT_TRUE(service.Encode(Req(sql, "b")).ok());
  const uint64_t invalidated_before =
      service.metrics().invalidated_embeddings.value();
  ASSERT_TRUE(registry.Deregister("a").ok());
  // Exactly a's one cached embedding was dropped; b's partition survives.
  EXPECT_EQ(service.metrics().invalidated_embeddings.value(),
            invalidated_before + 1);
  EXPECT_EQ(service.cached_embeddings(), 1u);
  EXPECT_EQ(service.cached_embeddings("b"), 1u);
  // a's metrics lines disappeared from the dump; b's remain.
  const std::string dump = service.metrics().DumpText();
  EXPECT_EQ(dump.find("tenant=\"a\""), std::string::npos) << dump;
  EXPECT_NE(dump.find("tenant=\"b\""), std::string::npos);
  // New traffic for a is kNotFound; b is untouched.
  auto gone = service.Encode(Req(sql, "a"));
  ASSERT_FALSE(gone.ok());
  EXPECT_EQ(gone.status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(service.Encode(Req(sql, "b")).ok());
  // Re-registering the id works (fresh, empty partition).
  ASSERT_TRUE(registry.Register("a", E().contexts[0]).ok());
  auto back = service.Encode(Req(sql, "a"));
  ASSERT_TRUE(back.ok());
  EXPECT_FALSE(back.value().cache_hit);
}

TEST(TenantServiceTest, RegisterAndDeregisterUnderConcurrentLoad) {
  EncoderService service{EncoderServiceOptions{}};
  TenantRegistry registry(&service);
  ASSERT_TRUE(registry.Register("steady", E().contexts[0]).ok());
  const std::vector<std::string>& corpus = E().corpus;
  nn::Tensor want =
      E().contexts[0]->encoder()->EncodeVector(corpus[0], /*train=*/false);
  std::atomic<bool> stop{false};
  std::string steady_failure;
  // A steady tenant is hammered while another tenant churns through
  // register -> traffic -> deregister cycles; the steady tenant must see
  // zero dropped or mis-coded responses.
  std::thread steady([&] {
    size_t i = 0;
    while (!stop.load()) {
      auto r = service.Encode(Req(corpus[i++ % corpus.size()], "steady"));
      if (!r.ok()) {
        steady_failure = r.status().ToString();
        return;
      }
      if (i % corpus.size() == 0 &&
          r.value().embedding.vec().size() != want.vec().size()) {
        steady_failure = "dimension changed mid-flight";
        return;
      }
    }
  });
  for (int cycle = 0; cycle < 3; ++cycle) {
    ASSERT_TRUE(registry.Register("churn", E().contexts[1]).ok());
    for (int i = 0; i < 4; ++i) {
      auto r = service.Encode(Req(corpus[i % corpus.size()], "churn"));
      ASSERT_TRUE(r.ok()) << r.status().ToString();
    }
    ASSERT_TRUE(registry.Deregister("churn").ok());
    EXPECT_EQ(service.cached_embeddings("churn"), 0u);
  }
  stop.store(true);
  steady.join();
  EXPECT_TRUE(steady_failure.empty()) << steady_failure;
  EXPECT_EQ(service.metrics().errors.value(), 0u);
  // The steady tenant's bits never drifted.
  auto final_check = service.Encode(Req(corpus[0], "steady"));
  ASSERT_TRUE(final_check.ok());
  ExpectBitwiseEqual(final_check.value().embedding, want, "steady tenant");
}

}  // namespace
}  // namespace preqr::serving
