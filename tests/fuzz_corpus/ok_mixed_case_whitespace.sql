sElEcT   DiStInCt	id ,
	title . production_year
FrOm title
WhErE production_year > 1990 AnD id < 100 oRdEr By id dEsC lImIt 5 ;