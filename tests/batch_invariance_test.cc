// Padding invariance of the batched [B, T, d] execution path: encoding a
// query inside any batch — at any padded length, next to any neighbors,
// duplicated or not — must be bitwise-identical to encoding it alone. The
// batched kernels partition their loops per example (src/nn/kernels.cc), so
// this holds exactly; these tests are the contract's pin.
#include <algorithm>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "automaton/template_extractor.h"
#include "common/thread_pool.h"
#include "core/preqr_model.h"
#include "db/stats.h"
#include "nn/ops.h"
#include "schema/schema_graph.h"
#include "serving/metrics.h"
#include "tasks/preqr_encoder.h"
#include "text/tokenizer.h"
#include "workload/imdb.h"
#include "workload/query_gen.h"

namespace preqr::core {
namespace {

struct Env {
  db::Database imdb = workload::MakeImdbDatabase(5, 0.02);
  std::vector<db::TableStats> stats;
  std::unique_ptr<text::SqlTokenizer> tokenizer;
  automaton::Automaton fa;
  schema::SchemaGraph graph;
  std::vector<std::string> corpus;

  Env() {
    db::StatsCollector collector;
    stats = collector.AnalyzeAll(imdb);
    tokenizer = std::make_unique<text::SqlTokenizer>(imdb.catalog(), stats, 8);
    workload::ImdbQueryGenerator gen(imdb, 7);
    for (const auto& q : gen.Synthetic(24, 2)) corpus.push_back(q.sql);
    automaton::TemplateExtractor extractor(0.2);
    fa = extractor.BuildAutomaton(corpus);
    graph = schema::SchemaGraph::Build(imdb.catalog());
  }
  PreqrModel MakeModel() {
    PreqrConfig config;
    config.d_model = 32;
    config.ffn_hidden = 64;
    return PreqrModel(config, tokenizer.get(), &fa, &graph, 23);
  }
};

Env& E() {
  static Env* env = new Env();
  return *env;
}

void ExpectBitwiseEqual(const std::vector<float>& a,
                        const std::vector<float>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  if (a.empty()) return;
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0)
      << what << ": bitwise mismatch";
}

// ForwardBatch row b/i must carry exactly the bits Forward produces on that
// example alone, and every pad row must be exactly zero (the guarantee that
// keeps junk out of downstream reductions).
TEST(BatchInvarianceTest, ModelForwardBatchMatchesPerQueryRows) {
  PreqrModel model = E().MakeModel();
  model.set_train(false);
  nn::NoGradGuard no_grad;
  nn::Tensor schema = model.EncodeSchemaNodes(/*with_grad=*/false);

  std::vector<text::SqlTokenizer::Tokenized> toks;
  for (size_t q = 0; q < 6; ++q) {
    auto t = model.tokenizer().Tokenize(E().corpus[q]);
    ASSERT_TRUE(t.ok());
    toks.push_back(std::move(t.value()));
  }
  const auto batch =
      text::SqlTokenizer::Collate(toks, model.config().max_seq_len);
  nn::Tensor out = model.ForwardBatch(batch, schema);
  ASSERT_EQ(out.ndim(), 3);
  ASSERT_EQ(out.dim(0), batch.batch_size);
  ASSERT_EQ(out.dim(1), batch.t_max);
  const int d = model.config().d_model;
  for (int b = 0; b < batch.batch_size; ++b) {
    const int len = batch.lengths[static_cast<size_t>(b)];
    auto single = model.Forward(toks[static_cast<size_t>(b)], schema);
    ExpectBitwiseEqual(single.tokens.vec(),
                       nn::SliceExample(out, b, len).vec(),
                       "ForwardBatch valid rows");
    // Pad rows: exactly zero, every float.
    const float* base = out.data() +
                        (static_cast<size_t>(b) * batch.t_max + len) *
                            static_cast<size_t>(d);
    for (int i = 0; i < (batch.t_max - len) * d; ++i) {
      ASSERT_EQ(base[i], 0.0f) << "pad row junk at example " << b;
    }
  }
}

// A short query padded out next to a much longer neighbor sees T_max far
// beyond its own length; its bits must not notice.
TEST(BatchInvarianceTest, ShortQueryUnchangedByLongNeighbor) {
  PreqrModel model = E().MakeModel();
  // Shortest and longest corpus members by tokenized length.
  std::string shortest, longest;
  size_t min_len = SIZE_MAX, max_len = 0;
  for (const auto& sql : E().corpus) {
    auto t = model.tokenizer().Tokenize(sql);
    ASSERT_TRUE(t.ok());
    const size_t n = t.value().ids.size();
    if (n < min_len) { min_len = n; shortest = sql; }
    if (n > max_len) { max_len = n; longest = sql; }
  }
  ASSERT_LT(min_len, max_len);
  tasks::PreqrEncoder solo(&model);
  nn::Tensor alone = solo.EncodeVector(shortest, /*train=*/false);
  tasks::PreqrEncoder cold(&model);  // fresh cache: the batch path computes
  auto padded = cold.EncodeVectorBatch({shortest, longest}, /*train=*/false);
  ExpectBitwiseEqual(alone.vec(), padded[0].vec(),
                     "short query next to long neighbor");
}

TEST(BatchInvarianceTest, BatchedEncodingsBitwiseMatchSinglesAcrossSizes) {
  PreqrModel model = E().MakeModel();
  tasks::PreqrEncoder single(&model);
  for (int bsz : {1, 3, 8}) {
    tasks::PreqrEncoder batched(&model);  // cold cache per batch size
    std::vector<std::string> sqls(E().corpus.begin(),
                                  E().corpus.begin() + bsz);
    auto results = batched.TryEncodeVectorBatch(sqls, /*train=*/false);
    ASSERT_EQ(results.size(), sqls.size());
    for (size_t i = 0; i < sqls.size(); ++i) {
      ASSERT_TRUE(results[i].ok());
      auto one = single.TryEncodeVector(sqls[i], /*train=*/false);
      ASSERT_TRUE(one.ok());
      ExpectBitwiseEqual(one.value().vec(), results[i].value().vec(),
                         "batched vs single");
    }
  }
}

TEST(BatchInvarianceTest, ShuffledCompositionDoesNotChangeBits) {
  PreqrModel model = E().MakeModel();
  std::vector<std::string> sqls(E().corpus.begin(), E().corpus.begin() + 8);
  tasks::PreqrEncoder in_order(&model);
  auto ordered = in_order.EncodeVectorBatch(sqls, /*train=*/false);
  // Fixed permutation; a fresh encoder so every prefix is recomputed inside
  // the differently-composed padded batch.
  const int perm[] = {5, 2, 7, 0, 3, 6, 1, 4};
  std::vector<std::string> shuffled;
  for (int p : perm) shuffled.push_back(sqls[static_cast<size_t>(p)]);
  tasks::PreqrEncoder reordered(&model);
  auto permuted = reordered.EncodeVectorBatch(shuffled, /*train=*/false);
  for (size_t i = 0; i < shuffled.size(); ++i) {
    ExpectBitwiseEqual(ordered[static_cast<size_t>(perm[i])].vec(),
                       permuted[i].vec(), "shuffled batch member");
  }
}

TEST(BatchInvarianceTest, DuplicatesCollapseOntoIdenticalBits) {
  PreqrModel model = E().MakeModel();
  tasks::PreqrEncoder single(&model);
  tasks::PreqrEncoder batched(&model);
  const std::vector<std::string> sqls = {
      E().corpus[0], E().corpus[1], E().corpus[0],
      E().corpus[2], E().corpus[1], E().corpus[0]};
  auto results = batched.EncodeVectorBatch(sqls, /*train=*/false);
  ASSERT_EQ(results.size(), sqls.size());
  for (size_t i = 0; i < sqls.size(); ++i) {
    nn::Tensor one = single.EncodeVector(sqls[i], /*train=*/false);
    ExpectBitwiseEqual(one.vec(), results[i].vec(), "duplicate slot");
  }
  ExpectBitwiseEqual(results[0].vec(), results[2].vec(), "dup pair 0/2");
  ExpectBitwiseEqual(results[0].vec(), results[5].vec(), "dup pair 0/5");
  ExpectBitwiseEqual(results[1].vec(), results[4].vec(), "dup pair 1/4");
}

// A malformed batch member must get its own parse error without perturbing
// a single bit of its neighbors — and the zero-vector fallback is counted,
// not silent.
TEST(BatchInvarianceTest, MalformedMemberDoesNotPoisonNeighbors) {
  PreqrModel model = E().MakeModel();
  tasks::PreqrEncoder single(&model);
  tasks::PreqrEncoder batched(&model);
  std::vector<std::string> sqls(E().corpus.begin(), E().corpus.begin() + 5);
  sqls.insert(sqls.begin() + 2, "SELECT FROM WHERE !!! not sql");
  auto results = batched.TryEncodeVectorBatch(sqls, /*train=*/false);
  ASSERT_EQ(results.size(), sqls.size());
  EXPECT_FALSE(results[2].ok());
  for (size_t i = 0; i < sqls.size(); ++i) {
    if (i == 2) continue;
    ASSERT_TRUE(results[i].ok());
    auto one = single.TryEncodeVector(sqls[i], /*train=*/false);
    ASSERT_TRUE(one.ok());
    ExpectBitwiseEqual(one.value().vec(), results[i].value().vec(),
                       "neighbor of malformed query");
  }
  // The EncodeVectorBatch fallback for the malformed slot is counted in the
  // process-global metric (satellite of the silent-zero-vector bugfix).
  const uint64_t before = serving::GlobalEncodePathStats().fallback_total;
  auto with_fallback = batched.EncodeVectorBatch(sqls, /*train=*/false);
  EXPECT_GT(serving::GlobalEncodePathStats().fallback_total, before);
  nn::Tensor zero_readout = single.EncodeVector(sqls[2], /*train=*/false);
  ExpectBitwiseEqual(zero_readout.vec(), with_fallback[2].vec(),
                     "zero fallback readout");
}

// Fine-tune mode (train=true, tape on through the padded last layer) must
// produce the same forward bits as the per-query path.
TEST(BatchInvarianceTest, TrainModeReadOutBitwiseMatchesSingle) {
  PreqrModel model = E().MakeModel();
  tasks::PreqrEncoder single(&model);
  tasks::PreqrEncoder batched(&model);
  std::vector<std::string> sqls(E().corpus.begin(), E().corpus.begin() + 4);
  auto results = batched.TryEncodeVectorBatch(sqls, /*train=*/true);
  for (size_t i = 0; i < sqls.size(); ++i) {
    ASSERT_TRUE(results[i].ok());
    auto one = single.TryEncodeVector(sqls[i], /*train=*/true);
    ASSERT_TRUE(one.ok());
    ExpectBitwiseEqual(one.value().vec(), results[i].value().vec(),
                       "train-mode batched readout");
  }
}

// The padded-batch shape metrics feed the serving dashboards; a batched
// encode must record its occupancy.
TEST(BatchInvarianceTest, PaddedBatchMetricsRecorded) {
  PreqrModel model = E().MakeModel();
  tasks::PreqrEncoder encoder(&model);
  const auto before = serving::GlobalEncodePathStats();
  std::vector<std::string> sqls(E().corpus.begin(), E().corpus.begin() + 8);
  encoder.EncodeVectorBatch(sqls, /*train=*/false);
  const auto after = serving::GlobalEncodePathStats();
  EXPECT_GT(after.padded_batches, before.padded_batches);
  EXPECT_GT(after.padded_slots, before.padded_slots);
  EXPECT_GT(after.valid_tokens, before.valid_tokens);
  EXPECT_GE(after.padded_slots, after.valid_tokens);
  EXPECT_GT(after.Occupancy(), 0.0);
  EXPECT_LE(after.Occupancy(), 1.0);
}

// Batched execution at several thread counts: composition AND scheduling
// both held invariant (complements parallel_determinism_test, which pins
// the per-thread-count story for the whole pipeline).
TEST(BatchInvarianceTest, BatchedBitsStableAcrossThreadCounts) {
  std::vector<std::string> sqls(E().corpus.begin(), E().corpus.begin() + 8);
  std::vector<std::vector<std::vector<float>>> per_threads;
  for (int threads : {1, 2, 8}) {
    ThreadPool::SetGlobalThreads(threads);
    PreqrModel model = E().MakeModel();
    tasks::PreqrEncoder encoder(&model);
    auto batch = encoder.EncodeVectorBatch(sqls, /*train=*/false);
    std::vector<std::vector<float>> outputs;
    for (auto& t : batch) outputs.push_back(t.vec());
    per_threads.push_back(std::move(outputs));
  }
  ThreadPool::SetGlobalThreads(0);
  for (size_t t = 1; t < per_threads.size(); ++t) {
    for (size_t q = 0; q < sqls.size(); ++q) {
      ExpectBitwiseEqual(per_threads[0][q], per_threads[t][q],
                         "batched encode across thread counts");
    }
  }
}

}  // namespace
}  // namespace preqr::core
