#include <gtest/gtest.h>

#include "baselines/feature_encoders.h"
#include "baselines/lstm_encoder.h"
#include "baselines/onehot.h"
#include "baselines/sim.h"
#include "baselines/tree2seq.h"
#include "db/stats.h"
#include "sql/parser.h"
#include "workload/imdb.h"

namespace preqr::baselines {
namespace {

const db::Database& TestDb() {
  static const db::Database* db =
      new db::Database(workload::MakeImdbDatabase(3, 0.02));
  return *db;
}

// --- Similarity metrics -------------------------------------------------

sql::SelectStatement Q(const std::string& sql) {
  auto r = sql::Parse(sql);
  EXPECT_TRUE(r.ok()) << sql;
  return r.value();
}

TEST(SimTest, IdenticalQueriesZeroDistance) {
  auto a = Q("SELECT name FROM user WHERE rank = 'adm'");
  EXPECT_DOUBLE_EQ(AouicheDistance(a, a), 0.0);
  EXPECT_DOUBLE_EQ(AligonDistance(a, a), 0.0);
  EXPECT_NEAR(MakiyamaDistance(a, a), 0.0, 1e-12);
}

TEST(SimTest, DisjointQueriesLargeDistance) {
  auto a = Q("SELECT name FROM user WHERE rank = 'adm'");
  auto b = Q("SELECT SUM(balance) FROM accounts WHERE owner > 5");
  EXPECT_GT(AouicheDistance(a, b), 0.9);
  EXPECT_GT(AligonDistance(a, b), 0.35);
  EXPECT_GT(MakiyamaDistance(a, b), 0.9);
}

TEST(SimTest, SharedJoinReducesDistance) {
  auto a = Q("SELECT COUNT(*) FROM t1 a, t2 b WHERE a.x = b.y AND a.k = 1");
  auto b = Q("SELECT COUNT(*) FROM t1 a, t2 b WHERE a.x = b.y AND a.k = 9");
  auto c = Q("SELECT COUNT(*) FROM t3 q WHERE q.z < 4");
  EXPECT_LT(AligonDistance(a, b), AligonDistance(a, c));
  EXPECT_LT(MakiyamaDistance(a, b), MakiyamaDistance(a, c));
}

TEST(SimTest, CosineDistanceBounds) {
  EXPECT_NEAR(CosineDistance({1, 0}, {1, 0}), 0.0, 1e-6);
  EXPECT_NEAR(CosineDistance({1, 0}, {-1, 0}), 1.0, 1e-6);
  EXPECT_NEAR(CosineDistance({1, 0}, {0, 1}), 0.5, 1e-6);
  EXPECT_DOUBLE_EQ(CosineDistance({}, {}), 1.0);  // degenerate
}

// --- One-hot -----------------------------------------------------------

TEST(OneHotTest, DimensionAndDeterminism) {
  db::BitmapSampler sampler(TestDb(), 16);
  OneHotEncoder enc(TestDb(), &sampler);
  EXPECT_GT(enc.dim(), 0);
  const char* sql =
      "SELECT COUNT(*) FROM title t WHERE t.production_year > 2000";
  auto a = enc.EncodeVector(sql, false);
  auto b = enc.EncodeVector(sql, false);
  EXPECT_EQ(a.vec(), b.vec());
  EXPECT_EQ(a.dim(1), enc.dim());
}

TEST(OneHotTest, TablesSetOneHot) {
  OneHotEncoder enc(TestDb(), nullptr);
  auto stmt = Q("SELECT COUNT(*) FROM title t, movie_companies mc WHERE "
                "t.id = mc.movie_id");
  auto v = enc.Featurize(stmt);
  float sum = 0;
  const int num_tables = static_cast<int>(TestDb().catalog().tables().size());
  for (int i = 0; i < num_tables; ++i) sum += v[static_cast<size_t>(i)];
  EXPECT_FLOAT_EQ(sum, 2.0f);  // exactly two tables set
}

TEST(OneHotTest, ValueNormalizedToUnitInterval) {
  OneHotEncoder enc(TestDb(), nullptr);
  auto lo = enc.Featurize(
      Q("SELECT COUNT(*) FROM title WHERE production_year < 1900"));
  auto hi = enc.Featurize(
      Q("SELECT COUNT(*) FROM title WHERE production_year < 2020"));
  // The value slot differs and stays within [0,1].
  bool diff = false;
  for (size_t i = 0; i < lo.size(); ++i) {
    EXPECT_GE(lo[i], 0.0f);
    EXPECT_LE(lo[i], 1.0f);
    if (lo[i] != hi[i]) diff = true;
  }
  EXPECT_TRUE(diff);
}

TEST(OneHotTest, MalformedSqlGivesZeros) {
  OneHotEncoder enc(TestDb(), nullptr);
  auto v = enc.EncodeVector("not sql at all", false);
  for (float x : v.vec()) EXPECT_EQ(x, 0.0f);
}

// --- LSTM encoder ---------------------------------------------------------

TEST(LstmEncoderTest, VocabAndShapes) {
  LstmQueryEncoder enc(16, 12, 1);
  enc.BuildVocab({"SELECT a FROM t WHERE b > 10",
                  "SELECT c FROM s WHERE d = 'x'"});
  EXPECT_GT(enc.vocab_size(), 5);
  auto vec = enc.EncodeVector("SELECT a FROM t WHERE b > 5", false);
  EXPECT_EQ(vec.dim(1), 24);
  auto seq = enc.EncodeSequence("SELECT a FROM t WHERE b > 5", false);
  EXPECT_EQ(seq.dim(1), 24);
  EXPECT_GT(seq.dim(0), 5);
}

TEST(LstmEncoderTest, NumbersShareGlobalScale) {
  LstmQueryEncoder enc(16, 12, 1);
  std::vector<std::string> corpus;
  for (int i = 1; i <= 20; ++i) {
    corpus.push_back("SELECT a FROM t WHERE b > " +
                     std::to_string(i * i * i * 250));
  }
  enc.BuildVocab(corpus);
  // Two queries differing only in far-apart numbers tokenize differently...
  auto ids_lo = enc.TokenIds("SELECT a FROM t WHERE b > 2");
  auto ids_hi = enc.TokenIds("SELECT a FROM t WHERE b > 999999");
  EXPECT_NE(ids_lo, ids_hi);
  // ...but nearby numbers collapse to the same decile token (the global
  // normalization drawback the paper criticizes).
  auto ids_lo2 = enc.TokenIds("SELECT a FROM t WHERE b > 3");
  EXPECT_EQ(ids_lo, ids_lo2);
}

TEST(LstmEncoderTest, HasTrainableParameters) {
  LstmQueryEncoder enc(16, 12, 1);
  enc.BuildVocab({"SELECT a FROM t"});
  EXPECT_FALSE(enc.TrainableParameters().empty());
}

// --- Feature encoders --------------------------------------------------------

TEST(FeatureEncodersTest, BitmapAndConcat) {
  db::BitmapSampler sampler(TestDb(), 16);
  BitmapFeatureEncoder bitmap(&sampler);
  EXPECT_EQ(bitmap.dim(), 16);
  OneHotEncoder onehot(TestDb(), nullptr);
  ConcatEncoder both(&onehot, &bitmap);
  EXPECT_EQ(both.dim(), onehot.dim() + 16);
  auto v = both.EncodeVector(
      "SELECT COUNT(*) FROM title t WHERE t.production_year > 2000", false);
  EXPECT_EQ(v.dim(1), both.dim());
  EXPECT_EQ(both.name(), "OneHot+Bitmap");
}

// --- Tree2Seq / Graph2Seq -------------------------------------------------------

TEST(Tree2SeqTest, EncodesTreeNodes) {
  Tree2SeqEncoder enc(16, 1);
  auto mem = enc.EncodeSequence(
      "SELECT COUNT(*) FROM t1 a, t2 b WHERE a.x = b.y AND a.k > 1", false);
  EXPECT_EQ(mem.dim(1), 16);
  EXPECT_GT(mem.dim(0), 4);  // several AST nodes
  EXPECT_FALSE(enc.TrainableParameters().empty());
}

TEST(Tree2SeqTest, MalformedSqlStillEncodes) {
  Tree2SeqEncoder enc(16, 1);
  auto mem = enc.EncodeSequence("garbage ((", false);
  EXPECT_EQ(mem.dim(0), 1);
}

TEST(Graph2SeqTest, TokenGraphEncoding) {
  Graph2SeqEncoder enc(16, 2);
  auto mem = enc.EncodeSequence(
      "SELECT a FROM t WHERE b = 1 AND c < 5", false);
  EXPECT_EQ(mem.dim(1), 16);
  EXPECT_GT(mem.dim(0), 8);  // one node per token
  EXPECT_FALSE(enc.TrainableParameters().empty());
}

}  // namespace
}  // namespace preqr::baselines
