// Golden pin for the plan-node executor refactor: ~50 generated queries
// (plus handcrafted UNION / IN-subquery cases) were executed against the
// pre-refactor monolithic executor and their ExecResults recorded bitwise
// (doubles as raw bit patterns, root_row_ids as count + FNV-1a hash). The
// suite asserts the plan-node wrapper reproduces every one of them exactly,
// in both plain and collect_root_rows modes.
//
// The query set itself is pinned transitively: ImdbQueryGenerator calls the
// executor while generating (retry-until-nonempty), so any behavioral drift
// in Execute would also change which queries get generated and show up as a
// sql_hash mismatch.
//
// Regenerate (only legitimate after an intentional semantics change):
//   PREQR_GOLDEN_REGEN=1 ./build/tests/executor_golden_test
#include <gtest/gtest.h>

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "db/executor.h"
#include "sql/parser.h"
#include "sql/printer.h"
#include "workload/imdb.h"
#include "workload/query_gen.h"

#ifndef PREQR_GOLDEN_FILE
#define PREQR_GOLDEN_FILE "executor_golden.txt"
#endif

namespace preqr::db {
namespace {

uint64_t Fnv1a(const void* data, size_t len) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = 1469598103934665603ull;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

uint64_t HashString(const std::string& s) { return Fnv1a(s.data(), s.size()); }

uint64_t HashIds(const std::vector<int>& ids) {
  return Fnv1a(ids.data(), ids.size() * sizeof(int));
}

uint64_t DoubleBits(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

// One query's pinned execution record.
struct GoldenRow {
  uint64_t sql_hash = 0;
  uint64_t card_bits = 0;   // Execute(stmt).cardinality
  uint64_t cost_bits = 0;   // Execute(stmt).cost
  uint64_t rcard_bits = 0;  // Execute(stmt, collect_root_rows=true)
  uint64_t rcost_bits = 0;
  uint64_t rows_n = 0;      // root_row_ids.size()
  uint64_t rows_hash = 0;   // FNV-1a over the id array bytes
};

const db::Database& GoldenDb() {
  static const db::Database* db =
      new db::Database(workload::MakeImdbDatabase(7, 0.05));
  return *db;
}

// The pinned workload: deterministic generator streams spanning 0-6 joins,
// numeric + string predicates, plus handcrafted UNION and IN-subquery
// statements (shapes the generator never emits).
std::vector<sql::SelectStatement> GoldenQueries() {
  std::vector<sql::SelectStatement> out;
  workload::ImdbQueryGenerator gen(GoldenDb(), 11);
  for (const auto& q : gen.Synthetic(20, 2)) out.push_back(q.stmt);
  for (const auto& q : gen.JobLightTrain(20)) out.push_back(q.stmt);
  for (const auto& q : gen.JobStrings(6, 4, 6)) out.push_back(q.stmt);
  const char* handcrafted[] = {
      "SELECT COUNT(*) FROM title WHERE production_year > 1990 UNION "
      "SELECT COUNT(*) FROM title WHERE kind_id = 1",
      "SELECT COUNT(*) FROM title WHERE id IN (SELECT movie_id FROM "
      "movie_companies WHERE company_id < 20) AND production_year > 1985",
      "SELECT COUNT(*) FROM title t, movie_companies mc, company_name cn "
      "WHERE t.id = mc.movie_id AND cn.id = mc.company_id AND "
      "cn.country_code = 'us'",
      "SELECT COUNT(*) FROM title t, cast_info ci, name n, role_type rt "
      "WHERE t.id = ci.movie_id AND n.id = ci.person_id AND "
      "rt.id = ci.role_id AND t.production_year BETWEEN 1980 AND 2000",
  };
  for (const char* sql : handcrafted) {
    auto stmt = sql::Parse(sql);
    EXPECT_TRUE(stmt.ok()) << sql;
    out.push_back(stmt.value());
  }
  return out;
}

GoldenRow RowFor(const Executor& exec, const sql::SelectStatement& stmt) {
  GoldenRow row;
  row.sql_hash = HashString(sql::ToSql(stmt));
  auto plain = exec.Execute(stmt);
  EXPECT_TRUE(plain.ok()) << plain.status().ToString();
  row.card_bits = DoubleBits(plain.value().cardinality);
  row.cost_bits = DoubleBits(plain.value().cost);
  auto collected = exec.Execute(stmt, /*collect_root_rows=*/true);
  EXPECT_TRUE(collected.ok()) << collected.status().ToString();
  row.rcard_bits = DoubleBits(collected.value().cardinality);
  row.rcost_bits = DoubleBits(collected.value().cost);
  row.rows_n = collected.value().root_row_ids.size();
  row.rows_hash = HashIds(collected.value().root_row_ids);
  return row;
}

std::vector<GoldenRow> LoadGolden() {
  std::vector<GoldenRow> rows;
  FILE* f = std::fopen(PREQR_GOLDEN_FILE, "r");
  if (f == nullptr) return rows;
  GoldenRow r;
  while (std::fscanf(f,
                     "%" SCNx64 " %" SCNx64 " %" SCNx64 " %" SCNx64
                     " %" SCNx64 " %" SCNu64 " %" SCNx64,
                     &r.sql_hash, &r.card_bits, &r.cost_bits, &r.rcard_bits,
                     &r.rcost_bits, &r.rows_n, &r.rows_hash) == 7) {
    rows.push_back(r);
  }
  std::fclose(f);
  return rows;
}

TEST(ExecutorGoldenTest, PlanNodePathReproducesPreRefactorResultsBitwise) {
  const Executor exec(GoldenDb());
  const auto queries = GoldenQueries();
  ASSERT_GE(queries.size(), 50u);

  if (const char* regen = std::getenv("PREQR_GOLDEN_REGEN");
      regen != nullptr && regen[0] == '1') {
    FILE* f = std::fopen(PREQR_GOLDEN_FILE, "w");
    ASSERT_NE(f, nullptr) << "cannot write " << PREQR_GOLDEN_FILE;
    for (const auto& stmt : queries) {
      const GoldenRow r = RowFor(exec, stmt);
      std::fprintf(f,
                   "%016" PRIx64 " %016" PRIx64 " %016" PRIx64 " %016" PRIx64
                   " %016" PRIx64 " %" PRIu64 " %016" PRIx64 "\n",
                   r.sql_hash, r.card_bits, r.cost_bits, r.rcard_bits,
                   r.rcost_bits, r.rows_n, r.rows_hash);
    }
    std::fclose(f);
    GTEST_SKIP() << "regenerated " << PREQR_GOLDEN_FILE;
  }

  const auto golden = LoadGolden();
  ASSERT_EQ(golden.size(), queries.size())
      << "golden file " << PREQR_GOLDEN_FILE
      << " missing or stale; regenerate with PREQR_GOLDEN_REGEN=1 only if "
         "the executor's semantics changed intentionally";
  for (size_t i = 0; i < queries.size(); ++i) {
    SCOPED_TRACE("query " + std::to_string(i) + ": " +
                 sql::ToSql(queries[i]));
    const GoldenRow got = RowFor(exec, queries[i]);
    EXPECT_EQ(got.sql_hash, golden[i].sql_hash)
        << "generated query drifted — Execute changed behavior inside the "
           "generator's retry loop";
    EXPECT_EQ(got.card_bits, golden[i].card_bits);
    EXPECT_EQ(got.cost_bits, golden[i].cost_bits);
    EXPECT_EQ(got.rcard_bits, golden[i].rcard_bits);
    EXPECT_EQ(got.rcost_bits, golden[i].rcost_bits);
    EXPECT_EQ(got.rows_n, golden[i].rows_n);
    EXPECT_EQ(got.rows_hash, golden[i].rows_hash);
  }
}

}  // namespace
}  // namespace preqr::db
