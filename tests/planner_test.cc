// Covers the join-order planner stack end to end: the DP enumerator against
// the brute-force oracle (bitwise-equal costs by construction — both sides
// accumulate join terms in the same left-to-right association), explicit
// left-deep execution against the default plan's order-invariant counts,
// the unified CardinalityEstimator contracts, and the join-graph validation
// statuses (self-loops, cycles, disconnection) that used to be silently
// mis-executed. The bad-join list at the bottom is a regression corpus in
// the fuzz-corpus style: every entry stays pinned to kInvalidArgument.
#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "db/database.h"
#include "db/executor.h"
#include "db/plan.h"
#include "pg/pg_estimator.h"
#include "planner/cardinality.h"
#include "planner/join_planner.h"
#include "sql/parser.h"
#include "workload/imdb.h"
#include "workload/query_gen.h"

namespace preqr::planner {
namespace {

// Four tables with a tree-shaped FK layout and deliberately correlated
// columns, so different join orders produce different intermediate sizes:
//   company_name -- movie_companies -- title -- cast_info
db::Database MakeDb() {
  db::Database db;
  {
    sql::TableDef def;
    def.name = "title";
    def.columns = {{"id", sql::ColumnType::kInt, true},
                   {"production_year", sql::ColumnType::kInt, false},
                   {"kind_id", sql::ColumnType::kInt, false}};
    db::Table& t = db.AddTable(def);
    for (int i = 0; i < 12; ++i) {
      t.column(0).ints.push_back(i);
      t.column(1).ints.push_back(2000 + i % 6);
      t.column(2).ints.push_back(i % 3);
    }
    t.Seal();
  }
  {
    sql::TableDef def;
    def.name = "movie_companies";
    def.columns = {{"id", sql::ColumnType::kInt, true},
                   {"movie_id", sql::ColumnType::kInt, false},
                   {"company_id", sql::ColumnType::kInt, false}};
    db::Table& t = db.AddTable(def);
    for (int i = 0; i < 24; ++i) {
      t.column(0).ints.push_back(i);
      t.column(1).ints.push_back(i / 2);  // two companies per movie
      t.column(2).ints.push_back(i % 5);
    }
    t.Seal();
  }
  {
    sql::TableDef def;
    def.name = "company_name";
    def.columns = {{"id", sql::ColumnType::kInt, true},
                   {"country_id", sql::ColumnType::kInt, false}};
    db::Table& t = db.AddTable(def);
    for (int i = 0; i < 5; ++i) {
      t.column(0).ints.push_back(i);
      t.column(1).ints.push_back(i % 2);
    }
    t.Seal();
  }
  {
    sql::TableDef def;
    def.name = "cast_info";
    def.columns = {{"id", sql::ColumnType::kInt, true},
                   {"movie_id", sql::ColumnType::kInt, false},
                   {"person_id", sql::ColumnType::kInt, false}};
    db::Table& t = db.AddTable(def);
    for (int i = 0; i < 18; ++i) {
      t.column(0).ints.push_back(i);
      t.column(1).ints.push_back(i % 12);
      t.column(2).ints.push_back(i % 7);
    }
    t.Seal();
  }
  return db;
}

sql::SelectStatement Parse(const std::string& sql) {
  auto stmt = sql::Parse(sql);
  EXPECT_TRUE(stmt.ok()) << sql << ": " << stmt.status().ToString();
  return stmt.value();
}

// Chain query over all four tables; the filters skew intermediate sizes.
const char kChainSql[] =
    "SELECT COUNT(*) FROM title t, movie_companies mc, company_name cn, "
    "cast_info ci WHERE t.id = mc.movie_id AND mc.company_id = cn.id AND "
    "t.id = ci.movie_id AND t.kind_id = 0 AND cn.country_id = 1";

TEST(JoinPlannerTest, DpMatchesExhaustiveOnHandQuery) {
  db::Database db = MakeDb();
  sql::SelectStatement stmt = Parse(kChainSql);
  TrueCardinalityEstimator est(db);
  auto dp = PlanJoinOrder(db, stmt, est);
  auto ex = ExhaustivePlanJoinOrder(db, stmt, est);
  ASSERT_TRUE(dp.ok()) << dp.status().ToString();
  ASSERT_TRUE(ex.ok()) << ex.status().ToString();
  // Same association on both sides makes equal orders bitwise-equal, so
  // the minima over the same candidate set are identical doubles.
  EXPECT_DOUBLE_EQ(dp.value().estimated_cost, ex.value().estimated_cost);
  EXPECT_EQ(dp.value().order.size(), 4u);
  db::Executor exec(db);
  EXPECT_TRUE(exec.ExecuteOrder(stmt, dp.value().order).ok());
  EXPECT_TRUE(exec.ExecuteOrder(stmt, ex.value().order).ok());
}

TEST(JoinPlannerTest, DpIsDeterministic) {
  db::Database db = MakeDb();
  sql::SelectStatement stmt = Parse(kChainSql);
  TrueCardinalityEstimator est_a(db);
  TrueCardinalityEstimator est_b(db);
  auto a = PlanJoinOrder(db, stmt, est_a);
  auto b = PlanJoinOrder(db, stmt, est_b);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value().order, b.value().order);
  EXPECT_DOUBLE_EQ(a.value().estimated_cost, b.value().estimated_cost);
}

TEST(JoinPlannerTest, TruePlanIsExecutedOptimal) {
  db::Database db = MakeDb();
  db::Executor exec(db);
  sql::SelectStatement stmt = Parse(kChainSql);
  TrueCardinalityEstimator est(db);
  auto dp = PlanJoinOrder(db, stmt, est);
  ASSERT_TRUE(dp.ok());
  auto chosen = exec.ExecuteOrder(stmt, dp.value().order);
  ASSERT_TRUE(chosen.ok());

  // Brute-force every valid left-deep order and execute it: the DP plan
  // fed exact cardinalities must achieve the executed-cost minimum.
  std::vector<int> order = {0, 1, 2, 3};
  double best = -1;
  int valid = 0;
  do {
    auto res = exec.ExecuteOrder(stmt, order);
    if (!res.ok()) continue;
    ++valid;
    if (best < 0 || res.value().cost < best) best = res.value().cost;
  } while (std::next_permutation(order.begin(), order.end()));
  ASSERT_GT(valid, 1);
  EXPECT_LE(chosen.value().cost, best * (1.0 + 1e-9));
}

TEST(JoinPlannerTest, DpMatchesExhaustiveOnGeneratedWorkload) {
  db::Database imdb = workload::MakeImdbDatabase(13, 0.02);
  workload::ImdbQueryGenerator gen(imdb, 7);
  db::Executor exec(imdb);
  TrueCardinalityEstimator est(imdb);
  int covered = 0;
  for (const auto& q : gen.Synthetic(60, 4)) {
    const size_t n = q.stmt.tables.size();
    if (n < 3 || n > 5) continue;
    auto dp = PlanJoinOrder(imdb, q.stmt, est);
    auto ex = ExhaustivePlanJoinOrder(imdb, q.stmt, est);
    ASSERT_TRUE(dp.ok()) << q.sql << ": " << dp.status().ToString();
    ASSERT_TRUE(ex.ok()) << q.sql << ": " << ex.status().ToString();
    EXPECT_DOUBLE_EQ(dp.value().estimated_cost, ex.value().estimated_cost)
        << q.sql;
    // The chosen order executes to the same exact count as the default
    // plan — counts are join-order invariant.
    auto ordered = exec.ExecuteOrder(q.stmt, dp.value().order);
    auto base = exec.Execute(q.stmt);
    ASSERT_TRUE(ordered.ok() && base.ok()) << q.sql;
    EXPECT_DOUBLE_EQ(ordered.value().cardinality, base.value().cardinality)
        << q.sql;
    if (++covered >= 6) break;
  }
  EXPECT_GE(covered, 3);
}

TEST(JoinPlannerTest, RejectsUnionStatements) {
  db::Database db = MakeDb();
  sql::SelectStatement stmt = Parse(
      "SELECT COUNT(*) FROM title UNION SELECT COUNT(*) FROM company_name");
  TrueCardinalityEstimator est(db);
  auto r = PlanJoinOrder(db, stmt, est);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(JoinPlannerTest, RejectsMoreThanSixteenTables) {
  db::Database db = MakeDb();
  std::string sql = "SELECT COUNT(*) FROM title t0";
  for (int i = 1; i < 17; ++i) sql += ", title t" + std::to_string(i);
  sql += " WHERE t0.id = t1.id";
  for (int i = 1; i < 16; ++i) {
    sql += " AND t" + std::to_string(i) + ".id = t" + std::to_string(i + 1) +
           ".id";
  }
  sql::SelectStatement stmt = Parse(sql);
  TrueCardinalityEstimator est(db);
  auto r = PlanJoinOrder(db, stmt, est);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(CardinalityEstimatorTest, TrueEstimatorMatchesExecutor) {
  db::Database db = MakeDb();
  db::Executor exec(db);
  sql::SelectStatement stmt = Parse(kChainSql);
  TrueCardinalityEstimator est(db);
  auto base = exec.Execute(stmt);
  ASSERT_TRUE(base.ok());
  EXPECT_DOUBLE_EQ(est.EstimateCardinality(stmt), base.value().cardinality);
  // Memoized second call returns the identical value.
  EXPECT_DOUBLE_EQ(est.EstimateCardinality(stmt), base.value().cardinality);
}

TEST(CardinalityEstimatorTest, SubsetDefaultsToInducedStatement) {
  db::Database db = MakeDb();
  pg::PgEstimator pg(db);
  PgCardinalityEstimator est(db, pg);
  sql::SelectStatement stmt = Parse(kChainSql);
  const std::vector<int> subset = {0, 1};
  sql::SelectStatement induced = InduceSubsetStatement(db, stmt, subset);
  EXPECT_EQ(induced.tables.size(), 2u);
  EXPECT_DOUBLE_EQ(est.EstimateSubsetCardinality(stmt, subset),
                   pg.EstimateCardinality(induced));
}

TEST(CardinalityEstimatorTest, InducedSubsetKeepsResolvablePredicates) {
  db::Database db = MakeDb();
  db::Executor exec(db);
  sql::SelectStatement stmt = Parse(kChainSql);
  // {title, movie_companies}: keeps the t-mc join and t.kind_id filter,
  // drops the cn/ci tables and everything referencing them.
  auto induced = InduceSubsetStatement(db, stmt, {0, 1});
  auto got = exec.Execute(induced);
  auto want = exec.Execute(
      Parse("SELECT COUNT(*) FROM title t, movie_companies mc WHERE "
            "t.id = mc.movie_id AND t.kind_id = 0"));
  ASSERT_TRUE(got.ok() && want.ok());
  EXPECT_DOUBLE_EQ(got.value().cardinality, want.value().cardinality);
  // Single-table subset keeps that table's filter only.
  auto cn_only = InduceSubsetStatement(db, stmt, {2});
  auto cn_got = exec.Execute(cn_only);
  ASSERT_TRUE(cn_got.ok());
  EXPECT_DOUBLE_EQ(cn_got.value().cardinality, 2);  // country_id = 1
}

TEST(CardinalityEstimatorTest, CallbackEstimatesFlooredAtOneRow) {
  db::Database db = MakeDb();
  CallbackCardinalityEstimator est(db, "zero",
                                   [](const std::string&) { return 0.0; });
  EXPECT_EQ(est.name(), "zero");
  sql::SelectStatement stmt = Parse("SELECT COUNT(*) FROM title");
  EXPECT_DOUBLE_EQ(est.EstimateCardinality(stmt), 1.0);
}

TEST(ExecuteOrderTest, AllValidOrdersAgreeWithExecute) {
  db::Database db = MakeDb();
  db::Executor exec(db);
  sql::SelectStatement stmt = Parse(kChainSql);
  auto base = exec.Execute(stmt);
  ASSERT_TRUE(base.ok());

  std::vector<int> order = {0, 1, 2, 3};
  int valid = 0, invalid = 0;
  do {
    auto res = exec.ExecuteOrder(stmt, order);
    if (!res.ok()) {
      EXPECT_EQ(res.status().code(), StatusCode::kInvalidArgument);
      ++invalid;
      continue;
    }
    ++valid;
    EXPECT_DOUBLE_EQ(res.value().cardinality, base.value().cardinality);
    ASSERT_EQ(res.value().steps.size(), 3u);
    // The last prefix is the whole join, so its intermediate equals the
    // final count; every step reports the joined table's filtered rows.
    EXPECT_DOUBLE_EQ(res.value().steps.back().intermediate_rows,
                     base.value().cardinality);
    for (const auto& step : res.value().steps) {
      EXPECT_GE(step.binding, 0);
      EXPECT_LT(step.binding, 4);
      EXPECT_GE(step.build_rows, 0);
    }
    EXPECT_GT(res.value().cost, 0);
  } while (std::next_permutation(order.begin(), order.end()));
  // cn (index 2) only connects through mc, ci (index 3) only through t:
  // orders starting with a leaf pair are disconnected, so both buckets
  // must be populated.
  EXPECT_GT(valid, 0);
  EXPECT_GT(invalid, 0);
}

TEST(ExecuteOrderTest, RejectsMalformedOrders) {
  db::Database db = MakeDb();
  db::Executor exec(db);
  sql::SelectStatement stmt = Parse(kChainSql);
  for (const std::vector<int>& bad :
       {std::vector<int>{0, 1, 2},        // too short
        std::vector<int>{0, 1, 2, 2},     // duplicate
        std::vector<int>{0, 1, 2, 4},     // out of range
        std::vector<int>{2, 3, 0, 1}}) {  // cn then ci: disconnected prefix
    auto res = exec.ExecuteOrder(stmt, bad);
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.status().code(), StatusCode::kInvalidArgument);
  }
  sql::SelectStatement u = Parse(
      "SELECT COUNT(*) FROM title UNION SELECT COUNT(*) FROM company_name");
  EXPECT_FALSE(exec.ExecuteOrder(u, {0}).ok());
}

TEST(PlanNodeTest, RootedPlanReportsPerNodeStats) {
  db::Database db = MakeDb();
  db::Executor exec(db);
  sql::SelectStatement stmt = Parse(kChainSql);
  auto bound = exec.Bind(stmt);
  ASSERT_TRUE(bound.ok());
  std::unique_ptr<db::PlanNode> plan = db::BuildDefaultPlan(bound.value());
  ASSERT_NE(plan, nullptr);
  // Rooted at title: children are movie_companies and cast_info.
  EXPECT_EQ(plan->kind(), db::PlanNode::Kind::kHashJoin);
  EXPECT_EQ(plan->binding(), 0);
  EXPECT_EQ(plan->num_children(), 2u);

  db::ExecResult result;
  result.cost = bound.value().bind_cost;
  plan->ExecuteRoot(bound.value(), /*collect_root_rows=*/false, &result);
  auto base = exec.Execute(stmt);
  ASSERT_TRUE(base.ok());
  EXPECT_DOUBLE_EQ(result.cardinality, base.value().cardinality);
  EXPECT_DOUBLE_EQ(result.cost, base.value().cost);
  // The root's stats carry the final count and the emission work.
  EXPECT_DOUBLE_EQ(plan->stats().out_rows, result.cardinality);
  EXPECT_DOUBLE_EQ(plan->stats().cost, result.cardinality * 0.1);

  const auto* root = static_cast<const db::HashJoinNode*>(plan.get());
  for (const auto& input : root->inputs()) {
    EXPECT_GE(input.probe_col, 0);
    EXPECT_GE(input.build_col, 0);
    EXPECT_GE(input.child->stats().build_entries, 0);
    EXPECT_GT(input.child->stats().cost, 0);
  }
}

TEST(PlanNodeTest, EveryRootYieldsTheSameCount) {
  db::Database db = MakeDb();
  db::Executor exec(db);
  sql::SelectStatement stmt = Parse(kChainSql);
  auto bound = exec.Bind(stmt);
  ASSERT_TRUE(bound.ok());
  auto base = exec.Execute(stmt);
  ASSERT_TRUE(base.ok());
  for (int root = 0; root < 4; ++root) {
    auto plan = db::BuildRootedPlan(bound.value(), root);
    db::ExecResult result;
    plan->ExecuteRoot(bound.value(), false, &result);
    EXPECT_DOUBLE_EQ(result.cardinality, base.value().cardinality)
        << "root=" << root;
  }
}

// Fuzz-corpus-style regression list: join shapes that used to be silently
// mis-executed (self-joins on one occurrence) or only caught deep in
// execution now fail binding with kInvalidArgument, and the statuses stay
// pinned here. Checked through both the executor and the planner's
// graph-resolution path.
TEST(JoinGraphValidationTest, BadJoinGraphCorpusStaysRejected) {
  db::Database db = MakeDb();
  db::Executor exec(db);
  struct Case {
    const char* sql;
    const char* message_fragment;
  };
  const Case kCorpus[] = {
      {"SELECT COUNT(*) FROM title t WHERE t.id = t.kind_id", "self-join"},
      {"SELECT COUNT(*) FROM title t, movie_companies mc, company_name cn "
       "WHERE t.id = mc.movie_id AND mc.company_id = cn.id AND "
       "t.kind_id = cn.country_id",
       "not a tree"},  // cycle: 3 edges over 3 tables
      {"SELECT COUNT(*) FROM title t, movie_companies mc",
       "not a tree"},  // cross join: 0 edges over 2 tables
      {"SELECT COUNT(*) FROM title t, movie_companies mc, company_name cn, "
       "cast_info ci WHERE t.id = mc.movie_id AND t.kind_id = mc.company_id "
       "AND cn.id = ci.person_id",
       "disconnected"},  // n-1 edges but two components
  };
  for (const Case& c : kCorpus) {
    sql::SelectStatement stmt = Parse(c.sql);
    auto res = exec.Execute(stmt);
    ASSERT_FALSE(res.ok()) << c.sql;
    EXPECT_EQ(res.status().code(), StatusCode::kInvalidArgument) << c.sql;
    EXPECT_NE(res.status().message().find(c.message_fragment),
              std::string::npos)
        << c.sql << " -> " << res.status().message();
    auto graph = db::ResolveJoinGraph(db, stmt);
    ASSERT_FALSE(graph.ok()) << c.sql;
    EXPECT_EQ(graph.status().code(), StatusCode::kInvalidArgument) << c.sql;
  }
}

}  // namespace
}  // namespace preqr::planner
