#include <gtest/gtest.h>

#include "eval/metrics.h"

namespace preqr::eval {
namespace {

TEST(QErrorTest, SymmetricAndClamped) {
  EXPECT_DOUBLE_EQ(QError(10, 100), 10);
  EXPECT_DOUBLE_EQ(QError(100, 10), 10);
  EXPECT_DOUBLE_EQ(QError(5, 5), 1);
  EXPECT_DOUBLE_EQ(QError(0, 0), 1);   // clamped to >= 1
  EXPECT_DOUBLE_EQ(QError(0.5, 2), 2); // truth clamped to 1
}

TEST(QErrorTest, StatsPercentiles) {
  std::vector<double> truths(100, 100.0);
  std::vector<double> estimates;
  for (int i = 1; i <= 100; ++i) estimates.push_back(100.0 * i);
  auto s = ComputeQErrors(truths, estimates);
  EXPECT_NEAR(s.median, 50.5, 1.0);
  EXPECT_NEAR(s.p90, 90.1, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_NEAR(s.mean, 50.5, 0.5);
}

TEST(QErrorTest, EmptyInput) {
  auto s = ComputeQErrors({}, {});
  EXPECT_DOUBLE_EQ(s.mean, 0);
}

TEST(BetaCvTest, PerfectClusteringNearZero) {
  // Two tight clusters far apart.
  std::vector<std::vector<double>> d = {
      {0.0, 0.1, 1.0, 1.0},
      {0.1, 0.0, 1.0, 1.0},
      {1.0, 1.0, 0.0, 0.1},
      {1.0, 1.0, 0.1, 0.0},
  };
  const double betacv = BetaCV(d, {0, 0, 1, 1});
  EXPECT_NEAR(betacv, 0.1, 1e-9);
}

TEST(BetaCvTest, BadClusteringLarger) {
  std::vector<std::vector<double>> d = {
      {0.0, 1.0, 0.1, 1.0},
      {1.0, 0.0, 1.0, 0.1},
      {0.1, 1.0, 0.0, 1.0},
      {1.0, 0.1, 1.0, 0.0},
  };
  // Labels group the DISTANT points together.
  EXPECT_GT(BetaCV(d, {0, 0, 1, 1}), 1.0);
}

TEST(NdcgTest, PerfectRankingIsOne) {
  std::vector<std::vector<double>> truth = {
      {0, 0.9, 0.5, 0.1},
      {0.9, 0, 0.4, 0.2},
      {0.5, 0.4, 0, 0.3},
      {0.1, 0.2, 0.3, 0},
  };
  EXPECT_NEAR(MeanNdcg(truth, truth), 1.0, 1e-9);
}

TEST(NdcgTest, WorseRankingBelowOne) {
  std::vector<std::vector<double>> truth = {
      {0, 0.9, 0.1},
      {0.9, 0, 0.1},
      {0.1, 0.1, 0},
  };
  std::vector<std::vector<double>> inverted = {
      {0, 0.1, 0.9},
      {0.1, 0, 0.9},
      {0.9, 0.9, 0},
  };
  EXPECT_LT(MeanNdcg(inverted, truth), MeanNdcg(truth, truth));
}

TEST(BleuTest, ExactMatchIsOne) {
  std::vector<std::vector<std::string>> refs = {
      {"the", "movie", "was", "great"}};
  EXPECT_NEAR(Bleu(refs, refs), 1.0, 1e-9);
}

TEST(BleuTest, NoOverlapNearZero) {
  std::vector<std::vector<std::string>> refs = {{"a", "b", "c", "d"}};
  std::vector<std::vector<std::string>> cands = {{"w", "x", "y", "z"}};
  EXPECT_LT(Bleu(refs, cands), 0.05);
}

TEST(BleuTest, PartialOverlapInBetween) {
  std::vector<std::vector<std::string>> refs = {
      {"what", "is", "the", "year", "of", "the", "film"}};
  std::vector<std::vector<std::string>> cands = {
      {"what", "is", "the", "name", "of", "a", "film"}};
  const double bleu = Bleu(refs, cands);
  EXPECT_GT(bleu, 0.1);
  EXPECT_LT(bleu, 0.9);
}

TEST(BleuTest, BrevityPenaltyApplies) {
  std::vector<std::vector<std::string>> refs = {
      {"a", "b", "c", "d", "e", "f"}};
  std::vector<std::vector<std::string>> short_cand = {{"a", "b"}};
  std::vector<std::vector<std::string>> long_cand = {
      {"a", "b", "c", "d", "e", "f"}};
  EXPECT_LT(Bleu(refs, short_cand), Bleu(refs, long_cand));
}

}  // namespace
}  // namespace preqr::eval
