#include <set>

#include <gtest/gtest.h>

#include "sql/parser.h"
#include "workload/imdb.h"
#include "workload/query_gen.h"

namespace preqr::workload {
namespace {

// Shared tiny database for all tests in this file.
const db::Database& TestDb() {
  static const db::Database* db = new db::Database(MakeImdbDatabase(3, 0.03));
  return *db;
}

TEST(ImdbTest, Has22Tables) {
  EXPECT_EQ(TestDb().catalog().tables().size(), 22u);
}

TEST(ImdbTest, CoreTablesPopulated) {
  for (const char* t : {"title", "movie_companies", "movie_info",
                        "movie_keyword", "cast_info", "company_name"}) {
    const db::Table* table = TestDb().FindTable(t);
    ASSERT_NE(table, nullptr) << t;
    EXPECT_GT(table->num_rows(), 0u) << t;
  }
}

TEST(ImdbTest, ForeignKeysValid) {
  const auto& cat = TestDb().catalog();
  EXPECT_GE(cat.foreign_keys().size(), 20u);
  for (const auto& fk : cat.foreign_keys()) {
    const db::Table* child = TestDb().FindTable(fk.from_table);
    const db::Table* parent = TestDb().FindTable(fk.to_table);
    ASSERT_NE(child, nullptr);
    ASSERT_NE(parent, nullptr);
    // Referenced column is the parent PK.
    EXPECT_TRUE(parent->def()
                    .columns[static_cast<size_t>(
                        parent->def().ColumnIndex(fk.to_column))]
                    .is_primary_key);
  }
}

TEST(ImdbTest, FkValuesWithinParentDomain) {
  // movie_companies.movie_id must reference existing title ids (0..n-1).
  const db::Table* mc = TestDb().FindTable("movie_companies");
  const db::Table* title = TestDb().FindTable("title");
  const int64_t n_title = static_cast<int64_t>(title->num_rows());
  const auto& movie_ids = mc->column(1).ints;
  for (int64_t v : movie_ids) {
    ASSERT_GE(v, 0);
    ASSERT_LT(v, n_title);
  }
}

TEST(ImdbTest, YearCompanyCorrelationInjected) {
  // Average #companies for post-2000 titles should exceed pre-1950 titles.
  const db::Table* mc = TestDb().FindTable("movie_companies");
  const db::Table* title = TestDb().FindTable("title");
  std::vector<int> counts(title->num_rows(), 0);
  for (int64_t m : mc->column(1).ints) ++counts[static_cast<size_t>(m)];
  double new_sum = 0, new_n = 0, old_sum = 0, old_n = 0;
  for (size_t i = 0; i < title->num_rows(); ++i) {
    const int64_t year = title->column(3).ints[i];
    if (year >= 2000) {
      new_sum += counts[i];
      new_n += 1;
    } else if (year < 1950) {
      old_sum += counts[i];
      old_n += 1;
    }
  }
  ASSERT_GT(new_n, 0);
  ASSERT_GT(old_n, 0);
  EXPECT_GT(new_sum / new_n, old_sum / old_n);
}

TEST(ImdbTest, DeterministicAcrossSeeds) {
  db::Database a = MakeImdbDatabase(11, 0.02);
  db::Database b = MakeImdbDatabase(11, 0.02);
  const db::Table* ta = a.FindTable("title");
  const db::Table* tb = b.FindTable("title");
  ASSERT_EQ(ta->num_rows(), tb->num_rows());
  EXPECT_EQ(ta->column(3).ints, tb->column(3).ints);
}

TEST(QueryGenTest, SyntheticProperties) {
  ImdbQueryGenerator gen(TestDb(), 5);
  auto queries = gen.Synthetic(30, 2);
  ASSERT_EQ(queries.size(), 30u);
  std::set<std::string> unique;
  for (const auto& q : queries) {
    unique.insert(q.sql);
    EXPECT_GE(q.true_card, 1.0);
    EXPECT_GT(q.true_cost, 0.0);
    EXPECT_LE(q.num_joins, 2);
    // SQL text round-trips through the parser.
    auto reparsed = sql::Parse(q.sql);
    EXPECT_TRUE(reparsed.ok()) << q.sql;
    // No string predicates in the numeric workload.
    for (const auto& p : q.stmt.predicates) {
      if (!p.IsJoin()) {
        for (const auto& v : p.values) {
          EXPECT_NE(v.kind, sql::Literal::Kind::kString) << q.sql;
        }
      }
    }
  }
  EXPECT_EQ(unique.size(), queries.size());  // paper: unique queries
}

TEST(QueryGenTest, ScaleJoinBuckets) {
  ImdbQueryGenerator gen(TestDb(), 6);
  auto queries = gen.Scale(3, 4);
  ASSERT_EQ(queries.size(), 15u);
  for (int j = 0; j <= 4; ++j) {
    int count = 0;
    for (const auto& q : queries) count += q.num_joins == j ? 1 : 0;
    EXPECT_EQ(count, 3) << "joins=" << j;
  }
}

TEST(QueryGenTest, JobLightDistribution) {
  ImdbQueryGenerator gen(TestDb(), 7);
  auto queries = gen.JobLight();
  ASSERT_EQ(queries.size(), 70u);
  std::map<int, int> dist;
  for (const auto& q : queries) ++dist[q.num_joins];
  EXPECT_EQ(dist[1], 3);
  EXPECT_EQ(dist[2], 32);
  EXPECT_EQ(dist[3], 23);
  EXPECT_EQ(dist[4], 12);
}

TEST(QueryGenTest, JobStringsHaveStringPredicates) {
  ImdbQueryGenerator gen(TestDb(), 8);
  auto queries = gen.JobStrings(10, 4, 6);
  ASSERT_EQ(queries.size(), 10u);
  for (const auto& q : queries) {
    EXPECT_GE(q.num_joins, 4);
    bool has_string = false;
    for (const auto& p : q.stmt.predicates) {
      for (const auto& v : p.values) {
        if (v.kind == sql::Literal::Kind::kString) has_string = true;
      }
    }
    EXPECT_TRUE(has_string) << q.sql;
    EXPECT_GE(q.true_card, 1.0);
  }
}

TEST(QueryGenTest, GroundTruthMatchesReexecution) {
  ImdbQueryGenerator gen(TestDb(), 9);
  db::Executor exec(TestDb());
  auto queries = gen.Synthetic(10, 2);
  for (const auto& q : queries) {
    auto res = exec.Execute(sql::Parse(q.sql).value());
    ASSERT_TRUE(res.ok());
    EXPECT_DOUBLE_EQ(res.value().cardinality, q.true_card) << q.sql;
  }
}

}  // namespace
}  // namespace preqr::workload
