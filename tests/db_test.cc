#include <gtest/gtest.h>

#include "db/database.h"
#include "db/executor.h"
#include "db/stats.h"
#include "sql/parser.h"

namespace preqr::db {
namespace {

// A small two-table database with a known FK relationship:
//   title(id PK, production_year, kind_id)           -- 10 rows
//   movie_companies(id PK, movie_id FK->title.id, company_id) -- 20 rows
Database MakeDb() {
  Database db;
  {
    sql::TableDef def;
    def.name = "title";
    def.columns = {{"id", sql::ColumnType::kInt, true},
                   {"production_year", sql::ColumnType::kInt, false},
                   {"kind_id", sql::ColumnType::kInt, false},
                   {"name", sql::ColumnType::kString, false}};
    Table& t = db.AddTable(def);
    for (int i = 0; i < 10; ++i) {
      t.column(0).ints.push_back(i);
      t.column(1).ints.push_back(2000 + i);        // years 2000..2009
      t.column(2).ints.push_back(i % 3);           // kinds 0,1,2
      t.column(3).strings.push_back(i % 2 == 0 ? "even_movie" : "odd_movie");
    }
    t.Seal();
  }
  {
    sql::TableDef def;
    def.name = "movie_companies";
    def.columns = {{"id", sql::ColumnType::kInt, true},
                   {"movie_id", sql::ColumnType::kInt, false},
                   {"company_id", sql::ColumnType::kInt, false}};
    Table& t = db.AddTable(def);
    for (int i = 0; i < 20; ++i) {
      t.column(0).ints.push_back(i);
      t.column(1).ints.push_back(i / 2);  // two companies per movie
      t.column(2).ints.push_back(i % 5);
    }
    t.Seal();
  }
  EXPECT_TRUE(
      db.catalog()
          .AddForeignKey({"movie_companies", "movie_id", "title", "id"})
          .ok());
  return db;
}

double Card(const Database& db, const std::string& sql) {
  auto stmt = sql::Parse(sql);
  EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
  Executor exec(db);
  auto res = exec.Execute(stmt.value());
  EXPECT_TRUE(res.ok()) << res.status().ToString();
  return res.value().cardinality;
}

TEST(ExecutorTest, SingleTableScanAll) {
  Database db = MakeDb();
  EXPECT_DOUBLE_EQ(Card(db, "SELECT COUNT(*) FROM title"), 10);
}

TEST(ExecutorTest, SingleTableRangeFilter) {
  Database db = MakeDb();
  EXPECT_DOUBLE_EQ(
      Card(db, "SELECT COUNT(*) FROM title t WHERE t.production_year > 2005"),
      4);  // 2006..2009
  EXPECT_DOUBLE_EQ(
      Card(db, "SELECT COUNT(*) FROM title WHERE production_year <= 2001"), 2);
}

TEST(ExecutorTest, EqualityAndInFilters) {
  Database db = MakeDb();
  EXPECT_DOUBLE_EQ(Card(db, "SELECT COUNT(*) FROM title WHERE kind_id = 0"), 4);
  EXPECT_DOUBLE_EQ(
      Card(db, "SELECT COUNT(*) FROM title WHERE kind_id IN (0, 2)"), 7);
}

TEST(ExecutorTest, BetweenFilter) {
  Database db = MakeDb();
  EXPECT_DOUBLE_EQ(
      Card(db,
           "SELECT COUNT(*) FROM title WHERE production_year BETWEEN 2002 AND "
           "2004"),
      3);
}

TEST(ExecutorTest, StringEqualityAndLike) {
  Database db = MakeDb();
  EXPECT_DOUBLE_EQ(
      Card(db, "SELECT COUNT(*) FROM title WHERE name = 'even_movie'"), 5);
  EXPECT_DOUBLE_EQ(
      Card(db, "SELECT COUNT(*) FROM title WHERE name LIKE '%odd%'"), 5);
  EXPECT_DOUBLE_EQ(
      Card(db, "SELECT COUNT(*) FROM title WHERE name LIKE 'even%'"), 5);
  EXPECT_DOUBLE_EQ(
      Card(db, "SELECT COUNT(*) FROM title WHERE name LIKE 'nope%'"), 0);
}

TEST(ExecutorTest, TwoWayFkJoin) {
  Database db = MakeDb();
  // Every mc row matches exactly one title: 20 join rows.
  EXPECT_DOUBLE_EQ(
      Card(db,
           "SELECT COUNT(*) FROM title t, movie_companies mc WHERE t.id = "
           "mc.movie_id"),
      20);
}

TEST(ExecutorTest, JoinWithFilters) {
  Database db = MakeDb();
  // Titles with year > 2005: ids 6..9, each with 2 companies -> 8.
  EXPECT_DOUBLE_EQ(
      Card(db,
           "SELECT COUNT(*) FROM title t, movie_companies mc WHERE t.id = "
           "mc.movie_id AND t.production_year > 2005"),
      8);
  // Additional filter on mc side: company_id = 0 appears for mc.id in
  // {0,5,10,15} -> movie_ids {0,2,5,7}; intersect year>2005 -> {7} -> 1 row.
  EXPECT_DOUBLE_EQ(
      Card(db,
           "SELECT COUNT(*) FROM title t, movie_companies mc WHERE t.id = "
           "mc.movie_id AND t.production_year > 2005 AND mc.company_id = 0"),
      1);
}

TEST(ExecutorTest, JoinMatchesBruteForce) {
  Database db = MakeDb();
  const Table* title = db.FindTable("title");
  const Table* mc = db.FindTable("movie_companies");
  // Brute force count for year >= 2003 AND company_id IN (1,2).
  double expected = 0;
  for (size_t i = 0; i < title->num_rows(); ++i) {
    if (title->column(1).ints[i] < 2003) continue;
    for (size_t j = 0; j < mc->num_rows(); ++j) {
      if (mc->column(1).ints[j] != title->column(0).ints[i]) continue;
      const int64_t cid = mc->column(2).ints[j];
      if (cid == 1 || cid == 2) expected += 1;
    }
  }
  EXPECT_DOUBLE_EQ(
      Card(db,
           "SELECT COUNT(*) FROM title t, movie_companies mc WHERE t.id = "
           "mc.movie_id AND t.production_year >= 2003 AND mc.company_id IN "
           "(1,2)"),
      expected);
}

TEST(ExecutorTest, InSubquery) {
  Database db = MakeDb();
  // Subquery: movie ids with company_id = 0 -> {0,2,5,7}; titles among them
  // with year <= 2005 -> {0,2,5} -> 3.
  EXPECT_DOUBLE_EQ(
      Card(db,
           "SELECT COUNT(*) FROM title WHERE id IN (SELECT movie_id FROM "
           "movie_companies WHERE company_id = 0) AND production_year <= "
           "2005"),
      3);
}

TEST(ExecutorTest, UnionDeduplicatesRootRows) {
  Database db = MakeDb();
  auto stmt = sql::Parse(
      "SELECT id FROM title WHERE kind_id = 0 UNION "
      "SELECT id FROM title WHERE production_year < 2002");
  ASSERT_TRUE(stmt.ok());
  Executor exec(db);
  auto res = exec.Execute(stmt.value(), /*collect_root_rows=*/true);
  ASSERT_TRUE(res.ok());
  // kind 0: {0,3,6,9}; year<2002: {0,1}; union -> 5 distinct.
  EXPECT_DOUBLE_EQ(res.value().cardinality, 5);
  EXPECT_EQ(res.value().root_row_ids.size(), 5u);
}

TEST(ExecutorTest, RootRowIdsMatchFilter) {
  Database db = MakeDb();
  auto stmt = sql::Parse("SELECT id FROM title WHERE kind_id = 1");
  ASSERT_TRUE(stmt.ok());
  Executor exec(db);
  auto res = exec.Execute(stmt.value(), true);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.value().root_row_ids, (std::vector<int>{1, 4, 7}));
}

TEST(ExecutorTest, CostGrowsWithWork) {
  Database db = MakeDb();
  Executor exec(db);
  auto single = exec.Execute(sql::Parse("SELECT COUNT(*) FROM title").value());
  auto join = exec.Execute(
      sql::Parse("SELECT COUNT(*) FROM title t, movie_companies mc WHERE "
                 "t.id = mc.movie_id")
          .value());
  ASSERT_TRUE(single.ok());
  ASSERT_TRUE(join.ok());
  EXPECT_GT(join.value().cost, single.value().cost);
}

TEST(ExecutorTest, ErrorsOnUnknownTable) {
  Database db = MakeDb();
  Executor exec(db);
  auto res = exec.Execute(sql::Parse("SELECT COUNT(*) FROM nope").value());
  EXPECT_FALSE(res.ok());
}

TEST(ExecutorTest, ErrorsOnDisconnectedJoin) {
  Database db = MakeDb();
  Executor exec(db);
  // Two tables, no join predicate: not a tree.
  auto res = exec.Execute(
      sql::Parse("SELECT COUNT(*) FROM title t, movie_companies mc").value());
  EXPECT_FALSE(res.ok());
}

TEST(ExecutorTest, LikeMatcher) {
  EXPECT_TRUE(Executor::LikeMatch("hello", "h%o"));
  EXPECT_TRUE(Executor::LikeMatch("hello", "%ell%"));
  EXPECT_TRUE(Executor::LikeMatch("hello", "_ello"));
  EXPECT_FALSE(Executor::LikeMatch("hello", "h_o"));
  EXPECT_TRUE(Executor::LikeMatch("", "%"));
  EXPECT_FALSE(Executor::LikeMatch("abc", ""));
  EXPECT_TRUE(Executor::LikeMatch("abc", "abc"));
  EXPECT_TRUE(Executor::LikeMatch("a%c-literal", "a%l"));
}

TEST(ExecutorTest, LikeMatcherEdgeCases) {
  // Empty pattern matches only empty text.
  EXPECT_TRUE(Executor::LikeMatch("", ""));
  EXPECT_FALSE(Executor::LikeMatch("a", ""));
  // Runs of % collapse; % alone matches anything, including empty text.
  EXPECT_TRUE(Executor::LikeMatch("", "%%"));
  EXPECT_TRUE(Executor::LikeMatch("anything", "%%%"));
  // _ consumes exactly one byte: empty text never matches it, and a
  // two-byte UTF-8 character needs two underscores (byte semantics).
  EXPECT_FALSE(Executor::LikeMatch("", "_"));
  EXPECT_FALSE(Executor::LikeMatch("", "_%"));
  EXPECT_FALSE(Executor::LikeMatch("\xc3\xa9", "_"));  // U+00E9, 2 bytes
  EXPECT_TRUE(Executor::LikeMatch("\xc3\xa9", "__"));
  EXPECT_TRUE(Executor::LikeMatch("\xc3\xa9", "%"));
  // Backtracking across repeated prefixes.
  EXPECT_TRUE(Executor::LikeMatch("aaab", "%ab"));
  EXPECT_FALSE(Executor::LikeMatch("aaa", "%ab"));
  EXPECT_TRUE(Executor::LikeMatch("abcabc", "%abc"));
  // Pattern longer than text.
  EXPECT_FALSE(Executor::LikeMatch("ab", "abc"));
  EXPECT_FALSE(Executor::LikeMatch("ab", "ab_"));
}

TEST(ExecutorTest, PredicateBoundaryNumerics) {
  Database db = MakeDb();
  // BETWEEN is inclusive on both ends; reversed bounds select nothing.
  EXPECT_DOUBLE_EQ(Card(db,
                        "SELECT COUNT(*) FROM title WHERE production_year "
                        "BETWEEN 2000 AND 2000"),
                   1);
  EXPECT_DOUBLE_EQ(Card(db,
                        "SELECT COUNT(*) FROM title WHERE production_year "
                        "BETWEEN 2005 AND 2001"),
                   0);
  // Strict vs inclusive comparisons at the column extremes.
  EXPECT_DOUBLE_EQ(
      Card(db, "SELECT COUNT(*) FROM title WHERE production_year >= 2009"),
      1);
  EXPECT_DOUBLE_EQ(
      Card(db, "SELECT COUNT(*) FROM title WHERE production_year > 2009"), 0);
  EXPECT_DOUBLE_EQ(
      Card(db, "SELECT COUNT(*) FROM title WHERE production_year < 2000"), 0);
  EXPECT_DOUBLE_EQ(
      Card(db, "SELECT COUNT(*) FROM title WHERE production_year <= 2000"),
      1);
  // Single-element and all-miss IN lists; equality misses.
  EXPECT_DOUBLE_EQ(Card(db, "SELECT COUNT(*) FROM title WHERE kind_id IN (2)"),
                   3);
  EXPECT_DOUBLE_EQ(
      Card(db, "SELECT COUNT(*) FROM title WHERE kind_id IN (7, 9)"), 0);
  EXPECT_DOUBLE_EQ(Card(db, "SELECT COUNT(*) FROM title WHERE kind_id = 42"),
                   0);
}

TEST(ExecutorTest, PredicatePassesDirect) {
  Database db = MakeDb();
  auto stmt =
      sql::Parse("SELECT COUNT(*) FROM title WHERE production_year >= 2005");
  ASSERT_TRUE(stmt.ok());
  const sql::Predicate& pred = stmt.value().predicates[0];
  const Table& title = *db.FindTable("title");
  // production_year is column 1 and holds 2000 + row.
  EXPECT_FALSE(PredicatePasses(title, 1, pred, 4));  // 2004
  EXPECT_TRUE(PredicatePasses(title, 1, pred, 5));   // 2005, inclusive
  EXPECT_TRUE(PredicatePasses(title, 1, pred, 9));   // 2009
}

// --- Stats --------------------------------------------------------------

TEST(StatsTest, NumericColumnBasics) {
  Database db = MakeDb();
  StatsCollector collector(4, 4);
  TableStats stats = collector.Analyze(*db.FindTable("title"));
  const ColumnStats& year = stats.columns[1];
  EXPECT_DOUBLE_EQ(year.min, 2000);
  EXPECT_DOUBLE_EQ(year.max, 2009);
  EXPECT_EQ(year.num_distinct, 10);
  EXPECT_EQ(stats.row_count, 10u);
}

TEST(StatsTest, RangeSelectivityReasonable) {
  Database db = MakeDb();
  StatsCollector collector(4, 4);
  TableStats stats = collector.Analyze(*db.FindTable("title"));
  const ColumnStats& year = stats.columns[1];
  // True selectivity of year > 2005 is 0.4.
  const double sel =
      year.EstimateNumericSelectivity(sql::CompareOp::kGt, 2005);
  EXPECT_GT(sel, 0.15);
  EXPECT_LT(sel, 0.65);
}

TEST(StatsTest, EqualitySelectivityUsesDistinct) {
  Database db = MakeDb();
  StatsCollector collector(4, 2);
  TableStats stats = collector.Analyze(*db.FindTable("movie_companies"));
  const ColumnStats& cid = stats.columns[2];  // 5 distinct, uniform
  const double sel = cid.EstimateEqualitySelectivity(3);
  EXPECT_NEAR(sel, 0.2, 0.1);
}

TEST(StatsTest, StringMcv) {
  Database db = MakeDb();
  StatsCollector collector(4, 4);
  TableStats stats = collector.Analyze(*db.FindTable("title"));
  const ColumnStats& name = stats.columns[3];
  EXPECT_EQ(name.num_distinct, 2);
  EXPECT_NEAR(name.EstimateStringEquality("even_movie"), 0.5, 1e-9);
}

TEST(StatsTest, LikeSelectivityHeuristic) {
  const double broad = ColumnStats::EstimateLikeSelectivity("%a%");
  const double narrow = ColumnStats::EstimateLikeSelectivity("%abcdef%");
  EXPECT_GT(broad, narrow);
  EXPECT_LE(broad, 0.5);
  EXPECT_GE(narrow, 1e-4);
}

TEST(StatsTest, EmptyColumn) {
  Column c;
  c.type = sql::ColumnType::kInt;
  StatsCollector collector;
  sql::TableDef def;
  def.name = "empty";
  def.columns = {{"x", sql::ColumnType::kInt, false}};
  Table t(def);
  t.Seal();
  TableStats stats = collector.Analyze(t);
  EXPECT_EQ(stats.row_count, 0u);
}

// --- BitmapSampler --------------------------------------------------------

TEST(BitmapSamplerTest, AllOnesWithoutPredicates) {
  Database db = MakeDb();
  BitmapSampler sampler(db, 16);
  auto stmt = sql::Parse("SELECT COUNT(*) FROM title t").value();
  auto bm = sampler.Bitmap("title", stmt);
  ASSERT_EQ(bm.size(), 16u);
  for (float b : bm) EXPECT_EQ(b, 1.0f);
}

TEST(BitmapSamplerTest, SelectiveFilterReducesOnes) {
  Database db = MakeDb();
  BitmapSampler sampler(db, 64);
  auto all = sampler.Bitmap(
      "title", sql::Parse("SELECT COUNT(*) FROM title t").value());
  auto filtered = sampler.Bitmap(
      "title",
      sql::Parse("SELECT COUNT(*) FROM title t WHERE t.kind_id = 0").value());
  float sum_all = 0, sum_f = 0;
  for (float b : all) sum_all += b;
  for (float b : filtered) sum_f += b;
  EXPECT_LT(sum_f, sum_all);
  EXPECT_GT(sum_f, 0);  // kind 0 is 40% of rows; 64 samples won't all miss
}

TEST(BitmapSamplerTest, IgnoresOtherTablesPredicates) {
  Database db = MakeDb();
  BitmapSampler sampler(db, 32);
  auto stmt = sql::Parse(
                  "SELECT COUNT(*) FROM title t, movie_companies mc WHERE "
                  "t.id = mc.movie_id AND mc.company_id = 0")
                  .value();
  auto bm = sampler.Bitmap("title", stmt);
  for (float b : bm) EXPECT_EQ(b, 1.0f);  // filter is on mc, not title
}

TEST(BitmapSamplerTest, DeterministicAcrossInstances) {
  Database db = MakeDb();
  BitmapSampler s1(db, 32, 99), s2(db, 32, 99);
  auto stmt =
      sql::Parse("SELECT COUNT(*) FROM title WHERE kind_id = 1").value();
  EXPECT_EQ(s1.Bitmap("title", stmt), s2.Bitmap("title", stmt));
}

}  // namespace
}  // namespace preqr::db
