#include <gtest/gtest.h>

#include "automaton/template_extractor.h"
#include "core/pretrain.h"
#include "db/stats.h"
#include "nn/serialize.h"
#include "schema/schema_graph.h"
#include "tasks/preqr_encoder.h"
#include "workload/imdb.h"
#include "workload/query_gen.h"

namespace preqr::core {
namespace {

// One shared environment for all PreQR model tests (construction is the
// expensive part).
struct Env {
  db::Database imdb = workload::MakeImdbDatabase(3, 0.02);
  std::vector<db::TableStats> stats;
  std::unique_ptr<text::SqlTokenizer> tokenizer;
  automaton::Automaton fa;
  schema::SchemaGraph graph;
  std::vector<std::string> corpus;

  Env() {
    db::StatsCollector collector;
    stats = collector.AnalyzeAll(imdb);
    tokenizer = std::make_unique<text::SqlTokenizer>(imdb.catalog(), stats, 8);
    workload::ImdbQueryGenerator gen(imdb, 1);
    for (const auto& q : gen.Synthetic(40, 2)) corpus.push_back(q.sql);
    automaton::TemplateExtractor extractor(0.2);
    fa = extractor.BuildAutomaton(corpus);
    graph = schema::SchemaGraph::Build(imdb.catalog());
  }
  PreqrModel MakeModel(PreqrConfig config = SmallConfig()) {
    return PreqrModel(config, tokenizer.get(), &fa, &graph, 7);
  }
  static PreqrConfig SmallConfig() {
    PreqrConfig config;
    config.d_model = 32;
    config.ffn_hidden = 64;
    return config;
  }
};

Env& E() {
  static Env* env = new Env();
  return *env;
}

TEST(PreqrModelTest, SchemaNodesShape) {
  PreqrModel model = E().MakeModel();
  nn::Tensor schema = model.EncodeSchemaNodes(false);
  EXPECT_EQ(schema.dim(0), E().graph.num_nodes());
  EXPECT_EQ(schema.dim(1), 32);
  EXPECT_FALSE(schema.requires_grad());
  nn::Tensor schema_grad = model.EncodeSchemaNodes(true);
  EXPECT_TRUE(schema_grad.requires_grad());
}

TEST(PreqrModelTest, ForwardShapes) {
  PreqrModel model = E().MakeModel();
  auto tokenized = E().tokenizer->Tokenize(E().corpus[0]);
  ASSERT_TRUE(tokenized.ok());
  nn::Tensor schema = model.EncodeSchemaNodes(false);
  auto enc = model.Forward(tokenized.value(), schema);
  EXPECT_EQ(enc.tokens.dim(0),
            static_cast<int>(tokenized.value().ids.size()));
  EXPECT_EQ(enc.tokens.dim(1), 32);
  EXPECT_EQ(enc.cls.dim(0), 1);
  nn::Tensor logits = model.MlmLogits(enc.tokens);
  EXPECT_EQ(logits.dim(1), model.vocab_size());
}

TEST(PreqrModelTest, AblationFlagsChangeOutputs) {
  PreqrConfig na = Env::SmallConfig();
  na.use_automaton = false;
  PreqrConfig nt = Env::SmallConfig();
  nt.use_schema = false;
  PreqrModel full = E().MakeModel();
  PreqrModel no_auto = E().MakeModel(na);
  PreqrModel no_trm = E().MakeModel(nt);
  auto tokenized = E().tokenizer->Tokenize(E().corpus[0]);
  ASSERT_TRUE(tokenized.ok());
  // The NT variant ignores schema nodes entirely.
  nn::Tensor schema = no_trm.EncodeSchemaNodes(false);
  auto enc = no_trm.Forward(tokenized.value(), nn::Tensor());
  EXPECT_EQ(enc.tokens.dim(1), 32);
  (void)schema;
  (void)full;
  (void)no_auto;
}

TEST(PreqrModelTest, PrefixPlusLastLayerMatchesFullForward) {
  PreqrModel model = E().MakeModel();
  model.set_train(false);
  auto tokenized = E().tokenizer->Tokenize(E().corpus[1]);
  ASSERT_TRUE(tokenized.ok());
  nn::Tensor schema = model.EncodeSchemaNodes(false);
  auto full = model.Forward(tokenized.value(), schema);
  nn::Tensor prefix = model.EncodePrefix(tokenized.value(), schema);
  auto split = model.LastLayer(prefix, schema);
  ASSERT_EQ(full.tokens.size(), split.tokens.size());
  for (nn::Index i = 0; i < full.tokens.size(); ++i) {
    EXPECT_NEAR(full.tokens.at(i), split.tokens.at(i), 1e-4f);
  }
}

TEST(PreqrModelTest, ParameterGroupsDisjoint) {
  PreqrModel model = E().MakeModel();
  const auto last = model.LastLayerParameters();
  const auto schema = model.SchemaParameters();
  const auto input = model.InputParameters();
  EXPECT_FALSE(last.empty());
  EXPECT_FALSE(schema.empty());
  EXPECT_FALSE(input.empty());
  for (const auto& a : last) {
    for (const auto& b : schema) EXPECT_NE(a.impl().get(), b.impl().get());
    for (const auto& b : input) EXPECT_NE(a.impl().get(), b.impl().get());
  }
}

TEST(PretrainerTest, LossDecreasesAndAccuracyRises) {
  PreqrModel model = E().MakeModel();
  Pretrainer::Options opt;
  opt.epochs = 3;
  Pretrainer trainer(model, opt);
  auto history = trainer.Train(E().corpus);
  ASSERT_EQ(history.size(), 3u);
  EXPECT_LT(history.back().mlm_loss, history.front().mlm_loss);
  EXPECT_GT(history.back().masked_accuracy, history.front().masked_accuracy);
}

TEST(PretrainerTest, EvaluateRuns) {
  PreqrModel model = E().MakeModel();
  Pretrainer::Options opt;
  opt.epochs = 1;
  Pretrainer trainer(model, opt);
  trainer.Train(E().corpus);
  auto stats = trainer.Evaluate(E().corpus);
  EXPECT_GT(stats.mlm_loss, 0.0);
}

TEST(PreqrModelTest, EncodeConvenience) {
  PreqrModel model = E().MakeModel();
  auto enc = model.Encode(E().corpus[0]);
  ASSERT_TRUE(enc.ok());
  EXPECT_EQ(enc.value().cls.dim(1), 32);
  EXPECT_FALSE(model.Encode("not a query !!").ok());
}

TEST(PreqrModelTest, SaveLoadRoundTrip) {
  PreqrModel a = E().MakeModel();
  PreqrModel b = E().MakeModel();
  const std::string path = testing::TempDir() + "/preqr_model.bin";
  ASSERT_TRUE(nn::SaveModule(a, path).ok());
  ASSERT_TRUE(nn::LoadModule(b, path).ok());
  auto ea = a.Encode(E().corpus[0]);
  auto eb = b.Encode(E().corpus[0]);
  ASSERT_TRUE(ea.ok());
  ASSERT_TRUE(eb.ok());
  for (nn::Index i = 0; i < ea.value().cls.size(); ++i) {
    EXPECT_FLOAT_EQ(ea.value().cls.at(i), eb.value().cls.at(i));
  }
  std::remove(path.c_str());
}

TEST(PreqrEncoderTest, ReadoutShapesAndCache) {
  PreqrModel model = E().MakeModel();
  tasks::PreqrEncoder encoder(&model);
  EXPECT_EQ(encoder.dim(), 5 * 32);
  EXPECT_EQ(encoder.sequence_dim(), 32);
  auto v1 = encoder.EncodeVector(E().corpus[0], false);
  EXPECT_EQ(v1.dim(1), encoder.dim());
  // Cached prefix: repeated encodings agree.
  auto v2 = encoder.EncodeVector(E().corpus[0], false);
  for (nn::Index i = 0; i < v1.size(); ++i) {
    EXPECT_FLOAT_EQ(v1.at(i), v2.at(i));
  }
  auto seq = encoder.EncodeSequence(E().corpus[0], false);
  EXPECT_EQ(seq.dim(1), 32);
  EXPECT_FALSE(encoder.TrainableParameters().empty());
}

}  // namespace
}  // namespace preqr::core
