#include <cstdio>

#include <gtest/gtest.h>

#include "nn/module.h"
#include "nn/optim.h"
#include "nn/serialize.h"

namespace preqr::nn {
namespace {

TEST(LinearTest, ShapesAndParams) {
  Rng rng(1);
  Linear lin(4, 3, rng);
  EXPECT_EQ(lin.NumParameters(), 4 * 3 + 3);
  Tensor x = Tensor::Randn({5, 4}, rng, 1.0f);
  Tensor y = lin.Forward(x);
  EXPECT_EQ(y.dim(0), 5);
  EXPECT_EQ(y.dim(1), 3);
}

TEST(LinearTest, NoBias) {
  Rng rng(1);
  Linear lin(4, 3, rng, /*bias=*/false);
  EXPECT_EQ(lin.NumParameters(), 12);
}

TEST(EmbeddingTest, LookupMatchesWeightRows) {
  Rng rng(2);
  Embedding emb(10, 4, rng);
  Tensor out = emb.Forward({3, 3, 7});
  EXPECT_EQ(out.dim(0), 3);
  for (int j = 0; j < 4; ++j) {
    EXPECT_FLOAT_EQ(out.at(j), emb.weight().at(3 * 4 + j));
    EXPECT_FLOAT_EQ(out.at(4 + j), emb.weight().at(3 * 4 + j));
    EXPECT_FLOAT_EQ(out.at(8 + j), emb.weight().at(7 * 4 + j));
  }
}

TEST(LayerNormTest, NormalizesRows) {
  LayerNorm ln(8);
  Rng rng(3);
  Tensor x = Tensor::Randn({4, 8}, rng, 3.0f);
  Tensor y = ln.Forward(x);
  for (int r = 0; r < 4; ++r) {
    float mean = 0.0f, var = 0.0f;
    for (int c = 0; c < 8; ++c) mean += y.at(r * 8 + c);
    mean /= 8.0f;
    for (int c = 0; c < 8; ++c) {
      const float d = y.at(r * 8 + c) - mean;
      var += d * d;
    }
    var /= 8.0f;
    EXPECT_NEAR(mean, 0.0f, 1e-4f);
    EXPECT_NEAR(var, 1.0f, 1e-2f);
  }
}

TEST(MultiHeadAttentionTest, OutputShapeSelfAttention) {
  Rng rng(4);
  MultiHeadAttention mha(16, 4, rng);
  Tensor x = Tensor::Randn({6, 16}, rng, 1.0f);
  Tensor y = mha.Forward(x, x);
  EXPECT_EQ(y.dim(0), 6);
  EXPECT_EQ(y.dim(1), 16);
}

TEST(MultiHeadAttentionTest, CrossAttentionDifferentLengths) {
  Rng rng(4);
  MultiHeadAttention mha(16, 2, rng);
  Tensor q = Tensor::Randn({3, 16}, rng, 1.0f);
  Tensor kv = Tensor::Randn({9, 16}, rng, 1.0f);
  Tensor y = mha.Forward(q, kv);
  EXPECT_EQ(y.dim(0), 3);
  EXPECT_EQ(y.dim(1), 16);
}

TEST(TransformerLayerTest, ShapePreserved) {
  Rng rng(5);
  TransformerEncoderLayer layer(16, 4, 32, rng);
  Tensor x = Tensor::Randn({7, 16}, rng, 1.0f);
  Tensor y = layer.Forward(x);
  EXPECT_EQ(y.shape(), x.shape());
}

TEST(BiLstmTest, Shapes) {
  Rng rng(6);
  BiLstm lstm(8, 5, rng);
  Tensor x = Tensor::Randn({4, 8}, rng, 1.0f);
  auto out = lstm.Forward(x);
  EXPECT_EQ(out.per_step.dim(0), 4);
  EXPECT_EQ(out.per_step.dim(1), 10);
  EXPECT_EQ(out.summary.dim(0), 1);
  EXPECT_EQ(out.summary.dim(1), 10);
}

TEST(BiLstmTest, SummaryMatchesEndStates) {
  Rng rng(6);
  BiLstm lstm(3, 4, rng);
  Tensor x = Tensor::Randn({5, 3}, rng, 1.0f);
  auto out = lstm.Forward(x);
  // summary = concat(fwd last step, rev first step). fwd last step is the
  // first half of per_step's last row; rev first step is the second half of
  // per_step's first row.
  for (int j = 0; j < 4; ++j) {
    EXPECT_FLOAT_EQ(out.summary.at(j), out.per_step.at(4 * 8 + j));
    EXPECT_FLOAT_EQ(out.summary.at(4 + j), out.per_step.at(0 * 8 + 4 + j));
  }
}

TEST(GruCellTest, StateShape) {
  Rng rng(7);
  GruCell gru(6, 5, rng);
  Tensor x = Tensor::Randn({1, 6}, rng, 1.0f);
  Tensor h = Tensor::Zeros({1, 5});
  Tensor h2 = gru.Forward(x, h);
  EXPECT_EQ(h2.dim(1), 5);
}

TEST(RgcnTest, ForwardAggregatesByRelation) {
  Rng rng(8);
  RgcnLayer rgcn(4, 4, 2, rng);
  Tensor h = Tensor::Randn({3, 4}, rng, 1.0f);
  std::vector<std::vector<Edge>> edges = {{{0, 1}, {1, 0}}, {{2, 0}}};
  std::vector<std::vector<float>> norms = {{1.0f, 1.0f}, {1.0f}};
  Tensor out = rgcn.Forward(h, edges, norms);
  EXPECT_EQ(out.dim(0), 3);
  EXPECT_EQ(out.dim(1), 4);
  for (Index i = 0; i < out.size(); ++i) EXPECT_GE(out.at(i), 0.0f);  // ReLU
}

TEST(AdamTest, ConvergesOnQuadratic) {
  // Minimize ||W x - y||^2 for a fixed x,y over W.
  Rng rng(9);
  Linear lin(3, 1, rng);
  Adam opt(lin.Parameters(), 5e-2f);
  Tensor x = Tensor::FromData({1, 3}, {1.0f, -2.0f, 0.5f});
  const std::vector<float> target = {3.0f};
  float last = 1e9f;
  for (int step = 0; step < 300; ++step) {
    opt.ZeroGrad();
    Tensor loss = MseLoss(lin.Forward(x), target);
    loss.Backward();
    opt.Step();
    last = loss.item();
  }
  EXPECT_LT(last, 1e-4f);
}

TEST(AdamTest, ClipsLargeGradients) {
  Tensor w = Tensor::FromData({1}, {0.0f}, true);
  Adam opt({w}, 1.0f, 0.9f, 0.999f, 1e-8f, /*clip_norm=*/1.0f);
  // Huge gradient.
  w.grad_data()[0] = 1e6f;
  opt.Step();
  // Step magnitude is bounded by lr regardless of raw gradient.
  EXPECT_LE(std::abs(w.at(0)), 10.0f);
}

TEST(SgdTest, MovesAgainstGradient) {
  Tensor w = Tensor::FromData({1}, {1.0f}, true);
  Sgd opt({w}, 0.1f);
  w.grad_data()[0] = 2.0f;
  opt.Step();
  EXPECT_FLOAT_EQ(w.at(0), 0.8f);
}

TEST(SerializeTest, SaveLoadRoundTrip) {
  Rng rng(10);
  TransformerEncoderLayer a(8, 2, 16, rng);
  TransformerEncoderLayer b(8, 2, 16, rng);  // different init
  const std::string path = testing::TempDir() + "/preqr_params.bin";
  ASSERT_TRUE(SaveModule(a, path).ok());
  ASSERT_TRUE(LoadModule(b, path).ok());
  auto pa = a.Parameters();
  auto pb = b.Parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    for (Index j = 0; j < pa[i].size(); ++j) {
      EXPECT_FLOAT_EQ(pa[i].at(j), pb[i].at(j));
    }
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, LoadRejectsWrongArchitecture) {
  Rng rng(11);
  Linear a(4, 4, rng);
  Linear b(4, 5, rng);
  const std::string path = testing::TempDir() + "/preqr_bad.bin";
  ASSERT_TRUE(SaveModule(a, path).ok());
  EXPECT_FALSE(LoadModule(b, path).ok());
  std::remove(path.c_str());
}

TEST(SerializeTest, LoadMissingFileFails) {
  Rng rng(12);
  Linear a(2, 2, rng);
  EXPECT_FALSE(LoadModule(a, "/nonexistent/path.bin").ok());
}

TEST(ModuleTest, NamedParametersIncludeChildren) {
  Rng rng(13);
  TransformerEncoderLayer layer(8, 2, 16, rng);
  bool found_attn = false, found_ffn = false;
  for (const auto& [name, t] : layer.NamedParameters()) {
    if (name.rfind("attn.", 0) == 0) found_attn = true;
    if (name.rfind("ffn.", 0) == 0) found_ffn = true;
  }
  EXPECT_TRUE(found_attn);
  EXPECT_TRUE(found_ffn);
}

TEST(ModuleTest, SetTrainPropagatesToChildren) {
  // set_train must reach every registered descendant, not just the root —
  // otherwise nested Dropout layers keep dropping during inference.
  struct Leaf : Module {};
  struct Mid : Module {
    Leaf leaf;
    Mid() { RegisterChild("leaf", &leaf); }
  };
  struct Root : Module {
    Mid mid;
    Root() { RegisterChild("mid", &mid); }
  };
  Root root;
  root.set_train(false);
  EXPECT_FALSE(root.train_mode());
  EXPECT_FALSE(root.mid.train_mode());
  EXPECT_FALSE(root.mid.leaf.train_mode());
  root.set_train(true);
  EXPECT_TRUE(root.train_mode());
  EXPECT_TRUE(root.mid.train_mode());
  EXPECT_TRUE(root.mid.leaf.train_mode());
}

TEST(ModuleTest, TrainingEndToEndThroughTransformer) {
  // Overfit a transformer layer + head to map a fixed input to a target.
  Rng rng(14);
  TransformerEncoderLayer layer(8, 2, 16, rng);
  Linear head(8, 1, rng);
  std::vector<Tensor> params = layer.Parameters();
  auto hp = head.Parameters();
  params.insert(params.end(), hp.begin(), hp.end());
  Adam opt(params, 1e-2f);
  Tensor x = Tensor::Randn({4, 8}, rng, 1.0f);
  const std::vector<float> target = {1.0f};
  float first = -1, last = -1;
  for (int step = 0; step < 200; ++step) {
    opt.ZeroGrad();
    Tensor enc = layer.Forward(x);
    Tensor pooled = Reshape(MeanRows(enc), {1, 8});
    Tensor loss = MseLoss(head.Forward(pooled), target);
    loss.Backward();
    opt.Step();
    if (step == 0) first = loss.item();
    last = loss.item();
  }
  EXPECT_LT(last, first * 0.05f);
}

}  // namespace
}  // namespace preqr::nn
