#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "nn/buffer_pool.h"
#include "nn/tensor.h"

namespace preqr::nn {
namespace {

// Stats are process-wide and other tests allocate tensors, so every
// assertion here works on deltas from a snapshot.

TEST(BufferPoolTest, AcquireZeroFillsAndReusesStorage) {
  BufferPool& pool = BufferPool::ThreadLocal();
  pool.Clear();
  const BufferPoolStats s0 = BufferPool::TotalStats();

  std::vector<float> buf = pool.Acquire(100);
  ASSERT_EQ(buf.size(), 100u);
  for (float v : buf) EXPECT_EQ(v, 0.0f);
  EXPECT_EQ(BufferPool::TotalStats().allocs, s0.allocs + 1);

  // Dirty the buffer, return it, and take it back: same storage, zeroed.
  std::fill(buf.begin(), buf.end(), 3.5f);
  const float* storage = buf.data();
  pool.Release(std::move(buf));
  const BufferPoolStats s1 = BufferPool::TotalStats();
  EXPECT_EQ(s1.releases, s0.releases + 1);
  EXPECT_GT(s1.live_bytes, s0.live_bytes);

  std::vector<float> again = pool.Acquire(100);
  ASSERT_EQ(again.size(), 100u);
  EXPECT_EQ(again.data(), storage);
  for (float v : again) EXPECT_EQ(v, 0.0f);
  const BufferPoolStats s2 = BufferPool::TotalStats();
  EXPECT_EQ(s2.reuses, s1.reuses + 1);
  EXPECT_EQ(s2.live_bytes, s0.live_bytes);
  pool.Release(std::move(again));
  pool.Clear();
}

TEST(BufferPoolTest, BucketServesAnySizeItCovers) {
  BufferPool& pool = BufferPool::ThreadLocal();
  pool.Clear();
  // 100 and 65 both round up to the 128-capacity bucket.
  std::vector<float> buf = pool.Acquire(100);
  pool.Release(std::move(buf));
  const BufferPoolStats before = BufferPool::TotalStats();
  std::vector<float> smaller = pool.Acquire(65);
  ASSERT_EQ(smaller.size(), 65u);
  for (float v : smaller) EXPECT_EQ(v, 0.0f);
  EXPECT_EQ(BufferPool::TotalStats().reuses, before.reuses + 1);
  pool.Release(std::move(smaller));
  pool.Clear();
}

TEST(BufferPoolTest, DisabledBypassesRecycling) {
  BufferPool& pool = BufferPool::ThreadLocal();
  pool.Clear();
  std::vector<float> parked = pool.Acquire(64);
  pool.Release(std::move(parked));  // one buffer parked

  BufferPool::set_enabled(false);
  const BufferPoolStats s0 = BufferPool::TotalStats();
  std::vector<float> buf = pool.Acquire(64);  // must NOT pop the parked one
  const BufferPoolStats s1 = BufferPool::TotalStats();
  EXPECT_EQ(s1.allocs, s0.allocs + 1);
  EXPECT_EQ(s1.reuses, s0.reuses);
  pool.Release(std::move(buf));  // dropped, not parked
  const BufferPoolStats s2 = BufferPool::TotalStats();
  EXPECT_EQ(s2.discards, s1.discards + 1);
  EXPECT_EQ(s2.releases, s1.releases);
  BufferPool::set_enabled(true);
  pool.Clear();
}

TEST(BufferPoolTest, ClearReturnsParkedBytes) {
  BufferPool& pool = BufferPool::ThreadLocal();
  pool.Clear();
  const BufferPoolStats s0 = BufferPool::TotalStats();
  pool.Release(pool.Acquire(256));
  pool.Release(pool.Acquire(1024));
  EXPECT_GT(BufferPool::TotalStats().live_bytes, s0.live_bytes);
  pool.Clear();
  EXPECT_EQ(BufferPool::TotalStats().live_bytes, s0.live_bytes);
}

TEST(BufferPoolTest, ZeroSizedAcquireIsEmpty) {
  BufferPool& pool = BufferPool::ThreadLocal();
  std::vector<float> buf = pool.Acquire(0);
  EXPECT_TRUE(buf.empty());
  pool.Release(std::move(buf));  // no-op, no crash
}

TEST(BufferPoolTest, NoGradTensorsDrawFromPool) {
  BufferPool::ThreadLocal().Clear();
  const BufferPoolStats s0 = BufferPool::TotalStats();
  {
    NoGradGuard guard;
    Tensor t = Tensor::Zeros({8, 8});
    EXPECT_TRUE(t.impl()->pooled);
  }  // impl dies -> storage parked
  const BufferPoolStats s1 = BufferPool::TotalStats();
  EXPECT_EQ(s1.releases, s0.releases + 1);
  {
    NoGradGuard guard;
    Tensor t = Tensor::Zeros({8, 8});
    EXPECT_TRUE(t.impl()->pooled);
    for (float v : t.vec()) EXPECT_EQ(v, 0.0f);
  }
  EXPECT_EQ(BufferPool::TotalStats().reuses, s1.reuses + 1);

  // Grad-mode allocations never touch the pool (optimizer state and grads
  // must not alias recycled storage).
  Tensor trainable = Tensor::Zeros({8, 8}, /*requires_grad=*/true);
  EXPECT_FALSE(trainable.impl()->pooled);
  Tensor plain = Tensor::Zeros({8, 8});
  EXPECT_FALSE(plain.impl()->pooled);
  BufferPool::ThreadLocal().Clear();
}

}  // namespace
}  // namespace preqr::nn
