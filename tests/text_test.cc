#include <gtest/gtest.h>

#include "db/stats.h"
#include "text/tokenizer.h"
#include "text/vocab.h"
#include "workload/imdb.h"

namespace preqr::text {
namespace {

TEST(VocabTest, SpecialsFirst) {
  Vocab v;
  EXPECT_EQ(v.Id("[PAD]"), Vocab::kPadId);
  EXPECT_EQ(v.Id("[UNK]"), Vocab::kUnkId);
  EXPECT_EQ(v.Id("[CLS]"), Vocab::kClsId);
  EXPECT_EQ(v.Id("[END]"), Vocab::kEndId);
  EXPECT_EQ(v.Id("[MASK]"), Vocab::kMaskId);
}

TEST(VocabTest, AddIdempotent) {
  Vocab v;
  const int a = v.Add("foo");
  EXPECT_EQ(v.Add("foo"), a);
  EXPECT_EQ(v.Id("foo"), a);
  EXPECT_EQ(v.Token(a), "foo");
}

TEST(VocabTest, UnknownMapsToUnk) {
  Vocab v;
  EXPECT_EQ(v.Id("never-added"), Vocab::kUnkId);
  EXPECT_FALSE(v.Contains("never-added"));
}

TEST(VocabTest, SaveLoadRoundTrip) {
  Vocab v;
  v.Add("alpha");
  v.Add("beta");
  const std::string path = testing::TempDir() + "/vocab.txt";
  ASSERT_TRUE(v.Save(path).ok());
  auto loaded = Vocab::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().size(), v.size());
  EXPECT_EQ(loaded.value().Id("beta"), v.Id("beta"));
  std::remove(path.c_str());
}

class TokenizerTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new db::Database(workload::MakeImdbDatabase(3, 0.02));
    db::StatsCollector collector;
    stats_ = new std::vector<db::TableStats>(collector.AnalyzeAll(*db_));
    tokenizer_ = new SqlTokenizer(db_->catalog(), *stats_, 8);
  }
  static db::Database* db_;
  static std::vector<db::TableStats>* stats_;
  static SqlTokenizer* tokenizer_;
};
db::Database* TokenizerTest::db_ = nullptr;
std::vector<db::TableStats>* TokenizerTest::stats_ = nullptr;
SqlTokenizer* TokenizerTest::tokenizer_ = nullptr;

TEST_F(TokenizerTest, ClsAndEndAnchors) {
  auto t = tokenizer_->Tokenize("SELECT COUNT(*) FROM title");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t.value().tokens.front(), "[CLS]");
  EXPECT_EQ(t.value().tokens.back(), "[END]");
  EXPECT_EQ(t.value().ids.front(), Vocab::kClsId);
  EXPECT_EQ(t.value().ids.back(), Vocab::kEndId);
}

TEST_F(TokenizerTest, AlignedSequences) {
  auto t = tokenizer_->Tokenize(
      "SELECT COUNT(*) FROM title t WHERE t.production_year > 2000");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t.value().tokens.size(), t.value().ids.size());
  EXPECT_EQ(t.value().tokens.size(), t.value().symbols.size());
  EXPECT_EQ(t.value().tokens.size(), t.value().quantiles.size());
}

TEST_F(TokenizerTest, AliasResolvesToTableToken) {
  auto t = tokenizer_->Tokenize("SELECT COUNT(*) FROM title t WHERE t.id = 3");
  ASSERT_TRUE(t.ok());
  // Both the FROM alias and the qualifier resolve to "title".
  int title_count = 0;
  for (const auto& tok : t.value().tokens) {
    if (tok == "title") ++title_count;
  }
  EXPECT_GE(title_count, 2);
}

TEST_F(TokenizerTest, QualifiedColumnBecomesSchemaToken) {
  auto t = tokenizer_->Tokenize(
      "SELECT COUNT(*) FROM title t WHERE t.production_year > 2000");
  ASSERT_TRUE(t.ok());
  bool found = false;
  for (const auto& tok : t.value().tokens) {
    if (tok == "title.production_year") found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(TokenizerTest, ValuesBecomeRangeTokens) {
  auto t = tokenizer_->Tokenize(
      "SELECT COUNT(*) FROM title t WHERE t.production_year > 2000");
  ASSERT_TRUE(t.ok());
  bool found = false;
  for (const auto& tok : t.value().tokens) {
    if (tok.rfind("title.production_year#", 0) == 0) found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(TokenizerTest, RangeTokenOrderRespectsValues) {
  // A later year must land in a bucket >= an earlier year's bucket.
  const std::string lo =
      tokenizer_->RangeToken("title", "production_year", 1930);
  const std::string hi =
      tokenizer_->RangeToken("title", "production_year", 2015);
  const int lo_b = std::stoi(lo.substr(lo.find('#') + 1));
  const int hi_b = std::stoi(hi.substr(hi.find('#') + 1));
  EXPECT_LE(lo_b, hi_b);
  EXPECT_GE(lo_b, 0);
  EXPECT_LT(hi_b, tokenizer_->num_value_buckets());
}

TEST_F(TokenizerTest, QuantilesMonotone) {
  const float q_lo = tokenizer_->ValueQuantile("title", "production_year",
                                               1930);
  const float q_hi = tokenizer_->ValueQuantile("title", "production_year",
                                               2015);
  EXPECT_LE(q_lo, q_hi);
  EXPECT_GE(q_lo, 0.0f);
  EXPECT_LE(q_hi, 1.0f);
}

TEST_F(TokenizerTest, StringMcvGetsValueToken) {
  // Country codes are highly repetitive -> MCV token.
  auto t = tokenizer_->Tokenize(
      "SELECT COUNT(*) FROM company_name cn WHERE cn.country_code = 'us'");
  ASSERT_TRUE(t.ok());
  bool found = false;
  for (const auto& tok : t.value().tokens) {
    if (tok == "v:us") found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(TokenizerTest, ParseFailurePropagates) {
  EXPECT_FALSE(tokenizer_->Tokenize("SELECT FROM WHERE").ok());
}

TEST_F(TokenizerTest, NoUnkForSchemaQueries) {
  auto t = tokenizer_->Tokenize(
      "SELECT COUNT(*) FROM title t, movie_companies mc WHERE t.id = "
      "mc.movie_id AND mc.company_type_id = 1");
  ASSERT_TRUE(t.ok());
  for (size_t i = 0; i < t.value().ids.size(); ++i) {
    EXPECT_NE(t.value().ids[i], Vocab::kUnkId)
        << "token: " << t.value().tokens[i];
  }
}

}  // namespace
}  // namespace preqr::text
