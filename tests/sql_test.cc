#include <gtest/gtest.h>

#include "sql/catalog.h"
#include "sql/lexer.h"
#include "sql/parser.h"
#include "sql/printer.h"

namespace preqr::sql {
namespace {

// --- Lexer -----------------------------------------------------------

TEST(LexerTest, KeywordsCaseInsensitive) {
  auto r = Lex("select FROM WhErE");
  ASSERT_TRUE(r.ok());
  const auto& t = r.value();
  EXPECT_TRUE(t[0].IsKeyword("SELECT"));
  EXPECT_TRUE(t[1].IsKeyword("FROM"));
  EXPECT_TRUE(t[2].IsKeyword("WHERE"));
}

TEST(LexerTest, IdentifiersLowercased) {
  auto r = Lex("Title T");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value()[0].text, "title");
  EXPECT_EQ(r.value()[1].text, "t");
}

TEST(LexerTest, NumbersIntAndFloat) {
  auto r = Lex("42 3.14");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value()[0].is_integer);
  EXPECT_DOUBLE_EQ(r.value()[0].number, 42.0);
  EXPECT_FALSE(r.value()[1].is_integer);
  EXPECT_DOUBLE_EQ(r.value()[1].number, 3.14);
}

TEST(LexerTest, QualifiedNameDotIsNotDecimal) {
  auto r = Lex("t.id = 5");
  ASSERT_TRUE(r.ok());
  const auto& t = r.value();
  EXPECT_EQ(t[0].text, "t");
  EXPECT_TRUE(t[1].IsSymbol("."));
  EXPECT_EQ(t[2].text, "id");
}

TEST(LexerTest, StringLiterals) {
  auto r = Lex("name = 'Ada Lovelace'");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value()[2].type, TokenType::kString);
  EXPECT_EQ(r.value()[2].text, "Ada Lovelace");
}

TEST(LexerTest, UnterminatedStringIsError) {
  EXPECT_FALSE(Lex("name = 'oops").ok());
}

TEST(LexerTest, MultiCharOperators) {
  auto r = Lex("a <= b >= c <> d != e");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value()[1].IsSymbol("<="));
  EXPECT_TRUE(r.value()[3].IsSymbol(">="));
  EXPECT_TRUE(r.value()[5].IsSymbol("<>"));
  EXPECT_TRUE(r.value()[7].IsSymbol("<>"));  // != normalized
}

TEST(LexerTest, NegativeNumberAfterOperator) {
  auto r = Lex("x > -5");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value()[2].type, TokenType::kNumber);
  EXPECT_DOUBLE_EQ(r.value()[2].number, -5.0);
}

TEST(LexerTest, RejectsGarbage) { EXPECT_FALSE(Lex("select @").ok()); }

TEST(LexerTest, EndsWithEndToken) {
  auto r = Lex("select");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().back().type, TokenType::kEnd);
}

// --- Parser -----------------------------------------------------------

TEST(ParserTest, SimpleCount) {
  auto r = Parse("SELECT COUNT(*) FROM title t WHERE t.production_year > 2010");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto& stmt = r.value();
  ASSERT_EQ(stmt.items.size(), 1u);
  EXPECT_EQ(stmt.items[0].agg, AggFunc::kCount);
  EXPECT_TRUE(stmt.items[0].star);
  ASSERT_EQ(stmt.tables.size(), 1u);
  EXPECT_EQ(stmt.tables[0].table, "title");
  EXPECT_EQ(stmt.tables[0].alias, "t");
  ASSERT_EQ(stmt.predicates.size(), 1u);
  EXPECT_EQ(stmt.predicates[0].op, CompareOp::kGt);
  EXPECT_EQ(stmt.predicates[0].values[0].int_value, 2010);
}

TEST(ParserTest, PaperExampleQuery) {
  auto r = Parse(
      "SELECT t.id FROM title t, movie_companies mc "
      "WHERE t.id = mc.movie_id AND t.production_year > 2010 "
      "AND mc.company_id = 5");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto& stmt = r.value();
  EXPECT_EQ(stmt.tables.size(), 2u);
  EXPECT_EQ(stmt.predicates.size(), 3u);
  EXPECT_EQ(stmt.NumJoins(), 1);
  EXPECT_TRUE(stmt.predicates[0].IsJoin());
  EXPECT_EQ(stmt.predicates[0].rhs_column.ToString(), "mc.movie_id");
}

TEST(ParserTest, InListOfStrings) {
  auto r = Parse("SELECT name FROM user WHERE rank IN ('adm','sup')");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto& p = r.value().predicates[0];
  EXPECT_EQ(p.op, CompareOp::kIn);
  ASSERT_EQ(p.values.size(), 2u);
  EXPECT_EQ(p.values[0].string_value, "adm");
}

TEST(ParserTest, InSubquery) {
  auto r = Parse(
      "SELECT SUM(balance) FROM accounts WHERE user_id IN "
      "(SELECT user_id FROM user WHERE rank = 'adm')");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto& p = r.value().predicates[0];
  ASSERT_TRUE(p.subquery != nullptr);
  EXPECT_EQ(p.subquery->tables[0].table, "user");
}

TEST(ParserTest, UnionChain) {
  auto r = Parse(
      "SELECT name FROM user WHERE rank = 'adm' "
      "UNION SELECT name FROM user WHERE rank = 'sup'");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_TRUE(r.value().union_next != nullptr);
  EXPECT_EQ(r.value().union_next->predicates[0].values[0].string_value, "sup");
}

TEST(ParserTest, BetweenPredicate) {
  auto r = Parse("SELECT * FROM t WHERE a BETWEEN 1 AND 10 AND b = 2");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().predicates.size(), 2u);
  EXPECT_EQ(r.value().predicates[0].op, CompareOp::kBetween);
  EXPECT_EQ(r.value().predicates[0].values[1].int_value, 10);
}

TEST(ParserTest, LikePredicate) {
  auto r = Parse("SELECT * FROM t WHERE name LIKE '%din%'");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().predicates[0].op, CompareOp::kLike);
}

TEST(ParserTest, ExplicitJoinOn) {
  auto r = Parse(
      "SELECT COUNT(*) FROM title t JOIN movie_companies mc "
      "ON t.id = mc.movie_id WHERE mc.company_id = 3");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().tables.size(), 2u);
  EXPECT_EQ(r.value().NumJoins(), 1);
}

TEST(ParserTest, GroupOrderLimit) {
  auto r = Parse(
      "SELECT kind_id, COUNT(*) FROM title GROUP BY kind_id "
      "ORDER BY kind_id DESC LIMIT 10");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().group_by.size(), 1u);
  EXPECT_FALSE(r.value().order_by[0].second);
  EXPECT_EQ(r.value().limit, 10);
}

TEST(ParserTest, ErrorMissingFrom) {
  EXPECT_FALSE(Parse("SELECT a WHERE b = 1").ok());
}

TEST(ParserTest, ErrorTrailingTokens) {
  EXPECT_FALSE(Parse("SELECT a FROM t extra junk !").ok());
}

TEST(ParserTest, ErrorBadPredicate) {
  EXPECT_FALSE(Parse("SELECT a FROM t WHERE = 3").ok());
}

// --- Printer round-trip -----------------------------------------------

void ExpectRoundTrip(const std::string& sql) {
  auto r1 = Parse(sql);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  const std::string printed = ToSql(r1.value());
  auto r2 = Parse(printed);
  ASSERT_TRUE(r2.ok()) << "re-parse failed for: " << printed;
  EXPECT_EQ(printed, ToSql(r2.value()));
}

TEST(PrinterTest, RoundTrips) {
  ExpectRoundTrip("SELECT COUNT(*) FROM title t WHERE t.production_year > 2010");
  ExpectRoundTrip(
      "SELECT t.id FROM title t, movie_companies mc WHERE t.id = mc.movie_id "
      "AND mc.company_id = 5");
  ExpectRoundTrip("SELECT name FROM user WHERE rank IN ('adm','sup')");
  ExpectRoundTrip(
      "SELECT SUM(balance) FROM accounts WHERE user_id IN "
      "(SELECT user_id FROM user WHERE rank = 'adm')");
  ExpectRoundTrip(
      "SELECT name FROM user WHERE rank = 'adm' UNION "
      "SELECT name FROM user WHERE rank = 'sup'");
  ExpectRoundTrip("SELECT * FROM t WHERE a BETWEEN 1 AND 10");
  ExpectRoundTrip(
      "SELECT kind_id, COUNT(*) FROM title GROUP BY kind_id ORDER BY kind_id "
      "DESC LIMIT 10");
}

// --- Catalog ------------------------------------------------------------

Catalog MakeCatalog() {
  Catalog cat;
  TableDef title;
  title.name = "title";
  title.columns = {{"id", ColumnType::kInt, true},
                   {"production_year", ColumnType::kInt, false},
                   {"kind_id", ColumnType::kInt, false}};
  cat.AddTable(title);
  TableDef mc;
  mc.name = "movie_companies";
  mc.columns = {{"id", ColumnType::kInt, true},
                {"movie_id", ColumnType::kInt, false},
                {"company_id", ColumnType::kInt, false}};
  cat.AddTable(mc);
  EXPECT_TRUE(cat.AddForeignKey({"movie_companies", "movie_id", "title", "id"})
                  .ok());
  return cat;
}

TEST(CatalogTest, Lookups) {
  Catalog cat = MakeCatalog();
  ASSERT_NE(cat.FindTable("title"), nullptr);
  EXPECT_EQ(cat.FindTable("nope"), nullptr);
  EXPECT_EQ(cat.FindTable("title")->PrimaryKeyIndex(), 0);
  EXPECT_EQ(cat.FindTable("title")->ColumnIndex("kind_id"), 2);
  EXPECT_EQ(cat.TotalColumns(), 6);
}

TEST(CatalogTest, FkJoinabilityBothDirections) {
  Catalog cat = MakeCatalog();
  EXPECT_TRUE(
      cat.IsJoinableFk("movie_companies", "movie_id", "title", "id"));
  EXPECT_TRUE(
      cat.IsJoinableFk("title", "id", "movie_companies", "movie_id"));
  EXPECT_FALSE(
      cat.IsJoinableFk("title", "kind_id", "movie_companies", "movie_id"));
}

TEST(CatalogTest, AddForeignKeyValidates) {
  Catalog cat = MakeCatalog();
  EXPECT_FALSE(cat.AddForeignKey({"nope", "x", "title", "id"}).ok());
  EXPECT_FALSE(
      cat.AddForeignKey({"movie_companies", "nope", "title", "id"}).ok());
}

TEST(AstTest, ResolveTableByAliasAndName) {
  auto r = Parse("SELECT * FROM title t, movie_companies mc");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().ResolveTable("t"), "title");
  EXPECT_EQ(r.value().ResolveTable("movie_companies"), "movie_companies");
  EXPECT_EQ(r.value().ResolveTable("zzz"), "");
}

}  // namespace
}  // namespace preqr::sql
