// Replays the checked-in fuzz corpus (tests/fuzz_corpus/): every minimized
// input that ever broke the front door stays fixed. Naming convention is
// the contract — `err_*.sql` must fail with a non-empty Status (and must
// NOT crash), `ok_*.sql` must parse and tokenize end to end. New fuzz
// findings are minimized with SqlFuzzer::Minimize and added here, so the
// corpus only ever ratchets forward.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "automaton/symbol.h"
#include "automaton/template_extractor.h"
#include "db/stats.h"
#include "sql/lexer.h"
#include "sql/parser.h"
#include "text/tokenizer.h"
#include "workload/imdb.h"

#ifndef PREQR_FUZZ_CORPUS_DIR
#error "build must define PREQR_FUZZ_CORPUS_DIR (see tests/CMakeLists.txt)"
#endif

namespace preqr {
namespace {

struct CorpusEntry {
  std::string name;  // file name, e.g. "err_int_literal_overflow.sql"
  std::string sql;
};

std::vector<CorpusEntry> LoadCorpus() {
  std::vector<CorpusEntry> entries;
  const std::filesystem::path dir(PREQR_FUZZ_CORPUS_DIR);
  for (const auto& file : std::filesystem::directory_iterator(dir)) {
    if (file.path().extension() != ".sql") continue;
    std::ifstream in(file.path());
    std::ostringstream body;
    body << in.rdbuf();
    std::string sql = body.str();
    // Strip exactly one trailing newline (editors add it); the byte content
    // otherwise replays exactly as the fuzzer produced it.
    if (!sql.empty() && sql.back() == '\n') sql.pop_back();
    entries.push_back({file.path().filename().string(), std::move(sql)});
  }
  std::sort(entries.begin(), entries.end(),
            [](const CorpusEntry& a, const CorpusEntry& b) {
              return a.name < b.name;
            });
  return entries;
}

struct Env {
  db::Database imdb = workload::MakeImdbDatabase(7, 0.02);
  std::vector<db::TableStats> stats;
  std::unique_ptr<text::SqlTokenizer> tokenizer;

  Env() {
    db::StatsCollector collector;
    stats = collector.AnalyzeAll(imdb);
    tokenizer = std::make_unique<text::SqlTokenizer>(imdb.catalog(), stats, 8);
  }
};

Env& E() {
  static Env* env = new Env();
  return *env;
}

TEST(FuzzCorpusTest, CorpusIsNotEmpty) {
  const auto entries = LoadCorpus();
  ASSERT_FALSE(entries.empty())
      << "no *.sql files under " << PREQR_FUZZ_CORPUS_DIR;
  int err = 0, ok = 0;
  for (const auto& e : entries) {
    if (e.name.rfind("err_", 0) == 0) ++err;
    else if (e.name.rfind("ok_", 0) == 0) ++ok;
    else FAIL() << "corpus file '" << e.name
                << "' must start with err_ or ok_";
  }
  EXPECT_GT(err, 0) << "corpus needs at least one failing input";
  EXPECT_GT(ok, 0) << "corpus needs at least one extreme-but-valid input";
}

// Every corpus entry runs through the whole front door — lexer, structural
// symbols, template normalizer, parser, schema-aware tokenizer — without
// crashing, whatever its expected verdict is.
TEST(FuzzCorpusTest, EveryEntryRunsTheFullFrontDoorWithoutCrashing) {
  for (const auto& e : LoadCorpus()) {
    auto lexed = sql::Lex(e.sql);
    if (lexed.ok()) {
      const auto symbols = automaton::StructuralSymbols(lexed.value());
      EXPECT_EQ(symbols.size(), lexed.value().size()) << e.name;
    } else {
      EXPECT_FALSE(lexed.status().message().empty()) << e.name;
    }
    const auto norm = automaton::NormalizeForTemplate(e.sql);
    (void)automaton::TemplateDistance(norm, norm);
    (void)sql::Parse(e.sql);
    (void)E().tokenizer->Tokenize(e.sql);
  }
}

TEST(FuzzCorpusTest, ErrEntriesFailWithStatusAndOkEntriesTokenize) {
  for (const auto& e : LoadCorpus()) {
    auto parsed = sql::Parse(e.sql);
    auto tokenized = E().tokenizer->Tokenize(e.sql);
    if (e.name.rfind("err_", 0) == 0) {
      ASSERT_FALSE(parsed.ok())
          << e.name << ": expected a parse failure, got success";
      EXPECT_FALSE(parsed.status().message().empty()) << e.name;
      EXPECT_FALSE(tokenized.ok()) << e.name;
    } else {
      ASSERT_TRUE(parsed.ok())
          << e.name << ": " << parsed.status().ToString();
      ASSERT_TRUE(tokenized.ok())
          << e.name << ": " << tokenized.status().ToString();
      EXPECT_GT(tokenized.value().tokens.size(), 2u) << e.name;
    }
  }
}

}  // namespace
}  // namespace preqr
