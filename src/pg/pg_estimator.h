#ifndef PREQR_PG_PG_ESTIMATOR_H_
#define PREQR_PG_PG_ESTIMATOR_H_

#include <vector>

#include "db/database.h"
#include "db/stats.h"
#include "sql/ast.h"

namespace preqr::pg {

// PostgreSQL-style cardinality and cost estimation: per-column statistics
// (equi-depth histograms + MCVs), attribute-independence across predicates,
// and 1/max(nd_a, nd_b) equi-join selectivity. This is the PG baseline of
// Tables 7-11 — it fails exactly where real PostgreSQL fails: correlated
// predicates and multi-way joins compound the independence error.
class PgEstimator {
 public:
  explicit PgEstimator(const db::Database& db);

  // Estimated number of result rows.
  double EstimateCardinality(const sql::SelectStatement& stmt) const;

  // Estimated cost in the same work units the executor reports
  // (scan + build + intermediate + emit), driven by estimated
  // cardinalities instead of true ones.
  double EstimateCost(const sql::SelectStatement& stmt) const;

  // Selectivity of a single (non-join) predicate; exposed for tests.
  double PredicateSelectivity(const sql::SelectStatement& stmt,
                              const sql::Predicate& pred) const;

 private:
  const db::TableStats* StatsFor(const std::string& table) const;
  const db::Database& db_;
  std::vector<db::TableStats> stats_;
};

}  // namespace preqr::pg

#endif  // PREQR_PG_PG_ESTIMATOR_H_
