#include "pg/pg_estimator.h"

#include <algorithm>
#include <cmath>

#include "db/cost_model.h"

namespace preqr::pg {

namespace {
using sql::ColumnType;
using sql::CompareOp;
using sql::Literal;
using sql::Predicate;
using sql::SelectStatement;

constexpr double kDefaultSel = 0.005;

// Resolves `ref` to (table name, column index); empty table on failure.
std::pair<std::string, int> Resolve(const sql::Catalog& catalog,
                                    const SelectStatement& stmt,
                                    const sql::ColumnRef& ref) {
  std::string table;
  if (!ref.qualifier.empty()) {
    table = stmt.ResolveTable(ref.qualifier);
  } else {
    for (const auto& tref : stmt.tables) {
      const sql::TableDef* def = catalog.FindTable(tref.table);
      if (def != nullptr && def->ColumnIndex(ref.column) >= 0) {
        table = tref.table;
        break;
      }
    }
  }
  if (table.empty()) return {"", -1};
  const sql::TableDef* def = catalog.FindTable(table);
  if (def == nullptr) return {"", -1};
  return {table, def->ColumnIndex(ref.column)};
}

}  // namespace

PgEstimator::PgEstimator(const db::Database& db) : db_(db) {
  db::StatsCollector collector(32, 16);
  stats_ = collector.AnalyzeAll(db);
}

const db::TableStats* PgEstimator::StatsFor(const std::string& table) const {
  const int idx = db_.catalog().TableIndex(table);
  return idx < 0 ? nullptr : &stats_[static_cast<size_t>(idx)];
}

double PgEstimator::PredicateSelectivity(const SelectStatement& stmt,
                                         const Predicate& pred) const {
  const auto [table, col] = Resolve(db_.catalog(), stmt, pred.lhs);
  if (table.empty() || col < 0) return kDefaultSel;
  const db::TableStats* ts = StatsFor(table);
  if (ts == nullptr || static_cast<size_t>(col) >= ts->columns.size()) {
    return kDefaultSel;
  }
  const db::ColumnStats& cs = ts->columns[static_cast<size_t>(col)];

  if (pred.subquery) {
    // PG plans IN-subqueries as semi-joins; approximate with the subquery's
    // estimated cardinality over this column's distinct count.
    const double sub_card = EstimateCardinality(*pred.subquery);
    const double nd = std::max<double>(1.0, static_cast<double>(cs.num_distinct));
    return std::min(1.0, sub_card / nd);
  }

  if (cs.type == ColumnType::kString) {
    switch (pred.op) {
      case CompareOp::kEq:
        return cs.EstimateStringEquality(pred.values[0].string_value);
      case CompareOp::kNe:
        return 1.0 - cs.EstimateStringEquality(pred.values[0].string_value);
      case CompareOp::kLike:
        return db::ColumnStats::EstimateLikeSelectivity(
            pred.values[0].string_value);
      case CompareOp::kIn: {
        double sel = 0;
        for (const auto& v : pred.values) {
          sel += cs.EstimateStringEquality(v.string_value);
        }
        return std::min(1.0, sel);
      }
      default:
        return kDefaultSel;
    }
  }

  switch (pred.op) {
    case CompareOp::kIn: {
      double sel = 0;
      for (const auto& v : pred.values) {
        sel += cs.EstimateEqualitySelectivity(v.AsDouble());
      }
      return std::min(1.0, sel);
    }
    case CompareOp::kBetween:
      return cs.EstimateRangeSelectivity(pred.values[0].AsDouble(),
                                         pred.values[1].AsDouble());
    default:
      return cs.EstimateNumericSelectivity(pred.op, pred.values[0].AsDouble());
  }
}

double PgEstimator::EstimateCardinality(const SelectStatement& stmt) const {
  if (stmt.union_next) {
    SelectStatement head = stmt;
    head.union_next = nullptr;
    return EstimateCardinality(head) + EstimateCardinality(*stmt.union_next);
  }
  // Cross product of base tables.
  double card = 1.0;
  for (const auto& tref : stmt.tables) {
    const db::TableStats* ts = StatsFor(tref.table);
    card *= ts != nullptr ? std::max<double>(1.0, static_cast<double>(
                                                      ts->row_count))
                          : 1000.0;
  }
  // Independence across all predicates.
  for (const auto& pred : stmt.predicates) {
    if (pred.IsJoin()) {
      // 1 / max(nd_left, nd_right).
      const auto [ta, ca] = Resolve(db_.catalog(), stmt, pred.lhs);
      const auto [tb, cb] = Resolve(db_.catalog(), stmt, pred.rhs_column);
      double nd_a = 100, nd_b = 100;
      if (!ta.empty() && ca >= 0) {
        nd_a = std::max<double>(
            1.0, static_cast<double>(
                     StatsFor(ta)->columns[static_cast<size_t>(ca)]
                         .num_distinct));
      }
      if (!tb.empty() && cb >= 0) {
        nd_b = std::max<double>(
            1.0, static_cast<double>(
                     StatsFor(tb)->columns[static_cast<size_t>(cb)]
                         .num_distinct));
      }
      card /= std::max(nd_a, nd_b);
    } else {
      card *= PredicateSelectivity(stmt, pred);
    }
  }
  return std::max(1.0, card);
}

double PgEstimator::EstimateCost(const SelectStatement& stmt) const {
  if (stmt.union_next) {
    SelectStatement head = stmt;
    head.union_next = nullptr;
    return EstimateCost(head) + EstimateCost(*stmt.union_next);
  }
  // The shared work-unit cost model (db/cost_model.h): a left-deep
  // hash-join pipeline over the FROM order, fed with estimated instead of
  // exact cardinalities — the same formula the executor and the join
  // planner charge, which is what makes estimated and executed cost
  // directly comparable.
  const db::CostModel cm;
  std::vector<double> scan_rows, build_rows, intermediate_rows;
  for (const auto& tref : stmt.tables) {
    const db::TableStats* ts = StatsFor(tref.table);
    scan_rows.push_back(ts != nullptr ? static_cast<double>(ts->row_count)
                                      : 1000.0);
  }
  SelectStatement prefix;
  prefix.items = stmt.items;
  for (size_t i = 0; i < stmt.tables.size(); ++i) {
    prefix.tables.push_back(stmt.tables[i]);
    prefix.predicates.clear();
    // All predicates whose tables are within the prefix.
    for (const auto& pred : stmt.predicates) {
      const auto in_prefix = [&](const sql::ColumnRef& ref) {
        const auto [t, c] = Resolve(db_.catalog(), stmt, ref);
        for (const auto& tref : prefix.tables) {
          if (tref.table == t) return true;
        }
        return false;
      };
      if (pred.IsJoin()) {
        if (in_prefix(pred.lhs) && in_prefix(pred.rhs_column)) {
          prefix.predicates.push_back(pred);
        }
      } else if (in_prefix(pred.lhs)) {
        prefix.predicates.push_back(pred);
      }
    }
    if (i > 0) {
      // Hash-build input: the added table alone under its own filters.
      SelectStatement single;
      single.items = stmt.items;
      single.tables = {stmt.tables[i]};
      for (const auto& pred : stmt.predicates) {
        if (pred.IsJoin()) continue;
        const auto [t, c] = Resolve(db_.catalog(), stmt, pred.lhs);
        if (t == stmt.tables[i].table) single.predicates.push_back(pred);
      }
      build_rows.push_back(EstimateCardinality(single));
      intermediate_rows.push_back(EstimateCardinality(prefix));
    }
  }
  return db::LeftDeepPipelineCost(cm, scan_rows, build_rows,
                                  intermediate_rows,
                                  EstimateCardinality(stmt));
}

}  // namespace preqr::pg
