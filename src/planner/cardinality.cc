#include "planner/cardinality.h"

#include <algorithm>

#include "sql/printer.h"

namespace preqr::planner {

namespace {

// Resolves a column reference to the index of its table occurrence in
// stmt.tables (alias first, then table name, then unique unqualified
// match); -1 if unresolved or ambiguous. Mirrors the executor's binding
// rules so induced sub-statements keep exactly the predicates the executor
// would apply to the subset.
int TableIndexOf(const db::Database& db, const sql::SelectStatement& stmt,
                 const sql::ColumnRef& ref) {
  if (!ref.qualifier.empty()) {
    for (size_t i = 0; i < stmt.tables.size(); ++i) {
      if (stmt.tables[i].BindingName() == ref.qualifier ||
          stmt.tables[i].table == ref.qualifier) {
        return static_cast<int>(i);
      }
    }
    return -1;
  }
  int found = -1;
  for (size_t i = 0; i < stmt.tables.size(); ++i) {
    const db::Table* table = db.FindTable(stmt.tables[i].table);
    if (table != nullptr && table->def().ColumnIndex(ref.column) >= 0) {
      if (found >= 0) return -1;  // ambiguous
      found = static_cast<int>(i);
    }
  }
  return found;
}

}  // namespace

sql::SelectStatement InduceSubsetStatement(const db::Database& db,
                                           const sql::SelectStatement& stmt,
                                           const std::vector<int>& subset) {
  sql::SelectStatement out;
  out.items = stmt.items;
  std::vector<char> in(stmt.tables.size(), 0);
  for (int t : subset) {
    out.tables.push_back(stmt.tables[static_cast<size_t>(t)]);
    in[static_cast<size_t>(t)] = 1;
  }
  for (const auto& pred : stmt.predicates) {
    if (pred.IsJoin()) {
      const int a = TableIndexOf(db, stmt, pred.lhs);
      const int b = TableIndexOf(db, stmt, pred.rhs_column);
      if (a >= 0 && b >= 0 && in[static_cast<size_t>(a)] != 0 &&
          in[static_cast<size_t>(b)] != 0) {
        out.predicates.push_back(pred);
      }
    } else {
      const int a = TableIndexOf(db, stmt, pred.lhs);
      if (a >= 0 && in[static_cast<size_t>(a)] != 0) {
        out.predicates.push_back(pred);
      }
    }
  }
  return out;
}

double CardinalityEstimator::EstimateSubsetCardinality(
    const sql::SelectStatement& stmt, const std::vector<int>& subset) {
  return EstimateCardinality(InduceSubsetStatement(db_, stmt, subset));
}

double TrueCardinalityEstimator::EstimateCardinality(
    const sql::SelectStatement& stmt) {
  const std::string key = sql::ToSql(stmt);
  auto it = memo_.find(key);
  if (it != memo_.end()) return it->second;
  auto r = exec_.Execute(stmt);
  const double card = r.ok() ? r.value().cardinality : 0.0;
  memo_.emplace(key, card);
  return card;
}

double CallbackCardinalityEstimator::EstimateCardinality(
    const sql::SelectStatement& stmt) {
  return std::max(1.0, fn_(sql::ToSql(stmt)));
}

}  // namespace preqr::planner
