#ifndef PREQR_PLANNER_JOIN_PLANNER_H_
#define PREQR_PLANNER_JOIN_PLANNER_H_

#include <vector>

#include "common/status.h"
#include "db/cost_model.h"
#include "db/plan.h"
#include "planner/cardinality.h"
#include "sql/ast.h"

namespace preqr::planner {

// A chosen left-deep join order together with the estimator's view of its
// pipeline cost (scan + build + intermediates + emission, per CostModel).
struct PlanChoice {
  std::vector<int> order;     // indices into stmt.tables
  double estimated_cost = 0;  // cost under the estimator's cardinalities
};

// Cost-based join-order selection: DP over connected subsets of the
// (acyclic, validated) join graph — DPsize specialized to left-deep
// pipelines. Every join order whose prefixes stay connected is costed with
// the shared CostModel fed by `est`'s subset cardinalities; the cheapest
// order wins. Deterministic: subsets are enumerated in increasing mask
// order, candidate last-tables in increasing index order, and only a
// strictly cheaper candidate replaces the incumbent. Supports up to 16
// table occurrences (kInvalidArgument beyond; cyclic or disconnected join
// graphs are rejected by the same validation as the executor).
StatusOr<PlanChoice> PlanJoinOrder(const db::Database& db,
                                   const sql::SelectStatement& stmt,
                                   CardinalityEstimator& est,
                                   const db::CostModel& cm = {});

// Brute-force oracle for tests: enumerates every connected-prefix
// permutation in lexicographic order and keeps the strictly cheapest, with
// the same cost-accumulation association as the DP (so equal orders yield
// bitwise-equal costs). O(n!) — intended for <= 5-table joins.
StatusOr<PlanChoice> ExhaustivePlanJoinOrder(const db::Database& db,
                                             const sql::SelectStatement& stmt,
                                             CardinalityEstimator& est,
                                             const db::CostModel& cm = {});

}  // namespace preqr::planner

#endif  // PREQR_PLANNER_JOIN_PLANNER_H_
