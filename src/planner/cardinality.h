#ifndef PREQR_PLANNER_CARDINALITY_H_
#define PREQR_PLANNER_CARDINALITY_H_

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "db/database.h"
#include "db/executor.h"
#include "pg/pg_estimator.h"
#include "sql/ast.h"

namespace preqr::planner {

// Builds the sub-statement induced by `subset` (indices into stmt.tables):
// those table references, every filter predicate that resolves into the
// subset, and every join predicate with both sides inside it. This is the
// unit the planner asks estimators about.
sql::SelectStatement InduceSubsetStatement(const db::Database& db,
                                           const sql::SelectStatement& stmt,
                                           const std::vector<int>& subset);

// The unified cardinality-estimator interface the join planner costs plans
// with. True counts, PG statistics and learned models (PreQR/baselines) all
// sit behind it, so plans are costed by the same formula fed by different
// cardinalities.
class CardinalityEstimator {
 public:
  virtual ~CardinalityEstimator() = default;

  virtual std::string name() const = 0;

  // Estimated COUNT(*) of the full statement.
  virtual double EstimateCardinality(const sql::SelectStatement& stmt) = 0;

  // Estimated cardinality of the join over `subset` (indices into
  // stmt.tables) with every predicate that resolves inside the subset
  // applied. Default: induce the sub-statement and estimate it.
  virtual double EstimateSubsetCardinality(const sql::SelectStatement& stmt,
                                           const std::vector<int>& subset);

 protected:
  explicit CardinalityEstimator(const db::Database& db) : db_(db) {}
  const db::Database& db_;
};

// Exact cardinalities from the executor, memoized by the induced SQL text.
// Planning with this estimator yields the true-optimal left-deep plan.
class TrueCardinalityEstimator : public CardinalityEstimator {
 public:
  explicit TrueCardinalityEstimator(const db::Database& db)
      : CardinalityEstimator(db), exec_(db) {}
  std::string name() const override { return "true"; }
  double EstimateCardinality(const sql::SelectStatement& stmt) override;

 private:
  db::Executor exec_;
  std::unordered_map<std::string, double> memo_;
};

// PostgreSQL-style histogram/MCV statistics under the independence
// assumption (pg::PgEstimator).
class PgCardinalityEstimator : public CardinalityEstimator {
 public:
  PgCardinalityEstimator(const db::Database& db, const pg::PgEstimator& pg)
      : CardinalityEstimator(db), pg_(pg) {}
  std::string name() const override { return "pg"; }
  double EstimateCardinality(const sql::SelectStatement& stmt) override {
    return pg_.EstimateCardinality(stmt);
  }

 private:
  const pg::PgEstimator& pg_;
};

// Adapts any SQL-text predictor — e.g. a tasks::EstimatorModel trained on a
// PreQR encoding — behind the interface without a planner->tasks
// dependency. Estimates are floored at 1 row.
class CallbackCardinalityEstimator : public CardinalityEstimator {
 public:
  using PredictFn = std::function<double(const std::string& sql)>;

  CallbackCardinalityEstimator(const db::Database& db, std::string name,
                               PredictFn fn)
      : CardinalityEstimator(db), name_(std::move(name)), fn_(std::move(fn)) {}
  std::string name() const override { return name_; }
  double EstimateCardinality(const sql::SelectStatement& stmt) override;

 private:
  std::string name_;
  PredictFn fn_;
};

}  // namespace preqr::planner

#endif  // PREQR_PLANNER_CARDINALITY_H_
