#include "planner/join_planner.h"

#include <cstdint>
#include <functional>
#include <limits>
#include <unordered_map>

namespace preqr::planner {

namespace {

constexpr int kMaxTables = 16;
constexpr double kInf = std::numeric_limits<double>::infinity();

// Shared context for one planning problem: the validated join graph plus a
// per-subset cardinality memo (keyed by bitmask over table indices).
struct PlanContext {
  const db::Database& db;
  const sql::SelectStatement& stmt;
  CardinalityEstimator& est;
  const db::CostModel& cm;
  int n = 0;
  std::vector<db::JoinEdge> edges;
  // Adjacency as bitmasks: neighbors[i] = tables sharing a join edge with i.
  std::vector<uint32_t> neighbors;
  std::unordered_map<uint32_t, double> card_memo;

  double SubsetCard(uint32_t mask) {
    auto it = card_memo.find(mask);
    if (it != card_memo.end()) return it->second;
    std::vector<int> subset;
    for (int i = 0; i < n; ++i) {
      if ((mask >> i) & 1u) subset.push_back(i);
    }
    const double card = est.EstimateSubsetCardinality(stmt, subset);
    card_memo.emplace(mask, card);
    return card;
  }

  // Join-order-independent scan work over the physical base tables.
  double ScanCost() const {
    double cost = 0;
    for (const auto& tref : stmt.tables) {
      const db::Table* table = db.FindTable(tref.table);
      cost += cm.scan_weight *
              static_cast<double>(table != nullptr ? table->num_rows() : 0);
    }
    return cost;
  }
};

StatusOr<PlanContext> MakeContext(const db::Database& db,
                                  const sql::SelectStatement& stmt,
                                  CardinalityEstimator& est,
                                  const db::CostModel& cm) {
  if (stmt.union_next) {
    return Status::InvalidArgument("cannot plan a UNION statement");
  }
  auto graph = db::ResolveJoinGraph(db, stmt);
  if (!graph.ok()) return graph.status();
  if (graph.value().num_tables > kMaxTables) {
    return Status::InvalidArgument("join planner supports at most 16 tables");
  }
  PlanContext ctx{db, stmt, est, cm};
  ctx.n = static_cast<int>(graph.value().num_tables);
  ctx.edges = std::move(graph.value().edges);
  ctx.neighbors.assign(static_cast<size_t>(ctx.n), 0);
  for (const auto& e : ctx.edges) {
    ctx.neighbors[static_cast<size_t>(e.a)] |= 1u << e.b;
    ctx.neighbors[static_cast<size_t>(e.b)] |= 1u << e.a;
  }
  return ctx;
}

}  // namespace

StatusOr<PlanChoice> PlanJoinOrder(const db::Database& db,
                                   const sql::SelectStatement& stmt,
                                   CardinalityEstimator& est,
                                   const db::CostModel& cm) {
  auto ctx_or = MakeContext(db, stmt, est, cm);
  if (!ctx_or.ok()) return ctx_or.status();
  PlanContext& ctx = ctx_or.value();
  const int n = ctx.n;
  const uint32_t full = (1u << n) - 1u;

  PlanChoice choice;
  if (n == 1) {
    choice.order = {0};
    choice.estimated_cost =
        ctx.ScanCost() + cm.emit_weight * ctx.SubsetCard(full);
    return choice;
  }

  // best[mask] = cheapest accumulated join work (builds + intermediates)
  // of any connected left-deep prefix covering exactly `mask`; kInf marks
  // subsets no connected prefix can reach. A subset is reachable iff some
  // member is adjacent to the connected remainder, so reachability and
  // optimality propagate together — no separate connectivity precompute.
  std::vector<double> best(full + 1u, kInf);
  std::vector<int> last(full + 1u, -1);
  for (int i = 0; i < n; ++i) {
    best[1u << i] = 0;
    last[1u << i] = i;
  }
  for (uint32_t mask = 1; mask <= full; ++mask) {
    if ((mask & (mask - 1u)) == 0u) continue;  // singletons seeded above
    double mask_card = -1;  // lazy: only subsets with a valid split pay
    for (int t = 0; t < n; ++t) {
      if (((mask >> t) & 1u) == 0u) continue;
      const uint32_t prev = mask & ~(1u << t);
      if (best[prev] == kInf) continue;  // remainder not connected
      if ((ctx.neighbors[static_cast<size_t>(t)] & prev) == 0u) continue;
      if (mask_card < 0) mask_card = ctx.SubsetCard(mask);
      const double cost = best[prev] +
                          cm.build_weight * ctx.SubsetCard(1u << t) +
                          cm.intermediate_weight * mask_card;
      if (cost < best[mask]) {
        best[mask] = cost;
        last[mask] = t;
      }
    }
  }
  if (best[full] == kInf) {
    // Unreachable for a validated join tree; defensive.
    return Status::InvalidArgument("join graph admits no connected order");
  }

  choice.order.assign(static_cast<size_t>(n), -1);
  uint32_t mask = full;
  for (int i = n - 1; i >= 0; --i) {
    choice.order[static_cast<size_t>(i)] = last[mask];
    mask &= ~(1u << last[mask]);
  }
  choice.estimated_cost = ctx.ScanCost() + best[full] +
                          cm.emit_weight * ctx.SubsetCard(full);
  return choice;
}

StatusOr<PlanChoice> ExhaustivePlanJoinOrder(const db::Database& db,
                                             const sql::SelectStatement& stmt,
                                             CardinalityEstimator& est,
                                             const db::CostModel& cm) {
  auto ctx_or = MakeContext(db, stmt, est, cm);
  if (!ctx_or.ok()) return ctx_or.status();
  PlanContext& ctx = ctx_or.value();
  const int n = ctx.n;
  const uint32_t full = (1u << n) - 1u;

  PlanChoice choice;
  if (n == 1) {
    choice.order = {0};
    choice.estimated_cost =
        ctx.ScanCost() + cm.emit_weight * ctx.SubsetCard(full);
    return choice;
  }

  std::vector<int> order;
  order.reserve(static_cast<size_t>(n));
  double best_cost = kInf;
  std::vector<int> best_order;
  // Depth-first over permutations in lexicographic order; `acc` mirrors the
  // DP's left-to-right (build + intermediate) accumulation exactly.
  std::function<void(uint32_t, double)> recurse = [&](uint32_t mask,
                                                      double acc) {
    if (mask == full) {
      const double total =
          ctx.ScanCost() + acc + cm.emit_weight * ctx.SubsetCard(full);
      if (total < best_cost) {
        best_cost = total;
        best_order = order;
      }
      return;
    }
    for (int t = 0; t < n; ++t) {
      if ((mask >> t) & 1u) continue;
      if (mask != 0u &&
          (ctx.neighbors[static_cast<size_t>(t)] & mask) == 0u) {
        continue;
      }
      const uint32_t next = mask | (1u << t);
      double next_acc = acc;
      if (mask != 0u) {
        next_acc = acc + cm.build_weight * ctx.SubsetCard(1u << t) +
                   cm.intermediate_weight * ctx.SubsetCard(next);
      }
      order.push_back(t);
      recurse(next, next_acc);
      order.pop_back();
    }
  };
  recurse(0u, 0.0);
  if (best_order.empty()) {
    return Status::InvalidArgument("join graph admits no connected order");
  }
  choice.order = best_order;
  choice.estimated_cost = best_cost;
  return choice;
}

}  // namespace preqr::planner
