#ifndef PREQR_AUTOMATON_TEMPLATE_EXTRACTOR_H_
#define PREQR_AUTOMATON_TEMPLATE_EXTRACTOR_H_

#include <string>
#include <vector>

#include "automaton/fa.h"
#include "automaton/symbol.h"

namespace preqr::automaton {

// Clause-wise normalized representation of a query used for the hybrid
// clustering distance: column/table names are replaced with placeholder
// tokens, and string/number/category values with typed variations
// (Section 3.3.1).
struct NormalizedQuery {
  std::string select_clause;
  std::string from_clause;
  std::string where_clause;
  std::string tail_clause;  // GROUP BY / ORDER BY / LIMIT / UNION marker
};

NormalizedQuery NormalizeForTemplate(const std::string& sql);

// Hybrid distance in [0,1]: per-clause edit-similarities merged with a
// cosine-style weighting. 0 = structurally identical.
double TemplateDistance(const NormalizedQuery& a, const NormalizedQuery& b);

// Clusters a workload's queries by template and extracts one collapsed
// symbol sequence per cluster (the cluster medoid). Deterministic
// leader-style agglomeration with distance threshold `epsilon`.
class TemplateExtractor {
 public:
  explicit TemplateExtractor(double epsilon = 0.2) : epsilon_(epsilon) {}

  struct Extraction {
    // One collapsed symbol sequence per template.
    std::vector<std::vector<Symbol>> templates;
    // Cluster id for each input query (index into `templates`).
    std::vector<int> assignment;
  };

  Extraction Extract(const std::vector<std::string>& queries) const;

  // Convenience: extract templates and build the merged automaton.
  Automaton BuildAutomaton(const std::vector<std::string>& queries) const;

 private:
  double epsilon_;
};

}  // namespace preqr::automaton

#endif  // PREQR_AUTOMATON_TEMPLATE_EXTRACTOR_H_
