#include "automaton/symbol.h"

#include <array>

#include "common/check.h"

namespace preqr::automaton {

const char* SymbolName(Symbol s) {
  switch (s) {
    case Symbol::kStart: return "START";
    case Symbol::kSelect: return "SELECT";
    case Symbol::kDistinct: return "DISTINCT";
    case Symbol::kAgg: return "AGG";
    case Symbol::kSelectItem: return "ITEM";
    case Symbol::kFrom: return "FROM";
    case Symbol::kTable: return "TAB";
    case Symbol::kJoin: return "JOIN";
    case Symbol::kWhere: return "WHERE";
    case Symbol::kColumn: return "COL";
    case Symbol::kOpEq: return "=";
    case Symbol::kOpNe: return "<>";
    case Symbol::kOpLt: return "<";
    case Symbol::kOpLe: return "<=";
    case Symbol::kOpGt: return ">";
    case Symbol::kOpGe: return ">=";
    case Symbol::kLike: return "LIKE";
    case Symbol::kIn: return "IN";
    case Symbol::kBetween: return "BETWEEN";
    case Symbol::kAnd: return "AND";
    case Symbol::kOr: return "OR";
    case Symbol::kNot: return "NOT";
    case Symbol::kValueNum: return "NUM";
    case Symbol::kValueStr: return "STR";
    case Symbol::kLParen: return "(";
    case Symbol::kRParen: return ")";
    case Symbol::kGroupBy: return "GROUPBY";
    case Symbol::kOrderBy: return "ORDERBY";
    case Symbol::kHaving: return "HAVING";
    case Symbol::kLimit: return "LIMIT";
    case Symbol::kAscDesc: return "DIR";
    case Symbol::kUnion: return "UNION";
    case Symbol::kEnd: return "END";
    case Symbol::kNumSymbols: break;
  }
  return "?";
}

namespace {

// Regions of a SELECT statement that change how identifiers are projected.
enum class Region { kSelectList, kFromList, kWhere, kGroupOrder };

bool IsAggKeyword(const std::string& kw) {
  return kw == "COUNT" || kw == "SUM" || kw == "AVG" || kw == "MIN" ||
         kw == "MAX";
}

}  // namespace

std::vector<Symbol> StructuralSymbols(const std::vector<sql::Token>& tokens) {
  using sql::TokenType;
  std::vector<Symbol> out;
  out.reserve(tokens.size());
  Region region = Region::kSelectList;
  // Parenthesis depth at which an aggregate argument list started; -1 = none.
  int agg_paren = -1;
  int paren_depth = 0;
  for (const auto& t : tokens) {
    switch (t.type) {
      case TokenType::kEnd:
        out.push_back(Symbol::kEnd);
        continue;
      case TokenType::kNumber:
        out.push_back(Symbol::kValueNum);
        continue;
      case TokenType::kString:
        out.push_back(Symbol::kValueStr);
        continue;
      case TokenType::kIdentifier:
        if (agg_paren >= 0) {
          out.push_back(Symbol::kAgg);
        } else if (region == Region::kSelectList) {
          out.push_back(Symbol::kSelectItem);
        } else if (region == Region::kFromList) {
          out.push_back(Symbol::kTable);
        } else {
          out.push_back(Symbol::kColumn);
        }
        continue;
      case TokenType::kSymbol: {
        const std::string& s = t.text;
        if (s == "(") {
          ++paren_depth;
          out.push_back(agg_paren >= 0 ? Symbol::kAgg : Symbol::kLParen);
          continue;
        }
        if (s == ")") {
          --paren_depth;
          if (agg_paren >= 0 && paren_depth <= agg_paren) {
            agg_paren = -1;
            out.push_back(Symbol::kAgg);
          } else {
            out.push_back(Symbol::kRParen);
          }
          continue;
        }
        if (s == "=") { out.push_back(Symbol::kOpEq); continue; }
        if (s == "<>") { out.push_back(Symbol::kOpNe); continue; }
        if (s == "<") { out.push_back(Symbol::kOpLt); continue; }
        if (s == "<=") { out.push_back(Symbol::kOpLe); continue; }
        if (s == ">") { out.push_back(Symbol::kOpGt); continue; }
        if (s == ">=") { out.push_back(Symbol::kOpGe); continue; }
        if (s == "*") {
          out.push_back(agg_paren >= 0 ? Symbol::kAgg : Symbol::kSelectItem);
          continue;
        }
        if (s == "." || s == "," || s == ";") {
          // Dots and commas belong to the surrounding list region.
          if (agg_paren >= 0) {
            out.push_back(Symbol::kAgg);
          } else if (region == Region::kSelectList) {
            out.push_back(Symbol::kSelectItem);
          } else if (region == Region::kFromList) {
            out.push_back(Symbol::kTable);
          } else {
            out.push_back(Symbol::kColumn);
          }
          continue;
        }
        out.push_back(Symbol::kSelectItem);
        continue;
      }
      case TokenType::kKeyword: {
        const std::string& kw = t.text;
        if (kw == "SELECT") {
          region = Region::kSelectList;
          out.push_back(Symbol::kSelect);
        } else if (kw == "DISTINCT") {
          out.push_back(Symbol::kDistinct);
        } else if (IsAggKeyword(kw)) {
          if (agg_paren < 0) agg_paren = paren_depth;
          out.push_back(Symbol::kAgg);
        } else if (kw == "FROM") {
          region = Region::kFromList;
          out.push_back(Symbol::kFrom);
        } else if (kw == "JOIN" || kw == "INNER" || kw == "LEFT" ||
                   kw == "RIGHT") {
          region = Region::kFromList;
          out.push_back(Symbol::kJoin);
        } else if (kw == "ON") {
          region = Region::kWhere;
          out.push_back(Symbol::kJoin);
        } else if (kw == "WHERE") {
          region = Region::kWhere;
          out.push_back(Symbol::kWhere);
        } else if (kw == "AND") {
          out.push_back(Symbol::kAnd);
        } else if (kw == "OR") {
          out.push_back(Symbol::kOr);
        } else if (kw == "NOT") {
          out.push_back(Symbol::kNot);
        } else if (kw == "IN") {
          out.push_back(Symbol::kIn);
        } else if (kw == "BETWEEN") {
          out.push_back(Symbol::kBetween);
        } else if (kw == "LIKE") {
          out.push_back(Symbol::kLike);
        } else if (kw == "GROUP" || (kw == "BY" && !out.empty() &&
                                     out.back() == Symbol::kGroupBy)) {
          region = Region::kGroupOrder;
          out.push_back(Symbol::kGroupBy);
        } else if (kw == "ORDER") {
          region = Region::kGroupOrder;
          out.push_back(Symbol::kOrderBy);
        } else if (kw == "BY") {
          out.push_back(out.empty() ? Symbol::kOrderBy : out.back());
        } else if (kw == "HAVING") {
          region = Region::kWhere;
          out.push_back(Symbol::kHaving);
        } else if (kw == "LIMIT") {
          out.push_back(Symbol::kLimit);
        } else if (kw == "ASC" || kw == "DESC") {
          out.push_back(Symbol::kAscDesc);
        } else if (kw == "UNION") {
          out.push_back(Symbol::kUnion);
        } else if (kw == "AS") {
          out.push_back(region == Region::kFromList ? Symbol::kTable
                                                    : Symbol::kSelectItem);
        } else if (kw == "IS" || kw == "NULL") {
          out.push_back(Symbol::kValueStr);
        } else {
          out.push_back(Symbol::kSelectItem);
        }
        continue;
      }
    }
  }
  return out;
}

std::vector<Symbol> StructuralSymbols(const std::string& sql) {
  auto tokens = sql::Lex(sql);
  if (!tokens.ok()) return {};
  return StructuralSymbols(tokens.value());
}

std::vector<Symbol> Collapse(const std::vector<Symbol>& symbols) {
  std::vector<Symbol> out;
  for (Symbol s : symbols) {
    if (out.empty() || out.back() != s) out.push_back(s);
  }
  return out;
}

std::string SymbolsToString(const std::vector<Symbol>& symbols) {
  std::string out;
  for (size_t i = 0; i < symbols.size(); ++i) {
    if (i > 0) out += " ";
    out += SymbolName(symbols[i]);
  }
  return out;
}

}  // namespace preqr::automaton
