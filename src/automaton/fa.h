#ifndef PREQR_AUTOMATON_FA_H_
#define PREQR_AUTOMATON_FA_H_

#include <map>
#include <string>
#include <vector>

#include "automaton/symbol.h"

namespace preqr::automaton {

// Deterministic finite automaton over structural symbols. Each state is
// labeled with the symbol that loops on it (lists of tokens collapse into a
// single state, cf. Figure 4 where the whole FROM list sits in state a4).
// Sub-automata (one per query template) are merged with the maximal-prefix
// strategy: templates sharing a prefix share the corresponding states.
class Automaton {
 public:
  struct State {
    Symbol label = Symbol::kStart;
    std::map<Symbol, int> next;
    bool is_final = false;
  };

  struct MatchResult {
    // One automaton state per input symbol (i.e. per SQL token).
    std::vector<int> states;
    // True iff every symbol had a transition and we ended in a final state.
    bool accepted = false;
  };

  // Walks the FA over a raw (uncollapsed) symbol sequence. Unknown
  // transitions keep the current state and mark the match unaccepted
  // (graceful degradation so the encoder always gets state features).
  MatchResult Match(const std::vector<Symbol>& symbols) const;

  int num_states() const { return static_cast<int>(states_.size()); }
  int start_state() const { return 0; }
  const State& state(int id) const { return states_[static_cast<size_t>(id)]; }

  // Human-readable transition table (for docs/tests).
  std::string ToString() const;

 private:
  friend class AutomatonBuilder;
  std::vector<State> states_;
};

// Builds the merged automaton from collapsed template symbol sequences.
class AutomatonBuilder {
 public:
  AutomatonBuilder();

  // Adds one template (collapsed symbol sequence, typically ending in kEnd).
  // A kUnion symbol loops back to the first kSelect state of this template
  // so `q UNION q` re-uses the same states (Table 2, query q3).
  void AddTemplate(const std::vector<Symbol>& collapsed);

  int num_templates() const { return num_templates_; }
  Automaton Build() const { return fa_; }

 private:
  Automaton fa_;
  int num_templates_ = 0;
};

}  // namespace preqr::automaton

#endif  // PREQR_AUTOMATON_FA_H_
