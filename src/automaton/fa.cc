#include "automaton/fa.h"

#include "common/check.h"

namespace preqr::automaton {

Automaton::MatchResult Automaton::Match(
    const std::vector<Symbol>& symbols) const {
  MatchResult result;
  result.states.reserve(symbols.size());
  int cur = start_state();
  bool ok = true;
  for (Symbol s : symbols) {
    const State& st = states_[static_cast<size_t>(cur)];
    if (st.label == s && cur != start_state()) {
      // Self-loop: token lists stay in the same state.
      result.states.push_back(cur);
      continue;
    }
    auto it = st.next.find(s);
    if (it != st.next.end()) {
      cur = it->second;
      result.states.push_back(cur);
      continue;
    }
    // No transition: degrade gracefully, stay put.
    ok = false;
    result.states.push_back(cur);
  }
  result.accepted =
      ok && states_[static_cast<size_t>(cur)].is_final;
  return result;
}

std::string Automaton::ToString() const {
  std::string out;
  for (size_t i = 0; i < states_.size(); ++i) {
    out += "a" + std::to_string(i) + "[" + SymbolName(states_[i].label) + "]";
    if (states_[i].is_final) out += "(final)";
    out += ":";
    for (const auto& [sym, to] : states_[i].next) {
      out += " ";
      out += SymbolName(sym);
      out += "->a" + std::to_string(to);
    }
    out += "\n";
  }
  return out;
}

AutomatonBuilder::AutomatonBuilder() {
  Automaton::State start;
  start.label = Symbol::kStart;
  fa_.states_.push_back(start);
}

void AutomatonBuilder::AddTemplate(const std::vector<Symbol>& collapsed) {
  ++num_templates_;
  int cur = fa_.start_state();
  int first_select = -1;
  for (Symbol s : collapsed) {
    // UNION loops back to the template's first SELECT state: the automaton
    // consumes the UNIONed branch with the same states (maximal reuse).
    auto& state = fa_.states_[static_cast<size_t>(cur)];
    auto it = state.next.find(s);
    if (it != state.next.end()) {
      cur = it->second;
    } else {
      Automaton::State next_state;
      next_state.label = s;
      const int id = static_cast<int>(fa_.states_.size());
      fa_.states_.push_back(next_state);
      fa_.states_[static_cast<size_t>(cur)].next[s] = id;
      cur = id;
    }
    if (s == Symbol::kSelect && first_select < 0) first_select = cur;
    if (s == Symbol::kUnion && first_select >= 0) {
      // After UNION, the next SELECT re-enters the shared chain.
      fa_.states_[static_cast<size_t>(cur)].next[Symbol::kSelect] =
          first_select;
    }
  }
  fa_.states_[static_cast<size_t>(cur)].is_final = true;
}

}  // namespace preqr::automaton
