#ifndef PREQR_AUTOMATON_SYMBOL_H_
#define PREQR_AUTOMATON_SYMBOL_H_

#include <string>
#include <vector>

#include "sql/lexer.h"

namespace preqr::automaton {

// The abstract alphabet the query-structure automaton runs over. Concrete
// identifiers/literals are projected to structural symbols so that queries
// with the same shape produce the same symbol sequence (Section 3.3.1).
enum class Symbol : int {
  kStart = 0,   // [CLS]
  kSelect,
  kDistinct,
  kAgg,         // COUNT/SUM/AVG/MIN/MAX and its (...) argument region
  kSelectItem,  // plain projection column(s), commas, stars
  kFrom,
  kTable,       // table names, aliases and commas of the FROM list
  kJoin,        // JOIN/INNER/LEFT/RIGHT/ON keywords
  kWhere,
  kColumn,      // a (qualified) column reference in predicates/group/order
  kOpEq,
  kOpNe,
  kOpLt,
  kOpLe,
  kOpGt,
  kOpGe,
  kLike,
  kIn,
  kBetween,
  kAnd,
  kOr,
  kNot,
  kValueNum,    // numeric literal
  kValueStr,    // string literal
  kLParen,
  kRParen,
  kGroupBy,
  kOrderBy,
  kHaving,
  kLimit,
  kAscDesc,
  kUnion,
  kEnd,         // [END]
  kNumSymbols,
};

constexpr int kNumSymbols = static_cast<int>(Symbol::kNumSymbols);

// Short printable name, e.g. "TAB", "COL", "=".
const char* SymbolName(Symbol s);

// Projects a lexed SQL token stream onto structural symbols, 1:1 with the
// input tokens (including the trailing kEnd token -> kEnd). A kStart symbol
// is *not* prepended; callers decide how to model [CLS].
std::vector<Symbol> StructuralSymbols(const std::vector<sql::Token>& tokens);

// Convenience: lex + symbolize. Returns empty vector on lex failure.
std::vector<Symbol> StructuralSymbols(const std::string& sql);

// Run-length collapses consecutive identical symbols (the automaton models
// token lists as states with self-loops).
std::vector<Symbol> Collapse(const std::vector<Symbol>& symbols);

// Renders a symbol sequence as a readable template string, e.g.
// "SELECT AGG FROM TAB WHERE COL = NUM".
std::string SymbolsToString(const std::vector<Symbol>& symbols);

}  // namespace preqr::automaton

#endif  // PREQR_AUTOMATON_SYMBOL_H_
