#include "automaton/template_extractor.h"

#include <cmath>
#include <limits>

#include "common/string_util.h"
#include "sql/lexer.h"

namespace preqr::automaton {

NormalizedQuery NormalizeForTemplate(const std::string& sql) {
  NormalizedQuery out;
  auto tokens = sql::Lex(sql);
  if (!tokens.ok()) return out;
  const auto symbols = StructuralSymbols(tokens.value());
  std::string* cur = &out.select_clause;
  for (size_t i = 0; i < symbols.size(); ++i) {
    const Symbol s = symbols[i];
    switch (s) {
      case Symbol::kSelect:
        cur = &out.select_clause;
        break;
      case Symbol::kFrom:
      case Symbol::kJoin:
        if (s == Symbol::kFrom) cur = &out.from_clause;
        break;
      case Symbol::kWhere:
        cur = &out.where_clause;
        break;
      case Symbol::kGroupBy:
      case Symbol::kOrderBy:
      case Symbol::kLimit:
      case Symbol::kUnion:
        cur = &out.tail_clause;
        break;
      default:
        break;
    }
    if (!cur->empty()) *cur += " ";
    *cur += SymbolName(s);
  }
  return out;
}

double TemplateDistance(const NormalizedQuery& a, const NormalizedQuery& b) {
  // Per-clause similarities weighted by the paper's emphasis: selection and
  // join structure matter most, then projections, then the tail.
  const double s_sel = StringSimilarity(a.select_clause, b.select_clause);
  const double s_from = StringSimilarity(a.from_clause, b.from_clause);
  const double s_where = StringSimilarity(a.where_clause, b.where_clause);
  const double s_tail = StringSimilarity(a.tail_clause, b.tail_clause);
  // Cosine-style merge: treat similarities as a vector against the ideal
  // (1,1,1,1), weighted.
  const double w_sel = 0.2, w_from = 0.3, w_where = 0.4, w_tail = 0.1;
  const double sim =
      w_sel * s_sel + w_from * s_from + w_where * s_where + w_tail * s_tail;
  return 1.0 - sim;
}

TemplateExtractor::Extraction TemplateExtractor::Extract(
    const std::vector<std::string>& queries) const {
  Extraction out;
  out.assignment.assign(queries.size(), -1);
  std::vector<NormalizedQuery> norms;
  norms.reserve(queries.size());
  for (const auto& q : queries) norms.push_back(NormalizeForTemplate(q));

  // Leader clustering: first member of each cluster is its leader.
  std::vector<int> leaders;
  std::vector<std::vector<int>> members;
  for (size_t i = 0; i < queries.size(); ++i) {
    int best = -1;
    double best_d = std::numeric_limits<double>::max();
    for (size_t c = 0; c < leaders.size(); ++c) {
      const double d =
          TemplateDistance(norms[i], norms[static_cast<size_t>(leaders[c])]);
      if (d < best_d) {
        best_d = d;
        best = static_cast<int>(c);
      }
    }
    if (best >= 0 && best_d <= epsilon_) {
      out.assignment[i] = best;
      members[static_cast<size_t>(best)].push_back(static_cast<int>(i));
    } else {
      out.assignment[i] = static_cast<int>(leaders.size());
      leaders.push_back(static_cast<int>(i));
      members.push_back({static_cast<int>(i)});
    }
  }

  // Medoid per cluster: the member minimizing total distance to the others.
  for (const auto& cluster : members) {
    int medoid = cluster[0];
    if (cluster.size() > 2) {
      double best_total = std::numeric_limits<double>::max();
      for (int i : cluster) {
        double total = 0;
        for (int j : cluster) {
          if (i != j) {
            total += TemplateDistance(norms[static_cast<size_t>(i)],
                                      norms[static_cast<size_t>(j)]);
          }
        }
        if (total < best_total) {
          best_total = total;
          medoid = i;
        }
      }
    }
    const auto symbols =
        StructuralSymbols(queries[static_cast<size_t>(medoid)]);
    out.templates.push_back(Collapse(symbols));
  }
  return out;
}

Automaton TemplateExtractor::BuildAutomaton(
    const std::vector<std::string>& queries) const {
  const Extraction extraction = Extract(queries);
  AutomatonBuilder builder;
  for (const auto& t : extraction.templates) builder.AddTemplate(t);
  return builder.Build();
}

}  // namespace preqr::automaton
