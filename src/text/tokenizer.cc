#include "text/tokenizer.h"

#include <algorithm>
#include <functional>
#include <map>

#include "common/check.h"
#include "common/string_util.h"
#include "sql/lexer.h"
#include "sql/parser.h"

namespace preqr::text {

namespace {

constexpr const char* kKeywords[] = {
    "SELECT", "FROM", "WHERE",  "AND",   "OR",    "NOT",      "IN",
    "BETWEEN", "LIKE", "UNION", "GROUP", "BY",    "ORDER",    "HAVING",
    "AS",      "JOIN", "ON",    "INNER", "LEFT",  "RIGHT",    "COUNT",
    "SUM",     "AVG",  "MIN",   "MAX",   "DISTINCT", "LIMIT", "ASC",
    "DESC",    "IS",   "NULL"};

constexpr const char* kSymbols[] = {"(", ")", ",", ".", "*", "=",
                                    "<>", "<", "<=", ">", ">=", ";"};

// Collects binding-name -> table-name over the whole statement tree
// (top-level FROM, UNION branches, IN-subqueries).
void CollectBindings(const sql::SelectStatement& stmt,
                     std::map<std::string, std::string>* bindings) {
  for (const auto& t : stmt.tables) {
    (*bindings)[t.BindingName()] = t.table;
    (*bindings)[t.table] = t.table;
  }
  for (const auto& p : stmt.predicates) {
    if (p.subquery) CollectBindings(*p.subquery, bindings);
  }
  if (stmt.union_next) CollectBindings(*stmt.union_next, bindings);
}

}  // namespace

SqlTokenizer::SqlTokenizer(const sql::Catalog& catalog,
                           const std::vector<db::TableStats>& stats,
                           int num_value_buckets)
    : catalog_(catalog), num_value_buckets_(num_value_buckets) {
  for (const char* kw : kKeywords) vocab_.Add(kw);
  for (const char* s : kSymbols) vocab_.Add(s);
  vocab_.Add("[NUM]");
  vocab_.Add("[STR]");

  buckets_.resize(catalog.tables().size());
  for (size_t t = 0; t < catalog.tables().size(); ++t) {
    const auto& table = catalog.tables()[t];
    vocab_.Add(table.name);
    for (const auto& piece : SplitAny(ToLower(table.name), "_")) {
      vocab_.Add(piece);
    }
    buckets_[t].resize(table.columns.size());
    for (size_t c = 0; c < table.columns.size(); ++c) {
      const auto& col = table.columns[c];
      vocab_.Add(table.name + "." + col.name);
      vocab_.Add(col.name);
      for (const auto& piece : SplitAny(ToLower(col.name), "_")) {
        vocab_.Add(piece);
      }
      // Range tokens for numeric columns; hashed buckets for strings.
      if (col.type == sql::ColumnType::kString) {
        for (int b = 0; b < num_value_buckets_; ++b) {
          vocab_.Add(table.name + "." + col.name + "#s" + std::to_string(b));
        }
      } else {
        for (int b = 0; b < num_value_buckets_; ++b) {
          vocab_.Add(table.name + "." + col.name + "#" + std::to_string(b));
        }
      }
      // Bucket cut points from the stats histogram (equi-depth).
      if (t < stats.size() && c < stats[t].columns.size()) {
        const auto& cs = stats[t].columns[c];
        if (!cs.histogram_bounds.empty()) {
          auto& bk = buckets_[t][c];
          bk.cdf = cs.histogram_bounds;
          for (int b = 1; b < num_value_buckets_; ++b) {
            const size_t idx = static_cast<size_t>(
                static_cast<double>(b) / num_value_buckets_ *
                static_cast<double>(cs.histogram_bounds.size() - 1));
            bk.bounds.push_back(cs.histogram_bounds[idx]);
          }
        }
        // String MCVs become first-class value tokens.
        for (const auto& [v, freq] : cs.mcv_string) {
          vocab_.Add("v:" + v);
        }
      }
    }
  }
}

std::string SqlTokenizer::RangeToken(const std::string& table,
                                     const std::string& column,
                                     double value) const {
  const int t = catalog_.TableIndex(table);
  if (t < 0) return "[NUM]";
  const int c = catalog_.tables()[static_cast<size_t>(t)].ColumnIndex(column);
  if (c < 0) return "[NUM]";
  const auto& bounds = buckets_[static_cast<size_t>(t)][static_cast<size_t>(c)]
                           .bounds;
  int bucket = 0;
  for (double b : bounds) {
    if (value > b) ++bucket;
  }
  bucket = std::min(bucket, num_value_buckets_ - 1);
  return table + "." + column + "#" + std::to_string(bucket);
}

float SqlTokenizer::ValueQuantile(const std::string& table,
                                  const std::string& column,
                                  double value) const {
  const int t = catalog_.TableIndex(table);
  if (t < 0) return 0.0f;
  const int c = catalog_.tables()[static_cast<size_t>(t)].ColumnIndex(column);
  if (c < 0) return 0.0f;
  const auto& cdf =
      buckets_[static_cast<size_t>(t)][static_cast<size_t>(c)].cdf;
  if (cdf.size() < 2) return 0.5f;
  // Fraction of equi-depth bounds below the value, interpolated.
  size_t below = 0;
  while (below < cdf.size() && cdf[below] < value) ++below;
  float q = static_cast<float>(below) / static_cast<float>(cdf.size() - 1);
  if (below > 0 && below < cdf.size() && cdf[below] > cdf[below - 1]) {
    const float frac = static_cast<float>(
        (value - cdf[below - 1]) / (cdf[below] - cdf[below - 1]));
    q = (static_cast<float>(below - 1) + frac) /
        static_cast<float>(cdf.size() - 1);
  }
  return std::clamp(q, 0.0f, 1.0f);
}

std::string SqlTokenizer::StringToken(const std::string& table,
                                      const std::string& column,
                                      const std::string& value) const {
  const std::string mcv = "v:" + value;
  if (vocab_.Contains(mcv)) return mcv;
  const size_t h =
      std::hash<std::string>{}(value) % static_cast<size_t>(num_value_buckets_);
  const std::string bucket =
      table + "." + column + "#s" + std::to_string(h);
  return vocab_.Contains(bucket) ? bucket : "[STR]";
}

Result<SqlTokenizer::Tokenized> SqlTokenizer::Tokenize(
    const std::string& sql) const {
  auto lexed = sql::Lex(sql);
  if (!lexed.ok()) return lexed.status();
  auto parsed = sql::Parse(sql);
  if (!parsed.ok()) return parsed.status();
  const auto& tokens = lexed.value();
  const auto symbols = automaton::StructuralSymbols(tokens);

  std::map<std::string, std::string> bindings;
  CollectBindings(parsed.value(), &bindings);

  auto resolve_table = [&](const std::string& name) -> std::string {
    auto it = bindings.find(name);
    if (it != bindings.end()) return it->second;
    return catalog_.TableIndex(name) >= 0 ? name : "";
  };
  // Unique table owning an unqualified column name, or "".
  auto owner_of_column = [&](const std::string& column) -> std::string {
    std::string owner;
    for (const auto& [binding, table] : bindings) {
      const sql::TableDef* def = catalog_.FindTable(table);
      if (def != nullptr && def->ColumnIndex(column) >= 0) {
        if (!owner.empty() && owner != table) return "";
        owner = table;
      }
    }
    return owner;
  };

  Tokenized out;
  out.tokens.push_back("[CLS]");
  out.symbols.push_back(automaton::Symbol::kStart);
  out.quantiles.push_back(0.0f);

  // Alignment: one output token per lexer token.
  std::string pending_qualifier;  // alias seen before a '.'
  std::string last_table, last_column;  // governs literal bucketing
  for (size_t i = 0; i < tokens.size(); ++i) {
    const sql::Token& tok = tokens[i];
    const automaton::Symbol sym = symbols[i];
    float quantile = 0.0f;
    switch (tok.type) {
      case sql::TokenType::kEnd:
        out.tokens.push_back("[END]");
        break;
      case sql::TokenType::kKeyword:
      case sql::TokenType::kSymbol:
        out.tokens.push_back(tok.text);
        break;
      case sql::TokenType::kNumber: {
        if (!last_table.empty()) {
          out.tokens.push_back(RangeToken(last_table, last_column, tok.number));
          quantile = ValueQuantile(last_table, last_column, tok.number);
        } else {
          out.tokens.push_back("[NUM]");
          quantile = 0.5f;
        }
        break;
      }
      case sql::TokenType::kString: {
        if (!last_table.empty()) {
          out.tokens.push_back(StringToken(last_table, last_column, tok.text));
        } else {
          out.tokens.push_back("[STR]");
        }
        break;
      }
      case sql::TokenType::kIdentifier: {
        const bool qualified =
            i > 0 && tokens[i - 1].IsSymbol(".") && !pending_qualifier.empty();
        if (qualified) {
          const std::string table = resolve_table(pending_qualifier);
          pending_qualifier.clear();
          const sql::TableDef* def =
              table.empty() ? nullptr : catalog_.FindTable(table);
          if (def != nullptr && def->ColumnIndex(tok.text) >= 0) {
            out.tokens.push_back(table + "." + tok.text);
            last_table = table;
            last_column = tok.text;
          } else {
            out.tokens.push_back(tok.text);
          }
          break;
        }
        // Is the next token a '.'? Then this is a qualifier.
        if (i + 1 < tokens.size() && tokens[i + 1].IsSymbol(".")) {
          pending_qualifier = tok.text;
          const std::string table = resolve_table(tok.text);
          out.tokens.push_back(table.empty() ? tok.text : table);
          break;
        }
        // Table name / alias in a FROM region?
        const std::string table = resolve_table(tok.text);
        if (sym == automaton::Symbol::kTable && !table.empty()) {
          out.tokens.push_back(table);
          break;
        }
        // Unqualified column.
        const std::string owner = owner_of_column(tok.text);
        if (!owner.empty()) {
          out.tokens.push_back(owner + "." + tok.text);
          last_table = owner;
          last_column = tok.text;
        } else if (!table.empty()) {
          out.tokens.push_back(table);
        } else {
          out.tokens.push_back(ToLower(tok.text));
        }
        break;
      }
    }
    out.symbols.push_back(sym);
    out.quantiles.push_back(quantile);
  }
  out.ids.reserve(out.tokens.size());
  for (const auto& t : out.tokens) out.ids.push_back(vocab_.Id(t));
  return out;
}

SqlTokenizer::TokenizedBatch SqlTokenizer::Collate(
    const std::vector<const Tokenized*>& items, int max_len) {
  PREQR_CHECK_GT(max_len, 0);
  TokenizedBatch batch;
  batch.batch_size = static_cast<int>(items.size());
  batch.lengths.reserve(items.size());
  batch.symbols.reserve(items.size());
  for (const Tokenized* item : items) {
    PREQR_CHECK(item != nullptr);
    const int len =
        std::min(static_cast<int>(item->ids.size()), max_len);
    batch.lengths.push_back(len);
    batch.t_max = std::max(batch.t_max, len);
    batch.symbols.push_back(item->symbols);
  }
  const size_t stride = static_cast<size_t>(batch.t_max);
  const size_t total = static_cast<size_t>(batch.batch_size) * stride;
  batch.ids.assign(total, Vocab::kPadId);
  batch.quantiles.assign(total, 0.0f);
  batch.mask.assign(total, 0.0f);
  for (size_t b = 0; b < items.size(); ++b) {
    const Tokenized& item = *items[b];
    const size_t len = static_cast<size_t>(batch.lengths[b]);
    const size_t off = b * stride;
    std::copy(item.ids.begin(), item.ids.begin() + static_cast<long>(len),
              batch.ids.begin() + static_cast<long>(off));
    std::copy(item.quantiles.begin(),
              item.quantiles.begin() + static_cast<long>(len),
              batch.quantiles.begin() + static_cast<long>(off));
    std::fill(batch.mask.begin() + static_cast<long>(off),
              batch.mask.begin() + static_cast<long>(off + len), 1.0f);
  }
  return batch;
}

SqlTokenizer::TokenizedBatch SqlTokenizer::Collate(
    const std::vector<Tokenized>& items, int max_len) {
  std::vector<const Tokenized*> ptrs;
  ptrs.reserve(items.size());
  for (const Tokenized& item : items) ptrs.push_back(&item);
  return Collate(ptrs, max_len);
}

}  // namespace preqr::text
