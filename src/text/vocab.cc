#include "text/vocab.h"

#include <cstdio>
#include <memory>

namespace preqr::text {

Vocab::Vocab() {
  Add("[PAD]");
  Add("[UNK]");
  Add("[CLS]");
  Add("[END]");
  Add("[MASK]");
}

int Vocab::Add(const std::string& token) {
  auto it = index_.find(token);
  if (it != index_.end()) return it->second;
  const int id = static_cast<int>(tokens_.size());
  tokens_.push_back(token);
  index_.emplace(token, id);
  return id;
}

int Vocab::Id(const std::string& token) const {
  auto it = index_.find(token);
  return it == index_.end() ? kUnkId : it->second;
}

bool Vocab::Contains(const std::string& token) const {
  return index_.count(token) > 0;
}

Status Vocab::Save(const std::string& path) const {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> f(
      std::fopen(path.c_str(), "w"), &std::fclose);
  if (!f) return Status::InvalidArgument("cannot open " + path);
  for (const auto& t : tokens_) {
    std::fprintf(f.get(), "%s\n", t.c_str());
  }
  return Status::Ok();
}

Result<Vocab> Vocab::Load(const std::string& path) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> f(
      std::fopen(path.c_str(), "r"), &std::fclose);
  if (!f) return Status::NotFound("cannot open " + path);
  Vocab vocab;
  char buf[4096];
  int line = 0;
  while (std::fgets(buf, sizeof(buf), f.get()) != nullptr) {
    std::string token(buf);
    while (!token.empty() && (token.back() == '\n' || token.back() == '\r')) {
      token.pop_back();
    }
    if (line >= vocab.size()) vocab.Add(token);
    ++line;
  }
  return vocab;
}

}  // namespace preqr::text
