#ifndef PREQR_TEXT_VOCAB_H_
#define PREQR_TEXT_VOCAB_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace preqr::text {

// Token vocabulary with the special tokens the MLM pre-training needs.
class Vocab {
 public:
  static constexpr int kPadId = 0;
  static constexpr int kUnkId = 1;
  static constexpr int kClsId = 2;
  static constexpr int kEndId = 3;
  static constexpr int kMaskId = 4;

  Vocab();

  // Adds a token if absent; returns its id either way.
  int Add(const std::string& token);
  // Id of `token`, or kUnkId.
  int Id(const std::string& token) const;
  bool Contains(const std::string& token) const;
  const std::string& Token(int id) const {
    return tokens_[static_cast<size_t>(id)];
  }
  int size() const { return static_cast<int>(tokens_.size()); }

  Status Save(const std::string& path) const;
  static Result<Vocab> Load(const std::string& path);

 private:
  std::vector<std::string> tokens_;
  std::unordered_map<std::string, int> index_;
};

}  // namespace preqr::text

#endif  // PREQR_TEXT_VOCAB_H_
