#ifndef PREQR_TEXT_TOKENIZER_H_
#define PREQR_TEXT_TOKENIZER_H_

#include <string>
#include <vector>

#include "automaton/symbol.h"
#include "common/status.h"
#include "db/stats.h"
#include "text/vocab.h"

namespace preqr::text {

// Database-specific SQL tokenizer (Section 3.3.2):
//  * the vocabulary holds SQL keywords/symbols, schema tokens (table names
//    and qualified column names), string MCVs, and per-column range tokens;
//  * aliases are resolved to their table tokens, qualified column refs to
//    their `table.column` token (schema linking at the lexical level);
//  * literal values are replaced by per-column *range tokens*
//    (`table.column#<bucket>`), so the model sees each column's own value
//    distribution instead of a globally normalized float (Figure 1's third
//    drawback).
class SqlTokenizer {
 public:
  // `stats` must be aligned with catalog.tables(). `num_value_buckets` is
  // the number of equi-depth ranges per numeric column.
  SqlTokenizer(const sql::Catalog& catalog,
               const std::vector<db::TableStats>& stats,
               int num_value_buckets = 8);

  struct Tokenized {
    // Aligned sequences, starting with [CLS] and ending with [END].
    std::vector<std::string> tokens;
    std::vector<int> ids;
    // Structural symbols per position (kStart for [CLS]).
    std::vector<automaton::Symbol> symbols;
    // Per-position continuous channel: for numeric literals, the value's
    // empirical quantile in its column's distribution (the continuous
    // refinement of the range token); 0 elsewhere.
    std::vector<float> quantiles;
  };

  // Tokenizes a query. Parse failures propagate as errors.
  Result<Tokenized> Tokenize(const std::string& sql) const;

  // A padded batch of tokenized queries in [B, T_max] row-major layout:
  // example b is valid at positions [0, lengths[b]) and padded with kPadId
  // (ids) / 0 (quantiles, mask) above. Lengths are clipped to max_len, and
  // t_max is the longest clipped length in the batch — so padding adapts to
  // the batch, never to a global maximum.
  struct TokenizedBatch {
    int batch_size = 0;
    int t_max = 0;
    std::vector<int> lengths;      // clipped length per example
    std::vector<int> ids;          // [B * t_max]
    std::vector<float> quantiles;  // [B * t_max]
    std::vector<float> mask;       // [B * t_max], 1 = valid, 0 = pad
    // Full (unclipped) symbol sequence per example: the automaton state
    // channel must see the whole sequence, exactly as the single-query
    // path does.
    std::vector<std::vector<automaton::Symbol>> symbols;
  };

  // Collates tokenized queries into a padded batch, clipping each example
  // to max_len positions. Pure repacking — no floats are touched, so the
  // batch carries exactly the per-example values Tokenize produced.
  static TokenizedBatch Collate(const std::vector<const Tokenized*>& items,
                                int max_len);
  static TokenizedBatch Collate(const std::vector<Tokenized>& items,
                                int max_len);

  // The catalog this tokenizer was built against (non-owned reference:
  // whoever bundles a tokenizer must keep its catalog alive, which is
  // exactly what serving::TenantContext checks).
  const sql::Catalog& catalog() const { return catalog_; }
  const Vocab& vocab() const { return vocab_; }
  int num_value_buckets() const { return num_value_buckets_; }

  // Range token for a numeric value of a column, e.g.
  // "title.production_year#3".
  std::string RangeToken(const std::string& table, const std::string& column,
                         double value) const;
  // Empirical quantile of `value` in the column's distribution, in [0, 1].
  float ValueQuantile(const std::string& table, const std::string& column,
                      double value) const;
  // Token for a string literal: the MCV token when frequent, otherwise a
  // hashed bucket token "table.column#s<h>".
  std::string StringToken(const std::string& table, const std::string& column,
                          const std::string& value) const;

 private:
  struct ColumnBuckets {
    std::vector<double> bounds;  // ascending, size num_buckets-1 cut points
    std::vector<double> cdf;     // full equi-depth histogram bounds
  };

  const sql::Catalog& catalog_;
  Vocab vocab_;
  int num_value_buckets_;
  // (table index, column index) -> bucket cut points.
  std::vector<std::vector<ColumnBuckets>> buckets_;
};

}  // namespace preqr::text

#endif  // PREQR_TEXT_TOKENIZER_H_
