#include "core/preqr_model.h"

#include <algorithm>
#include <optional>

namespace preqr::core {

using nn::Tensor;

TrmGLayer::TrmGLayer(const PreqrConfig& config, Rng& rng)
    : trm_(config.d_model, config.num_heads, config.ffn_hidden, rng),
      graph_attention_(config.d_model, config.num_heads, rng),
      graph_ffn_(config.d_model, config.ffn_hidden, rng),
      graph_ln1_(config.d_model),
      graph_ln2_(config.d_model),
      fuse_(2 * config.d_model, config.d_model, rng),
      fuse_ln_(config.d_model) {
  RegisterChild("trm", &trm_);
  RegisterChild("graph_attn", &graph_attention_);
  RegisterChild("graph_ffn", &graph_ffn_);
  RegisterChild("graph_ln1", &graph_ln1_);
  RegisterChild("graph_ln2", &graph_ln2_);
  RegisterChild("fuse", &fuse_);
  RegisterChild("fuse_ln", &fuse_ln_);
}

Tensor TrmGLayer::Forward(const Tensor& e_q,
                          const Tensor& schema_nodes) const {
  // Original transformer (Eq. 6).
  Tensor q = trm_.Forward(e_q);
  if (!schema_nodes.defined()) return q;
  // Query-aware sub-graph transformer (Eq. 5, 7): scaled dot-product
  // attention from query tokens onto the schema graph representation e_G,
  // residual + layer norms + FFN.
  Tensor attended = graph_attention_.Forward(q, schema_nodes);
  Tensor e_g = graph_ln1_.Forward(nn::Add(q, attended));
  e_g = graph_ln2_.Forward(nn::Add(e_g, graph_ffn_.Forward(e_g)));
  // y = Concat(e_q, e_g) (Eq. 8), projected back to d_model so every
  // sub-layer keeps output dimension d_model; normalized so downstream
  // heads see a stable scale across sequence lengths.
  return fuse_ln_.Forward(fuse_.Forward(nn::ConcatLastDim({q, e_g})));
}

Tensor TrmGLayer::ForwardBatch(const Tensor& e_q, const Tensor& schema_nodes,
                               const std::vector<int>& lengths) const {
  Tensor q = trm_.ForwardBatch(e_q, lengths);
  if (!schema_nodes.defined()) return q;
  // Cross attention onto the shared schema nodes needs no mask: every key
  // is a valid schema vertex, and q's pad rows are exactly zero after the
  // masked trm_ norms, so they produce finite junk that the masked norms
  // below re-zero without ever reaching a valid row.
  Tensor attended = graph_attention_.Forward(q, schema_nodes);
  Tensor e_g = graph_ln1_.ForwardMasked(nn::Add(q, attended), lengths);
  e_g = graph_ln2_.ForwardMasked(nn::Add(e_g, graph_ffn_.Forward(e_g)),
                                 lengths);
  return fuse_ln_.ForwardMasked(fuse_.Forward(nn::ConcatLastDim({q, e_g})),
                                lengths);
}

PreqrModel::PreqrModel(PreqrConfig config, const text::SqlTokenizer* tokenizer,
                       const automaton::Automaton* fa,
                       const schema::SchemaGraph* graph, uint64_t seed)
    : config_(config),
      tokenizer_(tokenizer),
      fa_(fa),
      graph_(graph),
      rng_(seed),
      token_embedding_(tokenizer->vocab().size(), config.d_model, rng_),
      state_embedding_(fa->num_states() + 1, config.state_dim, rng_),
      position_embedding_(config.max_seq_len, config.pos_dim, rng_),
      composite_proj_(config.d_model + config.state_dim + config.pos_dim + 1,
                      config.d_model, rng_),
      name_lstm_(config.d_model, config.name_lstm_hidden, rng_),
      name_proj_(2 * config.name_lstm_hidden, config.d_model, rng_),
      mlm_head_(config.d_model, tokenizer->vocab().size(), rng_) {
  RegisterChild("token_embedding", &token_embedding_);
  RegisterChild("state_embedding", &state_embedding_);
  RegisterChild("position_embedding", &position_embedding_);
  RegisterChild("composite_proj", &composite_proj_);
  RegisterChild("name_lstm", &name_lstm_);
  RegisterChild("name_proj", &name_proj_);
  for (int l = 0; l < config.rgcn_layers; ++l) {
    rgcn_.push_back(std::make_unique<nn::RgcnLayer>(
        config.d_model, config.d_model, schema::kNumEdgeTypes, rng_));
    RegisterChild("rgcn" + std::to_string(l), rgcn_.back().get());
  }
  for (int l = 0; l < config.num_layers; ++l) {
    layers_.push_back(std::make_unique<TrmGLayer>(config, rng_));
    RegisterChild("trm_g" + std::to_string(l), layers_.back().get());
  }
  RegisterChild("mlm_head", &mlm_head_);

  graph->RelationalEdges(&rel_edges_, &rel_norms_);
  for (const auto& node : graph->nodes()) {
    std::vector<int> ids;
    for (const auto& tok : node.name_tokens) {
      ids.push_back(tokenizer_->vocab().Id(tok));
    }
    if (ids.empty()) ids.push_back(text::Vocab::kUnkId);
    node_name_ids_.push_back(std::move(ids));
  }
}

Tensor PreqrModel::EncodeSchemaNodes(bool with_grad) {
  // Eq. 1-2: BiLSTM over the name tokens of each vertex, summary =
  // Concat(fwd last, rev first); then R-GCN propagation (Eq. 3).
  // Without grad the whole branch runs tape-free (no parents/grad_fn are
  // ever allocated), so the result is already detached.
  std::optional<nn::NoGradGuard> no_grad;
  if (!with_grad) no_grad.emplace();
  std::vector<Tensor> summaries;
  summaries.reserve(node_name_ids_.size());
  for (const auto& ids : node_name_ids_) {
    Tensor name_emb = token_embedding_.Forward(ids);  // [T, d]
    summaries.push_back(name_lstm_.Forward(name_emb).summary);  // [1, 2h]
  }
  Tensor h = name_proj_.Forward(nn::ConcatRows(summaries));  // [N, d]
  for (const auto& layer : rgcn_) {
    h = layer->Forward(h, rel_edges_, rel_norms_);
  }
  return h;
}

Tensor PreqrModel::EmbedInput(const text::SqlTokenizer::Tokenized& tokenized,
                              const std::vector<int>& override_ids) const {
  const std::vector<int>& ids =
      override_ids.empty() ? tokenized.ids : override_ids;
  const int s = std::min<int>(static_cast<int>(ids.size()),
                              config_.max_seq_len);
  std::vector<int> tok_ids(ids.begin(), ids.begin() + s);
  // SQL state ids via the automaton (Section 3.3.1). [CLS] is the start
  // state; matching degrades gracefully for unknown structures.
  std::vector<int> state_ids(static_cast<size_t>(s), 0);
  if (config_.use_automaton) {
    std::vector<automaton::Symbol> symbols(
        tokenized.symbols.begin() + 1,
        tokenized.symbols.begin() + static_cast<long>(tokenized.symbols.size()));
    const auto match = fa_->Match(symbols);
    for (int i = 1; i < s; ++i) {
      state_ids[static_cast<size_t>(i)] =
          match.states[static_cast<size_t>(i - 1)] + 1;
    }
    state_ids[0] = fa_->start_state() + 1;
  }
  std::vector<int> pos_ids(static_cast<size_t>(s));
  for (int i = 0; i < s; ++i) pos_ids[static_cast<size_t>(i)] = i;

  Tensor tok = token_embedding_.Forward(tok_ids);        // [S, d]
  Tensor state = state_embedding_.Forward(state_ids);    // [S, ds]
  Tensor pos = position_embedding_.Forward(pos_ids);     // [S, dp]
  // Continuous refinement of the range tokens: the value's empirical
  // quantile in its column's distribution (0 for non-value positions).
  std::vector<float> quantiles(static_cast<size_t>(s), 0.0f);
  for (int i = 0; i < s && i < static_cast<int>(tokenized.quantiles.size());
       ++i) {
    quantiles[static_cast<size_t>(i)] =
        tokenized.quantiles[static_cast<size_t>(i)];
  }
  Tensor quant = Tensor::FromData({s, 1}, std::move(quantiles));
  // Composite embedding e(t_i) = (b(t_i), a(t_i), pos(t_i)) (Section 3.3.2).
  Tensor composite = nn::ConcatLastDim({tok, state, pos, quant});
  return composite_proj_.Forward(composite);  // [S, d]
}

Tensor PreqrModel::EmbedInputBatch(
    const text::SqlTokenizer::TokenizedBatch& batch,
    const std::vector<std::vector<int>>& override_ids) const {
  const int bsz = batch.batch_size;
  const int t = batch.t_max;
  PREQR_CHECK_GT(bsz, 0);
  PREQR_CHECK_LE(t, config_.max_seq_len);
  if (!override_ids.empty()) {
    PREQR_CHECK_EQ(static_cast<int>(override_ids.size()), bsz);
  }
  const size_t total = static_cast<size_t>(bsz) * static_cast<size_t>(t);
  // Flattened [B*T] id channels; pads use the same benign ids throughout
  // (kPadId / state 0 / position 0 / quantile 0) — their rows are junk by
  // design and the masked layers never let a valid row read them.
  std::vector<int> tok_ids(batch.ids);
  std::vector<int> state_ids(total, 0);
  std::vector<int> pos_ids(total, 0);
  std::vector<float> quantiles(batch.quantiles);
  for (int b = 0; b < bsz; ++b) {
    const int s = batch.lengths[static_cast<size_t>(b)];
    const size_t off = static_cast<size_t>(b) * static_cast<size_t>(t);
    if (!override_ids.empty()) {
      const auto& ids = override_ids[static_cast<size_t>(b)];
      PREQR_CHECK_GE(static_cast<int>(ids.size()), s);
      std::copy(ids.begin(), ids.begin() + s,
                tok_ids.begin() + static_cast<long>(off));
    }
    // SQL state ids, per example, exactly as EmbedInput computes them: the
    // automaton sees the example's full symbol sequence.
    if (config_.use_automaton) {
      const auto& symbols = batch.symbols[static_cast<size_t>(b)];
      std::vector<automaton::Symbol> tail(
          symbols.begin() + 1,
          symbols.begin() + static_cast<long>(symbols.size()));
      const auto match = fa_->Match(tail);
      for (int i = 1; i < s; ++i) {
        state_ids[off + static_cast<size_t>(i)] =
            match.states[static_cast<size_t>(i - 1)] + 1;
      }
      state_ids[off] = fa_->start_state() + 1;
    }
    for (int i = 0; i < s; ++i) {
      pos_ids[off + static_cast<size_t>(i)] = i;
    }
  }
  // One gather/projection per channel for the whole batch: row-wise ops on
  // the flattened [B*T, .] views, bitwise-identical per valid row to the
  // per-example path and B times fewer dispatches.
  Tensor tok = token_embedding_.Forward(tok_ids);      // [B*T, d]
  Tensor state = state_embedding_.Forward(state_ids);  // [B*T, ds]
  Tensor pos = position_embedding_.Forward(pos_ids);   // [B*T, dp]
  Tensor quant =
      Tensor::FromData({static_cast<int>(total), 1}, std::move(quantiles));
  Tensor composite = nn::ConcatLastDim({tok, state, pos, quant});
  Tensor h = composite_proj_.Forward(composite);  // [B*T, d]
  return nn::Reshape(h, {bsz, t, config_.d_model});
}

PreqrModel::Encoding PreqrModel::Forward(
    const text::SqlTokenizer::Tokenized& tokenized, const Tensor& schema_nodes,
    const std::vector<int>& masked_ids, Rng* dropout_rng) {
  Tensor h = EmbedInput(tokenized, masked_ids);
  h = nn::Dropout(h, config_.dropout, dropout_rng ? *dropout_rng : rng_,
                  train_mode());
  const Tensor schema =
      config_.use_schema ? schema_nodes : Tensor();
  for (const auto& layer : layers_) {
    h = layer->Forward(h, schema);
  }
  Encoding enc;
  enc.tokens = h;
  enc.cls = nn::SliceRows(h, 0, 1);
  return enc;
}

Tensor PreqrModel::MlmLogits(const Tensor& token_states) const {
  return mlm_head_.Forward(token_states);
}

Tensor PreqrModel::ForwardBatch(
    const text::SqlTokenizer::TokenizedBatch& batch, const Tensor& schema_nodes,
    const std::vector<std::vector<int>>& masked_ids,
    const std::vector<uint64_t>& dropout_seeds) {
  Tensor h = EmbedInputBatch(batch, masked_ids);
  if (train_mode() && config_.dropout > 0.0f) {
    // Scheduling-independent dropout needs one pre-drawn seed per example
    // (the trainer's serial RNG pre-pass supplies them).
    PREQR_CHECK_EQ(dropout_seeds.size(),
                   static_cast<size_t>(batch.batch_size));
    h = nn::MaskedDropout(h, config_.dropout, dropout_seeds, batch.lengths,
                          /*train=*/true);
  }
  const Tensor schema = config_.use_schema ? schema_nodes : Tensor();
  for (const auto& layer : layers_) {
    h = layer->ForwardBatch(h, schema, batch.lengths);
  }
  return h;  // [B, T, d]
}

Tensor PreqrModel::EncodePrefix(
    const text::SqlTokenizer::Tokenized& tokenized,
    const Tensor& schema_nodes_detached) {
  // The prefix is frozen in the fine-tune-last-layer protocol, so the
  // embedding + first L-1 layers always run tape-free; the result needs no
  // copy-out-of-the-tape.
  nn::NoGradGuard no_grad;
  Tensor h = EmbedInput(tokenized, {});
  const Tensor schema = config_.use_schema ? schema_nodes_detached : Tensor();
  for (size_t l = 0; l + 1 < layers_.size(); ++l) {
    h = layers_[l]->Forward(h, schema);
  }
  return h;
}

PreqrModel::Encoding PreqrModel::LastLayer(const Tensor& prefix_states,
                                           const Tensor& schema_nodes) {
  const Tensor schema = config_.use_schema ? schema_nodes : Tensor();
  Tensor h = layers_.back()->Forward(prefix_states, schema);
  Encoding enc;
  enc.tokens = h;
  enc.cls = nn::SliceRows(h, 0, 1);
  return enc;
}

Tensor PreqrModel::EncodePrefixBatch(
    const text::SqlTokenizer::TokenizedBatch& batch,
    const Tensor& schema_nodes_detached) {
  // Frozen prefix, same as EncodePrefix: the whole padded forward runs
  // tape-free on pooled storage.
  nn::NoGradGuard no_grad;
  Tensor h = EmbedInputBatch(batch, {});
  const Tensor schema = config_.use_schema ? schema_nodes_detached : Tensor();
  for (size_t l = 0; l + 1 < layers_.size(); ++l) {
    h = layers_[l]->ForwardBatch(h, schema, batch.lengths);
  }
  return h;  // [B, T, d]
}

Tensor PreqrModel::LastLayerBatch(const Tensor& prefix_states,
                                  const Tensor& schema_nodes,
                                  const std::vector<int>& lengths) {
  const Tensor schema = config_.use_schema ? schema_nodes : Tensor();
  return layers_.back()->ForwardBatch(prefix_states, schema, lengths);
}

Result<PreqrModel::Encoding> PreqrModel::Encode(const std::string& sql) {
  auto tokenized = tokenizer_->Tokenize(sql);
  if (!tokenized.ok()) return tokenized.status();
  if (!cached_schema_.defined() && config_.use_schema) {
    cached_schema_ = EncodeSchemaNodes(/*with_grad=*/false);
  }
  const bool was_training = train_mode();
  set_train(false);
  Encoding enc;
  {
    // Inference: no tape, pooled intermediates; outputs are born detached.
    nn::NoGradGuard no_grad;
    enc = Forward(tokenized.value(), cached_schema_);
  }
  set_train(was_training);
  return enc;
}

std::vector<Tensor> PreqrModel::LastLayerParameters() const {
  return layers_.back()->Parameters();
}

std::vector<Tensor> PreqrModel::SchemaParameters() const {
  std::vector<Tensor> out = name_lstm_.Parameters();
  for (const auto& t : name_proj_.Parameters()) out.push_back(t);
  for (const auto& layer : rgcn_) {
    for (const auto& t : layer->Parameters()) out.push_back(t);
  }
  return out;
}

std::vector<Tensor> PreqrModel::InputParameters() const {
  std::vector<Tensor> out = token_embedding_.Parameters();
  for (const auto& t : state_embedding_.Parameters()) out.push_back(t);
  for (const auto& t : position_embedding_.Parameters()) out.push_back(t);
  for (const auto& t : composite_proj_.Parameters()) out.push_back(t);
  return out;
}

}  // namespace preqr::core
