#ifndef PREQR_CORE_PREQR_MODEL_H_
#define PREQR_CORE_PREQR_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "automaton/fa.h"
#include "common/status.h"
#include "core/config.h"
#include "nn/module.h"
#include "schema/schema_graph.h"
#include "text/tokenizer.h"

namespace preqr::core {

// One Trm_g block (Figure 6): the original transformer encoder sub-layer
// over the query tokens, plus the query-aware sub-graph transformer that
// cross-attends tokens to schema-node embeddings; outputs are concatenated
// and projected back to d_model.
class TrmGLayer : public nn::Module {
 public:
  TrmGLayer(const PreqrConfig& config, Rng& rng);

  // e_q: [S, d]; schema_nodes: [N, d] (empty tensor disables the schema
  // branch, cf. PreQRNT). Returns [S, d].
  nn::Tensor Forward(const nn::Tensor& e_q,
                     const nn::Tensor& schema_nodes) const;

  // Padded-batch forward over [B, T, d]: masked self-attention inside trm_,
  // unmasked cross-attention onto the shared schema nodes (every key is
  // valid), masked layer norms throughout. Valid rows are bitwise the
  // single-example Forward; pad rows come out exactly zero.
  nn::Tensor ForwardBatch(const nn::Tensor& e_q,
                          const nn::Tensor& schema_nodes,
                          const std::vector<int>& lengths) const;

 private:
  nn::TransformerEncoderLayer trm_;        // black rectangle of Figure 6
  nn::MultiHeadAttention graph_attention_; // red rectangle: Trm'
  nn::FeedForward graph_ffn_;
  nn::LayerNorm graph_ln1_, graph_ln2_;
  nn::Linear fuse_;  // Concat(e_q, e_g) [S,2d] -> [S,d]
  nn::LayerNorm fuse_ln_;  // keeps every sub-layer output normalized
};

// The full PreQR model: Input Embedding (token + SQL state + position),
// Query-Aware Schema (BiLSTM name encoder + R-GCN), and SQLBERT (a stack of
// Trm_g layers with an MLM head).
class PreqrModel : public nn::Module {
 public:
  // Pointers are non-owned and must outlive the model.
  PreqrModel(PreqrConfig config, const text::SqlTokenizer* tokenizer,
             const automaton::Automaton* fa, const schema::SchemaGraph* graph,
             uint64_t seed = 1234);

  struct Encoding {
    nn::Tensor tokens;  // [S, d] final token representations
    nn::Tensor cls;     // [1, d] aggregate representation
  };

  // --- Schema branch ----------------------------------------------------
  // Encodes all schema nodes ([N, d]); call once per training step and
  // share across the batch. With `with_grad=false` the result is detached
  // (used for frozen-encoder fine-tuning and inference).
  nn::Tensor EncodeSchemaNodes(bool with_grad);

  // --- Full forward (pre-training) ---------------------------------------
  // `masked_ids` may override token ids (MLM); empty = use tokenized ids.
  // `dropout_rng` overrides the model's internal RNG for the dropout mask;
  // pass a per-example RNG when running forwards on several threads so the
  // draw sequence is independent of scheduling (nullptr = internal RNG).
  Encoding Forward(const text::SqlTokenizer::Tokenized& tokenized,
                   const nn::Tensor& schema_nodes,
                   const std::vector<int>& masked_ids = {},
                   Rng* dropout_rng = nullptr);

  // MLM prediction head over the final token states: [S, vocab] (or
  // [B, T, vocab] for a batched input — the head is row-wise).
  nn::Tensor MlmLogits(const nn::Tensor& token_states) const;

  // --- Batched forward ([B, T, d] padded execution) -----------------------
  // The batch must have been collated with max_len = config().max_seq_len.
  // Padding invariance: row i < batch.lengths[b] of every output is
  // bitwise-identical to the same row of the single-query Forward /
  // EncodePrefix on that example alone; pad rows are exactly zero.
  //
  // Full forward for the batched MLM step. `masked_ids[b]` (optional)
  // overrides example b's token ids; in train mode `dropout_seeds[b]`
  // seeds example b's private dropout stream (the serial RNG pre-pass in
  // the trainer keeps draws independent of scheduling). Returns [B, T, d].
  nn::Tensor ForwardBatch(const text::SqlTokenizer::TokenizedBatch& batch,
                          const nn::Tensor& schema_nodes,
                          const std::vector<std::vector<int>>& masked_ids = {},
                          const std::vector<uint64_t>& dropout_seeds = {});

  // --- Split forward (fine-tuning: frozen prefix + trainable last layer) --
  // Runs embedding + the first L-1 layers without recording gradients.
  nn::Tensor EncodePrefix(const text::SqlTokenizer::Tokenized& tokenized,
                          const nn::Tensor& schema_nodes_detached);
  // Batched counterpart: one tape-free padded forward for the whole batch.
  // Returns [B, T, d]; slice per example with nn::SliceExample.
  nn::Tensor EncodePrefixBatch(const text::SqlTokenizer::TokenizedBatch& batch,
                               const nn::Tensor& schema_nodes_detached);
  // Runs the last Trm_g layer (with gradients into its parameters).
  Encoding LastLayer(const nn::Tensor& prefix_states,
                     const nn::Tensor& schema_nodes);
  // Batched last layer over padded prefixes [B, T, d] (lengths[b] valid
  // rows each). Gradients (train mode) flow into the layer's parameters
  // exactly as LastLayer's would.
  nn::Tensor LastLayerBatch(const nn::Tensor& prefix_states,
                            const nn::Tensor& schema_nodes,
                            const std::vector<int>& lengths);

  // Convenience: tokenize + encode with a cached no-grad schema encoding.
  Result<Encoding> Encode(const std::string& sql);

  // Invalidate the cached inference schema encoding (after training steps).
  void InvalidateSchemaCache() { cached_schema_ = nn::Tensor(); }

  // --- Parameter groups (Section 3.6 update cases) -------------------------
  std::vector<nn::Tensor> LastLayerParameters() const;   // Case 1
  std::vector<nn::Tensor> SchemaParameters() const;      // Case 2
  std::vector<nn::Tensor> InputParameters() const;       // Case 3

  const PreqrConfig& config() const { return config_; }
  const text::SqlTokenizer& tokenizer() const { return *tokenizer_; }
  int vocab_size() const { return tokenizer_->vocab().size(); }

 private:
  nn::Tensor EmbedInput(const text::SqlTokenizer::Tokenized& tokenized,
                        const std::vector<int>& override_ids) const;
  // Padded batch embedding [B, T, d]: per-example state/position ids are
  // computed exactly as EmbedInput does, then all channels gather/project
  // as one [B*T, .] block (row-wise ops, so per-row bits match).
  nn::Tensor EmbedInputBatch(const text::SqlTokenizer::TokenizedBatch& batch,
                             const std::vector<std::vector<int>>& override_ids)
      const;

  PreqrConfig config_;
  const text::SqlTokenizer* tokenizer_;
  const automaton::Automaton* fa_;
  const schema::SchemaGraph* graph_;
  mutable Rng rng_;

  // Input Embedding.
  nn::Embedding token_embedding_;
  nn::Embedding state_embedding_;
  nn::Embedding position_embedding_;
  nn::Linear composite_proj_;

  // Query-Aware Schema.
  nn::BiLstm name_lstm_;
  nn::Linear name_proj_;
  std::vector<std::unique_ptr<nn::RgcnLayer>> rgcn_;
  std::vector<std::vector<nn::Edge>> rel_edges_;
  std::vector<std::vector<float>> rel_norms_;
  // Tokenized schema node names (vocab ids), cached at construction.
  std::vector<std::vector<int>> node_name_ids_;

  // SQLBERT.
  std::vector<std::unique_ptr<TrmGLayer>> layers_;
  nn::Linear mlm_head_;

  nn::Tensor cached_schema_;  // no-grad cache for inference
};

}  // namespace preqr::core

#endif  // PREQR_CORE_PREQR_MODEL_H_
