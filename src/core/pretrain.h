#ifndef PREQR_CORE_PRETRAIN_H_
#define PREQR_CORE_PRETRAIN_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/preqr_model.h"
#include "nn/optim.h"

namespace preqr::core {

// Masked-language-model pre-training (Section 3.5.2): 15% of tokens are
// selected; 80% become [MASK], 10% a random vocabulary token, 10% stay, and
// the model predicts the originals with cross-entropy.
//
// Training state (model weights, Adam moments, the trainer RNG, and the
// loop cursor) can be checkpointed to a PRC1 file and restored in a fresh
// process. Resume is exact: because masking and dropout seeds are drawn
// serially in example order before any parallel work, restoring the RNG
// state and the epoch's shuffled order replays the identical draw
// sequence, so a run resumed at step k is bit-identical to one that never
// stopped (pinned by checkpoint_resume_test).
class Pretrainer {
 public:
  struct Options {
    int epochs = 2;
    int batch_size = 8;      // queries per schema-encoding/optimizer step
    float lr = 1e-3f;
    uint64_t seed = 99;
    bool verbose = false;
    // Write a checkpoint to `checkpoint_path` every this many optimizer
    // steps (0 = never). Failures are reported on stderr and via
    // last_checkpoint_status(); training continues.
    int64_t checkpoint_every = 0;
    std::string checkpoint_path;
    // Stop after this many optimizer steps (0 = run all epochs). Used to
    // bound incremental-update rounds and by the interrupted-training
    // drill.
    int64_t max_steps = 0;
  };

  Pretrainer(PreqrModel& model, Options options);

  struct EpochStats {
    double mlm_loss = 0;
    double masked_accuracy = 0;
  };

  // Pre-trains on the workload; returns per-epoch stats (on a resumed run:
  // for all epochs, including those completed before the checkpoint).
  // Without a preceding ResumeFrom, every call starts training from
  // scratch (fresh optimizer, step 0).
  std::vector<EpochStats> Train(const std::vector<std::string>& queries);

  // One MLM loss evaluation without updates (validation).
  EpochStats Evaluate(const std::vector<std::string>& queries);

  // Writes the full training state (model, optimizer, RNG, step, loop
  // cursor) as one atomic PRC1 checkpoint; a crash mid-save never
  // clobbers the previous checkpoint at `path`.
  Status SaveCheckpoint(const std::string& path) const;

  // Restores training state from a PRC1 checkpoint. Transactional: on any
  // error the model, optimizer, and trainer are left untouched. The next
  // Train call must receive the same query corpus and options the
  // checkpointed run used; it continues from the saved step.
  Status ResumeFrom(const std::string& path);

  int64_t step() const { return step_; }
  // The live optimizer (nullptr before the first Train/ResumeFrom); tests
  // compare its StateDict across runs.
  const nn::Adam* optimizer() const { return opt_.get(); }
  const Status& last_checkpoint_status() const {
    return last_checkpoint_status_;
  }

 private:
  struct MaskedExample {
    std::vector<int> input_ids;   // with [MASK]/random substitutions
    std::vector<int> targets;     // original id at masked slots, -1 elsewhere
  };
  MaskedExample MaskTokens(const std::vector<int>& ids);

  PreqrModel& model_;
  Options options_;
  Rng rng_;

  // Training progress; all of it rides along in checkpoints so a resumed
  // run continues mid-epoch with identical bookkeeping.
  std::unique_ptr<nn::Adam> opt_;
  int64_t step_ = 0;
  int64_t epoch_ = 0;
  uint64_t cursor_ = 0;              // next example index into order_
  std::vector<uint64_t> order_;      // current epoch's shuffled order
  double loss_sum_ = 0, correct_ = 0, masked_ = 0;
  int64_t batches_ = 0;
  std::vector<EpochStats> history_;
  bool mid_epoch_resume_ = false;    // skip the next epoch-start shuffle
  Status last_checkpoint_status_;
};

}  // namespace preqr::core

#endif  // PREQR_CORE_PRETRAIN_H_
