#ifndef PREQR_CORE_PRETRAIN_H_
#define PREQR_CORE_PRETRAIN_H_

#include <string>
#include <vector>

#include "core/preqr_model.h"
#include "nn/optim.h"

namespace preqr::core {

// Masked-language-model pre-training (Section 3.5.2): 15% of tokens are
// selected; 80% become [MASK], 10% a random vocabulary token, 10% stay, and
// the model predicts the originals with cross-entropy.
class Pretrainer {
 public:
  struct Options {
    int epochs = 2;
    int batch_size = 8;      // queries per schema-encoding/optimizer step
    float lr = 1e-3f;
    uint64_t seed = 99;
    bool verbose = false;
  };

  Pretrainer(PreqrModel& model, Options options);

  struct EpochStats {
    double mlm_loss = 0;
    double masked_accuracy = 0;
  };

  // Pre-trains on the workload; returns per-epoch stats.
  std::vector<EpochStats> Train(const std::vector<std::string>& queries);

  // One MLM loss evaluation without updates (validation).
  EpochStats Evaluate(const std::vector<std::string>& queries);

 private:
  struct MaskedExample {
    std::vector<int> input_ids;   // with [MASK]/random substitutions
    std::vector<int> targets;     // original id at masked slots, -1 elsewhere
  };
  MaskedExample MaskTokens(const std::vector<int>& ids);

  PreqrModel& model_;
  Options options_;
  Rng rng_;
};

}  // namespace preqr::core

#endif  // PREQR_CORE_PRETRAIN_H_
