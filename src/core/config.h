#ifndef PREQR_CORE_CONFIG_H_
#define PREQR_CORE_CONFIG_H_

namespace preqr::core {

// Hyper-parameters of the PreQR model. The paper's reference configuration
// is L=4, H=256, A=4 (~40M parameters); the defaults here are scaled down
// so CPU pre-training finishes in seconds while preserving the
// architecture. Table 13 sweeps L/H/A through this config.
struct PreqrConfig {
  int d_model = 64;        // H: hidden size of every sub-layer output
  int num_layers = 2;      // L: number of Trm_g blocks
  int num_heads = 4;       // A: attention heads
  int ffn_hidden = 128;    // position-wise FFN inner size
  int state_dim = 16;      // SQL state (automaton) embedding size
  int pos_dim = 16;        // position embedding size
  int max_seq_len = 256;   // longest tokenized query
  int name_lstm_hidden = 32;  // BiLSTM hidden for schema node names
  int rgcn_layers = 2;     // R-GCN depth over the schema graph
  float dropout = 0.1f;
  float mask_prob = 0.15f;  // MLM masking rate

  // Ablation switches (Table 12): PreQRNA disables the automaton channel,
  // PreQRNT disables the query-aware schema transformer, BERT disables both.
  bool use_automaton = true;
  bool use_schema = true;
};

}  // namespace preqr::core

#endif  // PREQR_CORE_CONFIG_H_
