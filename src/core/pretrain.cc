#include "core/pretrain.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <numeric>

#include "common/thread_pool.h"
#include "nn/checkpoint.h"
#include "nn/ops.h"
#include "nn/serialize.h"

namespace preqr::core {

namespace {

template <typename T>
void AppendScalar(std::string* out, T v) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out->append(buf, sizeof(T));
}

template <typename T>
bool ReadScalar(const std::string& bytes, size_t* offset, T* v) {
  if (bytes.size() - *offset < sizeof(T)) return false;
  std::memcpy(v, bytes.data() + *offset, sizeof(T));
  *offset += sizeof(T);
  return true;
}

// The loop cursor the "trainer" checkpoint section carries: everything
// Train needs (besides model/optimizer/RNG) to continue mid-epoch.
struct TrainerCursor {
  int64_t epoch = 0;
  uint64_t cursor = 0;
  std::vector<uint64_t> order;
  double loss_sum = 0, correct = 0, masked = 0;
  int64_t batches = 0;
  std::vector<Pretrainer::EpochStats> history;
};

std::string EncodeTrainerCursor(const TrainerCursor& c) {
  std::string out;
  AppendScalar<int64_t>(&out, c.epoch);
  AppendScalar<uint64_t>(&out, c.cursor);
  AppendScalar<uint64_t>(&out, c.order.size());
  for (uint64_t idx : c.order) AppendScalar<uint64_t>(&out, idx);
  AppendScalar<double>(&out, c.loss_sum);
  AppendScalar<double>(&out, c.correct);
  AppendScalar<double>(&out, c.masked);
  AppendScalar<int64_t>(&out, c.batches);
  AppendScalar<uint64_t>(&out, c.history.size());
  for (const auto& e : c.history) {
    AppendScalar<double>(&out, e.mlm_loss);
    AppendScalar<double>(&out, e.masked_accuracy);
  }
  return out;
}

Status DecodeTrainerCursor(const std::string& payload, TrainerCursor* out) {
  TrainerCursor c;
  size_t offset = 0;
  uint64_t order_len = 0;
  if (!ReadScalar(payload, &offset, &c.epoch) ||
      !ReadScalar(payload, &offset, &c.cursor) ||
      !ReadScalar(payload, &offset, &order_len) ||
      order_len > (payload.size() - offset) / sizeof(uint64_t)) {
    return Status::ParseError("truncated trainer section");
  }
  c.order.resize(order_len);
  for (auto& idx : c.order) {
    if (!ReadScalar(payload, &offset, &idx)) {
      return Status::ParseError("truncated trainer order");
    }
  }
  uint64_t history_len = 0;
  if (!ReadScalar(payload, &offset, &c.loss_sum) ||
      !ReadScalar(payload, &offset, &c.correct) ||
      !ReadScalar(payload, &offset, &c.masked) ||
      !ReadScalar(payload, &offset, &c.batches) ||
      !ReadScalar(payload, &offset, &history_len) ||
      history_len > (payload.size() - offset) / (2 * sizeof(double))) {
    return Status::ParseError("truncated trainer stats");
  }
  c.history.resize(history_len);
  for (auto& e : c.history) {
    if (!ReadScalar(payload, &offset, &e.mlm_loss) ||
        !ReadScalar(payload, &offset, &e.masked_accuracy)) {
      return Status::ParseError("truncated trainer history");
    }
  }
  if (offset != payload.size()) {
    return Status::ParseError("trailing garbage in trainer section");
  }
  if (c.epoch < 0 || c.batches < 0 || c.cursor > c.order.size()) {
    return Status::InvalidArgument("inconsistent trainer cursor");
  }
  *out = std::move(c);
  return Status::Ok();
}

}  // namespace

Pretrainer::Pretrainer(PreqrModel& model, Options options)
    : model_(model), options_(options), rng_(options.seed) {}

Pretrainer::MaskedExample Pretrainer::MaskTokens(const std::vector<int>& ids) {
  MaskedExample ex;
  ex.input_ids = ids;
  ex.targets.assign(ids.size(), -1);
  const int vocab = model_.vocab_size();
  for (size_t i = 0; i < ids.size(); ++i) {
    // Never mask the special [CLS]/[END] anchors.
    if (ids[i] == text::Vocab::kClsId || ids[i] == text::Vocab::kEndId) {
      continue;
    }
    if (rng_.NextFloat() >= model_.config().mask_prob) continue;
    ex.targets[i] = ids[i];
    const float dice = rng_.NextFloat();
    if (dice < 0.8f) {
      ex.input_ids[i] = text::Vocab::kMaskId;
    } else if (dice < 0.9f) {
      ex.input_ids[i] = static_cast<int>(rng_.NextUint64(
          static_cast<uint64_t>(vocab)));
    }  // else: keep the original token
  }
  return ex;
}

Status Pretrainer::SaveCheckpoint(const std::string& path) const {
  nn::CheckpointWriter writer;
  writer.AddSection(nn::kSectionModel, nn::EncodeModuleParams(model_));
  if (opt_) {
    writer.AddSection(nn::kSectionOptimizer,
                      nn::EncodeOptimizerState(opt_->StateDict()));
  }
  writer.AddSection(nn::kSectionRng, nn::EncodeRngState(rng_.state()));
  writer.AddSection(nn::kSectionStep,
                    nn::EncodeU64(static_cast<uint64_t>(step_)));
  TrainerCursor cursor;
  cursor.epoch = epoch_;
  cursor.cursor = cursor_;
  cursor.order = order_;
  cursor.loss_sum = loss_sum_;
  cursor.correct = correct_;
  cursor.masked = masked_;
  cursor.batches = batches_;
  cursor.history = history_;
  writer.AddSection(nn::kSectionTrainer, EncodeTrainerCursor(cursor));
  return writer.WriteAtomic(path);
}

Status Pretrainer::ResumeFrom(const std::string& path) {
  nn::CheckpointReader reader;
  Status s = reader.Open(path);
  if (!s.ok()) return s;

  const std::string* rng_sec = reader.Section(nn::kSectionRng);
  const std::string* step_sec = reader.Section(nn::kSectionStep);
  const std::string* trainer_sec = reader.Section(nn::kSectionTrainer);
  const std::string* optim_sec = reader.Section(nn::kSectionOptimizer);
  if (rng_sec == nullptr || step_sec == nullptr || trainer_sec == nullptr) {
    return Status::InvalidArgument("checkpoint missing training sections: " +
                                   path);
  }
  // Decode and validate everything before mutating anything, so a bad
  // checkpoint leaves the trainer (and the model) fully intact.
  Rng::State rng_state;
  s = nn::DecodeRngState(*rng_sec, &rng_state);
  if (!s.ok()) return s;
  uint64_t step = 0;
  s = nn::DecodeU64(*step_sec, &step);
  if (!s.ok()) return s;
  TrainerCursor cursor;
  s = DecodeTrainerCursor(*trainer_sec, &cursor);
  if (!s.ok()) return s;
  auto opt = std::make_unique<nn::Adam>(model_.Parameters(), options_.lr);
  if (optim_sec != nullptr) {
    nn::OptimizerState optim_state;
    s = nn::DecodeOptimizerState(*optim_sec, &optim_state);
    if (!s.ok()) return s;
    s = opt->LoadStateDict(optim_state);
    if (!s.ok()) return s;
  }
  const std::string* model_sec = reader.Section(nn::kSectionModel);
  if (model_sec == nullptr) {
    return Status::InvalidArgument("checkpoint has no model section: " + path);
  }
  // Last: the only mutation that can still fail is itself transactional.
  s = nn::DecodeModuleParams(model_, *model_sec, path);
  if (!s.ok()) return s;

  rng_.set_state(rng_state);
  opt_ = std::move(opt);
  step_ = static_cast<int64_t>(step);
  epoch_ = cursor.epoch;
  cursor_ = cursor.cursor;
  order_ = std::move(cursor.order);
  loss_sum_ = cursor.loss_sum;
  correct_ = cursor.correct;
  masked_ = cursor.masked;
  batches_ = cursor.batches;
  history_ = std::move(cursor.history);
  mid_epoch_resume_ = true;
  return Status::Ok();
}

std::vector<Pretrainer::EpochStats> Pretrainer::Train(
    const std::vector<std::string>& queries) {
  // Tokenize once.
  std::vector<text::SqlTokenizer::Tokenized> tokenized;
  tokenized.reserve(queries.size());
  for (const auto& q : queries) {
    auto t = model_.tokenizer().Tokenize(q);
    if (t.ok()) tokenized.push_back(std::move(t.value()));
  }
  PREQR_CHECK(!tokenized.empty());

  const bool resuming = mid_epoch_resume_;
  if (resuming) {
    // ResumeFrom restored optimizer, RNG, step, and the epoch cursor; the
    // corpus must match the checkpointed run for the order to make sense.
    PREQR_CHECK_MSG(order_.size() == tokenized.size(),
                    "resume corpus differs from checkpointed run");
  } else {
    // Legacy semantics: every un-resumed Train starts from scratch.
    opt_ = std::make_unique<nn::Adam>(model_.Parameters(), options_.lr);
    step_ = 0;
    epoch_ = 0;
    cursor_ = 0;
    loss_sum_ = correct_ = masked_ = 0;
    batches_ = 0;
    history_.clear();
    order_.resize(tokenized.size());
    std::iota(order_.begin(), order_.end(), uint64_t{0});
  }

  model_.set_train(true);
  for (; epoch_ < options_.epochs; ++epoch_) {
    if (!mid_epoch_resume_) {
      // Deterministic in-place shuffle (consumes the trainer RNG).
      for (size_t i = order_.size(); i > 1; --i) {
        std::swap(order_[i - 1], order_[rng_.NextUint64(i)]);
      }
      cursor_ = 0;
      loss_sum_ = correct_ = masked_ = 0;
      batches_ = 0;
    }
    mid_epoch_resume_ = false;
    for (size_t start = cursor_; start < order_.size();
         start += static_cast<size_t>(options_.batch_size)) {
      const size_t end = std::min(
          order_.size(), start + static_cast<size_t>(options_.batch_size));
      opt_->ZeroGrad();
      // One schema encoding per step, shared across the batch (gradients
      // flow into the Schema2Graph parameters through every query).
      nn::Tensor schema = model_.config().use_schema
                              ? model_.EncodeSchemaNodes(/*with_grad=*/true)
                              : nn::Tensor();
      // Serial pre-pass: masking and dropout seeds consume the trainer RNG
      // in example order, so the draw sequence — and therefore every
      // result — is independent of how the forwards are scheduled. The
      // same property makes checkpointed resume exact: the RNG state plus
      // this epoch's order fully determine all remaining draws.
      const size_t bsz = end - start;
      std::vector<MaskedExample> examples(bsz);
      std::vector<uint64_t> dropout_seeds(bsz);
      for (size_t bi = 0; bi < bsz; ++bi) {
        examples[bi] = MaskTokens(tokenized[order_[start + bi]].ids);
        dropout_seeds[bi] = rng_.NextUint64();
      }
      // One padded [B, T, d] forward for the whole batch. Inside the model
      // the kernels are partitioned per example, so every valid row — and
      // therefore the loss and its gradients — is bitwise the value the
      // retired per-example loop produced (and stays independent of thread
      // count and batch composition; see batch_invariance_test).
      std::vector<const text::SqlTokenizer::Tokenized*> items(bsz);
      std::vector<std::vector<int>> inputs(bsz);
      for (size_t bi = 0; bi < bsz; ++bi) {
        items[bi] = &tokenized[order_[start + bi]];
        inputs[bi] = examples[bi].input_ids;
      }
      const auto batch =
          text::SqlTokenizer::Collate(items, model_.config().max_seq_len);
      nn::Tensor tokens =
          model_.ForwardBatch(batch, schema, inputs, dropout_seeds);
      nn::Tensor logits = model_.MlmLogits(tokens);  // [B, T, vocab]
      const int t_max = batch.t_max;
      // Padded targets: -1 everywhere a row must not contribute (pads and
      // unmasked positions alike).
      std::vector<int> targets(bsz * static_cast<size_t>(t_max), -1);
      for (size_t bi = 0; bi < bsz; ++bi) {
        const int len = batch.lengths[bi];
        std::copy(examples[bi].targets.begin(),
                  examples[bi].targets.begin() + len,
                  targets.begin() + static_cast<long>(bi) * t_max);
      }
      nn::Tensor batch_loss =
          nn::MaskedCrossEntropy(logits, targets, batch.lengths, -1);
      // Accuracy bookkeeping over valid masked rows.
      const int vocab = model_.vocab_size();
      std::vector<int> ex_correct(bsz, 0), ex_masked(bsz, 0);
      ParallelFor(0, static_cast<int64_t>(bsz), 1, [&](int64_t b0,
                                                       int64_t b1) {
        for (int64_t bi = b0; bi < b1; ++bi) {
          const size_t off = static_cast<size_t>(bi) * t_max;
          for (int i = 0; i < batch.lengths[static_cast<size_t>(bi)]; ++i) {
            if (targets[off + static_cast<size_t>(i)] < 0) continue;
            ex_masked[static_cast<size_t>(bi)] += 1;
            const float* row =
                logits.data() + (off + static_cast<size_t>(i)) * vocab;
            int best = 0;
            for (int v = 1; v < vocab; ++v) {
              if (row[v] > row[best]) best = v;
            }
            if (best == targets[off + static_cast<size_t>(i)]) {
              ex_correct[static_cast<size_t>(bi)] += 1;
            }
          }
        }
      });
      for (size_t bi = 0; bi < bsz; ++bi) {
        correct_ += ex_correct[bi];
        masked_ += ex_masked[bi];
      }
      batch_loss.Backward();
      opt_->Step();
      loss_sum_ += batch_loss.item();
      ++batches_;
      ++step_;
      cursor_ = end;
      if (options_.checkpoint_every > 0 &&
          !options_.checkpoint_path.empty() &&
          step_ % options_.checkpoint_every == 0) {
        last_checkpoint_status_ = SaveCheckpoint(options_.checkpoint_path);
        if (!last_checkpoint_status_.ok()) {
          std::fprintf(stderr, "[pretrain] checkpoint failed at step %lld: %s\n",
                       static_cast<long long>(step_),
                       last_checkpoint_status_.ToString().c_str());
        }
      }
      if (options_.max_steps > 0 && step_ >= options_.max_steps) {
        // Stop mid-run; ResumeFrom on a checkpoint written here continues
        // exactly where this left off.
        model_.set_train(false);
        model_.InvalidateSchemaCache();
        return history_;
      }
    }
    EpochStats stats;
    stats.mlm_loss = loss_sum_ / std::max<int64_t>(1, batches_);
    stats.masked_accuracy = masked_ > 0 ? correct_ / masked_ : 0;
    history_.push_back(stats);
    if (options_.verbose) {
      std::fprintf(stderr, "[pretrain] epoch %lld loss=%.4f acc=%.3f\n",
                   static_cast<long long>(epoch_), stats.mlm_loss,
                   stats.masked_accuracy);
    }
  }
  model_.set_train(false);
  model_.InvalidateSchemaCache();
  return history_;
}

Pretrainer::EpochStats Pretrainer::Evaluate(
    const std::vector<std::string>& queries) {
  model_.set_train(false);
  nn::Tensor schema = model_.config().use_schema
                          ? model_.EncodeSchemaNodes(/*with_grad=*/false)
                          : nn::Tensor();
  // Tokenization + masking consume the RNG serially in query order; the
  // (pure) forward passes then run in parallel with per-slot outputs.
  std::vector<text::SqlTokenizer::Tokenized> toks;
  std::vector<MaskedExample> examples;
  for (const auto& q : queries) {
    auto t = model_.tokenizer().Tokenize(q);
    if (!t.ok()) continue;
    examples.push_back(MaskTokens(t.value().ids));
    toks.push_back(std::move(t.value()));
  }
  const size_t n_ex = toks.size();
  const int vocab = model_.vocab_size();
  double loss_sum = 0, correct = 0, masked = 0;
  int n = 0;
  // Chunked padded forwards: each chunk is one tape-free [B, T, d] pass.
  const size_t chunk = std::max(1, options_.batch_size);
  for (size_t start = 0; start < n_ex; start += chunk) {
    const size_t end = std::min(n_ex, start + chunk);
    const size_t bsz = end - start;
    std::vector<const text::SqlTokenizer::Tokenized*> items(bsz);
    std::vector<std::vector<int>> inputs(bsz);
    for (size_t bi = 0; bi < bsz; ++bi) {
      items[bi] = &toks[start + bi];
      inputs[bi] = examples[start + bi].input_ids;
    }
    const auto batch =
        text::SqlTokenizer::Collate(items, model_.config().max_seq_len);
    nn::NoGradGuard no_grad;
    nn::Tensor logits =
        model_.MlmLogits(model_.ForwardBatch(batch, schema, inputs));
    const int t_max = batch.t_max;
    std::vector<int> targets(bsz * static_cast<size_t>(t_max), -1);
    for (size_t bi = 0; bi < bsz; ++bi) {
      std::copy(examples[start + bi].targets.begin(),
                examples[start + bi].targets.begin() + batch.lengths[bi],
                targets.begin() + static_cast<long>(bi) * t_max);
    }
    std::vector<float> example_loss;
    nn::MaskedCrossEntropy(logits, targets, batch.lengths, -1, &example_loss);
    for (size_t bi = 0; bi < bsz; ++bi) {
      loss_sum += example_loss[bi];
      ++n;
      const size_t off = bi * static_cast<size_t>(t_max);
      for (int i = 0; i < batch.lengths[bi]; ++i) {
        if (targets[off + static_cast<size_t>(i)] < 0) continue;
        masked += 1;
        const float* row =
            logits.data() + (off + static_cast<size_t>(i)) * vocab;
        int best = 0;
        for (int v = 1; v < vocab; ++v) {
          if (row[v] > row[best]) best = v;
        }
        if (best == targets[off + static_cast<size_t>(i)]) correct += 1;
      }
    }
  }
  EpochStats stats;
  stats.mlm_loss = n > 0 ? loss_sum / n : 0;
  stats.masked_accuracy = masked > 0 ? correct / masked : 0;
  return stats;
}

}  // namespace preqr::core
