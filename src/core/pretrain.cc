#include "core/pretrain.h"

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "common/thread_pool.h"
#include "nn/ops.h"

namespace preqr::core {

Pretrainer::Pretrainer(PreqrModel& model, Options options)
    : model_(model), options_(options), rng_(options.seed) {}

Pretrainer::MaskedExample Pretrainer::MaskTokens(const std::vector<int>& ids) {
  MaskedExample ex;
  ex.input_ids = ids;
  ex.targets.assign(ids.size(), -1);
  const int vocab = model_.vocab_size();
  for (size_t i = 0; i < ids.size(); ++i) {
    // Never mask the special [CLS]/[END] anchors.
    if (ids[i] == text::Vocab::kClsId || ids[i] == text::Vocab::kEndId) {
      continue;
    }
    if (rng_.NextFloat() >= model_.config().mask_prob) continue;
    ex.targets[i] = ids[i];
    const float dice = rng_.NextFloat();
    if (dice < 0.8f) {
      ex.input_ids[i] = text::Vocab::kMaskId;
    } else if (dice < 0.9f) {
      ex.input_ids[i] = static_cast<int>(rng_.NextUint64(
          static_cast<uint64_t>(vocab)));
    }  // else: keep the original token
  }
  return ex;
}

std::vector<Pretrainer::EpochStats> Pretrainer::Train(
    const std::vector<std::string>& queries) {
  // Tokenize once.
  std::vector<text::SqlTokenizer::Tokenized> tokenized;
  tokenized.reserve(queries.size());
  for (const auto& q : queries) {
    auto t = model_.tokenizer().Tokenize(q);
    if (t.ok()) tokenized.push_back(std::move(t.value()));
  }
  PREQR_CHECK(!tokenized.empty());

  nn::Adam opt(model_.Parameters(), options_.lr);
  std::vector<EpochStats> history;
  std::vector<size_t> order(tokenized.size());
  std::iota(order.begin(), order.end(), 0);

  model_.set_train(true);
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    // Deterministic shuffle.
    for (size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng_.NextUint64(i)]);
    }
    double loss_sum = 0;
    double correct = 0, masked = 0;
    int batches = 0;
    for (size_t start = 0; start < order.size();
         start += static_cast<size_t>(options_.batch_size)) {
      const size_t end = std::min(
          order.size(), start + static_cast<size_t>(options_.batch_size));
      opt.ZeroGrad();
      // One schema encoding per step, shared across the batch (gradients
      // flow into the Schema2Graph parameters through every query).
      nn::Tensor schema = model_.config().use_schema
                              ? model_.EncodeSchemaNodes(/*with_grad=*/true)
                              : nn::Tensor();
      // Serial pre-pass: masking and dropout seeds consume the trainer RNG
      // in example order, so the draw sequence — and therefore every
      // result — is independent of how the forwards are scheduled.
      const size_t bsz = end - start;
      std::vector<MaskedExample> examples(bsz);
      std::vector<uint64_t> dropout_seeds(bsz);
      for (size_t bi = 0; bi < bsz; ++bi) {
        examples[bi] = MaskTokens(tokenized[order[start + bi]].ids);
        dropout_seeds[bi] = rng_.NextUint64();
      }
      // Per-example MLM forward + loss in parallel. Each slot is written by
      // exactly one iteration; the loss tensors are summed afterwards in
      // example order, so gradients reduce deterministically.
      std::vector<nn::Tensor> losses(bsz);
      std::vector<int> ex_correct(bsz, 0), ex_masked(bsz, 0);
      const int vocab = model_.vocab_size();
      ParallelFor(0, static_cast<int64_t>(bsz), 1, [&](int64_t b0,
                                                       int64_t b1) {
        for (int64_t bi = b0; bi < b1; ++bi) {
          const auto& tok = tokenized[order[start + static_cast<size_t>(bi)]];
          const MaskedExample& ex = examples[static_cast<size_t>(bi)];
          Rng dropout_rng(dropout_seeds[static_cast<size_t>(bi)]);
          auto enc = model_.Forward(tok, schema, ex.input_ids, &dropout_rng);
          nn::Tensor logits = model_.MlmLogits(enc.tokens);
          // Truncate targets to the (possibly clipped) sequence length.
          std::vector<int> targets(ex.targets.begin(),
                                   ex.targets.begin() + logits.dim(0));
          losses[static_cast<size_t>(bi)] =
              nn::CrossEntropy(logits, targets, -1);
          // Accuracy bookkeeping.
          for (int i = 0; i < logits.dim(0); ++i) {
            if (targets[static_cast<size_t>(i)] < 0) continue;
            ex_masked[static_cast<size_t>(bi)] += 1;
            const float* row = logits.data() + static_cast<size_t>(i) * vocab;
            int best = 0;
            for (int v = 1; v < vocab; ++v) {
              if (row[v] > row[best]) best = v;
            }
            if (best == targets[static_cast<size_t>(i)]) {
              ex_correct[static_cast<size_t>(bi)] += 1;
            }
          }
        }
      });
      nn::Tensor batch_loss;
      for (size_t bi = 0; bi < bsz; ++bi) {
        batch_loss = batch_loss.defined() ? nn::Add(batch_loss, losses[bi])
                                          : losses[bi];
        correct += ex_correct[bi];
        masked += ex_masked[bi];
      }
      batch_loss = nn::Scale(batch_loss, 1.0f / static_cast<float>(bsz));
      batch_loss.Backward();
      opt.Step();
      loss_sum += batch_loss.item();
      ++batches;
    }
    EpochStats stats;
    stats.mlm_loss = loss_sum / std::max(1, batches);
    stats.masked_accuracy = masked > 0 ? correct / masked : 0;
    history.push_back(stats);
    if (options_.verbose) {
      std::fprintf(stderr, "[pretrain] epoch %d loss=%.4f acc=%.3f\n", epoch,
                   stats.mlm_loss, stats.masked_accuracy);
    }
  }
  model_.set_train(false);
  model_.InvalidateSchemaCache();
  return history;
}

Pretrainer::EpochStats Pretrainer::Evaluate(
    const std::vector<std::string>& queries) {
  model_.set_train(false);
  nn::Tensor schema = model_.config().use_schema
                          ? model_.EncodeSchemaNodes(/*with_grad=*/false)
                          : nn::Tensor();
  // Tokenization + masking consume the RNG serially in query order; the
  // (pure) forward passes then run in parallel with per-slot outputs.
  std::vector<text::SqlTokenizer::Tokenized> toks;
  std::vector<MaskedExample> examples;
  for (const auto& q : queries) {
    auto t = model_.tokenizer().Tokenize(q);
    if (!t.ok()) continue;
    examples.push_back(MaskTokens(t.value().ids));
    toks.push_back(std::move(t.value()));
  }
  const size_t n_ex = toks.size();
  std::vector<double> ex_loss(n_ex, 0.0);
  std::vector<int> ex_correct(n_ex, 0), ex_masked(n_ex, 0);
  const int vocab = model_.vocab_size();
  ParallelFor(0, static_cast<int64_t>(n_ex), 1, [&](int64_t b0, int64_t b1) {
    // GradMode is thread-local, so the guard goes inside the lambda: it
    // covers pool workers and the caller thread alike.
    nn::NoGradGuard no_grad;
    for (int64_t e = b0; e < b1; ++e) {
      const MaskedExample& ex = examples[static_cast<size_t>(e)];
      auto enc = model_.Forward(toks[static_cast<size_t>(e)], schema,
                                ex.input_ids);
      nn::Tensor logits = model_.MlmLogits(enc.tokens);
      std::vector<int> targets(ex.targets.begin(),
                               ex.targets.begin() + logits.dim(0));
      ex_loss[static_cast<size_t>(e)] =
          nn::CrossEntropy(logits, targets, -1).item();
      for (int i = 0; i < logits.dim(0); ++i) {
        if (targets[static_cast<size_t>(i)] < 0) continue;
        ex_masked[static_cast<size_t>(e)] += 1;
        const float* row = logits.data() + static_cast<size_t>(i) * vocab;
        int best = 0;
        for (int v = 1; v < vocab; ++v) {
          if (row[v] > row[best]) best = v;
        }
        if (best == targets[static_cast<size_t>(i)]) {
          ex_correct[static_cast<size_t>(e)] += 1;
        }
      }
    }
  });
  double loss_sum = 0, correct = 0, masked = 0;
  int n = 0;
  for (size_t e = 0; e < n_ex; ++e) {
    loss_sum += ex_loss[e];
    correct += ex_correct[e];
    masked += ex_masked[e];
    ++n;
  }
  EpochStats stats;
  stats.mlm_loss = n > 0 ? loss_sum / n : 0;
  stats.masked_accuracy = masked > 0 ? correct / masked : 0;
  return stats;
}

}  // namespace preqr::core
