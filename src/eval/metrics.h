#ifndef PREQR_EVAL_METRICS_H_
#define PREQR_EVAL_METRICS_H_

#include <string>
#include <vector>

namespace preqr::eval {

// Q-error distribution over a workload (Eq. 9 reports the mean; Tables 8-11
// also report median/90th/95th/99th/max).
struct QErrorStats {
  double median = 0;
  double p90 = 0;
  double p95 = 0;
  double p99 = 0;
  double max = 0;
  double mean = 0;
};

// qerror(y, yhat) = max(y, yhat) / min(y, yhat), inputs clamped to >= 1.
double QError(double truth, double estimate);
QErrorStats ComputeQErrors(const std::vector<double>& truths,
                           const std::vector<double>& estimates);

// BetaCV: mean intra-cluster distance / mean inter-cluster distance over a
// labeled clustering; smaller is better. `distance(i, j)` entries come from
// a full pairwise matrix.
double BetaCV(const std::vector<std::vector<double>>& distance,
              const std::vector<int>& labels);

// NDCG@k of a ranking induced by predicted similarities against ground-truth
// relevance scores. For each query item, the remaining items are ranked by
// predicted similarity; gains are the true similarities. Returns the mean
// NDCG over all items. k <= 0 means "all".
double MeanNdcg(const std::vector<std::vector<double>>& predicted_similarity,
                const std::vector<std::vector<double>>& true_similarity,
                int k = -1);

// Corpus BLEU with up-to-4-gram precision and brevity penalty (Eq. 10).
double Bleu(const std::vector<std::vector<std::string>>& references,
            const std::vector<std::vector<std::string>>& candidates,
            int max_n = 4);

}  // namespace preqr::eval

#endif  // PREQR_EVAL_METRICS_H_
