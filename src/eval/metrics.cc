#include "eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/check.h"

namespace preqr::eval {

double QError(double truth, double estimate) {
  const double y = std::max(1.0, truth);
  const double yhat = std::max(1.0, estimate);
  return std::max(y, yhat) / std::min(y, yhat);
}

namespace {
double Percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0;
  const double idx = p * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(idx);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}
}  // namespace

QErrorStats ComputeQErrors(const std::vector<double>& truths,
                           const std::vector<double>& estimates) {
  PREQR_CHECK_EQ(truths.size(), estimates.size());
  std::vector<double> errs;
  errs.reserve(truths.size());
  double sum = 0;
  for (size_t i = 0; i < truths.size(); ++i) {
    errs.push_back(QError(truths[i], estimates[i]));
    sum += errs.back();
  }
  std::sort(errs.begin(), errs.end());
  QErrorStats stats;
  if (errs.empty()) return stats;
  stats.median = Percentile(errs, 0.5);
  stats.p90 = Percentile(errs, 0.9);
  stats.p95 = Percentile(errs, 0.95);
  stats.p99 = Percentile(errs, 0.99);
  stats.max = errs.back();
  stats.mean = sum / static_cast<double>(errs.size());
  return stats;
}

double BetaCV(const std::vector<std::vector<double>>& distance,
              const std::vector<int>& labels) {
  const size_t n = labels.size();
  PREQR_CHECK_EQ(distance.size(), n);
  double intra_sum = 0, inter_sum = 0;
  size_t intra_cnt = 0, inter_cnt = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (labels[i] == labels[j]) {
        intra_sum += distance[i][j];
        ++intra_cnt;
      } else {
        inter_sum += distance[i][j];
        ++inter_cnt;
      }
    }
  }
  if (intra_cnt == 0 || inter_cnt == 0) return 0;
  const double intra = intra_sum / static_cast<double>(intra_cnt);
  const double inter = inter_sum / static_cast<double>(inter_cnt);
  return inter <= 0 ? 0 : intra / inter;
}

double MeanNdcg(const std::vector<std::vector<double>>& predicted_similarity,
                const std::vector<std::vector<double>>& true_similarity,
                int k) {
  const size_t n = predicted_similarity.size();
  PREQR_CHECK_EQ(true_similarity.size(), n);
  double total = 0;
  size_t counted = 0;
  for (size_t q = 0; q < n; ++q) {
    // Rank all other items by predicted similarity.
    std::vector<size_t> order;
    for (size_t j = 0; j < n; ++j) {
      if (j != q) order.push_back(j);
    }
    const size_t cutoff =
        k > 0 ? std::min<size_t>(static_cast<size_t>(k), order.size())
              : order.size();
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return predicted_similarity[q][a] > predicted_similarity[q][b];
    });
    double dcg = 0;
    for (size_t r = 0; r < cutoff; ++r) {
      dcg += true_similarity[q][order[r]] / std::log2(2.0 + r);
    }
    // Ideal ordering by true similarity.
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return true_similarity[q][a] > true_similarity[q][b];
    });
    double idcg = 0;
    for (size_t r = 0; r < cutoff; ++r) {
      idcg += true_similarity[q][order[r]] / std::log2(2.0 + r);
    }
    if (idcg > 0) {
      total += dcg / idcg;
      ++counted;
    }
  }
  return counted == 0 ? 0 : total / static_cast<double>(counted);
}

double Bleu(const std::vector<std::vector<std::string>>& references,
            const std::vector<std::vector<std::string>>& candidates,
            int max_n) {
  PREQR_CHECK_EQ(references.size(), candidates.size());
  double log_precision_sum = 0;
  int effective_n = 0;
  size_t ref_len = 0, cand_len = 0;
  for (size_t i = 0; i < references.size(); ++i) {
    ref_len += references[i].size();
    cand_len += candidates[i].size();
  }
  for (int n = 1; n <= max_n; ++n) {
    size_t matched = 0, total = 0;
    for (size_t i = 0; i < references.size(); ++i) {
      const auto& ref = references[i];
      const auto& cand = candidates[i];
      if (cand.size() < static_cast<size_t>(n)) continue;
      std::map<std::vector<std::string>, int> ref_ngrams;
      for (size_t s = 0; s + n <= ref.size(); ++s) {
        ++ref_ngrams[std::vector<std::string>(ref.begin() + s,
                                              ref.begin() + s + n)];
      }
      for (size_t s = 0; s + n <= cand.size(); ++s) {
        std::vector<std::string> gram(cand.begin() + s, cand.begin() + s + n);
        ++total;
        auto it = ref_ngrams.find(gram);
        if (it != ref_ngrams.end() && it->second > 0) {
          --it->second;
          ++matched;
        }
      }
    }
    if (total == 0) continue;
    ++effective_n;
    // Laplace smoothing avoids log(0) for sparse high-order n-grams.
    const double precision =
        (static_cast<double>(matched) + (n > 1 ? 1.0 : 0.0)) /
        (static_cast<double>(total) + (n > 1 ? 1.0 : 0.0));
    log_precision_sum += std::log(std::max(precision, 1e-12));
  }
  if (effective_n == 0 || cand_len == 0) return 0;
  const double geo = std::exp(log_precision_sum / effective_n);
  const double bp =
      cand_len >= ref_len
          ? 1.0
          : std::exp(1.0 - static_cast<double>(ref_len) /
                               static_cast<double>(cand_len));
  return bp * geo;
}

}  // namespace preqr::eval
