#ifndef PREQR_DB_STATS_H_
#define PREQR_DB_STATS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "db/database.h"
#include "sql/ast.h"

namespace preqr::db {

// PostgreSQL-style per-column statistics: equi-depth histogram over
// non-MCV values, most-common-value list, distinct count, min/max.
struct ColumnStats {
  sql::ColumnType type = sql::ColumnType::kInt;
  double min = 0;
  double max = 0;
  int64_t num_distinct = 0;
  // Equi-depth histogram bucket boundaries (ascending, size num_buckets+1).
  std::vector<double> histogram_bounds;
  // Most common values with their frequencies (fraction of rows).
  std::vector<std::pair<double, double>> mcv_numeric;
  std::vector<std::pair<std::string, double>> mcv_string;
  // For string columns: distinct count only (plus MCVs).
  size_t row_count = 0;

  // Estimated selectivity of `col op value` under PG assumptions.
  double EstimateNumericSelectivity(sql::CompareOp op, double value) const;
  double EstimateRangeSelectivity(double lo, double hi) const;
  double EstimateEqualitySelectivity(double value) const;
  double EstimateStringEquality(const std::string& value) const;
  // LIKE selectivity: PG-style heuristic from pattern shape.
  static double EstimateLikeSelectivity(const std::string& pattern);
};

struct TableStats {
  size_t row_count = 0;
  std::vector<ColumnStats> columns;  // aligned with TableDef::columns
};

// Computes statistics for all tables (ANALYZE).
class StatsCollector {
 public:
  explicit StatsCollector(int num_buckets = 32, int num_mcv = 16)
      : num_buckets_(num_buckets), num_mcv_(num_mcv) {}

  TableStats Analyze(const Table& table) const;
  // All tables; result indexed like db.tables().
  std::vector<TableStats> AnalyzeAll(const Database& db) const;

 private:
  ColumnStats AnalyzeColumn(const Column& column) const;
  int num_buckets_;
  int num_mcv_;
};

// Per-table materialized row samples, used for the MSCN-style bitmap
// feature: Bitmap(query, table) marks which sample rows satisfy the query's
// filter predicates on that table.
class BitmapSampler {
 public:
  BitmapSampler(const Database& db, int sample_size, uint64_t seed = 7);

  // Bitmap of the sample rows of `table_name` passing the given filter
  // predicates (only predicates on this table are applied).
  std::vector<float> Bitmap(const std::string& table_name,
                            const sql::SelectStatement& stmt) const;

  int sample_size() const { return sample_size_; }

 private:
  const Database& db_;
  int sample_size_;
  // table name -> sampled row ids
  std::map<std::string, std::vector<int>> samples_;
};

}  // namespace preqr::db

#endif  // PREQR_DB_STATS_H_
