#include "db/plan.h"

#include <algorithm>
#include <string>

namespace preqr::db {

namespace {

using sql::ColumnRef;
using sql::ColumnType;
using sql::CompareOp;
using sql::Literal;
using sql::Predicate;
using sql::SelectStatement;

// Resolves a column reference to (binding index, column index).
bool ResolveColumn(const std::vector<Binding>& bindings, const ColumnRef& ref,
                   int* binding_idx, int* col_idx) {
  if (!ref.qualifier.empty()) {
    for (size_t i = 0; i < bindings.size(); ++i) {
      if (bindings[i].name == ref.qualifier ||
          bindings[i].table->name() == ref.qualifier) {
        const int c = bindings[i].table->def().ColumnIndex(ref.column);
        if (c < 0) return false;
        *binding_idx = static_cast<int>(i);
        *col_idx = c;
        return true;
      }
    }
    return false;
  }
  // Unqualified: unique table containing the column.
  int found = -1, found_col = -1;
  for (size_t i = 0; i < bindings.size(); ++i) {
    const int c = bindings[i].table->def().ColumnIndex(ref.column);
    if (c >= 0) {
      if (found >= 0) return false;  // ambiguous
      found = static_cast<int>(i);
      found_col = c;
    }
  }
  if (found < 0) return false;
  *binding_idx = found;
  *col_idx = found_col;
  return true;
}

bool CompareNumeric(double lhs, CompareOp op, double rhs) {
  switch (op) {
    case CompareOp::kEq:
      return lhs == rhs;
    case CompareOp::kNe:
      return lhs != rhs;
    case CompareOp::kLt:
      return lhs < rhs;
    case CompareOp::kLe:
      return lhs <= rhs;
    case CompareOp::kGt:
      return lhs > rhs;
    case CompareOp::kGe:
      return lhs >= rhs;
    default:
      return false;
  }
}

bool CompareString(const std::string& lhs, CompareOp op,
                   const std::string& rhs) {
  switch (op) {
    case CompareOp::kEq:
      return lhs == rhs;
    case CompareOp::kNe:
      return lhs != rhs;
    case CompareOp::kLt:
      return lhs < rhs;
    case CompareOp::kLe:
      return lhs <= rhs;
    case CompareOp::kGt:
      return lhs > rhs;
    case CompareOp::kGe:
      return lhs >= rhs;
    case CompareOp::kLike:
      return LikeMatch(lhs, rhs);
    default:
      return false;
  }
}

// Evaluates one filter predicate against one row.
bool RowPasses(const Table& table, int col, const Predicate& pred, size_t row,
               const std::unordered_set<int64_t>* subquery_ints) {
  const Column& column = table.column(col);
  if (column.type == ColumnType::kString) {
    const std::string& v = column.strings[row];
    switch (pred.op) {
      case CompareOp::kIn: {
        for (const auto& lit : pred.values) {
          if (lit.kind == Literal::Kind::kString && v == lit.string_value) {
            return true;
          }
        }
        return false;
      }
      case CompareOp::kBetween:
        return v >= pred.values[0].string_value &&
               v <= pred.values[1].string_value;
      default:
        return CompareString(v, pred.op, pred.values[0].string_value);
    }
  }
  const double v = column.AsDouble(row);
  switch (pred.op) {
    case CompareOp::kIn: {
      if (subquery_ints != nullptr) {
        return subquery_ints->count(static_cast<int64_t>(v)) > 0;
      }
      for (const auto& lit : pred.values) {
        if (v == lit.AsDouble()) return true;
      }
      return false;
    }
    case CompareOp::kBetween:
      return v >= pred.values[0].AsDouble() && v <= pred.values[1].AsDouble();
    default:
      return CompareNumeric(v, pred.op, pred.values[0].AsDouble());
  }
}

// The join graph must be a spanning tree over the bindings: no self-loops,
// exactly n-1 equi-join edges, every binding reachable. Anything else used
// to be silently mis-executed (self-joins on a single table occurrence) or
// caught late; now it is a uniform kInvalidArgument.
Status ValidateJoinGraph(size_t num_tables,
                         const std::vector<JoinEdge>& joins) {
  for (const auto& e : joins) {
    if (e.a == e.b) {
      return Status::InvalidArgument(
          "self-join predicate joins a table occurrence to itself");
    }
  }
  if (num_tables == 1) {
    return joins.empty()
               ? Status()
               : Status::InvalidArgument(
                     "join predicate on a single-table query");
  }
  if (joins.size() != num_tables - 1) {
    return Status::InvalidArgument(
        "join graph is not a tree (" + std::to_string(joins.size()) +
        " equi-join edges over " + std::to_string(num_tables) + " tables)");
  }
  std::vector<char> visited(num_tables, 0);
  std::vector<int> stack = {0};
  visited[0] = 1;
  while (!stack.empty()) {
    const int node = stack.back();
    stack.pop_back();
    for (const auto& e : joins) {
      const int other = e.a == node ? e.b : (e.b == node ? e.a : -1);
      if (other >= 0 && visited[static_cast<size_t>(other)] == 0) {
        visited[static_cast<size_t>(other)] = 1;
        stack.push_back(other);
      }
    }
  }
  for (char v : visited) {
    if (v == 0) return Status::InvalidArgument("join graph is disconnected");
  }
  return Status();
}

// Edge indices incident to each binding, in join-predicate order — the
// order that fixes both the default plan's child order and, with it, the
// floating-point accumulation sequence of the cost.
std::vector<std::vector<int>> BuildAdjacency(const BoundQuery& bq) {
  std::vector<std::vector<int>> adj(bq.bindings.size());
  for (size_t e = 0; e < bq.joins.size(); ++e) {
    adj[static_cast<size_t>(bq.joins[e].a)].push_back(static_cast<int>(e));
    adj[static_cast<size_t>(bq.joins[e].b)].push_back(static_cast<int>(e));
  }
  return adj;
}

// DFS plan construction from `root`, skipping bindings already marked in
// `visited` (used to restrict the plan to a subset of the join tree).
std::unique_ptr<PlanNode> BuildPlanFrom(const BoundQuery& bq,
                                        const std::vector<std::vector<int>>& adj,
                                        std::vector<char>& visited, int root) {
  visited[static_cast<size_t>(root)] = 1;
  std::vector<HashJoinNode::Input> inputs;
  for (int ei : adj[static_cast<size_t>(root)]) {
    const JoinEdge& e = bq.joins[static_cast<size_t>(ei)];
    const int other = e.a == root ? e.b : e.a;
    if (visited[static_cast<size_t>(other)] != 0) continue;
    HashJoinNode::Input in;
    in.probe_col = e.a == root ? e.col_a : e.col_b;
    in.build_col = e.a == root ? e.col_b : e.col_a;
    in.child = BuildPlanFrom(bq, adj, visited, other);
    inputs.push_back(std::move(in));
  }
  if (inputs.empty()) return std::make_unique<ScanNode>(root);
  return std::make_unique<HashJoinNode>(root, std::move(inputs));
}

// Exact cardinality of the join restricted to the bindings in `in_subset`
// (which must induce a connected subtree containing `root`).
double CountSubset(const BoundQuery& bq, const std::vector<char>& in_subset,
                   int root) {
  const auto adj = BuildAdjacency(bq);
  std::vector<char> visited(bq.bindings.size(), 0);
  for (size_t i = 0; i < visited.size(); ++i) {
    visited[i] = in_subset[i] != 0 ? 0 : 1;
  }
  auto plan = BuildPlanFrom(bq, adj, visited, root);
  ExecResult scratch;
  plan->ExecuteRoot(bq, /*collect_root_rows=*/false, &scratch);
  return scratch.cardinality;
}

}  // namespace

bool LikeMatch(const std::string& text, const std::string& pattern) {
  // Iterative wildcard matching with % (any run) and _ (any single char).
  size_t t = 0, p = 0;
  size_t star_p = std::string::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (p < pattern.size() &&
               (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (star_p != std::string::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

bool PredicatePasses(const Table& table, int col, const Predicate& pred,
                     size_t row) {
  return RowPasses(table, col, pred, row, nullptr);
}

Result<BoundQuery> BindQuery(const Database& db, const SelectStatement& stmt,
                             const SubqueryExecFn& exec_subquery) {
  BoundQuery bq;

  // Bind tables.
  for (const auto& tref : stmt.tables) {
    const Table* table = db.FindTable(tref.table);
    if (table == nullptr) {
      return Status::NotFound("unknown table: " + tref.table);
    }
    Binding b;
    b.name = tref.BindingName();
    b.table = table;
    bq.bindings.push_back(std::move(b));
  }
  if (bq.bindings.empty()) return Status::InvalidArgument("no tables");

  // Classify predicates; evaluate IN-subqueries up front (their execution
  // cost accrues here, in predicate order, before any scan cost).
  for (size_t pi = 0; pi < stmt.predicates.size(); ++pi) {
    const Predicate& pred = stmt.predicates[pi];
    if (pred.IsJoin()) {
      JoinEdge e;
      if (!ResolveColumn(bq.bindings, pred.lhs, &e.a, &e.col_a) ||
          !ResolveColumn(bq.bindings, pred.rhs_column, &e.b, &e.col_b)) {
        return Status::NotFound("cannot resolve join columns for " +
                                pred.lhs.ToString());
      }
      if (pred.op != CompareOp::kEq) {
        return Status::InvalidArgument("only equi-joins are supported");
      }
      bq.joins.push_back(e);
      continue;
    }
    int bi = -1, ci = -1;
    if (!ResolveColumn(bq.bindings, pred.lhs, &bi, &ci)) {
      return Status::NotFound("cannot resolve column " + pred.lhs.ToString());
    }
    BoundFilter filter;
    filter.pred = &pred;
    filter.col = ci;
    if (pred.subquery) {
      // Evaluate the subquery: collect the projected column's values over
      // the subquery root table's qualifying rows.
      if (exec_subquery == nullptr) {
        return Status::InvalidArgument(
            "IN-subqueries require a subquery executor");
      }
      auto sub = exec_subquery(*pred.subquery);
      if (!sub.ok()) return sub.status();
      bq.bind_cost += sub.value().cost;
      bq.subquery_cost += sub.value().cost;
      if (pred.subquery->items.empty() || pred.subquery->items[0].star) {
        return Status::InvalidArgument("subquery must project one column");
      }
      const Table* sub_root = db.FindTable(pred.subquery->tables[0].table);
      const int sub_col =
          sub_root->def().ColumnIndex(pred.subquery->items[0].column.column);
      if (sub_col < 0) {
        return Status::NotFound("unknown subquery projection column");
      }
      const Column& scol = sub_root->column(sub_col);
      if (scol.type == ColumnType::kString) {
        return Status::InvalidArgument("string IN-subqueries unsupported");
      }
      std::unordered_set<int64_t> values;
      for (int row : sub.value().root_row_ids) {
        values.insert(scol.type == ColumnType::kInt
                          ? scol.ints[static_cast<size_t>(row)]
                          : static_cast<int64_t>(
                                scol.floats[static_cast<size_t>(row)]));
      }
      filter.subquery = static_cast<int>(bq.subquery_values.size());
      bq.subquery_values.push_back(std::move(values));
    }
    bq.bindings[static_cast<size_t>(bi)].filters.push_back(filter);
  }

  if (Status s = ValidateJoinGraph(bq.bindings.size(), bq.joins); !s.ok()) {
    return s;
  }

  // Per-table filter bitmaps; scanning cost.
  for (auto& b : bq.bindings) {
    const size_t n = b.table->num_rows();
    bq.bind_cost += static_cast<double>(n);
    b.pass.assign(n, 1);
    for (const BoundFilter& filter : b.filters) {
      const std::unordered_set<int64_t>* sub =
          filter.subquery >= 0
              ? &bq.subquery_values[static_cast<size_t>(filter.subquery)]
              : nullptr;
      for (size_t row = 0; row < n; ++row) {
        if (b.pass[row] != 0 &&
            !RowPasses(*b.table, filter.col, *filter.pred, row, sub)) {
          b.pass[row] = 0;
        }
      }
    }
    for (char v : b.pass) {
      if (v != 0) b.pass_count += 1;
    }
  }
  return bq;
}

std::unordered_map<int64_t, double> ScanNode::ExecuteUp(const BoundQuery& bq,
                                                        int key_col,
                                                        double* cost) {
  const Binding& b = bq.bindings[static_cast<size_t>(binding_)];
  std::unordered_map<int64_t, double> out;
  const Column& key_column = b.table->column(key_col);
  PREQR_CHECK(key_column.type == ColumnType::kInt);
  double subtree_size = 0;
  for (size_t row = 0; row < b.pass.size(); ++row) {
    if (b.pass[row] == 0) continue;
    const double w = 1.0;
    out[key_column.ints[row]] += w;
    subtree_size += w;
  }
  // Hash build + intermediate size contribute to cost.
  const double contribution =
      static_cast<double>(out.size()) + subtree_size;
  *cost += contribution;
  stats_.out_rows = subtree_size;
  stats_.build_entries = static_cast<double>(out.size());
  stats_.cost = contribution;
  return out;
}

void ScanNode::ExecuteRoot(const BoundQuery& bq, bool collect_root_rows,
                           ExecResult* result) {
  const Binding& b = bq.bindings[static_cast<size_t>(binding_)];
  double count = 0;
  for (size_t row = 0; row < b.pass.size(); ++row) {
    if (b.pass[row] != 0) {
      count += 1;
      if (collect_root_rows) {
        result->root_row_ids.push_back(static_cast<int>(row));
      }
    }
  }
  result->cardinality = count;
  const double emit = count * 0.1;
  result->cost += emit;
  stats_.out_rows = count;
  stats_.build_entries = 0;
  stats_.cost = emit;
}

std::unordered_map<int64_t, double> HashJoinNode::ExecuteUp(
    const BoundQuery& bq, int key_col, double* cost) {
  const Binding& b = bq.bindings[static_cast<size_t>(binding_)];
  // Gather child maps first (post-order, in edge-discovery order).
  struct ChildMap {
    int col;  // this node's join column toward the child
    std::unordered_map<int64_t, double> weights;
  };
  std::vector<ChildMap> children;
  children.reserve(inputs_.size());
  for (auto& in : inputs_) {
    ChildMap cm;
    cm.col = in.probe_col;
    cm.weights = in.child->ExecuteUp(bq, in.build_col, cost);
    children.push_back(std::move(cm));
  }
  // Aggregate this node's rows by its parent-join column.
  std::unordered_map<int64_t, double> out;
  const Column& key_column = b.table->column(key_col);
  PREQR_CHECK(key_column.type == ColumnType::kInt);
  double subtree_size = 0;
  for (size_t row = 0; row < b.pass.size(); ++row) {
    if (b.pass[row] == 0) continue;
    double w = 1.0;
    for (const auto& cm : children) {
      const Column& ccol = b.table->column(cm.col);
      const int64_t key = ccol.type == ColumnType::kInt
                              ? ccol.ints[row]
                              : static_cast<int64_t>(ccol.AsDouble(row));
      auto it = cm.weights.find(key);
      if (it == cm.weights.end()) {
        w = 0.0;
        break;
      }
      w *= it->second;
    }
    if (w > 0.0) {
      out[key_column.ints[row]] += w;
      subtree_size += w;
    }
  }
  // Hash build + intermediate size contribute to cost.
  const double contribution =
      static_cast<double>(out.size()) + subtree_size;
  *cost += contribution;
  stats_.out_rows = subtree_size;
  stats_.build_entries = static_cast<double>(out.size());
  stats_.cost = contribution;
  return out;
}

void HashJoinNode::ExecuteRoot(const BoundQuery& bq, bool collect_root_rows,
                               ExecResult* result) {
  const Binding& b = bq.bindings[static_cast<size_t>(binding_)];
  struct ChildMap {
    int col;
    std::unordered_map<int64_t, double> weights;
  };
  std::vector<ChildMap> children;
  children.reserve(inputs_.size());
  for (auto& in : inputs_) {
    ChildMap cm;
    cm.col = in.probe_col;
    cm.weights = in.child->ExecuteUp(bq, in.build_col, &result->cost);
    children.push_back(std::move(cm));
  }
  double total = 0;
  for (size_t row = 0; row < b.pass.size(); ++row) {
    if (b.pass[row] == 0) continue;
    double w = 1.0;
    for (const auto& cm : children) {
      const Column& ccol = b.table->column(cm.col);
      const int64_t key = ccol.type == ColumnType::kInt
                              ? ccol.ints[row]
                              : static_cast<int64_t>(ccol.AsDouble(row));
      auto it = cm.weights.find(key);
      if (it == cm.weights.end()) {
        w = 0.0;
        break;
      }
      w *= it->second;
    }
    if (w > 0.0) {
      total += w;
      if (collect_root_rows) {
        result->root_row_ids.push_back(static_cast<int>(row));
      }
    }
  }
  result->cardinality = total;
  const double emit = total * 0.1;
  result->cost += emit;
  stats_.out_rows = total;
  stats_.build_entries = 0;
  stats_.cost = emit;
}

std::unique_ptr<PlanNode> BuildRootedPlan(const BoundQuery& bq, int root) {
  const auto adj = BuildAdjacency(bq);
  std::vector<char> visited(bq.bindings.size(), 0);
  return BuildPlanFrom(bq, adj, visited, root);
}

StatusOr<PlannedExecResult> ExecuteLeftDeep(const BoundQuery& bq,
                                            const std::vector<int>& order,
                                            const CostModel& cm) {
  const size_t n = bq.bindings.size();
  if (order.size() != n) {
    return Status::InvalidArgument(
        "join order must name every table occurrence exactly once");
  }
  std::vector<char> seen(n, 0);
  for (int b : order) {
    if (b < 0 || static_cast<size_t>(b) >= n || seen[static_cast<size_t>(b)]) {
      return Status::InvalidArgument(
          "join order is not a permutation of the table occurrences");
    }
    seen[static_cast<size_t>(b)] = 1;
  }
  // Under arbitrary orders any join column can become an aggregation key,
  // so the default path's int-only requirement applies to both endpoints.
  for (const JoinEdge& e : bq.joins) {
    if (bq.bindings[static_cast<size_t>(e.a)]
                .table->column(e.col_a)
                .type != ColumnType::kInt ||
        bq.bindings[static_cast<size_t>(e.b)]
                .table->column(e.col_b)
                .type != ColumnType::kInt) {
      return Status::InvalidArgument(
          "explicit join orders require integer join columns");
    }
  }
  // Every prefix must stay connected in the join tree.
  std::vector<char> in_prefix(n, 0);
  in_prefix[static_cast<size_t>(order[0])] = 1;
  for (size_t i = 1; i < n; ++i) {
    bool connected = false;
    for (const JoinEdge& e : bq.joins) {
      if ((e.a == order[i] && in_prefix[static_cast<size_t>(e.b)] != 0) ||
          (e.b == order[i] && in_prefix[static_cast<size_t>(e.a)] != 0)) {
        connected = true;
        break;
      }
    }
    if (!connected) {
      return Status::InvalidArgument(
          "join order disconnects the join graph at step " +
          std::to_string(i));
    }
    in_prefix[static_cast<size_t>(order[i])] = 1;
  }

  PlannedExecResult out;
  // Scan and subquery work is join-order independent.
  double cost = bq.subquery_cost;
  for (const auto& b : bq.bindings) {
    cost += cm.scan_weight * static_cast<double>(b.table->num_rows());
  }
  // Grow the pipeline one table at a time; each prefix cardinality is the
  // exact count over the induced subtree (counts are root-invariant, so
  // the final step equals Execute()'s cardinality bit for bit).
  std::fill(in_prefix.begin(), in_prefix.end(), 0);
  in_prefix[static_cast<size_t>(order[0])] = 1;
  double card = bq.bindings[static_cast<size_t>(order[0])].pass_count;
  for (size_t i = 1; i < n; ++i) {
    in_prefix[static_cast<size_t>(order[i])] = 1;
    card = CountSubset(bq, in_prefix, order[0]);
    JoinStep step;
    step.binding = order[i];
    step.build_rows = bq.bindings[static_cast<size_t>(order[i])].pass_count;
    step.intermediate_rows = card;
    cost += cm.build_weight * step.build_rows +
            cm.intermediate_weight * step.intermediate_rows;
    out.steps.push_back(step);
  }
  out.cardinality = card;
  cost += cm.emit_weight * out.cardinality;
  out.cost = cost;
  return out;
}

StatusOr<JoinGraph> ResolveJoinGraph(const Database& db,
                                     const SelectStatement& stmt) {
  std::vector<Binding> bindings;
  for (const auto& tref : stmt.tables) {
    const Table* table = db.FindTable(tref.table);
    if (table == nullptr) {
      return Status::NotFound("unknown table: " + tref.table);
    }
    Binding b;
    b.name = tref.BindingName();
    b.table = table;
    bindings.push_back(std::move(b));
  }
  if (bindings.empty()) return Status::InvalidArgument("no tables");
  JoinGraph graph;
  graph.num_tables = bindings.size();
  for (const auto& pred : stmt.predicates) {
    if (!pred.IsJoin()) continue;
    JoinEdge e;
    if (!ResolveColumn(bindings, pred.lhs, &e.a, &e.col_a) ||
        !ResolveColumn(bindings, pred.rhs_column, &e.b, &e.col_b)) {
      return Status::NotFound("cannot resolve join columns for " +
                              pred.lhs.ToString());
    }
    if (pred.op != CompareOp::kEq) {
      return Status::InvalidArgument("only equi-joins are supported");
    }
    graph.edges.push_back(e);
  }
  if (Status s = ValidateJoinGraph(graph.num_tables, graph.edges); !s.ok()) {
    return s;
  }
  return graph;
}

}  // namespace preqr::db
