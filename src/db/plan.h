#ifndef PREQR_DB_PLAN_H_
#define PREQR_DB_PLAN_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "db/cost_model.h"
#include "db/database.h"
#include "sql/ast.h"

namespace preqr::db {

// Result of executing a (COUNT-style) query.
struct ExecResult {
  // Exact number of joined rows satisfying all predicates.
  double cardinality = 0;
  // Deterministic work units: tuples scanned + hash build entries +
  // per-subtree intermediate join sizes + output emission. Serves as the
  // ground-truth "cost" the cost-estimation task predicts.
  double cost = 0;
  // Row ids of the first (root) table that contribute at least one join
  // result; populated when `collect_root_rows` is set. Used as the
  // result-set identity for the CH similarity ground truth.
  std::vector<int> root_row_ids;
};

// True if the pattern (SQL LIKE with % and _) matches the text.
bool LikeMatch(const std::string& text, const std::string& pattern);

// Evaluates one filter predicate (no join, no subquery) against row `row`
// of `table`, where `col` is the index of the predicate's column. Exposed
// for samplers/estimators that scan rows directly.
bool PredicatePasses(const Table& table, int col, const sql::Predicate& pred,
                     size_t row);

// A filter predicate resolved against one table occurrence.
struct BoundFilter {
  const sql::Predicate* pred = nullptr;
  int col = -1;       // column index in the binding's table
  int subquery = -1;  // index into BoundQuery::subquery_values, or -1
};

// One table occurrence in the query, with its filter bitmap.
struct Binding {
  std::string name;  // alias or table name
  const Table* table = nullptr;
  std::vector<BoundFilter> filters;
  std::vector<char> pass;  // per-row filter bitmap
  double pass_count = 0;   // rows surviving the bitmap (hash-build input)
};

// An equi-join predicate resolved to binding/column indices.
struct JoinEdge {
  int a = -1, b = -1;          // binding indices
  int col_a = -1, col_b = -1;  // column indices in respective tables
};

// A statement bound against the database: tables resolved, predicates
// classified into join edges and per-binding filters, IN-subqueries
// evaluated, filter bitmaps materialized, and the join graph validated
// (spanning tree over the bindings; self-loops, cycles and disconnected
// components are kInvalidArgument).
struct BoundQuery {
  std::vector<Binding> bindings;
  std::vector<JoinEdge> joins;
  std::vector<std::unordered_set<int64_t>> subquery_values;
  // Work accrued while binding, in accrual order: subquery execution costs
  // (classification order), then one scan per binding (binding order).
  // Plan execution continues this sum, preserving the pre-refactor
  // accumulation sequence bit for bit.
  double bind_cost = 0;
  // The subquery share of bind_cost, for cost models that weight scans.
  double subquery_cost = 0;
};

// Executes an IN-subquery statement with collect_root_rows semantics; the
// executor passes its own recursive Execute here.
using SubqueryExecFn =
    std::function<Result<ExecResult>(const sql::SelectStatement&)>;

Result<BoundQuery> BindQuery(const Database& db,
                             const sql::SelectStatement& stmt,
                             const SubqueryExecFn& exec_subquery);

// Per-node execution statistics, filled in as the plan runs.
struct PlanStats {
  double out_rows = 0;       // qualifying subtree combinations produced
  double build_entries = 0;  // distinct join keys handed to the parent
  double cost = 0;           // this node's own work-unit contribution
};

// A node in the (n-ary, rooted) join-tree plan. Execution is bottom-up:
// each non-root node aggregates its subtree's qualifying combination
// weights by the join key toward its parent; the root combines its
// children's weight maps into the final count. Each node reports its own
// work units and intermediate cardinality in stats().
class PlanNode {
 public:
  enum class Kind { kScan, kHashJoin };

  PlanNode(Kind kind, int binding) : kind_(kind), binding_(binding) {}
  virtual ~PlanNode() = default;

  Kind kind() const { return kind_; }
  int binding() const { return binding_; }
  const PlanStats& stats() const { return stats_; }
  virtual size_t num_children() const = 0;

  // Aggregates this subtree's qualifying combinations by `key_col` of this
  // node's binding, adding this node's work units to *cost.
  virtual std::unordered_map<int64_t, double> ExecuteUp(const BoundQuery& bq,
                                                        int key_col,
                                                        double* cost) = 0;

  // Runs this node as the plan root: sets result->cardinality, appends the
  // emission cost, and optionally collects contributing root row ids.
  virtual void ExecuteRoot(const BoundQuery& bq, bool collect_root_rows,
                           ExecResult* result) = 0;

 protected:
  Kind kind_;
  int binding_;
  PlanStats stats_;
};

// Leaf: one filtered base-table occurrence.
class ScanNode : public PlanNode {
 public:
  explicit ScanNode(int binding) : PlanNode(Kind::kScan, binding) {}
  size_t num_children() const override { return 0; }
  std::unordered_map<int64_t, double> ExecuteUp(const BoundQuery& bq,
                                                int key_col,
                                                double* cost) override;
  void ExecuteRoot(const BoundQuery& bq, bool collect_root_rows,
                   ExecResult* result) override;
};

// Internal node: probes this binding's filtered rows against each child's
// aggregated weight map (one hash join per child edge).
class HashJoinNode : public PlanNode {
 public:
  struct Input {
    int probe_col = -1;  // this binding's column on the child edge
    int build_col = -1;  // the child binding's key column on that edge
    std::unique_ptr<PlanNode> child;
  };

  HashJoinNode(int binding, std::vector<Input> inputs)
      : PlanNode(Kind::kHashJoin, binding), inputs_(std::move(inputs)) {}
  size_t num_children() const override { return inputs_.size(); }
  const std::vector<Input>& inputs() const { return inputs_; }
  std::unordered_map<int64_t, double> ExecuteUp(const BoundQuery& bq,
                                                int key_col,
                                                double* cost) override;
  void ExecuteRoot(const BoundQuery& bq, bool collect_root_rows,
                   ExecResult* result) override;

 private:
  std::vector<Input> inputs_;
};

// Builds the join-tree plan rooted at `root` (child order follows edge
// discovery order, i.e. join-predicate order). BuildDefaultPlan roots at
// binding 0, reproducing the pre-refactor executor's traversal exactly.
std::unique_ptr<PlanNode> BuildRootedPlan(const BoundQuery& bq, int root);
inline std::unique_ptr<PlanNode> BuildDefaultPlan(const BoundQuery& bq) {
  return BuildRootedPlan(bq, 0);
}

// One step of an explicit left-deep join order.
struct JoinStep {
  int binding = -1;              // table occurrence joined at this step
  double build_rows = 0;         // its filtered row count (hash-build input)
  double intermediate_rows = 0;  // exact |join(prefix)| after this step
};

// Result of executing an explicit left-deep order: the same exact count as
// the default plan (counts are join-order invariant), plus per-step
// cardinalities and the pipeline cost under `cm`.
struct PlannedExecResult {
  double cardinality = 0;
  double cost = 0;
  std::vector<JoinStep> steps;
};

// Executes the bound query in the explicit left-deep order `order` (a
// permutation of binding indices; every prefix must induce a connected
// subgraph of the join tree). All join columns along the tree must be
// integer-typed. Costs follow `cm` over the exact per-prefix cardinalities.
StatusOr<PlannedExecResult> ExecuteLeftDeep(const BoundQuery& bq,
                                            const std::vector<int>& order,
                                            const CostModel& cm = {});

// A query's join graph without the (expensive) filter bitmaps: table count
// plus resolved, validated join edges. Used by the join planner, which only
// needs topology and estimates.
struct JoinGraph {
  size_t num_tables = 0;
  std::vector<JoinEdge> edges;
};

// Resolves and validates the join graph of `stmt` (same table binding and
// validation rules as BindQuery, minus bitmaps and subquery execution).
StatusOr<JoinGraph> ResolveJoinGraph(const Database& db,
                                     const sql::SelectStatement& stmt);

}  // namespace preqr::db

#endif  // PREQR_DB_PLAN_H_
