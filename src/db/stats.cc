#include "db/stats.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/rng.h"
#include "db/executor.h"

namespace preqr::db {

namespace {
constexpr double kDefaultEqSel = 0.005;
}  // namespace

double ColumnStats::EstimateEqualitySelectivity(double value) const {
  for (const auto& [v, freq] : mcv_numeric) {
    if (v == value) return freq;
  }
  // Not an MCV: remaining mass spread over remaining distinct values.
  double mcv_mass = 0;
  for (const auto& [v, freq] : mcv_numeric) mcv_mass += freq;
  const double remaining =
      static_cast<double>(num_distinct) - static_cast<double>(mcv_numeric.size());
  if (remaining <= 0) return kDefaultEqSel;
  return std::max(0.0, (1.0 - mcv_mass) / remaining);
}

double ColumnStats::EstimateRangeSelectivity(double lo, double hi) const {
  if (histogram_bounds.size() < 2) {
    if (max <= min) return lo <= min && min <= hi ? 1.0 : kDefaultEqSel;
    const double clipped_lo = std::max(lo, min);
    const double clipped_hi = std::min(hi, max);
    if (clipped_hi < clipped_lo) return 0.0;
    return (clipped_hi - clipped_lo) / (max - min);
  }
  // Fraction of equi-depth buckets overlapped (with linear interpolation
  // inside partially covered buckets).
  const size_t nb = histogram_bounds.size() - 1;
  double covered = 0;
  for (size_t b = 0; b < nb; ++b) {
    const double blo = histogram_bounds[b];
    const double bhi = histogram_bounds[b + 1];
    const double olo = std::max(lo, blo);
    const double ohi = std::min(hi, bhi);
    if (ohi <= olo) continue;
    covered += bhi > blo ? (ohi - olo) / (bhi - blo) : 1.0;
  }
  return std::min(1.0, covered / static_cast<double>(nb));
}

double ColumnStats::EstimateNumericSelectivity(sql::CompareOp op,
                                               double value) const {
  switch (op) {
    case sql::CompareOp::kEq:
      return EstimateEqualitySelectivity(value);
    case sql::CompareOp::kNe:
      return 1.0 - EstimateEqualitySelectivity(value);
    case sql::CompareOp::kLt:
    case sql::CompareOp::kLe:
      return EstimateRangeSelectivity(min - 1.0, value);
    case sql::CompareOp::kGt:
    case sql::CompareOp::kGe:
      return EstimateRangeSelectivity(value, max + 1.0);
    default:
      return kDefaultEqSel;
  }
}

double ColumnStats::EstimateStringEquality(const std::string& value) const {
  for (const auto& [v, freq] : mcv_string) {
    if (v == value) return freq;
  }
  double mcv_mass = 0;
  for (const auto& [v, freq] : mcv_string) mcv_mass += freq;
  const double remaining =
      static_cast<double>(num_distinct) - static_cast<double>(mcv_string.size());
  if (remaining <= 0) return kDefaultEqSel;
  return std::max(0.0, (1.0 - mcv_mass) / remaining);
}

double ColumnStats::EstimateLikeSelectivity(const std::string& pattern) {
  // PG heuristic flavor: selectivity shrinks with the number of fixed
  // characters; leading % is less selective.
  int fixed = 0;
  for (char c : pattern) {
    if (c != '%' && c != '_') ++fixed;
  }
  double sel = std::pow(0.5, std::min(fixed, 10));
  if (!pattern.empty() && pattern.front() == '%') sel *= 2.0;
  return std::min(0.5, std::max(1e-4, sel));
}

ColumnStats StatsCollector::AnalyzeColumn(const Column& column) const {
  ColumnStats stats;
  stats.type = column.type;
  stats.row_count = column.size();
  if (column.size() == 0) return stats;

  if (column.type == sql::ColumnType::kString) {
    std::unordered_map<std::string, size_t> counts;
    for (const auto& s : column.strings) ++counts[s];
    stats.num_distinct = static_cast<int64_t>(counts.size());
    std::vector<std::pair<std::string, size_t>> by_freq(counts.begin(),
                                                        counts.end());
    std::sort(by_freq.begin(), by_freq.end(), [](const auto& a, const auto& b) {
      return a.second != b.second ? a.second > b.second : a.first < b.first;
    });
    const size_t k = std::min<size_t>(static_cast<size_t>(num_mcv_),
                                      by_freq.size());
    for (size_t i = 0; i < k; ++i) {
      stats.mcv_string.emplace_back(
          by_freq[i].first,
          static_cast<double>(by_freq[i].second) /
              static_cast<double>(column.size()));
    }
    return stats;
  }

  std::vector<double> values;
  values.reserve(column.size());
  for (size_t i = 0; i < column.size(); ++i) values.push_back(column.AsDouble(i));
  std::sort(values.begin(), values.end());
  stats.min = values.front();
  stats.max = values.back();

  // Distinct count + MCVs from value frequencies.
  std::unordered_map<int64_t, size_t> counts;  // quantized for floats
  for (double v : values) ++counts[static_cast<int64_t>(v * 1000.0)];
  stats.num_distinct = static_cast<int64_t>(counts.size());
  std::vector<std::pair<int64_t, size_t>> by_freq(counts.begin(), counts.end());
  std::sort(by_freq.begin(), by_freq.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  const size_t k =
      std::min<size_t>(static_cast<size_t>(num_mcv_), by_freq.size());
  for (size_t i = 0; i < k; ++i) {
    stats.mcv_numeric.emplace_back(
        static_cast<double>(by_freq[i].first) / 1000.0,
        static_cast<double>(by_freq[i].second) /
            static_cast<double>(column.size()));
  }

  // Equi-depth histogram bounds over the sorted values.
  const int nb = num_buckets_;
  stats.histogram_bounds.reserve(static_cast<size_t>(nb) + 1);
  for (int b = 0; b <= nb; ++b) {
    const size_t idx = std::min(
        values.size() - 1,
        static_cast<size_t>(static_cast<double>(b) / nb *
                            static_cast<double>(values.size() - 1)));
    stats.histogram_bounds.push_back(values[idx]);
  }
  return stats;
}

TableStats StatsCollector::Analyze(const Table& table) const {
  TableStats stats;
  stats.row_count = table.num_rows();
  for (size_t c = 0; c < table.num_columns(); ++c) {
    stats.columns.push_back(AnalyzeColumn(table.column(static_cast<int>(c))));
  }
  return stats;
}

std::vector<TableStats> StatsCollector::AnalyzeAll(const Database& db) const {
  std::vector<TableStats> out;
  for (const auto& t : db.tables()) out.push_back(Analyze(*t));
  return out;
}

BitmapSampler::BitmapSampler(const Database& db, int sample_size,
                             uint64_t seed)
    : db_(db), sample_size_(sample_size) {
  Rng rng(seed);
  for (const auto& table : db.tables()) {
    std::vector<int>& rows = samples_[table->name()];
    const size_t n = table->num_rows();
    rows.reserve(static_cast<size_t>(sample_size));
    for (int i = 0; i < sample_size; ++i) {
      rows.push_back(n == 0 ? 0 : static_cast<int>(rng.NextUint64(n)));
    }
  }
}

std::vector<float> BitmapSampler::Bitmap(
    const std::string& table_name, const sql::SelectStatement& stmt) const {
  std::vector<float> bitmap(static_cast<size_t>(sample_size_), 0.0f);
  const Table* table = db_.FindTable(table_name);
  auto it = samples_.find(table_name);
  if (table == nullptr || it == samples_.end() || table->num_rows() == 0) {
    return bitmap;
  }
  // Find this table's binding name in the query.
  std::string binding;
  for (const auto& tref : stmt.tables) {
    if (tref.table == table_name) binding = tref.BindingName();
  }
  // Evaluate each filter predicate that targets this table. We reuse the
  // Executor by building a tiny single-table statement.
  sql::SelectStatement single;
  sql::SelectItem item;
  item.agg = sql::AggFunc::kCount;
  item.star = true;
  single.items.push_back(item);
  sql::TableRef tref;
  tref.table = table_name;
  tref.alias = binding == table_name ? "" : binding;
  single.tables.push_back(tref);
  for (const auto& pred : stmt.predicates) {
    if (pred.IsJoin() || pred.subquery) continue;
    const std::string& q = pred.lhs.qualifier;
    if (q == binding || q == table_name ||
        (q.empty() && table->def().ColumnIndex(pred.lhs.column) >= 0)) {
      single.predicates.push_back(pred);
    }
  }
  // Mark sample rows passing all single-table filters.
  Executor exec(db_);
  auto res = exec.Execute(single, /*collect_root_rows=*/true);
  if (!res.ok()) return bitmap;
  std::vector<char> pass(table->num_rows(), 0);
  for (int row : res.value().root_row_ids) {
    pass[static_cast<size_t>(row)] = 1;
  }
  const std::vector<int>& rows = it->second;
  for (size_t i = 0; i < rows.size(); ++i) {
    bitmap[i] = pass[static_cast<size_t>(rows[i])] != 0 ? 1.0f : 0.0f;
  }
  return bitmap;
}

}  // namespace preqr::db
