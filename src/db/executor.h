#ifndef PREQR_DB_EXECUTOR_H_
#define PREQR_DB_EXECUTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "db/database.h"
#include "db/plan.h"
#include "sql/ast.h"

namespace preqr::db {

// Executes SELECT statements against the in-memory database. Joins must be
// acyclic (tree-shaped), which holds for all generated workloads; join
// columns must be integers (FK ids). Counting is performed bottom-up over
// the join tree (weights per key), so cardinalities in the billions are
// computed without materialization.
//
// Execution is organized as a plan-node tree (db/plan.h): Execute binds the
// statement, builds the default plan (rooted at the first FROM table) and
// runs it; ExecuteOrder runs an explicit caller-chosen left-deep join order
// and reports per-step cardinalities, which is what the join planner costs.
class Executor {
 public:
  explicit Executor(const Database& db) : db_(db) {}

  Result<ExecResult> Execute(const sql::SelectStatement& stmt,
                             bool collect_root_rows = false) const;

  // Binds a non-UNION statement: resolves tables and predicates, evaluates
  // IN-subqueries, materializes filter bitmaps, validates the join graph.
  Result<BoundQuery> Bind(const sql::SelectStatement& stmt) const;

  // Executes `stmt` in the explicit left-deep join order `order` (indices
  // into stmt.tables; every prefix must stay connected in the join tree).
  // The returned cardinality equals Execute()'s; the cost follows `cm`
  // over the exact per-prefix intermediate cardinalities.
  StatusOr<PlannedExecResult> ExecuteOrder(const sql::SelectStatement& stmt,
                                           const std::vector<int>& order,
                                           const CostModel& cm = {}) const;

  // True if the pattern (SQL LIKE with % and _) matches the text.
  static bool LikeMatch(const std::string& text, const std::string& pattern);

 private:
  const Database& db_;
};

}  // namespace preqr::db

#endif  // PREQR_DB_EXECUTOR_H_
