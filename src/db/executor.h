#ifndef PREQR_DB_EXECUTOR_H_
#define PREQR_DB_EXECUTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "db/database.h"
#include "sql/ast.h"

namespace preqr::db {

// Result of executing a (COUNT-style) query.
struct ExecResult {
  // Exact number of joined rows satisfying all predicates.
  double cardinality = 0;
  // Deterministic work units: tuples scanned + hash build entries +
  // per-subtree intermediate join sizes + output emission. Serves as the
  // ground-truth "cost" the cost-estimation task predicts.
  double cost = 0;
  // Row ids of the first (root) table that contribute at least one join
  // result; populated when `collect_root_rows` is set. Used as the
  // result-set identity for the CH similarity ground truth.
  std::vector<int> root_row_ids;
};

// Executes SELECT statements against the in-memory database. Joins must be
// acyclic (tree-shaped), which holds for all generated workloads; join
// columns must be integers (FK ids). Counting is performed bottom-up over
// the join tree (weights per key), so cardinalities in the billions are
// computed without materialization.
class Executor {
 public:
  explicit Executor(const Database& db) : db_(db) {}

  Result<ExecResult> Execute(const sql::SelectStatement& stmt,
                             bool collect_root_rows = false) const;

  // True if the pattern (SQL LIKE with % and _) matches the text.
  static bool LikeMatch(const std::string& text, const std::string& pattern);

 private:
  const Database& db_;
};

// Evaluates one filter predicate (no join, no subquery) against row `row`
// of `table`, where `col` is the index of the predicate's column. Exposed
// for samplers/estimators that scan rows directly.
bool PredicatePasses(const Table& table, int col, const sql::Predicate& pred,
                     size_t row);

}  // namespace preqr::db

#endif  // PREQR_DB_EXECUTOR_H_
