#ifndef PREQR_DB_DATABASE_H_
#define PREQR_DB_DATABASE_H_

#include <memory>
#include <string>
#include <vector>

#include "db/table.h"
#include "sql/catalog.h"

namespace preqr::db {

// An in-memory database: catalog + tables. Move-only (tables can be large).
class Database {
 public:
  Database() = default;
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // Adds the table to both storage and catalog.
  Table& AddTable(sql::TableDef def) {
    catalog_.AddTable(def);
    tables_.push_back(std::make_unique<Table>(std::move(def)));
    return *tables_.back();
  }

  sql::Catalog& catalog() { return catalog_; }
  const sql::Catalog& catalog() const { return catalog_; }

  const Table* FindTable(const std::string& name) const {
    for (const auto& t : tables_) {
      if (t->name() == name) return t.get();
    }
    return nullptr;
  }
  Table* FindTable(const std::string& name) {
    for (const auto& t : tables_) {
      if (t->name() == name) return t.get();
    }
    return nullptr;
  }

  const std::vector<std::unique_ptr<Table>>& tables() const { return tables_; }

 private:
  sql::Catalog catalog_;
  std::vector<std::unique_ptr<Table>> tables_;
};

}  // namespace preqr::db

#endif  // PREQR_DB_DATABASE_H_
