#ifndef PREQR_DB_COST_MODEL_H_
#define PREQR_DB_COST_MODEL_H_

#include <cstddef>
#include <vector>

namespace preqr::db {

// The work-unit cost model shared by the executor (executed cost), the PG
// baseline (estimated cost) and the join planner (plan cost). A left-deep
// hash-join pipeline over tables t0..tk costs
//
//   sum_i scan_weight * |t_i|                        (base-table scans)
// + sum_{i>=1} build_weight * |sigma(t_i)|           (hash builds)
// + sum_{i>=1} intermediate_weight * |join(t0..t_i)| (intermediate results)
// + emit_weight * |join(t0..tk)|                     (output emission)
//
// Feeding the same formula with true vs estimated cardinalities is what
// makes planner cost and executed cost directly comparable.
struct CostModel {
  double scan_weight = 1.0;
  double build_weight = 1.0;
  double intermediate_weight = 1.0;
  double emit_weight = 0.1;
};

// Evaluates the pipeline formula above. `build_rows[i]` and
// `intermediate_rows[i]` describe the (i+1)-th joined table; both vectors
// have one entry per join step (tables - 1 for a full pipeline).
inline double LeftDeepPipelineCost(const CostModel& cm,
                                   const std::vector<double>& scan_rows,
                                   const std::vector<double>& build_rows,
                                   const std::vector<double>& intermediate_rows,
                                   double out_cardinality) {
  double cost = 0;
  for (double rows : scan_rows) cost += cm.scan_weight * rows;
  for (size_t i = 0; i < build_rows.size(); ++i) {
    cost += cm.build_weight * build_rows[i];
  }
  for (size_t i = 0; i < intermediate_rows.size(); ++i) {
    cost += cm.intermediate_weight * intermediate_rows[i];
  }
  cost += cm.emit_weight * out_cardinality;
  return cost;
}

}  // namespace preqr::db

#endif  // PREQR_DB_COST_MODEL_H_
