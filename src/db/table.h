#ifndef PREQR_DB_TABLE_H_
#define PREQR_DB_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"
#include "sql/catalog.h"

namespace preqr::db {

// Columnar storage for one column. Only the vector matching `type` is used.
struct Column {
  sql::ColumnType type = sql::ColumnType::kInt;
  std::vector<int64_t> ints;
  std::vector<double> floats;
  std::vector<std::string> strings;

  size_t size() const {
    switch (type) {
      case sql::ColumnType::kInt:
        return ints.size();
      case sql::ColumnType::kFloat:
        return floats.size();
      case sql::ColumnType::kString:
        return strings.size();
    }
    return 0;
  }
  double AsDouble(size_t row) const {
    return type == sql::ColumnType::kFloat ? floats[row]
                                           : static_cast<double>(ints[row]);
  }
};

// An in-memory table with columnar layout.
class Table {
 public:
  explicit Table(sql::TableDef def) : def_(std::move(def)) {
    columns_.resize(def_.columns.size());
    for (size_t i = 0; i < def_.columns.size(); ++i) {
      columns_[i].type = def_.columns[i].type;
    }
  }

  const sql::TableDef& def() const { return def_; }
  const std::string& name() const { return def_.name; }
  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }

  Column& column(int i) { return columns_[static_cast<size_t>(i)]; }
  const Column& column(int i) const { return columns_[static_cast<size_t>(i)]; }
  const Column* FindColumn(const std::string& name) const {
    const int idx = def_.ColumnIndex(name);
    return idx < 0 ? nullptr : &columns_[static_cast<size_t>(idx)];
  }

  // Call once after filling all column vectors; validates equal lengths.
  void Seal() {
    num_rows_ = columns_.empty() ? 0 : columns_[0].size();
    for (const auto& c : columns_) PREQR_CHECK_EQ(c.size(), num_rows_);
  }

 private:
  sql::TableDef def_;
  std::vector<Column> columns_;
  size_t num_rows_ = 0;
};

}  // namespace preqr::db

#endif  // PREQR_DB_TABLE_H_
