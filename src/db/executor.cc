#include "db/executor.h"

#include <algorithm>
#include <memory>
#include <unordered_set>

namespace preqr::db {

using sql::SelectStatement;

bool Executor::LikeMatch(const std::string& text, const std::string& pattern) {
  return db::LikeMatch(text, pattern);
}

Result<BoundQuery> Executor::Bind(const SelectStatement& stmt) const {
  if (stmt.union_next) {
    return Status::InvalidArgument(
        "UNION statements bind per branch, not as one join query");
  }
  return BindQuery(db_, stmt, [this](const SelectStatement& sub) {
    return Execute(sub, /*collect_root_rows=*/true);
  });
}

Result<ExecResult> Executor::Execute(const SelectStatement& stmt,
                                     bool collect_root_rows) const {
  // UNION: execute branches, merge root row sets (dedup) when collecting.
  if (stmt.union_next) {
    SelectStatement head = stmt;
    head.union_next = nullptr;
    auto left = Execute(head, collect_root_rows);
    if (!left.ok()) return left.status();
    auto right = Execute(*stmt.union_next, collect_root_rows);
    if (!right.ok()) return right.status();
    ExecResult merged;
    merged.cost = left.value().cost + right.value().cost;
    if (collect_root_rows) {
      std::unordered_set<int> ids(left.value().root_row_ids.begin(),
                                  left.value().root_row_ids.end());
      ids.insert(right.value().root_row_ids.begin(),
                 right.value().root_row_ids.end());
      merged.root_row_ids.assign(ids.begin(), ids.end());
      std::sort(merged.root_row_ids.begin(), merged.root_row_ids.end());
      merged.cardinality = static_cast<double>(merged.root_row_ids.size());
    } else {
      merged.cardinality =
          left.value().cardinality + right.value().cardinality;
    }
    return merged;
  }

  auto bound = Bind(stmt);
  if (!bound.ok()) return bound.status();
  std::unique_ptr<PlanNode> plan = BuildDefaultPlan(bound.value());
  ExecResult result;
  result.cost = bound.value().bind_cost;
  plan->ExecuteRoot(bound.value(), collect_root_rows, &result);
  return result;
}

StatusOr<PlannedExecResult> Executor::ExecuteOrder(
    const SelectStatement& stmt, const std::vector<int>& order,
    const CostModel& cm) const {
  if (stmt.union_next) {
    return Status::InvalidArgument(
        "explicit join orders do not apply to UNION statements");
  }
  auto bound = Bind(stmt);
  if (!bound.ok()) return bound.status();
  return ExecuteLeftDeep(bound.value(), order, cm);
}

}  // namespace preqr::db
