#include "db/executor.h"

#include <algorithm>
#include <functional>
#include <unordered_map>
#include <unordered_set>

namespace preqr::db {

namespace {

using sql::ColumnRef;
using sql::ColumnType;
using sql::CompareOp;
using sql::Literal;
using sql::Predicate;
using sql::SelectStatement;

// One table occurrence in the query.
struct Binding {
  std::string name;   // alias or table name
  const Table* table = nullptr;
  std::vector<const Predicate*> filters;
  std::vector<char> pass;  // per-row filter bitmap
};

struct JoinEdge {
  int a = -1, b = -1;    // binding indices
  int col_a = -1, col_b = -1;  // column indices in respective tables
};

// Resolves a column reference to (binding index, column index).
bool ResolveColumn(const std::vector<Binding>& bindings, const ColumnRef& ref,
                   int* binding_idx, int* col_idx) {
  if (!ref.qualifier.empty()) {
    for (size_t i = 0; i < bindings.size(); ++i) {
      if (bindings[i].name == ref.qualifier ||
          bindings[i].table->name() == ref.qualifier) {
        const int c = bindings[i].table->def().ColumnIndex(ref.column);
        if (c < 0) return false;
        *binding_idx = static_cast<int>(i);
        *col_idx = c;
        return true;
      }
    }
    return false;
  }
  // Unqualified: unique table containing the column.
  int found = -1, found_col = -1;
  for (size_t i = 0; i < bindings.size(); ++i) {
    const int c = bindings[i].table->def().ColumnIndex(ref.column);
    if (c >= 0) {
      if (found >= 0) return false;  // ambiguous
      found = static_cast<int>(i);
      found_col = c;
    }
  }
  if (found < 0) return false;
  *binding_idx = found;
  *col_idx = found_col;
  return true;
}

bool CompareNumeric(double lhs, CompareOp op, double rhs) {
  switch (op) {
    case CompareOp::kEq:
      return lhs == rhs;
    case CompareOp::kNe:
      return lhs != rhs;
    case CompareOp::kLt:
      return lhs < rhs;
    case CompareOp::kLe:
      return lhs <= rhs;
    case CompareOp::kGt:
      return lhs > rhs;
    case CompareOp::kGe:
      return lhs >= rhs;
    default:
      return false;
  }
}

bool CompareString(const std::string& lhs, CompareOp op,
                   const std::string& rhs) {
  switch (op) {
    case CompareOp::kEq:
      return lhs == rhs;
    case CompareOp::kNe:
      return lhs != rhs;
    case CompareOp::kLt:
      return lhs < rhs;
    case CompareOp::kLe:
      return lhs <= rhs;
    case CompareOp::kGt:
      return lhs > rhs;
    case CompareOp::kGe:
      return lhs >= rhs;
    case CompareOp::kLike:
      return Executor::LikeMatch(lhs, rhs);
    default:
      return false;
  }
}

// Evaluates one filter predicate against one row.
bool RowPasses(const Table& table, int col, const Predicate& pred, size_t row,
               const std::unordered_set<int64_t>* subquery_ints) {
  const Column& column = table.column(col);
  if (column.type == ColumnType::kString) {
    const std::string& v = column.strings[row];
    switch (pred.op) {
      case CompareOp::kIn: {
        for (const auto& lit : pred.values) {
          if (lit.kind == Literal::Kind::kString && v == lit.string_value) {
            return true;
          }
        }
        return false;
      }
      case CompareOp::kBetween:
        return v >= pred.values[0].string_value &&
               v <= pred.values[1].string_value;
      default:
        return CompareString(v, pred.op, pred.values[0].string_value);
    }
  }
  const double v = column.AsDouble(row);
  switch (pred.op) {
    case CompareOp::kIn: {
      if (subquery_ints != nullptr) {
        return subquery_ints->count(static_cast<int64_t>(v)) > 0;
      }
      for (const auto& lit : pred.values) {
        if (v == lit.AsDouble()) return true;
      }
      return false;
    }
    case CompareOp::kBetween:
      return v >= pred.values[0].AsDouble() && v <= pred.values[1].AsDouble();
    default:
      return CompareNumeric(v, pred.op, pred.values[0].AsDouble());
  }
}

}  // namespace

bool PredicatePasses(const Table& table, int col, const Predicate& pred,
                     size_t row) {
  return RowPasses(table, col, pred, row, nullptr);
}

bool Executor::LikeMatch(const std::string& text, const std::string& pattern) {
  // Iterative wildcard matching with % (any run) and _ (any single char).
  size_t t = 0, p = 0;
  size_t star_p = std::string::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (p < pattern.size() &&
               (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (star_p != std::string::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

Result<ExecResult> Executor::Execute(const SelectStatement& stmt,
                                     bool collect_root_rows) const {
  // UNION: execute branches, merge root row sets (dedup) when collecting.
  if (stmt.union_next) {
    SelectStatement head = stmt;
    head.union_next = nullptr;
    auto left = Execute(head, collect_root_rows);
    if (!left.ok()) return left.status();
    auto right = Execute(*stmt.union_next, collect_root_rows);
    if (!right.ok()) return right.status();
    ExecResult merged;
    merged.cost = left.value().cost + right.value().cost;
    if (collect_root_rows) {
      std::unordered_set<int> ids(left.value().root_row_ids.begin(),
                                  left.value().root_row_ids.end());
      ids.insert(right.value().root_row_ids.begin(),
                 right.value().root_row_ids.end());
      merged.root_row_ids.assign(ids.begin(), ids.end());
      std::sort(merged.root_row_ids.begin(), merged.root_row_ids.end());
      merged.cardinality = static_cast<double>(merged.root_row_ids.size());
    } else {
      merged.cardinality =
          left.value().cardinality + right.value().cardinality;
    }
    return merged;
  }

  // Bind tables.
  std::vector<Binding> bindings;
  for (const auto& tref : stmt.tables) {
    const Table* table = db_.FindTable(tref.table);
    if (table == nullptr) {
      return Status::NotFound("unknown table: " + tref.table);
    }
    Binding b;
    b.name = tref.BindingName();
    b.table = table;
    bindings.push_back(std::move(b));
  }
  if (bindings.empty()) return Status::InvalidArgument("no tables");

  ExecResult result;

  // Classify predicates; evaluate IN-subqueries up front.
  std::vector<JoinEdge> joins;
  std::vector<std::unordered_set<int64_t>> subquery_sets;
  std::vector<const std::unordered_set<int64_t>*> pred_subquery(
      stmt.predicates.size(), nullptr);
  for (size_t pi = 0; pi < stmt.predicates.size(); ++pi) {
    const Predicate& pred = stmt.predicates[pi];
    if (pred.IsJoin()) {
      JoinEdge e;
      if (!ResolveColumn(bindings, pred.lhs, &e.a, &e.col_a) ||
          !ResolveColumn(bindings, pred.rhs_column, &e.b, &e.col_b)) {
        return Status::NotFound("cannot resolve join columns for " +
                                pred.lhs.ToString());
      }
      if (pred.op != CompareOp::kEq) {
        return Status::InvalidArgument("only equi-joins are supported");
      }
      joins.push_back(e);
      continue;
    }
    int bi = -1, ci = -1;
    if (!ResolveColumn(bindings, pred.lhs, &bi, &ci)) {
      return Status::NotFound("cannot resolve column " + pred.lhs.ToString());
    }
    if (pred.subquery) {
      // Evaluate the subquery: collect the projected column's values over
      // the subquery root table's qualifying rows.
      auto sub = Execute(*pred.subquery, /*collect_root_rows=*/true);
      if (!sub.ok()) return sub.status();
      result.cost += sub.value().cost;
      if (pred.subquery->items.empty() || pred.subquery->items[0].star) {
        return Status::InvalidArgument("subquery must project one column");
      }
      const Table* sub_root =
          db_.FindTable(pred.subquery->tables[0].table);
      const int sub_col = sub_root->def().ColumnIndex(
          pred.subquery->items[0].column.column);
      if (sub_col < 0) {
        return Status::NotFound("unknown subquery projection column");
      }
      const Column& scol = sub_root->column(sub_col);
      if (scol.type == ColumnType::kString) {
        return Status::InvalidArgument("string IN-subqueries unsupported");
      }
      std::unordered_set<int64_t> values;
      for (int row : sub.value().root_row_ids) {
        values.insert(scol.type == ColumnType::kInt
                          ? scol.ints[static_cast<size_t>(row)]
                          : static_cast<int64_t>(
                                scol.floats[static_cast<size_t>(row)]));
      }
      subquery_sets.push_back(std::move(values));
    }
    bindings[static_cast<size_t>(bi)].filters.push_back(&pred);
  }

  // Wire subquery value sets to their predicates (after the vector is
  // fully built, so the pointers are stable).
  {
    size_t k = 0;
    for (size_t pi = 0; pi < stmt.predicates.size(); ++pi) {
      if (stmt.predicates[pi].subquery && !stmt.predicates[pi].IsJoin()) {
        pred_subquery[pi] = &subquery_sets[k++];
      }
    }
  }

  // Per-table filter bitmaps; scanning cost.
  for (auto& b : bindings) {
    const size_t n = b.table->num_rows();
    result.cost += static_cast<double>(n);
    b.pass.assign(n, 1);
    for (const Predicate* pred : b.filters) {
      int bi = -1, ci = -1;
      ResolveColumn(bindings, pred->lhs, &bi, &ci);
      const std::unordered_set<int64_t>* sub = nullptr;
      for (size_t pi = 0; pi < stmt.predicates.size(); ++pi) {
        if (&stmt.predicates[pi] == pred) sub = pred_subquery[pi];
      }
      for (size_t row = 0; row < n; ++row) {
        if (b.pass[row] != 0 &&
            !RowPasses(*b.table, ci, *pred, row, sub)) {
          b.pass[row] = 0;
        }
      }
    }
  }

  // Single table: count the bitmap.
  if (bindings.size() == 1) {
    double count = 0;
    for (size_t row = 0; row < bindings[0].pass.size(); ++row) {
      if (bindings[0].pass[row] != 0) {
        count += 1;
        if (collect_root_rows) {
          result.root_row_ids.push_back(static_cast<int>(row));
        }
      }
    }
    result.cardinality = count;
    result.cost += count * 0.1;
    return result;
  }

  // Join tree check: connected with exactly n-1 edges.
  const size_t n_bind = bindings.size();
  if (joins.size() != n_bind - 1) {
    return Status::InvalidArgument("join graph is not a tree");
  }
  std::vector<std::vector<int>> adj(n_bind);  // edge indices per node
  for (size_t e = 0; e < joins.size(); ++e) {
    adj[static_cast<size_t>(joins[e].a)].push_back(static_cast<int>(e));
    adj[static_cast<size_t>(joins[e].b)].push_back(static_cast<int>(e));
  }

  // Bottom-up weight computation from the root (binding 0).
  // weights[node] is only materialized as key->sum maps for children.
  std::vector<char> visited(n_bind, 0);

  // Returns, for `node` (entered via `via_col` from its parent), the map
  // join_key -> total weight of qualifying subtree combinations.
  struct Frame {
    int node;
    int via_col;
  };
  // Recursive lambda via explicit function.
  std::function<std::unordered_map<int64_t, double>(int, int)> subtree_weights =
      [&](int node, int via_col) -> std::unordered_map<int64_t, double> {
    visited[static_cast<size_t>(node)] = 1;
    const Binding& b = bindings[static_cast<size_t>(node)];
    // Gather child maps first.
    struct ChildMap {
      int col;  // this node's join column toward the child
      std::unordered_map<int64_t, double> weights;
    };
    std::vector<ChildMap> children;
    for (int ei : adj[static_cast<size_t>(node)]) {
      const JoinEdge& e = joins[static_cast<size_t>(ei)];
      const int other = e.a == node ? e.b : e.a;
      if (visited[static_cast<size_t>(other)] != 0) continue;
      ChildMap cm;
      cm.col = e.a == node ? e.col_a : e.col_b;
      cm.weights = subtree_weights(other, e.a == node ? e.col_b : e.col_a);
      children.push_back(std::move(cm));
    }
    // Aggregate this node's rows by its parent-join column.
    std::unordered_map<int64_t, double> out;
    const Column& key_col = b.table->column(via_col);
    PREQR_CHECK(key_col.type == ColumnType::kInt);
    double subtree_size = 0;
    for (size_t row = 0; row < b.pass.size(); ++row) {
      if (b.pass[row] == 0) continue;
      double w = 1.0;
      for (const auto& cm : children) {
        const Column& ccol = b.table->column(cm.col);
        const int64_t key = ccol.type == ColumnType::kInt
                                ? ccol.ints[row]
                                : static_cast<int64_t>(ccol.AsDouble(row));
        auto it = cm.weights.find(key);
        if (it == cm.weights.end()) {
          w = 0.0;
          break;
        }
        w *= it->second;
      }
      if (w > 0.0) {
        out[key_col.ints[row]] += w;
        subtree_size += w;
      }
    }
    // Hash build + intermediate size contribute to cost.
    result.cost += static_cast<double>(out.size()) + subtree_size;
    return out;
  };

  // Root: combine children directly.
  visited[0] = 1;
  const Binding& root = bindings[0];
  struct RootChild {
    int col;
    std::unordered_map<int64_t, double> weights;
  };
  std::vector<RootChild> root_children;
  for (int ei : adj[0]) {
    const JoinEdge& e = joins[static_cast<size_t>(ei)];
    const int other = e.a == 0 ? e.b : e.a;
    if (visited[static_cast<size_t>(other)] != 0) continue;
    RootChild rc;
    rc.col = e.a == 0 ? e.col_a : e.col_b;
    rc.weights = subtree_weights(other, e.a == 0 ? e.col_b : e.col_a);
    root_children.push_back(std::move(rc));
  }
  // If some node was unreachable, the join graph was disconnected.
  for (char v : visited) {
    if (v == 0) return Status::InvalidArgument("join graph is disconnected");
  }
  double total = 0;
  for (size_t row = 0; row < root.pass.size(); ++row) {
    if (root.pass[row] == 0) continue;
    double w = 1.0;
    for (const auto& rc : root_children) {
      const Column& ccol = root.table->column(rc.col);
      const int64_t key = ccol.type == ColumnType::kInt
                              ? ccol.ints[row]
                              : static_cast<int64_t>(ccol.AsDouble(row));
      auto it = rc.weights.find(key);
      if (it == rc.weights.end()) {
        w = 0.0;
        break;
      }
      w *= it->second;
    }
    if (w > 0.0) {
      total += w;
      if (collect_root_rows) {
        result.root_row_ids.push_back(static_cast<int>(row));
      }
    }
  }
  result.cardinality = total;
  result.cost += total * 0.1;
  return result;
}

}  // namespace preqr::db
