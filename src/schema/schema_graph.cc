#include "schema/schema_graph.h"

#include <algorithm>
#include <set>

#include "common/string_util.h"

namespace preqr::schema {

const char* EdgeTypeName(EdgeType type) {
  switch (type) {
    case EdgeType::kSameTable: return "Same-Table";
    case EdgeType::kForeignKeyColumnLeft: return "Foreign-Key-Column-Left";
    case EdgeType::kForeignKeyColumnRight: return "Foreign-Key-Column-Right";
    case EdgeType::kPrimaryKeyLeft: return "Primary-Key-Left";
    case EdgeType::kBelongsToLeft: return "Belongs-To-Left";
    case EdgeType::kPrimaryKeyRight: return "Primary-Key-Right";
    case EdgeType::kBelongsToRight: return "Belongs-To-Right";
    case EdgeType::kForeignKeyTableLeft: return "Foreign-Key-Table-Left";
    case EdgeType::kForeignKeyTableRight: return "Foreign-Key-Table-Right";
    case EdgeType::kForeignKeyTableBoth: return "Foreign-Key-Table-Both";
    case EdgeType::kNumEdgeTypes: break;
  }
  return "?";
}

std::vector<std::string> SplitIdentifier(const std::string& name) {
  return SplitAny(ToLower(name), "_.");
}

int SchemaGraph::TableNode(const std::string& table) const {
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].is_table && nodes_[i].name == table) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

int SchemaGraph::ColumnNode(const std::string& table,
                            const std::string& column) const {
  const std::string full = table + "." + column;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (!nodes_[i].is_table && nodes_[i].name == full) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

void SchemaGraph::AddEdgesForTable(const sql::Catalog& catalog,
                                   int table_idx) {
  const sql::TableDef& table =
      catalog.tables()[static_cast<size_t>(table_idx)];
  const int t_node = TableNode(table.name);
  std::vector<int> col_nodes;
  for (const auto& col : table.columns) {
    col_nodes.push_back(ColumnNode(table.name, col.name));
  }
  // (Column, Table) and (Table, Column) membership edges.
  for (size_t c = 0; c < table.columns.size(); ++c) {
    const bool pk = table.columns[c].is_primary_key;
    edges_.push_back({col_nodes[c], t_node,
                      pk ? EdgeType::kPrimaryKeyLeft : EdgeType::kBelongsToLeft});
    edges_.push_back({t_node, col_nodes[c],
                      pk ? EdgeType::kPrimaryKeyRight
                         : EdgeType::kBelongsToRight});
  }
  // (Column, Column) Same-Table edges, both directions.
  for (size_t a = 0; a < table.columns.size(); ++a) {
    for (size_t b = a + 1; b < table.columns.size(); ++b) {
      edges_.push_back({col_nodes[a], col_nodes[b], EdgeType::kSameTable});
      edges_.push_back({col_nodes[b], col_nodes[a], EdgeType::kSameTable});
    }
  }
}

void SchemaGraph::AddFkEdges(const sql::Catalog& catalog) {
  // Column-level FK edges.
  for (const auto& fk : catalog.foreign_keys()) {
    const int from = ColumnNode(fk.from_table, fk.from_column);
    const int to = ColumnNode(fk.to_table, fk.to_column);
    if (from < 0 || to < 0) continue;
    edges_.push_back({from, to, EdgeType::kForeignKeyColumnLeft});
    edges_.push_back({to, from, EdgeType::kForeignKeyColumnRight});
  }
  // Table-level FK edges (Left / Right / Both).
  std::set<std::pair<std::string, std::string>> has_fk;
  for (const auto& fk : catalog.foreign_keys()) {
    has_fk.emplace(fk.from_table, fk.to_table);
  }
  std::set<std::pair<std::string, std::string>> emitted;
  for (const auto& [from, to] : has_fk) {
    if (emitted.count({from, to}) || emitted.count({to, from})) continue;
    const bool both = has_fk.count({to, from}) > 0 && from != to;
    const int from_node = TableNode(from);
    const int to_node = TableNode(to);
    if (from_node < 0 || to_node < 0) continue;
    if (both) {
      edges_.push_back({from_node, to_node, EdgeType::kForeignKeyTableBoth});
      edges_.push_back({to_node, from_node, EdgeType::kForeignKeyTableBoth});
    } else {
      edges_.push_back({from_node, to_node, EdgeType::kForeignKeyTableLeft});
      edges_.push_back({to_node, from_node, EdgeType::kForeignKeyTableRight});
    }
    emitted.emplace(from, to);
  }
}

SchemaGraph SchemaGraph::Build(const sql::Catalog& catalog) {
  SchemaGraph g;
  // Table nodes first, then column nodes, per catalog order.
  for (size_t t = 0; t < catalog.tables().size(); ++t) {
    const auto& table = catalog.tables()[t];
    SchemaNode node;
    node.is_table = true;
    node.table_idx = static_cast<int>(t);
    node.name = table.name;
    node.name_tokens = SplitIdentifier(table.name);
    g.nodes_.push_back(std::move(node));
  }
  for (size_t t = 0; t < catalog.tables().size(); ++t) {
    const auto& table = catalog.tables()[t];
    for (size_t c = 0; c < table.columns.size(); ++c) {
      SchemaNode node;
      node.is_table = false;
      node.table_idx = static_cast<int>(t);
      node.column_idx = static_cast<int>(c);
      node.name = table.name + "." + table.columns[c].name;
      // First token is the column type (Section 3.4.2).
      node.name_tokens.push_back(
          ToLower(sql::ColumnTypeName(table.columns[c].type)));
      for (auto& tok : SplitIdentifier(table.columns[c].name)) {
        node.name_tokens.push_back(std::move(tok));
      }
      g.nodes_.push_back(std::move(node));
    }
  }
  for (size_t t = 0; t < catalog.tables().size(); ++t) {
    g.AddEdgesForTable(catalog, static_cast<int>(t));
  }
  g.AddFkEdges(catalog);
  return g;
}

void SchemaGraph::AddTable(const sql::Catalog& catalog,
                           const std::string& table_name) {
  const int t_idx = catalog.TableIndex(table_name);
  PREQR_CHECK_GE(t_idx, 0);
  const sql::TableDef& table = catalog.tables()[static_cast<size_t>(t_idx)];
  SchemaNode tnode;
  tnode.is_table = true;
  tnode.table_idx = t_idx;
  tnode.name = table.name;
  tnode.name_tokens = SplitIdentifier(table.name);
  nodes_.push_back(std::move(tnode));
  for (size_t c = 0; c < table.columns.size(); ++c) {
    SchemaNode node;
    node.is_table = false;
    node.table_idx = t_idx;
    node.column_idx = static_cast<int>(c);
    node.name = table.name + "." + table.columns[c].name;
    node.name_tokens.push_back(
        ToLower(sql::ColumnTypeName(table.columns[c].type)));
    for (auto& tok : SplitIdentifier(table.columns[c].name)) {
      node.name_tokens.push_back(std::move(tok));
    }
    nodes_.push_back(std::move(node));
  }
  AddEdgesForTable(catalog, t_idx);
  // Re-derive FK edges touching the new table.
  for (const auto& fk : catalog.foreign_keys()) {
    if (fk.from_table != table_name && fk.to_table != table_name) continue;
    const int from = ColumnNode(fk.from_table, fk.from_column);
    const int to = ColumnNode(fk.to_table, fk.to_column);
    if (from < 0 || to < 0) continue;
    edges_.push_back({from, to, EdgeType::kForeignKeyColumnLeft});
    edges_.push_back({to, from, EdgeType::kForeignKeyColumnRight});
    const int from_t = TableNode(fk.from_table);
    const int to_t = TableNode(fk.to_table);
    edges_.push_back({from_t, to_t, EdgeType::kForeignKeyTableLeft});
    edges_.push_back({to_t, from_t, EdgeType::kForeignKeyTableRight});
  }
}

void SchemaGraph::RelationalEdges(
    std::vector<std::vector<nn::Edge>>* rel_edges,
    std::vector<std::vector<float>>* rel_norms) const {
  rel_edges->assign(static_cast<size_t>(kNumEdgeTypes), {});
  rel_norms->assign(static_cast<size_t>(kNumEdgeTypes), {});
  // In-degree per (node, relation) for 1/|N_e(i)| normalization.
  std::vector<std::vector<int>> indegree(
      static_cast<size_t>(kNumEdgeTypes),
      std::vector<int>(nodes_.size(), 0));
  for (const auto& e : edges_) {
    ++indegree[static_cast<size_t>(e.type)][static_cast<size_t>(e.dst)];
  }
  for (const auto& e : edges_) {
    const auto r = static_cast<size_t>(e.type);
    (*rel_edges)[r].push_back({e.src, e.dst});
    (*rel_norms)[r].push_back(
        1.0f / static_cast<float>(indegree[r][static_cast<size_t>(e.dst)]));
  }
}

}  // namespace preqr::schema
