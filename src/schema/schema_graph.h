#ifndef PREQR_SCHEMA_SCHEMA_GRAPH_H_
#define PREQR_SCHEMA_SCHEMA_GRAPH_H_

#include <string>
#include <vector>

#include "nn/ops.h"
#include "sql/catalog.h"

namespace preqr::schema {

// The ten labeled edge types of the directed schema graph (Table 4).
// Self-connections (the paper's 11th, implicit relation) are modeled by the
// R-GCN layer's dedicated self-weight rather than explicit edges.
enum class EdgeType : int {
  kSameTable = 0,
  kForeignKeyColumnLeft,   // src column is a foreign key for dst column
  kForeignKeyColumnRight,  // dst column is a foreign key for src column
  kPrimaryKeyLeft,         // src column is the primary key of dst table
  kBelongsToLeft,          // src column is a (non-PK) column of dst table
  kPrimaryKeyRight,        // dst column is the primary key of src table
  kBelongsToRight,         // dst column is a (non-PK) column of src table
  kForeignKeyTableLeft,    // src table has a FK column referencing dst table
  kForeignKeyTableRight,   // dst table has a FK column referencing src table
  kForeignKeyTableBoth,    // FKs in both directions
  kNumEdgeTypes,
};

constexpr int kNumEdgeTypes = static_cast<int>(EdgeType::kNumEdgeTypes);

const char* EdgeTypeName(EdgeType type);

// One vertex: a table or a column.
struct SchemaNode {
  bool is_table = false;
  int table_idx = -1;   // index into catalog tables
  int column_idx = -1;  // valid for column nodes
  std::string name;     // "title" or "title.production_year"
  // Name tokens for the BiLSTM name encoder; for column nodes the first
  // token is the column type (INT/FLOAT/VARCHAR), per Section 3.4.2.
  std::vector<std::string> name_tokens;
};

// Directed labeled schema graph G_s = (V, E, R).
class SchemaGraph {
 public:
  struct Edge {
    int src = -1;
    int dst = -1;
    EdgeType type = EdgeType::kSameTable;
  };

  // Builds the graph from a catalog following Table 4.
  static SchemaGraph Build(const sql::Catalog& catalog);

  const std::vector<SchemaNode>& nodes() const { return nodes_; }
  const std::vector<Edge>& edges() const { return edges_; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int num_edges() const { return static_cast<int>(edges_.size()); }

  // Node index of a table / column; -1 when absent.
  int TableNode(const std::string& table) const;
  int ColumnNode(const std::string& table, const std::string& column) const;

  // Splits edges by relation and computes 1/|N_e(i)| normalization, in the
  // format RgcnLayer consumes.
  void RelationalEdges(std::vector<std::vector<nn::Edge>>* rel_edges,
                       std::vector<std::vector<float>>* rel_norms) const;

  // Incrementally extends the graph when the schema gains a table (Case 2
  // of Section 3.6). Rebuilds edges touching the new table only.
  void AddTable(const sql::Catalog& catalog, const std::string& table);

 private:
  void AddEdgesForTable(const sql::Catalog& catalog, int table_idx);
  void AddFkEdges(const sql::Catalog& catalog);
  std::vector<SchemaNode> nodes_;
  std::vector<Edge> edges_;
};

// Splits an identifier into lowercase word tokens on '_' boundaries.
std::vector<std::string> SplitIdentifier(const std::string& name);

}  // namespace preqr::schema

#endif  // PREQR_SCHEMA_SCHEMA_GRAPH_H_
