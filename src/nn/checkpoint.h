#ifndef PREQR_NN_CHECKPOINT_H_
#define PREQR_NN_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "nn/optim.h"

namespace preqr::nn {

// ---------------------------------------------------------------------------
// PRC1: versioned, CRC-validated, atomically-written training checkpoints.
//
// Layout (little-endian, all offsets in bytes):
//
//   u32 magic    = "PRC1" (0x50524331)
//   u32 version  = 1
//   u32 sections = number of named sections
//   u64 payload  = total size of the section area that follows the header
//   u32 crc32    = IEEE CRC-32 over the section area
//   --- section area (exactly `payload` bytes) ---
//   per section: u32 name_len, name bytes, u64 data_len, data bytes
//
// A reader rejects anything that does not check out end to end: wrong
// magic/version, impossible counts or lengths, CRC mismatch, truncation,
// or trailing bytes after the declared payload. Writers only ever publish
// a file through AtomicWriteFile, so the checkpoint path either holds the
// previous complete checkpoint or the new complete one — never a torn mix.
//
// Section payloads are opaque byte strings; the canonical training
// checkpoint uses the kSection* names below (module weights re-use the
// PRM1 parameter-table encoding from serialize.h).
// ---------------------------------------------------------------------------

inline constexpr uint32_t kCheckpointMagic = 0x50524331;  // "PRC1"
inline constexpr uint32_t kCheckpointVersion = 1;

// Canonical section names.
inline constexpr const char* kSectionModel = "model";      // module weights
inline constexpr const char* kSectionOptimizer = "optim";  // Adam/Sgd slots
inline constexpr const char* kSectionRng = "rng";          // trainer PRNG
inline constexpr const char* kSectionStep = "step";        // global step u64
inline constexpr const char* kSectionTrainer = "trainer";  // loop cursor

// IEEE CRC-32 (reflected polynomial 0xEDB88320) over `n` bytes, chainable
// via `seed` (pass the previous return value to continue a running CRC).
uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0);

// Durably replaces `path` with `bytes`: writes to `path + ".tmp"`, flushes,
// and renames over the destination. A crash at any point leaves either the
// old complete file or the new complete file at `path`, plus at worst a
// stale .tmp that the next successful write truncates and replaces.
Status AtomicWriteFile(const std::string& path, const std::string& bytes);

// Reads the whole file at `path` into `*out`.
Status ReadFileToString(const std::string& path, std::string* out);

// Assembles a PRC1 byte stream from named sections.
class CheckpointWriter {
 public:
  // Later sections with a repeated name are rejected at Serialize time.
  void AddSection(std::string name, std::string payload);

  // The complete PRC1 byte stream (header + CRC + sections).
  StatusOr<std::string> Serialize() const;

  // Serialize + AtomicWriteFile.
  Status WriteAtomic(const std::string& path) const;

 private:
  std::vector<std::pair<std::string, std::string>> sections_;
};

// Parses and validates a PRC1 byte stream; sections are then available by
// name. Open/Parse fail without partial state on any malformed input.
class CheckpointReader {
 public:
  Status Open(const std::string& path);
  Status Parse(std::string bytes);

  bool Has(const std::string& name) const;
  // nullptr when the section is absent.
  const std::string* Section(const std::string& name) const;
  uint32_t version() const { return version_; }
  const std::vector<std::pair<std::string, std::string>>& sections() const {
    return sections_;
  }

 private:
  uint32_t version_ = 0;
  std::vector<std::pair<std::string, std::string>> sections_;
};

// --- Section codecs --------------------------------------------------------

// Optimizer state <-> bytes (type tag, step, per-slot float vectors).
std::string EncodeOptimizerState(const OptimizerState& state);
Status DecodeOptimizerState(const std::string& payload, OptimizerState* out);

// xoshiro256** state <-> bytes (4 x u64).
std::string EncodeRngState(const Rng::State& state);
Status DecodeRngState(const std::string& payload, Rng::State* out);

// Plain u64 section (step counters and similar).
std::string EncodeU64(uint64_t v);
Status DecodeU64(const std::string& payload, uint64_t* out);

}  // namespace preqr::nn

#endif  // PREQR_NN_CHECKPOINT_H_
