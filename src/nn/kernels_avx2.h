#ifndef PREQR_NN_KERNELS_AVX2_H_
#define PREQR_NN_KERNELS_AVX2_H_

#include <cstddef>
#include <cstdint>

// Declarations for the AVX2/FMA kernel backend. Definitions live in
// kernels_avx2.cc, which is compiled with -mavx2 -mfma only when CMake's
// toolchain check passes (PREQR_HAVE_AVX2); callers must gate on
// kernels::Avx2Supported() before invoking any of these.
namespace preqr::nn::kernels::avx2 {

void MatMulForward(const float* a, const float* b, float* out, int m, int k,
                   int n);
void AddBiasForward(const float* x, const float* bias, float* out,
                    size_t rows, int d);
void ReluForward(const float* x, float* out, size_t n);
void GeluForward(const float* x, float* out, size_t n);
void TanhForward(const float* x, float* out, size_t n);
void SigmoidForward(const float* x, float* out, size_t n);
void SoftmaxForward(const float* x, float* out, size_t rows, int d);
void LayerNormForward(const float* x, const float* gamma, const float* beta,
                      float eps, float* out, float* xhat, float* inv_std,
                      int n, int d);
void BatchedMatMulNTForward(const float* a, const float* bt, float* out,
                            int bsz, int t, int k, const int* lengths);
void BatchedMatMulNNForward(const float* w, const float* v, float* out,
                            int bsz, int t, int dv, const int* lengths);
void MaskedSoftmaxForward(const float* x, float* out, int bsz, int t,
                          const int* lengths);
void MaskedLayerNormForward(const float* x, const float* gamma,
                            const float* beta, float eps, float* out,
                            float* xhat, float* inv_std, int bsz, int t,
                            int d, const int* lengths);
void Int8GemmForward(const int8_t* aq, const float* a_scale, const int8_t* wt,
                     float w_scale, float* out, int m, int k, int n);

}  // namespace preqr::nn::kernels::avx2

#endif  // PREQR_NN_KERNELS_AVX2_H_
