#ifndef PREQR_NN_KERNELS_H_
#define PREQR_NN_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace preqr::nn {

// Edge of a sparse aggregation (R-GCN) edge list: out[dst] += w * h[src].
struct Edge {
  int src;
  int dst;
};

// Pure row-major float32 compute kernels. This is the bottom stratum of the
// nn execution layer: no Tensor, no tape, no allocation beyond internal
// scratch — just raw pointers/sizes in, values out. The tape-wiring in
// ops.cc and the storage policy in buffer_pool.{h,cc} sit on top.
//
// Every kernel keeps the exact loop structure (including ParallelFor
// partitioning and accumulation order) of the op it was extracted from, so
// results are bitwise-identical to the pre-split implementation at every
// thread count. Backward kernels all *accumulate* into their destination
// (dst += ...), matching the tape's gradient-accumulation contract.
namespace kernels {

// --- Elementwise forward -------------------------------------------------
void AddForward(const float* a, const float* b, float* out, size_t n);
void SubForward(const float* a, const float* b, float* out, size_t n);
void MulForward(const float* a, const float* b, float* out, size_t n);
void ScaleForward(const float* a, float c, float* out, size_t n);
void AddScalarForward(const float* a, float c, float* out, size_t n);
// x: rows x d, bias: [d] broadcast over rows.
void AddBiasForward(const float* x, const float* bias, float* out,
                    size_t rows, int d);
void ReluForward(const float* x, float* out, size_t n);
void GeluForward(const float* x, float* out, size_t n);
void TanhForward(const float* x, float* out, size_t n);
void SigmoidForward(const float* x, float* out, size_t n);

// --- Elementwise backward ------------------------------------------------
void Accumulate(const float* g, float* dst, size_t n);     // dst += g
void AccumulateNeg(const float* g, float* dst, size_t n);  // dst -= g
// dst += g * other (elementwise)
void AccumulateMul(const float* g, const float* other, float* dst, size_t n);
void AccumulateScaled(const float* g, float c, float* dst, size_t n);
void AccumulateConst(float g, float* dst, size_t n);  // dst += g
// dbias[j] += sum_r g[r*d+j]; parallel over columns, row order per column.
void AddBiasBackwardBias(const float* g, float* dbias, size_t rows, int d);
void ReluBackward(const float* x, const float* g, float* dx, size_t n);
void GeluBackward(const float* x, const float* g, float* dx, size_t n);
// Tanh/Sigmoid derivatives read the forward *output* y.
void TanhBackward(const float* y, const float* g, float* dx, size_t n);
void SigmoidBackward(const float* y, const float* g, float* dx, size_t n);

// --- Linear algebra ------------------------------------------------------
// out (m x n) must be zero-filled on entry; a: m x k, b: k x n.
void MatMulForward(const float* a, const float* b, float* out, int m, int k,
                   int n);
// da += g * b^T, db += a^T * g (g: m x n).
void MatMulBackwardA(const float* g, const float* b, float* da, int m, int k,
                     int n);
void MatMulBackwardB(const float* a, const float* g, float* db, int m, int k,
                     int n);
void TransposeForward(const float* a, float* out, int m, int n);
void TransposeBackward(const float* g, float* da, int m, int n);

// Int8 GEMM for the quantized no-grad encode path (src/nn/quant.{h,cc}):
//   out[i,j] = a_scale[i] * w_scale * sum_k aq[i,k] * wt[j,k]
// aq is the row-quantized activation [m, k] with one symmetric scale per
// row; wt is the packed *transposed* int8 weight [n, k] with one scale per
// tensor. Accumulation is exact int32 (127·127·k fits comfortably), and the
// dequantization applies the same two float ops per element in every
// implementation — so scalar and SIMD int8 GEMMs are bitwise identical.
// Rows with a_scale[i] == 0 (all-zero activations, e.g. pad rows) are
// skipped and their output rows stay zero. out must be zero-filled.
void Int8GemmForward(const int8_t* aq, const float* a_scale, const int8_t* wt,
                     float w_scale, float* out, int m, int k, int n);

// --- Softmax / layer norm ------------------------------------------------
void SoftmaxForward(const float* x, float* out, size_t rows, int d);
// y is the forward output (softmax probabilities).
void SoftmaxBackward(const float* y, const float* g, float* dx, size_t rows,
                     int d);
// xhat (n x d) and inv_std (n) are optional saved-for-backward outputs;
// pass nullptr to skip storing them (no-grad forward).
void LayerNormForward(const float* x, const float* gamma, const float* beta,
                      float eps, float* out, float* xhat, float* inv_std,
                      int n, int d);
// dgamma[j] += sum_i g*xhat, dbeta[j] += sum_i g; parallel over columns.
void LayerNormBackwardParams(const float* g, const float* xhat, float* dgamma,
                             float* dbeta, int n, int d);
void LayerNormBackwardInput(const float* g, const float* xhat,
                            const float* inv_std, const float* gamma,
                            float* dx, int n, int d);

// --- Reductions ----------------------------------------------------------
float SumForward(const float* x, size_t n);
// out [d] must be zero-filled; x: n x d.
void MeanRowsForward(const float* x, float* out, int n, int d);
void MeanRowsBackward(const float* g, float invn, float* dx, int n, int d);
// argmax [d] is optional (pass nullptr when no backward will run).
void MaxRowsForward(const float* x, float* out, int* argmax, int n, int d);
void MaxRowsBackward(const float* g, const int* argmax, float* dx, int d);
// out [d] must be zero-filled; rows indexes into x (n x d), inv = 1/|rows|.
void MeanRowsSubsetForward(const float* x, const std::vector<int>& rows,
                           float inv, float* out, int d);
void MeanRowsSubsetBackward(const float* g, const std::vector<int>& rows,
                            float inv, float* dx, int d);

// --- Copies (reshape / concat / slice) -----------------------------------
void Copy(const float* src, float* dst, size_t n);
// Copies `rows` rows of `width` floats; src advances by src_stride per row,
// dst by dst_stride.
void CopyRows(const float* src, size_t src_stride, float* dst,
              size_t dst_stride, size_t rows, size_t width);
// dst += g, row by row with independent strides.
void AccumulateRows(const float* g, size_t g_stride, float* dst,
                    size_t dst_stride, size_t rows, size_t width);

// --- Lookup / graph ------------------------------------------------------
// weight: vocab x d; out: |ids| x d. Checks 0 <= id < vocab.
void GatherForward(const float* weight, int vocab, int d,
                   const std::vector<int>& ids, float* out);
// Embedding scatter grouped by destination row (deterministic; see ops.cc).
void GatherBackward(const float* g, const std::vector<int>& ids, int d,
                    float* dweight);
// out (n x d) must be zero-filled: out[dst] += norm[e] * h[src].
void SparseAggregateForward(const float* h, const std::vector<Edge>& edges,
                            const std::vector<float>& norm, float* out, int d);
void SparseAggregateBackward(const float* g, const std::vector<Edge>& edges,
                             const std::vector<float>& norm, float* dh, int d);

// --- Losses --------------------------------------------------------------
// probs (n x c) receives the softmax of each row (needed by backward;
// always written). Returns the mean loss over non-ignored rows and stores
// their count in *valid_out.
float CrossEntropyForward(const float* logits,
                          const std::vector<int>& targets, int ignore_index,
                          int n, int c, float* probs, int* valid_out);
void CrossEntropyBackward(float g, const float* probs,
                          const std::vector<int>& targets, int ignore_index,
                          int n, int c, float* dlogits);
float MseForward(const float* pred, const std::vector<float>& target);
// dpred += g * (pred - target), g pre-scaled by 2/n.
void MseBackward(float g, const float* pred, const std::vector<float>& target,
                 float* dpred);

// --- Dropout -------------------------------------------------------------
// Draws one uniform per element from rng (serial; determinism depends on
// it). mask is optional saved-for-backward output (nullptr skips).
void DropoutForward(const float* x, float p, float scale, Rng& rng,
                    float* out, float* mask, size_t n);
void DropoutBackward(const float* g, const float* mask, float* dx, size_t n);

// --- Batched / masked kernels --------------------------------------------
// Padded batch layout: a batch packs `bsz` examples into [bsz, t, ...] with
// example b valid in rows [0, lengths[b]) and padding above. Every kernel
// here partitions its loops *per example row* — no float ever crosses an
// example boundary — so each valid row is computed by exactly the serial
// loop the single-query kernels run, and results are bitwise-independent
// of batch composition, padded length, and thread count. Pad entries are
// left untouched by forwards (callers hand in zero-filled outputs, same
// contract as MatMulForward) and skipped by backwards, so pad gradients
// stay exactly zero.

// Attention scores, one block per example: for i, j < lengths[b],
//   out[b,i,j] = sum_k a[b,i,k] * bt[b,j,k]
// with the kk-outer / j-inner accumulation (and zero-skip) of
// MatMulForward(a_b, Transpose(bt_b)) so each valid row is bitwise equal
// to the single-query path. a, bt: [bsz, t, k]; out: [bsz, t, t], zeroed.
void BatchedMatMulNTForward(const float* a, const float* bt, float* out,
                            int bsz, int t, int k, const int* lengths);
// da[b,i,:] += g[b,i,:len] * bt[b,:len,:]; dbt[b,j,:] += sum_i g[b,i,j] * a[b,i,:].
void BatchedMatMulNTBackwardA(const float* g, const float* bt, float* da,
                              int bsz, int t, int k, const int* lengths);
void BatchedMatMulNTBackwardB(const float* g, const float* a, float* dbt,
                              int bsz, int t, int k, const int* lengths);

// Attention-weighted values: for i < lengths[b],
//   out[b,i,:] = sum_j w[b,i,j] * v[b,j,:],  j < lengths[b]
// matching MatMulForward(w_b, v_b) row by row. w: [bsz, t, t],
// v: [bsz, t, dv]; out: [bsz, t, dv], zeroed.
void BatchedMatMulNNForward(const float* w, const float* v, float* out,
                            int bsz, int t, int dv, const int* lengths);
void BatchedMatMulNNBackwardW(const float* g, const float* v, float* dw,
                              int bsz, int t, int dv, const int* lengths);
void BatchedMatMulNNBackwardV(const float* w, const float* g, float* dv,
                              int bsz, int t, int dv_dim, const int* lengths);

// Mask-aware softmax over [bsz, t, t] score blocks: valid row i of example
// b normalizes over its first lengths[b] entries with exactly the
// SoftmaxForward inner loop (d = lengths[b]); pad entries and pad rows
// stay zero. out must be zero-filled.
void MaskedSoftmaxForward(const float* x, float* out, int bsz, int t,
                          const int* lengths);
void MaskedSoftmaxBackward(const float* y, const float* g, float* dx,
                           int bsz, int t, const int* lengths);

// Row-masked layer norm over [bsz, t, d]: valid rows run the
// LayerNormForward row body verbatim; pad rows are skipped (out/xhat stay
// zero-filled). xhat/inv_std optional as in LayerNormForward.
void MaskedLayerNormForward(const float* x, const float* gamma,
                            const float* beta, float eps, float* out,
                            float* xhat, float* inv_std, int bsz, int t,
                            int d, const int* lengths);
// dgamma/dbeta reduce over valid rows only, partitioned over columns with
// (example, row) ascending accumulation order per column.
void MaskedLayerNormBackwardParams(const float* g, const float* xhat,
                                   float* dgamma, float* dbeta, int bsz,
                                   int t, int d, const int* lengths);
void MaskedLayerNormBackwardInput(const float* g, const float* xhat,
                                  const float* inv_std, const float* gamma,
                                  float* dx, int bsz, int t, int d,
                                  const int* lengths);

// Masked MLM loss over [bsz, t, c] logits with targets[b*t+i] (pad rows and
// ignore_index rows contribute nothing). Per example: the double-precision
// row-order mean of CrossEntropyForward, cast to float. The scalar
// returned is the float chain sum (((l_0+l_1)+l_2)+...) scaled by 1/bsz —
// the value the per-example Add/Scale tape used to produce. probs
// ([bsz*t, c]) is written for valid rows; valid_out/example_loss get one
// entry per example (example_loss may be nullptr).
float MaskedCrossEntropyForward(const float* logits,
                                const std::vector<int>& targets,
                                int ignore_index, int bsz, int t, int c,
                                const int* lengths, float* probs,
                                std::vector<int>* valid_out,
                                std::vector<float>* example_loss);
// dlogits[row] += g * (1/bsz) / valid[b] * (probs - onehot) per non-ignored
// valid row.
void MaskedCrossEntropyBackward(float g, const float* probs,
                                const std::vector<int>& targets,
                                int ignore_index, int bsz, int t, int c,
                                const int* lengths,
                                const std::vector<int>& valid,
                                float* dlogits);

// Masked dropout over [bsz, t, d] with one independent RNG stream per
// example: example b draws exactly lengths[b]*d uniforms from Rng(seeds[b])
// in row-major order — the same sequence the single-example DropoutForward
// consumes — so valid rows are bitwise-identical to the per-example path.
// Pad rows draw nothing (out/mask stay zero-filled).
void MaskedDropoutForward(const float* x, float p, float scale,
                          const uint64_t* seeds, float* out, float* mask,
                          int bsz, int t, int d, const int* lengths);

}  // namespace kernels
}  // namespace preqr::nn

#endif  // PREQR_NN_KERNELS_H_
