#ifndef PREQR_NN_BUFFER_POOL_H_
#define PREQR_NN_BUFFER_POOL_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace preqr::nn {

// Cumulative allocation statistics across every thread's pool (relaxed
// atomics; exact once the threads quiesce).
struct BufferPoolStats {
  uint64_t allocs = 0;     // Acquire() calls that heap-allocated
  uint64_t reuses = 0;     // Acquire() calls served from a free list
  uint64_t releases = 0;   // buffers returned and kept for reuse
  uint64_t discards = 0;   // buffers returned but dropped (bucket full/odd)
  uint64_t live_bytes = 0; // bytes currently parked in free lists
};

// Thread-local size-bucketed recycler for tensor backing stores.
//
// The storage stratum of the nn execution layer: no-grad tensor
// allocations (see NewImpl in tensor.cc) draw their vector<float> from
// here and return it when the TensorImpl dies, so a steady-state inference
// loop stops hitting the heap for every intermediate. Buckets are
// power-of-two capacities; an Acquire(n) pops from the smallest bucket
// whose capacity covers n, so a recycled buffer round-trips into the same
// bucket it came from. Returned buffers are cleared, and Acquire zero-fills
// via resize(n), so pooled tensors are bitwise-identical to fresh
// `assign(n, 0.0f)` allocations.
//
// Each thread owns its own pool (no locks); a buffer released on a
// different thread than it was acquired on simply joins the releasing
// thread's free lists. `set_enabled(false)` bypasses recycling globally
// (used by the determinism tests to diff pooled vs. plain allocation).
//
// With -DPREQR_POOL_DEBUG every released buffer is poisoned with quiet
// NaNs before it is parked, so a dangling reader of a recycled buffer
// turns into NaN embeddings instead of silent stale data.
class BufferPool {
 public:
  // The calling thread's pool (created on first use, destroyed at thread
  // exit, returning its parked bytes to the heap).
  static BufferPool& ThreadLocal();

  // Global on/off switch for recycling (default on). When off, Acquire
  // heap-allocates and Release frees — stats still count allocs/discards.
  static void set_enabled(bool enabled);
  static bool enabled();

  // Sum of all threads' counters.
  static BufferPoolStats TotalStats();

  // A zero-filled vector of exactly n elements (capacity may be the
  // bucket's power of two).
  std::vector<float> Acquire(size_t n);

  // Parks the backing store for reuse (or frees it if the bucket is full,
  // the capacity is not worth keeping, or pooling is disabled).
  void Release(std::vector<float>&& buf);

  // Frees every parked buffer on this thread.
  void Clear();

  ~BufferPool();

 private:
  BufferPool() = default;

  // Capacities 2^0 .. 2^(kNumBuckets-1); 2^23 floats = 32 MiB, far above
  // any tensor this model allocates.
  static constexpr int kNumBuckets = 24;
  static constexpr size_t kMaxPerBucket = 16;

  std::array<std::vector<std::vector<float>>, kNumBuckets> free_;
};

}  // namespace preqr::nn

#endif  // PREQR_NN_BUFFER_POOL_H_
