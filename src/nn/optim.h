#ifndef PREQR_NN_OPTIM_H_
#define PREQR_NN_OPTIM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "nn/tensor.h"

namespace preqr::nn {

// Snapshot of an optimizer's mutable state, in the parameter order the
// optimizer was constructed with. `slots` holds the per-parameter moment
// vectors back to back (Adam: m for every parameter, then v for every
// parameter; Sgd: empty). Checkpoints serialize this struct; restoring it
// into an optimizer over the same parameter list resumes training with
// bit-identical updates.
struct OptimizerState {
  std::string type;  // "adam" | "sgd"
  int64_t step = 0;  // Adam's bias-correction counter t
  std::vector<std::vector<float>> slots;
};

// Adam optimizer with optional gradient clipping (global L2 norm).
class Adam {
 public:
  explicit Adam(std::vector<Tensor> params, float lr = 1e-3f,
                float beta1 = 0.9f, float beta2 = 0.999f, float eps = 1e-8f,
                float clip_norm = 5.0f);

  void Step();
  void ZeroGrad();
  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }
  int64_t step_count() const { return t_; }

  OptimizerState StateDict() const;
  // Rejects (without touching this optimizer) a state whose type or slot
  // geometry does not match the constructed parameter list.
  Status LoadStateDict(const OptimizerState& state);

 private:
  std::vector<Tensor> params_;
  std::vector<std::vector<float>> m_, v_;
  float lr_, beta1_, beta2_, eps_, clip_norm_;
  int64_t t_ = 0;
};

// Plain SGD (used by a few baselines).
class Sgd {
 public:
  explicit Sgd(std::vector<Tensor> params, float lr = 1e-2f);
  void Step();
  void ZeroGrad();

  OptimizerState StateDict() const;
  Status LoadStateDict(const OptimizerState& state);

 private:
  std::vector<Tensor> params_;
  float lr_;
};

}  // namespace preqr::nn

#endif  // PREQR_NN_OPTIM_H_
