#ifndef PREQR_NN_OPTIM_H_
#define PREQR_NN_OPTIM_H_

#include <vector>

#include "nn/tensor.h"

namespace preqr::nn {

// Adam optimizer with optional gradient clipping (global L2 norm).
class Adam {
 public:
  explicit Adam(std::vector<Tensor> params, float lr = 1e-3f,
                float beta1 = 0.9f, float beta2 = 0.999f, float eps = 1e-8f,
                float clip_norm = 5.0f);

  void Step();
  void ZeroGrad();
  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

 private:
  std::vector<Tensor> params_;
  std::vector<std::vector<float>> m_, v_;
  float lr_, beta1_, beta2_, eps_, clip_norm_;
  int t_ = 0;
};

// Plain SGD (used by a few baselines).
class Sgd {
 public:
  explicit Sgd(std::vector<Tensor> params, float lr = 1e-2f);
  void Step();
  void ZeroGrad();

 private:
  std::vector<Tensor> params_;
  float lr_;
};

}  // namespace preqr::nn

#endif  // PREQR_NN_OPTIM_H_
