#ifndef PREQR_NN_SERIALIZE_H_
#define PREQR_NN_SERIALIZE_H_

#include <string>

#include "common/status.h"
#include "nn/module.h"

namespace preqr::nn {

// Weights-only container ("PRM1"): magic, count, per-entry name, shape,
// float data. Kept for backward compatibility; full training checkpoints
// (weights + optimizer + RNG + step, CRC-validated) use the PRC1 format in
// nn/checkpoint.h, whose "model" section embeds the same parameter table
// that PRM1 carries after its magic.

// Encodes all named parameters (count, then per-entry name/shape/data).
std::string EncodeModuleParams(const Module& module);

// Decodes a parameter table into `module`. Transactional: every entry is
// parsed, validated (unknown/duplicate/missing names, shape mismatches,
// implausible header fields, truncation, trailing bytes) and staged before
// anything is written, so a failed load leaves the module bit-identical to
// its state before the call. `origin` names the source in error messages.
Status DecodeModuleParams(Module& module, const std::string& payload,
                          const std::string& origin);

// Writes a PRM1 file atomically (temp file + rename): a crash mid-save
// never corrupts an existing file at `path`.
Status SaveModule(const Module& module, const std::string& path);

// Loads parameters by name into an already-constructed module with
// identical architecture. Accepts both PRM1 weight files and PRC1
// checkpoints (the "model" section). Failed loads leave the module
// untouched.
Status LoadModule(Module& module, const std::string& path);

}  // namespace preqr::nn

#endif  // PREQR_NN_SERIALIZE_H_
