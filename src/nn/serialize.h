#ifndef PREQR_NN_SERIALIZE_H_
#define PREQR_NN_SERIALIZE_H_

#include <string>

#include "common/status.h"
#include "nn/module.h"

namespace preqr::nn {

// Writes all named parameters of `module` to a simple binary container
// (magic, count, per-entry: name, shape, float data).
Status SaveModule(const Module& module, const std::string& path);

// Loads parameters by name into an already-constructed module with
// identical architecture. Unknown/missing names are errors.
Status LoadModule(Module& module, const std::string& path);

}  // namespace preqr::nn

#endif  // PREQR_NN_SERIALIZE_H_
