#ifndef PREQR_NN_TENSOR_H_
#define PREQR_NN_TENSOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace preqr::nn {

namespace quant {
struct QuantizedWeight;  // see nn/quant.h
}  // namespace quant

using Index = int64_t;
using Shape = std::vector<int>;

// Thread-local switch for the autograd tape. While disabled, ops compute
// values only: no parents, no grad_fn, and tensor storage may come from
// the BufferPool. Each thread has its own flag (default: enabled), so a
// guard installed on one thread does not affect ParallelFor workers —
// inference lambdas that run on the pool must install their own guard.
class GradMode {
 public:
  static bool enabled();
  static void set_enabled(bool enabled);
};

// RAII scope that disables the tape on the current thread and restores
// the previous mode on exit (nests correctly).
class NoGradGuard {
 public:
  NoGradGuard() : prev_(GradMode::enabled()) { GradMode::set_enabled(false); }
  ~NoGradGuard() { GradMode::set_enabled(prev_); }
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool prev_;
};

// Shared storage + autograd metadata for a Tensor. The tape is implicit:
// each op produces a new TensorImpl whose `grad_fn` knows how to push its
// gradient into `parents`. Children hold strong references to parents only,
// so the graph is acyclic and freed when the last downstream Tensor dies.
struct TensorImpl {
  TensorImpl();
  ~TensorImpl();  // returns pooled backing stores to the BufferPool
  TensorImpl(const TensorImpl&) = delete;
  TensorImpl& operator=(const TensorImpl&) = delete;

  Shape shape;
  std::vector<float> data;
  std::vector<float> grad;  // allocated lazily, same length as data
  bool requires_grad = false;
  // True if `data` was drawn from the thread-local BufferPool (no-grad
  // allocations only) and should be recycled on destruction.
  bool pooled = false;
  std::vector<std::shared_ptr<TensorImpl>> parents;
  // Propagates this node's grad into the parents' grads.
  std::function<void(TensorImpl*)> grad_fn;
  // Optional int8 shadow of a 2-D weight, attached by quant::CalibrateModule
  // and consumed by the no-grad MatMul fast path when an Int8Guard is
  // installed. Never written by ops; float `data` stays the source of truth
  // (training, serialization, and recalibration all read it).
  std::shared_ptr<quant::QuantizedWeight> quant;

  Index size() const {
    Index n = 1;
    for (int d : shape) n *= d;
    return n;
  }
  void EnsureGrad() {
    if (grad.size() != data.size()) grad.assign(data.size(), 0.0f);
  }
};

// Total TensorImpls constructed so far, process-wide (relaxed counter).
// Lets tests and benches measure how many tape nodes an operation
// allocates — e.g. the no-grad encode path vs. the tape-on path.
uint64_t TensorImplsCreated();

// Value-semantic handle to a shared tensor. Float32, row-major.
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::shared_ptr<TensorImpl> impl) : impl_(std::move(impl)) {}

  // --- Factories ------------------------------------------------------
  static Tensor Zeros(Shape shape, bool requires_grad = false);
  static Tensor Full(Shape shape, float value, bool requires_grad = false);
  static Tensor FromData(Shape shape, std::vector<float> data,
                         bool requires_grad = false);
  static Tensor Scalar(float value, bool requires_grad = false);
  // Gaussian init with the given stddev.
  static Tensor Randn(Shape shape, Rng& rng, float stddev,
                      bool requires_grad = false);
  // Uniform in [-bound, bound].
  static Tensor Uniform(Shape shape, Rng& rng, float bound,
                        bool requires_grad = false);

  // --- Introspection ---------------------------------------------------
  bool defined() const { return impl_ != nullptr; }
  const Shape& shape() const {
    PREQR_CHECK(defined());
    return impl_->shape;
  }
  int ndim() const {
    PREQR_CHECK(defined());
    return static_cast<int>(impl_->shape.size());
  }
  int dim(int i) const {
    PREQR_CHECK(defined());
    return impl_->shape[static_cast<size_t>(i)];
  }
  Index size() const {
    PREQR_CHECK(defined());
    return impl_->size();
  }

  float* data() {
    PREQR_CHECK(defined());
    return impl_->data.data();
  }
  const float* data() const {
    PREQR_CHECK(defined());
    return impl_->data.data();
  }
  std::vector<float>& vec() {
    PREQR_CHECK(defined());
    return impl_->data;
  }
  const std::vector<float>& vec() const {
    PREQR_CHECK(defined());
    return impl_->data;
  }
  float item() const {
    PREQR_CHECK_EQ(size(), 1);
    return impl_->data[0];
  }
  float at(Index i) const {
    PREQR_CHECK(defined());
    return impl_->data[static_cast<size_t>(i)];
  }
  float& at(Index i) {
    PREQR_CHECK(defined());
    return impl_->data[static_cast<size_t>(i)];
  }

  bool requires_grad() const {
    PREQR_CHECK(defined());
    return impl_->requires_grad;
  }
  Tensor& set_requires_grad(bool v) {
    PREQR_CHECK(defined());
    impl_->requires_grad = v;
    return *this;
  }
  float* grad_data() {
    PREQR_CHECK(defined());
    impl_->EnsureGrad();
    return impl_->grad.data();
  }
  const std::vector<float>& grad_vec() const {
    PREQR_CHECK(defined());
    return impl_->grad;
  }
  void ZeroGrad() {
    PREQR_CHECK(defined());
    if (!impl_->grad.empty()) {
      std::fill(impl_->grad.begin(), impl_->grad.end(), 0.0f);
    }
  }

  // An independent copy of the values with no autograd history: fresh
  // storage (pool-backed when grad mode is off), no parents, no grad_fn,
  // requires_grad=false. Mutating the copy never affects this tensor —
  // callers rely on that for cache isolation.
  Tensor Detach() const;

  // Runs reverse-mode autodiff from this (scalar) tensor.
  void Backward();

  std::shared_ptr<TensorImpl>& impl() { return impl_; }
  const std::shared_ptr<TensorImpl>& impl() const { return impl_; }

 private:
  std::shared_ptr<TensorImpl> impl_;
};

}  // namespace preqr::nn

#endif  // PREQR_NN_TENSOR_H_
