#ifndef PREQR_NN_TENSOR_H_
#define PREQR_NN_TENSOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace preqr::nn {

using Index = int64_t;
using Shape = std::vector<int>;

// Shared storage + autograd metadata for a Tensor. The tape is implicit:
// each op produces a new TensorImpl whose `grad_fn` knows how to push its
// gradient into `parents`. Children hold strong references to parents only,
// so the graph is acyclic and freed when the last downstream Tensor dies.
struct TensorImpl {
  Shape shape;
  std::vector<float> data;
  std::vector<float> grad;  // allocated lazily, same length as data
  bool requires_grad = false;
  std::vector<std::shared_ptr<TensorImpl>> parents;
  // Propagates this node's grad into the parents' grads.
  std::function<void(TensorImpl*)> grad_fn;

  Index size() const {
    Index n = 1;
    for (int d : shape) n *= d;
    return n;
  }
  void EnsureGrad() {
    if (grad.size() != data.size()) grad.assign(data.size(), 0.0f);
  }
};

// Value-semantic handle to a shared tensor. Float32, row-major.
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::shared_ptr<TensorImpl> impl) : impl_(std::move(impl)) {}

  // --- Factories ------------------------------------------------------
  static Tensor Zeros(Shape shape, bool requires_grad = false);
  static Tensor Full(Shape shape, float value, bool requires_grad = false);
  static Tensor FromData(Shape shape, std::vector<float> data,
                         bool requires_grad = false);
  static Tensor Scalar(float value, bool requires_grad = false);
  // Gaussian init with the given stddev.
  static Tensor Randn(Shape shape, Rng& rng, float stddev,
                      bool requires_grad = false);
  // Uniform in [-bound, bound].
  static Tensor Uniform(Shape shape, Rng& rng, float bound,
                        bool requires_grad = false);

  // --- Introspection ---------------------------------------------------
  bool defined() const { return impl_ != nullptr; }
  const Shape& shape() const { return impl_->shape; }
  int ndim() const { return static_cast<int>(impl_->shape.size()); }
  int dim(int i) const { return impl_->shape[static_cast<size_t>(i)]; }
  Index size() const { return impl_->size(); }

  float* data() { return impl_->data.data(); }
  const float* data() const { return impl_->data.data(); }
  std::vector<float>& vec() { return impl_->data; }
  const std::vector<float>& vec() const { return impl_->data; }
  float item() const {
    PREQR_CHECK_EQ(size(), 1);
    return impl_->data[0];
  }
  float at(Index i) const { return impl_->data[static_cast<size_t>(i)]; }
  float& at(Index i) { return impl_->data[static_cast<size_t>(i)]; }

  bool requires_grad() const { return impl_->requires_grad; }
  Tensor& set_requires_grad(bool v) {
    impl_->requires_grad = v;
    return *this;
  }
  float* grad_data() {
    impl_->EnsureGrad();
    return impl_->grad.data();
  }
  const std::vector<float>& grad_vec() const { return impl_->grad; }
  void ZeroGrad() {
    if (!impl_->grad.empty()) std::fill(impl_->grad.begin(), impl_->grad.end(), 0.0f);
  }

  // Runs reverse-mode autodiff from this (scalar) tensor.
  void Backward();

  std::shared_ptr<TensorImpl>& impl() { return impl_; }
  const std::shared_ptr<TensorImpl>& impl() const { return impl_; }

 private:
  std::shared_ptr<TensorImpl> impl_;
};

}  // namespace preqr::nn

#endif  // PREQR_NN_TENSOR_H_
