#include "nn/checkpoint.h"

#include <cstdio>
#include <cstring>
#include <memory>
#include <unordered_set>

namespace preqr::nn {
namespace {

// Caps on what a well-formed checkpoint can declare. They exist so a
// corrupted or hostile header cannot make the reader allocate gigabytes
// before the CRC ever gets a chance to reject the file.
constexpr uint32_t kMaxSections = 256;
constexpr uint32_t kMaxSectionNameLen = 256;
constexpr uint64_t kMaxPayloadBytes = 1ull << 34;  // 16 GiB

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

// Little-endian scalar append/read over std::string buffers. The repo only
// targets little-endian hosts, but going through memcpy keeps the byte
// layout explicit and alignment-safe.
template <typename T>
void AppendScalar(std::string* out, T v) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out->append(buf, sizeof(T));
}

// Reads a T at *offset, advancing it; false on out-of-bounds.
template <typename T>
bool ReadScalar(const std::string& bytes, size_t* offset, T* v) {
  if (bytes.size() - *offset < sizeof(T)) return false;
  std::memcpy(v, bytes.data() + *offset, sizeof(T));
  *offset += sizeof(T);
  return true;
}

const uint32_t* CrcTable() {
  static const uint32_t* table = [] {
    auto* t = new uint32_t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

uint32_t Crc32(const void* data, size_t n, uint32_t seed) {
  const uint32_t* table = CrcTable();
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

Status AtomicWriteFile(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  {
    FilePtr f(std::fopen(tmp.c_str(), "wb"));
    if (!f) return Status::InvalidArgument("cannot open for write: " + tmp);
    if (!bytes.empty() &&
        std::fwrite(bytes.data(), 1, bytes.size(), f.get()) != bytes.size()) {
      std::remove(tmp.c_str());
      return Status::Internal("short write: " + tmp);
    }
    if (std::fflush(f.get()) != 0) {
      std::remove(tmp.c_str());
      return Status::Internal("flush failed: " + tmp);
    }
  }
  // The rename is the commit point: POSIX guarantees the destination is
  // atomically replaced, so `path` never exposes a half-written file.
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("rename failed: " + tmp + " -> " + path);
  }
  return Status::Ok();
}

Status ReadFileToString(const std::string& path, std::string* out) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::NotFound("cannot open for read: " + path);
  std::string bytes;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f.get())) > 0) {
    bytes.append(buf, n);
  }
  if (std::ferror(f.get())) return Status::Internal("read failed: " + path);
  *out = std::move(bytes);
  return Status::Ok();
}

void CheckpointWriter::AddSection(std::string name, std::string payload) {
  sections_.emplace_back(std::move(name), std::move(payload));
}

StatusOr<std::string> CheckpointWriter::Serialize() const {
  std::unordered_set<std::string> seen;
  std::string body;
  for (const auto& [name, payload] : sections_) {
    if (name.empty() || name.size() > kMaxSectionNameLen) {
      return Status::InvalidArgument("bad checkpoint section name: " + name);
    }
    if (!seen.insert(name).second) {
      return Status::InvalidArgument("duplicate checkpoint section: " + name);
    }
    AppendScalar<uint32_t>(&body, static_cast<uint32_t>(name.size()));
    body.append(name);
    AppendScalar<uint64_t>(&body, payload.size());
    body.append(payload);
  }
  if (sections_.size() > kMaxSections || body.size() > kMaxPayloadBytes) {
    return Status::InvalidArgument("checkpoint too large");
  }
  std::string out;
  out.reserve(24 + body.size());
  AppendScalar<uint32_t>(&out, kCheckpointMagic);
  AppendScalar<uint32_t>(&out, kCheckpointVersion);
  AppendScalar<uint32_t>(&out, static_cast<uint32_t>(sections_.size()));
  AppendScalar<uint64_t>(&out, body.size());
  AppendScalar<uint32_t>(&out, Crc32(body.data(), body.size()));
  out.append(body);
  return out;
}

Status CheckpointWriter::WriteAtomic(const std::string& path) const {
  auto bytes = Serialize();
  if (!bytes.ok()) return bytes.status();
  return AtomicWriteFile(path, bytes.value());
}

Status CheckpointReader::Open(const std::string& path) {
  std::string bytes;
  Status s = ReadFileToString(path, &bytes);
  if (!s.ok()) return s;
  s = Parse(std::move(bytes));
  if (!s.ok()) {
    return Status(s.code(), s.message() + " in " + path);
  }
  return s;
}

Status CheckpointReader::Parse(std::string bytes) {
  version_ = 0;
  sections_.clear();
  size_t offset = 0;
  uint32_t magic = 0, version = 0, count = 0, crc = 0;
  uint64_t payload = 0;
  if (!ReadScalar(bytes, &offset, &magic) || magic != kCheckpointMagic) {
    return Status::ParseError("bad checkpoint magic");
  }
  if (!ReadScalar(bytes, &offset, &version) ||
      version != kCheckpointVersion) {
    return Status::ParseError("unsupported checkpoint version");
  }
  if (!ReadScalar(bytes, &offset, &count) || count > kMaxSections) {
    return Status::ParseError("implausible checkpoint section count");
  }
  if (!ReadScalar(bytes, &offset, &payload) || payload > kMaxPayloadBytes) {
    return Status::ParseError("implausible checkpoint payload size");
  }
  if (!ReadScalar(bytes, &offset, &crc)) {
    return Status::ParseError("truncated checkpoint header");
  }
  if (bytes.size() - offset < payload) {
    return Status::ParseError("truncated checkpoint payload");
  }
  if (bytes.size() - offset > payload) {
    return Status::ParseError("trailing garbage after checkpoint payload");
  }
  if (Crc32(bytes.data() + offset, payload) != crc) {
    return Status::ParseError("checkpoint CRC mismatch");
  }
  const size_t end = offset + payload;
  std::vector<std::pair<std::string, std::string>> sections;
  std::unordered_set<std::string> seen;
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t name_len = 0;
    if (!ReadScalar(bytes, &offset, &name_len) ||
        name_len == 0 || name_len > kMaxSectionNameLen ||
        end - offset < name_len) {
      return Status::ParseError("bad checkpoint section name length");
    }
    std::string name(bytes.data() + offset, name_len);
    offset += name_len;
    uint64_t data_len = 0;
    if (!ReadScalar(bytes, &offset, &data_len) || end - offset < data_len) {
      return Status::ParseError("bad checkpoint section size");
    }
    if (!seen.insert(name).second) {
      return Status::ParseError("duplicate checkpoint section " + name);
    }
    sections.emplace_back(std::move(name),
                          bytes.substr(offset, data_len));
    offset += data_len;
  }
  if (offset != end) {
    return Status::ParseError("checkpoint sections shorter than payload");
  }
  version_ = version;
  sections_ = std::move(sections);
  return Status::Ok();
}

bool CheckpointReader::Has(const std::string& name) const {
  return Section(name) != nullptr;
}

const std::string* CheckpointReader::Section(const std::string& name) const {
  for (const auto& [n, payload] : sections_) {
    if (n == name) return &payload;
  }
  return nullptr;
}

std::string EncodeOptimizerState(const OptimizerState& state) {
  std::string out;
  AppendScalar<uint32_t>(&out, static_cast<uint32_t>(state.type.size()));
  out.append(state.type);
  AppendScalar<int64_t>(&out, state.step);
  AppendScalar<uint64_t>(&out, state.slots.size());
  for (const auto& slot : state.slots) {
    AppendScalar<uint64_t>(&out, slot.size());
    out.append(reinterpret_cast<const char*>(slot.data()),
               slot.size() * sizeof(float));
  }
  return out;
}

Status DecodeOptimizerState(const std::string& payload, OptimizerState* out) {
  OptimizerState state;
  size_t offset = 0;
  uint32_t type_len = 0;
  if (!ReadScalar(payload, &offset, &type_len) || type_len > 64 ||
      payload.size() - offset < type_len) {
    return Status::ParseError("bad optimizer type length");
  }
  state.type.assign(payload.data() + offset, type_len);
  offset += type_len;
  if (!ReadScalar(payload, &offset, &state.step)) {
    return Status::ParseError("truncated optimizer step");
  }
  uint64_t num_slots = 0;
  // Each slot costs at least its own 8-byte length field, which bounds a
  // plausible count by the bytes remaining.
  if (!ReadScalar(payload, &offset, &num_slots) ||
      num_slots > (payload.size() - offset) / sizeof(uint64_t)) {
    return Status::ParseError("implausible optimizer slot count");
  }
  state.slots.reserve(num_slots);
  for (uint64_t i = 0; i < num_slots; ++i) {
    uint64_t n = 0;
    if (!ReadScalar(payload, &offset, &n) ||
        n > (payload.size() - offset) / sizeof(float)) {
      return Status::ParseError("truncated optimizer slot");
    }
    std::vector<float> slot(n);
    std::memcpy(slot.data(), payload.data() + offset, n * sizeof(float));
    offset += n * sizeof(float);
    state.slots.push_back(std::move(slot));
  }
  if (offset != payload.size()) {
    return Status::ParseError("trailing garbage in optimizer state");
  }
  *out = std::move(state);
  return Status::Ok();
}

std::string EncodeRngState(const Rng::State& state) {
  std::string out;
  for (uint64_t word : state) AppendScalar<uint64_t>(&out, word);
  return out;
}

Status DecodeRngState(const std::string& payload, Rng::State* out) {
  if (payload.size() != 4 * sizeof(uint64_t)) {
    return Status::ParseError("rng state must be 32 bytes");
  }
  size_t offset = 0;
  for (auto& word : *out) ReadScalar(payload, &offset, &word);
  return Status::Ok();
}

std::string EncodeU64(uint64_t v) {
  std::string out;
  AppendScalar<uint64_t>(&out, v);
  return out;
}

Status DecodeU64(const std::string& payload, uint64_t* out) {
  if (payload.size() != sizeof(uint64_t)) {
    return Status::ParseError("u64 section must be 8 bytes");
  }
  size_t offset = 0;
  ReadScalar(payload, &offset, out);
  return Status::Ok();
}

}  // namespace preqr::nn
