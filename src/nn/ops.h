#ifndef PREQR_NN_OPS_H_
#define PREQR_NN_OPS_H_

#include <vector>

#include "common/rng.h"
#include "nn/kernels.h"  // Edge + the compute kernels these ops wire up
#include "nn/tensor.h"

namespace preqr::nn {

// All ops are differentiable (reverse-mode) unless noted. Tensors are
// row-major float32; shapes are asserted with PREQR_CHECK.

// --- Elementwise ------------------------------------------------------
Tensor Add(const Tensor& a, const Tensor& b);        // same shape
Tensor Sub(const Tensor& a, const Tensor& b);        // same shape
Tensor Mul(const Tensor& a, const Tensor& b);        // same shape
Tensor Scale(const Tensor& a, float c);
Tensor AddScalar(const Tensor& a, float c);
// x: [..., d], bias: [d] broadcast over leading dims.
Tensor AddBias(const Tensor& x, const Tensor& bias);

Tensor Relu(const Tensor& x);
Tensor Gelu(const Tensor& x);  // tanh approximation
Tensor Tanh(const Tensor& x);
Tensor Sigmoid(const Tensor& x);

// --- Linear algebra ---------------------------------------------------
Tensor MatMul(const Tensor& a, const Tensor& b);  // [m,k] x [k,n] -> [m,n]
Tensor Transpose(const Tensor& a);                // [m,n] -> [n,m]

// --- Normalization / activation over rows ------------------------------
Tensor SoftmaxLastDim(const Tensor& x);
// x: [N,d]; gamma,beta: [d].
Tensor LayerNormOp(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                   float eps = 1e-5f);

// --- Reductions --------------------------------------------------------
Tensor Sum(const Tensor& x);   // -> scalar
Tensor Mean(const Tensor& x);  // -> scalar
// [N,d] -> [d]: average over rows (avg-pool over graph nodes / tokens).
Tensor MeanRows(const Tensor& x);
// [N,d] -> [d]: max over rows; gradient flows to the argmax row.
Tensor MaxRows(const Tensor& x);
// [N,d] -> [d]: average over the given subset of rows (empty -> zeros,
// no gradient).
Tensor MeanRowsSubset(const Tensor& x, const std::vector<int>& rows);

// --- Shape manipulation -------------------------------------------------
Tensor Reshape(const Tensor& x, Shape new_shape);
Tensor ConcatLastDim(const std::vector<Tensor>& xs);  // same leading dims
Tensor ConcatRows(const std::vector<Tensor>& xs);     // along dim 0
// x: [..., d] -> [..., len] taking columns [start, start+len).
Tensor SliceLastDim(const Tensor& x, int start, int len);
// x: [N, ...] -> [len, ...] taking rows [start, start+len).
Tensor SliceRows(const Tensor& x, int start, int len);

// --- Lookup / graph ------------------------------------------------------
// weight: [V,d], ids: N indices -> [N,d]. Gradient scatters into weight.
Tensor Gather(const Tensor& weight, const std::vector<int>& ids);
// Edge list aggregation: out[dst] += norm[e] * h[src] for each edge e.
// h: [N,d] -> out [N,d]. Used by the relational GCN. (`Edge` lives in
// nn/kernels.h.)
Tensor SparseAggregate(const Tensor& h, const std::vector<Edge>& edges,
                       const std::vector<float>& norm);

// --- Losses --------------------------------------------------------------
// logits: [N,C]; targets: N class ids; entries with target==ignore_index are
// skipped. Returns mean cross-entropy over non-ignored rows.
Tensor CrossEntropy(const Tensor& logits, const std::vector<int>& targets,
                    int ignore_index = -1);
// Mean squared error against a constant target vector.
Tensor MseLoss(const Tensor& pred, const std::vector<float>& target);

// --- Regularization -------------------------------------------------------
Tensor Dropout(const Tensor& x, float p, Rng& rng, bool train);

}  // namespace preqr::nn

#endif  // PREQR_NN_OPS_H_
