#ifndef PREQR_NN_OPS_H_
#define PREQR_NN_OPS_H_

#include <vector>

#include "common/rng.h"
#include "nn/kernels.h"  // Edge + the compute kernels these ops wire up
#include "nn/tensor.h"

namespace preqr::nn {

// All ops are differentiable (reverse-mode) unless noted. Tensors are
// row-major float32; shapes are asserted with PREQR_CHECK.

// --- Elementwise ------------------------------------------------------
Tensor Add(const Tensor& a, const Tensor& b);        // same shape
Tensor Sub(const Tensor& a, const Tensor& b);        // same shape
Tensor Mul(const Tensor& a, const Tensor& b);        // same shape
Tensor Scale(const Tensor& a, float c);
Tensor AddScalar(const Tensor& a, float c);
// x: [..., d], bias: [d] broadcast over leading dims.
Tensor AddBias(const Tensor& x, const Tensor& bias);

Tensor Relu(const Tensor& x);
Tensor Gelu(const Tensor& x);  // tanh approximation
Tensor Tanh(const Tensor& x);
Tensor Sigmoid(const Tensor& x);

// --- Linear algebra ---------------------------------------------------
// a: [..., k] x b: [k, n] -> [..., n]. Leading dims of `a` flatten to rows,
// so [m,k] and batched [B,T,k] inputs share one kernel (rows are
// independent: per-row results are bitwise-identical either way).
Tensor MatMul(const Tensor& a, const Tensor& b);
Tensor Transpose(const Tensor& a);                // [m,n] -> [n,m]

// --- Normalization / activation over rows ------------------------------
Tensor SoftmaxLastDim(const Tensor& x);
// x: [..., d]; gamma,beta: [d]. Normalizes each trailing-dim row.
Tensor LayerNormOp(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                   float eps = 1e-5f);

// --- Reductions --------------------------------------------------------
Tensor Sum(const Tensor& x);   // -> scalar
Tensor Mean(const Tensor& x);  // -> scalar
// [N,d] -> [d]: average over rows (avg-pool over graph nodes / tokens).
Tensor MeanRows(const Tensor& x);
// [N,d] -> [d]: max over rows; gradient flows to the argmax row.
Tensor MaxRows(const Tensor& x);
// [N,d] -> [d]: average over the given subset of rows (empty -> zeros,
// no gradient).
Tensor MeanRowsSubset(const Tensor& x, const std::vector<int>& rows);

// --- Shape manipulation -------------------------------------------------
Tensor Reshape(const Tensor& x, Shape new_shape);
Tensor ConcatLastDim(const std::vector<Tensor>& xs);  // same leading dims
Tensor ConcatRows(const std::vector<Tensor>& xs);     // along dim 0
// x: [..., d] -> [..., len] taking columns [start, start+len).
Tensor SliceLastDim(const Tensor& x, int start, int len);
// x: [N, ...] -> [len, ...] taking rows [start, start+len).
Tensor SliceRows(const Tensor& x, int start, int len);

// --- Lookup / graph ------------------------------------------------------
// weight: [V,d], ids: N indices -> [N,d]. Gradient scatters into weight.
Tensor Gather(const Tensor& weight, const std::vector<int>& ids);
// Edge list aggregation: out[dst] += norm[e] * h[src] for each edge e.
// h: [N,d] -> out [N,d]. Used by the relational GCN. (`Edge` lives in
// nn/kernels.h.)
Tensor SparseAggregate(const Tensor& h, const std::vector<Edge>& edges,
                       const std::vector<float>& norm);

// --- Losses --------------------------------------------------------------
// logits: [N,C]; targets: N class ids; entries with target==ignore_index are
// skipped. Returns mean cross-entropy over non-ignored rows.
Tensor CrossEntropy(const Tensor& logits, const std::vector<int>& targets,
                    int ignore_index = -1);
// Mean squared error against a constant target vector.
Tensor MseLoss(const Tensor& pred, const std::vector<float>& target);

// --- Regularization -------------------------------------------------------
Tensor Dropout(const Tensor& x, float p, Rng& rng, bool train);

// --- Batched / masked ops -------------------------------------------------
// Padded-batch counterparts of the ops above, over [B, T, ...] tensors
// where example b occupies rows [0, lengths[b]) and the rest is padding.
// Forward pads stay exactly zero and backward never reads them, so every
// valid row is bitwise-identical to the single-example op at any batch
// composition (see kernels.h for the per-example loop contract).

// a, b: [B, T, k] -> scores [B, T, T]: per example, a_b x b_b^T over valid
// rows (attention logits).
Tensor BatchedMatMulNT(const Tensor& a, const Tensor& b,
                       const std::vector<int>& lengths);
// w: [B, T, T] (attention probs), v: [B, T, dv] -> [B, T, dv].
Tensor BatchedMatMulNN(const Tensor& w, const Tensor& v,
                       const std::vector<int>& lengths);
// x: [B, T, T] -> softmax over each valid row's first lengths[b] entries.
Tensor MaskedSoftmaxLastDim(const Tensor& x, const std::vector<int>& lengths);
// x: [B, T, d]; gamma,beta: [d]. Valid rows normalize as LayerNormOp; pad
// rows are zeroed (the batch path's periodic re-zeroing of padding).
Tensor MaskedLayerNorm(const Tensor& x, const Tensor& gamma,
                       const Tensor& beta, const std::vector<int>& lengths,
                       float eps = 1e-5f);
// logits: [B, T, C]; targets: B*T ids (pads/ignore_index skipped). Scalar
// loss = mean over examples of each example's mean row loss — the value the
// per-example CrossEntropy + Add/Scale chain used to produce. example_loss
// (optional) receives each example's own mean.
Tensor MaskedCrossEntropy(const Tensor& logits, const std::vector<int>& targets,
                          const std::vector<int>& lengths,
                          int ignore_index = -1,
                          std::vector<float>* example_loss = nullptr);
// x: [B, T, d] with one dropout RNG stream per example: example b draws
// exactly lengths[b]*d uniforms from Rng(seeds[b]), the sequence the
// single-example Dropout consumes.
Tensor MaskedDropout(const Tensor& x, float p,
                     const std::vector<uint64_t>& seeds,
                     const std::vector<int>& lengths, bool train);
// x: [B, T, d] -> [len, d]: copy example b's valid rows out of the batch.
Tensor SliceExample(const Tensor& x, int b, int len);
// xs: one [S_i, d] per example -> [B, T, d] padded with zeros; T is
// max S_i (or t_max if larger). The inverse of SliceExample per example.
Tensor PadExamples(const std::vector<Tensor>& xs, int t_max = 0);

}  // namespace preqr::nn

#endif  // PREQR_NN_OPS_H_
