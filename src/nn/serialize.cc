#include "nn/serialize.h"

#include <cstdint>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "nn/checkpoint.h"

namespace preqr::nn {

namespace {
constexpr uint32_t kMagic = 0x50524d31;  // "PRM1"

// Sanity bounds on header fields. A corrupted file must fail with a
// Status before it can drive a multi-gigabyte allocation or an integer
// overflow — the real models stay far inside these.
constexpr uint32_t kMaxNameLen = 4096;
constexpr uint32_t kMaxNdim = 8;
constexpr uint64_t kMaxElements = 1ull << 31;

void AppendU32(std::string* out, uint32_t v) {
  char buf[sizeof(v)];
  std::memcpy(buf, &v, sizeof(v));
  out->append(buf, sizeof(v));
}

bool ReadU32(const std::string& bytes, size_t* offset, uint32_t* v) {
  if (bytes.size() - *offset < sizeof(*v)) return false;
  std::memcpy(v, bytes.data() + *offset, sizeof(*v));
  *offset += sizeof(*v);
  return true;
}
}  // namespace

std::string EncodeModuleParams(const Module& module) {
  const auto named = module.NamedParameters();
  std::string out;
  AppendU32(&out, static_cast<uint32_t>(named.size()));
  for (const auto& [name, t] : named) {
    AppendU32(&out, static_cast<uint32_t>(name.size()));
    out.append(name);
    AppendU32(&out, static_cast<uint32_t>(t.shape().size()));
    for (int d : t.shape()) AppendU32(&out, static_cast<uint32_t>(d));
    out.append(reinterpret_cast<const char*>(t.data()),
               t.vec().size() * sizeof(float));
  }
  return out;
}

Status DecodeModuleParams(Module& module, const std::string& payload,
                          const std::string& origin) {
  size_t offset = 0;
  uint32_t count = 0;
  if (!ReadU32(payload, &offset, &count)) {
    return Status::ParseError("truncated header in " + origin);
  }
  auto named = module.NamedParameters();
  std::map<std::string, Tensor> by_name(named.begin(), named.end());
  if (count != named.size()) {
    return Status::InvalidArgument("parameter count mismatch in " + origin);
  }
  // Stage every entry first; only a fully-validated file commits. Writing
  // into live tensors as entries are parsed would leave parameters 0..k-1
  // mutated when entry k fails — a torn, silently-wrong module behind an
  // error Status.
  std::vector<std::pair<Tensor, const char*>> staged;
  staged.reserve(count);
  std::set<std::string> seen;
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t name_len = 0;
    if (!ReadU32(payload, &offset, &name_len)) {
      return Status::ParseError("truncated in " + origin);
    }
    if (name_len == 0 || name_len > kMaxNameLen ||
        payload.size() - offset < name_len) {
      return Status::ParseError("implausible parameter name length in " +
                                origin);
    }
    std::string name(payload.data() + offset, name_len);
    offset += name_len;
    uint32_t ndim = 0;
    if (!ReadU32(payload, &offset, &ndim)) {
      return Status::ParseError("truncated in " + origin);
    }
    if (ndim > kMaxNdim) {
      return Status::ParseError("implausible rank for " + name + " in " +
                                origin);
    }
    Shape shape(ndim);
    uint64_t n = 1;
    for (uint32_t d = 0; d < ndim; ++d) {
      uint32_t dim = 0;
      if (!ReadU32(payload, &offset, &dim)) {
        return Status::ParseError("truncated in " + origin);
      }
      shape[d] = static_cast<int>(dim);
      n *= dim;  // bounded: each factor < 2^32, at most 8 factors...
      if (n > kMaxElements) {
        // ...but the running product is checked every step, so it can
        // never wrap 64 bits or drive an oversized allocation.
        return Status::ParseError("implausible element count for " + name +
                                  " in " + origin);
      }
    }
    if (!seen.insert(name).second) {
      return Status::InvalidArgument("duplicate parameter " + name + " in " +
                                     origin);
    }
    auto it = by_name.find(name);
    if (it == by_name.end()) {
      return Status::InvalidArgument("unknown parameter " + name + " in " +
                                     origin);
    }
    if (it->second.shape() != shape) {
      return Status::InvalidArgument("shape mismatch for " + name + " in " +
                                     origin);
    }
    const uint64_t bytes = n * sizeof(float);
    if (payload.size() - offset < bytes) {
      return Status::ParseError("truncated data for " + name + " in " +
                                origin);
    }
    staged.emplace_back(it->second, payload.data() + offset);
    offset += bytes;
  }
  if (offset != payload.size()) {
    return Status::ParseError("trailing garbage in " + origin);
  }
  // count == named.size() and no duplicates, so every parameter is covered.
  for (auto& [tensor, src] : staged) {
    std::memcpy(tensor.data(), src, tensor.vec().size() * sizeof(float));
  }
  return Status::Ok();
}

Status SaveModule(const Module& module, const std::string& path) {
  std::string bytes;
  AppendU32(&bytes, kMagic);
  bytes += EncodeModuleParams(module);
  return AtomicWriteFile(path, bytes);
}

Status LoadModule(Module& module, const std::string& path) {
  std::string bytes;
  Status s = ReadFileToString(path, &bytes);
  if (!s.ok()) return s;
  size_t offset = 0;
  uint32_t magic = 0;
  if (!ReadU32(bytes, &offset, &magic)) {
    return Status::ParseError("truncated header in " + path);
  }
  if (magic == kMagic) {
    return DecodeModuleParams(module, bytes.substr(offset), path);
  }
  if (magic == kCheckpointMagic) {
    // A full PRC1 checkpoint: load its model section, so weight files and
    // training checkpoints are interchangeable at every LoadModule call
    // site (hot reload included).
    CheckpointReader reader;
    s = reader.Parse(std::move(bytes));
    if (!s.ok()) return Status(s.code(), s.message() + " in " + path);
    const std::string* model = reader.Section(kSectionModel);
    if (model == nullptr) {
      return Status::InvalidArgument("checkpoint has no model section: " +
                                     path);
    }
    return DecodeModuleParams(module, *model, path);
  }
  return Status::ParseError("bad magic in " + path);
}

}  // namespace preqr::nn
