#include "nn/serialize.h"

#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <string>

namespace preqr::nn {

namespace {
constexpr uint32_t kMagic = 0x50524d31;  // "PRM1"

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

bool WriteU32(std::FILE* f, uint32_t v) {
  return std::fwrite(&v, sizeof(v), 1, f) == 1;
}
bool ReadU32(std::FILE* f, uint32_t* v) {
  return std::fread(v, sizeof(*v), 1, f) == 1;
}
}  // namespace

Status SaveModule(const Module& module, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::InvalidArgument("cannot open for write: " + path);
  const auto named = module.NamedParameters();
  if (!WriteU32(f.get(), kMagic) ||
      !WriteU32(f.get(), static_cast<uint32_t>(named.size()))) {
    return Status::Internal("write failed: " + path);
  }
  for (const auto& [name, t] : named) {
    if (!WriteU32(f.get(), static_cast<uint32_t>(name.size()))) {
      return Status::Internal("write failed: " + path);
    }
    if (std::fwrite(name.data(), 1, name.size(), f.get()) != name.size()) {
      return Status::Internal("write failed: " + path);
    }
    if (!WriteU32(f.get(), static_cast<uint32_t>(t.shape().size()))) {
      return Status::Internal("write failed: " + path);
    }
    for (int d : t.shape()) {
      if (!WriteU32(f.get(), static_cast<uint32_t>(d))) {
        return Status::Internal("write failed: " + path);
      }
    }
    const size_t n = t.vec().size();
    if (std::fwrite(t.data(), sizeof(float), n, f.get()) != n) {
      return Status::Internal("write failed: " + path);
    }
  }
  return Status::Ok();
}

Status LoadModule(Module& module, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::NotFound("cannot open for read: " + path);
  uint32_t magic = 0, count = 0;
  if (!ReadU32(f.get(), &magic) || magic != kMagic) {
    return Status::ParseError("bad magic in " + path);
  }
  if (!ReadU32(f.get(), &count)) return Status::ParseError("truncated header");
  auto named = module.NamedParameters();
  std::map<std::string, Tensor> by_name(named.begin(), named.end());
  if (count != named.size()) {
    return Status::InvalidArgument("parameter count mismatch in " + path);
  }
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t name_len = 0;
    if (!ReadU32(f.get(), &name_len)) return Status::ParseError("truncated");
    std::string name(name_len, '\0');
    if (std::fread(name.data(), 1, name_len, f.get()) != name_len) {
      return Status::ParseError("truncated name");
    }
    uint32_t ndim = 0;
    if (!ReadU32(f.get(), &ndim)) return Status::ParseError("truncated");
    Shape shape(ndim);
    size_t n = 1;
    for (uint32_t d = 0; d < ndim; ++d) {
      uint32_t dim = 0;
      if (!ReadU32(f.get(), &dim)) return Status::ParseError("truncated");
      shape[d] = static_cast<int>(dim);
      n *= dim;
    }
    auto it = by_name.find(name);
    if (it == by_name.end()) {
      return Status::InvalidArgument("unknown parameter " + name);
    }
    if (it->second.shape() != shape) {
      return Status::InvalidArgument("shape mismatch for " + name);
    }
    if (std::fread(it->second.data(), sizeof(float), n, f.get()) != n) {
      return Status::ParseError("truncated data for " + name);
    }
  }
  return Status::Ok();
}

}  // namespace preqr::nn
