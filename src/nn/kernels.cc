#include "nn/kernels.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"
#include "common/thread_pool.h"

namespace preqr::nn::kernels {

// --- Elementwise forward -------------------------------------------------

void AddForward(const float* a, const float* b, float* out, size_t n) {
  for (size_t i = 0; i < n; ++i) out[i] = a[i] + b[i];
}

void SubForward(const float* a, const float* b, float* out, size_t n) {
  for (size_t i = 0; i < n; ++i) out[i] = a[i] - b[i];
}

void MulForward(const float* a, const float* b, float* out, size_t n) {
  for (size_t i = 0; i < n; ++i) out[i] = a[i] * b[i];
}

void ScaleForward(const float* a, float c, float* out, size_t n) {
  for (size_t i = 0; i < n; ++i) out[i] = a[i] * c;
}

void AddScalarForward(const float* a, float c, float* out, size_t n) {
  for (size_t i = 0; i < n; ++i) out[i] = a[i] + c;
}

void AddBiasForward(const float* x, const float* bias, float* out,
                    size_t rows, int d) {
  for (size_t r = 0; r < rows; ++r) {
    const float* in = x + r * static_cast<size_t>(d);
    float* row = out + r * static_cast<size_t>(d);
    for (int j = 0; j < d; ++j) row[j] = in[j] + bias[j];
  }
}

void ReluForward(const float* x, float* out, size_t n) {
  for (size_t i = 0; i < n; ++i) out[i] = x[i] > 0.0f ? x[i] : 0.0f;
}

namespace {
constexpr float kGeluC = 0.7978845608028654f;  // sqrt(2/pi)
}  // namespace

void GeluForward(const float* x, float* out, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    const float v = x[i];
    const float u = kGeluC * (v + 0.044715f * v * v * v);
    out[i] = 0.5f * v * (1.0f + std::tanh(u));
  }
}

void TanhForward(const float* x, float* out, size_t n) {
  for (size_t i = 0; i < n; ++i) out[i] = std::tanh(x[i]);
}

void SigmoidForward(const float* x, float* out, size_t n) {
  for (size_t i = 0; i < n; ++i) out[i] = 1.0f / (1.0f + std::exp(-x[i]));
}

// --- Elementwise backward ------------------------------------------------

void Accumulate(const float* g, float* dst, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] += g[i];
}

void AccumulateNeg(const float* g, float* dst, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] -= g[i];
}

void AccumulateMul(const float* g, const float* other, float* dst, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] += g[i] * other[i];
}

void AccumulateScaled(const float* g, float c, float* dst, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] += g[i] * c;
}

void AccumulateConst(float g, float* dst, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] += g;
}

void AddBiasBackwardBias(const float* g, float* dbias, size_t rows, int d) {
  // dbias reduces over rows; partition over columns so each bias element
  // accumulates in row order (deterministic).
  ParallelFor(0, d, GrainForCost(static_cast<int64_t>(rows)),
              [&](int64_t j0, int64_t j1) {
                for (int64_t j = j0; j < j1; ++j) {
                  for (size_t r = 0; r < rows; ++r) {
                    dbias[static_cast<size_t>(j)] +=
                        g[r * static_cast<size_t>(d) + static_cast<size_t>(j)];
                  }
                }
              });
}

void ReluBackward(const float* x, const float* g, float* dx, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    dx[i] += g[i] * (x[i] > 0.0f ? 1.0f : 0.0f);
  }
}

void GeluBackward(const float* x, const float* g, float* dx, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    const float v = x[i];
    const float u = kGeluC * (v + 0.044715f * v * v * v);
    const float t = std::tanh(u);
    const float sech2 = 1.0f - t * t;
    float local = 0.5f * (1.0f + t);
    // Once tanh saturates to exactly ±1 (|v| ≳ 10) sech² is exactly 0 while
    // v²·du keeps growing and eventually overflows to inf; the saturated
    // term's true limit is 0, but evaluating 0·inf would poison dx with
    // NaN. Skipping the term when sech² == 0 is bitwise-identical for every
    // non-saturated input (the product is a plain 0.0f there).
    if (sech2 != 0.0f) {
      const float du = kGeluC * (1.0f + 3.0f * 0.044715f * v * v);
      local += 0.5f * v * sech2 * du;
    }
    dx[i] += g[i] * local;
  }
}

void TanhBackward(const float* y, const float* g, float* dx, size_t n) {
  for (size_t i = 0; i < n; ++i) dx[i] += g[i] * (1.0f - y[i] * y[i]);
}

void SigmoidBackward(const float* y, const float* g, float* dx, size_t n) {
  for (size_t i = 0; i < n; ++i) dx[i] += g[i] * (y[i] * (1.0f - y[i]));
}

// --- Linear algebra ------------------------------------------------------

void MatMulForward(const float* a, const float* b, float* out, int m, int k,
                   int n) {
  // Rows of the output are independent, so the row range parallelizes with
  // bitwise-identical results for any thread count (each row runs the same
  // serial ikj loop: streaming access on b and out).
  ParallelFor(0, m, GrainForCost(static_cast<int64_t>(k) * n),
              [&](int64_t r0, int64_t r1) {
                for (int64_t i = r0; i < r1; ++i) {
                  float* orow = out + static_cast<size_t>(i) * n;
                  const float* arow = a + static_cast<size_t>(i) * k;
                  for (int kk = 0; kk < k; ++kk) {
                    const float av = arow[kk];
                    if (av == 0.0f) continue;
                    const float* brow = b + static_cast<size_t>(kk) * n;
                    for (int j = 0; j < n; ++j) orow[j] += av * brow[j];
                  }
                }
              });
}

void MatMulBackwardA(const float* g, const float* b, float* da, int m, int k,
                     int n) {
  // dA = G * B^T: rows of dA are independent.
  ParallelFor(0, m, GrainForCost(static_cast<int64_t>(k) * n),
              [&](int64_t r0, int64_t r1) {
                for (int64_t i = r0; i < r1; ++i) {
                  float* darow = da + static_cast<size_t>(i) * k;
                  const float* grow = g + static_cast<size_t>(i) * n;
                  for (int kk = 0; kk < k; ++kk) {
                    const float* brow = b + static_cast<size_t>(kk) * n;
                    float acc = 0.0f;
                    for (int j = 0; j < n; ++j) acc += grow[j] * brow[j];
                    darow[kk] += acc;
                  }
                }
              });
}

void MatMulBackwardB(const float* a, const float* g, float* db, int m, int k,
                     int n) {
  // dB = A^T * G: rows of dB (indexed by kk) are independent; each keeps
  // the serial i-order accumulation.
  ParallelFor(0, k, GrainForCost(static_cast<int64_t>(m) * n),
              [&](int64_t k0, int64_t k1) {
                for (int64_t kk = k0; kk < k1; ++kk) {
                  float* dbrow = db + static_cast<size_t>(kk) * n;
                  for (int i = 0; i < m; ++i) {
                    const float av = a[static_cast<size_t>(i) * k +
                                       static_cast<size_t>(kk)];
                    if (av == 0.0f) continue;
                    const float* grow = g + static_cast<size_t>(i) * n;
                    for (int j = 0; j < n; ++j) dbrow[j] += av * grow[j];
                  }
                }
              });
}

void Int8GemmForward(const int8_t* aq, const float* a_scale, const int8_t* wt,
                     float w_scale, float* out, int m, int k, int n) {
  // Rows are independent and the inner dot product is exact integer math,
  // so any partition is bitwise-identical to the serial pass.
  ParallelFor(0, m, GrainForCost(static_cast<int64_t>(k) * n),
              [&](int64_t r0, int64_t r1) {
                for (int64_t i = r0; i < r1; ++i) {
                  const float sa = a_scale[static_cast<size_t>(i)];
                  if (sa == 0.0f) continue;  // all-zero row stays zero
                  const float scale = sa * w_scale;
                  const int8_t* arow = aq + static_cast<size_t>(i) * k;
                  float* orow = out + static_cast<size_t>(i) * n;
                  for (int j = 0; j < n; ++j) {
                    const int8_t* wrow = wt + static_cast<size_t>(j) * k;
                    int32_t acc = 0;
                    for (int kk = 0; kk < k; ++kk) {
                      acc += static_cast<int32_t>(arow[kk]) *
                             static_cast<int32_t>(wrow[kk]);
                    }
                    orow[j] = static_cast<float>(acc) * scale;
                  }
                }
              });
}

void TransposeForward(const float* a, float* out, int m, int n) {
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      out[static_cast<size_t>(j) * m + i] = a[static_cast<size_t>(i) * n + j];
    }
  }
}

void TransposeBackward(const float* g, float* da, int m, int n) {
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      da[static_cast<size_t>(i) * n + j] += g[static_cast<size_t>(j) * m + i];
    }
  }
}

// --- Softmax / layer norm ------------------------------------------------

void SoftmaxForward(const float* x, float* out, size_t rows, int d) {
  // Softmax rows (attention rows) are independent: parallel over rows.
  ParallelFor(0, static_cast<int64_t>(rows), GrainForCost(d),
              [&](int64_t r0, int64_t r1) {
                for (int64_t r = r0; r < r1; ++r) {
                  const float* in = x + static_cast<size_t>(r) * d;
                  float* o = out + static_cast<size_t>(r) * d;
                  float mx = in[0];
                  for (int j = 1; j < d; ++j) mx = std::max(mx, in[j]);
                  float sum = 0.0f;
                  for (int j = 0; j < d; ++j) {
                    o[j] = std::exp(in[j] - mx);
                    sum += o[j];
                  }
                  const float inv = 1.0f / sum;
                  for (int j = 0; j < d; ++j) o[j] *= inv;
                }
              });
}

void SoftmaxBackward(const float* y, const float* g, float* dx, size_t rows,
                     int d) {
  ParallelFor(0, static_cast<int64_t>(rows), GrainForCost(d),
              [&](int64_t r0, int64_t r1) {
                for (int64_t r = r0; r < r1; ++r) {
                  const float* yr = y + static_cast<size_t>(r) * d;
                  const float* gr = g + static_cast<size_t>(r) * d;
                  float dot = 0.0f;
                  for (int j = 0; j < d; ++j) dot += yr[j] * gr[j];
                  float* dxr = dx + static_cast<size_t>(r) * d;
                  for (int j = 0; j < d; ++j) dxr[j] += yr[j] * (gr[j] - dot);
                }
              });
}

void LayerNormForward(const float* x, const float* gamma, const float* beta,
                      float eps, float* out, float* xhat, float* inv_std,
                      int n, int d) {
  // Row statistics are independent: parallel over rows.
  ParallelFor(0, n, GrainForCost(d), [&](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      const float* row = x + static_cast<size_t>(i) * d;
      float mean = 0.0f;
      for (int j = 0; j < d; ++j) mean += row[j];
      mean /= static_cast<float>(d);
      float var = 0.0f;
      for (int j = 0; j < d; ++j) {
        const float c = row[j] - mean;
        var += c * c;
      }
      var /= static_cast<float>(d);
      const float istd = 1.0f / std::sqrt(var + eps);
      if (inv_std != nullptr) inv_std[static_cast<size_t>(i)] = istd;
      float* xh =
          xhat != nullptr ? xhat + static_cast<size_t>(i) * d : nullptr;
      float* o = out + static_cast<size_t>(i) * d;
      for (int j = 0; j < d; ++j) {
        const float xv = (row[j] - mean) * istd;
        if (xh != nullptr) xh[j] = xv;
        o[j] = xv * gamma[j] + beta[j];
      }
    }
  });
}

void LayerNormBackwardParams(const float* g, const float* xhat, float* dgamma,
                             float* dbeta, int n, int d) {
  // dgamma/dbeta reduce over rows. Partitioning over *columns* keeps every
  // destination element accumulating in row order, so results stay
  // bitwise-identical to the serial pass for any thread count.
  ParallelFor(0, d, GrainForCost(n), [&](int64_t j0, int64_t j1) {
    for (int64_t j = j0; j < j1; ++j) {
      for (int i = 0; i < n; ++i) {
        const float* gr = g + static_cast<size_t>(i) * d;
        const float* xh = xhat + static_cast<size_t>(i) * d;
        dgamma[static_cast<size_t>(j)] += gr[j] * xh[j];
        dbeta[static_cast<size_t>(j)] += gr[j];
      }
    }
  });
}

void LayerNormBackwardInput(const float* g, const float* xhat,
                            const float* inv_std, const float* gamma,
                            float* dx, int n, int d) {
  // dx rows are independent given the per-row sums.
  ParallelFor(0, n, GrainForCost(d), [&](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      const float* gr = g + static_cast<size_t>(i) * d;
      const float* xh = xhat + static_cast<size_t>(i) * d;
      const float istd = inv_std[static_cast<size_t>(i)];
      // dxhat = g * gamma; dx via standard layernorm backward.
      float sum_dxh = 0.0f, sum_dxh_xh = 0.0f;
      for (int j = 0; j < d; ++j) {
        const float dxh = gr[j] * gamma[j];
        sum_dxh += dxh;
        sum_dxh_xh += dxh * xh[j];
      }
      float* dxr = dx + static_cast<size_t>(i) * d;
      const float invd = 1.0f / static_cast<float>(d);
      for (int j = 0; j < d; ++j) {
        const float dxh = gr[j] * gamma[j];
        dxr[j] += istd * (dxh - invd * sum_dxh - xh[j] * invd * sum_dxh_xh);
      }
    }
  });
}

// --- Reductions ----------------------------------------------------------

float SumForward(const float* x, size_t n) {
  float s = 0.0f;
  for (size_t i = 0; i < n; ++i) s += x[i];
  return s;
}

void MeanRowsForward(const float* x, float* out, int n, int d) {
  for (int i = 0; i < n; ++i) {
    const float* row = x + static_cast<size_t>(i) * d;
    for (int j = 0; j < d; ++j) out[static_cast<size_t>(j)] += row[j];
  }
  const float invn = 1.0f / static_cast<float>(n);
  for (int j = 0; j < d; ++j) out[static_cast<size_t>(j)] *= invn;
}

void MeanRowsBackward(const float* g, float invn, float* dx, int n, int d) {
  for (int i = 0; i < n; ++i) {
    float* dxr = dx + static_cast<size_t>(i) * d;
    for (int j = 0; j < d; ++j) dxr[j] += g[static_cast<size_t>(j)] * invn;
  }
}

void MaxRowsForward(const float* x, float* out, int* argmax, int n, int d) {
  for (int j = 0; j < d; ++j) {
    float best = x[j];
    int best_i = 0;
    for (int i = 1; i < n; ++i) {
      const float v = x[static_cast<size_t>(i) * d + j];
      if (v > best) {
        best = v;
        best_i = i;
      }
    }
    out[static_cast<size_t>(j)] = best;
    if (argmax != nullptr) argmax[static_cast<size_t>(j)] = best_i;
  }
}

void MaxRowsBackward(const float* g, const int* argmax, float* dx, int d) {
  for (int j = 0; j < d; ++j) {
    dx[static_cast<size_t>(argmax[static_cast<size_t>(j)]) * d + j] +=
        g[static_cast<size_t>(j)];
  }
}

void MeanRowsSubsetForward(const float* x, const std::vector<int>& rows,
                           float inv, float* out, int d) {
  for (int r : rows) {
    const float* row = x + static_cast<size_t>(r) * d;
    for (int j = 0; j < d; ++j) out[static_cast<size_t>(j)] += row[j];
  }
  for (int j = 0; j < d; ++j) out[static_cast<size_t>(j)] *= inv;
}

void MeanRowsSubsetBackward(const float* g, const std::vector<int>& rows,
                            float inv, float* dx, int d) {
  for (int r : rows) {
    float* dxr = dx + static_cast<size_t>(r) * d;
    for (int j = 0; j < d; ++j) dxr[j] += g[static_cast<size_t>(j)] * inv;
  }
}

// --- Copies --------------------------------------------------------------

void Copy(const float* src, float* dst, size_t n) {
  std::copy(src, src + n, dst);
}

void CopyRows(const float* src, size_t src_stride, float* dst,
              size_t dst_stride, size_t rows, size_t width) {
  for (size_t r = 0; r < rows; ++r) {
    std::copy(src + r * src_stride, src + r * src_stride + width,
              dst + r * dst_stride);
  }
}

void AccumulateRows(const float* g, size_t g_stride, float* dst,
                    size_t dst_stride, size_t rows, size_t width) {
  for (size_t r = 0; r < rows; ++r) {
    const float* grow = g + r * g_stride;
    float* drow = dst + r * dst_stride;
    for (size_t j = 0; j < width; ++j) drow[j] += grow[j];
  }
}

// --- Lookup / graph ------------------------------------------------------

void GatherForward(const float* weight, int vocab, int d,
                   const std::vector<int>& ids, float* out) {
  const int n = static_cast<int>(ids.size());
  for (int i = 0; i < n; ++i) {
    PREQR_CHECK_GE(ids[static_cast<size_t>(i)], 0);
    PREQR_CHECK_LT(ids[static_cast<size_t>(i)], vocab);
    std::copy(weight + static_cast<size_t>(ids[static_cast<size_t>(i)]) * d,
              weight + static_cast<size_t>(ids[static_cast<size_t>(i)] + 1) * d,
              out + static_cast<size_t>(i) * d);
  }
}

void GatherBackward(const float* g, const std::vector<int>& ids, int d,
                    float* dweight) {
  // Embedding scatter: several positions may hit the same vocabulary row,
  // so the scatter is grouped by destination row. Each group accumulates
  // its positions in ascending position order — exactly the serial order —
  // so any split of groups across threads is bitwise-identical to the
  // single-thread pass.
  std::vector<int> by_dest(ids.size());
  std::iota(by_dest.begin(), by_dest.end(), 0);
  std::stable_sort(by_dest.begin(), by_dest.end(), [&ids](int a, int b) {
    return ids[static_cast<size_t>(a)] < ids[static_cast<size_t>(b)];
  });
  std::vector<size_t> group_start;
  for (size_t i = 0; i < by_dest.size(); ++i) {
    if (i == 0 || ids[static_cast<size_t>(by_dest[i])] !=
                      ids[static_cast<size_t>(by_dest[i - 1])]) {
      group_start.push_back(i);
    }
  }
  group_start.push_back(by_dest.size());
  const int64_t ngroups = static_cast<int64_t>(group_start.size()) - 1;
  ParallelFor(0, ngroups, GrainForCost(d), [&](int64_t g0, int64_t g1) {
    for (int64_t gidx = g0; gidx < g1; ++gidx) {
      for (size_t i = group_start[static_cast<size_t>(gidx)];
           i < group_start[static_cast<size_t>(gidx) + 1]; ++i) {
        const size_t pos = static_cast<size_t>(by_dest[i]);
        const float* grow = g + pos * static_cast<size_t>(d);
        float* dst = dweight + static_cast<size_t>(ids[pos]) * d;
        for (int j = 0; j < d; ++j) dst[j] += grow[j];
      }
    }
  });
}

void SparseAggregateForward(const float* h, const std::vector<Edge>& edges,
                            const std::vector<float>& norm, float* out,
                            int d) {
  for (size_t e = 0; e < edges.size(); ++e) {
    const float w = norm[e];
    const float* src = h + static_cast<size_t>(edges[e].src) * d;
    float* dst = out + static_cast<size_t>(edges[e].dst) * d;
    for (int j = 0; j < d; ++j) dst[j] += w * src[j];
  }
}

void SparseAggregateBackward(const float* g, const std::vector<Edge>& edges,
                             const std::vector<float>& norm, float* dh,
                             int d) {
  for (size_t e = 0; e < edges.size(); ++e) {
    const float w = norm[e];
    const float* grow = g + static_cast<size_t>(edges[e].dst) * d;
    float* dst = dh + static_cast<size_t>(edges[e].src) * d;
    for (int j = 0; j < d; ++j) dst[j] += w * grow[j];
  }
}

// --- Losses --------------------------------------------------------------

float CrossEntropyForward(const float* logits,
                          const std::vector<int>& targets, int ignore_index,
                          int n, int c, float* probs, int* valid_out) {
  // Per-row softmax + log-loss in parallel; the (order-sensitive) double
  // accumulation then runs serially in row order so the total is
  // bitwise-identical for every thread count.
  std::vector<double> row_loss(static_cast<size_t>(n), 0.0);
  ParallelFor(0, n, GrainForCost(c), [&](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      const float* row = logits + static_cast<size_t>(i) * c;
      float* pr = probs + static_cast<size_t>(i) * c;
      float mx = row[0];
      for (int j = 1; j < c; ++j) mx = std::max(mx, row[j]);
      float sum = 0.0f;
      for (int j = 0; j < c; ++j) {
        pr[j] = std::exp(row[j] - mx);
        sum += pr[j];
      }
      const float inv = 1.0f / sum;
      for (int j = 0; j < c; ++j) pr[j] *= inv;
      const int t = targets[static_cast<size_t>(i)];
      if (t == ignore_index) continue;
      PREQR_CHECK_GE(t, 0);
      PREQR_CHECK_LT(t, c);
      row_loss[static_cast<size_t>(i)] = -std::log(std::max(pr[t], 1e-12f));
    }
  });
  int valid = 0;
  double loss = 0.0;
  for (int i = 0; i < n; ++i) {
    if (targets[static_cast<size_t>(i)] == ignore_index) continue;
    ++valid;
    loss += row_loss[static_cast<size_t>(i)];
  }
  *valid_out = valid;
  return valid > 0 ? static_cast<float>(loss / valid) : 0.0f;
}

void CrossEntropyBackward(float g, const float* probs,
                          const std::vector<int>& targets, int ignore_index,
                          int n, int c, float* dlogits) {
  ParallelFor(0, n, GrainForCost(c), [&](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      const int t = targets[static_cast<size_t>(i)];
      if (t == ignore_index) continue;
      const float* pr = probs + static_cast<size_t>(i) * c;
      float* dl = dlogits + static_cast<size_t>(i) * c;
      for (int j = 0; j < c; ++j) {
        dl[j] += g * (pr[j] - (j == t ? 1.0f : 0.0f));
      }
    }
  });
}

float MseForward(const float* pred, const std::vector<float>& target) {
  const size_t n = target.size();
  double loss = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double diff = pred[i] - target[i];
    loss += diff * diff;
  }
  return static_cast<float>(loss / static_cast<double>(n));
}

void MseBackward(float g, const float* pred, const std::vector<float>& target,
                 float* dpred) {
  for (size_t i = 0; i < target.size(); ++i) {
    dpred[i] += g * (pred[i] - target[i]);
  }
}

// --- Dropout -------------------------------------------------------------

void DropoutForward(const float* x, float p, float scale, Rng& rng,
                    float* out, float* mask, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    const float m = rng.NextFloat() < p ? 0.0f : scale;
    if (mask != nullptr) mask[i] = m;
    out[i] = x[i] * m;
  }
}

void DropoutBackward(const float* g, const float* mask, float* dx, size_t n) {
  for (size_t i = 0; i < n; ++i) dx[i] += g[i] * mask[i];
}

// --- Batched / masked kernels --------------------------------------------
// All batched kernels parallelize over flattened (example, row) pairs: each
// output row belongs to exactly one example and is produced by a serial
// loop that never reads another example's rows, so any ParallelFor split is
// bitwise-identical to the serial pass and to the single-query kernels.

void BatchedMatMulNTForward(const float* a, const float* bt, float* out,
                            int bsz, int t, int k, const int* lengths) {
  const int64_t rows = static_cast<int64_t>(bsz) * t;
  ParallelFor(0, rows, GrainForCost(static_cast<int64_t>(k) * t),
              [&](int64_t r0, int64_t r1) {
                for (int64_t r = r0; r < r1; ++r) {
                  const int b = static_cast<int>(r / t);
                  const int i = static_cast<int>(r % t);
                  const int len = lengths[b];
                  if (i >= len) continue;  // pad row: stays zero
                  const float* ab = a + static_cast<size_t>(b) * t * k;
                  const float* btb = bt + static_cast<size_t>(b) * t * k;
                  float* orow = out + static_cast<size_t>(r) * t;
                  const float* arow = ab + static_cast<size_t>(i) * k;
                  // kk-outer / j-inner with zero-skip: the exact float-op
                  // sequence of MatMulForward(a_b, Transpose(bt_b)) row i.
                  for (int kk = 0; kk < k; ++kk) {
                    const float av = arow[kk];
                    if (av == 0.0f) continue;
                    for (int j = 0; j < len; ++j) {
                      orow[j] += av * btb[static_cast<size_t>(j) * k + kk];
                    }
                  }
                }
              });
}

void BatchedMatMulNTBackwardA(const float* g, const float* bt, float* da,
                              int bsz, int t, int k, const int* lengths) {
  const int64_t rows = static_cast<int64_t>(bsz) * t;
  ParallelFor(0, rows, GrainForCost(static_cast<int64_t>(k) * t),
              [&](int64_t r0, int64_t r1) {
                for (int64_t r = r0; r < r1; ++r) {
                  const int b = static_cast<int>(r / t);
                  const int i = static_cast<int>(r % t);
                  const int len = lengths[b];
                  if (i >= len) continue;
                  const float* grow = g + static_cast<size_t>(r) * t;
                  const float* btb = bt + static_cast<size_t>(b) * t * k;
                  float* darow = da + static_cast<size_t>(r) * k;
                  for (int kk = 0; kk < k; ++kk) {
                    float acc = 0.0f;
                    for (int j = 0; j < len; ++j) {
                      acc += grow[j] * btb[static_cast<size_t>(j) * k + kk];
                    }
                    darow[kk] += acc;
                  }
                }
              });
}

void BatchedMatMulNTBackwardB(const float* g, const float* a, float* dbt,
                              int bsz, int t, int k, const int* lengths) {
  // dbt[b,j,:] += sum_i g[b,i,j] * a[b,i,:]; rows (b, j) are independent
  // and each accumulates its i-sum in ascending order.
  const int64_t rows = static_cast<int64_t>(bsz) * t;
  ParallelFor(0, rows, GrainForCost(static_cast<int64_t>(k) * t),
              [&](int64_t r0, int64_t r1) {
                for (int64_t r = r0; r < r1; ++r) {
                  const int b = static_cast<int>(r / t);
                  const int j = static_cast<int>(r % t);
                  const int len = lengths[b];
                  if (j >= len) continue;
                  const float* gb = g + static_cast<size_t>(b) * t * t;
                  const float* ab = a + static_cast<size_t>(b) * t * k;
                  float* drow = dbt + static_cast<size_t>(r) * k;
                  for (int i = 0; i < len; ++i) {
                    const float gv = gb[static_cast<size_t>(i) * t + j];
                    if (gv == 0.0f) continue;
                    const float* arow = ab + static_cast<size_t>(i) * k;
                    for (int kk = 0; kk < k; ++kk) drow[kk] += gv * arow[kk];
                  }
                }
              });
}

void BatchedMatMulNNForward(const float* w, const float* v, float* out,
                            int bsz, int t, int dv, const int* lengths) {
  const int64_t rows = static_cast<int64_t>(bsz) * t;
  ParallelFor(0, rows, GrainForCost(static_cast<int64_t>(t) * dv),
              [&](int64_t r0, int64_t r1) {
                for (int64_t r = r0; r < r1; ++r) {
                  const int b = static_cast<int>(r / t);
                  const int i = static_cast<int>(r % t);
                  const int len = lengths[b];
                  if (i >= len) continue;
                  const float* wrow = w + static_cast<size_t>(r) * t;
                  const float* vb = v + static_cast<size_t>(b) * t * dv;
                  float* orow = out + static_cast<size_t>(r) * dv;
                  // Same kk-outer / j-inner order as MatMulForward(w_b, v_b).
                  for (int kk = 0; kk < len; ++kk) {
                    const float av = wrow[kk];
                    if (av == 0.0f) continue;
                    const float* vrow = vb + static_cast<size_t>(kk) * dv;
                    for (int j = 0; j < dv; ++j) orow[j] += av * vrow[j];
                  }
                }
              });
}

void BatchedMatMulNNBackwardW(const float* g, const float* v, float* dw,
                              int bsz, int t, int dv, const int* lengths) {
  const int64_t rows = static_cast<int64_t>(bsz) * t;
  ParallelFor(0, rows, GrainForCost(static_cast<int64_t>(t) * dv),
              [&](int64_t r0, int64_t r1) {
                for (int64_t r = r0; r < r1; ++r) {
                  const int b = static_cast<int>(r / t);
                  const int i = static_cast<int>(r % t);
                  const int len = lengths[b];
                  if (i >= len) continue;
                  const float* grow = g + static_cast<size_t>(r) * dv;
                  const float* vb = v + static_cast<size_t>(b) * t * dv;
                  float* dwrow = dw + static_cast<size_t>(r) * t;
                  for (int j = 0; j < len; ++j) {
                    const float* vrow = vb + static_cast<size_t>(j) * dv;
                    float acc = 0.0f;
                    for (int c = 0; c < dv; ++c) acc += grow[c] * vrow[c];
                    dwrow[j] += acc;
                  }
                }
              });
}

void BatchedMatMulNNBackwardV(const float* w, const float* g, float* dv,
                              int bsz, int t, int dv_dim,
                              const int* lengths) {
  // dv[b,j,:] += sum_i w[b,i,j] * g[b,i,:]; rows (b, j) independent.
  const int64_t rows = static_cast<int64_t>(bsz) * t;
  ParallelFor(0, rows, GrainForCost(static_cast<int64_t>(t) * dv_dim),
              [&](int64_t r0, int64_t r1) {
                for (int64_t r = r0; r < r1; ++r) {
                  const int b = static_cast<int>(r / t);
                  const int j = static_cast<int>(r % t);
                  const int len = lengths[b];
                  if (j >= len) continue;
                  const float* wb = w + static_cast<size_t>(b) * t * t;
                  const float* gb =
                      g + static_cast<size_t>(b) * t * dv_dim;
                  float* drow = dv + static_cast<size_t>(r) * dv_dim;
                  for (int i = 0; i < len; ++i) {
                    const float wv = wb[static_cast<size_t>(i) * t + j];
                    if (wv == 0.0f) continue;
                    const float* grow = gb + static_cast<size_t>(i) * dv_dim;
                    for (int c = 0; c < dv_dim; ++c) drow[c] += wv * grow[c];
                  }
                }
              });
}

void MaskedSoftmaxForward(const float* x, float* out, int bsz, int t,
                          const int* lengths) {
  const int64_t rows = static_cast<int64_t>(bsz) * t;
  ParallelFor(0, rows, GrainForCost(t), [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const int b = static_cast<int>(r / t);
      const int i = static_cast<int>(r % t);
      const int len = lengths[b];
      if (i >= len) continue;  // pad row: stays zero
      const float* in = x + static_cast<size_t>(r) * t;
      float* o = out + static_cast<size_t>(r) * t;
      // SoftmaxForward row body with d = len; entries past len stay zero.
      float mx = in[0];
      for (int j = 1; j < len; ++j) mx = std::max(mx, in[j]);
      float sum = 0.0f;
      for (int j = 0; j < len; ++j) {
        o[j] = std::exp(in[j] - mx);
        sum += o[j];
      }
      const float inv = 1.0f / sum;
      for (int j = 0; j < len; ++j) o[j] *= inv;
    }
  });
}

void MaskedSoftmaxBackward(const float* y, const float* g, float* dx,
                           int bsz, int t, const int* lengths) {
  const int64_t rows = static_cast<int64_t>(bsz) * t;
  ParallelFor(0, rows, GrainForCost(t), [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const int b = static_cast<int>(r / t);
      const int i = static_cast<int>(r % t);
      const int len = lengths[b];
      if (i >= len) continue;
      const float* yr = y + static_cast<size_t>(r) * t;
      const float* gr = g + static_cast<size_t>(r) * t;
      float dot = 0.0f;
      for (int j = 0; j < len; ++j) dot += yr[j] * gr[j];
      float* dxr = dx + static_cast<size_t>(r) * t;
      for (int j = 0; j < len; ++j) dxr[j] += yr[j] * (gr[j] - dot);
    }
  });
}

void MaskedLayerNormForward(const float* x, const float* gamma,
                            const float* beta, float eps, float* out,
                            float* xhat, float* inv_std, int bsz, int t,
                            int d, const int* lengths) {
  const int64_t rows = static_cast<int64_t>(bsz) * t;
  ParallelFor(0, rows, GrainForCost(d), [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const int b = static_cast<int>(r / t);
      const int i = static_cast<int>(r % t);
      if (i >= lengths[b]) continue;  // pad row: out/xhat stay zero
      const float* row = x + static_cast<size_t>(r) * d;
      // LayerNormForward row body, verbatim.
      float mean = 0.0f;
      for (int j = 0; j < d; ++j) mean += row[j];
      mean /= static_cast<float>(d);
      float var = 0.0f;
      for (int j = 0; j < d; ++j) {
        const float c = row[j] - mean;
        var += c * c;
      }
      var /= static_cast<float>(d);
      const float istd = 1.0f / std::sqrt(var + eps);
      if (inv_std != nullptr) inv_std[static_cast<size_t>(r)] = istd;
      float* xh = xhat != nullptr ? xhat + static_cast<size_t>(r) * d : nullptr;
      float* o = out + static_cast<size_t>(r) * d;
      for (int j = 0; j < d; ++j) {
        const float xv = (row[j] - mean) * istd;
        if (xh != nullptr) xh[j] = xv;
        o[j] = xv * gamma[j] + beta[j];
      }
    }
  });
}

void MaskedLayerNormBackwardParams(const float* g, const float* xhat,
                                   float* dgamma, float* dbeta, int bsz,
                                   int t, int d, const int* lengths) {
  // Partition over columns; each column sums valid rows in (example, row)
  // ascending order, so the reduction is deterministic at any thread count.
  ParallelFor(0, d, GrainForCost(static_cast<int64_t>(bsz) * t),
              [&](int64_t j0, int64_t j1) {
                for (int64_t j = j0; j < j1; ++j) {
                  for (int b = 0; b < bsz; ++b) {
                    const int len = lengths[b];
                    for (int i = 0; i < len; ++i) {
                      const size_t r =
                          static_cast<size_t>(b) * t + static_cast<size_t>(i);
                      const float* gr = g + r * d;
                      const float* xh = xhat + r * d;
                      dgamma[static_cast<size_t>(j)] += gr[j] * xh[j];
                      dbeta[static_cast<size_t>(j)] += gr[j];
                    }
                  }
                }
              });
}

void MaskedLayerNormBackwardInput(const float* g, const float* xhat,
                                  const float* inv_std, const float* gamma,
                                  float* dx, int bsz, int t, int d,
                                  const int* lengths) {
  const int64_t rows = static_cast<int64_t>(bsz) * t;
  ParallelFor(0, rows, GrainForCost(d), [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const int b = static_cast<int>(r / t);
      const int i = static_cast<int>(r % t);
      if (i >= lengths[b]) continue;
      const float* gr = g + static_cast<size_t>(r) * d;
      const float* xh = xhat + static_cast<size_t>(r) * d;
      const float istd = inv_std[static_cast<size_t>(r)];
      float sum_dxh = 0.0f, sum_dxh_xh = 0.0f;
      for (int j = 0; j < d; ++j) {
        const float dxh = gr[j] * gamma[j];
        sum_dxh += dxh;
        sum_dxh_xh += dxh * xh[j];
      }
      float* dxr = dx + static_cast<size_t>(r) * d;
      const float invd = 1.0f / static_cast<float>(d);
      for (int j = 0; j < d; ++j) {
        const float dxh = gr[j] * gamma[j];
        dxr[j] += istd * (dxh - invd * sum_dxh - xh[j] * invd * sum_dxh_xh);
      }
    }
  });
}

float MaskedCrossEntropyForward(const float* logits,
                                const std::vector<int>& targets,
                                int ignore_index, int bsz, int t, int c,
                                const int* lengths, float* probs,
                                std::vector<int>* valid_out,
                                std::vector<float>* example_loss) {
  // Per-row softmax + log-loss in parallel (valid rows only); the
  // order-sensitive double accumulation then runs serially per example so
  // each example's mean is bitwise what CrossEntropyForward returns for
  // its rows alone.
  const int64_t rows = static_cast<int64_t>(bsz) * t;
  std::vector<double> row_loss(static_cast<size_t>(rows), 0.0);
  ParallelFor(0, rows, GrainForCost(c), [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const int b = static_cast<int>(r / t);
      const int i = static_cast<int>(r % t);
      if (i >= lengths[b]) continue;
      const float* row = logits + static_cast<size_t>(r) * c;
      float* pr = probs + static_cast<size_t>(r) * c;
      float mx = row[0];
      for (int j = 1; j < c; ++j) mx = std::max(mx, row[j]);
      float sum = 0.0f;
      for (int j = 0; j < c; ++j) {
        pr[j] = std::exp(row[j] - mx);
        sum += pr[j];
      }
      const float inv = 1.0f / sum;
      for (int j = 0; j < c; ++j) pr[j] *= inv;
      const int tgt = targets[static_cast<size_t>(r)];
      if (tgt == ignore_index) continue;
      PREQR_CHECK_GE(tgt, 0);
      PREQR_CHECK_LT(tgt, c);
      row_loss[static_cast<size_t>(r)] = -std::log(std::max(pr[tgt], 1e-12f));
    }
  });
  valid_out->assign(static_cast<size_t>(bsz), 0);
  if (example_loss != nullptr) {
    example_loss->assign(static_cast<size_t>(bsz), 0.0f);
  }
  // Float chain sum over examples mirrors the retired per-example
  // Add(...)/Scale(1/bsz) tape, so reported losses stay comparable.
  float total = 0.0f;
  for (int b = 0; b < bsz; ++b) {
    int valid = 0;
    double loss = 0.0;
    const int len = lengths[b];
    for (int i = 0; i < len; ++i) {
      const size_t r = static_cast<size_t>(b) * t + static_cast<size_t>(i);
      if (targets[r] == ignore_index) continue;
      ++valid;
      loss += row_loss[r];
    }
    (*valid_out)[static_cast<size_t>(b)] = valid;
    const float mean =
        valid > 0 ? static_cast<float>(loss / valid) : 0.0f;
    if (example_loss != nullptr) {
      (*example_loss)[static_cast<size_t>(b)] = mean;
    }
    total += mean;
  }
  return total * (1.0f / static_cast<float>(bsz));
}

void MaskedCrossEntropyBackward(float g, const float* probs,
                                const std::vector<int>& targets,
                                int ignore_index, int bsz, int t, int c,
                                const int* lengths,
                                const std::vector<int>& valid,
                                float* dlogits) {
  const float gb = g * (1.0f / static_cast<float>(bsz));
  const int64_t rows = static_cast<int64_t>(bsz) * t;
  ParallelFor(0, rows, GrainForCost(c), [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const int b = static_cast<int>(r / t);
      const int i = static_cast<int>(r % t);
      if (i >= lengths[b]) continue;
      const int tgt = targets[static_cast<size_t>(r)];
      if (tgt == ignore_index) continue;
      const int v = valid[static_cast<size_t>(b)];
      if (v == 0) continue;
      const float gr = gb / static_cast<float>(v);
      const float* pr = probs + static_cast<size_t>(r) * c;
      float* dl = dlogits + static_cast<size_t>(r) * c;
      for (int j = 0; j < c; ++j) {
        dl[j] += gr * (pr[j] - (j == tgt ? 1.0f : 0.0f));
      }
    }
  });
}

void MaskedDropoutForward(const float* x, float p, float scale,
                          const uint64_t* seeds, float* out, float* mask,
                          int bsz, int t, int d, const int* lengths) {
  // One RNG stream per example, consumed serially inside the example —
  // exactly the draw sequence the single-example DropoutForward makes —
  // so scheduling and batch composition cannot change any mask bit.
  ParallelFor(0, bsz, 1, [&](int64_t b0, int64_t b1) {
    for (int64_t b = b0; b < b1; ++b) {
      const int len = lengths[b];
      const size_t n = static_cast<size_t>(len) * static_cast<size_t>(d);
      const size_t off =
          static_cast<size_t>(b) * static_cast<size_t>(t) * d;
      Rng rng(seeds[b]);
      DropoutForward(x + off, p, scale, rng, out + off,
                     mask != nullptr ? mask + off : nullptr, n);
    }
  });
}

}  // namespace preqr::nn::kernels
