#include "nn/tensor.h"

#include <algorithm>
#include <atomic>
#include <unordered_set>

#include "nn/buffer_pool.h"

namespace preqr::nn {

namespace {

thread_local bool t_grad_mode_enabled = true;

std::atomic<uint64_t> g_impls_created{0};

// Allocates the backing store for a fresh zero-filled tensor. Under
// NoGradGuard the storage comes from the thread-local BufferPool and is
// recycled when the impl dies; under grad mode it is a plain heap
// allocation (grads, parents, and optimizer state may outlive any pool
// round-trip assumptions).
std::shared_ptr<TensorImpl> NewImpl(Shape shape, bool requires_grad) {
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = std::move(shape);
  const size_t n = static_cast<size_t>(impl->size());
  if (!GradMode::enabled() && BufferPool::enabled()) {
    impl->data = BufferPool::ThreadLocal().Acquire(n);
    impl->pooled = true;
  } else {
    impl->data.assign(n, 0.0f);
  }
  impl->requires_grad = requires_grad;
  return impl;
}

}  // namespace

bool GradMode::enabled() { return t_grad_mode_enabled; }

void GradMode::set_enabled(bool enabled) { t_grad_mode_enabled = enabled; }

TensorImpl::TensorImpl() {
  g_impls_created.fetch_add(1, std::memory_order_relaxed);
}

TensorImpl::~TensorImpl() {
  if (pooled) BufferPool::ThreadLocal().Release(std::move(data));
}

uint64_t TensorImplsCreated() {
  return g_impls_created.load(std::memory_order_relaxed);
}

Tensor Tensor::Zeros(Shape shape, bool requires_grad) {
  return Tensor(NewImpl(std::move(shape), requires_grad));
}

Tensor Tensor::Full(Shape shape, float value, bool requires_grad) {
  auto impl = NewImpl(std::move(shape), requires_grad);
  std::fill(impl->data.begin(), impl->data.end(), value);
  return Tensor(std::move(impl));
}

Tensor Tensor::FromData(Shape shape, std::vector<float> data,
                        bool requires_grad) {
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = std::move(shape);
  impl->data = std::move(data);
  impl->requires_grad = requires_grad;
  PREQR_CHECK_EQ(impl->size(), static_cast<Index>(impl->data.size()));
  return Tensor(std::move(impl));
}

Tensor Tensor::Scalar(float value, bool requires_grad) {
  return FromData({1}, {value}, requires_grad);
}

Tensor Tensor::Randn(Shape shape, Rng& rng, float stddev, bool requires_grad) {
  auto impl = NewImpl(std::move(shape), requires_grad);
  for (auto& x : impl->data) {
    x = static_cast<float>(rng.NextGaussian()) * stddev;
  }
  return Tensor(std::move(impl));
}

Tensor Tensor::Uniform(Shape shape, Rng& rng, float bound, bool requires_grad) {
  auto impl = NewImpl(std::move(shape), requires_grad);
  for (auto& x : impl->data) {
    x = (rng.NextFloat() * 2.0f - 1.0f) * bound;
  }
  return Tensor(std::move(impl));
}

Tensor Tensor::Detach() const {
  PREQR_CHECK(defined());
  auto impl = NewImpl(impl_->shape, /*requires_grad=*/false);
  std::copy(impl_->data.begin(), impl_->data.end(), impl->data.begin());
  return Tensor(std::move(impl));
}

void Tensor::Backward() {
  PREQR_CHECK(defined());
  PREQR_CHECK_MSG(size() == 1, "Backward() requires a scalar loss");
  PREQR_CHECK_MSG(
      impl_->grad_fn != nullptr || impl_->requires_grad,
      "Backward() on a tensor with no autograd tape (created under "
      "NoGradGuard, or no input requires grad)");
  // Topological order via iterative DFS.
  std::vector<TensorImpl*> order;
  std::unordered_set<TensorImpl*> visited;
  std::vector<std::pair<TensorImpl*, size_t>> stack;
  stack.emplace_back(impl_.get(), 0);
  visited.insert(impl_.get());
  while (!stack.empty()) {
    auto& [node, idx] = stack.back();
    if (idx < node->parents.size()) {
      TensorImpl* parent = node->parents[idx].get();
      ++idx;
      if (visited.insert(parent).second) stack.emplace_back(parent, 0);
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }
  impl_->EnsureGrad();
  impl_->grad[0] = 1.0f;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    TensorImpl* node = *it;
    if (node->grad_fn && !node->grad.empty()) node->grad_fn(node);
  }
}

}  // namespace preqr::nn
