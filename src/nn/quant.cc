#include "nn/quant.h"

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "nn/kernels_dispatch.h"
#include "nn/module.h"

namespace preqr::nn::quant {
namespace {

thread_local bool t_int8_enabled = false;

// Per-thread scratch for the dynamically quantized activations. Reused
// across calls so the steady-state encode path stays allocation-free.
struct RowQuantScratch {
  std::vector<int8_t> aq;
  std::vector<float> scales;
};

thread_local RowQuantScratch t_scratch;

// Quantizes one activation row symmetrically. Row-local by construction:
// the bits depend only on the row's own values, never on batch neighbors.
// Returns the scale (0 for an all-zero row, which the GEMM skips).
float QuantizeRow(const float* row, int8_t* q, int k) {
  float amax = 0.0f;
  for (int i = 0; i < k; ++i) {
    const float a = std::fabs(row[i]);
    if (a > amax) amax = a;
  }
  if (amax == 0.0f) return 0.0f;
  const float scale = amax / 127.0f;
  const float inv = 127.0f / amax;
  for (int i = 0; i < k; ++i) {
    // lrintf rounds to nearest-even under the default FP environment — one
    // deterministic rounding rule for every backend and batch shape.
    q[i] = static_cast<int8_t>(std::lrintf(row[i] * inv));
  }
  return scale;
}

}  // namespace

bool Int8Enabled() { return t_int8_enabled; }

Int8Guard::Int8Guard(bool enable) : prev_(t_int8_enabled) {
  t_int8_enabled = enable;
}

Int8Guard::~Int8Guard() { t_int8_enabled = prev_; }

std::shared_ptr<QuantizedWeight> QuantizeWeight(const Tensor& w) {
  PREQR_CHECK_EQ(w.ndim(), 2);
  const int k = w.dim(0);
  const int n = w.dim(1);
  auto qw = std::make_shared<QuantizedWeight>();
  qw->k = k;
  qw->n = n;
  qw->wt.assign(static_cast<size_t>(k) * n, 0);
  const float* data = w.data();
  float amax = 0.0f;
  for (Index i = 0; i < w.size(); ++i) {
    const float a = std::fabs(data[i]);
    if (a > amax) amax = a;
  }
  if (amax == 0.0f) return qw;  // scale 0: GEMM would produce exact zeros
  qw->scale = amax / 127.0f;
  const float inv = 127.0f / amax;
  for (int kk = 0; kk < k; ++kk) {
    for (int j = 0; j < n; ++j) {
      qw->wt[static_cast<size_t>(j) * k + kk] = static_cast<int8_t>(
          std::lrintf(data[static_cast<size_t>(kk) * n + j] * inv));
    }
  }
  return qw;
}

int CalibrateModule(const Module& m) {
  int quantized = 0;
  for (const auto& [name, p] : m.NamedParameters()) {
    if (!p.defined() || p.ndim() != 2) continue;
    p.impl()->quant = QuantizeWeight(p);
    ++quantized;
  }
  return quantized;
}

void ClearCalibration(const Module& m) {
  for (const auto& [name, p] : m.NamedParameters()) {
    if (p.defined()) p.impl()->quant.reset();
  }
}

void Int8MatMulForward(const float* a, const QuantizedWeight& qw, float* out,
                       int m) {
  const int k = qw.k;
  const int n = qw.n;
  auto& scratch = t_scratch;
  scratch.aq.resize(static_cast<size_t>(m) * k);
  scratch.scales.resize(static_cast<size_t>(m));
  for (int i = 0; i < m; ++i) {
    scratch.scales[static_cast<size_t>(i)] = QuantizeRow(
        a + static_cast<size_t>(i) * k,
        scratch.aq.data() + static_cast<size_t>(i) * k, k);
  }
  kernels::Active().Int8GemmForward(scratch.aq.data(), scratch.scales.data(),
                                    qw.wt.data(), qw.scale, out, m, k, n);
}

}  // namespace preqr::nn::quant
