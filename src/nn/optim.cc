#include "nn/optim.h"

#include <cmath>

namespace preqr::nn {

Adam::Adam(std::vector<Tensor> params, float lr, float beta1, float beta2,
           float eps, float clip_norm)
    : params_(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      clip_norm_(clip_norm) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.emplace_back(static_cast<size_t>(p.size()), 0.0f);
    v_.emplace_back(static_cast<size_t>(p.size()), 0.0f);
  }
}

void Adam::Step() {
  ++t_;
  // Global-norm clipping.
  if (clip_norm_ > 0.0f) {
    double total = 0.0;
    for (auto& p : params_) {
      const auto& g = p.grad_vec();
      for (float x : g) total += static_cast<double>(x) * x;
    }
    const double norm = std::sqrt(total);
    if (norm > clip_norm_) {
      const float scale = clip_norm_ / static_cast<float>(norm);
      for (auto& p : params_) {
        float* g = p.grad_data();
        for (Index i = 0; i < p.size(); ++i) g[i] *= scale;
      }
    }
  }
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t pi = 0; pi < params_.size(); ++pi) {
    Tensor& p = params_[pi];
    if (p.grad_vec().empty()) continue;
    float* w = p.data();
    const float* g = p.grad_vec().data();
    float* m = m_[pi].data();
    float* v = v_[pi].data();
    for (Index i = 0; i < p.size(); ++i) {
      m[i] = beta1_ * m[i] + (1.0f - beta1_) * g[i];
      v[i] = beta2_ * v[i] + (1.0f - beta2_) * g[i] * g[i];
      const float mhat = m[i] / bc1;
      const float vhat = v[i] / bc2;
      w[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

void Adam::ZeroGrad() {
  for (auto& p : params_) p.ZeroGrad();
}

OptimizerState Adam::StateDict() const {
  OptimizerState state;
  state.type = "adam";
  state.step = t_;
  state.slots.reserve(m_.size() + v_.size());
  for (const auto& m : m_) state.slots.push_back(m);
  for (const auto& v : v_) state.slots.push_back(v);
  return state;
}

Status Adam::LoadStateDict(const OptimizerState& state) {
  if (state.type != "adam") {
    return Status::InvalidArgument("optimizer state type '" + state.type +
                                   "' does not match Adam");
  }
  if (state.step < 0) {
    return Status::InvalidArgument("negative Adam step count");
  }
  if (state.slots.size() != m_.size() + v_.size()) {
    return Status::InvalidArgument("Adam slot count mismatch");
  }
  const size_t n = params_.size();
  for (size_t pi = 0; pi < n; ++pi) {
    if (state.slots[pi].size() != m_[pi].size() ||
        state.slots[n + pi].size() != v_[pi].size()) {
      return Status::InvalidArgument("Adam slot size mismatch");
    }
  }
  // All checked: commit.
  t_ = state.step;
  for (size_t pi = 0; pi < n; ++pi) {
    m_[pi] = state.slots[pi];
    v_[pi] = state.slots[n + pi];
  }
  return Status::Ok();
}

Sgd::Sgd(std::vector<Tensor> params, float lr)
    : params_(std::move(params)), lr_(lr) {}

void Sgd::Step() {
  for (auto& p : params_) {
    if (p.grad_vec().empty()) continue;
    float* w = p.data();
    const float* g = p.grad_vec().data();
    for (Index i = 0; i < p.size(); ++i) w[i] -= lr_ * g[i];
  }
}

void Sgd::ZeroGrad() {
  for (auto& p : params_) p.ZeroGrad();
}

OptimizerState Sgd::StateDict() const {
  OptimizerState state;
  state.type = "sgd";
  return state;
}

Status Sgd::LoadStateDict(const OptimizerState& state) {
  if (state.type != "sgd") {
    return Status::InvalidArgument("optimizer state type '" + state.type +
                                   "' does not match Sgd");
  }
  if (!state.slots.empty()) {
    return Status::InvalidArgument("Sgd state carries unexpected slots");
  }
  return Status::Ok();
}

}  // namespace preqr::nn
