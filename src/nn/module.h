#ifndef PREQR_NN_MODULE_H_
#define PREQR_NN_MODULE_H_

#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "nn/ops.h"
#include "nn/tensor.h"

namespace preqr::nn {

// Base class for trainable components. Parameters are registered with names
// so they can be serialized and fed to an optimizer.
class Module {
 public:
  virtual ~Module() = default;

  // Named parameters of this module (and registered children).
  std::vector<std::pair<std::string, Tensor>> NamedParameters() const;
  std::vector<Tensor> Parameters() const;
  void ZeroGrad();
  // Total number of scalar parameters.
  Index NumParameters() const;

  // Sets train/eval mode on this module and every registered child (so a
  // parent switched to eval cannot leave a child's dropout on).
  void set_train(bool train);
  bool train_mode() const { return train_; }

 protected:
  Tensor RegisterParameter(std::string name, Tensor t);
  void RegisterChild(std::string name, Module* child);

 private:
  std::vector<std::pair<std::string, Tensor>> params_;
  std::vector<std::pair<std::string, Module*>> children_;
  bool train_ = true;
};

// y = x W + b. x: [N, in], W: [in, out], b: [out].
class Linear : public Module {
 public:
  Linear(int in_features, int out_features, Rng& rng, bool bias = true);
  Tensor Forward(const Tensor& x) const;
  int in_features() const { return in_; }
  int out_features() const { return out_; }

 private:
  int in_, out_;
  Tensor weight_, bias_;
  bool has_bias_;
};

// ids -> rows of the embedding matrix. weight: [vocab, dim].
class Embedding : public Module {
 public:
  Embedding(int vocab_size, int dim, Rng& rng);
  Tensor Forward(const std::vector<int>& ids) const;
  Tensor weight() const { return weight_; }
  int vocab_size() const { return vocab_; }
  int dim() const { return dim_; }

 private:
  int vocab_, dim_;
  Tensor weight_;
};

class LayerNorm : public Module {
 public:
  explicit LayerNorm(int dim);
  Tensor Forward(const Tensor& x) const;
  // x: [B, T, d] padded batch; valid rows normalize exactly as Forward and
  // pad rows come out zero (re-zeroing any junk the row-wise ops left).
  Tensor ForwardMasked(const Tensor& x, const std::vector<int>& lengths) const;

 private:
  Tensor gamma_, beta_;
};

// Multi-head scaled dot-product attention (post-norm residual handled by the
// caller). Queries may differ from keys/values (cross attention). Forward
// also accepts batched [B, T, d] queries against shared 2-D keys/values
// (schema cross attention) — every key is valid, so no mask is needed.
class MultiHeadAttention : public Module {
 public:
  MultiHeadAttention(int dim, int num_heads, Rng& rng);
  // q: [Sq, d]; kv: [Skv, d] -> [Sq, d].
  Tensor Forward(const Tensor& q, const Tensor& kv) const;
  // Masked self-attention over a padded batch [B, T, d]: example b attends
  // over its first lengths[b] positions only; each valid row is bitwise the
  // single-example Forward(x_b, x_b) result.
  Tensor ForwardBatch(const Tensor& x, const std::vector<int>& lengths) const;
  int num_heads() const { return heads_; }

 private:
  int dim_, heads_, head_dim_;
  Linear wq_, wk_, wv_, wo_;
};

// Two-layer position-wise feed-forward with GELU.
class FeedForward : public Module {
 public:
  FeedForward(int dim, int hidden, Rng& rng);
  Tensor Forward(const Tensor& x) const;

 private:
  Linear fc1_, fc2_;
};

// Standard post-norm transformer encoder layer:
//   x = LN(x + SelfAttn(x)); x = LN(x + FFN(x))
class TransformerEncoderLayer : public Module {
 public:
  TransformerEncoderLayer(int dim, int num_heads, int ffn_hidden, Rng& rng);
  Tensor Forward(const Tensor& x) const;
  // Padded-batch forward: masked self-attention + masked layer norms, so
  // outputs carry exact per-example rows and exactly-zero pad rows.
  Tensor ForwardBatch(const Tensor& x, const std::vector<int>& lengths) const;

 private:
  MultiHeadAttention attn_;
  FeedForward ffn_;
  LayerNorm ln1_, ln2_;
};

// Single-layer bidirectional LSTM over a short token sequence.
// Input: [T, in]; output per step: [T, 2*hidden]; also exposes the paper's
// Concat(fwd_last, rev_first) summary used for schema node names (Eq. 2).
class BiLstm : public Module {
 public:
  BiLstm(int input_dim, int hidden_dim, Rng& rng);
  struct Output {
    Tensor per_step;  // [T, 2*hidden]
    Tensor summary;   // [1, 2*hidden] = Concat(h_fwd[T-1], h_rev[0])
  };
  Output Forward(const Tensor& x) const;
  int hidden_dim() const { return hidden_; }

 private:
  // One directional pass; returns [T, hidden] hidden states.
  Tensor RunDirection(const Tensor& x, bool reverse, const Linear& wx,
                      const Linear& wh) const;
  int input_, hidden_;
  Linear fwd_x_, fwd_h_, rev_x_, rev_h_;
};

// GRU cell for sequence decoders (SQL-to-Text).
class GruCell : public Module {
 public:
  GruCell(int input_dim, int hidden_dim, Rng& rng);
  // x: [1, in], h: [1, hidden] -> new h [1, hidden].
  Tensor Forward(const Tensor& x, const Tensor& h) const;
  int hidden_dim() const { return hidden_; }

 private:
  int input_, hidden_;
  Linear wx_, wh_;  // produce 3*hidden gates each
};

// One relational GCN layer (Eq. 3): per-relation weight matrices plus a
// self-connection, mean-normalized neighborhood sums, sigma = ReLU.
class RgcnLayer : public Module {
 public:
  RgcnLayer(int in_dim, int out_dim, int num_relations, Rng& rng);
  // h: [N, in]; per relation r an edge list (src->dst) with 1/|N_e(i)| norms.
  Tensor Forward(const Tensor& h,
                 const std::vector<std::vector<Edge>>& rel_edges,
                 const std::vector<std::vector<float>>& rel_norms) const;

 private:
  int num_relations_;
  std::vector<Linear> rel_weights_;
  Linear self_weight_;
};

}  // namespace preqr::nn

#endif  // PREQR_NN_MODULE_H_
