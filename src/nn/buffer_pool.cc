#include "nn/buffer_pool.h"

#include <atomic>
#include <bit>
#include <limits>
#include <utility>

namespace preqr::nn {

namespace {

std::atomic<bool> g_pool_enabled{true};

// Cumulative across all threads (a thread's parked bytes are subtracted
// back out when its pool is destroyed).
std::atomic<uint64_t> g_allocs{0};
std::atomic<uint64_t> g_reuses{0};
std::atomic<uint64_t> g_releases{0};
std::atomic<uint64_t> g_discards{0};
std::atomic<uint64_t> g_live_bytes{0};

// Smallest b with 2^b >= n (n >= 1).
int BucketForSize(size_t n) {
  return static_cast<int>(std::bit_width(n - 1));
}

// Largest b with 2^b <= capacity, i.e. the bucket this buffer can serve.
int BucketForCapacity(size_t capacity) {
  return static_cast<int>(std::bit_width(capacity)) - 1;
}

}  // namespace

BufferPool& BufferPool::ThreadLocal() {
  thread_local BufferPool pool;
  return pool;
}

void BufferPool::set_enabled(bool enabled) {
  g_pool_enabled.store(enabled, std::memory_order_relaxed);
}

bool BufferPool::enabled() {
  return g_pool_enabled.load(std::memory_order_relaxed);
}

BufferPoolStats BufferPool::TotalStats() {
  BufferPoolStats s;
  s.allocs = g_allocs.load(std::memory_order_relaxed);
  s.reuses = g_reuses.load(std::memory_order_relaxed);
  s.releases = g_releases.load(std::memory_order_relaxed);
  s.discards = g_discards.load(std::memory_order_relaxed);
  s.live_bytes = g_live_bytes.load(std::memory_order_relaxed);
  return s;
}

std::vector<float> BufferPool::Acquire(size_t n) {
  if (n > 0 && enabled()) {
    const int b = BucketForSize(n);
    if (b < kNumBuckets && !free_[static_cast<size_t>(b)].empty()) {
      auto& bucket = free_[static_cast<size_t>(b)];
      std::vector<float> buf = std::move(bucket.back());
      bucket.pop_back();
      g_live_bytes.fetch_sub(buf.capacity() * sizeof(float),
                             std::memory_order_relaxed);
      g_reuses.fetch_add(1, std::memory_order_relaxed);
      // The buffer was parked empty, so resize value-initializes all n
      // elements — bitwise-identical to assign(n, 0.0f).
      buf.resize(n);
      return buf;
    }
  }
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  std::vector<float> buf;
  if (n > 0) {
    const int b = BucketForSize(n);
    // Reserve the full bucket so the buffer re-enters bucket b on release
    // instead of degrading to a smaller one.
    if (b < kNumBuckets) buf.reserve(size_t{1} << b);
    buf.resize(n);
  }
  return buf;
}

void BufferPool::Release(std::vector<float>&& buf) {
  if (buf.capacity() == 0) return;
  if (!enabled()) {
    g_discards.fetch_add(1, std::memory_order_relaxed);
    return;  // buf frees on scope exit
  }
  const int b = BucketForCapacity(buf.capacity());
  if (b < 0 || b >= kNumBuckets ||
      free_[static_cast<size_t>(b)].size() >= kMaxPerBucket) {
    g_discards.fetch_add(1, std::memory_order_relaxed);
    return;
  }
#ifdef PREQR_POOL_DEBUG
  // Poison so a dangling reader of this recycled buffer sees NaNs.
  for (auto& v : buf) v = std::numeric_limits<float>::quiet_NaN();
#endif
  buf.clear();
  g_live_bytes.fetch_add(buf.capacity() * sizeof(float),
                         std::memory_order_relaxed);
  g_releases.fetch_add(1, std::memory_order_relaxed);
  free_[static_cast<size_t>(b)].push_back(std::move(buf));
}

void BufferPool::Clear() {
  for (auto& bucket : free_) {
    for (auto& buf : bucket) {
      g_live_bytes.fetch_sub(buf.capacity() * sizeof(float),
                             std::memory_order_relaxed);
    }
    bucket.clear();
  }
}

BufferPool::~BufferPool() { Clear(); }

}  // namespace preqr::nn
