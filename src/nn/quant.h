#ifndef PREQR_NN_QUANT_H_
#define PREQR_NN_QUANT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "nn/tensor.h"

// Int8 quantized inference path for Linear weights.
//
// Scheme: per-tensor symmetric weight quantization (scale = max|w| / 127,
// round-to-nearest-even, no zero point) packed as the transposed int8
// matrix Wᵀ [n, k] so the GEMM reads both operands along k contiguously.
// Activations are quantized dynamically per row with row-local symmetric
// scales — a row's quantized bits depend only on that row, which keeps the
// int8 path batch-composition invariant like the float kernels. The GEMM
// accumulates in exact int32 and dequantizes with two float multiplies, so
// every kernel backend produces bitwise-identical int8 results.
//
// The path is opt-in per encoder (PreqrEncoder::Options::use_int8) and
// engages only when (a) the tape is off, (b) an Int8Guard is installed on
// the current thread, and (c) the weight carries a calibrated shadow.
// Training, gradients, and serialized checkpoints never see int8 state.
namespace preqr::nn {
class Module;  // module.h includes tensor.h; forward-declare to avoid a cycle
}

namespace preqr::nn::quant {

// Immutable int8 shadow of one 2-D weight [k, n], attached to
// TensorImpl::quant by CalibrateModule. `wt` is the packed transposed
// matrix: wt[j * k + kk] = round(w[kk * n + j] / scale).
struct QuantizedWeight {
  std::vector<int8_t> wt;  // [n, k]
  float scale = 0.0f;      // max|w| / 127; 0 for an all-zero weight
  int k = 0;
  int n = 0;
};

// Thread-local opt-in switch, mirroring GradMode: ops consult it via
// Int8Enabled(). Default off; guards nest and restore on exit.
bool Int8Enabled();

class Int8Guard {
 public:
  explicit Int8Guard(bool enable);
  ~Int8Guard();
  Int8Guard(const Int8Guard&) = delete;
  Int8Guard& operator=(const Int8Guard&) = delete;

 private:
  bool prev_;
};

// Quantizes one 2-D weight [k, n] into a fresh shadow.
std::shared_ptr<QuantizedWeight> QuantizeWeight(const Tensor& w);

// Attaches int8 shadows to every 2-D parameter of `m` (re-quantizing from
// the current float values, so call again after any weight mutation —
// PreqrEncoder does this from its ctor and InvalidateCache). Non-matrix
// params are skipped; shadows on never-multiplied matrices (embeddings,
// LSTM/GRU gate weights fed through the same Linear path) are inert.
// Returns the number of parameters quantized.
int CalibrateModule(const Module& m);

// Drops all int8 shadows from `m`'s parameters.
void ClearCalibration(const Module& m);

// y [m, n] = dequant(rowquant(a) [m, k] · qw) using the active kernel
// backend's Int8GemmForward. `out` must be zero-filled; all-zero activation
// rows are skipped and stay zero, matching the float kernel's pad-row
// behavior.
void Int8MatMulForward(const float* a, const QuantizedWeight& qw, float* out,
                       int m);

}  // namespace preqr::nn::quant

#endif  // PREQR_NN_QUANT_H_
