#ifndef PREQR_NN_KERNELS_DISPATCH_H_
#define PREQR_NN_KERNELS_DISPATCH_H_

#include <cstddef>
#include <cstdint>

namespace preqr::nn::kernels {

// Runtime dispatch over the hot *forward* compute kernels. Exactly the
// kernels that dominate the no-grad encode path have more than one
// implementation: the portable scalar loops in kernels.cc (the mandatory
// fallback, bitwise-identical to the pre-dispatch code) and the AVX2/FMA
// backend in kernels_avx2.cc (compiled only when the toolchain supports
// -mavx2 -mfma, selected only when CPUID reports both).
//
// Every backward kernel stays scalar and is called directly — training,
// exact checkpoint resume, and the pinned grad-path determinism tests never
// see a SIMD float. Forward dispatch is grad-agnostic (the tape-on forward
// uses the same table), which keeps the grad-on/grad-off bitwise pin intact
// because both sides of that comparison run under one implementation.
//
// Determinism contract per implementation:
//   * scalar — bitwise-identical to the historical kernels at any thread
//     count and batch composition (unchanged code).
//   * avx2 — bitwise-stable across runs, thread counts, and batch
//     compositions *under avx2*: the batched kernels reuse the exact
//     per-row routines of the single-query kernels (NT materializes the
//     same kᵀ operand the solo Transpose+MatMul path feeds the GEMM), and
//     elementwise tails run through the same vector routine as full lanes,
//     so a row's bits depend only on its own values. Scalar and avx2
//     *differ* from each other in float low bits (FMA contraction and a
//     polynomial exp); mixed-impl comparisons get tolerances, same-impl
//     comparisons stay memcmp-exact.
//   * int8 GEMM — exact int32 accumulation; identical bits from every
//     implementation.
struct KernelTable {
  const char* name;
  void (*MatMulForward)(const float* a, const float* b, float* out, int m,
                        int k, int n);
  void (*AddBiasForward)(const float* x, const float* bias, float* out,
                         size_t rows, int d);
  void (*ReluForward)(const float* x, float* out, size_t n);
  void (*GeluForward)(const float* x, float* out, size_t n);
  void (*TanhForward)(const float* x, float* out, size_t n);
  void (*SigmoidForward)(const float* x, float* out, size_t n);
  void (*SoftmaxForward)(const float* x, float* out, size_t rows, int d);
  void (*LayerNormForward)(const float* x, const float* gamma,
                           const float* beta, float eps, float* out,
                           float* xhat, float* inv_std, int n, int d);
  void (*BatchedMatMulNTForward)(const float* a, const float* bt, float* out,
                                 int bsz, int t, int k, const int* lengths);
  void (*BatchedMatMulNNForward)(const float* w, const float* v, float* out,
                                 int bsz, int t, int dv, const int* lengths);
  void (*MaskedSoftmaxForward)(const float* x, float* out, int bsz, int t,
                               const int* lengths);
  void (*MaskedLayerNormForward)(const float* x, const float* gamma,
                                 const float* beta, float eps, float* out,
                                 float* xhat, float* inv_std, int bsz, int t,
                                 int d, const int* lengths);
  void (*Int8GemmForward)(const int8_t* aq, const float* a_scale,
                          const int8_t* wt, float w_scale, float* out, int m,
                          int k, int n);
};

// The two candidate tables. Avx2Table() is null when the backend was not
// compiled in (PREQR_ENABLE_AVX2=OFF or no toolchain support) or the CPU
// lacks avx2/fma.
const KernelTable& ScalarTable();
const KernelTable* Avx2Table();

// True when the AVX2 backend is compiled in AND the CPU reports avx2+fma.
bool Avx2Supported();

// The active table. First use selects via PREQR_KERNEL_IMPL=scalar|avx2
// (an unsupported request falls back to scalar with a stderr note), else
// CPUID: avx2 when supported, scalar otherwise.
const KernelTable& Active();
const char* ActiveImplName();

// Test/bench hook: re-point the active table by name ("scalar" | "avx2").
// Returns false (and leaves the table alone) for an unknown or unsupported
// name. Not safe to call while kernels are executing on other threads.
bool SetActiveImpl(const char* name);

}  // namespace preqr::nn::kernels

#endif  // PREQR_NN_KERNELS_DISPATCH_H_
