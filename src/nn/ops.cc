#include "nn/ops.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

#include "common/thread_pool.h"

namespace preqr::nn {

namespace {

bool AnyRequiresGrad(const std::vector<Tensor>& parents) {
  for (const auto& p : parents) {
    if (p.requires_grad()) return true;
  }
  return false;
}

// Builds the result tensor and wires the tape if any parent needs grads.
Tensor MakeOp(Shape shape, std::vector<float> data, std::vector<Tensor> parents,
              std::function<void(TensorImpl*)> grad_fn) {
  Tensor out = Tensor::FromData(std::move(shape), std::move(data));
  if (AnyRequiresGrad(parents)) {
    out.impl()->requires_grad = true;
    out.impl()->parents.reserve(parents.size());
    for (auto& p : parents) out.impl()->parents.push_back(p.impl());
    out.impl()->grad_fn = std::move(grad_fn);
  }
  return out;
}

// True if gradients should flow into `t`: it is a parameter/leaf that
// requires grad, or an intermediate whose own grad_fn needs them.
bool Wants(const std::shared_ptr<TensorImpl>& t) {
  return t->requires_grad || !t->parents.empty();
}

void AccumulateGrad(const std::shared_ptr<TensorImpl>& t, const float* g,
                    size_t n) {
  if (!Wants(t)) return;
  t->EnsureGrad();
  float* dst = t->grad.data();
  for (size_t i = 0; i < n; ++i) dst[i] += g[i];
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  PREQR_CHECK(a.shape() == b.shape());
  std::vector<float> out(a.vec());
  const float* pb = b.data();
  for (size_t i = 0; i < out.size(); ++i) out[i] += pb[i];
  auto ai = a.impl(), bi = b.impl();
  return MakeOp(a.shape(), std::move(out), {a, b}, [ai, bi](TensorImpl* self) {
    AccumulateGrad(ai, self->grad.data(), self->grad.size());
    AccumulateGrad(bi, self->grad.data(), self->grad.size());
  });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  PREQR_CHECK(a.shape() == b.shape());
  std::vector<float> out(a.vec());
  const float* pb = b.data();
  for (size_t i = 0; i < out.size(); ++i) out[i] -= pb[i];
  auto ai = a.impl(), bi = b.impl();
  return MakeOp(a.shape(), std::move(out), {a, b}, [ai, bi](TensorImpl* self) {
    AccumulateGrad(ai, self->grad.data(), self->grad.size());
    if (!Wants(bi)) return;
    bi->EnsureGrad();
    for (size_t i = 0; i < self->grad.size(); ++i) bi->grad[i] -= self->grad[i];
  });
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  PREQR_CHECK(a.shape() == b.shape());
  std::vector<float> out(a.vec());
  const float* pb = b.data();
  for (size_t i = 0; i < out.size(); ++i) out[i] *= pb[i];
  auto ai = a.impl(), bi = b.impl();
  return MakeOp(a.shape(), std::move(out), {a, b}, [ai, bi](TensorImpl* self) {
    const size_t n = self->grad.size();
    if (Wants(ai)) {
      ai->EnsureGrad();
      for (size_t i = 0; i < n; ++i) ai->grad[i] += self->grad[i] * bi->data[i];
    }
    if (Wants(bi)) {
      bi->EnsureGrad();
      for (size_t i = 0; i < n; ++i) bi->grad[i] += self->grad[i] * ai->data[i];
    }
  });
}

Tensor Scale(const Tensor& a, float c) {
  std::vector<float> out(a.vec());
  for (auto& x : out) x *= c;
  auto ai = a.impl();
  return MakeOp(a.shape(), std::move(out), {a}, [ai, c](TensorImpl* self) {
    if (!Wants(ai)) return;
    ai->EnsureGrad();
    for (size_t i = 0; i < self->grad.size(); ++i) {
      ai->grad[i] += self->grad[i] * c;
    }
  });
}

Tensor AddScalar(const Tensor& a, float c) {
  std::vector<float> out(a.vec());
  for (auto& x : out) x += c;
  auto ai = a.impl();
  return MakeOp(a.shape(), std::move(out), {a}, [ai](TensorImpl* self) {
    AccumulateGrad(ai, self->grad.data(), self->grad.size());
  });
}

Tensor AddBias(const Tensor& x, const Tensor& bias) {
  PREQR_CHECK_EQ(bias.ndim(), 1);
  const int d = bias.dim(0);
  PREQR_CHECK_EQ(x.dim(x.ndim() - 1), d);
  std::vector<float> out(x.vec());
  const float* pb = bias.data();
  const size_t rows = out.size() / static_cast<size_t>(d);
  for (size_t r = 0; r < rows; ++r) {
    float* row = out.data() + r * static_cast<size_t>(d);
    for (int j = 0; j < d; ++j) row[j] += pb[j];
  }
  auto xi = x.impl(), bi = bias.impl();
  return MakeOp(x.shape(), std::move(out), {x, bias},
                [xi, bi, d](TensorImpl* self) {
                  AccumulateGrad(xi, self->grad.data(), self->grad.size());
                  if (!Wants(bi)) return;
                  bi->EnsureGrad();
                  const size_t rows =
                      self->grad.size() / static_cast<size_t>(d);
                  // dbias reduces over rows; partition over columns so each
                  // bias element accumulates in row order (deterministic).
                  ParallelFor(
                      0, d, GrainForCost(static_cast<int64_t>(rows)),
                      [&](int64_t j0, int64_t j1) {
                        for (int64_t j = j0; j < j1; ++j) {
                          for (size_t r = 0; r < rows; ++r) {
                            bi->grad[static_cast<size_t>(j)] +=
                                self->grad[r * static_cast<size_t>(d) +
                                           static_cast<size_t>(j)];
                          }
                        }
                      });
                });
}

namespace {
template <typename Fwd, typename Bwd>
Tensor Unary(const Tensor& x, Fwd fwd, Bwd bwd_from_xy) {
  std::vector<float> out(x.vec().size());
  const float* px = x.data();
  for (size_t i = 0; i < out.size(); ++i) out[i] = fwd(px[i]);
  auto xi = x.impl();
  return MakeOp(x.shape(), std::move(out), {x},
                [xi, bwd_from_xy](TensorImpl* self) {
                  if (!Wants(xi)) return;
                  xi->EnsureGrad();
                  for (size_t i = 0; i < self->grad.size(); ++i) {
                    xi->grad[i] +=
                        self->grad[i] * bwd_from_xy(xi->data[i], self->data[i]);
                  }
                });
}
}  // namespace

Tensor Relu(const Tensor& x) {
  return Unary(
      x, [](float v) { return v > 0.0f ? v : 0.0f; },
      [](float v, float) { return v > 0.0f ? 1.0f : 0.0f; });
}

Tensor Gelu(const Tensor& x) {
  constexpr float kC = 0.7978845608028654f;  // sqrt(2/pi)
  return Unary(
      x,
      [](float v) {
        const float u = kC * (v + 0.044715f * v * v * v);
        return 0.5f * v * (1.0f + std::tanh(u));
      },
      [](float v, float) {
        const float u = kC * (v + 0.044715f * v * v * v);
        const float t = std::tanh(u);
        const float du = kC * (1.0f + 3.0f * 0.044715f * v * v);
        return 0.5f * (1.0f + t) + 0.5f * v * (1.0f - t * t) * du;
      });
}

Tensor Tanh(const Tensor& x) {
  return Unary(
      x, [](float v) { return std::tanh(v); },
      [](float, float y) { return 1.0f - y * y; });
}

Tensor Sigmoid(const Tensor& x) {
  return Unary(
      x, [](float v) { return 1.0f / (1.0f + std::exp(-v)); },
      [](float, float y) { return y * (1.0f - y); });
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  PREQR_CHECK_EQ(a.ndim(), 2);
  PREQR_CHECK_EQ(b.ndim(), 2);
  const int m = a.dim(0), k = a.dim(1), n = b.dim(1);
  PREQR_CHECK_EQ(b.dim(0), k);
  std::vector<float> out(static_cast<size_t>(m) * n, 0.0f);
  const float* pa = a.data();
  const float* pb = b.data();
  // Rows of the output are independent, so the row range parallelizes with
  // bitwise-identical results for any thread count (each row runs the same
  // serial ikj loop: streaming access on b and out).
  ParallelFor(0, m, GrainForCost(static_cast<int64_t>(k) * n),
              [&](int64_t r0, int64_t r1) {
                for (int64_t i = r0; i < r1; ++i) {
                  float* orow = out.data() + static_cast<size_t>(i) * n;
                  const float* arow = pa + static_cast<size_t>(i) * k;
                  for (int kk = 0; kk < k; ++kk) {
                    const float av = arow[kk];
                    if (av == 0.0f) continue;
                    const float* brow = pb + static_cast<size_t>(kk) * n;
                    for (int j = 0; j < n; ++j) orow[j] += av * brow[j];
                  }
                }
              });
  auto ai = a.impl(), bi = b.impl();
  return MakeOp({m, n}, std::move(out), {a, b},
                [ai, bi, m, k, n](TensorImpl* self) {
                  const float* g = self->grad.data();
                  // dA = G * B^T: rows of dA are independent.
                  if (Wants(ai)) {
                  ai->EnsureGrad();
                  ParallelFor(
                      0, m, GrainForCost(static_cast<int64_t>(k) * n),
                      [&](int64_t r0, int64_t r1) {
                        for (int64_t i = r0; i < r1; ++i) {
                          float* da =
                              ai->grad.data() + static_cast<size_t>(i) * k;
                          const float* grow = g + static_cast<size_t>(i) * n;
                          for (int kk = 0; kk < k; ++kk) {
                            const float* brow =
                                bi->data.data() + static_cast<size_t>(kk) * n;
                            float acc = 0.0f;
                            for (int j = 0; j < n; ++j)
                              acc += grow[j] * brow[j];
                            da[kk] += acc;
                          }
                        }
                      });
                  }
                  // dB = A^T * G: rows of dB (indexed by kk) are
                  // independent; each keeps the serial i-order accumulation.
                  if (Wants(bi)) {
                  bi->EnsureGrad();
                  ParallelFor(
                      0, k, GrainForCost(static_cast<int64_t>(m) * n),
                      [&](int64_t k0, int64_t k1) {
                        for (int64_t kk = k0; kk < k1; ++kk) {
                          float* db =
                              bi->grad.data() + static_cast<size_t>(kk) * n;
                          for (int i = 0; i < m; ++i) {
                            const float av =
                                ai->data[static_cast<size_t>(i) * k +
                                         static_cast<size_t>(kk)];
                            if (av == 0.0f) continue;
                            const float* grow = g + static_cast<size_t>(i) * n;
                            for (int j = 0; j < n; ++j) db[j] += av * grow[j];
                          }
                        }
                      });
                  }
                });
}

Tensor Transpose(const Tensor& a) {
  PREQR_CHECK_EQ(a.ndim(), 2);
  const int m = a.dim(0), n = a.dim(1);
  std::vector<float> out(static_cast<size_t>(m) * n);
  const float* pa = a.data();
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      out[static_cast<size_t>(j) * m + i] = pa[static_cast<size_t>(i) * n + j];
    }
  }
  auto ai = a.impl();
  return MakeOp({n, m}, std::move(out), {a}, [ai, m, n](TensorImpl* self) {
    if (!Wants(ai)) return;
    ai->EnsureGrad();
    for (int i = 0; i < m; ++i) {
      for (int j = 0; j < n; ++j) {
        ai->grad[static_cast<size_t>(i) * n + j] +=
            self->grad[static_cast<size_t>(j) * m + i];
      }
    }
  });
}

Tensor SoftmaxLastDim(const Tensor& x) {
  const int d = x.dim(x.ndim() - 1);
  std::vector<float> out(x.vec().size());
  const float* px = x.data();
  const size_t rows = out.size() / static_cast<size_t>(d);
  // Softmax rows (attention rows) are independent: parallel over rows.
  ParallelFor(0, static_cast<int64_t>(rows), GrainForCost(d),
              [&](int64_t r0, int64_t r1) {
                for (int64_t r = r0; r < r1; ++r) {
                  const float* in = px + static_cast<size_t>(r) * d;
                  float* o = out.data() + static_cast<size_t>(r) * d;
                  float mx = in[0];
                  for (int j = 1; j < d; ++j) mx = std::max(mx, in[j]);
                  float sum = 0.0f;
                  for (int j = 0; j < d; ++j) {
                    o[j] = std::exp(in[j] - mx);
                    sum += o[j];
                  }
                  const float inv = 1.0f / sum;
                  for (int j = 0; j < d; ++j) o[j] *= inv;
                }
              });
  auto xi = x.impl();
  return MakeOp(x.shape(), std::move(out), {x}, [xi, d](TensorImpl* self) {
    if (!Wants(xi)) return;
    xi->EnsureGrad();
    const size_t rows2 = self->grad.size() / static_cast<size_t>(d);
    ParallelFor(0, static_cast<int64_t>(rows2), GrainForCost(d),
                [&](int64_t r0, int64_t r1) {
                  for (int64_t r = r0; r < r1; ++r) {
                    const float* y =
                        self->data.data() + static_cast<size_t>(r) * d;
                    const float* g =
                        self->grad.data() + static_cast<size_t>(r) * d;
                    float dot = 0.0f;
                    for (int j = 0; j < d; ++j) dot += y[j] * g[j];
                    float* dx = xi->grad.data() + static_cast<size_t>(r) * d;
                    for (int j = 0; j < d; ++j) dx[j] += y[j] * (g[j] - dot);
                  }
                });
  });
}

Tensor LayerNormOp(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                   float eps) {
  PREQR_CHECK_EQ(x.ndim(), 2);
  const int n = x.dim(0), d = x.dim(1);
  PREQR_CHECK_EQ(gamma.dim(0), d);
  PREQR_CHECK_EQ(beta.dim(0), d);
  std::vector<float> out(static_cast<size_t>(n) * d);
  std::vector<float> xhat(out.size());
  std::vector<float> inv_std(static_cast<size_t>(n));
  const float* px = x.data();
  const float* pg = gamma.data();
  const float* pb = beta.data();
  // Row statistics are independent: parallel over rows.
  ParallelFor(0, n, GrainForCost(d), [&](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      const float* row = px + static_cast<size_t>(i) * d;
      float mean = 0.0f;
      for (int j = 0; j < d; ++j) mean += row[j];
      mean /= static_cast<float>(d);
      float var = 0.0f;
      for (int j = 0; j < d; ++j) {
        const float c = row[j] - mean;
        var += c * c;
      }
      var /= static_cast<float>(d);
      const float istd = 1.0f / std::sqrt(var + eps);
      inv_std[static_cast<size_t>(i)] = istd;
      float* xh = xhat.data() + static_cast<size_t>(i) * d;
      float* o = out.data() + static_cast<size_t>(i) * d;
      for (int j = 0; j < d; ++j) {
        xh[j] = (row[j] - mean) * istd;
        o[j] = xh[j] * pg[j] + pb[j];
      }
    }
  });
  auto xi = x.impl(), gi = gamma.impl(), bi = beta.impl();
  auto xhat_s = std::make_shared<std::vector<float>>(std::move(xhat));
  auto istd_s = std::make_shared<std::vector<float>>(std::move(inv_std));
  return MakeOp(
      x.shape(), std::move(out), {x, gamma, beta},
      [xi, gi, bi, xhat_s, istd_s, n, d](TensorImpl* self) {
        xi->EnsureGrad();
        gi->EnsureGrad();
        bi->EnsureGrad();
        const bool want_x = Wants(xi);
        // dgamma/dbeta reduce over rows. Partitioning over *columns* keeps
        // every destination element accumulating in row order, so results
        // stay bitwise-identical to the serial pass for any thread count.
        ParallelFor(0, d, GrainForCost(n), [&](int64_t j0, int64_t j1) {
          for (int64_t j = j0; j < j1; ++j) {
            for (int i = 0; i < n; ++i) {
              const float* g = self->grad.data() + static_cast<size_t>(i) * d;
              const float* xh = xhat_s->data() + static_cast<size_t>(i) * d;
              gi->grad[static_cast<size_t>(j)] += g[j] * xh[j];
              bi->grad[static_cast<size_t>(j)] += g[j];
            }
          }
        });
        if (!want_x) return;
        // dx rows are independent given the per-row sums.
        ParallelFor(0, n, GrainForCost(d), [&](int64_t r0, int64_t r1) {
          for (int64_t i = r0; i < r1; ++i) {
            const float* g = self->grad.data() + static_cast<size_t>(i) * d;
            const float* xh = xhat_s->data() + static_cast<size_t>(i) * d;
            const float istd = (*istd_s)[static_cast<size_t>(i)];
            // dxhat = g * gamma; dx via standard layernorm backward.
            float sum_dxh = 0.0f, sum_dxh_xh = 0.0f;
            for (int j = 0; j < d; ++j) {
              const float dxh = g[j] * gi->data[j];
              sum_dxh += dxh;
              sum_dxh_xh += dxh * xh[j];
            }
            float* dx = xi->grad.data() + static_cast<size_t>(i) * d;
            const float invd = 1.0f / static_cast<float>(d);
            for (int j = 0; j < d; ++j) {
              const float dxh = g[j] * gi->data[j];
              dx[j] +=
                  istd * (dxh - invd * sum_dxh - xh[j] * invd * sum_dxh_xh);
            }
          }
        });
      });
}

Tensor Sum(const Tensor& x) {
  float s = 0.0f;
  for (float v : x.vec()) s += v;
  auto xi = x.impl();
  return MakeOp({1}, {s}, {x}, [xi](TensorImpl* self) {
    if (!Wants(xi)) return;
    xi->EnsureGrad();
    const float g = self->grad[0];
    for (auto& v : xi->grad) v += g;
  });
}

Tensor Mean(const Tensor& x) {
  const float invn = 1.0f / static_cast<float>(x.size());
  float s = 0.0f;
  for (float v : x.vec()) s += v;
  auto xi = x.impl();
  return MakeOp({1}, {s * invn}, {x}, [xi, invn](TensorImpl* self) {
    if (!Wants(xi)) return;
    xi->EnsureGrad();
    const float g = self->grad[0] * invn;
    for (auto& v : xi->grad) v += g;
  });
}

Tensor MeanRows(const Tensor& x) {
  PREQR_CHECK_EQ(x.ndim(), 2);
  const int n = x.dim(0), d = x.dim(1);
  std::vector<float> out(static_cast<size_t>(d), 0.0f);
  const float* px = x.data();
  for (int i = 0; i < n; ++i) {
    const float* row = px + static_cast<size_t>(i) * d;
    for (int j = 0; j < d; ++j) out[static_cast<size_t>(j)] += row[j];
  }
  const float invn = 1.0f / static_cast<float>(n);
  for (auto& v : out) v *= invn;
  auto xi = x.impl();
  return MakeOp({d}, std::move(out), {x}, [xi, n, d, invn](TensorImpl* self) {
    if (!Wants(xi)) return;
    xi->EnsureGrad();
    for (int i = 0; i < n; ++i) {
      float* dx = xi->grad.data() + static_cast<size_t>(i) * d;
      for (int j = 0; j < d; ++j) dx[j] += self->grad[static_cast<size_t>(j)] * invn;
    }
  });
}

Tensor MaxRows(const Tensor& x) {
  PREQR_CHECK_EQ(x.ndim(), 2);
  const int n = x.dim(0), d = x.dim(1);
  PREQR_CHECK_GT(n, 0);
  std::vector<float> out(static_cast<size_t>(d));
  auto argmax = std::make_shared<std::vector<int>>(static_cast<size_t>(d), 0);
  const float* px = x.data();
  for (int j = 0; j < d; ++j) {
    float best = px[j];
    int best_i = 0;
    for (int i = 1; i < n; ++i) {
      const float v = px[static_cast<size_t>(i) * d + j];
      if (v > best) {
        best = v;
        best_i = i;
      }
    }
    out[static_cast<size_t>(j)] = best;
    (*argmax)[static_cast<size_t>(j)] = best_i;
  }
  auto xi = x.impl();
  return MakeOp({d}, std::move(out), {x}, [xi, argmax, d](TensorImpl* self) {
    if (!Wants(xi)) return;
    xi->EnsureGrad();
    for (int j = 0; j < d; ++j) {
      xi->grad[static_cast<size_t>((*argmax)[static_cast<size_t>(j)]) * d +
               j] += self->grad[static_cast<size_t>(j)];
    }
  });
}

Tensor MeanRowsSubset(const Tensor& x, const std::vector<int>& rows) {
  PREQR_CHECK_EQ(x.ndim(), 2);
  const int d = x.dim(1);
  if (rows.empty()) return Tensor::Zeros({d});
  std::vector<float> out(static_cast<size_t>(d), 0.0f);
  const float* px = x.data();
  for (int r : rows) {
    const float* row = px + static_cast<size_t>(r) * d;
    for (int j = 0; j < d; ++j) out[static_cast<size_t>(j)] += row[j];
  }
  const float inv = 1.0f / static_cast<float>(rows.size());
  for (auto& v : out) v *= inv;
  auto xi = x.impl();
  return MakeOp({d}, std::move(out), {x}, [xi, rows, d, inv](TensorImpl* self) {
    if (!Wants(xi)) return;
    xi->EnsureGrad();
    for (int r : rows) {
      float* dx = xi->grad.data() + static_cast<size_t>(r) * d;
      for (int j = 0; j < d; ++j) dx[j] += self->grad[static_cast<size_t>(j)] * inv;
    }
  });
}

Tensor Reshape(const Tensor& x, Shape new_shape) {
  Index n = 1;
  for (int d : new_shape) n *= d;
  PREQR_CHECK_EQ(n, x.size());
  auto xi = x.impl();
  return MakeOp(std::move(new_shape), std::vector<float>(x.vec()), {x},
                [xi](TensorImpl* self) {
                  AccumulateGrad(xi, self->grad.data(), self->grad.size());
                });
}

Tensor ConcatLastDim(const std::vector<Tensor>& xs) {
  PREQR_CHECK(!xs.empty());
  const int nd = xs[0].ndim();
  size_t rows = 1;
  for (int i = 0; i + 1 < nd; ++i) rows *= static_cast<size_t>(xs[0].dim(i));
  int total_d = 0;
  for (const auto& t : xs) {
    PREQR_CHECK_EQ(t.ndim(), nd);
    size_t r = 1;
    for (int i = 0; i + 1 < nd; ++i) r *= static_cast<size_t>(t.dim(i));
    PREQR_CHECK_EQ(r, rows);
    total_d += t.dim(nd - 1);
  }
  Shape shape = xs[0].shape();
  shape[static_cast<size_t>(nd - 1)] = total_d;
  std::vector<float> out(rows * static_cast<size_t>(total_d));
  std::vector<int> widths;
  widths.reserve(xs.size());
  int off = 0;
  for (const auto& t : xs) {
    const int d = t.dim(nd - 1);
    widths.push_back(d);
    const float* p = t.data();
    for (size_t r = 0; r < rows; ++r) {
      std::copy(p + r * static_cast<size_t>(d),
                p + (r + 1) * static_cast<size_t>(d),
                out.data() + r * static_cast<size_t>(total_d) + off);
    }
    off += d;
  }
  std::vector<std::shared_ptr<TensorImpl>> impls;
  impls.reserve(xs.size());
  for (const auto& t : xs) impls.push_back(t.impl());
  return MakeOp(
      std::move(shape), std::move(out), xs,
      [impls, widths, rows, total_d](TensorImpl* self) {
        int off2 = 0;
        for (size_t t = 0; t < impls.size(); ++t) {
          const int d = widths[t];
          auto& ti = impls[t];
          if (!Wants(ti)) {
            off2 += d;
            continue;
          }
          ti->EnsureGrad();
          for (size_t r = 0; r < rows; ++r) {
            const float* g =
                self->grad.data() + r * static_cast<size_t>(total_d) + off2;
            float* dst = ti->grad.data() + r * static_cast<size_t>(d);
            for (int j = 0; j < d; ++j) dst[j] += g[j];
          }
          off2 += d;
        }
      });
}

Tensor ConcatRows(const std::vector<Tensor>& xs) {
  PREQR_CHECK(!xs.empty());
  size_t inner = xs[0].vec().size() / static_cast<size_t>(xs[0].dim(0));
  int total_rows = 0;
  for (const auto& t : xs) {
    PREQR_CHECK_EQ(t.vec().size() / static_cast<size_t>(t.dim(0)), inner);
    total_rows += t.dim(0);
  }
  Shape shape = xs[0].shape();
  shape[0] = total_rows;
  std::vector<float> out;
  out.reserve(static_cast<size_t>(total_rows) * inner);
  for (const auto& t : xs) {
    out.insert(out.end(), t.vec().begin(), t.vec().end());
  }
  std::vector<std::shared_ptr<TensorImpl>> impls;
  std::vector<size_t> sizes;
  for (const auto& t : xs) {
    impls.push_back(t.impl());
    sizes.push_back(t.vec().size());
  }
  return MakeOp(std::move(shape), std::move(out), xs,
                [impls, sizes](TensorImpl* self) {
                  size_t off = 0;
                  for (size_t t = 0; t < impls.size(); ++t) {
                    AccumulateGrad(impls[t], self->grad.data() + off, sizes[t]);
                    off += sizes[t];
                  }
                });
}

Tensor SliceLastDim(const Tensor& x, int start, int len) {
  const int nd = x.ndim();
  const int d = x.dim(nd - 1);
  PREQR_CHECK_GE(start, 0);
  PREQR_CHECK_LE(start + len, d);
  const size_t rows = x.vec().size() / static_cast<size_t>(d);
  Shape shape = x.shape();
  shape[static_cast<size_t>(nd - 1)] = len;
  std::vector<float> out(rows * static_cast<size_t>(len));
  const float* px = x.data();
  for (size_t r = 0; r < rows; ++r) {
    std::copy(px + r * static_cast<size_t>(d) + start,
              px + r * static_cast<size_t>(d) + start + len,
              out.data() + r * static_cast<size_t>(len));
  }
  auto xi = x.impl();
  return MakeOp(std::move(shape), std::move(out), {x},
                [xi, start, len, d, rows](TensorImpl* self) {
                  if (!Wants(xi)) return;
                  xi->EnsureGrad();
                  for (size_t r = 0; r < rows; ++r) {
                    const float* g =
                        self->grad.data() + r * static_cast<size_t>(len);
                    float* dst =
                        xi->grad.data() + r * static_cast<size_t>(d) + start;
                    for (int j = 0; j < len; ++j) dst[j] += g[j];
                  }
                });
}

Tensor SliceRows(const Tensor& x, int start, int len) {
  const int n = x.dim(0);
  PREQR_CHECK_GE(start, 0);
  PREQR_CHECK_LE(start + len, n);
  const size_t inner = x.vec().size() / static_cast<size_t>(n);
  Shape shape = x.shape();
  shape[0] = len;
  std::vector<float> out(
      x.vec().begin() + static_cast<long>(static_cast<size_t>(start) * inner),
      x.vec().begin() +
          static_cast<long>(static_cast<size_t>(start + len) * inner));
  auto xi = x.impl();
  return MakeOp(std::move(shape), std::move(out), {x},
                [xi, start, inner](TensorImpl* self) {
                  if (!Wants(xi)) return;
                  xi->EnsureGrad();
                  float* dst =
                      xi->grad.data() + static_cast<size_t>(start) * inner;
                  for (size_t i = 0; i < self->grad.size(); ++i) {
                    dst[i] += self->grad[i];
                  }
                });
}

Tensor Gather(const Tensor& weight, const std::vector<int>& ids) {
  PREQR_CHECK_EQ(weight.ndim(), 2);
  const int v = weight.dim(0), d = weight.dim(1);
  const int n = static_cast<int>(ids.size());
  std::vector<float> out(static_cast<size_t>(n) * d);
  const float* pw = weight.data();
  for (int i = 0; i < n; ++i) {
    PREQR_CHECK_GE(ids[static_cast<size_t>(i)], 0);
    PREQR_CHECK_LT(ids[static_cast<size_t>(i)], v);
    std::copy(pw + static_cast<size_t>(ids[static_cast<size_t>(i)]) * d,
              pw + static_cast<size_t>(ids[static_cast<size_t>(i)] + 1) * d,
              out.data() + static_cast<size_t>(i) * d);
  }
  auto wi = weight.impl();
  return MakeOp(
      {n, d}, std::move(out), {weight}, [wi, ids, d](TensorImpl* self) {
        if (!Wants(wi)) return;
        wi->EnsureGrad();
        // Embedding scatter: several positions may hit the same vocabulary
        // row, so the scatter is grouped by destination row. Each group
        // accumulates its positions in ascending position order — exactly
        // the serial order — so any split of groups across threads is
        // bitwise-identical to the single-thread pass.
        std::vector<int> by_dest(ids.size());
        std::iota(by_dest.begin(), by_dest.end(), 0);
        std::stable_sort(by_dest.begin(), by_dest.end(),
                         [&ids](int a, int b) {
                           return ids[static_cast<size_t>(a)] <
                                  ids[static_cast<size_t>(b)];
                         });
        std::vector<size_t> group_start;
        for (size_t i = 0; i < by_dest.size(); ++i) {
          if (i == 0 || ids[static_cast<size_t>(by_dest[i])] !=
                            ids[static_cast<size_t>(by_dest[i - 1])]) {
            group_start.push_back(i);
          }
        }
        group_start.push_back(by_dest.size());
        const int64_t ngroups =
            static_cast<int64_t>(group_start.size()) - 1;
        ParallelFor(0, ngroups, GrainForCost(d), [&](int64_t g0, int64_t g1) {
          for (int64_t gidx = g0; gidx < g1; ++gidx) {
            for (size_t i = group_start[static_cast<size_t>(gidx)];
                 i < group_start[static_cast<size_t>(gidx) + 1]; ++i) {
              const size_t pos = static_cast<size_t>(by_dest[i]);
              const float* g =
                  self->grad.data() + pos * static_cast<size_t>(d);
              float* dst =
                  wi->grad.data() + static_cast<size_t>(ids[pos]) * d;
              for (int j = 0; j < d; ++j) dst[j] += g[j];
            }
          }
        });
      });
}

Tensor SparseAggregate(const Tensor& h, const std::vector<Edge>& edges,
                       const std::vector<float>& norm) {
  PREQR_CHECK_EQ(h.ndim(), 2);
  PREQR_CHECK_EQ(edges.size(), norm.size());
  const int n = h.dim(0), d = h.dim(1);
  std::vector<float> out(static_cast<size_t>(n) * d, 0.0f);
  const float* ph = h.data();
  for (size_t e = 0; e < edges.size(); ++e) {
    const float w = norm[e];
    const float* src = ph + static_cast<size_t>(edges[e].src) * d;
    float* dst = out.data() + static_cast<size_t>(edges[e].dst) * d;
    for (int j = 0; j < d; ++j) dst[j] += w * src[j];
  }
  auto hi = h.impl();
  return MakeOp({n, d}, std::move(out), {h},
                [hi, edges, norm, d](TensorImpl* self) {
                  if (!Wants(hi)) return;
                  hi->EnsureGrad();
                  for (size_t e = 0; e < edges.size(); ++e) {
                    const float w = norm[e];
                    const float* g = self->grad.data() +
                                     static_cast<size_t>(edges[e].dst) * d;
                    float* dst = hi->grad.data() +
                                 static_cast<size_t>(edges[e].src) * d;
                    for (int j = 0; j < d; ++j) dst[j] += w * g[j];
                  }
                });
}

Tensor CrossEntropy(const Tensor& logits, const std::vector<int>& targets,
                    int ignore_index) {
  PREQR_CHECK_EQ(logits.ndim(), 2);
  const int n = logits.dim(0), c = logits.dim(1);
  PREQR_CHECK_EQ(static_cast<int>(targets.size()), n);
  // Softmax probabilities (saved for backward).
  auto probs = std::make_shared<std::vector<float>>(
      static_cast<size_t>(n) * c);
  const float* pl = logits.data();
  // Per-row softmax + log-loss in parallel; the (order-sensitive) double
  // accumulation then runs serially in row order so the total is
  // bitwise-identical for every thread count.
  std::vector<double> row_loss(static_cast<size_t>(n), 0.0);
  ParallelFor(0, n, GrainForCost(c), [&](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      const float* row = pl + static_cast<size_t>(i) * c;
      float* pr = probs->data() + static_cast<size_t>(i) * c;
      float mx = row[0];
      for (int j = 1; j < c; ++j) mx = std::max(mx, row[j]);
      float sum = 0.0f;
      for (int j = 0; j < c; ++j) {
        pr[j] = std::exp(row[j] - mx);
        sum += pr[j];
      }
      const float inv = 1.0f / sum;
      for (int j = 0; j < c; ++j) pr[j] *= inv;
      const int t = targets[static_cast<size_t>(i)];
      if (t == ignore_index) continue;
      PREQR_CHECK_GE(t, 0);
      PREQR_CHECK_LT(t, c);
      row_loss[static_cast<size_t>(i)] = -std::log(std::max(pr[t], 1e-12f));
    }
  });
  int valid = 0;
  double loss = 0.0;
  for (int i = 0; i < n; ++i) {
    if (targets[static_cast<size_t>(i)] == ignore_index) continue;
    ++valid;
    loss += row_loss[static_cast<size_t>(i)];
  }
  const float mean_loss =
      valid > 0 ? static_cast<float>(loss / valid) : 0.0f;
  auto li = logits.impl();
  return MakeOp(
      {1}, {mean_loss}, {logits},
      [li, probs, targets, ignore_index, n, c, valid](TensorImpl* self) {
        if (valid == 0 || !Wants(li)) return;
        li->EnsureGrad();
        const float g = self->grad[0] / static_cast<float>(valid);
        ParallelFor(0, n, GrainForCost(c), [&](int64_t r0, int64_t r1) {
          for (int64_t i = r0; i < r1; ++i) {
            const int t = targets[static_cast<size_t>(i)];
            if (t == ignore_index) continue;
            const float* pr = probs->data() + static_cast<size_t>(i) * c;
            float* dl = li->grad.data() + static_cast<size_t>(i) * c;
            for (int j = 0; j < c; ++j) {
              dl[j] += g * (pr[j] - (j == t ? 1.0f : 0.0f));
            }
          }
        });
      });
}

Tensor MseLoss(const Tensor& pred, const std::vector<float>& target) {
  PREQR_CHECK_EQ(pred.vec().size(), target.size());
  const size_t n = target.size();
  double loss = 0.0;
  const float* pp = pred.data();
  for (size_t i = 0; i < n; ++i) {
    const double diff = pp[i] - target[i];
    loss += diff * diff;
  }
  const float mean_loss = static_cast<float>(loss / static_cast<double>(n));
  auto pi = pred.impl();
  return MakeOp({1}, {mean_loss}, {pred},
                [pi, target, n](TensorImpl* self) {
                  if (!Wants(pi)) return;
                  pi->EnsureGrad();
                  const float g =
                      self->grad[0] * 2.0f / static_cast<float>(n);
                  for (size_t i = 0; i < n; ++i) {
                    pi->grad[i] += g * (pi->data[i] - target[i]);
                  }
                });
}

Tensor Dropout(const Tensor& x, float p, Rng& rng, bool train) {
  if (!train || p <= 0.0f) return x;
  const float scale = 1.0f / (1.0f - p);
  auto mask = std::make_shared<std::vector<float>>(x.vec().size());
  std::vector<float> out(x.vec().size());
  const float* px = x.data();
  for (size_t i = 0; i < out.size(); ++i) {
    const float m = rng.NextFloat() < p ? 0.0f : scale;
    (*mask)[i] = m;
    out[i] = px[i] * m;
  }
  auto xi = x.impl();
  return MakeOp(x.shape(), std::move(out), {x}, [xi, mask](TensorImpl* self) {
    if (!Wants(xi)) return;
    xi->EnsureGrad();
    for (size_t i = 0; i < self->grad.size(); ++i) {
      xi->grad[i] += self->grad[i] * (*mask)[i];
    }
  });
}

}  // namespace preqr::nn
