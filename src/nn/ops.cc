#include "nn/ops.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "nn/kernels.h"
#include "nn/kernels_dispatch.h"
#include "nn/quant.h"

// Tape-wiring layer: every op here (1) validates shapes, (2) calls its
// compute kernel from nn/kernels.h, and (3) — only when grad mode is on
// and some input requires grad — wires parents + a grad_fn closure that
// calls the matching backward kernels. Under NoGradGuard step (3) is
// skipped entirely: no closure, no parent references, and the output's
// storage comes from the thread-local BufferPool (see tensor.cc).
//
// The hot forward kernels go through kernels::Active() (runtime-dispatched
// scalar/AVX2, see kernels_dispatch.h). Every backward kernel is called
// directly — the grad path stays scalar and bitwise-unchanged.

namespace preqr::nn {

namespace {

// True if this op must record itself on the tape: grad mode is on and at
// least one input requires grad. The variadic form avoids materializing a
// parents vector on the (tape-off) fast path.
template <typename... Ts>
bool NeedsTape(const Ts&... parents) {
  return GradMode::enabled() && (... || parents.requires_grad());
}

bool NeedsTape(const std::vector<Tensor>& parents) {
  if (!GradMode::enabled()) return false;
  for (const auto& p : parents) {
    if (p.requires_grad()) return true;
  }
  return false;
}

// True if gradients should flow into `t`: it is a parameter/leaf that
// requires grad, or an intermediate whose own grad_fn needs them.
bool Wants(const std::shared_ptr<TensorImpl>& t) {
  return t->requires_grad || !t->parents.empty();
}

void AccumulateGrad(const std::shared_ptr<TensorImpl>& t, const float* g,
                    size_t n) {
  if (!Wants(t)) return;
  t->EnsureGrad();
  kernels::Accumulate(g, t->grad.data(), n);
}

// Records the op on the tape: marks the output as grad-carrying and
// attaches its parents and backward closure. Callers must have checked
// NeedsTape first.
void Wire(Tensor& out, std::vector<std::shared_ptr<TensorImpl>> parents,
          std::function<void(TensorImpl*)> grad_fn) {
  out.impl()->requires_grad = true;
  out.impl()->parents = std::move(parents);
  out.impl()->grad_fn = std::move(grad_fn);
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  PREQR_CHECK(a.shape() == b.shape());
  Tensor out = Tensor::Zeros(a.shape());
  kernels::AddForward(a.data(), b.data(), out.data(), out.vec().size());
  if (!NeedsTape(a, b)) return out;
  auto ai = a.impl(), bi = b.impl();
  Wire(out, {ai, bi}, [ai, bi](TensorImpl* self) {
    AccumulateGrad(ai, self->grad.data(), self->grad.size());
    AccumulateGrad(bi, self->grad.data(), self->grad.size());
  });
  return out;
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  PREQR_CHECK(a.shape() == b.shape());
  Tensor out = Tensor::Zeros(a.shape());
  kernels::SubForward(a.data(), b.data(), out.data(), out.vec().size());
  if (!NeedsTape(a, b)) return out;
  auto ai = a.impl(), bi = b.impl();
  Wire(out, {ai, bi}, [ai, bi](TensorImpl* self) {
    AccumulateGrad(ai, self->grad.data(), self->grad.size());
    if (!Wants(bi)) return;
    bi->EnsureGrad();
    kernels::AccumulateNeg(self->grad.data(), bi->grad.data(),
                           self->grad.size());
  });
  return out;
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  PREQR_CHECK(a.shape() == b.shape());
  Tensor out = Tensor::Zeros(a.shape());
  kernels::MulForward(a.data(), b.data(), out.data(), out.vec().size());
  if (!NeedsTape(a, b)) return out;
  auto ai = a.impl(), bi = b.impl();
  Wire(out, {ai, bi}, [ai, bi](TensorImpl* self) {
    const size_t n = self->grad.size();
    if (Wants(ai)) {
      ai->EnsureGrad();
      kernels::AccumulateMul(self->grad.data(), bi->data.data(),
                             ai->grad.data(), n);
    }
    if (Wants(bi)) {
      bi->EnsureGrad();
      kernels::AccumulateMul(self->grad.data(), ai->data.data(),
                             bi->grad.data(), n);
    }
  });
  return out;
}

Tensor Scale(const Tensor& a, float c) {
  Tensor out = Tensor::Zeros(a.shape());
  kernels::ScaleForward(a.data(), c, out.data(), out.vec().size());
  if (!NeedsTape(a)) return out;
  auto ai = a.impl();
  Wire(out, {ai}, [ai, c](TensorImpl* self) {
    if (!Wants(ai)) return;
    ai->EnsureGrad();
    kernels::AccumulateScaled(self->grad.data(), c, ai->grad.data(),
                              self->grad.size());
  });
  return out;
}

Tensor AddScalar(const Tensor& a, float c) {
  Tensor out = Tensor::Zeros(a.shape());
  kernels::AddScalarForward(a.data(), c, out.data(), out.vec().size());
  if (!NeedsTape(a)) return out;
  auto ai = a.impl();
  Wire(out, {ai}, [ai](TensorImpl* self) {
    AccumulateGrad(ai, self->grad.data(), self->grad.size());
  });
  return out;
}

Tensor AddBias(const Tensor& x, const Tensor& bias) {
  PREQR_CHECK_EQ(bias.ndim(), 1);
  const int d = bias.dim(0);
  PREQR_CHECK_EQ(x.dim(x.ndim() - 1), d);
  const size_t rows = x.vec().size() / static_cast<size_t>(d);
  Tensor out = Tensor::Zeros(x.shape());
  kernels::Active().AddBiasForward(x.data(), bias.data(), out.data(), rows, d);
  if (!NeedsTape(x, bias)) return out;
  auto xi = x.impl(), bi = bias.impl();
  Wire(out, {xi, bi}, [xi, bi, d](TensorImpl* self) {
    AccumulateGrad(xi, self->grad.data(), self->grad.size());
    if (!Wants(bi)) return;
    bi->EnsureGrad();
    const size_t rows2 = self->grad.size() / static_cast<size_t>(d);
    kernels::AddBiasBackwardBias(self->grad.data(), bi->grad.data(), rows2, d);
  });
  return out;
}

Tensor Relu(const Tensor& x) {
  Tensor out = Tensor::Zeros(x.shape());
  kernels::Active().ReluForward(x.data(), out.data(), out.vec().size());
  if (!NeedsTape(x)) return out;
  auto xi = x.impl();
  Wire(out, {xi}, [xi](TensorImpl* self) {
    if (!Wants(xi)) return;
    xi->EnsureGrad();
    kernels::ReluBackward(xi->data.data(), self->grad.data(), xi->grad.data(),
                          self->grad.size());
  });
  return out;
}

Tensor Gelu(const Tensor& x) {
  Tensor out = Tensor::Zeros(x.shape());
  kernels::Active().GeluForward(x.data(), out.data(), out.vec().size());
  if (!NeedsTape(x)) return out;
  auto xi = x.impl();
  Wire(out, {xi}, [xi](TensorImpl* self) {
    if (!Wants(xi)) return;
    xi->EnsureGrad();
    kernels::GeluBackward(xi->data.data(), self->grad.data(), xi->grad.data(),
                          self->grad.size());
  });
  return out;
}

Tensor Tanh(const Tensor& x) {
  Tensor out = Tensor::Zeros(x.shape());
  kernels::Active().TanhForward(x.data(), out.data(), out.vec().size());
  if (!NeedsTape(x)) return out;
  auto xi = x.impl();
  Wire(out, {xi}, [xi](TensorImpl* self) {
    if (!Wants(xi)) return;
    xi->EnsureGrad();
    kernels::TanhBackward(self->data.data(), self->grad.data(),
                          xi->grad.data(), self->grad.size());
  });
  return out;
}

Tensor Sigmoid(const Tensor& x) {
  Tensor out = Tensor::Zeros(x.shape());
  kernels::Active().SigmoidForward(x.data(), out.data(), out.vec().size());
  if (!NeedsTape(x)) return out;
  auto xi = x.impl();
  Wire(out, {xi}, [xi](TensorImpl* self) {
    if (!Wants(xi)) return;
    xi->EnsureGrad();
    kernels::SigmoidBackward(self->data.data(), self->grad.data(),
                             xi->grad.data(), self->grad.size());
  });
  return out;
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  PREQR_CHECK_GE(a.ndim(), 2);
  PREQR_CHECK_EQ(b.ndim(), 2);
  // Leading dims of `a` flatten to independent rows, so [m,k] and batched
  // [B,T,k] inputs run the identical per-row kernel loop.
  const int k = a.dim(a.ndim() - 1), n = b.dim(1);
  PREQR_CHECK_EQ(b.dim(0), k);
  const int m = static_cast<int>(a.vec().size() / static_cast<size_t>(k));
  Shape shape = a.shape();
  shape[static_cast<size_t>(a.ndim() - 1)] = n;
  Tensor out = Tensor::Zeros(std::move(shape));
  // Int8 fast path: inference-only (tape off), thread-opted-in via
  // Int8Guard, and only for weights carrying a calibrated shadow whose
  // shape still matches (a reloaded model swaps shadows atomically with
  // the float data under the service's encode lock).
  if (!GradMode::enabled() && quant::Int8Enabled()) {
    const auto& qw = b.impl()->quant;
    if (qw != nullptr && qw->k == k && qw->n == n) {
      quant::Int8MatMulForward(a.data(), *qw, out.data(), m);
      return out;
    }
  }
  kernels::Active().MatMulForward(a.data(), b.data(), out.data(), m, k, n);
  if (!NeedsTape(a, b)) return out;
  auto ai = a.impl(), bi = b.impl();
  Wire(out, {ai, bi}, [ai, bi, m, k, n](TensorImpl* self) {
    const float* g = self->grad.data();
    if (Wants(ai)) {
      ai->EnsureGrad();
      kernels::MatMulBackwardA(g, bi->data.data(), ai->grad.data(), m, k, n);
    }
    if (Wants(bi)) {
      bi->EnsureGrad();
      kernels::MatMulBackwardB(ai->data.data(), g, bi->grad.data(), m, k, n);
    }
  });
  return out;
}

Tensor Transpose(const Tensor& a) {
  PREQR_CHECK_EQ(a.ndim(), 2);
  const int m = a.dim(0), n = a.dim(1);
  Tensor out = Tensor::Zeros({n, m});
  kernels::TransposeForward(a.data(), out.data(), m, n);
  if (!NeedsTape(a)) return out;
  auto ai = a.impl();
  Wire(out, {ai}, [ai, m, n](TensorImpl* self) {
    if (!Wants(ai)) return;
    ai->EnsureGrad();
    kernels::TransposeBackward(self->grad.data(), ai->grad.data(), m, n);
  });
  return out;
}

Tensor SoftmaxLastDim(const Tensor& x) {
  const int d = x.dim(x.ndim() - 1);
  const size_t rows = x.vec().size() / static_cast<size_t>(d);
  Tensor out = Tensor::Zeros(x.shape());
  kernels::Active().SoftmaxForward(x.data(), out.data(), rows, d);
  if (!NeedsTape(x)) return out;
  auto xi = x.impl();
  Wire(out, {xi}, [xi, d](TensorImpl* self) {
    if (!Wants(xi)) return;
    xi->EnsureGrad();
    const size_t rows2 = self->grad.size() / static_cast<size_t>(d);
    kernels::SoftmaxBackward(self->data.data(), self->grad.data(),
                             xi->grad.data(), rows2, d);
  });
  return out;
}

Tensor LayerNormOp(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                   float eps) {
  PREQR_CHECK_GE(x.ndim(), 2);
  const int d = x.dim(x.ndim() - 1);
  const int n = static_cast<int>(x.vec().size() / static_cast<size_t>(d));
  PREQR_CHECK_EQ(gamma.dim(0), d);
  PREQR_CHECK_EQ(beta.dim(0), d);
  Tensor out = Tensor::Zeros(x.shape());
  const bool tape = NeedsTape(x, gamma, beta);
  // xhat / inv_std are only saved when a backward pass will need them.
  std::shared_ptr<std::vector<float>> xhat_s, istd_s;
  if (tape) {
    xhat_s = std::make_shared<std::vector<float>>(
        static_cast<size_t>(n) * static_cast<size_t>(d));
    istd_s = std::make_shared<std::vector<float>>(static_cast<size_t>(n));
  }
  kernels::Active().LayerNormForward(x.data(), gamma.data(), beta.data(), eps,
                                     out.data(), tape ? xhat_s->data() : nullptr,
                                     tape ? istd_s->data() : nullptr, n, d);
  if (!tape) return out;
  auto xi = x.impl(), gi = gamma.impl(), bi = beta.impl();
  Wire(out, {xi, gi, bi}, [xi, gi, bi, xhat_s, istd_s, n, d](TensorImpl* self) {
    xi->EnsureGrad();
    gi->EnsureGrad();
    bi->EnsureGrad();
    kernels::LayerNormBackwardParams(self->grad.data(), xhat_s->data(),
                                     gi->grad.data(), bi->grad.data(), n, d);
    if (!Wants(xi)) return;
    kernels::LayerNormBackwardInput(self->grad.data(), xhat_s->data(),
                                    istd_s->data(), gi->data.data(),
                                    xi->grad.data(), n, d);
  });
  return out;
}

Tensor Sum(const Tensor& x) {
  Tensor out = Tensor::Zeros({1});
  out.vec()[0] = kernels::SumForward(x.data(), x.vec().size());
  if (!NeedsTape(x)) return out;
  auto xi = x.impl();
  Wire(out, {xi}, [xi](TensorImpl* self) {
    if (!Wants(xi)) return;
    xi->EnsureGrad();
    kernels::AccumulateConst(self->grad[0], xi->grad.data(), xi->grad.size());
  });
  return out;
}

Tensor Mean(const Tensor& x) {
  const float invn = 1.0f / static_cast<float>(x.size());
  Tensor out = Tensor::Zeros({1});
  out.vec()[0] = kernels::SumForward(x.data(), x.vec().size()) * invn;
  if (!NeedsTape(x)) return out;
  auto xi = x.impl();
  Wire(out, {xi}, [xi, invn](TensorImpl* self) {
    if (!Wants(xi)) return;
    xi->EnsureGrad();
    kernels::AccumulateConst(self->grad[0] * invn, xi->grad.data(),
                             xi->grad.size());
  });
  return out;
}

Tensor MeanRows(const Tensor& x) {
  PREQR_CHECK_EQ(x.ndim(), 2);
  const int n = x.dim(0), d = x.dim(1);
  Tensor out = Tensor::Zeros({d});
  kernels::MeanRowsForward(x.data(), out.data(), n, d);
  if (!NeedsTape(x)) return out;
  const float invn = 1.0f / static_cast<float>(n);
  auto xi = x.impl();
  Wire(out, {xi}, [xi, n, d, invn](TensorImpl* self) {
    if (!Wants(xi)) return;
    xi->EnsureGrad();
    kernels::MeanRowsBackward(self->grad.data(), invn, xi->grad.data(), n, d);
  });
  return out;
}

Tensor MaxRows(const Tensor& x) {
  PREQR_CHECK_EQ(x.ndim(), 2);
  const int n = x.dim(0), d = x.dim(1);
  PREQR_CHECK_GT(n, 0);
  Tensor out = Tensor::Zeros({d});
  const bool tape = NeedsTape(x);
  std::shared_ptr<std::vector<int>> argmax;
  if (tape) {
    argmax = std::make_shared<std::vector<int>>(static_cast<size_t>(d), 0);
  }
  kernels::MaxRowsForward(x.data(), out.data(),
                          tape ? argmax->data() : nullptr, n, d);
  if (!tape) return out;
  auto xi = x.impl();
  Wire(out, {xi}, [xi, argmax, d](TensorImpl* self) {
    if (!Wants(xi)) return;
    xi->EnsureGrad();
    kernels::MaxRowsBackward(self->grad.data(), argmax->data(),
                             xi->grad.data(), d);
  });
  return out;
}

Tensor MeanRowsSubset(const Tensor& x, const std::vector<int>& rows) {
  PREQR_CHECK_EQ(x.ndim(), 2);
  const int d = x.dim(1);
  if (rows.empty()) return Tensor::Zeros({d});
  const float inv = 1.0f / static_cast<float>(rows.size());
  Tensor out = Tensor::Zeros({d});
  kernels::MeanRowsSubsetForward(x.data(), rows, inv, out.data(), d);
  if (!NeedsTape(x)) return out;
  auto xi = x.impl();
  Wire(out, {xi}, [xi, rows, d, inv](TensorImpl* self) {
    if (!Wants(xi)) return;
    xi->EnsureGrad();
    kernels::MeanRowsSubsetBackward(self->grad.data(), rows, inv,
                                    xi->grad.data(), d);
  });
  return out;
}

Tensor Reshape(const Tensor& x, Shape new_shape) {
  Index n = 1;
  for (int d : new_shape) n *= d;
  PREQR_CHECK_EQ(n, x.size());
  Tensor out = Tensor::Zeros(std::move(new_shape));
  kernels::Copy(x.data(), out.data(), x.vec().size());
  if (!NeedsTape(x)) return out;
  auto xi = x.impl();
  Wire(out, {xi}, [xi](TensorImpl* self) {
    AccumulateGrad(xi, self->grad.data(), self->grad.size());
  });
  return out;
}

Tensor ConcatLastDim(const std::vector<Tensor>& xs) {
  PREQR_CHECK(!xs.empty());
  const int nd = xs[0].ndim();
  size_t rows = 1;
  for (int i = 0; i + 1 < nd; ++i) rows *= static_cast<size_t>(xs[0].dim(i));
  int total_d = 0;
  for (const auto& t : xs) {
    PREQR_CHECK_EQ(t.ndim(), nd);
    size_t r = 1;
    for (int i = 0; i + 1 < nd; ++i) r *= static_cast<size_t>(t.dim(i));
    PREQR_CHECK_EQ(r, rows);
    total_d += t.dim(nd - 1);
  }
  Shape shape = xs[0].shape();
  shape[static_cast<size_t>(nd - 1)] = total_d;
  Tensor out = Tensor::Zeros(std::move(shape));
  std::vector<int> widths;
  widths.reserve(xs.size());
  int off = 0;
  for (const auto& t : xs) {
    const int d = t.dim(nd - 1);
    widths.push_back(d);
    kernels::CopyRows(t.data(), static_cast<size_t>(d), out.data() + off,
                      static_cast<size_t>(total_d), rows,
                      static_cast<size_t>(d));
    off += d;
  }
  if (!NeedsTape(xs)) return out;
  std::vector<std::shared_ptr<TensorImpl>> impls;
  impls.reserve(xs.size());
  for (const auto& t : xs) impls.push_back(t.impl());
  Wire(out, impls, [impls, widths, rows, total_d](TensorImpl* self) {
    int off2 = 0;
    for (size_t t = 0; t < impls.size(); ++t) {
      const int d = widths[t];
      auto& ti = impls[t];
      if (!Wants(ti)) {
        off2 += d;
        continue;
      }
      ti->EnsureGrad();
      kernels::AccumulateRows(self->grad.data() + off2,
                              static_cast<size_t>(total_d), ti->grad.data(),
                              static_cast<size_t>(d), rows,
                              static_cast<size_t>(d));
      off2 += d;
    }
  });
  return out;
}

Tensor ConcatRows(const std::vector<Tensor>& xs) {
  PREQR_CHECK(!xs.empty());
  size_t inner = xs[0].vec().size() / static_cast<size_t>(xs[0].dim(0));
  int total_rows = 0;
  for (const auto& t : xs) {
    PREQR_CHECK_EQ(t.vec().size() / static_cast<size_t>(t.dim(0)), inner);
    total_rows += t.dim(0);
  }
  Shape shape = xs[0].shape();
  shape[0] = total_rows;
  Tensor out = Tensor::Zeros(std::move(shape));
  size_t off = 0;
  for (const auto& t : xs) {
    kernels::Copy(t.data(), out.data() + off, t.vec().size());
    off += t.vec().size();
  }
  if (!NeedsTape(xs)) return out;
  std::vector<std::shared_ptr<TensorImpl>> impls;
  std::vector<size_t> sizes;
  for (const auto& t : xs) {
    impls.push_back(t.impl());
    sizes.push_back(t.vec().size());
  }
  Wire(out, impls, [impls, sizes](TensorImpl* self) {
    size_t off2 = 0;
    for (size_t t = 0; t < impls.size(); ++t) {
      AccumulateGrad(impls[t], self->grad.data() + off2, sizes[t]);
      off2 += sizes[t];
    }
  });
  return out;
}

Tensor SliceLastDim(const Tensor& x, int start, int len) {
  const int nd = x.ndim();
  const int d = x.dim(nd - 1);
  PREQR_CHECK_GE(start, 0);
  PREQR_CHECK_LE(start + len, d);
  const size_t rows = x.vec().size() / static_cast<size_t>(d);
  Shape shape = x.shape();
  shape[static_cast<size_t>(nd - 1)] = len;
  Tensor out = Tensor::Zeros(std::move(shape));
  kernels::CopyRows(x.data() + start, static_cast<size_t>(d), out.data(),
                    static_cast<size_t>(len), rows, static_cast<size_t>(len));
  if (!NeedsTape(x)) return out;
  auto xi = x.impl();
  Wire(out, {xi}, [xi, start, len, d, rows](TensorImpl* self) {
    if (!Wants(xi)) return;
    xi->EnsureGrad();
    kernels::AccumulateRows(self->grad.data(), static_cast<size_t>(len),
                            xi->grad.data() + start, static_cast<size_t>(d),
                            rows, static_cast<size_t>(len));
  });
  return out;
}

Tensor SliceRows(const Tensor& x, int start, int len) {
  const int n = x.dim(0);
  PREQR_CHECK_GE(start, 0);
  PREQR_CHECK_LE(start + len, n);
  const size_t inner = x.vec().size() / static_cast<size_t>(n);
  Shape shape = x.shape();
  shape[0] = len;
  Tensor out = Tensor::Zeros(std::move(shape));
  kernels::Copy(x.data() + static_cast<size_t>(start) * inner, out.data(),
                static_cast<size_t>(len) * inner);
  if (!NeedsTape(x)) return out;
  auto xi = x.impl();
  Wire(out, {xi}, [xi, start, inner](TensorImpl* self) {
    if (!Wants(xi)) return;
    xi->EnsureGrad();
    kernels::Accumulate(self->grad.data(),
                        xi->grad.data() + static_cast<size_t>(start) * inner,
                        self->grad.size());
  });
  return out;
}

Tensor Gather(const Tensor& weight, const std::vector<int>& ids) {
  PREQR_CHECK_EQ(weight.ndim(), 2);
  const int v = weight.dim(0), d = weight.dim(1);
  const int n = static_cast<int>(ids.size());
  Tensor out = Tensor::Zeros({n, d});
  kernels::GatherForward(weight.data(), v, d, ids, out.data());
  if (!NeedsTape(weight)) return out;
  auto wi = weight.impl();
  Wire(out, {wi}, [wi, ids, d](TensorImpl* self) {
    if (!Wants(wi)) return;
    wi->EnsureGrad();
    kernels::GatherBackward(self->grad.data(), ids, d, wi->grad.data());
  });
  return out;
}

Tensor SparseAggregate(const Tensor& h, const std::vector<Edge>& edges,
                       const std::vector<float>& norm) {
  PREQR_CHECK_EQ(h.ndim(), 2);
  PREQR_CHECK_EQ(edges.size(), norm.size());
  const int n = h.dim(0), d = h.dim(1);
  Tensor out = Tensor::Zeros({n, d});
  kernels::SparseAggregateForward(h.data(), edges, norm, out.data(), d);
  if (!NeedsTape(h)) return out;
  auto hi = h.impl();
  Wire(out, {hi}, [hi, edges, norm, d](TensorImpl* self) {
    if (!Wants(hi)) return;
    hi->EnsureGrad();
    kernels::SparseAggregateBackward(self->grad.data(), edges, norm,
                                     hi->grad.data(), d);
  });
  return out;
}

Tensor CrossEntropy(const Tensor& logits, const std::vector<int>& targets,
                    int ignore_index) {
  PREQR_CHECK_EQ(logits.ndim(), 2);
  const int n = logits.dim(0), c = logits.dim(1);
  PREQR_CHECK_EQ(static_cast<int>(targets.size()), n);
  // The kernel needs the probs buffer as scratch either way; it is only
  // *retained* (captured by the closure) when backward will run.
  auto probs = std::make_shared<std::vector<float>>(
      static_cast<size_t>(n) * static_cast<size_t>(c));
  int valid = 0;
  Tensor out = Tensor::Zeros({1});
  out.vec()[0] = kernels::CrossEntropyForward(
      logits.data(), targets, ignore_index, n, c, probs->data(), &valid);
  if (!NeedsTape(logits)) return out;
  auto li = logits.impl();
  Wire(out, {li},
       [li, probs, targets, ignore_index, n, c, valid](TensorImpl* self) {
         if (valid == 0 || !Wants(li)) return;
         li->EnsureGrad();
         const float g = self->grad[0] / static_cast<float>(valid);
         kernels::CrossEntropyBackward(g, probs->data(), targets,
                                       ignore_index, n, c, li->grad.data());
       });
  return out;
}

Tensor MseLoss(const Tensor& pred, const std::vector<float>& target) {
  PREQR_CHECK_EQ(pred.vec().size(), target.size());
  const size_t n = target.size();
  Tensor out = Tensor::Zeros({1});
  out.vec()[0] = kernels::MseForward(pred.data(), target);
  if (!NeedsTape(pred)) return out;
  auto pi = pred.impl();
  Wire(out, {pi}, [pi, target, n](TensorImpl* self) {
    if (!Wants(pi)) return;
    pi->EnsureGrad();
    const float g = self->grad[0] * 2.0f / static_cast<float>(n);
    kernels::MseBackward(g, pi->data.data(), target, pi->grad.data());
  });
  return out;
}

Tensor Dropout(const Tensor& x, float p, Rng& rng, bool train) {
  if (!train || p <= 0.0f) return x;
  const float scale = 1.0f / (1.0f - p);
  const bool tape = NeedsTape(x);
  // The rng is consumed identically with or without the tape; only the
  // mask's retention differs.
  std::shared_ptr<std::vector<float>> mask;
  if (tape) mask = std::make_shared<std::vector<float>>(x.vec().size());
  Tensor out = Tensor::Zeros(x.shape());
  kernels::DropoutForward(x.data(), p, scale, rng, out.data(),
                          tape ? mask->data() : nullptr, out.vec().size());
  if (!tape) return out;
  auto xi = x.impl();
  Wire(out, {xi}, [xi, mask](TensorImpl* self) {
    if (!Wants(xi)) return;
    xi->EnsureGrad();
    kernels::DropoutBackward(self->grad.data(), mask->data(), xi->grad.data(),
                             self->grad.size());
  });
  return out;
}

// --- Batched / masked ops -------------------------------------------------

namespace {

// Shared shape bookkeeping for the [B, T, ...] ops: validates the batch
// layout and that lengths fit inside the padded extent.
void CheckBatchLengths(const Tensor& x, const std::vector<int>& lengths) {
  PREQR_CHECK_EQ(x.ndim(), 3);
  PREQR_CHECK_EQ(static_cast<int>(lengths.size()), x.dim(0));
  for (int len : lengths) {
    PREQR_CHECK_GE(len, 0);
    PREQR_CHECK_LE(len, x.dim(1));
  }
}

}  // namespace

Tensor BatchedMatMulNT(const Tensor& a, const Tensor& b,
                       const std::vector<int>& lengths) {
  CheckBatchLengths(a, lengths);
  PREQR_CHECK(a.shape() == b.shape());
  const int bsz = a.dim(0), t = a.dim(1), k = a.dim(2);
  Tensor out = Tensor::Zeros({bsz, t, t});
  kernels::Active().BatchedMatMulNTForward(a.data(), b.data(), out.data(), bsz,
                                           t, k, lengths.data());
  if (!NeedsTape(a, b)) return out;
  auto ai = a.impl(), bi = b.impl();
  Wire(out, {ai, bi}, [ai, bi, bsz, t, k, lengths](TensorImpl* self) {
    const float* g = self->grad.data();
    if (Wants(ai)) {
      ai->EnsureGrad();
      kernels::BatchedMatMulNTBackwardA(g, bi->data.data(), ai->grad.data(),
                                        bsz, t, k, lengths.data());
    }
    if (Wants(bi)) {
      bi->EnsureGrad();
      kernels::BatchedMatMulNTBackwardB(g, ai->data.data(), bi->grad.data(),
                                        bsz, t, k, lengths.data());
    }
  });
  return out;
}

Tensor BatchedMatMulNN(const Tensor& w, const Tensor& v,
                       const std::vector<int>& lengths) {
  CheckBatchLengths(v, lengths);
  PREQR_CHECK_EQ(w.ndim(), 3);
  PREQR_CHECK_EQ(w.dim(0), v.dim(0));
  PREQR_CHECK_EQ(w.dim(1), v.dim(1));
  PREQR_CHECK_EQ(w.dim(2), v.dim(1));
  const int bsz = v.dim(0), t = v.dim(1), dv = v.dim(2);
  Tensor out = Tensor::Zeros({bsz, t, dv});
  kernels::Active().BatchedMatMulNNForward(w.data(), v.data(), out.data(), bsz,
                                           t, dv, lengths.data());
  if (!NeedsTape(w, v)) return out;
  auto wi = w.impl(), vi = v.impl();
  Wire(out, {wi, vi}, [wi, vi, bsz, t, dv, lengths](TensorImpl* self) {
    const float* g = self->grad.data();
    if (Wants(wi)) {
      wi->EnsureGrad();
      kernels::BatchedMatMulNNBackwardW(g, vi->data.data(), wi->grad.data(),
                                        bsz, t, dv, lengths.data());
    }
    if (Wants(vi)) {
      vi->EnsureGrad();
      kernels::BatchedMatMulNNBackwardV(wi->data.data(), g, vi->grad.data(),
                                        bsz, t, dv, lengths.data());
    }
  });
  return out;
}

Tensor MaskedSoftmaxLastDim(const Tensor& x, const std::vector<int>& lengths) {
  CheckBatchLengths(x, lengths);
  PREQR_CHECK_EQ(x.dim(1), x.dim(2));
  const int bsz = x.dim(0), t = x.dim(1);
  Tensor out = Tensor::Zeros(x.shape());
  kernels::Active().MaskedSoftmaxForward(x.data(), out.data(), bsz, t,
                                         lengths.data());
  if (!NeedsTape(x)) return out;
  auto xi = x.impl();
  Wire(out, {xi}, [xi, bsz, t, lengths](TensorImpl* self) {
    if (!Wants(xi)) return;
    xi->EnsureGrad();
    kernels::MaskedSoftmaxBackward(self->data.data(), self->grad.data(),
                                   xi->grad.data(), bsz, t, lengths.data());
  });
  return out;
}

Tensor MaskedLayerNorm(const Tensor& x, const Tensor& gamma,
                       const Tensor& beta, const std::vector<int>& lengths,
                       float eps) {
  CheckBatchLengths(x, lengths);
  const int bsz = x.dim(0), t = x.dim(1), d = x.dim(2);
  PREQR_CHECK_EQ(gamma.dim(0), d);
  PREQR_CHECK_EQ(beta.dim(0), d);
  Tensor out = Tensor::Zeros(x.shape());
  const bool tape = NeedsTape(x, gamma, beta);
  std::shared_ptr<std::vector<float>> xhat_s, istd_s;
  if (tape) {
    xhat_s = std::make_shared<std::vector<float>>(x.vec().size());
    istd_s = std::make_shared<std::vector<float>>(
        static_cast<size_t>(bsz) * static_cast<size_t>(t));
  }
  kernels::Active().MaskedLayerNormForward(
      x.data(), gamma.data(), beta.data(), eps, out.data(),
      tape ? xhat_s->data() : nullptr, tape ? istd_s->data() : nullptr, bsz,
      t, d, lengths.data());
  if (!tape) return out;
  auto xi = x.impl(), gi = gamma.impl(), bi = beta.impl();
  Wire(out, {xi, gi, bi},
       [xi, gi, bi, xhat_s, istd_s, bsz, t, d, lengths](TensorImpl* self) {
         gi->EnsureGrad();
         bi->EnsureGrad();
         kernels::MaskedLayerNormBackwardParams(
             self->grad.data(), xhat_s->data(), gi->grad.data(),
             bi->grad.data(), bsz, t, d, lengths.data());
         if (!Wants(xi)) return;
         xi->EnsureGrad();
         kernels::MaskedLayerNormBackwardInput(
             self->grad.data(), xhat_s->data(), istd_s->data(),
             gi->data.data(), xi->grad.data(), bsz, t, d, lengths.data());
       });
  return out;
}

Tensor MaskedCrossEntropy(const Tensor& logits, const std::vector<int>& targets,
                          const std::vector<int>& lengths, int ignore_index,
                          std::vector<float>* example_loss) {
  CheckBatchLengths(logits, lengths);
  const int bsz = logits.dim(0), t = logits.dim(1), c = logits.dim(2);
  PREQR_CHECK_EQ(targets.size(), static_cast<size_t>(bsz) * t);
  auto probs = std::make_shared<std::vector<float>>(logits.vec().size());
  auto valid = std::make_shared<std::vector<int>>();
  Tensor out = Tensor::Zeros({1});
  out.vec()[0] = kernels::MaskedCrossEntropyForward(
      logits.data(), targets, ignore_index, bsz, t, c, lengths.data(),
      probs->data(), valid.get(), example_loss);
  if (!NeedsTape(logits)) return out;
  auto li = logits.impl();
  Wire(out, {li},
       [li, probs, valid, targets, lengths, ignore_index, bsz, t,
        c](TensorImpl* self) {
         if (!Wants(li)) return;
         li->EnsureGrad();
         kernels::MaskedCrossEntropyBackward(
             self->grad[0], probs->data(), targets, ignore_index, bsz, t, c,
             lengths.data(), *valid, li->grad.data());
       });
  return out;
}

Tensor MaskedDropout(const Tensor& x, float p,
                     const std::vector<uint64_t>& seeds,
                     const std::vector<int>& lengths, bool train) {
  if (!train || p <= 0.0f) return x;
  CheckBatchLengths(x, lengths);
  const int bsz = x.dim(0), t = x.dim(1), d = x.dim(2);
  PREQR_CHECK_EQ(seeds.size(), static_cast<size_t>(bsz));
  const float scale = 1.0f / (1.0f - p);
  const bool tape = NeedsTape(x);
  std::shared_ptr<std::vector<float>> mask;
  if (tape) mask = std::make_shared<std::vector<float>>(x.vec().size());
  Tensor out = Tensor::Zeros(x.shape());
  kernels::MaskedDropoutForward(x.data(), p, scale, seeds.data(), out.data(),
                                tape ? mask->data() : nullptr, bsz, t, d,
                                lengths.data());
  if (!tape) return out;
  auto xi = x.impl();
  Wire(out, {xi}, [xi, mask](TensorImpl* self) {
    if (!Wants(xi)) return;
    xi->EnsureGrad();
    // Pad mask entries are zero, so the generic dropout backward already
    // keeps pad gradients at exactly zero.
    kernels::DropoutBackward(self->grad.data(), mask->data(), xi->grad.data(),
                             self->grad.size());
  });
  return out;
}

Tensor SliceExample(const Tensor& x, int b, int len) {
  PREQR_CHECK_EQ(x.ndim(), 3);
  PREQR_CHECK_GE(b, 0);
  PREQR_CHECK_LT(b, x.dim(0));
  PREQR_CHECK_GE(len, 0);
  PREQR_CHECK_LE(len, x.dim(1));
  const int t = x.dim(1), d = x.dim(2);
  const size_t off = static_cast<size_t>(b) * t * d;
  Tensor out = Tensor::Zeros({len, d});
  kernels::Copy(x.data() + off, out.data(),
                static_cast<size_t>(len) * static_cast<size_t>(d));
  if (!NeedsTape(x)) return out;
  auto xi = x.impl();
  Wire(out, {xi}, [xi, off](TensorImpl* self) {
    if (!Wants(xi)) return;
    xi->EnsureGrad();
    kernels::Accumulate(self->grad.data(), xi->grad.data() + off,
                        self->grad.size());
  });
  return out;
}

Tensor PadExamples(const std::vector<Tensor>& xs, int t_max) {
  PREQR_CHECK(!xs.empty());
  const int bsz = static_cast<int>(xs.size());
  const int d = xs[0].dim(1);
  int t = t_max;
  for (const auto& x : xs) {
    PREQR_CHECK_EQ(x.ndim(), 2);
    PREQR_CHECK_EQ(x.dim(1), d);
    t = std::max(t, x.dim(0));
  }
  Tensor out = Tensor::Zeros({bsz, t, d});
  for (int b = 0; b < bsz; ++b) {
    kernels::Copy(xs[static_cast<size_t>(b)].data(),
                  out.data() + static_cast<size_t>(b) * t * d,
                  xs[static_cast<size_t>(b)].vec().size());
  }
  if (!NeedsTape(xs)) return out;
  std::vector<std::shared_ptr<TensorImpl>> impls;
  impls.reserve(xs.size());
  for (const auto& x : xs) impls.push_back(x.impl());
  Wire(out, impls, [impls, t, d](TensorImpl* self) {
    for (size_t b = 0; b < impls.size(); ++b) {
      AccumulateGrad(impls[b], self->grad.data() + b * static_cast<size_t>(t) * d,
                     impls[b]->data.size());
    }
  });
  return out;
}

}  // namespace preqr::nn
