#include "nn/kernels_dispatch.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "nn/kernels.h"
#if defined(PREQR_HAVE_AVX2)
#include "nn/kernels_avx2.h"
#endif

namespace preqr::nn::kernels {
namespace {

const KernelTable kScalarTable = {
    "scalar",
    &MatMulForward,
    &AddBiasForward,
    &ReluForward,
    &GeluForward,
    &TanhForward,
    &SigmoidForward,
    &SoftmaxForward,
    &LayerNormForward,
    &BatchedMatMulNTForward,
    &BatchedMatMulNNForward,
    &MaskedSoftmaxForward,
    &MaskedLayerNormForward,
    &Int8GemmForward,
};

#if defined(PREQR_HAVE_AVX2)
const KernelTable kAvx2Table = {
    "avx2",
    &avx2::MatMulForward,
    &avx2::AddBiasForward,
    &avx2::ReluForward,
    &avx2::GeluForward,
    &avx2::TanhForward,
    &avx2::SigmoidForward,
    &avx2::SoftmaxForward,
    &avx2::LayerNormForward,
    &avx2::BatchedMatMulNTForward,
    &avx2::BatchedMatMulNNForward,
    &avx2::MaskedSoftmaxForward,
    &avx2::MaskedLayerNormForward,
    &avx2::Int8GemmForward,
};
#endif

bool CpuHasAvx2Fma() {
#if defined(PREQR_HAVE_AVX2) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

const KernelTable* SelectAtStartup() {
  const char* env = std::getenv("PREQR_KERNEL_IMPL");
  if (env != nullptr && *env != '\0') {
    if (std::strcmp(env, "scalar") == 0) return &kScalarTable;
    if (std::strcmp(env, "avx2") == 0) {
      if (const KernelTable* t = Avx2Table()) return t;
      std::fprintf(stderr,
                   "[kernels] PREQR_KERNEL_IMPL=avx2 requested but the AVX2 "
                   "backend is unavailable; falling back to scalar\n");
      return &kScalarTable;
    }
    std::fprintf(stderr,
                 "[kernels] unknown PREQR_KERNEL_IMPL='%s' (want scalar|avx2);"
                 " using the CPUID default\n",
                 env);
  }
  if (const KernelTable* t = Avx2Table()) return t;
  return &kScalarTable;
}

std::atomic<const KernelTable*>& ActiveSlot() {
  static std::atomic<const KernelTable*> slot{SelectAtStartup()};
  return slot;
}

}  // namespace

const KernelTable& ScalarTable() { return kScalarTable; }

const KernelTable* Avx2Table() {
#if defined(PREQR_HAVE_AVX2)
  static const bool supported = CpuHasAvx2Fma();
  return supported ? &kAvx2Table : nullptr;
#else
  return nullptr;
#endif
}

bool Avx2Supported() { return Avx2Table() != nullptr; }

const KernelTable& Active() {
  return *ActiveSlot().load(std::memory_order_relaxed);
}

const char* ActiveImplName() { return Active().name; }

bool SetActiveImpl(const char* name) {
  if (name == nullptr) return false;
  if (std::strcmp(name, "scalar") == 0) {
    ActiveSlot().store(&kScalarTable, std::memory_order_relaxed);
    return true;
  }
  if (std::strcmp(name, "avx2") == 0) {
    if (const KernelTable* t = Avx2Table()) {
      ActiveSlot().store(t, std::memory_order_relaxed);
      return true;
    }
    return false;
  }
  return false;
}

}  // namespace preqr::nn::kernels
