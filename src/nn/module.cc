#include "nn/module.h"

#include <cmath>

namespace preqr::nn {

std::vector<std::pair<std::string, Tensor>> Module::NamedParameters() const {
  std::vector<std::pair<std::string, Tensor>> out = params_;
  for (const auto& [name, child] : children_) {
    for (const auto& [pname, t] : child->NamedParameters()) {
      out.emplace_back(name + "." + pname, t);
    }
  }
  return out;
}

std::vector<Tensor> Module::Parameters() const {
  std::vector<Tensor> out;
  for (const auto& [name, t] : NamedParameters()) out.push_back(t);
  return out;
}

void Module::ZeroGrad() {
  for (auto& t : Parameters()) t.ZeroGrad();
}

Index Module::NumParameters() const {
  Index n = 0;
  for (const auto& t : Parameters()) n += t.size();
  return n;
}

Tensor Module::RegisterParameter(std::string name, Tensor t) {
  t.set_requires_grad(true);
  params_.emplace_back(std::move(name), t);
  return t;
}

void Module::RegisterChild(std::string name, Module* child) {
  children_.emplace_back(std::move(name), child);
}

void Module::set_train(bool train) {
  train_ = train;
  for (auto& [name, child] : children_) child->set_train(train);
}

// --- Linear -----------------------------------------------------------

Linear::Linear(int in_features, int out_features, Rng& rng, bool bias)
    : in_(in_features), out_(out_features), has_bias_(bias) {
  const float bound = std::sqrt(6.0f / static_cast<float>(in_ + out_));
  weight_ = RegisterParameter(
      "weight", Tensor::Uniform({in_, out_}, rng, bound));
  if (has_bias_) {
    bias_ = RegisterParameter("bias", Tensor::Zeros({out_}));
  }
}

Tensor Linear::Forward(const Tensor& x) const {
  Tensor y = MatMul(x, weight_);
  if (has_bias_) y = AddBias(y, bias_);
  return y;
}

// --- Embedding ---------------------------------------------------------

Embedding::Embedding(int vocab_size, int dim, Rng& rng)
    : vocab_(vocab_size), dim_(dim) {
  weight_ = RegisterParameter(
      "weight", Tensor::Randn({vocab_, dim_}, rng, 0.02f));
}

Tensor Embedding::Forward(const std::vector<int>& ids) const {
  return Gather(weight_, ids);
}

// --- LayerNorm ----------------------------------------------------------

LayerNorm::LayerNorm(int dim) {
  gamma_ = RegisterParameter("gamma", Tensor::Full({dim}, 1.0f));
  beta_ = RegisterParameter("beta", Tensor::Zeros({dim}));
}

Tensor LayerNorm::Forward(const Tensor& x) const {
  return LayerNormOp(x, gamma_, beta_);
}

Tensor LayerNorm::ForwardMasked(const Tensor& x,
                                const std::vector<int>& lengths) const {
  return MaskedLayerNorm(x, gamma_, beta_, lengths);
}

// --- MultiHeadAttention ---------------------------------------------------

MultiHeadAttention::MultiHeadAttention(int dim, int num_heads, Rng& rng)
    : dim_(dim),
      heads_(num_heads),
      head_dim_(dim / num_heads),
      wq_(dim, dim, rng),
      wk_(dim, dim, rng),
      wv_(dim, dim, rng),
      wo_(dim, dim, rng) {
  PREQR_CHECK_EQ(head_dim_ * heads_, dim_);
  RegisterChild("wq", &wq_);
  RegisterChild("wk", &wk_);
  RegisterChild("wv", &wv_);
  RegisterChild("wo", &wo_);
}

Tensor MultiHeadAttention::Forward(const Tensor& q, const Tensor& kv) const {
  const Tensor qp = wq_.Forward(q);    // [Sq, d]
  const Tensor kp = wk_.Forward(kv);   // [Skv, d]
  const Tensor vp = wv_.Forward(kv);   // [Skv, d]
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  std::vector<Tensor> head_outputs;
  head_outputs.reserve(static_cast<size_t>(heads_));
  for (int h = 0; h < heads_; ++h) {
    const Tensor qh = SliceLastDim(qp, h * head_dim_, head_dim_);
    const Tensor kh = SliceLastDim(kp, h * head_dim_, head_dim_);
    const Tensor vh = SliceLastDim(vp, h * head_dim_, head_dim_);
    Tensor scores = Scale(MatMul(qh, Transpose(kh)), scale);  // [Sq, Skv]
    Tensor weights = SoftmaxLastDim(scores);
    head_outputs.push_back(MatMul(weights, vh));  // [Sq, head_dim]
  }
  return wo_.Forward(ConcatLastDim(head_outputs));
}

Tensor MultiHeadAttention::ForwardBatch(const Tensor& x,
                                        const std::vector<int>& lengths) const {
  // Projections are row-wise, so running them on the padded [B, T, d] block
  // reproduces each example's rows bitwise; the batch-sensitive pieces
  // (scores, softmax, weighted sum) go through the masked kernels.
  const Tensor qp = wq_.Forward(x);  // [B, T, d]
  const Tensor kp = wk_.Forward(x);
  const Tensor vp = wv_.Forward(x);
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  std::vector<Tensor> head_outputs;
  head_outputs.reserve(static_cast<size_t>(heads_));
  for (int h = 0; h < heads_; ++h) {
    const Tensor qh = SliceLastDim(qp, h * head_dim_, head_dim_);
    const Tensor kh = SliceLastDim(kp, h * head_dim_, head_dim_);
    const Tensor vh = SliceLastDim(vp, h * head_dim_, head_dim_);
    Tensor scores = Scale(BatchedMatMulNT(qh, kh, lengths), scale);
    Tensor weights = MaskedSoftmaxLastDim(scores, lengths);
    head_outputs.push_back(BatchedMatMulNN(weights, vh, lengths));
  }
  return wo_.Forward(ConcatLastDim(head_outputs));
}

// --- FeedForward ------------------------------------------------------------

FeedForward::FeedForward(int dim, int hidden, Rng& rng)
    : fc1_(dim, hidden, rng), fc2_(hidden, dim, rng) {
  RegisterChild("fc1", &fc1_);
  RegisterChild("fc2", &fc2_);
}

Tensor FeedForward::Forward(const Tensor& x) const {
  return fc2_.Forward(Gelu(fc1_.Forward(x)));
}

// --- TransformerEncoderLayer -------------------------------------------------

TransformerEncoderLayer::TransformerEncoderLayer(int dim, int num_heads,
                                                 int ffn_hidden, Rng& rng)
    : attn_(dim, num_heads, rng),
      ffn_(dim, ffn_hidden, rng),
      ln1_(dim),
      ln2_(dim) {
  RegisterChild("attn", &attn_);
  RegisterChild("ffn", &ffn_);
  RegisterChild("ln1", &ln1_);
  RegisterChild("ln2", &ln2_);
}

Tensor TransformerEncoderLayer::Forward(const Tensor& x) const {
  Tensor h = ln1_.Forward(Add(x, attn_.Forward(x, x)));
  return ln2_.Forward(Add(h, ffn_.Forward(h)));
}

Tensor TransformerEncoderLayer::ForwardBatch(
    const Tensor& x, const std::vector<int>& lengths) const {
  // Add and the FFN are row-wise (pad rows may carry junk between the
  // masked norms, but no valid row ever reads one); the masked layer norms
  // re-zero padding so every sub-layer hands on exactly-zero pad rows.
  Tensor h =
      ln1_.ForwardMasked(Add(x, attn_.ForwardBatch(x, lengths)), lengths);
  return ln2_.ForwardMasked(Add(h, ffn_.Forward(h)), lengths);
}

// --- BiLstm -------------------------------------------------------------------

BiLstm::BiLstm(int input_dim, int hidden_dim, Rng& rng)
    : input_(input_dim),
      hidden_(hidden_dim),
      fwd_x_(input_dim, 4 * hidden_dim, rng),
      fwd_h_(hidden_dim, 4 * hidden_dim, rng, /*bias=*/false),
      rev_x_(input_dim, 4 * hidden_dim, rng),
      rev_h_(hidden_dim, 4 * hidden_dim, rng, /*bias=*/false) {
  RegisterChild("fwd_x", &fwd_x_);
  RegisterChild("fwd_h", &fwd_h_);
  RegisterChild("rev_x", &rev_x_);
  RegisterChild("rev_h", &rev_h_);
}

Tensor BiLstm::RunDirection(const Tensor& x, bool reverse, const Linear& wx,
                            const Linear& wh) const {
  const int t_len = x.dim(0);
  Tensor h = Tensor::Zeros({1, hidden_});
  Tensor c = Tensor::Zeros({1, hidden_});
  std::vector<Tensor> states(static_cast<size_t>(t_len));
  for (int step = 0; step < t_len; ++step) {
    const int t = reverse ? t_len - 1 - step : step;
    const Tensor xt = SliceRows(x, t, 1);  // [1, in]
    Tensor gates = Add(wx.Forward(xt), wh.Forward(h));  // [1, 4H]
    const Tensor i = Sigmoid(SliceLastDim(gates, 0, hidden_));
    const Tensor f = Sigmoid(SliceLastDim(gates, hidden_, hidden_));
    const Tensor g = Tanh(SliceLastDim(gates, 2 * hidden_, hidden_));
    const Tensor o = Sigmoid(SliceLastDim(gates, 3 * hidden_, hidden_));
    c = Add(Mul(f, c), Mul(i, g));
    h = Mul(o, Tanh(c));
    states[static_cast<size_t>(t)] = h;
  }
  return ConcatRows(states);  // [T, hidden] in original time order
}

BiLstm::Output BiLstm::Forward(const Tensor& x) const {
  const Tensor fwd = RunDirection(x, /*reverse=*/false, fwd_x_, fwd_h_);
  const Tensor rev = RunDirection(x, /*reverse=*/true, rev_x_, rev_h_);
  const int t_len = x.dim(0);
  Output out;
  out.per_step = ConcatLastDim({fwd, rev});  // [T, 2H]
  out.summary = ConcatLastDim(
      {SliceRows(fwd, t_len - 1, 1), SliceRows(rev, 0, 1)});  // [1, 2H]
  return out;
}

// --- GruCell ---------------------------------------------------------------

GruCell::GruCell(int input_dim, int hidden_dim, Rng& rng)
    : input_(input_dim),
      hidden_(hidden_dim),
      wx_(input_dim, 3 * hidden_dim, rng),
      wh_(hidden_dim, 3 * hidden_dim, rng, /*bias=*/false) {
  RegisterChild("wx", &wx_);
  RegisterChild("wh", &wh_);
}

Tensor GruCell::Forward(const Tensor& x, const Tensor& h) const {
  const Tensor gx = wx_.Forward(x);  // [1, 3H]
  const Tensor gh = wh_.Forward(h);  // [1, 3H]
  const Tensor r = Sigmoid(Add(SliceLastDim(gx, 0, hidden_),
                               SliceLastDim(gh, 0, hidden_)));
  const Tensor z = Sigmoid(Add(SliceLastDim(gx, hidden_, hidden_),
                               SliceLastDim(gh, hidden_, hidden_)));
  const Tensor n = Tanh(Add(SliceLastDim(gx, 2 * hidden_, hidden_),
                            Mul(r, SliceLastDim(gh, 2 * hidden_, hidden_))));
  // h' = (1-z)*n + z*h = n + z*(h - n)
  return Add(n, Mul(z, Sub(h, n)));
}

// --- RgcnLayer ----------------------------------------------------------------

RgcnLayer::RgcnLayer(int in_dim, int out_dim, int num_relations, Rng& rng)
    : num_relations_(num_relations), self_weight_(in_dim, out_dim, rng) {
  rel_weights_.reserve(static_cast<size_t>(num_relations));
  for (int r = 0; r < num_relations; ++r) {
    rel_weights_.emplace_back(in_dim, out_dim, rng, /*bias=*/false);
  }
  for (int r = 0; r < num_relations; ++r) {
    RegisterChild("rel" + std::to_string(r), &rel_weights_[static_cast<size_t>(r)]);
  }
  RegisterChild("self", &self_weight_);
}

Tensor RgcnLayer::Forward(
    const Tensor& h, const std::vector<std::vector<Edge>>& rel_edges,
    const std::vector<std::vector<float>>& rel_norms) const {
  PREQR_CHECK_EQ(static_cast<int>(rel_edges.size()), num_relations_);
  Tensor acc = self_weight_.Forward(h);
  for (int r = 0; r < num_relations_; ++r) {
    const auto& edges = rel_edges[static_cast<size_t>(r)];
    if (edges.empty()) continue;
    const Tensor agg =
        SparseAggregate(h, edges, rel_norms[static_cast<size_t>(r)]);
    acc = Add(acc, rel_weights_[static_cast<size_t>(r)].Forward(agg));
  }
  return Relu(acc);
}

}  // namespace preqr::nn
