// AVX2/FMA backend for the hot forward kernels. Compiled with -mavx2 -mfma
// (see src/nn/CMakeLists.txt); selected at runtime by kernels_dispatch.cc
// only when CPUID reports avx2+fma.
//
// Determinism contract (see kernels_dispatch.h): results are bitwise-stable
// across runs, thread counts, and batch compositions *within this backend*.
// Three rules enforce that:
//   1. Row routines are shared. The batched kernels call the exact per-row
//      routine the single-query kernels use (BatchedMatMulNT materializes
//      the same kᵀ operand the solo Transpose+MatMul path feeds the GEMM),
//      so a row's bits depend only on its own values and its logical width.
//   2. Elementwise tails go through the same vector routine as full lanes
//      (copied through a zero-padded stack block), and GEMM tail columns
//      use std::fmaf — the scalar twin of the vector fmadd — so an
//      element's bits never depend on its alignment within a buffer.
//   3. Reductions (softmax sum, layer-norm moments) use one fixed
//      horizontal order per row width.
// Bits intentionally differ from the scalar backend (FMA contraction and a
// polynomial exp); cross-impl comparisons belong in tolerance tests.
#if defined(PREQR_HAVE_AVX2)

#include "nn/kernels_avx2.h"

#include <immintrin.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "common/thread_pool.h"

namespace preqr::nn::kernels::avx2 {
namespace {

constexpr float kGeluC = 0.7978845608028654f;  // sqrt(2/pi)

// Cephes-style vectorized expf (max error ~1 ulp over the clamped range).
// Inputs are clamped to ±88.376 so the result never overflows to inf; the
// underflow side flushes to +0, which every caller tolerates.
inline __m256 Exp8(__m256 x) {
  x = _mm256_min_ps(_mm256_max_ps(x, _mm256_set1_ps(-88.3762626647949f)),
                    _mm256_set1_ps(88.3762626647949f));
  __m256 fx = _mm256_fmadd_ps(x, _mm256_set1_ps(1.44269504088896341f),
                              _mm256_set1_ps(0.5f));
  fx = _mm256_floor_ps(fx);
  x = _mm256_fnmadd_ps(fx, _mm256_set1_ps(0.693359375f), x);
  x = _mm256_fnmadd_ps(fx, _mm256_set1_ps(-2.12194440e-4f), x);
  const __m256 z = _mm256_mul_ps(x, x);
  __m256 y = _mm256_set1_ps(1.9875691500e-4f);
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(1.3981999507e-3f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(8.3334519073e-3f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(4.1665795894e-2f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(1.6666665459e-1f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(5.0000001201e-1f));
  y = _mm256_fmadd_ps(y, z, x);
  y = _mm256_add_ps(y, _mm256_set1_ps(1.0f));
  __m256i imm = _mm256_cvttps_epi32(fx);
  imm = _mm256_add_epi32(imm, _mm256_set1_epi32(0x7f));
  imm = _mm256_slli_epi32(imm, 23);
  return _mm256_mul_ps(y, _mm256_castsi256_ps(imm));
}

// tanh via exp(2|x|): saturates to exactly ±1 once 2/(e+1) underflows past
// the float ulp at 1 — the same saturation point std::tanh exhibits.
inline __m256 Tanh8(__m256 x) {
  const __m256 sign_mask = _mm256_set1_ps(-0.0f);
  const __m256 sign = _mm256_and_ps(x, sign_mask);
  const __m256 ax = _mm256_andnot_ps(sign_mask, x);
  const __m256 e = Exp8(_mm256_add_ps(ax, ax));
  const __m256 t = _mm256_sub_ps(
      _mm256_set1_ps(1.0f),
      _mm256_div_ps(_mm256_set1_ps(2.0f),
                    _mm256_add_ps(e, _mm256_set1_ps(1.0f))));
  return _mm256_or_ps(t, sign);
}

inline __m256 Sigmoid8(__m256 x) {
  const __m256 e = Exp8(_mm256_sub_ps(_mm256_setzero_ps(), x));
  return _mm256_div_ps(_mm256_set1_ps(1.0f),
                       _mm256_add_ps(e, _mm256_set1_ps(1.0f)));
}

inline __m256 Gelu8(__m256 v) {
  const __m256 v2 = _mm256_mul_ps(v, v);
  const __m256 v3 = _mm256_mul_ps(v2, v);
  const __m256 inner = _mm256_fmadd_ps(_mm256_set1_ps(0.044715f), v3, v);
  const __m256 u = _mm256_mul_ps(_mm256_set1_ps(kGeluC), inner);
  const __m256 t = Tanh8(u);
  return _mm256_mul_ps(_mm256_mul_ps(_mm256_set1_ps(0.5f), v),
                       _mm256_add_ps(_mm256_set1_ps(1.0f), t));
}

// Applies a lanewise __m256 -> __m256 function over a flat array. The tail
// runs through the *same* vector routine via a zero-padded stack block, so
// an element's bits are a pure function of its value — independent of its
// offset, which differs between the solo [S, d] and batched [B, T, d]
// layouts of the same logical row.
template <typename F>
inline void Map8(const float* x, float* out, size_t n, F f) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(out + i, f(_mm256_loadu_ps(x + i)));
  }
  if (i < n) {
    alignas(32) float buf[8] = {0};
    std::memcpy(buf, x + i, (n - i) * sizeof(float));
    const __m256 r = f(_mm256_load_ps(buf));
    _mm256_store_ps(buf, r);
    std::memcpy(out + i, buf, (n - i) * sizeof(float));
  }
}

inline float HSum8(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_add_ps(lo, hi);
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
  return _mm_cvtss_f32(s);
}

inline float HMax8(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_max_ps(lo, hi);
  s = _mm_max_ps(s, _mm_movehl_ps(s, s));
  s = _mm_max_ss(s, _mm_shuffle_ps(s, s, 1));
  return _mm_cvtss_f32(s);
}

// One GEMM output row: orow[j] (+)= sum_kk arow[kk] * b[kk*n + j], j < n.
// Register-blocked over 32 output columns so the accumulators stay in
// registers across the whole kk sweep. Per output element the operation
// sequence is an fma chain over the nonzero kk in ascending order — the
// 8-wide and fmaf tail paths run the identical chain, so an element's bits
// depend only on (arow, column of b, prior orow value), never on n's
// divisibility or the blocking boundaries. The av == 0.0f skip preserves
// the scalar kernel's guarantee that all-zero (pad) rows leave orow
// untouched even when b carries inf/NaN garbage in pad positions.
inline void MatMulRowFma(const float* arow, const float* b, float* orow,
                         int k, int n) {
  int j0 = 0;
  for (; j0 + 32 <= n; j0 += 32) {
    float* o = orow + j0;
    __m256 o0 = _mm256_loadu_ps(o);
    __m256 o1 = _mm256_loadu_ps(o + 8);
    __m256 o2 = _mm256_loadu_ps(o + 16);
    __m256 o3 = _mm256_loadu_ps(o + 24);
    for (int kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;
      const __m256 a8 = _mm256_set1_ps(av);
      const float* brow = b + static_cast<size_t>(kk) * n + j0;
      o0 = _mm256_fmadd_ps(a8, _mm256_loadu_ps(brow), o0);
      o1 = _mm256_fmadd_ps(a8, _mm256_loadu_ps(brow + 8), o1);
      o2 = _mm256_fmadd_ps(a8, _mm256_loadu_ps(brow + 16), o2);
      o3 = _mm256_fmadd_ps(a8, _mm256_loadu_ps(brow + 24), o3);
    }
    _mm256_storeu_ps(o, o0);
    _mm256_storeu_ps(o + 8, o1);
    _mm256_storeu_ps(o + 16, o2);
    _mm256_storeu_ps(o + 24, o3);
  }
  for (; j0 + 8 <= n; j0 += 8) {
    __m256 o = _mm256_loadu_ps(orow + j0);
    for (int kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;
      o = _mm256_fmadd_ps(_mm256_set1_ps(av),
                          _mm256_loadu_ps(b + static_cast<size_t>(kk) * n + j0),
                          o);
    }
    _mm256_storeu_ps(orow + j0, o);
  }
  for (; j0 < n; ++j0) {
    float o = orow[j0];
    for (int kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;
      o = std::fmaf(av, b[static_cast<size_t>(kk) * n + j0], o);
    }
    orow[j0] = o;
  }
}

// One softmax row of width d: vector max (exact, order-free), per-element
// Exp8 through Map8, then a sequential j-order sum — one fixed reduction
// order per width, shared by SoftmaxForward and MaskedSoftmaxForward.
inline void SoftmaxRow(const float* in, float* o, int d) {
  float mx;
  if (d >= 8) {
    __m256 m8 = _mm256_loadu_ps(in);
    int j = 8;
    for (; j + 8 <= d; j += 8) {
      m8 = _mm256_max_ps(m8, _mm256_loadu_ps(in + j));
    }
    mx = HMax8(m8);
    for (; j < d; ++j) mx = std::max(mx, in[j]);
  } else {
    mx = in[0];
    for (int j = 1; j < d; ++j) mx = std::max(mx, in[j]);
  }
  const __m256 mx8 = _mm256_set1_ps(mx);
  Map8(in, o, static_cast<size_t>(d),
       [mx8](__m256 v) { return Exp8(_mm256_sub_ps(v, mx8)); });
  float sum = 0.0f;
  for (int j = 0; j < d; ++j) sum += o[j];
  const float inv = 1.0f / sum;
  const __m256 inv8 = _mm256_set1_ps(inv);
  int j = 0;
  for (; j + 8 <= d; j += 8) {
    _mm256_storeu_ps(o + j, _mm256_mul_ps(_mm256_loadu_ps(o + j), inv8));
  }
  for (; j < d; ++j) o[j] *= inv;
}

// One layer-norm row of width d. Moments use the fixed 8-lane partial-sum +
// HSum8 + sequential-tail order; the normalization itself is per-element.
// Shared by LayerNormForward and MaskedLayerNormForward.
inline void LayerNormRow(const float* row, const float* gamma,
                         const float* beta, float eps, float* o, float* xh,
                         float* istd_out, int d) {
  const int d8 = d & ~7;
  __m256 acc = _mm256_setzero_ps();
  for (int j = 0; j < d8; j += 8) {
    acc = _mm256_add_ps(acc, _mm256_loadu_ps(row + j));
  }
  float sum = HSum8(acc);
  for (int j = d8; j < d; ++j) sum += row[j];
  const float mean = sum / static_cast<float>(d);
  const __m256 mean8 = _mm256_set1_ps(mean);
  acc = _mm256_setzero_ps();
  for (int j = 0; j < d8; j += 8) {
    const __m256 c = _mm256_sub_ps(_mm256_loadu_ps(row + j), mean8);
    acc = _mm256_fmadd_ps(c, c, acc);
  }
  float var = HSum8(acc);
  for (int j = d8; j < d; ++j) {
    const float c = row[j] - mean;
    var = std::fmaf(c, c, var);
  }
  var /= static_cast<float>(d);
  const float istd = 1.0f / std::sqrt(var + eps);
  if (istd_out != nullptr) *istd_out = istd;
  const __m256 istd8 = _mm256_set1_ps(istd);
  int j = 0;
  for (; j + 8 <= d; j += 8) {
    const __m256 xv = _mm256_mul_ps(
        _mm256_sub_ps(_mm256_loadu_ps(row + j), mean8), istd8);
    if (xh != nullptr) _mm256_storeu_ps(xh + j, xv);
    const __m256 ov = _mm256_add_ps(
        _mm256_mul_ps(xv, _mm256_loadu_ps(gamma + j)),
        _mm256_loadu_ps(beta + j));
    _mm256_storeu_ps(o + j, ov);
  }
  for (; j < d; ++j) {
    const float xv = (row[j] - mean) * istd;
    if (xh != nullptr) xh[j] = xv;
    o[j] = xv * gamma[j] + beta[j];
  }
}

inline int32_t HSumEpi32(__m256i v) {
  const __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  __m128i s = _mm_add_epi32(lo, hi);
  s = _mm_add_epi32(s, _mm_unpackhi_epi64(s, s));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 1));
  return _mm_cvtsi128_si32(s);
}

}  // namespace

void MatMulForward(const float* a, const float* b, float* out, int m, int k,
                   int n) {
  ParallelFor(0, m, GrainForCost(static_cast<int64_t>(k) * n),
              [&](int64_t r0, int64_t r1) {
                for (int64_t i = r0; i < r1; ++i) {
                  MatMulRowFma(a + static_cast<size_t>(i) * k, b,
                               out + static_cast<size_t>(i) * n, k, n);
                }
              });
}

void AddBiasForward(const float* x, const float* bias, float* out,
                    size_t rows, int d) {
  // Lane-exact: vector add == scalar add per element.
  const int d8 = d & ~7;
  for (size_t r = 0; r < rows; ++r) {
    const float* in = x + r * static_cast<size_t>(d);
    float* row = out + r * static_cast<size_t>(d);
    int j = 0;
    for (; j < d8; j += 8) {
      _mm256_storeu_ps(row + j, _mm256_add_ps(_mm256_loadu_ps(in + j),
                                              _mm256_loadu_ps(bias + j)));
    }
    for (; j < d; ++j) row[j] = in[j] + bias[j];
  }
}

void ReluForward(const float* x, float* out, size_t n) {
  // max(x, +0) matches the scalar x > 0 ? x : 0 for every input incl. -0.
  const __m256 zero = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(out + i, _mm256_max_ps(_mm256_loadu_ps(x + i), zero));
  }
  for (; i < n; ++i) out[i] = x[i] > 0.0f ? x[i] : 0.0f;
}

void GeluForward(const float* x, float* out, size_t n) {
  Map8(x, out, n, [](__m256 v) { return Gelu8(v); });
}

void TanhForward(const float* x, float* out, size_t n) {
  Map8(x, out, n, [](__m256 v) { return Tanh8(v); });
}

void SigmoidForward(const float* x, float* out, size_t n) {
  Map8(x, out, n, [](__m256 v) { return Sigmoid8(v); });
}

void SoftmaxForward(const float* x, float* out, size_t rows, int d) {
  ParallelFor(0, static_cast<int64_t>(rows), GrainForCost(d),
              [&](int64_t r0, int64_t r1) {
                for (int64_t r = r0; r < r1; ++r) {
                  SoftmaxRow(x + static_cast<size_t>(r) * d,
                             out + static_cast<size_t>(r) * d, d);
                }
              });
}

void LayerNormForward(const float* x, const float* gamma, const float* beta,
                      float eps, float* out, float* xhat, float* inv_std,
                      int n, int d) {
  ParallelFor(0, n, GrainForCost(d), [&](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      LayerNormRow(x + static_cast<size_t>(i) * d, gamma, beta, eps,
                   out + static_cast<size_t>(i) * d,
                   xhat != nullptr ? xhat + static_cast<size_t>(i) * d
                                   : nullptr,
                   inv_std != nullptr ? inv_std + static_cast<size_t>(i)
                                      : nullptr,
                   d);
    }
  });
}

void BatchedMatMulNTForward(const float* a, const float* bt, float* out,
                            int bsz, int t, int k, const int* lengths) {
  // Per example: materialize kᵀ exactly as the solo path's Transpose does
  // (a pure copy — no float ops), then run the shared GEMM row routine. A
  // valid row's bits therefore equal the solo MatMul(q, Transpose(kh)) row
  // under this backend. Partitioning per example keeps the scratch local.
  ParallelFor(0, bsz, 1, [&](int64_t b0, int64_t b1) {
    std::vector<float> kt;
    for (int64_t b = b0; b < b1; ++b) {
      const int len = lengths[b];
      if (len <= 0) continue;
      const float* ab = a + static_cast<size_t>(b) * t * k;
      const float* btb = bt + static_cast<size_t>(b) * t * k;
      kt.resize(static_cast<size_t>(k) * static_cast<size_t>(len));
      for (int j = 0; j < len; ++j) {
        for (int kk = 0; kk < k; ++kk) {
          kt[static_cast<size_t>(kk) * len + j] =
              btb[static_cast<size_t>(j) * k + kk];
        }
      }
      for (int i = 0; i < len; ++i) {
        MatMulRowFma(ab + static_cast<size_t>(i) * k, kt.data(),
                     out + (static_cast<size_t>(b) * t +
                            static_cast<size_t>(i)) *
                               t,
                     k, len);
      }
    }
  });
}

void BatchedMatMulNNForward(const float* w, const float* v, float* out,
                            int bsz, int t, int dv, const int* lengths) {
  const int64_t rows = static_cast<int64_t>(bsz) * t;
  ParallelFor(0, rows, GrainForCost(static_cast<int64_t>(t) * dv),
              [&](int64_t r0, int64_t r1) {
                for (int64_t r = r0; r < r1; ++r) {
                  const int b = static_cast<int>(r / t);
                  const int i = static_cast<int>(r % t);
                  const int len = lengths[b];
                  if (i >= len) continue;  // pad row: stays zero
                  MatMulRowFma(w + static_cast<size_t>(r) * t,
                               v + static_cast<size_t>(b) * t * dv,
                               out + static_cast<size_t>(r) * dv, len, dv);
                }
              });
}

void MaskedSoftmaxForward(const float* x, float* out, int bsz, int t,
                          const int* lengths) {
  const int64_t rows = static_cast<int64_t>(bsz) * t;
  ParallelFor(0, rows, GrainForCost(t), [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const int b = static_cast<int>(r / t);
      const int i = static_cast<int>(r % t);
      const int len = lengths[b];
      if (i >= len) continue;  // pad row: stays zero
      SoftmaxRow(x + static_cast<size_t>(r) * t,
                 out + static_cast<size_t>(r) * t, len);
    }
  });
}

void MaskedLayerNormForward(const float* x, const float* gamma,
                            const float* beta, float eps, float* out,
                            float* xhat, float* inv_std, int bsz, int t,
                            int d, const int* lengths) {
  const int64_t rows = static_cast<int64_t>(bsz) * t;
  ParallelFor(0, rows, GrainForCost(d), [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const int b = static_cast<int>(r / t);
      const int i = static_cast<int>(r % t);
      if (i >= lengths[b]) continue;  // pad row: out/xhat stay zero
      LayerNormRow(x + static_cast<size_t>(r) * d, gamma, beta, eps,
                   out + static_cast<size_t>(r) * d,
                   xhat != nullptr ? xhat + static_cast<size_t>(r) * d
                                   : nullptr,
                   inv_std != nullptr ? inv_std + static_cast<size_t>(r)
                                      : nullptr,
                   d);
    }
  });
}

void Int8GemmForward(const int8_t* aq, const float* a_scale, const int8_t* wt,
                     float w_scale, float* out, int m, int k, int n) {
  // Integer accumulation is exact and order-free, so this is bitwise
  // identical to the scalar Int8GemmForward — the dequantization applies
  // the same two float ops to the same int32.
  const int k16 = k & ~15;
  ParallelFor(0, m, GrainForCost(static_cast<int64_t>(k) * n),
              [&](int64_t r0, int64_t r1) {
                for (int64_t i = r0; i < r1; ++i) {
                  const float sa = a_scale[static_cast<size_t>(i)];
                  if (sa == 0.0f) continue;  // all-zero row stays zero
                  const float scale = sa * w_scale;
                  const int8_t* arow = aq + static_cast<size_t>(i) * k;
                  float* orow = out + static_cast<size_t>(i) * n;
                  for (int j = 0; j < n; ++j) {
                    const int8_t* wrow = wt + static_cast<size_t>(j) * k;
                    __m256i acc8 = _mm256_setzero_si256();
                    int kk = 0;
                    for (; kk < k16; kk += 16) {
                      const __m256i a16 = _mm256_cvtepi8_epi16(
                          _mm_loadu_si128(reinterpret_cast<const __m128i*>(
                              arow + kk)));
                      const __m256i w16 = _mm256_cvtepi8_epi16(
                          _mm_loadu_si128(reinterpret_cast<const __m128i*>(
                              wrow + kk)));
                      acc8 = _mm256_add_epi32(acc8,
                                              _mm256_madd_epi16(a16, w16));
                    }
                    int32_t acc = HSumEpi32(acc8);
                    for (; kk < k; ++kk) {
                      acc += static_cast<int32_t>(arow[kk]) *
                             static_cast<int32_t>(wrow[kk]);
                    }
                    orow[j] = static_cast<float>(acc) * scale;
                  }
                }
              });
}

}  // namespace preqr::nn::kernels::avx2

#endif  // PREQR_HAVE_AVX2
