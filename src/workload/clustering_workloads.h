#ifndef PREQR_WORKLOAD_CLUSTERING_WORKLOADS_H_
#define PREQR_WORKLOAD_CLUSTERING_WORKLOADS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sql/catalog.h"

namespace preqr::workload {

// A query-clustering workload with ground-truth logical-equality clusters
// (Section 4.1.1, first workload kind): all queries with the same label are
// logically equivalent rewrites of a cluster's base query.
struct ClusteringWorkload {
  std::string name;
  std::vector<std::string> queries;
  std::vector<int> labels;
  // Schema of the workload's database (needed by schema-aware encoders).
  sql::Catalog catalog;
};

// Student-authored queries over a university schema (IIT Bombay flavor):
// simple projections/filters with rewrite variety.
ClusteringWorkload MakeIitBombayWorkload(uint64_t seed = 21);

// Exam queries (UB Exam flavor): heavier on aggregates and joins.
ClusteringWorkload MakeUbExamWorkload(uint64_t seed = 22);

// Mobile app query log (PocketData / Google+ flavor): many near-identical
// key-value lookups with LIMIT/ORDER BY, few distinct shapes.
ClusteringWorkload MakePocketDataWorkload(uint64_t seed = 23);

}  // namespace preqr::workload

#endif  // PREQR_WORKLOAD_CLUSTERING_WORKLOADS_H_
