#include "workload/imdb.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/rng.h"

namespace preqr::workload {

namespace {

using db::Database;
using db::Table;
using sql::ColumnType;
using sql::TableDef;

// Deterministic pseudo-word generator (syllable composition with a Zipf'd
// pool) so string predicates have varied selectivities.
class WordPool {
 public:
  explicit WordPool(Rng& rng) : rng_(rng) {}

  std::string Word() {
    static const char* kSyllables[] = {"ka", "ro", "mi", "ta", "lu", "ven",
                                       "dor", "sel", "an", "bel", "cor", "din",
                                       "el", "far", "gol", "har"};
    const int n = 2 + static_cast<int>(rng_.NextUint64(3));
    std::string w;
    for (int i = 0; i < n; ++i) {
      w += kSyllables[rng_.NextUint64(16)];
    }
    return w;
  }

  std::string Phrase(int words) {
    std::string p;
    for (int i = 0; i < words; ++i) {
      if (i > 0) p += " ";
      p += Word();
    }
    return p;
  }

 private:
  Rng& rng_;
};

TableDef Def(const std::string& name,
             std::vector<sql::ColumnDef> columns) {
  TableDef def;
  def.name = name;
  def.columns = std::move(columns);
  return def;
}

// Small dimension table with an id and one string column.
void FillDimension(Table& t, const std::vector<std::string>& values) {
  for (size_t i = 0; i < values.size(); ++i) {
    t.column(0).ints.push_back(static_cast<int64_t>(i));
    t.column(1).strings.push_back(values[i]);
  }
  t.Seal();
}

}  // namespace

db::Database MakeImdbDatabase(uint64_t seed, double scale) {
  Rng rng(seed);
  WordPool words(rng);
  Database db;

  const auto scaled = [scale](int base) {
    return std::max(4, static_cast<int>(base * scale));
  };
  const int n_title = scaled(12000);
  const int n_company = scaled(800);
  const int n_keyword = scaled(1200);
  const int n_name = scaled(6000);
  const int n_char = scaled(3000);

  // --- Dimension tables -------------------------------------------------
  Table& kind_type = db.AddTable(Def(
      "kind_type", {{"id", ColumnType::kInt, true},
                    {"kind", ColumnType::kString, false}}));
  FillDimension(kind_type, {"movie", "tv_series", "tv_movie", "video_movie",
                            "tv_mini_series", "video_game", "episode"});

  Table& company_type = db.AddTable(Def(
      "company_type", {{"id", ColumnType::kInt, true},
                       {"kind", ColumnType::kString, false}}));
  FillDimension(company_type, {"distributors", "production_companies",
                               "special_effects", "miscellaneous"});

  Table& info_type = db.AddTable(Def(
      "info_type", {{"id", ColumnType::kInt, true},
                    {"info", ColumnType::kString, false}}));
  {
    std::vector<std::string> infos;
    static const char* kInfos[] = {"budget", "genres", "rating", "votes",
                                   "runtimes", "languages", "countries",
                                   "color", "sound", "locations"};
    for (int i = 0; i < 20; ++i) {
      infos.push_back(i < 10 ? kInfos[i] : "info_" + std::to_string(i));
    }
    FillDimension(info_type, infos);
  }

  Table& role_type = db.AddTable(Def(
      "role_type", {{"id", ColumnType::kInt, true},
                    {"role", ColumnType::kString, false}}));
  FillDimension(role_type, {"actor", "actress", "producer", "writer",
                            "cinematographer", "composer", "costume_designer",
                            "director", "editor", "miscellaneous_crew",
                            "production_designer", "guest"});

  Table& comp_cast_type = db.AddTable(Def(
      "comp_cast_type", {{"id", ColumnType::kInt, true},
                         {"kind", ColumnType::kString, false}}));
  FillDimension(comp_cast_type, {"cast", "crew", "complete", "complete_cast"});

  Table& link_type = db.AddTable(Def(
      "link_type", {{"id", ColumnType::kInt, true},
                    {"link", ColumnType::kString, false}}));
  FillDimension(link_type, {"follows", "followed_by", "remake_of", "remade_as",
                            "references", "referenced_in", "spoofs",
                            "spoofed_in", "features", "featured_in",
                            "spin_off_from", "spin_off", "version_of",
                            "similar_to", "edited_into", "edited_from",
                            "alternate_language_version_of", "unknown"});

  // --- Entity tables ------------------------------------------------------
  Table& company_name = db.AddTable(Def(
      "company_name", {{"id", ColumnType::kInt, true},
                       {"name", ColumnType::kString, false},
                       {"country_code", ColumnType::kString, false}}));
  {
    static const char* kCountries[] = {"us", "uk", "fr", "de", "jp", "in",
                                       "cn", "it", "es", "ca"};
    for (int i = 0; i < n_company; ++i) {
      company_name.column(0).ints.push_back(i);
      company_name.column(1).strings.push_back(words.Phrase(2));
      // Country Zipf: US-heavy like real IMDB.
      company_name.column(2).strings.push_back(
          kCountries[rng.NextZipf(10, 1.6) - 1]);
    }
    company_name.Seal();
  }

  Table& keyword = db.AddTable(Def(
      "keyword", {{"id", ColumnType::kInt, true},
                  {"keyword", ColumnType::kString, false}}));
  for (int i = 0; i < n_keyword; ++i) {
    keyword.column(0).ints.push_back(i);
    keyword.column(1).strings.push_back(words.Word());
  }
  keyword.Seal();

  Table& name = db.AddTable(Def(
      "name", {{"id", ColumnType::kInt, true},
               {"name", ColumnType::kString, false},
               {"gender", ColumnType::kString, false}}));
  for (int i = 0; i < n_name; ++i) {
    name.column(0).ints.push_back(i);
    name.column(1).strings.push_back(words.Phrase(2));
    name.column(2).strings.push_back(rng.NextDouble() < 0.62 ? "m" : "f");
  }
  name.Seal();

  Table& char_name = db.AddTable(Def(
      "char_name", {{"id", ColumnType::kInt, true},
                    {"name", ColumnType::kString, false}}));
  for (int i = 0; i < n_char; ++i) {
    char_name.column(0).ints.push_back(i);
    char_name.column(1).strings.push_back(words.Phrase(1));
  }
  char_name.Seal();

  // --- title (the hub) ----------------------------------------------------
  Table& title = db.AddTable(Def(
      "title", {{"id", ColumnType::kInt, true},
                {"title", ColumnType::kString, false},
                {"kind_id", ColumnType::kInt, false},
                {"production_year", ColumnType::kInt, false},
                {"season_nr", ColumnType::kInt, false},
                {"episode_nr", ColumnType::kInt, false}}));
  std::vector<int> title_year(static_cast<size_t>(n_title));
  std::vector<int> title_kind(static_cast<size_t>(n_title));
  for (int i = 0; i < n_title; ++i) {
    // Year density rises toward the present (1900..2020).
    const double u = rng.NextDouble();
    const int year = 1900 + static_cast<int>(120.0 * std::pow(u, 0.45));
    // Kind correlates with the era: tv content is mostly post-1960.
    int kind;
    if (year < 1960) {
      kind = rng.NextDouble() < 0.85 ? 0 : static_cast<int>(rng.NextUint64(7));
    } else {
      kind = static_cast<int>(rng.NextZipf(7, 1.3)) - 1;
    }
    title_year[static_cast<size_t>(i)] = year;
    title_kind[static_cast<size_t>(i)] = kind;
    title.column(0).ints.push_back(i);
    title.column(1).strings.push_back(words.Phrase(3));
    title.column(2).ints.push_back(kind);
    title.column(3).ints.push_back(year);
    title.column(4).ints.push_back(
        kind == 1 ? 1 + static_cast<int>(rng.NextUint64(12)) : 0);
    title.column(5).ints.push_back(
        kind == 1 ? 1 + static_cast<int>(rng.NextUint64(24)) : 0);
  }
  title.Seal();

  // Per-title activity level: newer titles have more satellite rows, and a
  // Zipf popularity factor creates heavy hitters (blockbusters).
  std::vector<double> activity(static_cast<size_t>(n_title));
  for (int i = 0; i < n_title; ++i) {
    const double recency =
        (title_year[static_cast<size_t>(i)] - 1900) / 120.0;  // 0..1
    // Heavy-tailed popularity: a few blockbusters have order-of-magnitude
    // larger satellite fan-out, and recency amplifies it. This is what
    // breaks independence-assumption estimators on multi-join queries.
    const double pop = 30.0 / static_cast<double>(rng.NextZipf(200, 1.25));
    activity[static_cast<size_t>(i)] =
        0.3 + 2.0 * recency + pop * (0.3 + 1.2 * recency);
  }

  // --- movie_companies -----------------------------------------------------
  Table& movie_companies = db.AddTable(Def(
      "movie_companies", {{"id", ColumnType::kInt, true},
                          {"movie_id", ColumnType::kInt, false},
                          {"company_id", ColumnType::kInt, false},
                          {"company_type_id", ColumnType::kInt, false}}));
  {
    int row = 0;
    for (int i = 0; i < n_title; ++i) {
      const int cnt = static_cast<int>(activity[static_cast<size_t>(i)] *
                                       (0.5 + rng.NextDouble()));
      for (int c = 0; c < cnt; ++c) {
        const int company =
            static_cast<int>(rng.NextZipf(static_cast<uint64_t>(n_company),
                                          1.3)) - 1;
        // Company type correlates with company rank: big studios produce,
        // small ones distribute/miscellaneous.
        int ctype;
        if (company < n_company / 10) {
          ctype = rng.NextDouble() < 0.7 ? 1 : 0;
        } else {
          ctype = static_cast<int>(rng.NextUint64(4));
        }
        movie_companies.column(0).ints.push_back(row++);
        movie_companies.column(1).ints.push_back(i);
        movie_companies.column(2).ints.push_back(company);
        movie_companies.column(3).ints.push_back(ctype);
      }
    }
    movie_companies.Seal();
  }

  // --- movie_info / movie_info_idx ------------------------------------------
  Table& movie_info = db.AddTable(Def(
      "movie_info", {{"id", ColumnType::kInt, true},
                     {"movie_id", ColumnType::kInt, false},
                     {"info_type_id", ColumnType::kInt, false},
                     {"info", ColumnType::kString, false}}));
  Table& movie_info_idx = db.AddTable(Def(
      "movie_info_idx", {{"id", ColumnType::kInt, true},
                         {"movie_id", ColumnType::kInt, false},
                         {"info_type_id", ColumnType::kInt, false},
                         {"info", ColumnType::kString, false}}));
  {
    int row = 0, row_idx = 0;
    for (int i = 0; i < n_title; ++i) {
      const int cnt = 1 + static_cast<int>(activity[static_cast<size_t>(i)]);
      for (int c = 0; c < cnt; ++c) {
        const int itype = static_cast<int>(rng.NextZipf(20, 1.2)) - 1;
        movie_info.column(0).ints.push_back(row++);
        movie_info.column(1).ints.push_back(i);
        movie_info.column(2).ints.push_back(itype);
        movie_info.column(3).strings.push_back(words.Word());
      }
      if (rng.NextDouble() <
          0.25 + 0.5 * (title_year[static_cast<size_t>(i)] - 1900) / 120.0) {
        const int itype = 2 + static_cast<int>(rng.NextUint64(2));  // rating/votes
        movie_info_idx.column(0).ints.push_back(row_idx++);
        movie_info_idx.column(1).ints.push_back(i);
        movie_info_idx.column(2).ints.push_back(itype);
        movie_info_idx.column(3).strings.push_back(
            std::to_string(1 + rng.NextUint64(10)));
      }
    }
    movie_info.Seal();
    movie_info_idx.Seal();
  }

  // --- movie_keyword ---------------------------------------------------------
  Table& movie_keyword = db.AddTable(Def(
      "movie_keyword", {{"id", ColumnType::kInt, true},
                        {"movie_id", ColumnType::kInt, false},
                        {"keyword_id", ColumnType::kInt, false}}));
  {
    int row = 0;
    for (int i = 0; i < n_title; ++i) {
      const int cnt =
          static_cast<int>(activity[static_cast<size_t>(i)] * 1.2);
      for (int c = 0; c < cnt; ++c) {
        movie_keyword.column(0).ints.push_back(row++);
        movie_keyword.column(1).ints.push_back(i);
        movie_keyword.column(2).ints.push_back(
            static_cast<int>(rng.NextZipf(static_cast<uint64_t>(n_keyword),
                                          1.25)) - 1);
      }
    }
    movie_keyword.Seal();
  }

  // --- cast_info ---------------------------------------------------------------
  Table& cast_info = db.AddTable(Def(
      "cast_info", {{"id", ColumnType::kInt, true},
                    {"movie_id", ColumnType::kInt, false},
                    {"person_id", ColumnType::kInt, false},
                    {"person_role_id", ColumnType::kInt, false},
                    {"role_id", ColumnType::kInt, false}}));
  {
    int row = 0;
    for (int i = 0; i < n_title; ++i) {
      const int cnt =
          1 + static_cast<int>(activity[static_cast<size_t>(i)] * 2.0);
      for (int c = 0; c < cnt; ++c) {
        const int person =
            static_cast<int>(rng.NextZipf(static_cast<uint64_t>(n_name),
                                          1.2)) - 1;
        const int role = static_cast<int>(rng.NextZipf(12, 1.4)) - 1;
        cast_info.column(0).ints.push_back(row++);
        cast_info.column(1).ints.push_back(i);
        cast_info.column(2).ints.push_back(person);
        cast_info.column(3).ints.push_back(
            static_cast<int>(rng.NextUint64(static_cast<uint64_t>(n_char))));
        cast_info.column(4).ints.push_back(role);
      }
    }
    cast_info.Seal();
  }

  // --- aka_name / aka_title ------------------------------------------------------
  Table& aka_name = db.AddTable(Def(
      "aka_name", {{"id", ColumnType::kInt, true},
                   {"person_id", ColumnType::kInt, false},
                   {"name", ColumnType::kString, false}}));
  {
    const int n = scaled(1500);
    for (int i = 0; i < n; ++i) {
      aka_name.column(0).ints.push_back(i);
      aka_name.column(1).ints.push_back(
          static_cast<int>(rng.NextUint64(static_cast<uint64_t>(n_name))));
      aka_name.column(2).strings.push_back(words.Phrase(2));
    }
    aka_name.Seal();
  }
  Table& aka_title = db.AddTable(Def(
      "aka_title", {{"id", ColumnType::kInt, true},
                    {"movie_id", ColumnType::kInt, false},
                    {"title", ColumnType::kString, false}}));
  {
    const int n = scaled(1200);
    for (int i = 0; i < n; ++i) {
      aka_title.column(0).ints.push_back(i);
      aka_title.column(1).ints.push_back(
          static_cast<int>(rng.NextUint64(static_cast<uint64_t>(n_title))));
      aka_title.column(2).strings.push_back(words.Phrase(3));
    }
    aka_title.Seal();
  }

  // --- person_info -----------------------------------------------------------------
  Table& person_info = db.AddTable(Def(
      "person_info", {{"id", ColumnType::kInt, true},
                      {"person_id", ColumnType::kInt, false},
                      {"info_type_id", ColumnType::kInt, false},
                      {"info", ColumnType::kString, false}}));
  {
    const int n = scaled(4000);
    for (int i = 0; i < n; ++i) {
      person_info.column(0).ints.push_back(i);
      person_info.column(1).ints.push_back(
          static_cast<int>(rng.NextZipf(static_cast<uint64_t>(n_name), 1.2)) -
          1);
      person_info.column(2).ints.push_back(
          static_cast<int>(rng.NextUint64(20)));
      person_info.column(3).strings.push_back(words.Phrase(2));
    }
    person_info.Seal();
  }

  // --- complete_cast ------------------------------------------------------------------
  Table& complete_cast = db.AddTable(Def(
      "complete_cast", {{"id", ColumnType::kInt, true},
                        {"movie_id", ColumnType::kInt, false},
                        {"subject_id", ColumnType::kInt, false},
                        {"status_id", ColumnType::kInt, false}}));
  {
    const int n = scaled(1500);
    for (int i = 0; i < n; ++i) {
      complete_cast.column(0).ints.push_back(i);
      complete_cast.column(1).ints.push_back(
          static_cast<int>(rng.NextUint64(static_cast<uint64_t>(n_title))));
      complete_cast.column(2).ints.push_back(
          static_cast<int>(rng.NextUint64(2)));
      complete_cast.column(3).ints.push_back(
          2 + static_cast<int>(rng.NextUint64(2)));
    }
    complete_cast.Seal();
  }

  // --- movie_link -----------------------------------------------------------------------
  Table& movie_link = db.AddTable(Def(
      "movie_link", {{"id", ColumnType::kInt, true},
                     {"movie_id", ColumnType::kInt, false},
                     {"linked_movie_id", ColumnType::kInt, false},
                     {"link_type_id", ColumnType::kInt, false}}));
  {
    const int n = scaled(900);
    for (int i = 0; i < n; ++i) {
      movie_link.column(0).ints.push_back(i);
      movie_link.column(1).ints.push_back(
          static_cast<int>(rng.NextUint64(static_cast<uint64_t>(n_title))));
      movie_link.column(2).ints.push_back(
          static_cast<int>(rng.NextUint64(static_cast<uint64_t>(n_title))));
      movie_link.column(3).ints.push_back(
          static_cast<int>(rng.NextUint64(18)));
    }
    movie_link.Seal();
  }

  // --- movie_budget (numeric-heavy; strong cross-table correlation) ---------
  Table& movie_budget = db.AddTable(Def(
      "movie_budget", {{"id", ColumnType::kInt, true},
                       {"movie_id", ColumnType::kInt, false},
                       {"budget", ColumnType::kInt, false},
                       {"gross", ColumnType::kInt, false}}));
  {
    int row = 0;
    for (int i = 0; i < n_title; ++i) {
      if (rng.NextDouble() > 0.6) continue;
      // Budget correlates with recency and activity (company count).
      const double recency =
          (title_year[static_cast<size_t>(i)] - 1900) / 120.0;
      const int64_t budget = static_cast<int64_t>(
          1e5 + 2e8 * recency * activity[static_cast<size_t>(i)] *
                    rng.NextDouble() / 6.0);
      movie_budget.column(0).ints.push_back(row++);
      movie_budget.column(1).ints.push_back(i);
      movie_budget.column(2).ints.push_back(budget);
      movie_budget.column(3).ints.push_back(static_cast<int64_t>(
          budget * (0.2 + 2.5 * rng.NextDouble())));
    }
    movie_budget.Seal();
  }

  // --- Foreign keys --------------------------------------------------------
  auto fk = [&db](const char* from_t, const char* from_c, const char* to_t,
                  const char* to_c) {
    PREQR_CHECK(db.catalog().AddForeignKey({from_t, from_c, to_t, to_c}).ok());
  };
  fk("title", "kind_id", "kind_type", "id");
  fk("movie_companies", "movie_id", "title", "id");
  fk("movie_companies", "company_id", "company_name", "id");
  fk("movie_companies", "company_type_id", "company_type", "id");
  fk("movie_info", "movie_id", "title", "id");
  fk("movie_info", "info_type_id", "info_type", "id");
  fk("movie_info_idx", "movie_id", "title", "id");
  fk("movie_info_idx", "info_type_id", "info_type", "id");
  fk("movie_keyword", "movie_id", "title", "id");
  fk("movie_keyword", "keyword_id", "keyword", "id");
  fk("cast_info", "movie_id", "title", "id");
  fk("cast_info", "person_id", "name", "id");
  fk("cast_info", "person_role_id", "char_name", "id");
  fk("cast_info", "role_id", "role_type", "id");
  fk("aka_name", "person_id", "name", "id");
  fk("aka_title", "movie_id", "title", "id");
  fk("person_info", "person_id", "name", "id");
  fk("person_info", "info_type_id", "info_type", "id");
  fk("complete_cast", "movie_id", "title", "id");
  fk("complete_cast", "subject_id", "comp_cast_type", "id");
  fk("complete_cast", "status_id", "comp_cast_type", "id");
  fk("movie_link", "movie_id", "title", "id");
  fk("movie_link", "linked_movie_id", "title", "id");
  fk("movie_link", "link_type_id", "link_type", "id");
  fk("movie_budget", "movie_id", "title", "id");

  return db;
}

}  // namespace preqr::workload
