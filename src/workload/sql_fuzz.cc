#include "workload/sql_fuzz.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <utility>

#include "sql/lexer.h"

namespace preqr::workload {

namespace {

// splitmix64 finalizer: decorrelates (seed, index) into one case seed so
// every case is a pure function of the pair — random access, resumable
// streams, and one-command replay all fall out of this.
uint64_t MixSeed(uint64_t seed, uint64_t index) {
  uint64_t z = seed + 0x9E3779B97F4A7C15ULL * (index + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Rough token split for the token-level mutation operators: identifier
// runs, quoted strings, and single symbol characters; whitespace separates.
// Deliberately lossier than sql::Lex — it must survive inputs that the
// real lexer rejects (already-mutated queries get mutated again).
std::vector<std::string> RoughTokens(const std::string& s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    const char c = s[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (IsIdentChar(c)) {
      size_t j = i;
      while (j < s.size() && IsIdentChar(s[j])) ++j;
      out.push_back(s.substr(i, j - i));
      i = j;
      continue;
    }
    if (c == '\'') {
      size_t j = i + 1;
      while (j < s.size() && s[j] != '\'') ++j;
      if (j < s.size()) ++j;  // include the closing quote when present
      out.push_back(s.substr(i, j - i));
      i = j;
      continue;
    }
    out.push_back(std::string(1, c));
    ++i;
  }
  return out;
}

std::string JoinTokens(const std::vector<std::string>& tokens) {
  std::string out;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (i > 0) out += " ";
    out += tokens[i];
  }
  return out;
}

// Splice palette: printable garbage, control bytes, truncated and complete
// UTF-8 sequences. Indexed draws keep the stream deterministic.
const char* const kSplices[] = {
    "!",    "@",      "#",          "$",     "%%",     "\\",
    "`",    "\"",     "?",          "|",     "&",      "~",
    "\x01", "\x7f",   "\x80",       "\xff",  "\xc3",   "\xc3\xa9",
    "\xe2\x98\x83",   "\xf0\x9f\x92\xa9",    "\xf0\x9f", "\0\0",
    ";;",   "''",     "((",         "))",    "--",     "/*",
};
constexpr size_t kNumSplices = sizeof(kSplices) / sizeof(kSplices[0]);

std::string SpliceAt(size_t which) {
  // The "\0\0" entry would decay to an empty C string; build it explicitly.
  if (which == 21) return std::string("\0\0", 2);
  return kSplices[which];
}

// String-literal building blocks (anything but the single quote is legal
// inside '...'): words, LIKE metacharacters, punctuation that looks like
// SQL, raw UTF-8, and whitespace.
const char* const kStringPieces[] = {
    "abc",   "Hello", "%",       "_",     "%_%",    " ",
    "()",    ";",     "--",      "/*",    "*/",     ",",
    "NULL",  "SELECT", "\t",     "\n",    "0",      "x y z",
    "\xc3\xa9\xc3\xa8", "\xe2\x98\x83", "\xf0\x9f\x92\xa9", "\\n",
    "\"",    "<>",    "==",      "123",
};
constexpr size_t kNumStringPieces =
    sizeof(kStringPieces) / sizeof(kStringPieces[0]);

}  // namespace

std::string FuzzCase::Describe() const {
  std::string out = "seed=" + std::to_string(seed) +
                    " index=" + std::to_string(index) +
                    (from_grammar ? " grammar" : " mutated") + " sql=\"";
  for (char c : sql) {
    const unsigned char u = static_cast<unsigned char>(c);
    if (u >= 0x20 && u < 0x7f && c != '"' && c != '\\') {
      out += c;
    } else {
      static const char* hex = "0123456789abcdef";
      out += "\\x";
      out += hex[u >> 4];
      out += hex[u & 0xf];
    }
  }
  out += "\"";
  return out;
}

SqlFuzzer::SqlFuzzer(const sql::Catalog& catalog, uint64_t seed,
                     SqlFuzzOptions options)
    : catalog_(catalog), options_(options), seed_(seed) {}

FuzzCase SqlFuzzer::Next() { return CaseAt(index_++); }

FuzzCase SqlFuzzer::CaseAt(uint64_t index) const {
  Rng rng(MixSeed(seed_, index));
  FuzzCase c;
  c.seed = seed_;
  c.index = index;
  const bool mutate = rng.NextDouble() < options_.mutated_fraction;
  c.sql = GenerateValid(rng);
  if (mutate) {
    c.sql = Mutate(c.sql, rng);
    c.from_grammar = false;
  } else {
    c.from_grammar = true;
  }
  return c;
}

// --- Grammar generator ----------------------------------------------------

std::string SqlFuzzer::Kw(Rng& rng, const char* keyword) const {
  std::string out = keyword;
  // Mostly canonical; sometimes mangled case ("SeLeCt"), sometimes all
  // lower — the lexer is case-insensitive, so both stay valid.
  const uint64_t mode = rng.NextUint64(10);
  if (mode == 0) {
    for (char& c : out) {
      if (rng.NextUint64(2) == 0) {
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      }
    }
  } else if (mode == 1) {
    for (char& c : out) {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
  }
  return out;
}

std::string SqlFuzzer::Ws(Rng& rng) const {
  switch (rng.NextUint64(12)) {
    case 0: return "  ";
    case 1: return "\t";
    case 2: return "\n";
    case 3: return " \t ";
    case 4: return "   \n\t";
    default: return " ";
  }
}

std::string SqlFuzzer::PickTable(Rng& rng) const {
  const auto& tables = catalog_.tables();
  if (options_.foreign_identifiers && rng.NextUint64(8) == 0) {
    return RandomIdentifier(rng);
  }
  if (tables.empty()) return RandomIdentifier(rng);
  return tables[rng.NextUint64(tables.size())].name;
}

std::string SqlFuzzer::PickColumn(Rng& rng, const std::string& table) const {
  if (options_.foreign_identifiers && rng.NextUint64(8) == 0) {
    return RandomIdentifier(rng);
  }
  const sql::TableDef* def = catalog_.FindTable(table);
  if (def == nullptr || def->columns.empty()) {
    // Unknown table: borrow a column name from anywhere in the catalog so
    // schema-linking sees plausible-but-wrong references.
    const auto& tables = catalog_.tables();
    if (tables.empty()) return RandomIdentifier(rng);
    const auto& any = tables[rng.NextUint64(tables.size())];
    if (any.columns.empty()) return RandomIdentifier(rng);
    return any.columns[rng.NextUint64(any.columns.size())].name;
  }
  return def->columns[rng.NextUint64(def->columns.size())].name;
}

std::string SqlFuzzer::RandomIdentifier(Rng& rng) const {
  static const char* kAlpha = "abcdefghijklmnopqrstuvwxyz_";
  while (true) {
    const size_t len = 1 + rng.NextUint64(12);
    std::string out;
    out.reserve(len);
    for (size_t i = 0; i < len; ++i) out += kAlpha[rng.NextUint64(27)];
    std::string upper = out;
    std::transform(upper.begin(), upper.end(), upper.begin(), [](unsigned char c) {
      return static_cast<char>(std::toupper(c));
    });
    // Identifiers that spell a keyword would change the parse; redraw.
    if (!sql::IsSqlKeyword(upper)) return out;
  }
}

std::string SqlFuzzer::NumberLiteral(Rng& rng) const {
  auto digits = [&](int count) {
    std::string out;
    for (int i = 0; i < count; ++i) {
      out += static_cast<char>('0' + rng.NextUint64(10));
    }
    // No leading zero on long runs (keeps strtod exact-ish); single "0" ok.
    if (out.size() > 1 && out[0] == '0') out[0] = '1';
    return out;
  };
  switch (rng.NextUint64(8)) {
    case 0: return std::to_string(rng.NextUint64(1000));
    case 1: return "-" + std::to_string(rng.NextUint64(100000));
    case 2: return "0";
    // Large but in-int64-range integers (18 digits < 9.2e18).
    case 3: return digits(1 + static_cast<int>(rng.NextUint64(18)));
    // Floats with absurd precision; parse as kFloat, any magnitude legal.
    case 4: return digits(1 + static_cast<int>(rng.NextUint64(3))) + "." +
                   digits(1 + static_cast<int>(rng.NextUint64(30)));
    case 5: return "-" + digits(1) + "." + digits(12);
    // Beyond-int64 magnitude is legal as long as it is a *float* literal.
    case 6: return digits(25) + "." + digits(2);
    default: return "0.000000000000000000000000000" + digits(1);
  }
}

std::string SqlFuzzer::StringLiteral(Rng& rng) const {
  std::string body;
  const uint64_t pieces = rng.NextUint64(6);
  for (uint64_t i = 0; i < pieces; ++i) {
    body += kStringPieces[rng.NextUint64(kNumStringPieces)];
  }
  return "'" + body + "'";
}

std::string SqlFuzzer::ColumnText(Rng& rng, const std::string& table) const {
  const std::string column = PickColumn(rng, table);
  switch (rng.NextUint64(4)) {
    case 0: return column;                      // unqualified
    case 1: return table + "." + column;        // compact qualified
    case 2: return table + " . " + column;      // spaced qualified
    default: return table + "." + column;
  }
}

std::string SqlFuzzer::SelectItemText(Rng& rng,
                                      const std::string& table) const {
  static const char* kAggs[] = {"COUNT", "SUM", "AVG", "MIN", "MAX"};
  switch (rng.NextUint64(5)) {
    case 0: return "*";
    case 1: return Kw(rng, kAggs[rng.NextUint64(5)]) + Ws(rng) + "(" + Ws(rng) +
                   "*" + Ws(rng) + ")";
    case 2: return Kw(rng, kAggs[rng.NextUint64(5)]) + "(" +
                   ColumnText(rng, table) + ")";
    default: return ColumnText(rng, table);
  }
}

std::string SqlFuzzer::PredicateText(Rng& rng, const std::string& table,
                                     int depth) const {
  static const char* kOps[] = {"=", "<>", "<", "<=", ">", ">=", "!="};
  const std::string lhs = ColumnText(rng, table);
  const std::string ws = Ws(rng);
  switch (rng.NextUint64(10)) {
    case 0:  // join-shaped: column against column
      return lhs + ws + kOps[rng.NextUint64(7)] + ws +
             ColumnText(rng, PickTable(rng));
    case 1:
      return lhs + ws + Kw(rng, "BETWEEN") + ws + NumberLiteral(rng) + ws +
             Kw(rng, "AND") + ws + NumberLiteral(rng);
    case 2:
      return lhs + ws + Kw(rng, "LIKE") + ws + StringLiteral(rng);
    case 3: {  // huge IN list
      std::string out = lhs + ws + Kw(rng, "IN") + ws + "(";
      const int count = 1 + static_cast<int>(rng.NextUint64(
                                static_cast<uint64_t>(options_.max_in_list)));
      for (int i = 0; i < count; ++i) {
        if (i > 0) out += ",";
        if (rng.NextUint64(16) == 0) out += Ws(rng);
        out += rng.NextUint64(4) == 0 ? StringLiteral(rng)
                                      : NumberLiteral(rng);
      }
      return out + ")";
    }
    case 4:  // nested subquery
      if (depth + 1 < options_.max_subquery_depth) {
        return lhs + ws + Kw(rng, "IN") + ws + "(" +
               GenerateSelect(rng, depth + 1) + ")";
      }
      [[fallthrough]];
    case 5:
      return lhs + ws + kOps[rng.NextUint64(7)] + ws + StringLiteral(rng);
    default: {
      // Comparisons against literals; sometimes compact ("a.x<=3").
      const bool compact = rng.NextUint64(4) == 0;
      const std::string sep = compact ? "" : ws;
      return lhs + sep + kOps[rng.NextUint64(7)] + sep + NumberLiteral(rng);
    }
  }
}

std::string SqlFuzzer::GenerateSelect(Rng& rng, int depth) const {
  // Per-select alias counter lives in the text (a0, a1, ...); bindings
  // collect (binding name, table) so columns can reference the FROM list.
  std::string out = Kw(rng, "SELECT");
  std::vector<std::pair<std::string, std::string>> bindings;

  // FROM list decided first so the select list can reference it; deeper
  // join chains are rarer but reach max_join_chain.
  const int n_tables =
      1 + static_cast<int>(rng.NextUint64(4) == 0
                               ? rng.NextUint64(static_cast<uint64_t>(
                                     options_.max_join_chain))
                               : rng.NextUint64(3));
  for (int i = 0; i < n_tables; ++i) {
    const std::string table = PickTable(rng);
    std::string binding = table;
    if (rng.NextUint64(3) == 0) {
      binding = "a" + std::to_string(depth) + "_" + std::to_string(i);
    }
    bindings.emplace_back(binding, table);
  }

  auto binding_at = [&](size_t i) { return bindings[i].first; };
  // Column qualifiers mix real table names with alias bindings; alias
  // qualifiers over unknown aliases are exactly the malformed-schema
  // references the tokenizer must survive.
  auto random_binding = [&]() {
    const auto& b = bindings[rng.NextUint64(bindings.size())];
    return rng.NextUint64(3) == 0 ? b.first : b.second;
  };

  // SELECT list.
  if (rng.NextUint64(6) == 0) out += Ws(rng) + Kw(rng, "DISTINCT");
  const int n_items = 1 + static_cast<int>(rng.NextUint64(
                              static_cast<uint64_t>(options_.max_select_items)));
  for (int i = 0; i < n_items; ++i) {
    out += i == 0 ? Ws(rng) : (rng.NextUint64(4) == 0 ? " ," : ",") + Ws(rng);
    out += SelectItemText(rng, random_binding());
  }

  // FROM list: first table plain, the rest comma-joins or JOIN ... ON.
  out += Ws(rng) + Kw(rng, "FROM") + Ws(rng);
  for (int i = 0; i < n_tables; ++i) {
    std::string ref = bindings[static_cast<size_t>(i)].second;
    if (binding_at(static_cast<size_t>(i)) != ref) {
      ref += rng.NextUint64(2) == 0
                 ? Ws(rng) + Kw(rng, "AS") + Ws(rng) +
                       binding_at(static_cast<size_t>(i))
                 : Ws(rng) + binding_at(static_cast<size_t>(i));
    }
    if (i == 0) {
      out += ref;
      continue;
    }
    if (rng.NextUint64(2) == 0) {
      out += "," + Ws(rng) + ref;
      continue;
    }
    switch (rng.NextUint64(4)) {
      case 0: out += Ws(rng) + Kw(rng, "INNER"); break;
      case 1: out += Ws(rng) + Kw(rng, "LEFT"); break;
      case 2: out += Ws(rng) + Kw(rng, "RIGHT"); break;
      default: break;
    }
    out += Ws(rng) + Kw(rng, "JOIN") + Ws(rng) + ref + Ws(rng) + Kw(rng, "ON") +
           Ws(rng);
    // ON takes any predicate; usually the join shape.
    const std::string lhs =
        binding_at(static_cast<size_t>(i)) + "." +
        PickColumn(rng, bindings[static_cast<size_t>(i)].second);
    const size_t other = rng.NextUint64(static_cast<uint64_t>(i));
    out += lhs + Ws(rng) + "=" + Ws(rng) + binding_at(other) + "." +
           PickColumn(rng, bindings[other].second);
  }

  // WHERE conjuncts.
  if (rng.NextUint64(5) != 0) {
    const int n_preds = 1 + static_cast<int>(rng.NextUint64(
                                static_cast<uint64_t>(options_.max_predicates)));
    out += Ws(rng) + Kw(rng, "WHERE") + Ws(rng);
    for (int i = 0; i < n_preds; ++i) {
      if (i > 0) out += Ws(rng) + Kw(rng, "AND") + Ws(rng);
      out += PredicateText(rng, random_binding(), depth);
    }
  }

  if (rng.NextUint64(6) == 0) {
    out += Ws(rng) + Kw(rng, "GROUP") + Ws(rng) + Kw(rng, "BY") + Ws(rng) +
           ColumnText(rng, random_binding());
    if (rng.NextUint64(2) == 0) {
      out += "," + Ws(rng) + ColumnText(rng, random_binding());
    }
  }
  if (rng.NextUint64(6) == 0) {
    out += Ws(rng) + Kw(rng, "ORDER") + Ws(rng) + Kw(rng, "BY") + Ws(rng) +
           ColumnText(rng, random_binding());
    if (rng.NextUint64(2) == 0) {
      out += Ws(rng) + Kw(rng, rng.NextUint64(2) == 0 ? "ASC" : "DESC");
    }
  }
  if (rng.NextUint64(6) == 0) {
    out += Ws(rng) + Kw(rng, "LIMIT") + Ws(rng) +
           std::to_string(rng.NextUint64(1000000000));
  }
  // UNION chains re-enter the grammar; depth-capped like subqueries.
  if (depth < options_.max_union_chain && rng.NextUint64(6) == 0) {
    out += Ws(rng) + Kw(rng, "UNION") + Ws(rng) +
           GenerateSelect(rng, depth + 1);
  }
  return out;
}

std::string SqlFuzzer::GenerateValid(Rng& rng) const {
  std::string out = GenerateSelect(rng, 0);
  if (rng.NextUint64(3) == 0) out += Ws(rng) + ";";
  if (rng.NextUint64(8) == 0) out = " \t\n" + out;  // leading whitespace
  return out;
}

// --- Mutation engine ------------------------------------------------------

std::string SqlFuzzer::Mutate(const std::string& sql, Rng& rng) const {
  std::string cur = sql;
  const int n_ops =
      1 + static_cast<int>(
              rng.NextUint64(static_cast<uint64_t>(options_.max_mutations)));
  for (int op = 0; op < n_ops; ++op) {
    switch (rng.NextUint64(8)) {
      case 0: {  // byte truncation at every possible offset
        if (cur.empty()) break;
        cur.resize(rng.NextUint64(cur.size() + 1));
        break;
      }
      case 1: {  // garbage / UTF-8 byte splice
        const std::string splice = SpliceAt(rng.NextUint64(kNumSplices));
        const size_t at = rng.NextUint64(cur.size() + 1);
        cur.insert(at, splice);
        break;
      }
      case 2: {  // overwrite one byte
        if (cur.empty()) break;
        cur[rng.NextUint64(cur.size())] =
            static_cast<char>(1 + rng.NextUint64(255));
        break;
      }
      case 3: {  // token deletion
        auto tokens = RoughTokens(cur);
        if (tokens.empty()) break;
        tokens.erase(tokens.begin() +
                     static_cast<long>(rng.NextUint64(tokens.size())));
        cur = JoinTokens(tokens);
        break;
      }
      case 4: {  // token duplication
        auto tokens = RoughTokens(cur);
        if (tokens.empty()) break;
        const size_t at = rng.NextUint64(tokens.size());
        tokens.insert(tokens.begin() + static_cast<long>(at), tokens[at]);
        cur = JoinTokens(tokens);
        break;
      }
      case 5: {  // token swap
        auto tokens = RoughTokens(cur);
        if (tokens.size() < 2) break;
        const size_t a = rng.NextUint64(tokens.size());
        const size_t b = rng.NextUint64(tokens.size());
        std::swap(tokens[a], tokens[b]);
        cur = JoinTokens(tokens);
        break;
      }
      case 6: {  // unbalance quotes / parens
        static const char kBal[] = {'\'', '(', ')'};
        const char c = kBal[rng.NextUint64(3)];
        if (rng.NextUint64(2) == 0) {
          cur.insert(rng.NextUint64(cur.size() + 1), 1, c);
        } else {
          const size_t pos = cur.find(c);
          if (pos != std::string::npos) cur.erase(pos, 1);
        }
        break;
      }
      default: {  // identifier scramble against the catalog
        auto tokens = RoughTokens(cur);
        std::vector<size_t> ident_at;
        for (size_t i = 0; i < tokens.size(); ++i) {
          if (IsIdentChar(tokens[i][0])) ident_at.push_back(i);
        }
        if (ident_at.empty()) break;
        std::string& target = tokens[ident_at[rng.NextUint64(ident_at.size())]];
        if (rng.NextUint64(2) == 0) {
          target = RandomIdentifier(rng);
        } else if (!target.empty()) {
          // catalog-adjacent typo: perturb one character
          target[rng.NextUint64(target.size())] =
              static_cast<char>('a' + rng.NextUint64(26));
        }
        cur = JoinTokens(tokens);
        break;
      }
    }
  }
  return cur;
}

// --- Minimizer ------------------------------------------------------------

std::string SqlFuzzer::Minimize(
    const std::string& sql,
    const std::function<bool(const std::string&)>& still_fails) {
  if (!still_fails(sql)) return sql;
  std::string cur = sql;
  bool shrunk = true;
  while (shrunk && !cur.empty()) {
    shrunk = false;
    for (size_t chunk = std::max<size_t>(1, cur.size() / 2);; chunk /= 2) {
      size_t off = 0;
      while (off < cur.size()) {
        std::string candidate =
            cur.substr(0, off) + cur.substr(std::min(cur.size(), off + chunk));
        if (candidate.size() < cur.size() && still_fails(candidate)) {
          cur = std::move(candidate);
          shrunk = true;
          // Do not advance: the bytes after the removed chunk shifted here.
        } else {
          off += chunk;
        }
      }
      if (chunk == 1) break;
    }
  }
  return cur;
}

// --- Seed sweeps ----------------------------------------------------------

std::vector<uint64_t> SeedsFromEnv(const char* env_var,
                                   std::vector<uint64_t> defaults) {
  const char* raw = std::getenv(env_var);
  if (raw == nullptr || *raw == '\0') return defaults;
  std::vector<uint64_t> out;
  const char* p = raw;
  while (*p != '\0') {
    if (*p == ',' || std::isspace(static_cast<unsigned char>(*p))) {
      ++p;
      continue;
    }
    char* end = nullptr;
    const unsigned long long v = std::strtoull(p, &end, 10);
    if (end == p) break;  // non-numeric garbage: stop parsing
    out.push_back(static_cast<uint64_t>(v));
    p = end;
  }
  return out.empty() ? defaults : out;
}

}  // namespace preqr::workload
