#include "workload/rewrites.h"

#include <algorithm>
#include <memory>

#include "sql/printer.h"

namespace preqr::workload {

namespace {

std::string ShuffleFilters(sql::SelectStatement stmt, Rng& rng) {
  std::vector<sql::Predicate> joins, filters;
  for (const auto& p : stmt.predicates) {
    (p.IsJoin() ? joins : filters).push_back(p);
  }
  for (size_t i = filters.size(); i > 1; --i) {
    std::swap(filters[i - 1], filters[rng.NextUint64(i)]);
  }
  stmt.predicates = joins;
  for (auto& f : filters) stmt.predicates.push_back(f);
  return sql::ToSql(stmt);
}

}  // namespace

std::string EquivalentRewrite(const sql::SelectStatement& base, int which,
                              Rng& rng) {
  sql::SelectStatement stmt = base;
  switch (which % 5) {
    case 0: {
      bool applied = false;
      std::vector<sql::Predicate> preds;
      for (const auto& p : stmt.predicates) {
        if (p.op == sql::CompareOp::kBetween) {
          applied = true;
          sql::Predicate lo = p, hi = p;
          lo.op = sql::CompareOp::kGe;
          lo.values = {p.values[0]};
          hi.op = sql::CompareOp::kLe;
          hi.values = {p.values[1]};
          preds.push_back(lo);
          preds.push_back(hi);
        } else {
          preds.push_back(p);
        }
      }
      if (!applied) return ShuffleFilters(std::move(stmt), rng);
      stmt.predicates = std::move(preds);
      return sql::ToSql(stmt);
    }
    case 1: {
      for (size_t i = 0; i < stmt.predicates.size(); ++i) {
        const auto& p = stmt.predicates[i];
        if (p.op == sql::CompareOp::kIn && !p.subquery &&
            p.values.size() == 2) {
          sql::SelectStatement left = stmt, right = stmt;
          left.union_next = nullptr;
          right.union_next = nullptr;
          left.predicates[i].op = sql::CompareOp::kEq;
          left.predicates[i].values = {p.values[0]};
          right.predicates[i].op = sql::CompareOp::kEq;
          right.predicates[i].values = {p.values[1]};
          left.union_next =
              std::make_shared<sql::SelectStatement>(std::move(right));
          return sql::ToSql(left);
        }
      }
      return ShuffleFilters(std::move(stmt), rng);
    }
    case 2:
      return ShuffleFilters(std::move(stmt), rng);
    case 3: {
      for (auto& t : stmt.tables) {
        if (!t.alias.empty()) t.alias += "x";
      }
      auto rename = [](sql::ColumnRef& ref) {
        if (!ref.qualifier.empty()) ref.qualifier += "x";
      };
      for (auto& p : stmt.predicates) {
        rename(p.lhs);
        if (p.rhs_is_column) rename(p.rhs_column);
      }
      for (auto& item : stmt.items) {
        if (!item.star) rename(item.column);
      }
      for (auto& g : stmt.group_by) rename(g);
      return sql::ToSql(stmt);
    }
    default: {
      if (stmt.tables.size() > 2) {
        // Reorder the non-root tables (the join graph is unchanged).
        std::reverse(stmt.tables.begin() + 1, stmt.tables.end());
        return sql::ToSql(stmt);
      }
      return ShuffleFilters(std::move(stmt), rng);
    }
  }
}

}  // namespace preqr::workload
