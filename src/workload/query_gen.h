#ifndef PREQR_WORKLOAD_QUERY_GEN_H_
#define PREQR_WORKLOAD_QUERY_GEN_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "db/database.h"
#include "db/executor.h"
#include "sql/ast.h"

namespace preqr::workload {

// One generated benchmark query with its ground truth.
struct BenchQuery {
  std::string sql;
  sql::SelectStatement stmt;
  double true_card = 0;
  double true_cost = 0;
  int num_joins = 0;
};

// Generates the paper's estimation workloads over the synthetic IMDB
// database (Section 4.1.2):
//  - Synthetic: unique COUNT(*) queries with conjunctive equality/range
//    predicates on non-key numeric columns, 0-2 joins.
//  - Scale: fixed per-join-count buckets to probe join generalization.
//  - JOB-light: 70 queries, numeric predicates only, join distribution
//    {1:3, 2:32, 3:23, 4:12} (Table 6).
//  - JOB (strings): multi-join queries (4+) with string predicates
//    (LIKE / IN / equality) on satellite tables.
class ImdbQueryGenerator {
 public:
  ImdbQueryGenerator(const db::Database& db, uint64_t seed = 1);

  std::vector<BenchQuery> Synthetic(int n, int max_joins = 2);
  std::vector<BenchQuery> Scale(int per_join_count = 100, int max_joins = 4);
  std::vector<BenchQuery> JobLight();
  // Training workload matched to JOB-light's regime: broad numeric
  // predicates, 1-4 joins (the paper trains its models on a multi-join
  // query workload before evaluating on JOB/JOB-light).
  std::vector<BenchQuery> JobLightTrain(int n);
  std::vector<BenchQuery> JobStrings(int n, int min_joins = 4,
                                     int max_joins = 8);

 private:
  // Which filter columns a workload may use. kBroadNumeric restricts to
  // small-domain / range columns (the JOB-light regime); kNumeric adds
  // selective high-cardinality columns; kStrings adds string predicates.
  enum class FilterMode { kNumeric, kBroadNumeric, kStrings };

  // Builds one query with the given join count; retries until the true
  // cardinality is >= 1 (q-error is undefined on empty results).
  BenchQuery Generate(int num_joins, FilterMode mode);
  // Attempts one query; returns false if execution failed or empty.
  bool TryGenerate(int num_joins, FilterMode mode, BenchQuery* out);

  // Picks the anchor rows for correlated predicates: one random root
  // (title) row, and per satellite/dimension a row consistent with the
  // join path. Filter values drawn from anchor rows co-occur in the data,
  // which is exactly what breaks attribute-independence estimators.
  std::map<std::string, size_t> AnchorRows();

  const db::Database& db_;
  db::Executor executor_;
  Rng rng_;
  // Per satellite table: title id -> matching row ids (built lazily).
  std::map<std::string, std::unordered_map<int64_t, std::vector<int>>>
      fanout_index_;
};

}  // namespace preqr::workload

#endif  // PREQR_WORKLOAD_QUERY_GEN_H_
