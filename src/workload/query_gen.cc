#include "workload/query_gen.h"

#include <algorithm>
#include <array>
#include <set>

#include "sql/printer.h"

namespace preqr::workload {

namespace {

using sql::ColumnRef;
using sql::CompareOp;
using sql::Literal;
using sql::Predicate;
using sql::SelectItem;
using sql::SelectStatement;
using sql::TableRef;

// A possible FK join step: child.child_col = parent.parent_col.
struct JoinSpec {
  const char* child;
  const char* child_col;
  const char* parent;
  const char* parent_col;
};

// Level-1 edges hang satellites off `title`; level-2 edges extend to the
// dimension tables (snowflake). All generated join graphs are trees.
constexpr std::array<JoinSpec, 17> kJoinSpecs = {{
    {"movie_companies", "movie_id", "title", "id"},
    {"movie_info", "movie_id", "title", "id"},
    {"movie_info_idx", "movie_id", "title", "id"},
    {"movie_keyword", "movie_id", "title", "id"},
    {"cast_info", "movie_id", "title", "id"},
    {"aka_title", "movie_id", "title", "id"},
    {"complete_cast", "movie_id", "title", "id"},
    {"movie_link", "movie_id", "title", "id"},
    {"movie_budget", "movie_id", "title", "id"},
    {"company_name", "id", "movie_companies", "company_id"},
    {"company_type", "id", "movie_companies", "company_type_id"},
    {"info_type", "id", "movie_info", "info_type_id"},
    {"name", "id", "cast_info", "person_id"},
    {"role_type", "id", "cast_info", "role_id"},
    {"char_name", "id", "cast_info", "person_role_id"},
    {"keyword", "id", "movie_keyword", "keyword_id"},
    {"kind_type", "id", "title", "kind_id"},
}};

// Short canonical aliases (JOB style).
const char* AliasOf(const std::string& table) {
  if (table == "title") return "t";
  if (table == "movie_companies") return "mc";
  if (table == "movie_info") return "mi";
  if (table == "movie_info_idx") return "mi_idx";
  if (table == "movie_keyword") return "mk";
  if (table == "cast_info") return "ci";
  if (table == "aka_title") return "at";
  if (table == "aka_name") return "an";
  if (table == "complete_cast") return "cc";
  if (table == "movie_link") return "ml";
  if (table == "movie_budget") return "mb";
  if (table == "company_name") return "cn";
  if (table == "company_type") return "ct";
  if (table == "info_type") return "it";
  if (table == "name") return "n";
  if (table == "role_type") return "rt";
  if (table == "char_name") return "chn";
  if (table == "keyword") return "k";
  if (table == "kind_type") return "kt";
  if (table == "person_info") return "pi";
  if (table == "link_type") return "lt";
  if (table == "comp_cast_type") return "cct";
  return "x";
}

// A filterable column: table, column, allowed ops, numeric/string.
struct FilterSpec {
  const char* table;
  const char* column;
  bool is_string;
  bool range_ops;  // allow < >, otherwise = / IN only
};

constexpr std::array<FilterSpec, 12> kNumericFilters = {{
    {"title", "production_year", false, true},
    {"title", "kind_id", false, false},
    {"title", "season_nr", false, true},
    {"title", "episode_nr", false, true},
    {"movie_companies", "company_type_id", false, false},
    {"movie_companies", "company_id", false, true},
    {"movie_info", "info_type_id", false, false},
    {"movie_info_idx", "info_type_id", false, false},
    {"cast_info", "role_id", false, false},
    {"movie_keyword", "keyword_id", false, true},
    {"movie_budget", "budget", false, true},
    {"movie_budget", "gross", false, true},
}};

// JOB-light regime: broad range predicates and small-domain equalities only
// (the real JOB-light filters on production_year and *_type_id columns).
constexpr std::array<FilterSpec, 7> kBroadNumericFilters = {{
    {"title", "production_year", false, true},
    {"title", "kind_id", false, false},
    {"movie_companies", "company_type_id", false, false},
    {"movie_info", "info_type_id", false, false},
    {"movie_info_idx", "info_type_id", false, false},
    {"cast_info", "role_id", false, false},
    {"movie_budget", "budget", false, true},
}};

constexpr std::array<FilterSpec, 9> kStringFilters = {{
    {"company_name", "name", true, false},
    {"company_name", "country_code", true, false},
    {"keyword", "keyword", true, false},
    {"name", "gender", true, false},
    {"name", "name", true, false},
    {"kind_type", "kind", true, false},
    {"role_type", "role", true, false},
    {"title", "title", true, false},
    {"movie_info", "info", true, false},
}};

}  // namespace

ImdbQueryGenerator::ImdbQueryGenerator(const db::Database& db, uint64_t seed)
    : db_(db), executor_(db), rng_(seed) {
  // Fan-out indexes (title id -> satellite rows) for anchored sampling.
  for (const auto& fk : db.catalog().foreign_keys()) {
    if (fk.to_table != "title") continue;
    const db::Table* sat = db.FindTable(fk.from_table);
    if (sat == nullptr || fk.from_column != "movie_id") continue;
    auto& index = fanout_index_[fk.from_table];
    const int col = sat->def().ColumnIndex(fk.from_column);
    const auto& vals = sat->column(col).ints;
    for (size_t r = 0; r < vals.size(); ++r) {
      index[vals[r]].push_back(static_cast<int>(r));
    }
  }
}

std::map<std::string, size_t> ImdbQueryGenerator::AnchorRows() {
  std::map<std::string, size_t> anchors;
  const db::Table* title = db_.FindTable("title");
  if (title == nullptr || title->num_rows() == 0) return anchors;
  const size_t title_row = rng_.NextUint64(title->num_rows());
  anchors["title"] = title_row;
  const int64_t title_id = title->column(0).ints[title_row];
  for (const auto& [sat_name, index] : fanout_index_) {
    auto it = index.find(title_id);
    const db::Table* sat = db_.FindTable(sat_name);
    if (it == index.end() || it->second.empty()) {
      if (sat->num_rows() > 0) {
        anchors[sat_name] = rng_.NextUint64(sat->num_rows());
      }
      continue;
    }
    const size_t sat_row = static_cast<size_t>(
        it->second[rng_.NextUint64(it->second.size())]);
    anchors[sat_name] = sat_row;
    // Dimensions hanging off this satellite: follow the FK values.
    for (const auto& fk : db_.catalog().ForeignKeysFrom(sat_name)) {
      if (fk.to_table == "title") continue;
      const db::Table* dim = db_.FindTable(fk.to_table);
      const int col = sat->def().ColumnIndex(fk.from_column);
      const int64_t key = sat->column(col).ints[sat_row];
      if (dim != nullptr && key >= 0 &&
          static_cast<size_t>(key) < dim->num_rows()) {
        anchors[fk.to_table] = static_cast<size_t>(key);
      }
    }
  }
  // Root dimensions (kind_type via title.kind_id).
  const db::Table* kind = db_.FindTable("kind_type");
  if (kind != nullptr) {
    const int col = title->def().ColumnIndex("kind_id");
    const int64_t key = title->column(col).ints[title_row];
    if (key >= 0 && static_cast<size_t>(key) < kind->num_rows()) {
      anchors["kind_type"] = static_cast<size_t>(key);
    }
  }
  return anchors;
}

bool ImdbQueryGenerator::TryGenerate(int num_joins, FilterMode mode,
                                     BenchQuery* out) {
  const bool allow_strings = mode == FilterMode::kStrings;
  SelectStatement stmt;
  SelectItem item;
  item.agg = sql::AggFunc::kCount;
  item.star = true;
  stmt.items.push_back(item);

  // Pick the join tree.
  std::set<std::string> tables = {"title"};
  TableRef troot;
  troot.table = "title";
  troot.alias = "t";
  stmt.tables.push_back(troot);
  int added = 0;
  int guard = 0;
  while (added < num_joins && guard++ < 200) {
    const JoinSpec& spec = kJoinSpecs[rng_.NextUint64(kJoinSpecs.size())];
    if (tables.count(spec.child) || !tables.count(spec.parent)) continue;
    tables.insert(spec.child);
    TableRef tref;
    tref.table = spec.child;
    tref.alias = AliasOf(spec.child);
    stmt.tables.push_back(tref);
    Predicate join;
    join.lhs = ColumnRef{AliasOf(spec.child), spec.child_col};
    join.op = CompareOp::kEq;
    join.rhs_is_column = true;
    join.rhs_column = ColumnRef{AliasOf(spec.parent), spec.parent_col};
    stmt.predicates.push_back(join);
    ++added;
  }
  if (added < num_joins) return false;

  // Filter predicates on the involved tables.
  std::vector<FilterSpec> candidates;
  if (mode == FilterMode::kBroadNumeric) {
    for (const auto& f : kBroadNumericFilters) {
      if (tables.count(f.table)) candidates.push_back(f);
    }
  } else {
    for (const auto& f : kNumericFilters) {
      if (tables.count(f.table)) candidates.push_back(f);
    }
  }
  std::vector<FilterSpec> string_candidates;
  if (allow_strings) {
    for (const auto& f : kStringFilters) {
      if (tables.count(f.table)) string_candidates.push_back(f);
    }
  }
  if (candidates.empty() && string_candidates.empty()) return false;

  const int want_preds =
      1 + static_cast<int>(rng_.NextUint64(3));  // 1..3 filters
  // Correlated mode (60%): all filter values come from one consistent
  // anchor tuple of the join, so they co-occur in the data.
  const bool anchored = rng_.NextDouble() < 0.6;
  const std::map<std::string, size_t> anchors =
      anchored ? AnchorRows() : std::map<std::string, size_t>();
  std::set<std::pair<std::string, std::string>> used;
  int made = 0;
  bool made_string = false;
  for (int attempt = 0; attempt < 30 && made < want_preds; ++attempt) {
    const bool pick_string =
        !string_candidates.empty() &&
        (!made_string || rng_.NextDouble() < 0.4);
    const FilterSpec& f =
        pick_string
            ? string_candidates[rng_.NextUint64(string_candidates.size())]
            : (candidates.empty()
                   ? string_candidates[rng_.NextUint64(
                         string_candidates.size())]
                   : candidates[rng_.NextUint64(candidates.size())]);
    if (used.count({f.table, f.column})) continue;
    const db::Table* table = db_.FindTable(f.table);
    const int col = table->def().ColumnIndex(f.column);
    if (table->num_rows() == 0) continue;
    size_t row = rng_.NextUint64(table->num_rows());
    auto anchor_it = anchors.find(f.table);
    if (anchor_it != anchors.end()) row = anchor_it->second;
    used.insert({f.table, f.column});
    Predicate pred;
    pred.lhs = ColumnRef{AliasOf(f.table), f.column};
    if (f.is_string) {
      const std::string& v = table->column(col).strings[row];
      const double dice = rng_.NextDouble();
      if (dice < 0.4) {
        pred.op = CompareOp::kEq;
        pred.values.push_back(Literal::String(v));
      } else if (dice < 0.75 && v.size() >= 3) {
        pred.op = CompareOp::kLike;
        const size_t start = rng_.NextUint64(v.size() - 2);
        pred.values.push_back(
            Literal::String("%" + v.substr(start, 3) + "%"));
      } else {
        pred.op = CompareOp::kIn;
        pred.values.push_back(Literal::String(v));
        const size_t row2 = rng_.NextUint64(table->num_rows());
        const std::string& v2 = table->column(col).strings[row2];
        if (v2 != v) pred.values.push_back(Literal::String(v2));
      }
      made_string = true;
    } else {
      const int64_t v = table->column(col).ints[row];
      const double dice = rng_.NextDouble();
      if (!f.range_ops || dice < 0.34) {
        pred.op = CompareOp::kEq;
        pred.values.push_back(Literal::Int(v));
      } else if (dice < 0.67) {
        pred.op = CompareOp::kLt;
        pred.values.push_back(Literal::Int(v));
      } else {
        pred.op = CompareOp::kGt;
        pred.values.push_back(Literal::Int(v));
      }
    }
    stmt.predicates.push_back(std::move(pred));
    ++made;
  }
  if (made == 0) return false;
  if (allow_strings && !made_string) return false;

  auto res = executor_.Execute(stmt);
  if (!res.ok() || res.value().cardinality < 1.0) return false;
  out->stmt = stmt;
  out->sql = sql::ToSql(stmt);
  out->true_card = res.value().cardinality;
  out->true_cost = res.value().cost;
  out->num_joins = num_joins;
  return true;
}

BenchQuery ImdbQueryGenerator::Generate(int num_joins, FilterMode mode) {
  BenchQuery q;
  for (int attempt = 0; attempt < 300; ++attempt) {
    if (TryGenerate(num_joins, mode, &q)) return q;
  }
  // Fall back: numeric-only filters (never string-empty).
  for (int attempt = 0; attempt < 100; ++attempt) {
    if (TryGenerate(num_joins, FilterMode::kNumeric, &q)) return q;
  }
  PREQR_CHECK_MSG(false, "query generation failed repeatedly");
  return q;
}

std::vector<BenchQuery> ImdbQueryGenerator::Synthetic(int n, int max_joins) {
  std::vector<BenchQuery> out;
  out.reserve(static_cast<size_t>(n));
  std::set<std::string> seen;
  while (static_cast<int>(out.size()) < n) {
    const int joins = static_cast<int>(rng_.NextUint64(
        static_cast<uint64_t>(max_joins) + 1));
    BenchQuery q = Generate(joins, FilterMode::kNumeric);
    if (seen.insert(q.sql).second) out.push_back(std::move(q));
  }
  return out;
}

std::vector<BenchQuery> ImdbQueryGenerator::Scale(int per_join_count,
                                                  int max_joins) {
  std::vector<BenchQuery> out;
  for (int joins = 0; joins <= max_joins; ++joins) {
    for (int i = 0; i < per_join_count; ++i) {
      out.push_back(Generate(joins, FilterMode::kNumeric));
    }
  }
  return out;
}

std::vector<BenchQuery> ImdbQueryGenerator::JobLight() {
  // Table 6: {1 join: 3, 2 joins: 32, 3 joins: 23, 4 joins: 12}.
  std::vector<BenchQuery> out;
  const std::array<std::pair<int, int>, 4> dist = {
      {{1, 3}, {2, 32}, {3, 23}, {4, 12}}};
  for (const auto& [joins, count] : dist) {
    for (int i = 0; i < count; ++i) {
      out.push_back(Generate(joins, FilterMode::kBroadNumeric));
    }
  }
  return out;
}

std::vector<BenchQuery> ImdbQueryGenerator::JobLightTrain(int n) {
  std::vector<BenchQuery> out;
  out.reserve(static_cast<size_t>(n));
  while (static_cast<int>(out.size()) < n) {
    const int joins = 1 + static_cast<int>(rng_.NextUint64(4));
    out.push_back(Generate(joins, FilterMode::kBroadNumeric));
  }
  return out;
}

std::vector<BenchQuery> ImdbQueryGenerator::JobStrings(int n, int min_joins,
                                                       int max_joins) {
  std::vector<BenchQuery> out;
  out.reserve(static_cast<size_t>(n));
  while (static_cast<int>(out.size()) < n) {
    const int joins =
        min_joins + static_cast<int>(rng_.NextUint64(
                        static_cast<uint64_t>(max_joins - min_joins) + 1));
    out.push_back(Generate(joins, FilterMode::kStrings));
  }
  return out;
}

}  // namespace preqr::workload
