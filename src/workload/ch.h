#ifndef PREQR_WORKLOAD_CH_H_
#define PREQR_WORKLOAD_CH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "db/database.h"

namespace preqr::workload {

// A CH-benCHmark-flavored database (TPC-C transactional tables joined with
// TPC-H analytic dimensions), used for the query-similarity ground truth
// (Section 4.1.1, second workload).
db::Database MakeChDatabase(uint64_t seed = 42, double scale = 1.0);

// The CH similarity workload: queries in three categories per family —
// logically equivalent rewrites, same-template variants, and irrelevant
// queries — with ground-truth pairwise similarity defined as the overlap
// ratio of result row-id sets (computed by the executor).
struct ChSimilarityWorkload {
  std::vector<std::string> queries;
  // Family id per query; queries within a family share the base query.
  std::vector<int> family;
  // Category per query: 0 = equivalent to family base, 1 = same template,
  // 2 = irrelevant.
  std::vector<int> category;
  // Ground-truth pairwise similarity (|A∩B| / |A∪B| over result row ids).
  std::vector<std::vector<double>> true_similarity;
};

ChSimilarityWorkload MakeChSimilarityWorkload(const db::Database& ch,
                                              uint64_t seed = 7,
                                              int num_families = 12);

}  // namespace preqr::workload

#endif  // PREQR_WORKLOAD_CH_H_
