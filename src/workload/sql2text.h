#ifndef PREQR_WORKLOAD_SQL2TEXT_H_
#define PREQR_WORKLOAD_SQL2TEXT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace preqr::workload {

// One SQL-to-Text example: a query and its natural-language description
// (already word-tokenized, the BLEU unit).
struct TextPair {
  std::string sql;
  std::vector<std::string> text;
};

// WikiSQL-flavored dataset: single-table lookup/aggregate questions over a
// handful of small web-table schemas, with templated NL realizations
// ("what is the <col> when <col2> is <val>").
std::vector<TextPair> MakeWikiSqlDataset(int n, uint64_t seed = 31);

// StackOverflow-flavored dataset: join/aggregate developer questions over a
// Q&A schema with noisier, longer NL (two realization styles per shape).
std::vector<TextPair> MakeStackOverflowDataset(int n, uint64_t seed = 32);

}  // namespace preqr::workload

#endif  // PREQR_WORKLOAD_SQL2TEXT_H_
