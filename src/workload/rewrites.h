#ifndef PREQR_WORKLOAD_REWRITES_H_
#define PREQR_WORKLOAD_REWRITES_H_

#include <string>

#include "common/rng.h"
#include "sql/ast.h"

namespace preqr::workload {

// Produces a logically equivalent rewrite of `base` (same result set):
//  which % 5 == 0: BETWEEN  -> explicit >= / <= bounds
//  which % 5 == 1: IN(a, b) -> UNION of equality branches
//  which % 5 == 2: filter-conjunct order shuffle
//  which % 5 == 3: alias renaming
//  which % 5 == 4: implicit comma join <-> the same query with reordered
//                  non-root tables (join graph unchanged)
// Falls back to a shuffle when the chosen rewrite does not apply.
std::string EquivalentRewrite(const sql::SelectStatement& base, int which,
                              Rng& rng);

}  // namespace preqr::workload

#endif  // PREQR_WORKLOAD_REWRITES_H_
