#ifndef PREQR_WORKLOAD_SQL_FUZZ_H_
#define PREQR_WORKLOAD_SQL_FUZZ_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "sql/catalog.h"

namespace preqr::workload {

// Knobs for the fuzz stream. The defaults deliberately overshoot the
// training workloads (ImdbQueryGenerator caps at 8 joins and short IN
// lists) — the point is to exercise shapes the encoder never trained on.
struct SqlFuzzOptions {
  // Fraction of cases run through the mutation engine after generation.
  double mutated_fraction = 0.5;
  // Grammar extremes.
  int max_join_chain = 10;     // tables per FROM list
  int max_in_list = 64;        // literals per IN (...)
  int max_subquery_depth = 4;  // nested IN (SELECT ...) levels
  int max_union_chain = 3;     // additional UNION branches
  int max_predicates = 6;      // WHERE conjuncts per SELECT
  int max_select_items = 6;
  // Mutation engine: byte/token operators applied per mutated case.
  int max_mutations = 4;
  // Also emit identifiers that are absent from the catalog (X-SQL's
  // malformed-schema-reference failure mode); the query still parses, the
  // tokenizer must degrade gracefully.
  bool foreign_identifiers = true;
};

// One item of the fuzz stream. `from_grammar` cases are guaranteed to
// parse (the generator follows the parser's grammar exactly); mutated
// cases may do anything except crash the pipeline.
struct FuzzCase {
  std::string sql;
  bool from_grammar = false;
  uint64_t seed = 0;   // fuzzer seed
  uint64_t index = 0;  // position in the stream
  // "seed=S index=I sql=..." — paste into a test filter/driver to replay
  // this exact case in one command.
  std::string Describe() const;
};

// Seeded, fully deterministic grammar-driven SQL fuzzer (pstress-style):
// a grammar generator emitting valid-but-extreme SQL over the catalog
// (deep join chains, huge IN lists, nested subqueries, exotic literals,
// mixed-case keywords, pathological whitespace) plus a mutation engine
// corrupting valid queries (byte truncation/splices, token
// deletion/duplication/swap, unbalanced quotes/parens, identifier
// scrambling). Case `i` of seed `s` is a pure function of (s, i): the
// stream is bitwise-identical across runs, platforms, and access order.
class SqlFuzzer {
 public:
  SqlFuzzer(const sql::Catalog& catalog, uint64_t seed,
            SqlFuzzOptions options = {});

  // The next case of the stream; equivalent to CaseAt(next_index()++).
  FuzzCase Next();
  // Random access into the stream (reproduces any case independently).
  FuzzCase CaseAt(uint64_t index) const;

  // Grammar generator: one query that sql::Parse is guaranteed to accept.
  std::string GenerateValid(Rng& rng) const;
  // Mutation engine: applies 1..max_mutations corruption operators.
  std::string Mutate(const std::string& sql, Rng& rng) const;

  uint64_t seed() const { return seed_; }
  uint64_t next_index() const { return index_; }

  // Greedy byte-level ddmin: removes chunks (halves, quarters, ..., single
  // bytes) while `still_fails` keeps returning true. Used to shrink every
  // invariant-breaking input to a corpus-sized regression entry.
  static std::string Minimize(
      const std::string& sql,
      const std::function<bool(const std::string&)>& still_fails);

 private:
  std::string GenerateSelect(Rng& rng, int depth) const;
  std::string SelectItemText(Rng& rng, const std::string& table) const;
  std::string ColumnText(Rng& rng, const std::string& table) const;
  std::string PredicateText(Rng& rng, const std::string& table,
                            int depth) const;
  std::string NumberLiteral(Rng& rng) const;
  std::string StringLiteral(Rng& rng) const;
  std::string PickTable(Rng& rng) const;
  std::string PickColumn(Rng& rng, const std::string& table) const;
  std::string RandomIdentifier(Rng& rng) const;
  // Keyword with randomly mangled case ("SeLeCt"); lexing is
  // case-insensitive so the query stays valid.
  std::string Kw(Rng& rng, const char* keyword) const;
  // Pathological-but-legal whitespace between tokens.
  std::string Ws(Rng& rng) const;

  const sql::Catalog& catalog_;
  SqlFuzzOptions options_;
  uint64_t seed_;
  uint64_t index_ = 0;
};

// Parses a comma/space-separated list of uint64 seeds from environment
// variable `env_var`; returns `defaults` when the variable is unset,
// empty, or contains no valid entry. Lets CI sweep property/fuzz tests
// over a wider seed set without a rebuild (PREQR_PROPERTY_SEEDS,
// PREQR_FUZZ_SEEDS).
std::vector<uint64_t> SeedsFromEnv(const char* env_var,
                                   std::vector<uint64_t> defaults);

}  // namespace preqr::workload

#endif  // PREQR_WORKLOAD_SQL_FUZZ_H_
