#ifndef PREQR_WORKLOAD_IMDB_H_
#define PREQR_WORKLOAD_IMDB_H_

#include <cstdint>

#include "db/database.h"

namespace preqr::workload {

// Builds the synthetic IMDB database: the 22-table schema used by the
// paper's estimation tasks (JOB/JOB-light topology), populated with
// correlated synthetic data. Correlations are injected on purpose —
// production_year drives company counts, budgets, keyword counts and cast
// sizes — so that independence-assumption estimators (the PG baseline)
// mis-estimate multi-join queries the same way they do on real IMDB.
//
// `scale` multiplies base row counts (1.0 ≈ 12k titles / ~170k total rows).
db::Database MakeImdbDatabase(uint64_t seed = 42, double scale = 1.0);

}  // namespace preqr::workload

#endif  // PREQR_WORKLOAD_IMDB_H_
