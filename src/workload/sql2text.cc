#include "workload/sql2text.h"

#include "common/rng.h"
#include "common/string_util.h"

namespace preqr::workload {

namespace {

struct WebTable {
  const char* name;
  std::vector<const char*> columns;
  std::vector<const char*> values;  // candidate literal values
};

const std::vector<WebTable>& WikiTables() {
  static const std::vector<WebTable>* tables = new std::vector<WebTable>{
      {"olympics",
       {"athlete", "country", "medals", "year"},
       {"'usa'", "'china'", "'kenya'", "2008", "2012", "3"}},
      {"albums",
       {"artist", "album", "sales", "year"},
       {"'queen'", "'abba'", "1990", "2001", "500000"}},
      {"players",
       {"player", "team", "points", "season"},
       {"'lakers'", "'bulls'", "1996", "2010", "30"}},
      {"films",
       {"film", "director", "budget", "year"},
       {"'nolan'", "'scott'", "1999", "2015", "100"}},
      {"cities",
       {"city", "country", "population", "area"},
       {"'france'", "'japan'", "1000000", "500"}},
  };
  return *tables;
}

std::vector<std::string> Words(const std::string& s) {
  return SplitAny(ToLower(s), " '");
}

}  // namespace

std::vector<TextPair> MakeWikiSqlDataset(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<TextPair> out;
  out.reserve(static_cast<size_t>(n));
  const auto& tables = WikiTables();
  while (static_cast<int>(out.size()) < n) {
    const WebTable& t = tables[rng.NextUint64(tables.size())];
    const size_t ci = rng.NextUint64(t.columns.size());
    size_t cj = rng.NextUint64(t.columns.size());
    if (cj == ci) cj = (cj + 1) % t.columns.size();
    const std::string col = t.columns[ci];
    const std::string cond_col = t.columns[cj];
    const std::string value = t.values[rng.NextUint64(t.values.size())];
    const int shape = static_cast<int>(rng.NextUint64(4));
    TextPair pair;
    switch (shape) {
      case 0:
        pair.sql = "SELECT " + col + " FROM " + t.name + " WHERE " +
                   cond_col + " = " + value;
        pair.text = Words("what is the " + col + " when " + cond_col +
                          " is " + value);
        break;
      case 1:
        pair.sql = "SELECT COUNT(*) FROM " + std::string(t.name) +
                   " WHERE " + cond_col + " = " + value;
        pair.text = Words("how many rows have " + cond_col + " equal to " +
                          value);
        break;
      case 2:
        pair.sql = "SELECT MAX(" + col + ") FROM " + t.name + " WHERE " +
                   cond_col + " = " + value;
        pair.text = Words("what is the largest " + col + " when " +
                          cond_col + " is " + value);
        break;
      default:
        pair.sql = "SELECT " + col + " FROM " + t.name + " WHERE " +
                   cond_col + " > " + value;
        pair.text = Words("list the " + col + " where " + cond_col +
                          " is greater than " + value);
    }
    out.push_back(std::move(pair));
  }
  return out;
}

std::vector<TextPair> MakeStackOverflowDataset(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<TextPair> out;
  out.reserve(static_cast<size_t>(n));
  static const char* kTags[] = {"'sql'", "'python'", "'java'", "'cpp'",
                                "'rust'"};
  while (static_cast<int>(out.size()) < n) {
    const int rep = 50 * (1 + static_cast<int>(rng.NextUint64(20)));
    const std::string tag = kTags[rng.NextUint64(5)];
    const int score = static_cast<int>(rng.NextUint64(10));
    const int shape = static_cast<int>(rng.NextUint64(5));
    const bool alt = rng.NextUint64(2) == 0;  // two NL styles per shape
    TextPair pair;
    switch (shape) {
      case 0:
        pair.sql =
            "SELECT COUNT(*) FROM users u, posts p WHERE u.id = p.owner_id "
            "AND u.reputation > " + std::to_string(rep);
        pair.text = Words(
            alt ? "count the posts owned by users with reputation above " +
                      std::to_string(rep)
                : "how many posts belong to users whose reputation is "
                  "greater than " + std::to_string(rep));
        break;
      case 1:
        pair.sql =
            "SELECT u.name FROM users u, badges b WHERE u.id = b.user_id "
            "AND b.kind = " + tag;
        pair.text = Words(
            alt ? "get the names of users holding the " + tag + " badge"
                : "which users have a badge of kind " + tag);
        break;
      case 2:
        pair.sql =
            "SELECT COUNT(*) FROM posts p, tags t WHERE p.id = t.post_id "
            "AND t.name = " + tag + " AND p.score > " + std::to_string(score);
        pair.text = Words(
            alt ? "count posts tagged " + tag + " scoring more than " +
                      std::to_string(score)
                : "how many posts with tag " + tag +
                      " have score greater than " + std::to_string(score));
        break;
      case 3:
        pair.sql =
            "SELECT AVG(p.score) FROM posts p WHERE p.owner_id IN "
            "(SELECT id FROM users WHERE reputation > " +
            std::to_string(rep) + ")";
        pair.text = Words(
            alt ? "average score of posts from users with reputation over " +
                      std::to_string(rep)
                : "what is the mean post score for users whose reputation "
                  "exceeds " + std::to_string(rep));
        break;
      default:
        pair.sql =
            "SELECT u.name FROM users u WHERE u.reputation BETWEEN " +
            std::to_string(rep) + " AND " + std::to_string(rep * 2);
        pair.text = Words(
            alt ? "names of users with reputation between " +
                      std::to_string(rep) + " and " + std::to_string(rep * 2)
                : "list users whose reputation lies from " +
                      std::to_string(rep) + " to " + std::to_string(rep * 2));
    }
    out.push_back(std::move(pair));
  }
  return out;
}

}  // namespace preqr::workload
