#include "workload/clustering_workloads.h"

#include "common/rng.h"
#include "sql/parser.h"
#include "sql/printer.h"
#include "workload/rewrites.h"

namespace preqr::workload {

namespace {

// Expands base queries into clusters of logically equivalent rewrites.
ClusteringWorkload ExpandClusters(std::string name,
                                  const std::vector<std::string>& bases,
                                  int variants_per_cluster, uint64_t seed) {
  Rng rng(seed);
  ClusteringWorkload wl;
  wl.name = std::move(name);
  for (size_t c = 0; c < bases.size(); ++c) {
    auto parsed = sql::Parse(bases[c]);
    PREQR_CHECK_MSG(parsed.ok(), bases[c].c_str());
    wl.queries.push_back(sql::ToSql(parsed.value()));
    wl.labels.push_back(static_cast<int>(c));
    for (int v = 0; v < variants_per_cluster - 1; ++v) {
      wl.queries.push_back(
          EquivalentRewrite(parsed.value(), v + static_cast<int>(c), rng));
      wl.labels.push_back(static_cast<int>(c));
    }
  }
  return wl;
}

sql::TableDef Tab(const char* name,
                  std::vector<std::pair<const char*, sql::ColumnType>> cols,
                  const char* pk = "id") {
  sql::TableDef def;
  def.name = name;
  for (const auto& [cname, type] : cols) {
    def.columns.push_back({cname, type, std::string(cname) == pk});
  }
  return def;
}

}  // namespace

ClusteringWorkload MakeIitBombayWorkload(uint64_t seed) {
  // Student-authored queries over a university schema.
  const std::vector<std::string> bases = {
      "SELECT name FROM student WHERE dept IN ('cs','ee')",
      "SELECT COUNT(*) FROM student s, takes t WHERE s.id = t.student_id "
      "AND t.grade BETWEEN 6 AND 8",
      "SELECT name FROM instructor WHERE salary > 80000 AND dept = 'cs'",
      "SELECT c.title FROM course c, takes t WHERE c.id = t.course_id "
      "AND t.year = 2019 AND t.semester = 'fall'",
      "SELECT AVG(salary) FROM instructor WHERE dept IN ('math','physics')",
      "SELECT s.name FROM student s WHERE s.tot_cred BETWEEN 90 AND 120 "
      "AND s.dept = 'cs'",
  };
  ClusteringWorkload wl = ExpandClusters("IIT Bombay", bases, 8, seed);
  using sql::ColumnType;
  wl.catalog.AddTable(Tab("student", {{"id", ColumnType::kInt},
                                      {"name", ColumnType::kString},
                                      {"dept", ColumnType::kString},
                                      {"tot_cred", ColumnType::kInt}}));
  wl.catalog.AddTable(Tab("takes", {{"id", ColumnType::kInt},
                                    {"student_id", ColumnType::kInt},
                                    {"course_id", ColumnType::kInt},
                                    {"grade", ColumnType::kInt},
                                    {"year", ColumnType::kInt},
                                    {"semester", ColumnType::kString}}));
  wl.catalog.AddTable(Tab("instructor", {{"id", ColumnType::kInt},
                                         {"name", ColumnType::kString},
                                         {"salary", ColumnType::kInt},
                                         {"dept", ColumnType::kString}}));
  wl.catalog.AddTable(Tab("course", {{"id", ColumnType::kInt},
                                     {"title", ColumnType::kString}}));
  PREQR_CHECK(wl.catalog.AddForeignKey({"takes", "student_id", "student", "id"}).ok());
  PREQR_CHECK(wl.catalog.AddForeignKey({"takes", "course_id", "course", "id"}).ok());
  return wl;
}

ClusteringWorkload MakeUbExamWorkload(uint64_t seed) {
  // Exam answers: heavier on joins and aggregates.
  const std::vector<std::string> bases = {
      "SELECT COUNT(*) FROM employee e, works_on w WHERE e.id = w.emp_id "
      "AND w.hours > 20 AND e.dept_id IN (1,2)",
      "SELECT d.name FROM department d, employee e WHERE e.dept_id = d.id "
      "AND e.salary BETWEEN 50000 AND 90000",
      "SELECT MAX(salary) FROM employee WHERE dept_id = 4",
      "SELECT e.name FROM employee e WHERE e.id IN "
      "(SELECT emp_id FROM works_on WHERE hours > 30)",
      "SELECT p.name FROM project p, works_on w, employee e WHERE "
      "p.id = w.project_id AND e.id = w.emp_id AND e.salary > 60000 "
      "AND p.budget BETWEEN 10000 AND 50000",
      "SELECT COUNT(*) FROM employee GROUP BY dept_id",
      "SELECT SUM(w.hours) FROM works_on w WHERE w.project_id IN (3,7)",
      "SELECT name FROM project WHERE budget > 100000",
  };
  ClusteringWorkload wl = ExpandClusters("UB Exam", bases, 8, seed);
  using sql::ColumnType;
  wl.catalog.AddTable(Tab("employee", {{"id", ColumnType::kInt},
                                       {"name", ColumnType::kString},
                                       {"salary", ColumnType::kInt},
                                       {"dept_id", ColumnType::kInt}}));
  wl.catalog.AddTable(Tab("department", {{"id", ColumnType::kInt},
                                         {"name", ColumnType::kString}}));
  wl.catalog.AddTable(Tab("works_on", {{"id", ColumnType::kInt},
                                       {"emp_id", ColumnType::kInt},
                                       {"project_id", ColumnType::kInt},
                                       {"hours", ColumnType::kInt}}));
  wl.catalog.AddTable(Tab("project", {{"id", ColumnType::kInt},
                                      {"name", ColumnType::kString},
                                      {"budget", ColumnType::kInt}}));
  PREQR_CHECK(wl.catalog.AddForeignKey({"employee", "dept_id", "department", "id"}).ok());
  PREQR_CHECK(wl.catalog.AddForeignKey({"works_on", "emp_id", "employee", "id"}).ok());
  PREQR_CHECK(wl.catalog.AddForeignKey({"works_on", "project_id", "project", "id"}).ok());
  return wl;
}

ClusteringWorkload MakePocketDataWorkload(uint64_t seed) {
  // Mobile key-value style log: few shapes, many LIMIT lookups.
  const std::vector<std::string> bases = {
      "SELECT value FROM properties WHERE key = 'locale' LIMIT 1",
      "SELECT * FROM accounts WHERE account_id = 12 AND status IN (0,1)",
      "SELECT body FROM messages m WHERE m.thread_id = 7 "
      "ORDER BY m.timestamp DESC LIMIT 20",
      "SELECT COUNT(*) FROM contacts WHERE starred = 1",
      "SELECT c.name FROM contacts c, raw_contacts r WHERE "
      "c.raw_id = r.id AND r.deleted = 0 AND r.account_id BETWEEN 1 AND 3",
      "SELECT photo FROM profile WHERE user_id = 42 LIMIT 1",
      "SELECT * FROM events WHERE calendar_id IN (1,2) AND "
      "start_time > 1500000000",
      "SELECT id FROM sync_state WHERE dirty = 1 ORDER BY id",
      "SELECT COUNT(*) FROM notifications WHERE seen = 0 AND kind = 'plus'",
      "SELECT data FROM cache WHERE url = 'https:' LIMIT 1",
  };
  ClusteringWorkload wl = ExpandClusters("PocketData", bases, 7, seed);
  using sql::ColumnType;
  wl.catalog.AddTable(Tab("properties", {{"id", ColumnType::kInt},
                                         {"key", ColumnType::kString},
                                         {"value", ColumnType::kString}}));
  wl.catalog.AddTable(Tab("accounts", {{"account_id", ColumnType::kInt},
                                       {"status", ColumnType::kInt}},
                          "account_id"));
  wl.catalog.AddTable(Tab("messages", {{"id", ColumnType::kInt},
                                       {"thread_id", ColumnType::kInt},
                                       {"timestamp", ColumnType::kInt},
                                       {"body", ColumnType::kString}}));
  wl.catalog.AddTable(Tab("contacts", {{"id", ColumnType::kInt},
                                       {"name", ColumnType::kString},
                                       {"starred", ColumnType::kInt},
                                       {"raw_id", ColumnType::kInt}}));
  wl.catalog.AddTable(Tab("raw_contacts", {{"id", ColumnType::kInt},
                                           {"deleted", ColumnType::kInt},
                                           {"account_id", ColumnType::kInt}}));
  wl.catalog.AddTable(Tab("profile", {{"user_id", ColumnType::kInt},
                                      {"photo", ColumnType::kString}},
                          "user_id"));
  wl.catalog.AddTable(Tab("events", {{"id", ColumnType::kInt},
                                     {"calendar_id", ColumnType::kInt},
                                     {"start_time", ColumnType::kInt}}));
  wl.catalog.AddTable(Tab("sync_state", {{"id", ColumnType::kInt},
                                         {"dirty", ColumnType::kInt}}));
  wl.catalog.AddTable(Tab("notifications", {{"id", ColumnType::kInt},
                                            {"seen", ColumnType::kInt},
                                            {"kind", ColumnType::kString}}));
  wl.catalog.AddTable(Tab("cache", {{"id", ColumnType::kInt},
                                    {"url", ColumnType::kString},
                                    {"data", ColumnType::kString}}));
  PREQR_CHECK(wl.catalog.AddForeignKey({"contacts", "raw_id", "raw_contacts", "id"}).ok());
  return wl;
}

}  // namespace preqr::workload
