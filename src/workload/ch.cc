#include "workload/ch.h"

#include <algorithm>
#include <set>
#include <unordered_set>

#include "common/rng.h"
#include "db/executor.h"
#include "sql/parser.h"
#include "sql/printer.h"
#include "workload/rewrites.h"

namespace preqr::workload {

namespace {
using db::Database;
using db::Table;
using sql::ColumnType;
using sql::TableDef;

TableDef Def(const std::string& name, std::vector<sql::ColumnDef> columns) {
  TableDef def;
  def.name = name;
  def.columns = std::move(columns);
  return def;
}
}  // namespace

db::Database MakeChDatabase(uint64_t seed, double scale) {
  Rng rng(seed);
  Database db;
  const auto scaled = [scale](int base) {
    return std::max(4, static_cast<int>(base * scale));
  };
  const int n_customer = scaled(1500);
  const int n_orders = scaled(6000);
  const int n_item = scaled(400);
  const int n_supplier = scaled(60);

  Table& nation = db.AddTable(Def(
      "nation", {{"id", ColumnType::kInt, true},
                 {"name", ColumnType::kString, false},
                 {"region_id", ColumnType::kInt, false}}));
  static const char* kNations[] = {"usa", "uk", "france", "germany", "japan",
                                   "india", "china", "brazil", "canada",
                                   "spain"};
  for (int i = 0; i < 10; ++i) {
    nation.column(0).ints.push_back(i);
    nation.column(1).strings.push_back(kNations[i]);
    nation.column(2).ints.push_back(i % 4);
  }
  nation.Seal();

  Table& supplier = db.AddTable(Def(
      "supplier", {{"id", ColumnType::kInt, true},
                   {"name", ColumnType::kString, false},
                   {"nation_id", ColumnType::kInt, false}}));
  for (int i = 0; i < n_supplier; ++i) {
    supplier.column(0).ints.push_back(i);
    supplier.column(1).strings.push_back("supplier_" + std::to_string(i));
    supplier.column(2).ints.push_back(static_cast<int>(rng.NextUint64(10)));
  }
  supplier.Seal();

  Table& item = db.AddTable(Def(
      "item", {{"id", ColumnType::kInt, true},
               {"name", ColumnType::kString, false},
               {"price", ColumnType::kInt, false},
               {"supplier_id", ColumnType::kInt, false}}));
  for (int i = 0; i < n_item; ++i) {
    item.column(0).ints.push_back(i);
    item.column(1).strings.push_back("item_" + std::to_string(i));
    item.column(2).ints.push_back(
        1 + static_cast<int>(rng.NextZipf(500, 1.3)));
    item.column(3).ints.push_back(
        static_cast<int>(rng.NextUint64(static_cast<uint64_t>(n_supplier))));
  }
  item.Seal();

  Table& customer = db.AddTable(Def(
      "customer", {{"id", ColumnType::kInt, true},
                   {"name", ColumnType::kString, false},
                   {"nation_id", ColumnType::kInt, false},
                   {"segment", ColumnType::kString, false},
                   {"balance", ColumnType::kInt, false}}));
  static const char* kSegments[] = {"automobile", "building", "furniture",
                                    "household", "machinery"};
  for (int i = 0; i < n_customer; ++i) {
    customer.column(0).ints.push_back(i);
    customer.column(1).strings.push_back("customer_" + std::to_string(i));
    const int nat = static_cast<int>(rng.NextZipf(10, 1.3)) - 1;
    customer.column(2).ints.push_back(nat);
    // Segment correlates with nation.
    customer.column(3).strings.push_back(
        kSegments[(nat + static_cast<int>(rng.NextUint64(3))) % 5]);
    customer.column(4).ints.push_back(
        static_cast<int>(rng.NextUint64(10000)));
  }
  customer.Seal();

  Table& orders = db.AddTable(Def(
      "orders", {{"id", ColumnType::kInt, true},
                 {"customer_id", ColumnType::kInt, false},
                 {"order_year", ColumnType::kInt, false},
                 {"status", ColumnType::kString, false},
                 {"total", ColumnType::kInt, false}}));
  for (int i = 0; i < n_orders; ++i) {
    orders.column(0).ints.push_back(i);
    const int cust =
        static_cast<int>(rng.NextZipf(static_cast<uint64_t>(n_customer),
                                      1.15)) - 1;
    orders.column(1).ints.push_back(cust);
    orders.column(2).ints.push_back(2015 + static_cast<int>(rng.NextUint64(8)));
    const double dice = rng.NextDouble();
    orders.column(3).strings.push_back(
        dice < 0.6 ? "delivered" : (dice < 0.85 ? "pending" : "cancelled"));
    orders.column(4).ints.push_back(
        10 + static_cast<int>(rng.NextZipf(5000, 1.2)));
  }
  orders.Seal();

  Table& order_line = db.AddTable(Def(
      "order_line", {{"id", ColumnType::kInt, true},
                     {"order_id", ColumnType::kInt, false},
                     {"item_id", ColumnType::kInt, false},
                     {"quantity", ColumnType::kInt, false}}));
  {
    int row = 0;
    for (int o = 0; o < n_orders; ++o) {
      const int lines = 1 + static_cast<int>(rng.NextUint64(5));
      for (int l = 0; l < lines; ++l) {
        order_line.column(0).ints.push_back(row++);
        order_line.column(1).ints.push_back(o);
        order_line.column(2).ints.push_back(static_cast<int>(
            rng.NextZipf(static_cast<uint64_t>(n_item), 1.3)) - 1);
        order_line.column(3).ints.push_back(
            1 + static_cast<int>(rng.NextUint64(20)));
      }
    }
    order_line.Seal();
  }

  auto fk = [&db](const char* ft, const char* fc, const char* tt,
                  const char* tc) {
    PREQR_CHECK(db.catalog().AddForeignKey({ft, fc, tt, tc}).ok());
  };
  fk("supplier", "nation_id", "nation", "id");
  fk("customer", "nation_id", "nation", "id");
  fk("item", "supplier_id", "supplier", "id");
  fk("orders", "customer_id", "customer", "id");
  fk("order_line", "order_id", "orders", "id");
  fk("order_line", "item_id", "item", "id");
  return db;
}

ChSimilarityWorkload MakeChSimilarityWorkload(const db::Database& ch,
                                              uint64_t seed,
                                              int num_families) {
  Rng rng(seed);
  db::Executor exec(ch);
  ChSimilarityWorkload wl;

  // Base templates rooted at `orders` so result row ids are comparable.
  const auto base_query = [&](int family) {
    sql::SelectStatement stmt;
    sql::SelectItem item;
    item.column = {"o", "id"};
    stmt.items.push_back(item);
    stmt.tables.push_back({"orders", "o"});
    const int year = 2015 + family % 8;
    sql::Predicate year_pred;
    year_pred.lhs = {"o", "order_year"};
    switch (family % 3) {
      case 0:
        year_pred.op = sql::CompareOp::kBetween;
        year_pred.values = {sql::Literal::Int(year),
                            sql::Literal::Int(year + 2)};
        break;
      case 1: {
        year_pred.op = sql::CompareOp::kGe;
        year_pred.values = {sql::Literal::Int(year)};
        break;
      }
      default:
        year_pred.op = sql::CompareOp::kEq;
        year_pred.values = {sql::Literal::Int(year)};
    }
    stmt.predicates.push_back(year_pred);
    sql::Predicate status;
    status.lhs = {"o", "status"};
    status.op = sql::CompareOp::kIn;
    status.values = {sql::Literal::String("delivered"),
                     sql::Literal::String("pending")};
    if (family % 2 == 0) stmt.predicates.push_back(status);
    if (family % 4 == 3) {
      // Join variant: orders x customer with a nation filter.
      stmt.tables.push_back({"customer", "c"});
      sql::Predicate join;
      join.lhs = {"o", "customer_id"};
      join.op = sql::CompareOp::kEq;
      join.rhs_is_column = true;
      join.rhs_column = {"c", "id"};
      stmt.predicates.push_back(join);
      sql::Predicate nat;
      nat.lhs = {"c", "nation_id"};
      nat.op = sql::CompareOp::kLt;
      nat.values = {sql::Literal::Int(3 + family % 5)};
      stmt.predicates.push_back(nat);
    }
    return stmt;
  };

  for (int f = 0; f < num_families; ++f) {
    sql::SelectStatement base = base_query(f);
    const std::string base_sql = sql::ToSql(base);
    // Category 0: the base + two equivalent rewrites.
    wl.queries.push_back(base_sql);
    wl.family.push_back(f);
    wl.category.push_back(0);
    for (int r = 0; r < 2; ++r) {
      wl.queries.push_back(EquivalentRewrite(base, f + r, rng));
      wl.family.push_back(f);
      wl.category.push_back(0);
    }
    // Category 1: same template, literals shifted far enough to move the
    // predicate into a different region of the value distribution.
    for (int r = 0; r < 2; ++r) {
      sql::SelectStatement variant = base;
      for (auto& p : variant.predicates) {
        for (auto& v : p.values) {
          if (v.kind == sql::Literal::Kind::kInt) {
            if (v.int_value >= 2000) {
              v.int_value += 2 + 2 * r;  // years: jump several buckets
            } else {
              v.int_value = v.int_value * (2 + r) + 37;
            }
          } else if (v.kind == sql::Literal::Kind::kString &&
                     v.string_value == "delivered") {
            v.string_value = "cancelled";  // different MCV token
          }
        }
      }
      wl.queries.push_back(sql::ToSql(variant));
      wl.family.push_back(f);
      wl.category.push_back(1);
    }
    // Category 2: irrelevant query (different filter column & shape).
    {
      sql::SelectStatement other;
      sql::SelectItem item;
      item.agg = sql::AggFunc::kCount;
      item.star = true;
      other.items.push_back(item);
      other.tables.push_back({"orders", "o"});
      sql::Predicate p;
      p.lhs = {"o", "total"};
      p.op = sql::CompareOp::kGt;
      p.values = {sql::Literal::Int(100 + 50 * f)};
      other.predicates.push_back(p);
      wl.queries.push_back(sql::ToSql(other));
      wl.family.push_back(f);
      wl.category.push_back(2);
    }
  }

  // Ground-truth similarity from result row-id overlap.
  std::vector<std::vector<int>> results;
  for (const auto& q : wl.queries) {
    auto parsed = sql::Parse(q);
    PREQR_CHECK(parsed.ok());
    auto res = exec.Execute(parsed.value(), /*collect_root_rows=*/true);
    PREQR_CHECK_MSG(res.ok(), res.status().message().c_str());
    results.push_back(res.value().root_row_ids);
  }
  const size_t n = wl.queries.size();
  wl.true_similarity.assign(n, std::vector<double>(n, 0));
  for (size_t i = 0; i < n; ++i) {
    std::unordered_set<int> set_i(results[i].begin(), results[i].end());
    for (size_t j = 0; j < n; ++j) {
      size_t inter = 0;
      for (int r : results[j]) inter += set_i.count(r);
      const size_t uni = set_i.size() + results[j].size() - inter;
      wl.true_similarity[i][j] =
          uni == 0 ? 1.0 : static_cast<double>(inter) / static_cast<double>(uni);
    }
  }
  return wl;
}

}  // namespace preqr::workload
