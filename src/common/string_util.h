#ifndef PREQR_COMMON_STRING_UTIL_H_
#define PREQR_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace preqr {

// Lower-cases ASCII characters.
std::string ToLower(std::string_view s);

// Splits on any character from `delims`, dropping empty pieces.
std::vector<std::string> SplitAny(std::string_view s, std::string_view delims);

// Joins pieces with `sep`.
std::string Join(const std::vector<std::string>& pieces, std::string_view sep);

// Levenshtein edit distance (used by template clustering).
int EditDistance(std::string_view a, std::string_view b);

// Normalized string similarity in [0,1]: 1 - dist/max(len).
double StringSimilarity(std::string_view a, std::string_view b);

// Jaccard coefficient between two string sets.
double Jaccard(const std::vector<std::string>& a,
               const std::vector<std::string>& b);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

}  // namespace preqr

#endif  // PREQR_COMMON_STRING_UTIL_H_
