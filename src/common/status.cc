#include "common/status.h"

namespace preqr {

namespace {
const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kParseError:
      return "PARSE_ERROR";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
  }
  return "UNKNOWN";
}
}  // namespace

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kParseError:
      return "parse_error";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kDeadlineExceeded:
      return "deadline_exceeded";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
    case StatusCode::kUnavailable:
      return "unavailable";
  }
  return "unknown";
}

StatusCode StatusCodeFromByte(int byte) {
  if (byte < 0 || byte > static_cast<int>(StatusCode::kUnavailable)) {
    return StatusCode::kInternal;
  }
  return static_cast<StatusCode>(byte);
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  return std::string(CodeName(code_)) + ": " + message_;
}

}  // namespace preqr
