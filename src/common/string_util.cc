#include "common/string_util.h"

#include <algorithm>
#include <set>

namespace preqr {

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::vector<std::string> SplitAny(std::string_view s,
                                  std::string_view delims) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (delims.find(c) != std::string_view::npos) {
      if (!cur.empty()) out.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(std::move(cur));
  return out;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

int EditDistance(std::string_view a, std::string_view b) {
  const size_t n = a.size(), m = b.size();
  if (n == 0) return static_cast<int>(m);
  if (m == 0) return static_cast<int>(n);
  std::vector<int> prev(m + 1), cur(m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = static_cast<int>(j);
  for (size_t i = 1; i <= n; ++i) {
    cur[0] = static_cast<int>(i);
    for (size_t j = 1; j <= m; ++j) {
      const int cost = a[i - 1] == b[j - 1] ? 0 : 1;
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, prev[j - 1] + cost});
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

double StringSimilarity(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  const double d = EditDistance(a, b);
  const double denom = static_cast<double>(std::max(a.size(), b.size()));
  return 1.0 - d / denom;
}

double Jaccard(const std::vector<std::string>& a,
               const std::vector<std::string>& b) {
  std::set<std::string> sa(a.begin(), a.end());
  std::set<std::string> sb(b.begin(), b.end());
  if (sa.empty() && sb.empty()) return 1.0;
  size_t inter = 0;
  for (const auto& x : sa) inter += sb.count(x);
  const size_t uni = sa.size() + sb.size() - inter;
  return uni == 0 ? 1.0 : static_cast<double>(inter) / uni;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

}  // namespace preqr
