#ifndef PREQR_COMMON_LRU_CACHE_H_
#define PREQR_COMMON_LRU_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>

#include "common/check.h"

namespace preqr {

// Aggregated access statistics of a ShardedLruCache (shared across all
// instantiations so callers can expose it without naming the value type).
struct LruCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
};

// Sharded, size-bounded LRU map. The key space is split across independent
// shards (hash of the key picks the shard), each guarded by its own mutex
// and evicting its own least-recently-used tail, so concurrent lookups on
// different shards never contend. Values are returned by copy — callers
// must not assume an entry outlives the Get that produced it, because any
// later Put may evict it.
//
// The total capacity is distributed evenly: each shard holds at most
// ceil(capacity / num_shards) entries, so the cache as a whole never holds
// more than num_shards * shard_capacity() entries (>= capacity, < capacity
// + num_shards).
template <typename K, typename V, typename Hash = std::hash<K>>
class ShardedLruCache {
 public:
  using Stats = LruCacheStats;

  explicit ShardedLruCache(size_t capacity, int num_shards = 8) {
    PREQR_CHECK_GT(capacity, 0u);
    PREQR_CHECK_GT(num_shards, 0);
    // More shards than entries would make shard capacities zero; clamp.
    if (static_cast<size_t>(num_shards) > capacity) {
      num_shards = static_cast<int>(capacity);
    }
    num_shards_ = num_shards;
    shard_capacity_ = (capacity + static_cast<size_t>(num_shards) - 1) /
                      static_cast<size_t>(num_shards);
    shards_ = std::make_unique<Shard[]>(static_cast<size_t>(num_shards_));
  }

  // Returns a copy of the value and marks the entry most-recently-used.
  std::optional<V> Get(const K& key) {
    Shard& s = ShardFor(key);
    std::lock_guard<std::mutex> lock(s.mu);
    auto it = s.index.find(key);
    if (it == s.index.end()) {
      ++s.stats.misses;
      return std::nullopt;
    }
    s.order.splice(s.order.begin(), s.order, it->second);
    ++s.stats.hits;
    return it->second->second;
  }

  // Inserts or overwrites; either way the entry becomes most-recently-used.
  // Evicts the shard's LRU tail when the shard is over capacity.
  void Put(const K& key, V value) {
    Shard& s = ShardFor(key);
    std::lock_guard<std::mutex> lock(s.mu);
    auto it = s.index.find(key);
    if (it != s.index.end()) {
      it->second->second = std::move(value);
      s.order.splice(s.order.begin(), s.order, it->second);
      return;
    }
    s.order.emplace_front(key, std::move(value));
    s.index.emplace(key, s.order.begin());
    if (s.index.size() > shard_capacity_) {
      s.index.erase(s.order.back().first);
      s.order.pop_back();
      ++s.stats.evictions;
    }
  }

  // Membership probe that does not touch recency order or hit statistics.
  bool Contains(const K& key) const {
    Shard& s = ShardFor(key);
    std::lock_guard<std::mutex> lock(s.mu);
    return s.index.find(key) != s.index.end();
  }

  // Drops every entry (statistics are kept: invalidation is not a miss).
  void Clear() {
    for (int i = 0; i < num_shards_; ++i) {
      std::lock_guard<std::mutex> lock(shards_[i].mu);
      shards_[i].order.clear();
      shards_[i].index.clear();
    }
  }

  size_t size() const {
    size_t n = 0;
    for (int i = 0; i < num_shards_; ++i) {
      std::lock_guard<std::mutex> lock(shards_[i].mu);
      n += shards_[i].index.size();
    }
    return n;
  }

  Stats stats() const {
    Stats total;
    for (int i = 0; i < num_shards_; ++i) {
      std::lock_guard<std::mutex> lock(shards_[i].mu);
      total.hits += shards_[i].stats.hits;
      total.misses += shards_[i].stats.misses;
      total.evictions += shards_[i].stats.evictions;
    }
    return total;
  }

  int num_shards() const { return num_shards_; }
  size_t shard_capacity() const { return shard_capacity_; }
  size_t capacity() const {
    return shard_capacity_ * static_cast<size_t>(num_shards_);
  }

  // Which shard a key lands on (stable for the cache's lifetime); lets
  // tests construct same-shard / cross-shard key sets.
  int ShardIndex(const K& key) const {
    return static_cast<int>(Hash{}(key) % static_cast<size_t>(num_shards_));
  }

 private:
  struct Shard {
    mutable std::mutex mu;
    // Front = most recent. The index maps key -> list node.
    std::list<std::pair<K, V>> order;
    std::unordered_map<K, typename std::list<std::pair<K, V>>::iterator>
        index;
    Stats stats;
  };

  Shard& ShardFor(const K& key) const {
    return shards_[static_cast<size_t>(ShardIndex(key))];
  }

  int num_shards_ = 1;
  size_t shard_capacity_ = 0;
  std::unique_ptr<Shard[]> shards_;
};

}  // namespace preqr

#endif  // PREQR_COMMON_LRU_CACHE_H_
