#ifndef PREQR_COMMON_CHECK_H_
#define PREQR_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

// Invariant-checking macros. A failed check is a programming error and
// terminates the process; recoverable conditions use Status/Result instead.

#define PREQR_CHECK(cond)                                                     \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::fprintf(stderr, "PREQR_CHECK failed: %s at %s:%d\n", #cond,        \
                   __FILE__, __LINE__);                                       \
      std::abort();                                                           \
    }                                                                         \
  } while (0)

#define PREQR_CHECK_MSG(cond, msg)                                            \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::fprintf(stderr, "PREQR_CHECK failed: %s (%s) at %s:%d\n", #cond,   \
                   msg, __FILE__, __LINE__);                                  \
      std::abort();                                                           \
    }                                                                         \
  } while (0)

#define PREQR_CHECK_EQ(a, b) PREQR_CHECK((a) == (b))
#define PREQR_CHECK_NE(a, b) PREQR_CHECK((a) != (b))
#define PREQR_CHECK_LT(a, b) PREQR_CHECK((a) < (b))
#define PREQR_CHECK_LE(a, b) PREQR_CHECK((a) <= (b))
#define PREQR_CHECK_GT(a, b) PREQR_CHECK((a) > (b))
#define PREQR_CHECK_GE(a, b) PREQR_CHECK((a) >= (b))

#endif  // PREQR_COMMON_CHECK_H_
