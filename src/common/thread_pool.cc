#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>

namespace preqr {

namespace {

// Set while a thread is executing pool work (either a worker thread or the
// caller running ParallelFor chunks). Nested parallel calls run inline.
thread_local bool tls_in_pool_work = false;

// Target number of scalar operations per ParallelFor chunk. Small enough
// that moderate test shapes exercise multi-chunk execution, large enough
// that chunk dispatch overhead stays negligible on real kernels.
constexpr int64_t kGrainCost = 4096;

std::mutex g_global_mu;
std::unique_ptr<ThreadPool> g_global_pool;

}  // namespace

int64_t GrainForCost(int64_t cost_per_item) {
  return std::max<int64_t>(1, kGrainCost / std::max<int64_t>(1, cost_per_item));
}

int ThreadPool::DefaultNumThreads() {
  if (const char* env = std::getenv("PREQR_NUM_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<int>(std::min<long>(v, 256));
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) num_threads = DefaultNumThreads();
  workers_.reserve(static_cast<size_t>(num_threads - 1));
  for (int i = 0; i < num_threads - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
  // Drain tasks that never ran so their futures do not block forever.
  for (auto& t : queue_) t();
}

void ThreadPool::WorkerLoop() {
  tls_in_pool_work = true;
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task captures exceptions into the future
  }
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  if (workers_.empty()) {
    packaged();
    return future;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::ParallelFor(int64_t begin, int64_t end, int64_t grain,
                             const std::function<void(int64_t, int64_t)>& fn) {
  const int64_t n = end - begin;
  if (n <= 0) return;
  grain = std::max<int64_t>(1, grain);
  // Serial fast path: single-thread pool (exact legacy execution), a range
  // that fits one chunk, or a nested call from inside pool work.
  if (workers_.empty() || n <= grain || tls_in_pool_work) {
    fn(begin, end);
    return;
  }

  struct Work {
    const std::function<void(int64_t, int64_t)>* fn;
    int64_t begin, end, grain, nchunks;
    std::atomic<int64_t> next{0};
    std::mutex mu;
    std::condition_variable done_cv;
    int64_t chunks_done = 0;
    int runners_active = 0;
    std::exception_ptr error;
  };
  auto work = std::make_shared<Work>();
  work->fn = &fn;
  work->begin = begin;
  work->end = end;
  work->grain = grain;
  work->nchunks = (n + grain - 1) / grain;

  auto run_chunks = [](const std::shared_ptr<Work>& w) {
    int64_t finished = 0;
    std::exception_ptr err;
    for (;;) {
      const int64_t c = w->next.fetch_add(1, std::memory_order_relaxed);
      if (c >= w->nchunks) break;
      const int64_t b = w->begin + c * w->grain;
      const int64_t e = std::min(b + w->grain, w->end);
      try {
        (*w->fn)(b, e);
      } catch (...) {
        if (!err) err = std::current_exception();
      }
      ++finished;
    }
    std::lock_guard<std::mutex> lock(w->mu);
    w->chunks_done += finished;
    if (err && !w->error) w->error = err;
  };

  // One helper task per worker, capped by the chunk count; the caller also
  // participates below, so tiny ranges do not pay wakeup latency for
  // helpers that would find the queue already drained.
  const int helpers = static_cast<int>(std::min<int64_t>(
      static_cast<int64_t>(workers_.size()), work->nchunks - 1));
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int i = 0; i < helpers; ++i) {
      ++work->runners_active;
      queue_.emplace_back([work, run_chunks] {
        run_chunks(work);
        {
          std::lock_guard<std::mutex> inner(work->mu);
          --work->runners_active;
        }
        work->done_cv.notify_one();
      });
    }
  }
  cv_.notify_all();

  tls_in_pool_work = true;
  run_chunks(work);
  tls_in_pool_work = false;

  {
    std::unique_lock<std::mutex> lock(work->mu);
    work->done_cv.wait(lock, [&] {
      return work->chunks_done >= work->nchunks && work->runners_active == 0;
    });
    if (work->error) std::rethrow_exception(work->error);
  }
}

ThreadPool& ThreadPool::Global() {
  std::lock_guard<std::mutex> lock(g_global_mu);
  if (!g_global_pool) g_global_pool = std::make_unique<ThreadPool>();
  return *g_global_pool;
}

void ThreadPool::SetGlobalThreads(int n) {
  std::lock_guard<std::mutex> lock(g_global_mu);
  g_global_pool = std::make_unique<ThreadPool>(n);
}

void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn) {
  ThreadPool::Global().ParallelFor(begin, end, grain, fn);
}

}  // namespace preqr
