#ifndef PREQR_COMMON_THREAD_POOL_H_
#define PREQR_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace preqr {

// Fixed-size thread pool backing all parallel tensor kernels.
//
// Determinism contract: ParallelFor partitions [begin, end) into contiguous
// chunks and runs `fn(chunk_begin, chunk_end)` on pool threads plus the
// calling thread. Callers must write disjoint outputs per index and make
// each output depend only on its own indices; under that contract results
// are bitwise-identical for every thread count and chunking, because each
// output element is produced by the same serial instruction sequence.
// Reductions that cross indices (bias/gamma sums, embedding scatter) must
// instead partition over *destinations* so every destination accumulates
// its contributions in the original index order (see nn/ops.cc).
//
// Nested calls (ParallelFor from inside a pool task) run inline on the
// current thread, so kernels stay safe when invoked from already-parallel
// regions such as the per-example pre-training loop.
class ThreadPool {
 public:
  // num_threads <= 0 selects DefaultNumThreads(). The pool owns
  // num_threads - 1 worker threads; the caller participates in ParallelFor.
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  // Runs `task` on a worker thread (or inline when the pool is size 1).
  // The future rethrows any exception the task raised.
  std::future<void> Submit(std::function<void()> task);

  // Splits [begin, end) into chunks of at most `grain` indices and runs
  // `fn(chunk_begin, chunk_end)` across the pool. Blocks until every chunk
  // finished; rethrows the first exception raised by any chunk.
  void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                   const std::function<void(int64_t, int64_t)>& fn);

  // Thread count from PREQR_NUM_THREADS (clamped to [1, 256]); falls back
  // to std::thread::hardware_concurrency().
  static int DefaultNumThreads();

  // Process-wide pool used by the nn kernels; created lazily.
  static ThreadPool& Global();

  // Rebuilds the global pool with `n` threads (<= 0 restores the default).
  // Intended for tests and benchmarks that sweep thread counts; not safe
  // while kernels are running on other threads.
  static void SetGlobalThreads(int n);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::packaged_task<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

// Convenience wrapper over ThreadPool::Global().ParallelFor.
void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn);

// Grain size targeting roughly `kGrainCost` scalar operations per chunk for
// loops whose per-index cost is `cost_per_item` operations.
int64_t GrainForCost(int64_t cost_per_item);

}  // namespace preqr

#endif  // PREQR_COMMON_THREAD_POOL_H_
