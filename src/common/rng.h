#ifndef PREQR_COMMON_RNG_H_
#define PREQR_COMMON_RNG_H_

#include <array>
#include <cmath>
#include <cstdint>

namespace preqr {

// Deterministic, fast PRNG (splitmix64-seeded xoshiro256**). All randomized
// components in the library take an Rng so experiments are reproducible.
class Rng {
 public:
  // The full generator state; capturing and restoring it resumes the draw
  // sequence exactly (checkpointing relies on this).
  using State = std::array<uint64_t, 4>;

  explicit Rng(uint64_t seed = 42) { Seed(seed); }

  State state() const { return {s_[0], s_[1], s_[2], s_[3]}; }
  void set_state(const State& state) {
    for (int i = 0; i < 4; ++i) s_[i] = state[static_cast<size_t>(i)];
  }

  void Seed(uint64_t seed) {
    uint64_t x = seed;
    for (int i = 0; i < 4; ++i) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s_[i] = z ^ (z >> 31);
    }
  }

  uint64_t NextUint64() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, n).
  uint64_t NextUint64(uint64_t n) { return n == 0 ? 0 : NextUint64() % n; }
  int NextInt(int lo, int hi_exclusive) {
    return lo + static_cast<int>(NextUint64(
                    static_cast<uint64_t>(hi_exclusive - lo)));
  }

  // Uniform in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
  }
  float NextFloat() { return static_cast<float>(NextDouble()); }

  // Standard normal via Box-Muller.
  double NextGaussian() {
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 < 1e-12) u1 = 1e-12;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.28318530717958648 * u2);
  }

  // Zipf-distributed value in [1, n] with exponent `s` (rejection-free
  // inverse-CDF over a precomputed-free approximation; O(log n) harmonic
  // sampling is overkill, we use the standard rejection method).
  uint64_t NextZipf(uint64_t n, double s) {
    // Rejection sampling (Devroye). Good enough for workload generation.
    const double b = std::pow(2.0, s - 1.0);
    while (true) {
      const double u = NextDouble();
      const double v = NextDouble();
      const double x = std::floor(std::pow(u, -1.0 / (s - 1.0)));
      const double t = std::pow(1.0 + 1.0 / x, s - 1.0);
      if (v * x * (t - 1.0) / (b - 1.0) <= t / b && x <= static_cast<double>(n)) {
        return static_cast<uint64_t>(x);
      }
    }
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

}  // namespace preqr

#endif  // PREQR_COMMON_RNG_H_
