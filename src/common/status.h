#ifndef PREQR_COMMON_STATUS_H_
#define PREQR_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "common/check.h"

namespace preqr {

// Canonical error space. The serving wire protocol transmits these as a
// single byte, so values are append-only and must never be renumbered.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,   // malformed request (bad frame, bad argument)
  kNotFound = 2,
  kParseError = 3,        // malformed SQL (lexer/parser rejection)
  kInternal = 4,
  kDeadlineExceeded = 5,  // request deadline passed before/while queued
  kResourceExhausted = 6, // admission control shed the request
  kUnavailable = 7,       // transient: server stopping / connection lost
};

// Stable lowercase name per code ("deadline_exceeded", ...) for metrics
// and log lines; unknown values map to "unknown".
const char* StatusCodeName(StatusCode code);
// Inverse of the wire byte: out-of-range values map to kInternal so a
// corrupt frame can never masquerade as kOk.
StatusCode StatusCodeFromByte(int byte);

// Lightweight error carrier for recoverable conditions (e.g. SQL parse
// failures). Modeled on absl::Status.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// Result<T> holds either a value or an error Status (absl::StatusOr-like).
template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}          // NOLINT
  Result(Status status) : data_(std::move(status)) {    // NOLINT
    PREQR_CHECK_MSG(!std::get<Status>(data_).ok(),
                    "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(data_); }
  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(data_);
  }
  const T& value() const& {
    PREQR_CHECK_MSG(ok(), status().message().c_str());
    return std::get<T>(data_);
  }
  T& value() & {
    PREQR_CHECK_MSG(ok(), status().message().c_str());
    return std::get<T>(data_);
  }
  T&& value() && {
    PREQR_CHECK_MSG(ok(), status().message().c_str());
    return std::get<T>(std::move(data_));
  }

 private:
  std::variant<T, Status> data_;
};

// Alias matching the absl spelling. New code (the serving layer and the
// Status-propagating encoder entry points) uses StatusOr; existing call
// sites keep Result — the two are the same type.
template <typename T>
using StatusOr = Result<T>;

}  // namespace preqr

#endif  // PREQR_COMMON_STATUS_H_
