#ifndef PREQR_SERVING_ENCODER_SERVICE_H_
#define PREQR_SERVING_ENCODER_SERVICE_H_

#include <chrono>
#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "baselines/encoder.h"
#include "common/lru_cache.h"
#include "common/status.h"
#include "nn/module.h"
#include "serving/metrics.h"
#include "serving/request_ring.h"

namespace preqr::serving {

// Steady-clock deadline carried by every request. kNoDeadline means the
// caller will wait as long as it takes.
using DeadlineClock = std::chrono::steady_clock;
inline constexpr DeadlineClock::time_point kNoDeadline =
    DeadlineClock::time_point::max();
// Absolute deadline `timeout` from now — the usual way callers build one.
inline DeadlineClock::time_point DeadlineAfter(
    std::chrono::microseconds timeout) {
  return DeadlineClock::now() + timeout;
}

// The transport-independent request contract. Every field beyond `sql` is
// optional; a default-constructed request behaves like the old bare
// Encode(sql) call (no deadline, anonymous client, normal priority).
struct EncodeRequest {
  std::string sql;
  // Requests whose deadline passes before encoding starts fail with
  // kDeadlineExceeded — on arrival if already expired, or dropped by the
  // dispatcher while queued. Work that already started is always delivered.
  DeadlineClock::time_point deadline = kNoDeadline;
  // Admission-control key: each client id gets an equal share of the
  // request ring ("" is the shared anonymous bucket).
  std::string client_id;
  // Requests with priority > 0 may use the reserved tail of the ring when
  // it is past its high-water mark; priority <= 0 requests are shed there.
  int priority = 0;
};

// What a successful encode returns: the embedding plus the per-request
// observability callers need to build latency SLOs on top.
struct EncodeResponse {
  nn::Tensor embedding;
  bool cache_hit = false;
  double queue_us = 0.0;   // admission -> dispatcher pop (0 for cache hits)
  double encode_us = 0.0;  // micro-batch encode time (0 for cache hits)
};

// Knobs for the embedding cache, the micro-batcher, and admission control.
struct EncoderServiceOptions {
  // Embeddings held across all cache shards.
  size_t cache_capacity = 4096;
  int cache_shards = 8;
  // Most queries one dispatched micro-batch may carry.
  int max_batch_size = 64;
  // How long the dispatcher waits for more requests to arrive before
  // handing a non-full batch to the encoder. 0 dispatches whatever is
  // queued immediately — requests that arrive while an earlier batch is
  // encoding still coalesce, which is the common case under load.
  std::chrono::microseconds batch_window{0};
  // Bounded request ring (rounded up to a power of two). A full ring sheds
  // with kResourceExhausted instead of queueing without bound.
  size_t ring_capacity = 256;
  // Most requests one client id may have queued at once; above it the
  // client is shed with kResourceExhausted while others keep being
  // admitted. 0 derives capacity/4 (clamped to >= 1).
  size_t per_client_quota = 0;
  // Ring slots reserved for priority > 0 requests: once the ring holds
  // capacity - priority_reserve requests, priority <= 0 arrivals are shed.
  // 0 derives capacity/4.
  size_t priority_reserve = 0;
};

// Thread-safe embedding-serving front-end over any baselines::QueryEncoder.
// Learned DB components (cardinality/cost heads, clustering) issue cheap
// repeated lookups over a frequent-query workload; this layer turns that
// access pattern into cache hits and coalesced encoder batches, and bounds
// it: a request ring with per-client admission control sheds overload with
// canonical codes instead of queueing without bound.
//
//  * Results are cached in a sharded LRU keyed by the SQL text; hits
//    return a detached copy without touching the encoder.
//  * Misses are admitted onto a bounded ring and dispatched by a
//    background thread in micro-batches through TryEncodeVectorBatch. The
//    wrapped encoder only ever sees one call at a time, so encoders that
//    are not themselves thread-safe are safe behind the service.
//  * Error contract (canonical codes): malformed SQL -> kParseError /
//    kInvalidArgument; expired deadline -> kDeadlineExceeded; shed by
//    admission control -> kResourceExhausted; destroyed mid-flight ->
//    kUnavailable. Callers can tell bad input from shed load.
//  * Determinism: encodes run with train=false and each query's
//    computation is independent, so every result — cached or not, batched
//    or not — is bitwise-identical to EncodeVector(sql, false) on the
//    wrapped encoder (pinned by parallel_determinism_test).
class EncoderService {
 public:
  explicit EncoderService(baselines::QueryEncoder* encoder,
                          EncoderServiceOptions options = {});
  // Fails every request still queued with kUnavailable, then joins the
  // dispatcher.
  ~EncoderService();

  // Encodes one request (blocking): cache hit, or admitted onto the ring
  // and coalesced into a micro-batch. Admission errors (shed, expired
  // deadline) return immediately without reaching the encoder.
  StatusOr<EncodeResponse> Encode(const EncodeRequest& request);

  // Async submit: admission (cache probe, deadline check, shedding) runs
  // synchronously so rejected requests resolve immediately; the returned
  // future resolves when the micro-batcher delivers. During a reload drain
  // Submit parks like Encode does (admission is the blocking part).
  std::future<StatusOr<EncodeResponse>> Submit(EncodeRequest request);

  // Encodes a workload slice synchronously: expired slots fail with
  // kDeadlineExceeded, cache hits resolve locally, and the distinct
  // remaining misses go to the encoder as one batch, bypassing the ring
  // (the caller is its own admission control — the batch is bounded).
  // Slot i corresponds to requests[i]; slots fail independently.
  std::vector<StatusOr<EncodeResponse>> EncodeBatch(
      const std::vector<EncodeRequest>& requests);

  // Convenience overloads (explicitly kept): the request-struct calls
  // above are the API; these wrap them for callers that want the old
  // bare-SQL shape (no deadline, anonymous client) and just the tensor.
  StatusOr<nn::Tensor> Encode(const std::string& sql);
  std::vector<StatusOr<nn::Tensor>> EncodeBatch(
      const std::vector<std::string>& sqls);

  // Drops every cached embedding and the encoder's own memoized state.
  // Call after the wrapped model's parameters changed (further
  // pre-training, incremental updates); waits for any in-flight batch.
  void InvalidateCache();

  // Registers the module whose weights back the wrapped encoder, enabling
  // ReloadModel. Non-owned; must outlive the service.
  void AttachModel(nn::Module* model) { model_ = model; }

  // Hot model reload (the paper's incremental-update loop, Table 5) with a
  // graceful drain: new admissions park (they are never dropped), the
  // dispatcher finishes everything already queued, then the swap runs
  // under the encode mutex and the stale cache is cleared before the
  // parked requests proceed against the new weights. On failure
  // (missing/corrupt file, architecture mismatch) the weights and the
  // cache are left exactly as they were and serving continues.
  Status ReloadModel(const std::string& path);

  int dim() const { return encoder_->dim(); }
  std::string name() const { return "serving(" + encoder_->name() + ")"; }
  size_t cached_embeddings() const { return cache_.size(); }
  size_t queue_depth() const;
  ServingMetrics& metrics() { return metrics_; }
  const ServingMetrics& metrics() const { return metrics_; }

 private:
  struct Pending {
    std::string sql;
    DeadlineClock::time_point deadline = kNoDeadline;
    std::string client_id;
    DeadlineClock::time_point enqueued_at;
    std::promise<StatusOr<EncodeResponse>> promise;
  };

  // Cache probe + deadline/shed checks + ring push. Returns an already-
  // resolved result for hits and rejections, or nullopt after a
  // successful enqueue — *future then delivers when the batcher does.
  std::optional<StatusOr<EncodeResponse>> AdmitOrResolve(
      EncodeRequest&& request,
      std::future<StatusOr<EncodeResponse>>* future);
  // Background thread: pops micro-batches, drops expired requests, runs
  // the encoder, fulfills promises.
  void DispatchLoop();
  // Encodes one batch under encode_mu_ and fills the cache.
  std::vector<StatusOr<nn::Tensor>> EncodeLocked(
      const std::vector<std::string>& sqls);

  baselines::QueryEncoder* encoder_;
  nn::Module* model_ = nullptr;  // optional, enables ReloadModel
  EncoderServiceOptions options_;
  size_t per_client_quota_ = 0;
  size_t admit_watermark_ = 0;  // ring size at which priority<=0 sheds
  ShardedLruCache<std::string, nn::Tensor> cache_;
  ServingMetrics metrics_;

  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;  // dispatcher wakeups + drain waiters
  RequestRing<std::shared_ptr<Pending>> ring_;
  std::unordered_map<std::string, size_t> queued_per_client_;
  bool draining_ = false;   // a reload is waiting the ring out
  bool inflight_ = false;   // dispatcher is encoding a popped batch
  bool stopping_ = false;

  // Serializes every call into *encoder_ (dispatch loop, EncodeBatch
  // misses, InvalidateCache, the reload swap).
  std::mutex encode_mu_;

  std::thread dispatcher_;
};

}  // namespace preqr::serving

#endif  // PREQR_SERVING_ENCODER_SERVICE_H_
