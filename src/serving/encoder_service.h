#ifndef PREQR_SERVING_ENCODER_SERVICE_H_
#define PREQR_SERVING_ENCODER_SERVICE_H_

#include <chrono>
#include <condition_variable>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "baselines/encoder.h"
#include "common/lru_cache.h"
#include "common/status.h"
#include "nn/module.h"
#include "serving/metrics.h"
#include "serving/request_ring.h"

namespace preqr::serving {

// Steady-clock deadline carried by every request. kNoDeadline means the
// caller will wait as long as it takes.
using DeadlineClock = std::chrono::steady_clock;
inline constexpr DeadlineClock::time_point kNoDeadline =
    DeadlineClock::time_point::max();
// Absolute deadline `timeout` from now — the usual way callers build one.
// Saturating: a timeout so large that now + timeout would overflow the
// clock's (nanosecond int64) representation — e.g. a hostile timeout_us of
// INT64_MAX off the wire — becomes kNoDeadline instead of signed-overflow
// UB that wraps the deadline into the past and fails the request with
// kDeadlineExceeded on arrival.
template <typename Rep, typename Period>
DeadlineClock::time_point DeadlineAfter(
    std::chrono::duration<Rep, Period> timeout) {
  const DeadlineClock::time_point now = DeadlineClock::now();
  // Compare in double seconds: converting the timeout into the clock's
  // duration first could itself overflow before the comparison runs. The
  // 1 s margin absorbs the double rounding; nobody can tell kNoDeadline
  // from a deadline ~292 years out.
  using DSec = std::chrono::duration<double>;
  const double timeout_s = std::chrono::duration_cast<DSec>(timeout).count();
  const double headroom_s =
      std::chrono::duration_cast<DSec>(DeadlineClock::time_point::max() - now)
          .count();
  if (timeout_s >= headroom_s - 1.0) return kNoDeadline;
  return now + std::chrono::duration_cast<DeadlineClock::duration>(timeout);
}

// The tenant every tenant-less request routes to: the encoder the service
// was constructed with. Single-tenant callers never mention tenants at all.
inline constexpr const char kDefaultTenantId[] = "";

// The transport-independent request contract. Every field beyond `sql` is
// optional; a default-constructed request behaves like the old bare
// Encode(sql) call (default tenant, no deadline, anonymous client, normal
// priority).
struct EncodeRequest {
  std::string sql;
  // Which tenant's schema/model/cache serves this query. "" is the default
  // tenant; an id with no registered tenant fails with kNotFound before
  // any cache partition is probed.
  std::string tenant_id;
  // Requests whose deadline passes before encoding starts fail with
  // kDeadlineExceeded — on arrival if already expired, or dropped by the
  // dispatcher while queued. Work that already started is always delivered.
  DeadlineClock::time_point deadline = kNoDeadline;
  // Admission-control key: each client id gets an equal share of the
  // request ring ("" is the shared anonymous bucket).
  std::string client_id;
  // Requests with priority > 0 may use the reserved tail of the ring when
  // it is past its high-water mark; priority <= 0 requests are shed there.
  int priority = 0;
};

// What a successful encode returns: the embedding plus the per-request
// observability callers need to build latency SLOs on top.
struct EncodeResponse {
  nn::Tensor embedding;
  std::string tenant_id;   // the tenant that served it ("" = default)
  bool cache_hit = false;
  double queue_us = 0.0;   // admission -> dispatcher pop (0 for cache hits)
  double encode_us = 0.0;  // micro-batch encode time (0 for cache hits)
};

// Knobs for the embedding cache, the micro-batcher, and admission control.
struct EncoderServiceOptions {
  // Embeddings held across all cache shards, per tenant (each tenant owns
  // its own cache partition of this size).
  size_t cache_capacity = 4096;
  int cache_shards = 8;
  // Most queries one dispatched micro-batch may carry.
  int max_batch_size = 64;
  // How long the dispatcher waits for more requests to arrive before
  // handing a non-full batch to the encoder. 0 dispatches whatever is
  // queued immediately — requests that arrive while an earlier batch is
  // encoding still coalesce, which is the common case under load.
  std::chrono::microseconds batch_window{0};
  // Bounded request ring (rounded up to a power of two), shared by all
  // tenants. A full ring sheds with kResourceExhausted instead of queueing
  // without bound.
  size_t ring_capacity = 256;
  // Most requests one client id may have queued at once; above it the
  // client is shed with kResourceExhausted while others keep being
  // admitted. 0 derives capacity/4 (clamped to >= 1).
  size_t per_client_quota = 0;
  // Ring slots reserved for priority > 0 requests: once the ring holds
  // capacity - priority_reserve requests, priority <= 0 arrivals are shed.
  // 0 derives capacity/4.
  size_t priority_reserve = 0;
};

// Thread-safe embedding-serving front-end over any baselines::QueryEncoder.
// Learned DB components (cardinality/cost heads, clustering) issue cheap
// repeated lookups over a frequent-query workload; this layer turns that
// access pattern into cache hits and coalesced encoder batches, and bounds
// it: a request ring with per-client admission control sheds overload with
// canonical codes instead of queueing without bound.
//
// The service hosts N *tenants*: each tenant is one database's encoder (its
// own schema graph, vocabulary, automaton, and model behind the
// QueryEncoder interface) with its own cache partition, encode mutex, and
// per-tenant metrics. The encoder passed at construction becomes the
// default tenant (""), so single-tenant callers are unchanged; more tenants
// register and deregister at runtime under load.
//
//  * Results are cached per tenant in a sharded LRU keyed by the SQL text —
//    the effective cache key is (tenant, sql), so identical SQL under two
//    tenants never shares an entry; hits return a detached copy without
//    touching the encoder.
//  * Misses are admitted onto a bounded ring (shared across tenants) and
//    dispatched by a background thread in micro-batches through
//    TryEncodeVectorBatch, grouped by tenant — one tenant's batch only ever
//    contains that tenant's queries. A tenant's encoder only ever sees one
//    call at a time, so encoders that are not themselves thread-safe are
//    safe behind the service.
//  * Error contract (canonical codes): malformed SQL -> kParseError /
//    kInvalidArgument; unknown tenant -> kNotFound (before the cache
//    probe); expired deadline -> kDeadlineExceeded; shed by admission
//    control -> kResourceExhausted; destroyed mid-flight -> kUnavailable.
//  * Determinism: encodes run with train=false and each query's
//    computation is independent, so every result — cached or not, batched
//    or not, under any tenant interleaving — is bitwise-identical to
//    EncodeVector(sql, false) on that tenant's encoder alone (pinned by
//    parallel_determinism_test and tenant_test).
class EncoderService {
 public:
  // Registers `encoder` as the default tenant ("").
  explicit EncoderService(baselines::QueryEncoder* encoder,
                          EncoderServiceOptions options = {});
  // Starts with no tenants at all (registry-driven multi-tenant serving):
  // every request is kNotFound until RegisterTenant is called.
  explicit EncoderService(EncoderServiceOptions options);
  // Fails every request still queued with kUnavailable, then joins the
  // dispatcher.
  ~EncoderService();

  // --- Tenant lifecycle (safe under concurrent traffic) -------------------
  // Registers a tenant: its own cache partition, metrics block, and encode
  // mutex. `encoder` (and `model`, when given — it enables per-tenant
  // ReloadModel) are non-owned and must outlive the tenant's registration.
  // Fails with kInvalidArgument on a duplicate id.
  Status RegisterTenant(const std::string& tenant_id,
                        baselines::QueryEncoder* encoder,
                        nn::Module* model = nullptr);
  // Deregisters a tenant with a reload-style drain: new work for the
  // tenant is refused with kNotFound immediately, everything already
  // admitted is encoded and delivered (never dropped), then exactly this
  // tenant's cache partition is dropped and its metrics lines disappear.
  // Other tenants are not disturbed. The default tenant cannot be
  // deregistered.
  Status DeregisterTenant(const std::string& tenant_id);
  bool HasTenant(const std::string& tenant_id) const;
  std::vector<std::string> TenantIds() const;

  // Encodes one request (blocking): cache hit, or admitted onto the ring
  // and coalesced into a micro-batch. Admission errors (unknown tenant,
  // shed, expired deadline) return immediately without reaching the
  // encoder.
  StatusOr<EncodeResponse> Encode(const EncodeRequest& request);

  // Async submit: admission (cache probe, deadline check, shedding) runs
  // synchronously so rejected requests resolve immediately; the returned
  // future resolves when the micro-batcher delivers. During a reload drain
  // Submit parks like Encode does (admission is the blocking part).
  std::future<StatusOr<EncodeResponse>> Submit(EncodeRequest request);

  // Encodes a workload slice synchronously: expired slots fail with
  // kDeadlineExceeded, cache hits resolve locally, and the distinct
  // remaining misses go to the encoder as one batch per tenant, bypassing
  // the ring (the caller is its own admission control — the batch is
  // bounded). Slot i corresponds to requests[i]; slots fail independently,
  // so a malformed query for tenant A cannot poison tenant B's slot.
  std::vector<StatusOr<EncodeResponse>> EncodeBatch(
      const std::vector<EncodeRequest>& requests);

  // Convenience overloads (explicitly kept): the request-struct calls
  // above are the API; these wrap them for callers that want the old
  // bare-SQL shape (default tenant, no deadline, anonymous client) and
  // just the tensor.
  StatusOr<nn::Tensor> Encode(const std::string& sql);
  std::vector<StatusOr<nn::Tensor>> EncodeBatch(
      const std::vector<std::string>& sqls);

  // Drops every tenant's cached embeddings and each encoder's own memoized
  // state. Call after the wrapped models' parameters changed (further
  // pre-training, incremental updates); waits for any in-flight batch.
  void InvalidateCache();
  // Same, for one tenant only. kNotFound for unknown ids.
  Status InvalidateCache(const std::string& tenant_id);

  // Registers the module whose weights back the default tenant's encoder,
  // enabling ReloadModel. Non-owned; must outlive the service.
  void AttachModel(nn::Module* model);
  // Same, for any tenant (RegisterTenant's `model` argument is the usual
  // way; this re-points it). kNotFound for unknown ids.
  Status AttachModel(const std::string& tenant_id, nn::Module* model);

  // Hot model reload for the default tenant — see the tenant overload.
  Status ReloadModel(const std::string& path);
  // Hot model reload (the paper's incremental-update loop, Table 5) for
  // one tenant, with a graceful per-tenant drain: new admissions for this
  // tenant park (they are never dropped), the dispatcher finishes
  // everything the tenant already queued, then the swap runs under the
  // tenant's encode mutex and its stale cache partition is cleared before
  // the parked requests proceed against the new weights. Other tenants
  // keep encoding throughout. On failure (missing/corrupt file,
  // architecture mismatch) the weights and the cache are left exactly as
  // they were and serving continues.
  Status ReloadModel(const std::string& tenant_id, const std::string& path);

  // The default tenant's encoder dim/name (0 / "serving(multi-tenant)"
  // when the service was constructed without one).
  int dim() const;
  std::string name() const;
  // Cached embeddings summed over all tenants / for one tenant (0 for
  // unknown ids).
  size_t cached_embeddings() const;
  size_t cached_embeddings(const std::string& tenant_id) const;
  size_t queue_depth() const;
  ServingMetrics& metrics() { return metrics_; }
  const ServingMetrics& metrics() const { return metrics_; }

 private:
  // One hosted database: its encoder, optional model (for reloads), cache
  // partition, and serialization point. `queued`, `inflight`, `draining`
  // and `closing` are guarded by queue_mu_ — they drive the per-tenant
  // drain conditions on queue_cv_.
  struct Tenant {
    Tenant(std::string tenant_id, baselines::QueryEncoder* enc,
           nn::Module* mod, const EncoderServiceOptions& options,
           std::shared_ptr<TenantMetrics> tenant_metrics)
        : id(std::move(tenant_id)),
          encoder(enc),
          model(mod),
          cache(options.cache_capacity, options.cache_shards),
          metrics(std::move(tenant_metrics)) {}

    const std::string id;
    baselines::QueryEncoder* const encoder;  // non-owned
    nn::Module* model;                       // non-owned; guarded by encode_mu
    ShardedLruCache<std::string, nn::Tensor> cache;
    std::shared_ptr<TenantMetrics> metrics;
    // Serializes every call into *encoder (dispatch loop, EncodeBatch
    // misses, InvalidateCache, the reload swap) — per tenant, so one
    // tenant's reload never blocks another tenant's encodes.
    std::mutex encode_mu;
    // --- guarded by queue_mu_ ---
    size_t queued = 0;     // this tenant's requests sitting in the ring
    int inflight = 0;      // batches being encoded right now (ring + sync)
    bool draining = false; // a reload is waiting this tenant's work out
    bool closing = false;  // deregistration: refuse new work, drain the rest
  };
  using TenantPtr = std::shared_ptr<Tenant>;

  struct Pending {
    std::string sql;
    TenantPtr tenant;
    DeadlineClock::time_point deadline = kNoDeadline;
    std::string client_id;
    DeadlineClock::time_point enqueued_at;
    std::promise<StatusOr<EncodeResponse>> promise;
  };

  TenantPtr FindTenant(const std::string& tenant_id) const;
  // Cache probe + tenant/deadline/shed checks + ring push. Returns an
  // already-resolved result for hits and rejections, or nullopt after a
  // successful enqueue — *future then delivers when the batcher does.
  std::optional<StatusOr<EncodeResponse>> AdmitOrResolve(
      EncodeRequest&& request,
      std::future<StatusOr<EncodeResponse>>* future);
  // Background thread: pops micro-batches, drops expired requests, groups
  // by tenant, runs each tenant's encoder, fulfills promises.
  void DispatchLoop();
  // Encodes one single-tenant batch under the tenant's encode mutex and
  // fills that tenant's cache partition. Installs the service's encode-path
  // sink for the duration.
  std::vector<StatusOr<nn::Tensor>> EncodeLocked(
      Tenant& tenant, const std::vector<std::string>& sqls);

  EncoderServiceOptions options_;
  size_t per_client_quota_ = 0;
  size_t admit_watermark_ = 0;  // ring size at which priority<=0 sheds
  ServingMetrics metrics_;

  mutable std::mutex tenants_mu_;  // guards the map only, not tenant state
  std::map<std::string, TenantPtr> tenants_;

  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;  // dispatcher wakeups + drain waiters
  RequestRing<std::shared_ptr<Pending>> ring_;
  std::unordered_map<std::string, size_t> queued_per_client_;
  bool stopping_ = false;

  std::thread dispatcher_;
};

}  // namespace preqr::serving

#endif  // PREQR_SERVING_ENCODER_SERVICE_H_
