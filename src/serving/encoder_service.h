#ifndef PREQR_SERVING_ENCODER_SERVICE_H_
#define PREQR_SERVING_ENCODER_SERVICE_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "baselines/encoder.h"
#include "common/lru_cache.h"
#include "common/status.h"
#include "nn/module.h"
#include "serving/metrics.h"

namespace preqr::serving {

// Knobs for the embedding cache and the micro-batcher.
struct EncoderServiceOptions {
  // Embeddings held across all cache shards.
  size_t cache_capacity = 4096;
  int cache_shards = 8;
  // Most queries one dispatched micro-batch may carry.
  int max_batch_size = 64;
  // How long a dispatching thread waits for more requests to arrive before
  // handing a non-full batch to the encoder. 0 dispatches whatever is
  // queued immediately — requests that arrive while an earlier batch is
  // encoding still coalesce, which is the common case under load.
  std::chrono::microseconds batch_window{0};
};

// Thread-safe embedding-serving front-end over any baselines::QueryEncoder.
// Learned DB components (cardinality/cost heads, clustering) issue cheap
// repeated lookups over a frequent-query workload; this layer turns that
// access pattern into cache hits and coalesced encoder batches.
//
//  * Results are cached in a sharded LRU keyed by the SQL text; hits
//    return a detached copy without touching the encoder.
//  * Misses coalesce: concurrent callers enqueue, one becomes the
//    dispatcher and drives QueryEncoder::TryEncodeVectorBatch over the
//    queue. The wrapped encoder only ever sees one call at a time, so
//    encoders that are not themselves thread-safe are safe behind the
//    service.
//  * Error contract: malformed SQL yields an error Status in the affected
//    slot; other requests are unaffected and nothing crashes.
//  * Determinism: encodes run with train=false and each query's
//    computation is independent, so every result — cached or not, batched
//    or not — is bitwise-identical to EncodeVector(sql, false) on the
//    wrapped encoder (pinned by parallel_determinism_test).
class EncoderService {
 public:
  explicit EncoderService(baselines::QueryEncoder* encoder,
                          EncoderServiceOptions options = {});

  // Encodes one query (blocking). Cache hit, or coalesced into the next
  // micro-batch.
  StatusOr<nn::Tensor> Encode(const std::string& sql);

  // Encodes a workload slice: cache hits resolve locally, the distinct
  // misses go to the encoder as one batch. Slot i corresponds to sqls[i];
  // slots fail independently.
  std::vector<StatusOr<nn::Tensor>> EncodeBatch(
      const std::vector<std::string>& sqls);

  // Drops every cached embedding and the encoder's own memoized state.
  // Call after the wrapped model's parameters changed (further
  // pre-training, incremental updates); waits for any in-flight batch.
  void InvalidateCache();

  // Registers the module whose weights back the wrapped encoder, enabling
  // ReloadModel. Non-owned; must outlive the service.
  void AttachModel(nn::Module* model) { model_ = model; }

  // Hot model reload (the paper's incremental-update loop, Table 5): swaps
  // the attached module's weights from a PRM1 weight file or PRC1
  // checkpoint at `path`, then drops every stale embedding. Runs under the
  // encode mutex, so no batch ever sees half-new weights and no stale
  // result can be cached after the swap. On failure (missing/corrupt
  // file, architecture mismatch) the weights and the cache are left
  // exactly as they were and serving continues uninterrupted.
  Status ReloadModel(const std::string& path);

  int dim() const { return encoder_->dim(); }
  std::string name() const { return "serving(" + encoder_->name() + ")"; }
  size_t cached_embeddings() const { return cache_.size(); }
  ServingMetrics& metrics() { return metrics_; }
  const ServingMetrics& metrics() const { return metrics_; }

 private:
  struct Pending {
    std::string sql;
    std::promise<StatusOr<nn::Tensor>> promise;
  };

  // Drains the request queue in micro-batches until it is empty; run by
  // the one caller that found `dispatching_` unset.
  void DispatchLoop();
  // Encodes one batch under encode_mu_ and fills the cache.
  std::vector<StatusOr<nn::Tensor>> EncodeLocked(
      const std::vector<std::string>& sqls);

  baselines::QueryEncoder* encoder_;
  nn::Module* model_ = nullptr;  // optional, enables ReloadModel
  EncoderServiceOptions options_;
  ShardedLruCache<std::string, nn::Tensor> cache_;
  ServingMetrics metrics_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<std::shared_ptr<Pending>> queue_;
  bool dispatching_ = false;

  // Serializes every call into *encoder_ (dispatch loop, EncodeBatch
  // misses, InvalidateCache).
  std::mutex encode_mu_;
};

}  // namespace preqr::serving

#endif  // PREQR_SERVING_ENCODER_SERVICE_H_
