#ifndef PREQR_SERVING_REQUEST_RING_H_
#define PREQR_SERVING_REQUEST_RING_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.h"

namespace preqr::serving {

// Fixed-capacity FIFO ring over preallocated slots (the pstress
// ring_buffer idiom): capacity rounds up to a power of two so head/tail
// are free-running uint64 counters masked into the slot array, push/pop
// never allocate, and a full ring is an explicit TryPush failure — the
// admission-control signal — instead of unbounded queue growth.
//
// The ring itself is NOT synchronized; EncoderService guards it with its
// queue mutex (admission bookkeeping — per-client counts, gauges — has to
// update atomically with the push anyway, so a lock-free ring would buy
// nothing and cost the shed/quota checks a second synchronization point).
template <typename T>
class RequestRing {
 public:
  explicit RequestRing(size_t capacity) {
    PREQR_CHECK_GT(capacity, size_t{0});
    size_t pow2 = 1;
    while (pow2 < capacity) pow2 <<= 1;
    slots_.resize(pow2);
    mask_ = pow2 - 1;
  }

  size_t capacity() const { return slots_.size(); }
  size_t size() const { return static_cast<size_t>(tail_ - head_); }
  bool empty() const { return head_ == tail_; }
  bool full() const { return size() == capacity(); }

  // False (and no effect) when the ring is full.
  bool TryPush(T value) {
    if (full()) return false;
    slots_[tail_ & mask_] = std::move(value);
    ++tail_;
    return true;
  }

  // False when empty; otherwise moves the oldest element into *out.
  bool TryPop(T* out) {
    if (empty()) return false;
    *out = std::move(slots_[head_ & mask_]);
    ++head_;
    return true;
  }

  // Read-only view of the i-th queued element (0 = oldest). Used by the
  // dispatcher to bound its batch-window wait by the earliest deadline.
  const T& Peek(size_t i) const {
    PREQR_CHECK_LT(i, size());
    return slots_[(head_ + i) & mask_];
  }

 private:
  std::vector<T> slots_;
  size_t mask_ = 0;
  uint64_t head_ = 0;  // next pop
  uint64_t tail_ = 0;  // next push
};

}  // namespace preqr::serving

#endif  // PREQR_SERVING_REQUEST_RING_H_
