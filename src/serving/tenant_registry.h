#ifndef PREQR_SERVING_TENANT_REGISTRY_H_
#define PREQR_SERVING_TENANT_REGISTRY_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "automaton/fa.h"
#include "common/status.h"
#include "core/preqr_model.h"
#include "db/stats.h"
#include "schema/schema_graph.h"
#include "serving/encoder_service.h"
#include "sql/catalog.h"
#include "tasks/preqr_encoder.h"
#include "text/tokenizer.h"

namespace preqr::serving {

// Everything one hosted database needs to serve PreQR embeddings, bundled
// with the ownership and construction order the layers below leave
// implicit: the tokenizer keeps a reference into the catalog, the model
// keeps pointers into the tokenizer/automaton/graph, the encoder keeps a
// pointer into the model. A TenantContext owns the whole chain, so handing
// `encoder()` + `model()` to an EncoderService is safe for as long as the
// context is alive — which is exactly what TenantRegistry guarantees.
//
// The per-database artifacts are the point (the paper internalizes ONE
// database's schema into the model): schema graph, schema-token
// vocabulary, template automaton, and weights are all derived from this
// tenant's catalog/stats/corpus and shared with no other tenant.
class TenantContext {
 public:
  struct Options {
    // The database this tenant serves: schema + per-table statistics
    // (stats must align with catalog.tables(), as SqlTokenizer requires).
    sql::Catalog catalog;
    std::vector<db::TableStats> stats;
    // Representative workload the template automaton is mined from. May be
    // empty (the automaton degrades to its start state gracefully).
    std::vector<std::string> corpus;
    core::PreqrConfig config;
    uint64_t seed = 1234;
    int num_value_buckets = 8;
    double template_epsilon = 0.2;
    tasks::PreqrEncoder::Options encoder_options;
  };

  // Builds the full chain (graph -> automaton -> tokenizer -> model ->
  // encoder). Misaligned stats fail with kInvalidArgument — a registry
  // driven by runtime registration must not crash on bad input.
  static StatusOr<std::unique_ptr<TenantContext>> Create(Options options);

  // Members point into each other; moving or copying would dangle them.
  TenantContext(const TenantContext&) = delete;
  TenantContext& operator=(const TenantContext&) = delete;

  const sql::Catalog& catalog() const { return catalog_; }
  const schema::SchemaGraph& graph() const { return graph_; }
  const automaton::Automaton& automaton() const { return fa_; }
  const text::SqlTokenizer& tokenizer() const { return *tokenizer_; }
  const text::Vocab& vocab() const { return tokenizer_->vocab(); }
  core::PreqrModel* model() const { return model_.get(); }
  tasks::PreqrEncoder* encoder() const { return encoder_.get(); }

  // One-line inventory of the per-tenant artifacts, for logs and the
  // bench harness.
  std::string Describe() const;

 private:
  explicit TenantContext(Options options);

  // Construction order is load-bearing: each member may reference the ones
  // above it, and destruction runs in reverse.
  sql::Catalog catalog_;
  std::vector<db::TableStats> stats_;
  schema::SchemaGraph graph_;
  automaton::Automaton fa_;
  std::unique_ptr<text::SqlTokenizer> tokenizer_;
  std::unique_ptr<core::PreqrModel> model_;
  std::unique_ptr<tasks::PreqrEncoder> encoder_;
};

// Thread-safe owner of TenantContexts, kept in lock-step with an
// EncoderService's tenant table: Register hands the context's encoder and
// model to the service, Deregister drains the tenant out of the service
// *before* the context (and the model the in-flight work runs on) can be
// released. The registry owns the contexts; the service only borrows.
class TenantRegistry {
 public:
  // `service` is non-owned and must outlive the registry.
  explicit TenantRegistry(EncoderService* service) : service_(service) {}

  // Registers `context` under `id` with the service. kInvalidArgument on a
  // duplicate id (in the registry or the service).
  Status Register(const std::string& tenant_id,
                  std::shared_ptr<TenantContext> context);
  // Drains the tenant out of the service (everything admitted is
  // delivered, new work gets kNotFound), then releases the context.
  Status Deregister(const std::string& tenant_id);

  std::shared_ptr<TenantContext> Lookup(const std::string& tenant_id) const;
  std::vector<std::string> TenantIds() const;
  size_t size() const;
  EncoderService* service() const { return service_; }

 private:
  EncoderService* service_;
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<TenantContext>> contexts_;
};

}  // namespace preqr::serving

#endif  // PREQR_SERVING_TENANT_REGISTRY_H_
