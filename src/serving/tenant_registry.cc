#include "serving/tenant_registry.h"

#include <utility>

#include "automaton/template_extractor.h"
#include "common/check.h"

namespace preqr::serving {

TenantContext::TenantContext(Options options)
    : catalog_(std::move(options.catalog)),
      stats_(std::move(options.stats)),
      graph_(schema::SchemaGraph::Build(catalog_)),
      fa_(automaton::TemplateExtractor(options.template_epsilon)
              .BuildAutomaton(options.corpus)),
      tokenizer_(std::make_unique<text::SqlTokenizer>(
          catalog_, stats_, options.num_value_buckets)),
      model_(std::make_unique<core::PreqrModel>(options.config,
                                                tokenizer_.get(), &fa_,
                                                &graph_, options.seed)),
      encoder_(std::make_unique<tasks::PreqrEncoder>(
          model_.get(), options.encoder_options)) {
  // The tokenizer must reference *our* catalog copy, not the caller's
  // moved-from Options — this is the dangling-reference bug the bundle
  // exists to prevent.
  PREQR_CHECK(&tokenizer_->catalog() == &catalog_);
}

StatusOr<std::unique_ptr<TenantContext>> TenantContext::Create(
    Options options) {
  if (options.stats.size() != options.catalog.tables().size()) {
    return Status::InvalidArgument(
        "TenantContext: stats must align with catalog.tables() (" +
        std::to_string(options.stats.size()) + " stats for " +
        std::to_string(options.catalog.tables().size()) + " tables)");
  }
  // The ctor is private (construction order is an invariant, not a
  // convenience), so no make_unique here.
  return std::unique_ptr<TenantContext>(
      new TenantContext(std::move(options)));
}

std::string TenantContext::Describe() const {
  return std::to_string(catalog_.tables().size()) + " tables, " +
         std::to_string(graph_.num_nodes()) + " graph nodes, " +
         std::to_string(graph_.num_edges()) + " graph edges, " +
         std::to_string(tokenizer_->vocab().size()) + " vocab tokens, " +
         std::to_string(fa_.num_states()) + " automaton states, dim " +
         std::to_string(encoder_->dim());
}

Status TenantRegistry::Register(const std::string& tenant_id,
                                std::shared_ptr<TenantContext> context) {
  if (context == nullptr) {
    return Status::InvalidArgument("Register requires a TenantContext");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (contexts_.count(tenant_id) > 0) {
    return Status::InvalidArgument("tenant '" + tenant_id +
                                   "' already registered");
  }
  Status s = service_->RegisterTenant(tenant_id, context->encoder(),
                                      context->model());
  if (!s.ok()) return s;
  contexts_.emplace(tenant_id, std::move(context));
  return Status::Ok();
}

Status TenantRegistry::Deregister(const std::string& tenant_id) {
  std::shared_ptr<TenantContext> context;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = contexts_.find(tenant_id);
    if (it == contexts_.end()) {
      return Status::NotFound("unknown tenant '" + tenant_id + "'");
    }
    // Hold the context alive across the drain without holding mu_: the
    // service's DeregisterTenant blocks until every in-flight batch on
    // this tenant's encoder finished, and concurrent Register/Lookup calls
    // must not wait behind that.
    context = it->second;
  }
  Status s = service_->DeregisterTenant(tenant_id);
  if (!s.ok()) return s;
  std::lock_guard<std::mutex> lock(mu_);
  contexts_.erase(tenant_id);
  return Status::Ok();
}

std::shared_ptr<TenantContext> TenantRegistry::Lookup(
    const std::string& tenant_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = contexts_.find(tenant_id);
  return it == contexts_.end() ? nullptr : it->second;
}

std::vector<std::string> TenantRegistry::TenantIds() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> ids;
  ids.reserve(contexts_.size());
  for (const auto& [id, context] : contexts_) ids.push_back(id);
  return ids;
}

size_t TenantRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return contexts_.size();
}

}  // namespace preqr::serving
